#!/usr/bin/env bash
# CI smoke for the region-granularity directory (also runs fine locally):
#
#  1. degenerate oracle  - a kRegion sweep at region_size == line size must
#                          reproduce the kBaseline report byte for byte
#                          (modulo the mode label): at one line per region
#                          the region machinery is bypassed entirely;
#  2. grid determinism   - the region ablation grid (scheme x region size
#                          x workload) is byte-identical across --jobs;
#  3. shard merge        - the same grid split into 2 shards and --merge'd
#                          matches the single-machine run byte for byte;
#  4. trace info --json  - the machine-readable metadata block round-trips
#                          the captured workload/seed and the human block
#                          stays intact.
#
# Usage: scripts/ci_region_smoke.sh [path-to-sweep] [path-to-trace]
set -euo pipefail

SWEEP=${1:-./build/sweep}
TRACE=${2:-./build/trace}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

ARGS=(--grid region --seeds 1 --accesses 300 --seed 42)

echo "== 1/4 degenerate region size reproduces the baseline rows =="
"$SWEEP" "${ARGS[@]}" --jobs 2 --csv "$WORK/region.csv" \
         --out "$WORK/region.json"
# The r64 config point: region rows relabeled must equal baseline rows.
grep ',r64,baseline,' "$WORK/region.csv" > "$WORK/r64-base.csv"
grep ',r64,region,' "$WORK/region.csv" | sed 's/,r64,region,/,r64,baseline,/' \
    > "$WORK/r64-region.csv"
if [ ! -s "$WORK/r64-base.csv" ] || [ ! -s "$WORK/r64-region.csv" ]; then
    echo "FAIL: r64 rows missing from the region grid CSV"
    exit 1
fi
cmp "$WORK/r64-base.csv" "$WORK/r64-region.csv"
echo "OK: region@64B rows byte-identical to baseline rows"

echo "== 2/4 region grid is deterministic across --jobs =="
"$SWEEP" "${ARGS[@]}" --jobs 1 --out "$WORK/region-serial.json"
cmp "$WORK/region.json" "$WORK/region-serial.json"
echo "OK: region grid byte-identical at any --jobs"

echo "== 3/4 2-shard --merge reproduces the single-machine run =="
"$SWEEP" "${ARGS[@]}" --jobs 2 --shard 1/2 --journal "$WORK/shard1.journal"
"$SWEEP" "${ARGS[@]}" --jobs 2 --shard 2/2 --journal "$WORK/shard2.journal"
"$SWEEP" "${ARGS[@]}" --merge "$WORK/shard1.journal" \
         --merge "$WORK/shard2.journal" --out "$WORK/merged.json"
cmp "$WORK/region.json" "$WORK/merged.json"
echo "OK: merged shard report byte-identical to the direct run"

echo "== 4/4 trace info --json =="
"$TRACE" record --workload barnes --accesses 300 --seed 7 \
         --out "$WORK/cli.altr" > /dev/null
"$TRACE" info "$WORK/cli.altr" > "$WORK/info.txt"
"$TRACE" info "$WORK/cli.altr" --json > "$WORK/info.json"
# Human block unchanged; JSON carries the same metadata machine-readably.
grep -q "workload        barnes" "$WORK/info.txt"
grep -q "captured_seed   7" "$WORK/info.txt"
grep -q '"workload": "barnes"' "$WORK/info.json"
grep -q '"captured_seed": 7' "$WORK/info.json"
grep -q '"captured_mode": "baseline"' "$WORK/info.json"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$WORK/info.json"
echo "OK: trace info --json is well-formed and matches the capture"

echo "region smoke: all checks passed"
