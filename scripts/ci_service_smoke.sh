#!/usr/bin/env bash
# CI smoke for the crash-safe sweep service (also runs fine locally):
#
#  1. baseline       - direct CLI sweeps of the request grids (reference
#                      bytes for everything below);
#  2. batch          - enqueue two requests, run the service to idle:
#                      exit 0, both done, reports byte-identical to the
#                      direct sweeps, CSV written where asked, health
#                      file present;
#  3. SIGKILL        - kill -9 the service mid-sweep, restart it: the
#                      interrupted request resumes through its journal
#                      and the recovered report matches the reference
#                      bytes exactly;
#  4. SIGTERM drain  - the running service drains gracefully: exit 0,
#                      in-flight work journaled, state still `running`,
#                      no torn state files; the next start completes it
#                      byte-identically;
#  5. reject         - a malformed request is rejected with its reason
#                      recorded and the service exits 3 (degraded);
#  6. failpoint      - an injected queue-scan fault heals on the next
#                      poll without losing the request.
#
# Usage: scripts/ci_service_smoke.sh [path-to-allarm_serve] [path-to-sweep]
set -euo pipefail

SERVE=${1:-./build/allarm_serve}
SWEEP=${2:-./build/sweep}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

REQ_A='{"grid": "quick", "seeds": 2, "seed": 42, "accesses": 400, "csv": true}'
REQ_B='{"grid": "quick", "seeds": 2, "seed": 43, "accesses": 400}'

echo "== 1/6 baseline (direct CLI sweeps) =="
"$SWEEP" --grid quick --seeds 2 --seed 42 --accesses 400 \
    --out "$WORK/ref-a.json" --csv "$WORK/ref-a.csv"
"$SWEEP" --grid quick --seeds 2 --seed 43 --accesses 400 \
    --out "$WORK/ref-b.json"
echo "OK: references written"

echo "== 2/6 batch: enqueue two requests, run to idle =="
SPOOL="$WORK/spool-batch"
printf '%s' "$REQ_A" > "$WORK/req-a.json"
printf '%s' "$REQ_B" > "$WORK/req-b.json"
"$SERVE" --root "$SPOOL" --enqueue "$WORK/req-a.json" --as alpha
"$SERVE" --root "$SPOOL" --enqueue "$WORK/req-b.json" --as beta
"$SERVE" --root "$SPOOL" --exit-when-idle --workers 2 --max-active 2 --poll-ms 50
for ID in alpha beta; do
    [ "$(cat "$SPOOL/requests/$ID/state")" = "done" ] \
        || { echo "FAIL: $ID not done"; exit 1; }
done
cmp "$SPOOL/requests/alpha/report.json" "$WORK/ref-a.json"
cmp "$SPOOL/requests/alpha/report.csv" "$WORK/ref-a.csv"
cmp "$SPOOL/requests/beta/report.json" "$WORK/ref-b.json"
grep -q '"done":2' "$SPOOL/health.json" \
    || { echo "FAIL: health.json missing done count"; cat "$SPOOL/health.json"; exit 1; }
echo "OK: both requests done, reports byte-identical to the CLI"

echo "== 3/6 SIGKILL mid-sweep, restart resumes through the journal =="
SPOOL="$WORK/spool-kill"
"$SERVE" --root "$SPOOL" --enqueue "$WORK/req-a.json" --as victim
"$SERVE" --root "$SPOOL" --workers 2 --poll-ms 20 2> "$WORK/kill.log" &
SRV=$!
sleep 0.7
kill -9 "$SRV" 2>/dev/null || true
wait "$SRV" 2>/dev/null || true
# Whatever the kill tore, the state file must read as a whole word.
STATE=$(cat "$SPOOL/requests/victim/state" 2>/dev/null || echo "pending")
case "$STATE" in pending|running|done) ;; *)
    echo "FAIL: torn or unexpected state '$STATE' after SIGKILL"; exit 1;;
esac
"$SERVE" --root "$SPOOL" --exit-when-idle --workers 2 --poll-ms 50
[ "$(cat "$SPOOL/requests/victim/state")" = "done" ] \
    || { echo "FAIL: victim not done after restart"; exit 1; }
cmp "$SPOOL/requests/victim/report.json" "$WORK/ref-a.json"
echo "OK: killed at '$STATE', recovered byte-identical"

echo "== 4/6 SIGTERM drains gracefully and the next start completes =="
SPOOL="$WORK/spool-drain"
"$SERVE" --root "$SPOOL" --enqueue "$WORK/req-a.json" --as sleeper
"$SERVE" --root "$SPOOL" --workers 2 --poll-ms 20 --drain-ms 60000 \
    2> "$WORK/drain.log" &
SRV=$!
sleep 0.7
kill -TERM "$SRV"
RC=0; wait "$SRV" || RC=$?
[ "$RC" -eq 0 ] || { echo "FAIL: drain exited $RC"; cat "$WORK/drain.log"; exit 1; }
STATE=$(cat "$SPOOL/requests/sleeper/state")
case "$STATE" in running|done) ;; *)
    echo "FAIL: unexpected post-drain state '$STATE'"; exit 1;;
esac
ls "$SPOOL/requests/sleeper"/.tmp-* 2>/dev/null \
    && { echo "FAIL: torn temp file survived the drain"; exit 1; }
"$SERVE" --root "$SPOOL" --exit-when-idle --workers 2 --poll-ms 50
cmp "$SPOOL/requests/sleeper/report.json" "$WORK/ref-a.json"
echo "OK: drained with exit 0 at state '$STATE', completed byte-identical"

echo "== 5/6 malformed request is rejected with its reason =="
SPOOL="$WORK/spool-reject"
mkdir -p "$SPOOL/queue"
printf '{"grid": "quick", "seedz": 2}' > "$SPOOL/queue/typo.json"
RC=0
"$SERVE" --root "$SPOOL" --exit-when-idle --poll-ms 50 || RC=$?
[ "$RC" -eq 3 ] || { echo "FAIL: expected degraded exit 3, got $RC"; exit 1; }
[ "$(cat "$SPOOL/requests/typo/state")" = "rejected" ] \
    || { echo "FAIL: typo not rejected"; exit 1; }
grep -q "seedz" "$SPOOL/requests/typo/error" \
    || { echo "FAIL: reject reason not recorded"; exit 1; }
echo "OK: rejected with recorded reason, exit 3"

echo "== 6/6 injected queue-scan fault heals on the next poll =="
SPOOL="$WORK/spool-fault"
"$SERVE" --root "$SPOOL" --enqueue "$WORK/req-b.json" --as survivor
"$SERVE" --root "$SPOOL" --exit-when-idle --workers 2 --poll-ms 50 \
    --failpoints "service.scan=err@1" 2> "$WORK/fault.log"
[ "$(cat "$SPOOL/requests/survivor/state")" = "done" ] \
    || { echo "FAIL: survivor lost to the scan fault"; exit 1; }
grep -q "failpoint service.scan" "$WORK/fault.log" \
    || { echo "FAIL: the scan fault never fired"; exit 1; }
cmp "$SPOOL/requests/survivor/report.json" "$WORK/ref-b.json"
echo "OK: scan fault absorbed, request completed byte-identical"

echo "ALL SERVICE SMOKES PASSED"
