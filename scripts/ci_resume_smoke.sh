#!/usr/bin/env bash
# CI smoke for the streaming sweep chassis (also runs fine locally):
#
#  1. determinism   - the quick grid at --jobs 2 vs --jobs 1 is byte-identical;
#  2. kill/resume   - a journaled sweep is SIGKILLed once ~40% of its jobs
#                     have been journaled, then rerun with --resume; the
#                     resumed report must be byte-identical to an
#                     uninterrupted run (and must actually have resumed
#                     jobs from the journal, not recomputed everything);
#  3. shard/merge   - --shard 1/2 and --shard 2/2 partial runs, folded with
#                     --merge, must reproduce the single-machine bytes for
#                     both the JSON and the CSV report.
#
# Usage: scripts/ci_resume_smoke.sh [path-to-sweep-binary]
set -euo pipefail

SWEEP=${1:-./build/sweep}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

ARGS=(--grid quick --seeds 2 --accesses 2000 --seed 42)
# Journal layout constants (docs/SWEEPS.md): 64-byte header, 40-byte records.
HEADER=64
RECORD=40

echo "== 1/3 determinism: --jobs 2 vs --jobs 1 =="
"$SWEEP" "${ARGS[@]}" --jobs 2 --out "$WORK/full.json" --csv "$WORK/full.csv" \
    2> "$WORK/full.log"
cat "$WORK/full.log" >&2
"$SWEEP" "${ARGS[@]}" --jobs 1 --out "$WORK/full-j1.json"
cmp "$WORK/full.json" "$WORK/full-j1.json"
echo "OK: byte-identical at any --jobs"

# Take the grid's job count from the sweep's own banner so the 40% kill
# target tracks any future change to the quick grid or the flags above.
TOTAL_JOBS=$(sed -n "s/^sweep '.*': \([0-9][0-9]*\) jobs.*/\1/p" "$WORK/full.log")
if [ -z "$TOTAL_JOBS" ] || [ "$TOTAL_JOBS" -lt 2 ]; then
    echo "FAIL: could not parse a usable job count from the sweep banner"
    exit 1
fi

echo "== 2/3 kill -9 at ~40% of journaled jobs, then --resume =="
TARGET=$(( (TOTAL_JOBS * 40 + 99) / 100 ))   # ceil(40%)
"$SWEEP" "${ARGS[@]}" --jobs 1 --journal "$WORK/run.journal" \
         --out "$WORK/interrupted.json" &
PID=$!
KILLED=0
for _ in $(seq 1 600); do
    if ! kill -0 "$PID" 2>/dev/null; then
        break  # Finished before we could kill it (very fast machine).
    fi
    SIZE=$(stat -c %s "$WORK/run.journal" 2>/dev/null || echo 0)
    RECORDS=$(( SIZE > HEADER ? (SIZE - HEADER) / RECORD : 0 ))
    if [ "$RECORDS" -ge "$TARGET" ]; then
        kill -9 "$PID"
        KILLED=1
        break
    fi
    sleep 0.05
done
wait "$PID" 2>/dev/null || true
if [ "$KILLED" -eq 1 ]; then
    echo "killed sweep (pid $PID) after >=$TARGET of $TOTAL_JOBS jobs journaled"
else
    echo "WARNING: sweep finished before the kill window; resume still checked"
fi

"$SWEEP" "${ARGS[@]}" --jobs 2 --journal "$WORK/run.journal" --resume \
         --out "$WORK/resumed.json" 2> "$WORK/resume.log"
cat "$WORK/resume.log"
cmp "$WORK/full.json" "$WORK/resumed.json"
RESUMED=$(sed -n 's/.* \([0-9][0-9]*\) resumed from journal.*/\1/p' "$WORK/resume.log")
if [ -z "$RESUMED" ]; then
    echo "FAIL: resume re-ran everything (no jobs resumed)"
    exit 1
fi
# Guards the hand-copied HEADER/RECORD constants above: if the journal
# layout drifts, the record arithmetic (and hence TARGET) is wrong and the
# resumed count will not line up with it (tolerate one torn tail record).
if [ "$KILLED" -eq 1 ] && [ "$RESUMED" -lt $((TARGET - 1)) ]; then
    echo "FAIL: killed after counting $TARGET journaled jobs but only" \
         "$RESUMED resumed — journal layout constants have drifted"
    exit 1
fi
echo "OK: resumed report is byte-identical to an uninterrupted run"

echo "== 3/3 2-shard run + --merge vs single-machine bytes =="
"$SWEEP" "${ARGS[@]}" --jobs 2 --shard 1/2 --journal "$WORK/s1.journal" \
         --out "$WORK/s1.json"
"$SWEEP" "${ARGS[@]}" --jobs 2 --shard 2/2 --journal "$WORK/s2.journal" \
         --out "$WORK/s2.json"
"$SWEEP" "${ARGS[@]}" --merge "$WORK/s1.journal" --merge "$WORK/s2.journal" \
         --out "$WORK/merged.json" --csv "$WORK/merged.csv"
cmp "$WORK/full.json" "$WORK/merged.json"
cmp "$WORK/full.csv" "$WORK/merged.csv"
# Shard reports must be genuine partials, not two copies of the whole.
[ "$(stat -c %s "$WORK/s1.json")" -lt "$(stat -c %s "$WORK/full.json")" ]
[ "$(stat -c %s "$WORK/s2.json")" -lt "$(stat -c %s "$WORK/full.json")" ]
echo "OK: shard+merge reproduces the single-machine bytes (json + csv)"

echo "resume smoke: all checks passed"
