#!/usr/bin/env python3
"""Validate bench JSON reports and gate throughput regressions.

Replaces the ad-hoc inline Python that used to live in the CI workflow.
Handles the schema_version-1 report kinds:

- kernel_throughput (bench_kernel_throughput): full-System events/sec for
  the serial / multithreaded / migration / zipf profiles.
- generator_throughput (bench_generator_throughput): raw workload-generator
  accesses/sec, one next/ and one batch/ entry per generator kind (the
  front-end the serial profile is bound by).
- trace_replay (bench_trace_replay): .altr trace-pipeline records/sec —
  raw block read, record decode, a full trace-replay simulation, and the
  equivalent direct synthetic simulation.
- region (bench_ablation_region): full-System simulated events/sec across
  the directory schemes (baseline, allarm, region at several region
  sizes); the degenerate region/r64 row guards the shared hot path.
- parallel (bench_parallel): the lane-sharded event kernel (barrier and
  lax modes, docs/PARALLEL.md) against the serial kernel on the largest
  stock mesh; the bench itself hard-fails if a barrier row's event count
  diverges from serial.

Two checks per report:

1. Schema: the report must declare the expected bench kind and workload
   list, positive event counts and rates, and zero event heap fallbacks
   (the allocation-free kernel guarantee; generator reports carry a
   constant 0).

2. Regression gate versus a committed baseline
   (bench/baseline/BENCH_kernel.json or BENCH_generator.json by default).
   Two complementary checks, because a relative gate cannot distinguish
   "slower machine" from "everything got slower":

   - Relative: each workload's current/baseline rate ratio is normalized
     by the MEDIAN ratio across workloads.  This cancels uniform
     machine-speed differences and does not let one improved workload
     make its untouched peers look regressed (a geomean normalization
     would); a workload more than --max-regression slower than its peers
     fails.
   - Absolute floor: the median ratio itself must stay above
     --min-median-ratio (default 0.5).  This catches a regression large
     enough to drag the majority of workloads down (which the median
     normalization alone would cancel) while still tolerating CI runners
     up to 2x slower than the baseline machine.

   Remaining blind spot: a slowdown of every workload that stays above
   the absolute floor and moves them all about equally.  Run with
   --absolute on the machine that recorded the baseline to check raw
   events_per_sec with no normalization.

Refresh the baselines by re-running the same commands CI uses:

    ./build/bench_kernel_throughput --accesses 2000 --reps 5 \
        --out bench/baseline/BENCH_kernel.json
    ./build/bench_generator_throughput --accesses 2000000 --reps 5 \
        --out bench/baseline/BENCH_generator.json
    ./build/bench_trace_replay --accesses 2000 --reps 5 \
        --out bench/baseline/BENCH_trace_replay.json
    ./build/bench_ablation_region --accesses 2000 --reps 5 \
        --out bench/baseline/BENCH_region.json
    ./build/bench_parallel --accesses 2000 --reps 3 \
        --out bench/baseline/BENCH_parallel.json

Exit status: 0 on pass, 1 on any schema or regression failure.
"""

import argparse
import json
import statistics
import sys

KERNEL_WORKLOADS = ["serial", "multithreaded", "migration", "zipf"]
GENERATOR_KINDS = ["sweep", "uniform", "zipf", "chunk", "creep", "profile"]
GENERATOR_WORKLOADS = [
    f"{kind}/{mode}" for kind in GENERATOR_KINDS for mode in ("next", "batch")
]
TRACE_WORKLOADS = ["read", "decode", "replay", "synthetic"]
REGION_WORKLOADS = [
    "baseline/r4096",
    "allarm/r4096",
    "region/r4096",
    "region/r1024",
    "region/r64",
]
PARALLEL_WORKLOADS = [
    "serial",
    "barrier/s1",
    "barrier/s2",
    "barrier/s4",
    "lax/s4",
]
EXPECTED = {
    "kernel_throughput": {
        "workloads": KERNEL_WORKLOADS,
        "default_baseline": "bench/baseline/BENCH_kernel.json",
    },
    "generator_throughput": {
        "workloads": GENERATOR_WORKLOADS,
        "default_baseline": "bench/baseline/BENCH_generator.json",
    },
    "trace_replay": {
        "workloads": TRACE_WORKLOADS,
        "default_baseline": "bench/baseline/BENCH_trace_replay.json",
    },
    "region": {
        "workloads": REGION_WORKLOADS,
        "default_baseline": "bench/baseline/BENCH_region.json",
    },
    "parallel": {
        "workloads": PARALLEL_WORKLOADS,
        "default_baseline": "bench/baseline/BENCH_parallel.json",
    },
}


def fail(message: str) -> None:
    print(f"check_bench: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def load_report(path: str) -> dict:
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")


def check_schema(report: dict, path: str, expected_workloads: list) -> None:
    if report.get("bench") not in EXPECTED:
        fail(f"{path}: unknown bench kind {report.get('bench')!r}")
    if report.get("schema_version") != 1:
        fail(f"{path}: unsupported schema_version {report.get('schema_version')}")
    workloads = report.get("workloads")
    if not isinstance(workloads, list):
        fail(f"{path}: missing workloads array")
    names = [w.get("name") for w in workloads]
    if names != expected_workloads:
        fail(f"{path}: workloads {names}, expected {expected_workloads}")
    for w in workloads:
        for field in ("events", "wall_seconds", "events_per_sec", "ns_per_event"):
            value = w.get(field)
            if not isinstance(value, (int, float)) or value <= 0:
                fail(f"{path}: workload {w.get('name')}: bad {field}={value!r}")
        if w.get("event_heap_fallbacks") != 0:
            fail(
                f"{path}: workload {w.get('name')}: "
                f"{w.get('event_heap_fallbacks')} event heap fallbacks "
                "(allocation-free kernel regressed)"
            )
    if not isinstance(report.get("geomean_events_per_sec"), (int, float)):
        fail(f"{path}: missing geomean_events_per_sec")
    if not isinstance(report.get("accesses_per_thread"), int):
        fail(f"{path}: missing accesses_per_thread")


def rates(report: dict) -> dict:
    return {w["name"]: float(w["events_per_sec"]) for w in report["workloads"]}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "report",
        help="BENCH_kernel.json / BENCH_generator.json produced by this run",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed reference report (default: the bench kind's file "
        "under bench/baseline/)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.10,
        help="fail when any workload regresses more than this fraction "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--min-median-ratio",
        type=float,
        default=0.5,
        help="fail when the median current/baseline rate ratio falls below "
        "this (absolute floor under the normalization; default: %(default)s)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="compare raw events_per_sec instead of median-normalized "
        "ratios (use on the machine that recorded the baseline)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="schema validation only (e.g. sanitizer builds, where "
        "throughput numbers are meaningless)",
    )
    args = parser.parse_args()

    report = load_report(args.report)
    kind = report.get("bench")
    if kind not in EXPECTED:
        fail(f"{args.report}: unknown bench kind {kind!r}")
    expected_workloads = EXPECTED[kind]["workloads"]
    check_schema(report, args.report, expected_workloads)

    if args.no_baseline:
        print(f"check_bench: {kind} schema OK (baseline comparison skipped)")
        return

    baseline_path = args.baseline or EXPECTED[kind]["default_baseline"]
    baseline = load_report(baseline_path)
    if baseline.get("bench") != kind:
        fail(
            f"{baseline_path}: bench kind {baseline.get('bench')!r} does not "
            f"match report kind {kind!r}"
        )
    check_schema(baseline, baseline_path, expected_workloads)

    if report["accesses_per_thread"] != baseline["accesses_per_thread"]:
        fail(
            f"budget mismatch: report ran accesses_per_thread="
            f"{report['accesses_per_thread']}, baseline recorded "
            f"{baseline['accesses_per_thread']} — shares are not comparable. "
            "Re-record the baseline or rerun the bench at the baseline budget."
        )

    current, reference = rates(report), rates(baseline)
    ratios = {name: current[name] / reference[name] for name in expected_workloads}
    if not args.absolute:
        # Median normalization cancels uniform machine-speed differences
        # without letting one improved workload drag its untouched peers'
        # shares below the threshold (a geomean normalization would).
        norm = statistics.median(ratios.values())
        print(f"check_bench: median raw ratio vs baseline = {norm:.3f}")
        if norm < args.min_median_ratio:
            fail(
                f"median rate ratio {norm:.3f} is below the "
                f"{args.min_median_ratio} floor — the majority of workloads "
                "regressed (or this runner is drastically slower than the "
                "baseline machine; re-record the baseline if so)"
            )
        ratios = {name: r / norm for name, r in ratios.items()}
        mode = "median-normalized"
    else:
        mode = "absolute events/sec"

    failures = []
    for name in expected_workloads:
        ratio = ratios[name]
        status = "OK"
        if ratio < 1.0 - args.max_regression:
            status = "REGRESSED"
            failures.append(name)
        print(
            f"check_bench: {name:<14} {mode} ratio vs baseline = "
            f"{ratio:.3f}  [{status}]"
        )

    if failures:
        fail(
            f"{', '.join(failures)} regressed more than "
            f"{args.max_regression:.0%} vs {baseline_path}"
        )
    print(
        "check_bench: OK — geomean "
        f"{report['geomean_events_per_sec']:,.0f} events/s "
        f"(baseline {baseline['geomean_events_per_sec']:,.0f})"
    )


if __name__ == "__main__":
    main()
