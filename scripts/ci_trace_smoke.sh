#!/usr/bin/env bash
# CI smoke for the trace capture + replay subsystem (also runs fine
# locally):
#
#  1. capture invisibility  - `sweep --capture DIR` must produce a report
#                             byte-identical to the direct run (capture is
#                             a pure side effect) and one .altr per job;
#  2. replay identity       - `sweep --replay DIR` at a DIFFERENT --jobs
#                             must reproduce the direct report byte for
#                             byte: the acceptance property of trace
#                             replay;
#  3. trace grid            - `sweep --grid trace` over a captured .altr
#                             is deterministic across --jobs;
#  4. trace CLI             - record -> info -> cat -> replay round trip;
#                             the replay result block must equal the
#                             record result block byte for byte.
#
# Usage: scripts/ci_trace_smoke.sh [path-to-sweep] [path-to-trace]
set -euo pipefail

SWEEP=${1:-./build/sweep}
TRACE=${2:-./build/trace}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

ARGS=(--grid quick --seeds 2 --accesses 1000 --seed 42)

echo "== 1/4 capture is invisible to the report =="
"$SWEEP" "${ARGS[@]}" --jobs 2 --out "$WORK/direct.json" 2> "$WORK/direct.log"
cat "$WORK/direct.log" >&2
"$SWEEP" "${ARGS[@]}" --jobs 2 --capture "$WORK/traces" \
         --out "$WORK/captured.json"
cmp "$WORK/direct.json" "$WORK/captured.json"
# One .altr per job, numbered by grid index.
JOBS=$(sed -n "s/^sweep '.*': \([0-9][0-9]*\) jobs.*/\1/p" "$WORK/direct.log")
CAPTURED=$(ls "$WORK/traces"/job-*.altr | wc -l)
if [ -z "$JOBS" ] || [ "$CAPTURED" -ne "$JOBS" ]; then
    echo "FAIL: expected $JOBS captured traces, found $CAPTURED"
    exit 1
fi
echo "OK: captured report identical; $CAPTURED traces written"

echo "== 2/4 replay reproduces the direct report at any --jobs =="
"$SWEEP" "${ARGS[@]}" --jobs 3 --replay "$WORK/traces" \
         --out "$WORK/replayed.json"
cmp "$WORK/direct.json" "$WORK/replayed.json"
echo "OK: replayed report is byte-identical to the direct run"

echo "== 3/4 trace grid is deterministic across --jobs =="
"$SWEEP" --grid trace --trace "$WORK/traces/job-0.altr" --cores 16,8 \
         --seeds 1 --seed 42 --jobs 2 --out "$WORK/grid-a.json"
"$SWEEP" --grid trace --trace "$WORK/traces/job-0.altr" --cores 16,8 \
         --seeds 1 --seed 42 --jobs 1 --out "$WORK/grid-b.json"
cmp "$WORK/grid-a.json" "$WORK/grid-b.json"
echo "OK: trace grid byte-identical at any --jobs"

echo "== 4/4 trace CLI record / info / cat / replay =="
"$TRACE" record --workload barnes --accesses 500 --seed 7 \
         --out "$WORK/cli.altr" > "$WORK/record.txt"
"$TRACE" info "$WORK/cli.altr" > "$WORK/info.txt"
grep -q "workload        barnes" "$WORK/info.txt"
grep -q "captured_seed   7" "$WORK/info.txt"
# cat emits legacy text; every line must parse as "<tid> <L|S|I> <hex>".
"$TRACE" cat "$WORK/cli.altr" --limit 1000 > "$WORK/cat.txt"
LINES=$(wc -l < "$WORK/cat.txt")
BAD=$(grep -cvE '^[0-9]+ [LSI] [0-9a-f]+$' "$WORK/cat.txt" || true)
if [ "$LINES" -ne 1000 ] || [ "$BAD" -ne 0 ]; then
    echo "FAIL: trace cat emitted $LINES lines ($BAD malformed)"
    exit 1
fi
# Replay defaults (mode/policy/seed) come from the trace itself; its
# result block must match the capture run's exactly.
"$TRACE" replay "$WORK/cli.altr" > "$WORK/replay.txt"
cmp "$WORK/record.txt" "$WORK/replay.txt"
echo "OK: CLI replay result block matches the capture run"

echo "trace smoke: all checks passed"
