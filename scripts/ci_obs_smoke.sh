#!/usr/bin/env bash
# CI smoke for the observability layer (also runs fine locally):
#
#  1. byte-identity  - the default sweep report is byte-identical whether
#                      instrumentation is dormant (no flags) or active but
#                      redirected (--timeline + --profile writing elsewhere,
#                      the --profile run re-reported with profile off);
#  2. sweep timeline - --timeline writes valid Chrome trace-event JSON with
#                      the sweep/sink/journal/sim span categories;
#  3. PDES timeline  - a lax parallel run adds the par category
#                      (window/flush spans), still valid JSON;
#  4. profile        - --profile adds a hist section with p50/p95/p99 for
#                      every latency metric, in both the CLI report and a
#                      service report requesting "profile": true;
#  5. service        - a service batch run with --timeline emits service
#                      spans and writes parseable health.json/metrics.prom;
#  6. failpoints     - obs.timeline and service.metrics faults degrade
#                      loudly (logged) without corrupting the run's results.
#
# Usage: scripts/ci_obs_smoke.sh [path-to-sweep] [path-to-allarm_serve] \
#                                [path-to-allarm_sim]
set -euo pipefail

SWEEP=${1:-./build/sweep}
SERVE=${2:-./build/allarm_serve}
SIM=${3:-./build/allarm_sim}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# Validates a timeline file: well-formed Chrome trace JSON whose complete
# events cover at least the categories passed as arguments.
check_timeline() {
    python3 - "$@" <<'EOF'
import json, sys
path, want = sys.argv[1], set(sys.argv[2:])
doc = json.load(open(path))
events = doc["traceEvents"]
spans = [e for e in events if e.get("ph") == "X"]
assert spans, "no complete events in " + path
for e in spans:
    assert {"name", "cat", "ts", "dur", "pid", "tid"} <= e.keys(), e
cats = {e["cat"] for e in spans}
missing = want - cats
assert not missing, f"{path}: missing categories {missing} (have {cats})"
print(f"OK: {path}: {len(spans)} spans, categories {sorted(cats)}")
EOF
}

echo "== 1/6 default report bytes are unchanged by instrumentation =="
"$SWEEP" --grid quick --seeds 2 --accesses 400 --jobs 2 \
    --out "$WORK/ref.json" --csv "$WORK/ref.csv"
"$SWEEP" --grid quick --seeds 2 --accesses 400 --jobs 2 \
    --out "$WORK/instr.json" --csv "$WORK/instr.csv" \
    --timeline "$WORK/instr-timeline.json"
cmp "$WORK/ref.json" "$WORK/instr.json"
cmp "$WORK/ref.csv" "$WORK/instr.csv"
# A --profile run re-merged without --profile must also match: the journal
# carries histograms, the default report never shows them.
"$SWEEP" --grid quick --seeds 2 --accesses 400 --jobs 2 --profile \
    --journal "$WORK/prof.journal" --out "$WORK/prof.json"
"$SWEEP" --grid quick --seeds 2 --accesses 400 --jobs 2 \
    --merge "$WORK/prof.journal" --out "$WORK/prof-replay.json"
cmp "$WORK/ref.json" "$WORK/prof-replay.json"
echo "OK: default reports byte-identical with instrumentation on"

echo "== 2/6 sweep timeline is valid Chrome trace JSON =="
"$SWEEP" --grid quick --seeds 2 --accesses 400 --jobs 2 \
    --journal "$WORK/tl.journal" --out "$WORK/tl.json" \
    --timeline "$WORK/sweep-timeline.json"
check_timeline "$WORK/sweep-timeline.json" sweep sink journal sim
echo "OK: sweep timeline validated"

echo "== 3/6 PDES (lax) run adds the par category =="
"$SIM" --benchmark ocean-cont --accesses 2000 --mode allarm \
    --par-shards 2 --par-mode lax --timeline "$WORK/pdes-timeline.json" \
    > /dev/null
# Only the par category is asserted: a lax run emits a window span per
# barrier, which (by design) can overflow the first-N-kept ring before the
# enclosing sim.run span closes.
check_timeline "$WORK/pdes-timeline.json" par
echo "OK: PDES timeline validated"

echo "== 4/6 --profile exports hist.* quantiles =="
"$SWEEP" --grid quick --seeds 2 --accesses 400 --jobs 2 --profile \
    --out "$WORK/hist.json"
python3 - "$WORK/hist.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for cell in doc["cells"]:
    hist = cell["hist"]
    assert "access_latency_ns" in hist, hist.keys()
    for name, h in hist.items():
        assert {"p50", "p95", "p99", "max", "count"} <= h.keys(), (name, h)
        assert h["p50"] <= h["p95"] <= h["p99"] <= h["max"], (name, h)
print(f"OK: hist sections on {len(doc['cells'])} cells")
EOF
echo "OK: profile quantiles exported"

echo "== 5/6 service batch with --timeline, health + metrics parse =="
SPOOL="$WORK/spool"
printf '{"grid": "quick", "seeds": 2, "accesses": 400, "profile": true}' \
    > "$WORK/req.json"
"$SERVE" --root "$SPOOL" --enqueue "$WORK/req.json" --as probe
"$SERVE" --root "$SPOOL" --exit-when-idle --workers 2 --poll-ms 50 \
    --timeline "$WORK/serve-timeline.json"
check_timeline "$WORK/serve-timeline.json" service sweep sim journal
python3 - "$SPOOL" <<'EOF'
import json, sys
root = sys.argv[1]
health = json.load(open(root + "/health.json"))
for key in ("pid", "uptime_s", "queue_depth", "requests", "jobs_per_s",
            "pool", "totals", "active", "last_error"):
    assert key in health, key
assert health["totals"]["jobs_executed"] > 0, health["totals"]
samples = 0
for line in open(root + "/metrics.prom"):
    line = line.strip()
    if not line or line.startswith("#"):
        continue
    name, value = line.rsplit(" ", 1)
    float(value)  # Every sample line must end in a number.
    assert name.startswith("allarm_"), line
    samples += 1
assert samples >= 10, f"only {samples} metric samples"
print(f"OK: health.json keys present, {samples} prom samples parse")
EOF
report="$SPOOL/requests/probe/report.json"
grep -q '"hist"' "$report" \
    || { echo "FAIL: service report missing hist section"; exit 1; }
echo "OK: service observability validated"

echo "== 6/6 observability write faults degrade loudly, results intact =="
RC=0
"$SWEEP" --grid quick --seeds 2 --accesses 400 --jobs 2 \
    --out "$WORK/fault.json" --timeline "$WORK/fault-timeline.json" \
    --failpoints "obs.timeline=err@1" 2> "$WORK/fault.log" || RC=$?
[ "$RC" -eq 0 ] || { echo "FAIL: timeline fault changed exit code ($RC)"; exit 1; }
grep -q "failpoint obs.timeline" "$WORK/fault.log" \
    || { echo "FAIL: timeline fault never logged"; cat "$WORK/fault.log"; exit 1; }
cmp "$WORK/ref.json" "$WORK/fault.json"
test ! -s "$WORK/fault-timeline.json" \
    || { echo "FAIL: faulted timeline file present and non-empty"; exit 1; }
SPOOL="$WORK/spool-fault"
"$SERVE" --root "$SPOOL" --enqueue "$WORK/req.json" --as survivor
"$SERVE" --root "$SPOOL" --exit-when-idle --workers 2 --poll-ms 50 \
    --failpoints "service.metrics=err@1" 2> "$WORK/metrics-fault.log"
[ "$(cat "$SPOOL/requests/survivor/state")" = "done" ] \
    || { echo "FAIL: metrics fault took down the request"; exit 1; }
grep -q "failpoint service.metrics" "$WORK/metrics-fault.log" \
    || { echo "FAIL: metrics fault never logged"; exit 1; }
echo "OK: faults loud, results untouched"

echo "ALL OBS SMOKES PASSED"
