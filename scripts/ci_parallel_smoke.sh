#!/usr/bin/env bash
# CI smoke for parallel single-simulation (PDES) mode (docs/PARALLEL.md;
# also runs fine locally):
#
#  1. barrier oracle   - the conservative barrier mode must reproduce the
#                        serial sweep report byte for byte at 1, 2 and 4
#                        event-queue shards (JSON and CSV both);
#  2. jobs invariance  - a sharded barrier run is still byte-identical
#                        across --jobs (the split_budget worker division
#                        must not leak into report bytes);
#  3. lax determinism  - the slack-bounded lax mode is approximate by
#                        design but must be deterministic run to run;
#  4. flag validation  - shard counts that do not divide the mesh width
#                        and lax-only flags on barrier runs fail fast with
#                        a usage error, not mid-sweep.
#
# Usage: scripts/ci_parallel_smoke.sh [path-to-sweep]
set -euo pipefail

SWEEP=${1:-./build/sweep}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

ARGS=(--grid quick --seeds 2 --accesses 500 --seed 42)

echo "== 1/4 barrier mode reproduces the serial report at 1/2/4 shards =="
"$SWEEP" "${ARGS[@]}" --jobs 2 --out "$WORK/serial.json" \
         --csv "$WORK/serial.csv"
for shards in 1 2 4; do
    "$SWEEP" "${ARGS[@]}" --jobs 2 --par-shards "$shards" --par-mode barrier \
             --out "$WORK/par$shards.json" --csv "$WORK/par$shards.csv"
    cmp "$WORK/serial.json" "$WORK/par$shards.json"
    cmp "$WORK/serial.csv" "$WORK/par$shards.csv"
    echo "OK: barrier @ $shards shard(s) byte-identical to serial"
done

echo "== 2/4 sharded barrier run is --jobs invariant =="
"$SWEEP" "${ARGS[@]}" --jobs 1 --par-shards 4 --par-mode barrier \
         --out "$WORK/par4-j1.json"
cmp "$WORK/par4.json" "$WORK/par4-j1.json"
echo "OK: 4-shard barrier report byte-identical at any --jobs"

echo "== 3/4 lax mode is deterministic run to run =="
"$SWEEP" "${ARGS[@]}" --jobs 2 --par-shards 4 --par-mode lax \
         --out "$WORK/lax-a.json"
"$SWEEP" "${ARGS[@]}" --jobs 2 --par-shards 4 --par-mode lax \
         --out "$WORK/lax-b.json"
cmp "$WORK/lax-a.json" "$WORK/lax-b.json"
echo "OK: lax reports reproduce byte-identically"

echo "== 4/4 invalid parallel flags fail fast =="
if "$SWEEP" "${ARGS[@]}" --par-shards 3 --out "$WORK/bad.json" \
        2> "$WORK/bad-shards.err"; then
    echo "FAIL: --par-shards 3 (does not divide mesh width 4) was accepted"
    exit 1
fi
grep -qi "shard" "$WORK/bad-shards.err"
if "$SWEEP" "${ARGS[@]}" --par-shards 2 --par-slack-ns 50 \
        --out "$WORK/bad.json" 2> "$WORK/bad-slack.err"; then
    echo "FAIL: --par-slack-ns on a barrier run was accepted"
    exit 1
fi
echo "OK: bad shard counts and barrier+slack combinations are rejected"

echo "parallel smoke: all checks passed"
