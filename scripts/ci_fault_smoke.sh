#!/usr/bin/env bash
# CI smoke for the fault-injection layer and self-healing sweep execution
# (also runs fine locally):
#
#  1. baseline       - a clean journaled run of the quick grid (reference
#                      bytes for everything below);
#  2. fault/resume   - for a rotation of injected faults (journal fsync,
#                      torn pwrite, journal append, report sink write) the
#                      sweep either absorbs the fault byte-identically or
#                      fails loudly; after a loud failure, a clean --resume
#                      must reproduce the reference bytes;
#  3. retry          - a transient per-attempt fault plus --cell-retries
#                      heals in place: exit 0 and byte-identical output;
#  4. quarantine     - a permanent per-job fault plus --quarantine finishes
#                      the sweep with exit 3 and a structured "failed"
#                      report section; a clean --resume recovers the
#                      reference bytes and exit 0;
#  5. watchdog       - an absurdly small --cell-timeout quarantines every
#                      job with a no-progress diagnostic; a generous one
#                      changes nothing, not one byte.
#
# Usage: scripts/ci_fault_smoke.sh [path-to-sweep-binary]
set -euo pipefail

SWEEP=${1:-./build/sweep}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# --jobs 1 keeps counter-based failpoint ordinals deterministic.
ARGS=(--grid quick --seeds 2 --accesses 300 --seed 42 --jobs 1)

echo "== 1/5 baseline =="
"$SWEEP" "${ARGS[@]}" --out "$WORK/full.json" --csv "$WORK/full.csv"
echo "OK: baseline written"

echo "== 2/5 injected faults: absorb byte-identically or resume to reference =="
FAULTS=(
    "journal.fsync=err@1"
    "journal.append=err@5"
    "fileio.pwrite=torn@6"
    "fileio.pwrite=short@9"
    "sink.write=err@3"
)
for FAULT in "${FAULTS[@]}"; do
    JOURNAL="$WORK/fault-${FAULT//[^a-z0-9]/_}.journal"
    OUT="$WORK/fault.json"
    rm -f "$JOURNAL" "${JOURNAL}.data" "$OUT"
    RC=0
    "$SWEEP" "${ARGS[@]}" --journal "$JOURNAL" --out "$OUT" \
        --failpoints "$FAULT" 2> "$WORK/fault.log" || RC=$?
    if [ "$RC" -eq 0 ]; then
        # The fault never fired or was absorbed: bytes must be untouched.
        cmp "$WORK/full.json" "$OUT"
        echo "OK: $FAULT absorbed, byte-identical"
    else
        grep -q "injected fault" "$WORK/fault.log" || {
            echo "FAIL: $FAULT failed without naming the injection:"
            cat "$WORK/fault.log"
            exit 1
        }
        "$SWEEP" "${ARGS[@]}" --journal "$JOURNAL" --resume --out "$OUT" \
            2> "$WORK/resume.log"
        grep -q "resumed from journal" "$WORK/resume.log" || true
        cmp "$WORK/full.json" "$OUT"
        echo "OK: $FAULT failed loudly (exit $RC), resume reproduced the bytes"
    fi
done

echo "== 3/5 --cell-retries heals a transient fault in place =="
"$SWEEP" "${ARGS[@]}" --out "$WORK/retry.json" \
    --failpoints "cell.attempt=err@3" --cell-retries 2 --cell-backoff-ms 0 \
    2> "$WORK/retry.log"
grep -q "1 retries" "$WORK/retry.log"
cmp "$WORK/full.json" "$WORK/retry.json"
echo "OK: transient fault retried away, byte-identical"

echo "== 4/5 --quarantine: degraded completion (exit 3) then resume to clean =="
RC=0
"$SWEEP" "${ARGS[@]}" --journal "$WORK/q.journal" --out "$WORK/q.json" \
    --failpoints "cell.job=err@2" --quarantine 2> "$WORK/q.log" || RC=$?
[ "$RC" -eq 3 ] || {
    echo "FAIL: quarantined sweep exited $RC, want 3"
    cat "$WORK/q.log"
    exit 1
}
grep -q '"failed"' "$WORK/q.json"
grep -q "DEGRADED" "$WORK/q.log"
"$SWEEP" "${ARGS[@]}" --journal "$WORK/q.journal" --resume \
    --out "$WORK/q-resumed.json"
cmp "$WORK/full.json" "$WORK/q-resumed.json"
echo "OK: quarantine exit 3 with structured failed section; resume is clean"

echo "== 5/5 cell watchdog: tiny timeout quarantines, generous one is a no-op =="
RC=0
"$SWEEP" "${ARGS[@]}" --out "$WORK/wd.json" \
    --cell-timeout 0.000001 --quarantine 2> "$WORK/wd.log" || RC=$?
[ "$RC" -eq 3 ] || {
    echo "FAIL: watchdogged sweep exited $RC, want 3"
    exit 1
}
grep -q "no-progress watchdog" "$WORK/wd.json"
"$SWEEP" "${ARGS[@]}" --out "$WORK/wd-off.json" --cell-timeout 60
cmp "$WORK/full.json" "$WORK/wd-off.json"
echo "OK: watchdog fires on a tiny deadline and perturbs nothing otherwise"

echo "fault smoke: all checks passed"
