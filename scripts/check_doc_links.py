#!/usr/bin/env python3
"""Fail on dead relative links in the repo's markdown documentation.

Scans README.md and docs/*.md (plus any extra files passed on the command
line) for inline markdown links and checks every relative target against
the working tree.  Checked:

- relative file links, e.g. [sweeps](docs/SWEEPS.md) or [tests](../tests)
  -- the target path must exist, resolved against the linking file's
  directory;
- anchors on relative links, e.g. docs/PERF.md#thread-pool -- the target
  file must contain a heading whose GitHub slug matches the fragment.

Skipped: absolute URLs (http/https/mailto), pure intra-file anchors
(#section -- tied to the renderer), and links inside fenced code blocks.

Usage: scripts/check_doc_links.py [extra.md ...]
Exit status: 0 when every link resolves, 1 otherwise.
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def slugify(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to dashes, punctuation out."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: pathlib.Path) -> set:
    anchors, fenced = set(), False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if fenced:
            continue
        match = HEADING_RE.match(line)
        if match:
            anchors.add(slugify(match.group(1)))
    return anchors


def check_file(path: pathlib.Path) -> list:
    errors, fenced = [], False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if fenced:
            continue
        for target in LINK_RE.findall(line):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
                continue
            if target.startswith("#"):  # intra-file anchor
                continue
            base, _, fragment = target.partition("#")
            resolved = (path.parent / base).resolve()
            rel = path.relative_to(REPO)
            if not resolved.exists():
                errors.append(f"{rel}:{lineno}: dead link -> {target}")
                continue
            if fragment and resolved.is_file() and resolved.suffix == ".md":
                if fragment not in anchors_of(resolved):
                    errors.append(
                        f"{rel}:{lineno}: missing anchor -> {target}"
                    )
    return errors


def main() -> int:
    files = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))
    files += [pathlib.Path(arg).resolve() for arg in sys.argv[1:]]
    errors, missing = [], []
    for path in files:
        if not path.exists():
            missing.append(str(path.relative_to(REPO)))
            continue
        errors.extend(check_file(path))
    for name in missing:
        errors.append(f"{name}: file missing (expected by the doc map)")
    if errors:
        print("check_doc_links: FAIL", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    print(f"check_doc_links: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
