// Trace-pipeline throughput benchmark.
//
// Captures one synthetic benchmark run to a temporary .altr trace, then
// measures the trace pipeline stage by stage, in records per second:
//
//   read       raw block streaming: every record block loaded and
//              CRC-verified, payloads undecoded (the I/O + checksum floor);
//   decode     full record iteration through TraceCursors (read + the
//              varint/delta codec);
//   replay     a complete simulation replaying the trace (the trace-driven
//              sweep cell cost);
//   synthetic  the equivalent direct synthetic simulation (what replay is
//              measured against — replay ~= synthetic means the trace
//              front-end adds nothing to cell cost).
//
// The report reuses BENCH_kernel.json's schema (version 1) with
// "bench": "trace_replay" and events = records processed, so
// scripts/check_bench.py gates it with the same machinery against
// bench/baseline/BENCH_trace_replay.json.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_cli.hh"
#include "common/stats.hh"
#include "core/experiment.hh"
#include "runner/report.hh"
#include "trace/reader.hh"
#include "trace/replay.hh"
#include "workload/profiles.hh"

namespace allarm::bench {
namespace {

struct Options {
  std::uint64_t accesses = 2000;  ///< ROI accesses/thread of the captured run.
  int reps = 3;
  std::string out = "BENCH_trace_replay.json";
  std::string only;
  std::string workload = "dedup";
};

struct StageResult {
  std::string name;
  std::uint64_t records = 0;
  double wall_seconds = 0.0;
  double records_per_sec = 0.0;
  double ns_per_record = 0.0;
};

template <typename Fn>
StageResult measure(const std::string& name, std::uint64_t records, int reps,
                    Fn&& stage) {
  StageResult r;
  r.name = name;
  r.records = records;
  r.wall_seconds = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    stage();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    if (secs < r.wall_seconds) r.wall_seconds = secs;
  }
  r.records_per_sec =
      r.wall_seconds > 0.0 ? static_cast<double>(records) / r.wall_seconds
                           : 0.0;
  r.ns_per_record =
      records > 0 ? r.wall_seconds * 1e9 / static_cast<double>(records) : 0.0;
  return r;
}

std::string to_json(const std::vector<StageResult>& results,
                    const Options& opt) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"trace_replay\",\n";
  out << "  \"schema_version\": 1,\n";
  out << meta_json();
  out << "  \"accesses_per_thread\": " << opt.accesses << ",\n";
  out << "  \"reps\": " << opt.reps << ",\n";
  out << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const StageResult& r = results[i];
    out << "    {\n";
    out << "      \"name\": " << json_quote(r.name) << ",\n";
    out << "      \"events\": " << r.records << ",\n";
    out << "      \"wall_seconds\": " << json_number(r.wall_seconds) << ",\n";
    out << "      \"events_per_sec\": " << json_number(r.records_per_sec)
        << ",\n";
    out << "      \"ns_per_event\": " << json_number(r.ns_per_record) << ",\n";
    out << "      \"baseline_events_per_sec\": 0,\n";
    out << "      \"speedup_vs_baseline\": 0,\n";
    out << "      \"event_heap_fallbacks\": 0\n";
    out << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  {
    std::vector<double> rates;
    for (const StageResult& r : results) rates.push_back(r.records_per_sec);
    out << "  \"geomean_events_per_sec\": " << json_number(geomean(rates))
        << ",\n";
    out << "  \"geomean_speedup_vs_baseline\": 0\n";
  }
  out << "}\n";
  return out.str();
}

int run(const Options& opt) {
  const std::string trace_path = opt.out + ".capture.altr";

  // Capture once (not measured): the trace every stage below consumes.
  core::RunRequest request;
  request.spec =
      workload::make_benchmark(opt.workload, request.config, opt.accesses);
  request.seed = 42;
  request.capture_trace = trace_path;
  std::cerr << "capturing " << opt.workload << " (" << opt.accesses
            << " accesses/thread) -> " << trace_path << "\n";
  core::run_request(request);
  request.capture_trace.clear();

  auto reader = std::make_shared<const trace::TraceReader>(trace_path);
  const std::uint64_t records = reader->total_records();
  std::cerr << "trace: " << records << " records, "
            << reader->blocks().size() << " blocks, " << reader->file_bytes()
            << " bytes\n";

  std::vector<StageResult> results;
  std::uint64_t checksum = 0;  // Defeats dead-code elimination.

  if (selected(opt.only, "read")) {
    results.push_back(measure("read", records, opt.reps, [&] {
      std::string payload;
      for (const trace::IndexEntry& block : reader->blocks()) {
        reader->load_block(block, payload);
        checksum ^= payload.size();
      }
    }));
  }
  if (selected(opt.only, "decode")) {
    results.push_back(measure("decode", records, opt.reps, [&] {
      trace::Record record;
      for (std::uint32_t slot = 0; slot < reader->thread_count(); ++slot) {
        trace::TraceCursor cursor(*reader, slot);
        while (cursor.next(record)) checksum ^= record.access.vaddr;
      }
    }));
  }
  if (selected(opt.only, "replay")) {
    core::RunRequest replay = request;
    replay.replay_trace = trace_path;
    results.push_back(measure("replay", records, opt.reps, [&] {
      checksum ^= core::run_request(replay).runtime;
    }));
  }
  if (selected(opt.only, "synthetic")) {
    results.push_back(measure("synthetic", records, opt.reps, [&] {
      checksum ^= core::run_request(request).runtime;
    }));
  }
  if (checksum == 0xdeadbeef) std::cerr << "";  // Keep `checksum` observable.

  if (results.empty()) {
    std::cerr << "no stage selected by --only " << opt.only << "\n";
    std::remove(trace_path.c_str());
    return 2;
  }

  TextTable table({"stage", "records", "wall_s", "Mrec/s", "ns/record"});
  for (const StageResult& r : results) {
    table.add_row({r.name, std::to_string(r.records),
                   TextTable::fmt(r.wall_seconds, 4),
                   TextTable::fmt(r.records_per_sec / 1e6, 2),
                   TextTable::fmt(r.ns_per_record, 1)});
  }
  std::cout << "Trace pipeline throughput (workload=" << opt.workload
            << ", accesses=" << opt.accesses << ", reps=" << opt.reps << ")\n"
            << table.to_string();

  runner::write_file(opt.out, to_json(results, opt));
  std::cout << "wrote " << opt.out << "\n";
  std::remove(trace_path.c_str());
  return 0;
}

}  // namespace
}  // namespace allarm::bench

int main(int argc, char** argv) {
  allarm::bench::Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--accesses") {
      opt.accesses = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--reps") {
      opt.reps = std::atoi(value().c_str());
    } else if (arg == "--out") {
      opt.out = value();
    } else if (arg == "--only") {
      opt.only = value();
    } else if (arg == "--workload") {
      opt.workload = value();
    } else {
      std::cerr << "usage: bench_trace_replay [--accesses N] [--reps N] "
                   "[--workload NAME] [--only LIST] [--out FILE]\n";
      return arg == "--help" ? 0 : 2;
    }
  }
  return allarm::bench::run(opt);
}
