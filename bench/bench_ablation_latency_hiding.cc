// Ablation (validates Section II-D): the ALLARM local probe issued in
// parallel with the speculative DRAM read vs fully serialized before it.
// With the parallel scheme the probe is hidden whenever it misses and DRAM
// is slower; serializing it puts the probe on the critical path of every
// remote miss.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hh"

namespace {

using namespace allarm;

const std::vector<std::string> kBenches{"ocean-cont", "fluidanimate",
                                        "blackscholes"};

bench::PairCache& cache() {
  static bench::PairCache c;
  return c;
}

std::uint64_t accesses() { return core::bench_accesses(20000); }

core::RunResult& run_one(const std::string& name, bool parallel) {
  SystemConfig config;
  config.allarm_parallel_local_probe = parallel;
  const auto spec = workload::make_benchmark(name, config, accesses());
  return cache().run_single(name + (parallel ? "/par" : "/ser"), config,
                            DirectoryMode::kAllarm, spec);
}

void BM_Hiding(benchmark::State& state, const std::string& name,
               bool parallel) {
  for (auto _ : state) {
    auto& r = run_one(name, parallel);
    state.counters["hidden_fraction"] =
        r.stats.get("dir.probe_hidden_fraction");
  }
}

void print_summary() {
  TextTable t({"benchmark", "hidden (parallel)", "hidden (serial)",
               "runtime parallel/serial"});
  for (const auto& name : kBenches) {
    auto& par = cache().single_at(name + "/par");
    auto& ser = cache().single_at(name + "/ser");
    t.add_row({name,
               TextTable::fmt(par.stats.get("dir.probe_hidden_fraction"), 3),
               TextTable::fmt(ser.stats.get("dir.probe_hidden_fraction"), 3),
               TextTable::fmt(static_cast<double>(par.runtime) / ser.runtime,
                              3)});
  }
  std::cout << "\n=== Ablation: local-probe latency hiding (Section II-D) "
               "===\n"
            << t.to_string()
            << "\nParallel issue hides the probe behind the DRAM access "
               "(paper: 81% of remote requests);\nserialized issue hides "
               "nothing by construction.\n";
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& name : kBenches) {
    for (const bool parallel : {true, false}) {
      benchmark::RegisterBenchmark(
          ("latency_hiding/" + name + (parallel ? "/parallel" : "/serial"))
              .c_str(),
          [name, parallel](benchmark::State& st) {
            BM_Hiding(st, name, parallel);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  return allarm::bench::run_benchmarks(argc, argv, print_summary);
}
