// Event-kernel throughput benchmark.
//
// Measures raw discrete-event throughput (events/sec, ns/event) of the
// simulation kernel across three representative workloads:
//
//   serial        - one thread streaming through its private working set
//                   (the sparse-schedule case: long idle gaps between
//                   events, exercises the far-horizon overflow heap);
//   multithreaded - the 16-thread `ocean` profile (dense event interleaving
//                   across all nodes, the sweep runner's common case);
//   migration     - the same profile with periodic thread migration (adds
//                   the System migration tick and cross-node traffic);
//   zipf          - the 16-thread `dedup` profile, whose shared traffic is
//                   Zipf-page sampling (the generator-bound case the
//                   guide-table inverse-CDF accelerates).
//
// Unlike the figure benches this binary does not need google-benchmark:
// simulations are deterministic, so each measurement is a min-of-N wall
// clock around System::run.  Results are written to BENCH_kernel.json (see
// docs/PERF.md for the schema) so the perf trajectory is tracked in CI.
//
// The hard-coded baseline numbers were measured on the pre-rewrite kernel
// (std::function + std::priority_queue, commit ccbf067) on the same
// machine class CI uses, with the default budget below.  The JSON reports
// measured/baseline speedup per workload; the acceptance bar for the
// allocation-free kernel is >= 2x on the aggregate events/sec.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_cli.hh"
#include "common/stats.hh"
#include "core/experiment.hh"
#include "core/system.hh"
#include "runner/report.hh"
#include "sim/event.hh"
#include "workload/profiles.hh"

namespace allarm::bench {
namespace {

struct WorkloadResult {
  std::string name;
  std::uint64_t events = 0;       ///< Events executed in the measured run.
  double wall_seconds = 0.0;      ///< Best-of-reps wall time.
  double events_per_sec = 0.0;
  double ns_per_event = 0.0;
  double baseline_events_per_sec = 0.0;  ///< Pre-rewrite kernel, same budget.
  double speedup_vs_baseline = 0.0;
  /// Events whose closure overflowed sim::Event's inline buffer (counted
  /// across all reps; the allocation-free claim expects 0).
  std::uint64_t event_heap_fallbacks = 0;
};

/// Budget the baselines below were recorded at; other budgets disable the
/// comparison (throughput varies with warmup fraction and working-set
/// size, so cross-budget speedups would be apples-to-oranges).
constexpr std::uint64_t kBaselineAccesses = 20000;

/// Pre-rewrite kernel throughput (events/sec) at accesses=20000.
/// 0 disables the comparison for a workload.
double baseline_events_per_sec(const std::string& workload,
                               std::uint64_t accesses) {
  if (accesses != kBaselineAccesses) return 0.0;
  if (workload == "serial") return 6.58e6;
  if (workload == "multithreaded") return 3.62e6;
  if (workload == "migration") return 4.69e6;
  // "zipf" has no pre-rewrite reference: the workload was added together
  // with the generator front-end work.
  return 0.0;
}

struct Options {
  std::uint64_t accesses = 20000;
  int reps = 3;
  std::string out = "BENCH_kernel.json";
  /// When non-empty, run just these workloads (comma-separated names;
  /// bench_cli.hh's selected()).
  std::string only;
};

WorkloadResult measure(const std::string& name, const SystemConfig& config,
                       const workload::WorkloadSpec& spec,
                       const core::RunOptions& options, const Options& opt) {
  const int reps = opt.reps;
  WorkloadResult r;
  r.name = name;
  r.wall_seconds = 1e300;
  const std::uint64_t fallbacks_before = sim::Event::heap_fallbacks();
  for (int i = 0; i < reps; ++i) {
    core::System system(config);
    const auto t0 = std::chrono::steady_clock::now();
    core::RunResult run = system.run(spec, options);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    r.events = system.events().events_executed();
    if (secs < r.wall_seconds) r.wall_seconds = secs;
  }
  r.events_per_sec =
      r.wall_seconds > 0.0 ? static_cast<double>(r.events) / r.wall_seconds : 0.0;
  r.ns_per_event =
      r.events > 0 ? r.wall_seconds * 1e9 / static_cast<double>(r.events) : 0.0;
  r.baseline_events_per_sec = baseline_events_per_sec(name, opt.accesses);
  r.speedup_vs_baseline = r.baseline_events_per_sec > 0.0
                              ? r.events_per_sec / r.baseline_events_per_sec
                              : 0.0;
  r.event_heap_fallbacks = sim::Event::heap_fallbacks() - fallbacks_before;
  return r;
}

std::string to_json(const std::vector<WorkloadResult>& results,
                    const Options& opt) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"kernel_throughput\",\n";
  out << "  \"schema_version\": 1,\n";
  out << meta_json();
  out << "  \"accesses_per_thread\": " << opt.accesses << ",\n";
  out << "  \"reps\": " << opt.reps << ",\n";
  out << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    out << "    {\n";
    out << "      \"name\": " << json_quote(r.name) << ",\n";
    out << "      \"events\": " << r.events << ",\n";
    out << "      \"wall_seconds\": " << json_number(r.wall_seconds) << ",\n";
    out << "      \"events_per_sec\": " << json_number(r.events_per_sec)
        << ",\n";
    out << "      \"ns_per_event\": " << json_number(r.ns_per_event) << ",\n";
    out << "      \"baseline_events_per_sec\": "
        << json_number(r.baseline_events_per_sec) << ",\n";
    out << "      \"speedup_vs_baseline\": "
        << json_number(r.speedup_vs_baseline) << ",\n";
    out << "      \"event_heap_fallbacks\": " << r.event_heap_fallbacks
        << "\n";
    out << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  {
    std::vector<double> rates, speedups;
    for (const WorkloadResult& r : results) {
      rates.push_back(r.events_per_sec);
      if (r.speedup_vs_baseline > 0.0) speedups.push_back(r.speedup_vs_baseline);
    }
    out << "  \"geomean_events_per_sec\": " << json_number(geomean(rates))
        << ",\n";
    out << "  \"geomean_speedup_vs_baseline\": "
        << json_number(geomean(speedups)) << "\n";
  }
  out << "}\n";
  return out.str();
}

int run(const Options& opt) {
  const SystemConfig config;

  std::vector<WorkloadResult> results;
  const auto wanted = [&opt](const char* name) {
    return selected(opt.only, name);
  };

  if (wanted("serial")) {
    // Serial: one thread, private-heavy profile, no app sharing.
    workload::ProfileParams params = workload::benchmark_params("ocean-cont");
    params.name = "serial";
    const workload::WorkloadSpec spec =
        workload::make_from_params(params, config, opt.accesses, 1);
    core::RunOptions ro;
    ro.seed = 42;
    results.push_back(measure("serial", config, spec, ro, opt));
  }
  if (wanted("multithreaded")) {
    // Multithreaded: the full 16-thread profile.
    const workload::WorkloadSpec spec =
        workload::make_benchmark("ocean-cont", config, opt.accesses);
    core::RunOptions ro;
    ro.seed = 42;
    results.push_back(measure("multithreaded", config, spec, ro, opt));
  }
  if (wanted("migration")) {
    // Migration: multithreaded plus a periodic thread migration tick.
    const workload::WorkloadSpec spec =
        workload::make_benchmark("ocean-cont", config, opt.accesses);
    core::RunOptions ro;
    ro.seed = 42;
    ro.migration_interval = ticks_from_ns(20000.0);  // Every 20 us.
    results.push_back(measure("migration", config, spec, ro, opt));
  }
  if (wanted("zipf")) {
    // Zipf: dedup's shared structure is Zipf-page popularity — the profile
    // whose per-access sampling cost the guide table attacks.
    const workload::WorkloadSpec spec =
        workload::make_benchmark("dedup", config, opt.accesses);
    core::RunOptions ro;
    ro.seed = 42;
    results.push_back(measure("zipf", config, spec, ro, opt));
  }
  if (results.empty()) {
    std::cerr << "unknown workload: " << opt.only << "\n";
    return 2;
  }

  TextTable table({"workload", "events", "wall_s", "Mev/s", "ns/event",
                   "speedup_vs_baseline"});
  for (const WorkloadResult& r : results) {
    table.add_row({r.name, std::to_string(r.events),
                   TextTable::fmt(r.wall_seconds, 3),
                   TextTable::fmt(r.events_per_sec / 1e6, 2),
                   TextTable::fmt(r.ns_per_event, 1),
                   r.speedup_vs_baseline > 0.0
                       ? TextTable::fmt(r.speedup_vs_baseline, 2)
                       : "n/a"});
  }
  std::cout << "Event-kernel throughput (accesses=" << opt.accesses
            << ", reps=" << opt.reps << ")\n"
            << table.to_string();

  const std::string json = to_json(results, opt);
  runner::write_file(opt.out, json);
  std::cout << "wrote " << opt.out << "\n";
  return 0;
}

}  // namespace
}  // namespace allarm::bench

int main(int argc, char** argv) {
  allarm::bench::Options opt;
  opt.accesses = allarm::core::bench_accesses(opt.accesses);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--accesses") {
      opt.accesses = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--reps") {
      opt.reps = std::atoi(value().c_str());
    } else if (arg == "--out") {
      opt.out = value();
    } else if (arg == "--only") {
      opt.only = value();
    } else {
      std::cerr << "usage: bench_kernel_throughput [--accesses N] [--reps N] "
                   "[--only serial,multithreaded,migration,zipf] "
                   "[--out FILE]\n";
      return arg == "--help" ? 0 : 2;
    }
  }
  return allarm::bench::run(opt);
}
