// Shared CLI helpers for the chrono-only throughput benches
// (bench_kernel_throughput, bench_generator_throughput).  Deliberately free
// of the google-benchmark dependency bench_util.hh carries: these binaries
// must always build so CI's perf-smoke steps can run them.
#pragma once

#include <cstddef>
#include <string>

namespace allarm::bench {

/// True when `name` appears in the comma-separated `only` list (an empty
/// list selects everything).
inline bool selected(const std::string& only, const std::string& name) {
  if (only.empty()) return true;
  std::size_t pos = 0;
  while (pos <= only.size()) {
    const std::size_t comma = only.find(',', pos);
    const std::size_t end = comma == std::string::npos ? only.size() : comma;
    if (only.compare(pos, end - pos, name) == 0) return true;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return false;
}

}  // namespace allarm::bench
