// Shared CLI helpers for the chrono-only throughput benches
// (bench_kernel_throughput, bench_generator_throughput).  Deliberately free
// of the google-benchmark dependency bench_util.hh carries: these binaries
// must always build so CI's perf-smoke steps can run them.
#pragma once

#include <cstddef>
#include <string>
#include <thread>

namespace allarm::bench {

/// True when `name` appears in the comma-separated `only` list (an empty
/// list selects everything).
inline bool selected(const std::string& only, const std::string& name) {
  if (only.empty()) return true;
  std::size_t pos = 0;
  while (pos <= only.size()) {
    const std::size_t comma = only.find(',', pos);
    const std::size_t end = comma == std::string::npos ? only.size() : comma;
    if (only.compare(pos, end - pos, name) == 0) return true;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return false;
}

/// Provenance block stamped into every BENCH_*.json, emitted right after
/// schema_version: git revision and build type (compile definitions from
/// CMake; "unknown" when built outside the tree) plus the host core count.
/// check_bench.py ignores unknown top-level keys, so trajectories written
/// before this block compare cleanly against ones written after.
inline std::string meta_json() {
#if defined(ALLARM_GIT_DESCRIBE)
  const char* git = ALLARM_GIT_DESCRIBE;
#else
  const char* git = "unknown";
#endif
#if defined(ALLARM_BUILD_TYPE)
  const char* build = ALLARM_BUILD_TYPE;
#else
  const char* build = "unknown";
#endif
  return std::string("  \"meta\": {\"git\": \"") + git + "\", \"build_type\": \"" +
         build + "\", \"cores\": " +
         std::to_string(std::thread::hardware_concurrency()) + "},\n";
}

}  // namespace allarm::bench
