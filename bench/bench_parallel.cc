// Parallel single-simulation (PDES) throughput benchmark.
//
// Measures the lane-sharded event kernel (src/parallel/, docs/PARALLEL.md)
// on the largest stock mesh (8x8, one thread per node) against the serial
// kernel:
//
//   serial       - the plain single-lane kernel (the oracle);
//   barrier/sN   - N event-queue shards, conservative barrier mode.  The
//                  execution order is byte-identical to serial by
//                  construction; this row measures what the lane merge
//                  costs (or saves) per event.  The bench HARD-FAILS if a
//                  barrier run's event count diverges from serial.
//   lax/s4       - 4 shards, slack-bounded windows with mailbox flushes
//                  (approximate; the error study lives in docs/PARALLEL.md).
//
// Like bench_kernel_throughput this is plain chrono (min-of-reps around
// System::run), writes a schema_version-1 JSON report, and is gated by
// scripts/check_bench.py against bench/baseline/BENCH_parallel.json.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_cli.hh"
#include "common/stats.hh"
#include "core/experiment.hh"
#include "core/system.hh"
#include "parallel/engine.hh"
#include "runner/report.hh"
#include "sim/event.hh"
#include "workload/profiles.hh"

namespace allarm::bench {
namespace {

struct WorkloadResult {
  std::string name;
  std::uint64_t events = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  double ns_per_event = 0.0;
  double speedup_vs_serial = 0.0;  ///< This row's rate / the serial row's.
  std::uint64_t event_heap_fallbacks = 0;
  std::uint64_t cross_events = 0;  ///< Cross-lane schedules (0 for serial).
};

struct Options {
  std::uint64_t accesses = 2000;
  int reps = 3;
  std::string out = "BENCH_parallel.json";
  std::string only;
};

SystemConfig big_mesh_config() {
  SystemConfig config;
  config.mesh_width = 8;
  config.mesh_height = 8;
  config.num_cores = config.num_nodes();  // one core per node, as validated
  return config;
}

WorkloadResult measure(const std::string& name, const SystemConfig& config,
                       const workload::WorkloadSpec& spec,
                       const core::RunOptions& options, const Options& opt) {
  WorkloadResult r;
  r.name = name;
  r.wall_seconds = 1e300;
  const std::uint64_t fallbacks_before = sim::Event::heap_fallbacks();
  for (int i = 0; i < opt.reps; ++i) {
    core::System system(config);
    const auto t0 = std::chrono::steady_clock::now();
    core::RunResult run = system.run(spec, options);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    r.events = system.events().events_executed();
    r.cross_events = run.par.cross_events;
    if (secs < r.wall_seconds) r.wall_seconds = secs;
  }
  r.events_per_sec =
      r.wall_seconds > 0.0 ? static_cast<double>(r.events) / r.wall_seconds
                           : 0.0;
  r.ns_per_event =
      r.events > 0 ? r.wall_seconds * 1e9 / static_cast<double>(r.events) : 0.0;
  r.event_heap_fallbacks = sim::Event::heap_fallbacks() - fallbacks_before;
  return r;
}

std::string to_json(const std::vector<WorkloadResult>& results,
                    const Options& opt) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"parallel\",\n";
  out << "  \"schema_version\": 1,\n";
  out << meta_json();
  out << "  \"accesses_per_thread\": " << opt.accesses << ",\n";
  out << "  \"reps\": " << opt.reps << ",\n";
  out << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    out << "    {\n";
    out << "      \"name\": " << json_quote(r.name) << ",\n";
    out << "      \"events\": " << r.events << ",\n";
    out << "      \"wall_seconds\": " << json_number(r.wall_seconds) << ",\n";
    out << "      \"events_per_sec\": " << json_number(r.events_per_sec)
        << ",\n";
    out << "      \"ns_per_event\": " << json_number(r.ns_per_event) << ",\n";
    out << "      \"speedup_vs_serial\": " << json_number(r.speedup_vs_serial)
        << ",\n";
    out << "      \"cross_lane_events\": " << r.cross_events << ",\n";
    out << "      \"event_heap_fallbacks\": " << r.event_heap_fallbacks
        << "\n";
    out << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  {
    std::vector<double> rates;
    for (const WorkloadResult& r : results) rates.push_back(r.events_per_sec);
    out << "  \"geomean_events_per_sec\": " << json_number(geomean(rates))
        << "\n";
  }
  out << "}\n";
  return out.str();
}

int run(const Options& opt) {
  const SystemConfig config = big_mesh_config();
  const workload::WorkloadSpec spec = workload::make_from_params(
      workload::benchmark_params("ocean-cont"), config, opt.accesses,
      config.num_nodes());

  struct Row {
    const char* name;
    std::uint32_t shards;
    parallel::ParMode mode;
  };
  const Row rows[] = {
      {"serial", 1, parallel::ParMode::kBarrier},
      {"barrier/s1", 1, parallel::ParMode::kBarrier},
      {"barrier/s2", 2, parallel::ParMode::kBarrier},
      {"barrier/s4", 4, parallel::ParMode::kBarrier},
      {"lax/s4", 4, parallel::ParMode::kLax},
  };

  std::vector<WorkloadResult> results;
  for (const Row& row : rows) {
    if (!selected(opt.only, row.name)) continue;
    core::RunOptions ro;
    ro.seed = 42;
    ro.par.mode = row.mode;
    ro.par.shards = row.shards;
    // "serial" is shards=1 through the serial fast path; "barrier/s1" is
    // the same machine through the sharded merge (shards > 1 required to
    // engage it, so s1 rides the serial path too and measures overhead 0;
    // keep both rows so the trajectory shows the split explicitly).
    if (std::strcmp(row.name, "serial") == 0) ro.par.shards = 1;
    results.push_back(measure(row.name, config, spec, ro, opt));
  }
  if (results.empty()) {
    std::cerr << "unknown workload: " << opt.only << "\n";
    return 2;
  }

  // Byte-exactness spot check: every barrier row must execute EXACTLY the
  // serial event count (full report equality is pinned by
  // tests/parallel_test.cc; the count catches kernel-order drift here).
  const WorkloadResult* serial = nullptr;
  for (const WorkloadResult& r : results) {
    if (r.name == "serial") serial = &r;
  }
  if (serial != nullptr) {
    for (const WorkloadResult& r : results) {
      if (r.name.rfind("barrier/", 0) == 0 && r.events != serial->events) {
        std::cerr << "FAIL: " << r.name << " executed " << r.events
                  << " events but serial executed " << serial->events
                  << " — barrier mode diverged from the oracle\n";
        return 1;
      }
      const_cast<WorkloadResult&>(r).speedup_vs_serial =
          serial->events_per_sec > 0.0
              ? r.events_per_sec / serial->events_per_sec
              : 0.0;
    }
  }

  TextTable table({"workload", "events", "wall_s", "Mev/s", "ns/event",
                   "vs_serial", "cross_lane"});
  for (const WorkloadResult& r : results) {
    table.add_row({r.name, std::to_string(r.events),
                   TextTable::fmt(r.wall_seconds, 3),
                   TextTable::fmt(r.events_per_sec / 1e6, 2),
                   TextTable::fmt(r.ns_per_event, 1),
                   r.speedup_vs_serial > 0.0
                       ? TextTable::fmt(r.speedup_vs_serial, 2)
                       : "n/a",
                   std::to_string(r.cross_events)});
  }
  std::cout << "Parallel kernel throughput (8x8 mesh, accesses="
            << opt.accesses << ", reps=" << opt.reps << ")\n"
            << table.to_string();

  const std::string json = to_json(results, opt);
  runner::write_file(opt.out, json);
  std::cout << "wrote " << opt.out << "\n";
  return 0;
}

}  // namespace
}  // namespace allarm::bench

int main(int argc, char** argv) {
  allarm::bench::Options opt;
  opt.accesses = allarm::core::bench_accesses(opt.accesses);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--accesses") {
      opt.accesses = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--reps") {
      opt.reps = std::atoi(value().c_str());
    } else if (arg == "--out") {
      opt.out = value();
    } else if (arg == "--only") {
      opt.only = value();
    } else {
      std::cerr << "usage: bench_parallel [--accesses N] [--reps N] "
                   "[--only serial,barrier/s1,barrier/s2,barrier/s4,lax/s4] "
                   "[--out FILE]\n";
      return arg == "--help" ? 0 : 2;
    }
  }
  return allarm::bench::run(opt);
}
