// Ablation: probe-filter associativity at fixed coverage.  Higher
// associativity absorbs set-conflict pressure; lower associativity evicts
// more.  ALLARM's advantage persists across geometries because its benefit
// comes from allocation volume, not placement.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_util.hh"

namespace {

using namespace allarm;

const std::vector<std::uint32_t> kWays{2, 4, 8};

std::map<std::string, core::PairResult>& results() {
  static std::map<std::string, core::PairResult> r;
  return r;
}

std::uint64_t accesses() { return core::bench_accesses(20000); }

void BM_Assoc(benchmark::State& state, std::uint32_t ways) {
  for (auto _ : state) {
    SystemConfig config;
    config.probe_filter_ways = ways;
    const auto spec = workload::make_benchmark("ocean-cont", config,
                                               accesses());
    core::PairResult pair = core::run_pair(config, spec, 42);
    state.counters["speedup"] = pair.speedup();
    results()[std::to_string(ways)] = std::move(pair);
  }
}

void print_summary() {
  TextTable t({"PF ways", "baseline evictions", "ALLARM evictions",
               "norm evictions", "speedup"});
  for (const std::uint32_t ways : kWays) {
    auto& pair = results().at(std::to_string(ways));
    t.add_row({std::to_string(ways),
               TextTable::fmt(pair.baseline.stats.get("dir.pf_evictions"), 0),
               TextTable::fmt(pair.allarm.stats.get("dir.pf_evictions"), 0),
               TextTable::fmt(pair.normalized("dir.pf_evictions"), 3),
               TextTable::fmt(pair.speedup(), 3)});
  }
  std::cout << "\n=== Ablation: probe-filter associativity (ocean-cont, "
               "512kB coverage) ===\n"
            << t.to_string();
}

}  // namespace

int main(int argc, char** argv) {
  for (const std::uint32_t ways : kWays) {
    benchmark::RegisterBenchmark(
        ("pf_assoc/" + std::to_string(ways) + "way").c_str(),
        [ways](benchmark::State& st) { BM_Assoc(st, ways); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return allarm::bench::run_benchmarks(argc, argv, print_summary);
}
