// The probe-filter area table (Section III-B): die area of all 16 probe
// filters as the per-node coverage shrinks, i.e. the SRAM that ALLARM can
// hand back to the last-level cache when a smaller filter suffices.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_util.hh"
#include "energy/model.hh"

namespace {

using namespace allarm;

const std::map<std::uint32_t, double> kPaperArea{
    {512, 70.89}, {256, 26.95}, {128, 19.90}, {64, 8.20}, {32, 5.93}};

void BM_AreaModel(benchmark::State& state) {
  double sink = 0;
  for (auto _ : state) {
    for (const auto& [kb, unused] : kPaperArea) {
      sink += energy::EnergyModel::probe_filter_area_mm2(kb * 1024, 16);
    }
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_AreaModel);

void print_table() {
  TextTable t({"PF configuration", "model area (mm^2)", "paper (McPAT, mm^2)"});
  for (const std::uint32_t kb : {512u, 256u, 128u, 64u, 32u}) {
    t.add_row({std::to_string(kb) + "kB",
               TextTable::fmt(
                   energy::EnergyModel::probe_filter_area_mm2(kb * 1024, 16), 2),
               TextTable::fmt(kPaperArea.at(kb), 2)});
  }
  std::cout << "\n=== Probe-filter area vs coverage (16 directories) ===\n"
            << t.to_string()
            << "\nModel: power law fitted to the paper's five McPAT points "
               "(least squares in log space);\nendpoints match closely, "
               "mid-range deviates where the paper's own data is "
               "non-monotone in density.\n";
}

}  // namespace

int main(int argc, char** argv) {
  return allarm::bench::run_benchmarks(argc, argv, print_table);
}
