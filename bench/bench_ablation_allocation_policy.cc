// Ablation (validates the Section II-A assumption): ALLARM depends on
// first-touch page placement homing thread-private data locally.  Under an
// interleaved policy the same workload sends most "private" requests to
// remote directories and the local-miss fast path starves.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_util.hh"

namespace {

using namespace allarm;

const std::vector<std::string> kBenches{"ocean-cont", "barnes"};

std::map<std::string, core::RunResult>& results() {
  static std::map<std::string, core::RunResult> r;
  return r;
}

std::uint64_t accesses() { return core::bench_accesses(20000); }

std::string key_of(const std::string& name, numa::AllocPolicy policy) {
  return name +
         (policy == numa::AllocPolicy::kFirstTouch ? "/first-touch"
                                                   : "/interleave");
}

void BM_Policy(benchmark::State& state, const std::string& name,
               numa::AllocPolicy policy) {
  for (auto _ : state) {
    SystemConfig config;
    const auto spec = workload::make_benchmark(name, config, accesses());
    core::RunResult r =
        core::run_single(config, DirectoryMode::kAllarm, spec, 42, policy);
    state.counters["local_no_alloc"] = r.stats.get("dir.local_no_alloc");
    state.counters["local_fraction"] = r.stats.get("dir.local_fraction");
    results()[key_of(name, policy)] = std::move(r);
  }
}

void print_summary() {
  TextTable t({"benchmark", "policy", "local fraction", "no-alloc fast path",
               "PF inserts"});
  for (const auto& name : kBenches) {
    for (const auto policy :
         {numa::AllocPolicy::kFirstTouch, numa::AllocPolicy::kInterleave}) {
      const auto& r = results().at(key_of(name, policy));
      t.add_row({name,
                 policy == numa::AllocPolicy::kFirstTouch ? "first-touch"
                                                          : "interleave",
                 TextTable::fmt(r.stats.get("dir.local_fraction"), 3),
                 TextTable::fmt(r.stats.get("dir.local_no_alloc"), 0),
                 TextTable::fmt(r.stats.get("pf.inserts"), 0)});
    }
  }
  std::cout << "\n=== Ablation: page-placement policy under ALLARM "
               "(Section II-A) ===\n"
            << t.to_string()
            << "\nFirst-touch keeps private data local, so most misses skip "
               "allocation;\ninterleaving spreads pages and defeats the "
               "detection heuristic.\n";
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& name : kBenches) {
    for (const auto policy :
         {numa::AllocPolicy::kFirstTouch, numa::AllocPolicy::kInterleave}) {
      const char* pname = policy == numa::AllocPolicy::kFirstTouch
                              ? "first_touch"
                              : "interleave";
      benchmark::RegisterBenchmark(
          ("alloc_policy/" + name + "/" + pname).c_str(),
          [name, policy](benchmark::State& st) { BM_Policy(st, name, policy); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  return allarm::bench::run_benchmarks(argc, argv, print_summary);
}
