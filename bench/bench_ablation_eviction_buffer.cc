// Ablation (DESIGN.md modelling decision): synchronous probe-filter
// eviction handling (the reply waits for the victim's invalidation acks,
// the default) vs an eviction buffer that drains victim flows off the
// critical path.  The gap bounds how much of ALLARM's speedup comes from
// removing eviction latency vs removing eviction side effects.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_util.hh"

namespace {

using namespace allarm;

const std::vector<std::string> kBenches{"ocean-cont", "barnes",
                                        "blackscholes"};

std::map<std::string, core::PairResult>& results() {
  static std::map<std::string, core::PairResult> r;
  return r;
}

std::uint64_t accesses() { return core::bench_accesses(20000); }

void BM_Eviction(benchmark::State& state, const std::string& name,
                 bool gates) {
  for (auto _ : state) {
    SystemConfig config;
    config.eviction_gates_reply = gates;
    const auto spec = workload::make_benchmark(name, config, accesses());
    core::PairResult pair = core::run_pair(config, spec, 42);
    state.counters["speedup"] = pair.speedup();
    results()[name + (gates ? "/sync" : "/buffered")] = std::move(pair);
  }
}

void print_summary() {
  TextTable t({"benchmark", "speedup (sync eviction)",
               "speedup (eviction buffer)", "norm evictions"});
  for (const auto& name : kBenches) {
    auto& sync = results().at(name + "/sync");
    auto& buf = results().at(name + "/buffered");
    t.add_row({name, TextTable::fmt(sync.speedup(), 3),
               TextTable::fmt(buf.speedup(), 3),
               TextTable::fmt(sync.normalized("dir.pf_evictions"), 3)});
  }
  std::cout << "\n=== Ablation: eviction cost model ===\n"
            << t.to_string()
            << "\nWith synchronous victim handling, every avoided eviction "
               "also avoids an\ninvalidation round trip on the allocating "
               "miss; with an eviction buffer only\nthe traffic and "
               "invalidation side effects remain.\n";
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& name : kBenches) {
    for (const bool gates : {true, false}) {
      benchmark::RegisterBenchmark(
          ("eviction_model/" + name + (gates ? "/sync" : "/buffered")).c_str(),
          [name, gates](benchmark::State& st) { BM_Eviction(st, name, gates); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  return allarm::bench::run_benchmarks(argc, argv, print_summary);
}
