// Figure 3h: ALLARM speedup as the probe filter shrinks (512kB, 256kB,
// 128kB), every bar normalized to the BASELINE WITH A 512kB probe filter.
//
// Paper shape: blackscholes collapses at 256kB (its CPU0-homed shared data
// loses directory capacity); most others hold; barnes and ocean-contiguous
// stay at or above baseline even at 128kB, i.e. ALLARM enables a 4x smaller
// directory for such workloads.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hh"

namespace {

using namespace allarm;

const std::vector<std::uint32_t> kSizesKb{512, 256, 128};

bench::PairCache& cache() {
  static bench::PairCache c;
  return c;
}

std::uint64_t accesses() { return core::bench_accesses(20000); }

std::string key(const std::string& name, std::uint32_t kb, bool allarm) {
  return name + "/" + std::to_string(kb) + (allarm ? "/allarm" : "/base");
}

core::RunResult& run_one(const std::string& name, std::uint32_t kb,
                         DirectoryMode mode) {
  SystemConfig config;
  config.probe_filter_coverage_bytes = kb * 1024;
  const auto spec = workload::make_benchmark(name, config, accesses());
  return cache().run_single(key(name, kb, mode == DirectoryMode::kAllarm),
                            config, mode, spec);
}

void BM_Sweep(benchmark::State& state, const std::string& name,
              std::uint32_t kb) {
  for (auto _ : state) {
    auto& base512 = run_one(name, 512, DirectoryMode::kBaseline);
    auto& allarm = run_one(name, kb, DirectoryMode::kAllarm);
    state.counters["speedup_vs_base512"] =
        static_cast<double>(base512.runtime) / allarm.runtime;
  }
}

void print_figure() {
  TextTable t({"benchmark", "512kB", "256kB", "128kB"});
  for (const auto& name : workload::benchmark_names()) {
    std::vector<std::string> row{name};
    const double base =
        static_cast<double>(cache().single_at(key(name, 512, false)).runtime);
    for (const std::uint32_t kb : kSizesKb) {
      row.push_back(TextTable::fmt(
          base / cache().single_at(key(name, kb, true)).runtime, 3));
    }
    t.add_row(row);
  }
  std::cout << "\n=== Figure 3h: ALLARM speedup vs probe-filter size "
               "(normalized to baseline @ 512kB) ===\n"
            << t.to_string()
            << "\nPaper: only blackscholes is strongly affected at 256kB; "
               "ocean-non-cont/x264 degrade at 128kB;\nbarnes and "
               "ocean-contiguous hold baseline performance at 128kB (4x "
               "smaller directory).\n";
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& name : workload::benchmark_names()) {
    for (const std::uint32_t kb : kSizesKb) {
      benchmark::RegisterBenchmark(
          ("fig3h/" + name + "/" + std::to_string(kb) + "kB").c_str(),
          [name, kb](benchmark::State& st) { BM_Sweep(st, name, kb); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  return allarm::bench::run_benchmarks(argc, argv, print_figure);
}
