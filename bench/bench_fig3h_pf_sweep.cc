// Figure 3h: ALLARM speedup as the probe filter shrinks (512kB, 256kB,
// 128kB), every bar normalized to the BASELINE WITH A 512kB probe filter.
//
// Paper shape: blackscholes collapses at 256kB (its CPU0-homed shared data
// loses directory capacity); most others hold; barnes and ocean-contiguous
// stay at or above baseline even at 128kB, i.e. ALLARM enables a 4x smaller
// directory for such workloads.
//
// The (benchmark x probe-filter size x mode) grid runs up front on the
// sweep runner across ALLARM_JOBS workers; every cell replays the same
// per-benchmark access stream (seeds are config- and mode-blind), so the
// normalization is apples to apples.
#include <benchmark/benchmark.h>

#include <iostream>
#include <stdexcept>

#include "bench_util.hh"
#include "runner/sink.hh"
#include "runner/sweep.hh"

namespace {

using namespace allarm;

const std::vector<std::uint32_t> kSizesKb{512, 256, 128};

std::uint64_t accesses() { return core::bench_accesses(20000); }

std::string label(std::uint32_t kb) { return std::to_string(kb) + "kB"; }

const runner::SweepResult& sweep() {
  static const runner::SweepResult result = [] {
    runner::SweepSpec spec;
    spec.name = "fig3h";
    spec.workloads = workload::benchmark_names();
    for (const std::uint32_t kb : kSizesKb) {
      SystemConfig config;
      config.probe_filter_coverage_bytes = kb * 1024;
      spec.configs.push_back({label(kb), config});
    }
    spec.modes = {DirectoryMode::kBaseline, DirectoryMode::kAllarm};
    spec.accesses_per_thread = accesses();
    const runner::SweepRunner sweep_runner(core::bench_jobs());
    std::cerr << "fig3h: " << spec.job_count() << " simulations on "
              << sweep_runner.jobs() << " workers\n";
    // Stream cells as they finish; the figure reads runs[0] runtimes only.
    runner::SweepResult out;
    runner::CollectSink sink(out, runner::CollectSink::Retain::kFirstRunOnly);
    sweep_runner.run_streaming(spec, sink);
    return out;
  }();
  return result;
}

Tick runtime_of(const std::string& name, std::uint32_t kb,
                DirectoryMode mode) {
  const runner::CellResult* cell = sweep().find(name, label(kb), mode);
  if (cell == nullptr) {
    throw std::out_of_range("fig3h sweep has no cell " + name + "/" +
                            label(kb) + "/" + to_string(mode));
  }
  return cell->runs.at(0).runtime;
}

void BM_Sweep(benchmark::State& state, const std::string& name,
              std::uint32_t kb) {
  for (auto _ : state) {
    const auto base512 = runtime_of(name, 512, DirectoryMode::kBaseline);
    const auto allarm = runtime_of(name, kb, DirectoryMode::kAllarm);
    state.counters["speedup_vs_base512"] =
        static_cast<double>(base512) / allarm;
  }
}

void print_figure() {
  TextTable t({"benchmark", "512kB", "256kB", "128kB"});
  for (const auto& name : workload::benchmark_names()) {
    std::vector<std::string> row{name};
    const double base = static_cast<double>(
        runtime_of(name, 512, DirectoryMode::kBaseline));
    for (const std::uint32_t kb : kSizesKb) {
      row.push_back(TextTable::fmt(
          base / runtime_of(name, kb, DirectoryMode::kAllarm), 3));
    }
    t.add_row(row);
  }
  std::cout << "\n=== Figure 3h: ALLARM speedup vs probe-filter size "
               "(normalized to baseline @ 512kB) ===\n"
            << t.to_string()
            << "\nPaper: only blackscholes is strongly affected at 256kB; "
               "ocean-non-cont/x264 degrade at 128kB;\nbarnes and "
               "ocean-contiguous hold baseline performance at 128kB (4x "
               "smaller directory).\n";
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& name : workload::benchmark_names()) {
    for (const std::uint32_t kb : kSizesKb) {
      benchmark::RegisterBenchmark(
          ("fig3h/" + name + "/" + std::to_string(kb) + "kB").c_str(),
          [name, kb](benchmark::State& st) { BM_Sweep(st, name, kb); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  return allarm::bench::run_benchmarks(argc, argv, print_figure);
}
