// Workload-generator throughput benchmark.
//
// Measures the raw access-generation front-end in isolation — no event
// kernel, no coherence, just AccessGenerator sampling — so regressions in
// the per-access cost of the generators (the serial-profile bottleneck
// after PR 2 made the kernel allocation-free) are visible directly rather
// than diluted behind simulation work.
//
// Each generator is measured two ways:
//
//   <name>/next   - one virtual next() call per access (the issue path
//                   used when think-jitter draws interleave with
//                   generation draws);
//   <name>/batch  - next_batch() in 64-access spans (the devirtualized
//                   bulk path core::System's issue ring uses).
//
// Both paths produce byte-identical streams (pinned by
// tests/workload_test.cc); this bench tracks only their speed.
//
// The report reuses BENCH_kernel.json's schema (version 1) with
// "bench": "generator_throughput", and events = accesses generated, so
// scripts/check_bench.py gates it with the same machinery.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_cli.hh"
#include "common/stats.hh"
#include "core/experiment.hh"
#include "runner/report.hh"
#include "workload/generator.hh"
#include "workload/profiles.hh"

namespace allarm::bench {
namespace {

using workload::Access;
using workload::AccessGenerator;

struct Options {
  std::uint64_t accesses = 2'000'000;  ///< Accesses per measurement.
  int reps = 3;
  std::string out = "BENCH_generator.json";
  std::string only;  ///< Comma-separated name filter (empty = all).
};

struct GenResult {
  std::string name;
  std::uint64_t accesses = 0;
  double wall_seconds = 0.0;
  double accesses_per_sec = 0.0;
  double ns_per_access = 0.0;
};

/// The generator zoo: fresh instances per measurement so internal position
/// state starts identically for every rep.
std::unique_ptr<AccessGenerator> make_generator(const std::string& kind) {
  constexpr std::uint64_t kMiB = 1024 * 1024;
  if (kind == "sweep") {
    return std::make_unique<workload::SequentialSweep>(0x1000, 4 * kMiB,
                                                       kLineBytes, 0.3);
  }
  if (kind == "uniform") {
    return std::make_unique<workload::UniformRandom>(0x1000, 4 * kMiB, 0.3);
  }
  if (kind == "zipf") {
    return std::make_unique<workload::ZipfPages>(0x1000, 1024, 0.9, 0.2);
  }
  if (kind == "chunk") {
    return std::make_unique<workload::ChunkCycle>(0x1000, 96 * 1024, 16, 3,
                                                  0.25);
  }
  if (kind == "creep") {
    return std::make_unique<workload::CreepingShared>(
        0x1000, 48 * kMiB, 256, ticks_from_ns(30.0), 0.0);
  }
  if (kind == "profile") {
    // The full ocean-cont thread-0 generator: warm-up Phased stages over a
    // steady-state Mix — what the simulator actually issues from.
    SystemConfig config;
    const workload::WorkloadSpec spec =
        workload::make_benchmark("ocean-cont", config, 1000);
    return spec.threads[0].make_generator();
  }
  throw std::invalid_argument("unknown generator kind: " + kind);
}

GenResult measure(const std::string& kind, bool batch, const Options& opt) {
  GenResult r;
  r.name = kind + (batch ? "/batch" : "/next");
  r.accesses = opt.accesses;
  r.wall_seconds = 1e300;
  constexpr std::size_t kBatch = 64;
  Access sink[kBatch];
  std::uint64_t checksum = 0;  // Defeats dead-code elimination.
  for (int rep = 0; rep < opt.reps; ++rep) {
    auto gen = make_generator(kind);
    Rng rng(42);
    // Advance simulated time ~2 ns per access so CreepingShared pays its
    // real head-advance arithmetic instead of a constant-folded head.
    Tick now = 0;
    const auto t0 = std::chrono::steady_clock::now();
    if (batch) {
      for (std::uint64_t done = 0; done < opt.accesses; done += kBatch) {
        gen->next_batch(rng, now, workload::Span<Access>(sink, kBatch));
        checksum ^= sink[0].vaddr;
        now += kBatch * 2 * kTicksPerNs;
      }
    } else {
      for (std::uint64_t done = 0; done < opt.accesses; ++done) {
        sink[0] = gen->next(rng, now);
        checksum ^= sink[0].vaddr;
        now += 2 * kTicksPerNs;
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    if (secs < r.wall_seconds) r.wall_seconds = secs;
  }
  if (checksum == 0xdeadbeef) std::cerr << "";  // Keep `checksum` observable.
  r.accesses_per_sec =
      r.wall_seconds > 0.0 ? static_cast<double>(r.accesses) / r.wall_seconds
                           : 0.0;
  r.ns_per_access = r.accesses > 0
                        ? r.wall_seconds * 1e9 / static_cast<double>(r.accesses)
                        : 0.0;
  return r;
}

std::string to_json(const std::vector<GenResult>& results,
                    const Options& opt) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"generator_throughput\",\n";
  out << "  \"schema_version\": 1,\n";
  out << meta_json();
  out << "  \"accesses_per_thread\": " << opt.accesses << ",\n";
  out << "  \"reps\": " << opt.reps << ",\n";
  out << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const GenResult& r = results[i];
    out << "    {\n";
    out << "      \"name\": " << json_quote(r.name) << ",\n";
    out << "      \"events\": " << r.accesses << ",\n";
    out << "      \"wall_seconds\": " << json_number(r.wall_seconds) << ",\n";
    out << "      \"events_per_sec\": " << json_number(r.accesses_per_sec)
        << ",\n";
    out << "      \"ns_per_event\": " << json_number(r.ns_per_access) << ",\n";
    out << "      \"baseline_events_per_sec\": 0,\n";
    out << "      \"speedup_vs_baseline\": 0,\n";
    out << "      \"event_heap_fallbacks\": 0\n";
    out << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  {
    std::vector<double> rates;
    for (const GenResult& r : results) rates.push_back(r.accesses_per_sec);
    out << "  \"geomean_events_per_sec\": " << json_number(geomean(rates))
        << ",\n";
    out << "  \"geomean_speedup_vs_baseline\": 0\n";
  }
  out << "}\n";
  return out.str();
}

int run(const Options& opt) {
  const char* kinds[] = {"sweep", "uniform", "zipf", "chunk", "creep",
                         "profile"};
  std::vector<GenResult> results;
  for (const char* kind : kinds) {
    for (const bool batch : {false, true}) {
      const std::string name =
          std::string(kind) + (batch ? "/batch" : "/next");
      if (!selected(opt.only, name) && !selected(opt.only, kind)) continue;
      results.push_back(measure(kind, batch, opt));
    }
  }
  if (results.empty()) {
    std::cerr << "no generator selected by --only " << opt.only << "\n";
    return 2;
  }

  TextTable table({"generator", "accesses", "wall_s", "Macc/s", "ns/access"});
  for (const GenResult& r : results) {
    table.add_row({r.name, std::to_string(r.accesses),
                   TextTable::fmt(r.wall_seconds, 3),
                   TextTable::fmt(r.accesses_per_sec / 1e6, 2),
                   TextTable::fmt(r.ns_per_access, 1)});
  }
  std::cout << "Generator throughput (accesses=" << opt.accesses
            << ", reps=" << opt.reps << ")\n"
            << table.to_string();

  runner::write_file(opt.out, to_json(results, opt));
  std::cout << "wrote " << opt.out << "\n";
  return 0;
}

}  // namespace
}  // namespace allarm::bench

int main(int argc, char** argv) {
  allarm::bench::Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--accesses") {
      opt.accesses = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--reps") {
      opt.reps = std::atoi(value().c_str());
    } else if (arg == "--out") {
      opt.out = value();
    } else if (arg == "--only") {
      opt.only = value();
    } else {
      std::cerr << "usage: bench_generator_throughput [--accesses N] "
                   "[--reps N] [--only LIST] [--out FILE]\n";
      return arg == "--help" ? 0 : 2;
    }
  }
  return allarm::bench::run(opt);
}
