// Region-directory ablation benchmark.
//
// Runs one synthetic benchmark workload through the directory schemes the
// region subsystem adds, in simulated events per second of host time:
//
//   baseline/r4096   per-block sparse directory (region knob ignored);
//   allarm/r4096     ALLARM probe filter (region knob ignored);
//   region/r4096     dual-granularity directory, page-sized regions;
//   region/r1024     dual-granularity directory, 1 kB regions;
//   region/r64       the degenerate one-line-per-region point — must track
//                    baseline/r4096 closely, since it runs the identical
//                    protocol path (the region hooks are compiled in but
//                    gated off; this row is the hot-path-cost guard).
//
// The report reuses BENCH_kernel.json's schema (version 1) with
// "bench": "region" and events = simulated events executed, so
// scripts/check_bench.py gates it with the same machinery against
// bench/baseline/BENCH_region.json.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_cli.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "core/experiment.hh"
#include "runner/report.hh"
#include "sim/event_queue.hh"
#include "workload/profiles.hh"

namespace allarm::bench {
namespace {

struct Options {
  std::uint64_t accesses = 2000;
  int reps = 3;
  std::string out = "BENCH_region.json";
  std::string only;
  std::string workload = "ocean-cont";
};

struct Stage {
  std::string name;
  DirectoryMode mode;
  std::uint32_t region_size_bytes;
};

struct StageResult {
  std::string name;
  std::uint64_t events = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  double ns_per_event = 0.0;
  std::uint64_t heap_fallbacks = 0;
};

StageResult measure(const Stage& stage, const Options& opt) {
  SystemConfig config;
  config.region_size_bytes = stage.region_size_bytes;
  const workload::WorkloadSpec spec =
      workload::make_benchmark(opt.workload, config, opt.accesses);

  StageResult r;
  r.name = stage.name;
  r.wall_seconds = 1e300;
  const std::uint64_t fallbacks_before = sim::Event::heap_fallbacks();
  for (int rep = 0; rep < opt.reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const core::RunResult run =
        core::run_single(config, stage.mode, spec, 42);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    if (secs < r.wall_seconds) r.wall_seconds = secs;
    r.events = static_cast<std::uint64_t>(run.stats.get("sim.events"));
  }
  r.heap_fallbacks = sim::Event::heap_fallbacks() - fallbacks_before;
  r.events_per_sec = r.wall_seconds > 0.0
                         ? static_cast<double>(r.events) / r.wall_seconds
                         : 0.0;
  r.ns_per_event = r.events > 0 ? r.wall_seconds * 1e9 /
                                      static_cast<double>(r.events)
                                : 0.0;
  return r;
}

std::string to_json(const std::vector<StageResult>& results,
                    const Options& opt) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"region\",\n";
  out << "  \"schema_version\": 1,\n";
  out << meta_json();
  out << "  \"accesses_per_thread\": " << opt.accesses << ",\n";
  out << "  \"reps\": " << opt.reps << ",\n";
  out << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const StageResult& r = results[i];
    out << "    {\n";
    out << "      \"name\": " << json_quote(r.name) << ",\n";
    out << "      \"events\": " << r.events << ",\n";
    out << "      \"wall_seconds\": " << json_number(r.wall_seconds) << ",\n";
    out << "      \"events_per_sec\": " << json_number(r.events_per_sec)
        << ",\n";
    out << "      \"ns_per_event\": " << json_number(r.ns_per_event) << ",\n";
    out << "      \"baseline_events_per_sec\": 0,\n";
    out << "      \"speedup_vs_baseline\": 0,\n";
    out << "      \"event_heap_fallbacks\": " << r.heap_fallbacks << "\n";
    out << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  {
    std::vector<double> rates;
    for (const StageResult& r : results) rates.push_back(r.events_per_sec);
    out << "  \"geomean_events_per_sec\": " << json_number(geomean(rates))
        << ",\n";
    out << "  \"geomean_speedup_vs_baseline\": 0\n";
  }
  out << "}\n";
  return out.str();
}

int run(const Options& opt) {
  const std::vector<Stage> stages = {
      {"baseline/r4096", DirectoryMode::kBaseline, 4096},
      {"allarm/r4096", DirectoryMode::kAllarm, 4096},
      {"region/r4096", DirectoryMode::kRegion, 4096},
      {"region/r1024", DirectoryMode::kRegion, 1024},
      {"region/r64", DirectoryMode::kRegion, 64},
  };

  std::vector<StageResult> results;
  for (const Stage& stage : stages) {
    if (!selected(opt.only, stage.name)) continue;
    std::cerr << "measuring " << stage.name << "...\n";
    results.push_back(measure(stage, opt));
  }
  if (results.empty()) {
    std::cerr << "no stage selected by --only " << opt.only << "\n";
    return 2;
  }

  TextTable table({"scheme", "events", "wall_s", "Mev/s", "ns/event"});
  for (const StageResult& r : results) {
    table.add_row({r.name, std::to_string(r.events),
                   TextTable::fmt(r.wall_seconds, 4),
                   TextTable::fmt(r.events_per_sec / 1e6, 2),
                   TextTable::fmt(r.ns_per_event, 1)});
  }
  std::cout << "Region-directory ablation (workload=" << opt.workload
            << ", accesses=" << opt.accesses << ", reps=" << opt.reps << ")\n"
            << table.to_string();

  runner::write_file(opt.out, to_json(results, opt));
  std::cout << "wrote " << opt.out << "\n";
  return 0;
}

}  // namespace
}  // namespace allarm::bench

int main(int argc, char** argv) {
  allarm::bench::Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--accesses") {
      opt.accesses = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--reps") {
      opt.reps = std::atoi(value().c_str());
    } else if (arg == "--out") {
      opt.out = value();
    } else if (arg == "--only") {
      opt.only = value();
    } else if (arg == "--workload") {
      opt.workload = value();
    } else {
      std::cerr << "usage: bench_ablation_region [--accesses N] [--reps N] "
                   "[--workload NAME] [--only LIST] [--out FILE]\n";
      return arg == "--help" ? 0 : 2;
    }
  }
  return allarm::bench::run(opt);
}
