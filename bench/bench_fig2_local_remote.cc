// Figure 2: ratio of local to remote requests reaching the directories,
// per benchmark (measured on the baseline system, averaged over all
// directories - exactly the quantity the paper plots).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hh"

namespace {

using namespace allarm;

bench::PairCache& cache() {
  static bench::PairCache c;
  return c;
}

std::uint64_t accesses() { return core::bench_accesses(30000); }

void BM_Fig2(benchmark::State& state, const std::string& name) {
  SystemConfig config;
  for (auto _ : state) {
    const auto spec = workload::make_benchmark(name, config, accesses());
    auto& r = cache().run_single(name, config, DirectoryMode::kBaseline, spec);
    state.counters["local_fraction"] = r.stats.get("dir.local_fraction");
  }
}

void print_figure() {
  TextTable t({"benchmark", "local", "remote"});
  for (const auto& name : workload::benchmark_names()) {
    const double local =
        cache().single_at(name).stats.get("dir.local_fraction");
    t.add_row({name, TextTable::fmt(local, 3), TextTable::fmt(1 - local, 3)});
  }
  std::cout << "\n=== Figure 2: fraction of local vs remote directory "
               "requests (baseline) ===\n"
            << t.to_string()
            << "\nPaper: all benchmarks have a majority of remote accesses "
               "except fluidanimate/ocean,\nwhich are the most NUMA-friendly "
               "(largest local fractions).\n";
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& name : workload::benchmark_names()) {
    benchmark::RegisterBenchmark(("fig2/" + name).c_str(),
                                 [name](benchmark::State& st) {
                                   BM_Fig2(st, name);
                                 })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return allarm::bench::run_benchmarks(argc, argv, print_figure);
}
