// Figures 3a-3g: the 16-thread evaluation.  One baseline+ALLARM run pair
// per benchmark yields every panel:
//   3a speedup                     3b normalized PF evictions
//   3c normalized NoC traffic      3d average messages per PF eviction
//   3e normalized L2 misses        3f normalized dynamic energy (NoC, PF)
//   3g fraction of remote misses with the local probe off the critical path
//
// The full grid (benchmarks x {baseline, allarm}) runs up front on the
// sweep runner, sharded across ALLARM_JOBS workers (default: all cores);
// the per-figure counters then read from the finished sweep.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hh"
#include "runner/sink.hh"
#include "runner/sweep.hh"

namespace {

using namespace allarm;

std::uint64_t accesses() { return core::bench_accesses(30000); }

const runner::SweepResult& sweep() {
  static const runner::SweepResult result = [] {
    runner::SweepSpec spec;
    spec.name = "fig3";
    spec.workloads = workload::benchmark_names();
    spec.configs = {{"table1", SystemConfig{}}};
    spec.modes = {DirectoryMode::kBaseline, DirectoryMode::kAllarm};
    spec.accesses_per_thread = accesses();
    const runner::SweepRunner sweep_runner(core::bench_jobs());
    std::cerr << "fig3: " << spec.job_count() << " simulations on "
              << sweep_runner.jobs() << " workers\n";
    // Stream cells as they finish, keeping only runs[0] per cell — the
    // figures read the pair() lookups, never the other replicates.
    runner::SweepResult out;
    runner::CollectSink sink(out, runner::CollectSink::Retain::kFirstRunOnly);
    sweep_runner.run_streaming(spec, sink);
    return out;
  }();
  return result;
}

core::PairResult pair_for(const std::string& name) {
  return sweep().pair(name, "table1");
}

void BM_Fig3(benchmark::State& state, const std::string& name) {
  for (auto _ : state) {
    const auto pair = pair_for(name);
    state.counters["speedup"] = pair.speedup();
    state.counters["norm_evictions"] = pair.normalized("dir.pf_evictions");
    state.counters["norm_traffic"] = pair.normalized("noc.bytes");
    state.counters["norm_l2_misses"] = pair.normalized("cache.misses");
    state.counters["probe_hidden"] =
        pair.allarm.stats.get("dir.probe_hidden_fraction");
  }
}

void print_figures() {
  const auto& names = workload::benchmark_names();

  TextTable a({"benchmark", "speedup"});
  TextTable b({"benchmark", "normalized evictions"});
  TextTable c({"benchmark", "normalized traffic (bytes)"});
  TextTable d({"benchmark", "msgs/eviction (baseline)", "msgs/eviction (ALLARM)"});
  TextTable e({"benchmark", "normalized L2 misses"});
  TextTable f({"benchmark", "norm energy NoC", "norm energy PF"});
  TextTable g({"benchmark", "fraction probe off critical path"});

  std::vector<double> speedups, evictions, traffic, misses, e_noc, e_pf;
  for (const auto& name : names) {
    const auto pair = pair_for(name);
    speedups.push_back(pair.speedup());
    evictions.push_back(pair.normalized("dir.pf_evictions"));
    traffic.push_back(pair.normalized("noc.bytes"));
    misses.push_back(pair.normalized("cache.misses"));
    e_noc.push_back(pair.normalized("energy.noc_nj"));
    e_pf.push_back(pair.normalized("energy.pf_nj"));

    a.add_row({name, TextTable::fmt(pair.speedup(), 3)});
    b.add_row({name, TextTable::fmt(evictions.back(), 3)});
    c.add_row({name, TextTable::fmt(traffic.back(), 3)});
    d.add_row({name,
               TextTable::fmt(pair.baseline.stats.get("dir.msgs_per_eviction"), 1),
               TextTable::fmt(pair.allarm.stats.get("dir.msgs_per_eviction"), 1)});
    e.add_row({name, TextTable::fmt(misses.back(), 3)});
    f.add_row({name, TextTable::fmt(e_noc.back(), 3),
               TextTable::fmt(e_pf.back(), 3)});
    g.add_row({name,
               TextTable::fmt(
                   pair.allarm.stats.get("dir.probe_hidden_fraction"), 3)});
  }
  a.add_row({"geomean", TextTable::fmt(geomean(speedups), 3)});
  b.add_row({"geomean", TextTable::fmt(geomean(evictions), 3)});
  c.add_row({"geomean", TextTable::fmt(geomean(traffic), 3)});
  e.add_row({"geomean", TextTable::fmt(geomean(misses), 3)});
  f.add_row({"geomean", TextTable::fmt(geomean(e_noc), 3),
             TextTable::fmt(geomean(e_pf), 3)});

  std::cout << "\n=== Figure 3a: speedup (paper: geomean ~1.12, ocean "
               "highest, fluidanimate/blackscholes lowest) ===\n"
            << a.to_string();
  std::cout << "\n=== Figure 3b: PF evictions, ALLARM/baseline (paper: ~0.54 "
               "avg; correlates with Figure 2 local fraction) ===\n"
            << b.to_string();
  std::cout << "\n=== Figure 3c: NoC traffic in bytes, ALLARM/baseline "
               "(paper: ~0.88 avg) ===\n"
            << c.to_string();
  std::cout << "\n=== Figure 3d: average messages per PF eviction "
               "(paper: 2-16; shared-heavy benchmarks highest) ===\n"
            << d.to_string();
  std::cout << "\n=== Figure 3e: L2 misses, ALLARM/baseline (paper: ~0.91 "
               "avg) ===\n"
            << e.to_string();
  std::cout << "\n=== Figure 3f: dynamic energy, ALLARM/baseline (paper: "
               "NoC ~0.92, PF ~0.86) ===\n"
            << f.to_string();
  std::cout << "\n=== Figure 3g: remote misses with local probe hidden "
               "(paper: ~0.81 avg) ===\n"
            << g.to_string();
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& name : workload::benchmark_names()) {
    benchmark::RegisterBenchmark(("fig3/" + name).c_str(),
                                 [name](benchmark::State& st) {
                                   BM_Fig3(st, name);
                                 })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return allarm::bench::run_benchmarks(argc, argv, print_figures);
}
