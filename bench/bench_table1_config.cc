// Table I: the simulated system configuration.
//
// Prints the configuration the simulator instantiates (which defaults to
// the paper's Table I) and benchmarks System construction.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hh"
#include "core/system.hh"

namespace {

using namespace allarm;

void BM_SystemConstruction(benchmark::State& state) {
  SystemConfig config;
  for (auto _ : state) {
    core::System system(config);
    benchmark::DoNotOptimize(&system);
  }
}
BENCHMARK(BM_SystemConstruction)->Unit(benchmark::kMillisecond);

void print_table1() {
  SystemConfig c;
  c.validate();
  TextTable t({"parameter", "value", "paper (Table I)"});
  auto kb = [](std::uint64_t b) { return std::to_string(b / 1024) + "kB"; };
  t.add_row({"cores", std::to_string(c.num_cores), "16"});
  t.add_row({"frequency", TextTable::fmt(c.core_freq_ghz, 0) + " GHz", "2 GHz"});
  t.add_row({"block size", std::to_string(kLineBytes) + " B", "64 bytes"});
  t.add_row({"cache access latency",
             TextTable::fmt(ns_from_ticks(c.l1d.latency), 0) + " ns", "1 ns"});
  t.add_row({"ICache", kb(c.l1i.size_bytes) + ", " +
                           std::to_string(c.l1i.ways) + "-way",
             "32kB, 4-way"});
  t.add_row({"DCache", kb(c.l1d.size_bytes) + ", " +
                           std::to_string(c.l1d.ways) + "-way",
             "32kB, 4-way"});
  t.add_row({"L2Cache", kb(c.l2.size_bytes) + ", " +
                            std::to_string(c.l2.ways) + "-way (exclusive)",
             "256kB 4-way (exclusive)"});
  t.add_row({"directory coverage", kb(c.probe_filter_coverage_bytes),
             "tracks 512kB of cached data"});
  t.add_row({"directory latency",
             TextTable::fmt(ns_from_ticks(c.probe_filter_latency), 0) + " ns",
             "1 ns"});
  t.add_row({"memory",
             std::to_string(c.dram_total_bytes >> 30) + " GB, " +
                 TextTable::fmt(ns_from_ticks(c.dram_latency), 0) + " ns",
             "2GB, 60ns"});
  t.add_row({"topology", std::to_string(c.mesh_width) + "x" +
                             std::to_string(c.mesh_height) + " mesh",
             "4x4 Mesh"});
  t.add_row({"flit size", std::to_string(c.flit_bytes) + " bytes", "4 bytes"});
  t.add_row({"control msg", std::to_string(c.control_msg_bytes) + " bytes",
             "8 bytes"});
  t.add_row({"data msg", std::to_string(c.data_msg_bytes) + " bytes",
             "72 bytes"});
  t.add_row({"link bandwidth",
             TextTable::fmt(c.link_bandwidth_gbps, 0) + " GB/s", "8 GB/s"});
  t.add_row({"link latency",
             TextTable::fmt(ns_from_ticks(c.link_latency), 0) + " ns",
             "10 ns"});
  std::cout << "\n=== Table I: simulated system ===\n" << t.to_string();
}

}  // namespace

int main(int argc, char** argv) {
  return allarm::bench::run_benchmarks(argc, argv, print_table1);
}
