// Figure 4: the multi-process experiment.  Two single-threaded copies of a
// SPLASH2 benchmark run in separate address spaces on distant nodes; the
// probe filter sweeps 512kB -> 32kB.  Panels:
//   4a/4d speedup      (baseline / ALLARM)
//   4b/4e evictions    (baseline / ALLARM)
//   4c/4f NoC traffic  (baseline / ALLARM)
// Everything is normalized to the baseline with a 512kB probe filter.
//
// Paper shape: the baseline collapses as the filter shrinks (evictions grow
// up to ~200x); under ALLARM execution is largely unaffected, with evictions
// growing only below 64kB (memory-capacity spill forces some pages remote).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hh"

namespace {

using namespace allarm;

const std::vector<std::uint32_t> kSizesKb{512, 256, 128, 64, 32};

bench::PairCache& cache() {
  static bench::PairCache c;
  return c;
}

std::uint64_t accesses() { return core::bench_accesses(60000); }

std::string key(const std::string& name, std::uint32_t kb, bool allarm) {
  return name + "/" + std::to_string(kb) + (allarm ? "/allarm" : "/base");
}

core::RunResult& run_one(const std::string& name, std::uint32_t kb,
                         DirectoryMode mode) {
  SystemConfig config;
  config.probe_filter_coverage_bytes = kb * 1024;
  const auto spec = workload::make_multiprocess(name, config, accesses());
  return cache().run_single(key(name, kb, mode == DirectoryMode::kAllarm),
                            config, mode, spec);
}

void BM_Fig4(benchmark::State& state, const std::string& name,
             std::uint32_t kb, DirectoryMode mode) {
  for (auto _ : state) {
    auto& r = run_one(name, kb, mode);
    state.counters["evictions"] = r.stats.get("dir.pf_evictions");
    state.counters["runtime_ns"] = r.stats.get("runtime_ns");
  }
}

void print_panel(const std::string& title, bool allarm,
                 const std::function<double(const core::RunResult&,
                                            const core::RunResult&)>& metric) {
  TextTable t({"benchmark", "512kB", "256kB", "128kB", "64kB", "32kB"});
  for (const auto& name : workload::multiprocess_benchmark_names()) {
    auto& base512 = cache().single_at(key(name, 512, false));
    std::vector<std::string> row{name};
    for (const std::uint32_t kb : kSizesKb) {
      auto& r = cache().single_at(key(name, kb, allarm));
      row.push_back(TextTable::fmt(metric(r, base512), 3));
    }
    t.add_row(row);
  }
  std::cout << "\n=== " << title << " ===\n" << t.to_string();
}

void print_figure() {
  const auto speedup = [](const core::RunResult& r,
                          const core::RunResult& base) {
    return static_cast<double>(base.runtime) / r.runtime;
  };
  const auto evictions = [](const core::RunResult& r,
                            const core::RunResult& base) {
    const double denom = std::max(1.0, base.stats.get("dir.pf_evictions"));
    return r.stats.get("dir.pf_evictions") / denom;
  };
  const auto traffic = [](const core::RunResult& r,
                          const core::RunResult& base) {
    return r.stats.get("noc.bytes") / base.stats.get("noc.bytes");
  };
  print_panel("Figure 4a: baseline speedup vs PF size", false, speedup);
  print_panel("Figure 4b: baseline normalized evictions", false, evictions);
  print_panel("Figure 4c: baseline normalized traffic", false, traffic);
  print_panel("Figure 4d: ALLARM speedup vs PF size", true, speedup);
  print_panel("Figure 4e: ALLARM normalized evictions", true, evictions);
  print_panel("Figure 4f: ALLARM normalized traffic", true, traffic);
  std::cout << "\nPaper: baseline performance suffers with decreasing PF size "
               "(evictions explode);\nwith ALLARM, execution is largely "
               "unaffected, evictions growing only below 64kB.\n";
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& name : workload::multiprocess_benchmark_names()) {
    for (const std::uint32_t kb : kSizesKb) {
      for (const auto mode :
           {DirectoryMode::kBaseline, DirectoryMode::kAllarm}) {
        benchmark::RegisterBenchmark(
            ("fig4/" + name + "/" + std::to_string(kb) + "kB/" +
             to_string(mode))
                .c_str(),
            [name, kb, mode](benchmark::State& st) {
              BM_Fig4(st, name, kb, mode);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
  return allarm::bench::run_benchmarks(argc, argv, print_figure);
}
