// Shared harness for the figure/table benches.
//
// Each bench binary reproduces one table or figure of the paper: it runs
// the required (workload x configuration) simulations under google-benchmark
// (one iteration per experiment; simulations are deterministic), collects
// the per-figure metrics, and prints the same rows/series the paper reports.
//
// Simulation length is controlled by ALLARM_BENCH_ACCESSES (accesses per
// thread in the region of interest).
#pragma once

#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "core/experiment.hh"
#include "workload/profiles.hh"

namespace allarm::bench {

/// Cache of pair results keyed by an experiment label, so that summary
/// tables can be printed after google-benchmark has run everything.
class PairCache {
 public:
  core::PairResult& run(const std::string& key, const SystemConfig& config,
                        const workload::WorkloadSpec& spec,
                        std::uint64_t seed = 42) {
    auto it = results_.find(key);
    if (it == results_.end()) {
      it = results_.emplace(key, core::run_pair(config, spec, seed)).first;
    }
    return it->second;
  }

  core::RunResult& run_single(const std::string& key,
                              const SystemConfig& config, DirectoryMode mode,
                              const workload::WorkloadSpec& spec,
                              std::uint64_t seed = 42) {
    auto it = singles_.find(key);
    if (it == singles_.end()) {
      it = singles_
               .emplace(key, core::run_single(config, mode, spec, seed))
               .first;
    }
    return it->second;
  }

  bool has(const std::string& key) const { return results_.count(key) != 0; }
  core::PairResult& at(const std::string& key) { return results_.at(key); }
  core::RunResult& single_at(const std::string& key) {
    return singles_.at(key);
  }

 private:
  std::map<std::string, core::PairResult> results_;
  std::map<std::string, core::RunResult> singles_;
};

/// Standard boilerplate: initialize google-benchmark, run the registered
/// experiments, then print the paper-style summary.
inline int run_benchmarks(int argc, char** argv,
                          const std::function<void()>& print_summary) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}

/// Geomean helper over a metric extracted from each benchmark's pair.
inline double geomean_over(
    const std::vector<std::string>& names,
    const std::function<double(const std::string&)>& metric) {
  std::vector<double> values;
  for (const auto& n : names) values.push_back(metric(n));
  return geomean(values);
}

}  // namespace allarm::bench
