// Ablation (Section II-E): thread migration.  ALLARM's detection heuristic
// keys off page homes, so migrating threads turn previously-local data
// remote; the paper argues NUMA schedulers avoid migration and that ALLARM
// keeps working (just with less benefit) when it happens.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_util.hh"
#include "core/system.hh"

namespace {

using namespace allarm;

// Migration periods in microseconds; 0 = never (NUMA-scheduler behaviour).
const std::vector<std::uint32_t> kPeriodsUs{0, 200, 50};

std::map<std::uint32_t, core::RunResult>& results() {
  static std::map<std::uint32_t, core::RunResult> r;
  return r;
}

std::uint64_t accesses() { return core::bench_accesses(20000); }

void BM_Migration(benchmark::State& state, std::uint32_t period_us) {
  for (auto _ : state) {
    SystemConfig config;
    config.directory_mode = DirectoryMode::kAllarm;
    const auto spec = workload::make_benchmark("ocean-cont", config,
                                               accesses());
    core::System system(config);
    core::RunOptions options;
    options.seed = 42;
    options.migration_interval = ticks_from_ns(1000.0) * period_us;
    core::RunResult r = system.run(spec, options);
    state.counters["local_fraction"] = r.stats.get("dir.local_fraction");
    results()[period_us] = std::move(r);
  }
}

void print_summary() {
  TextTable t({"migration period", "migrations", "local fraction",
               "no-alloc fast path", "runtime (ms)"});
  for (const std::uint32_t period : kPeriodsUs) {
    const auto& r = results().at(period);
    t.add_row({period == 0 ? "never" : std::to_string(period) + "us",
               TextTable::fmt(r.stats.get("os.migrations"), 0),
               TextTable::fmt(r.stats.get("dir.local_fraction"), 3),
               TextTable::fmt(r.stats.get("dir.local_no_alloc"), 0),
               TextTable::fmt(r.stats.get("runtime_ns") / 1e6, 3)});
  }
  std::cout << "\n=== Ablation: thread migration under ALLARM (Section II-E, "
               "ocean-cont) ===\n"
            << t.to_string()
            << "\nALLARM stays correct under migration; locality (and with "
               "it the no-allocation\nfast path) erodes as migration "
               "frequency rises.\n";
}

}  // namespace

int main(int argc, char** argv) {
  for (const std::uint32_t period : kPeriodsUs) {
    benchmark::RegisterBenchmark(
        ("migration/" +
         (period == 0 ? std::string("never") : std::to_string(period) + "us"))
            .c_str(),
        [period](benchmark::State& st) { BM_Migration(st, period); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return allarm::bench::run_benchmarks(argc, argv, print_summary);
}
