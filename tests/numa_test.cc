// Unit tests for the OS memory model: first-touch / interleaved placement,
// spill, next-touch migration, kernel space, range registers, scheduling.
#include <gtest/gtest.h>

#include <set>

#include "common/config.hh"
#include "numa/os.hh"

namespace allarm::numa {
namespace {

SystemConfig table1() { return SystemConfig{}; }

TEST(FrameAllocator, AllocatesWithinNodeRange) {
  FrameAllocator fa(4, 1024);
  for (int i = 0; i < 100; ++i) {
    const auto f = fa.allocate_on(2);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(fa.node_of_frame(*f), 2);
  }
}

TEST(FrameAllocator, HandsOutDistinctFrames) {
  FrameAllocator fa(2, 256);
  std::set<PageNum> seen;
  for (int i = 0; i < 256; ++i) {
    const auto f = fa.allocate_on(0);
    ASSERT_TRUE(f.has_value());
    EXPECT_TRUE(seen.insert(*f).second);
  }
  EXPECT_FALSE(fa.allocate_on(0).has_value());  // Exhausted.
}

TEST(FrameAllocator, ReleaseRecycles) {
  FrameAllocator fa(1, 4);
  fa.set_node_capacity(1);
  const auto f = fa.allocate_on(0);
  ASSERT_TRUE(f.has_value());
  EXPECT_FALSE(fa.allocate_on(0).has_value());
  fa.release(*f);
  EXPECT_EQ(fa.allocate_on(0), f);
}

TEST(FrameAllocator, CapacityCap) {
  FrameAllocator fa(1, 100);
  fa.set_node_capacity(3);
  EXPECT_EQ(fa.free_frames(0), 3u);
  EXPECT_THROW(fa.set_node_capacity(1000), std::invalid_argument);
}

TEST(Os, FirstTouchHomesAtToucher) {
  Os os(table1(), AllocPolicy::kFirstTouch);
  for (NodeId n = 0; n < 16; ++n) {
    const Addr p = os.touch(0, 0x1000000ull * (n + 1), n);
    EXPECT_EQ(os.home_of(p), n);
  }
  EXPECT_EQ(os.stats().local_allocations, 16u);
  EXPECT_EQ(os.stats().spilled_allocations, 0u);
}

TEST(Os, RepeatTouchReturnsSameMapping) {
  Os os(table1(), AllocPolicy::kFirstTouch);
  const Addr p1 = os.touch(0, 0x5000, 3);
  const Addr p2 = os.touch(0, 0x5000, 9);  // Different toucher, same page.
  EXPECT_EQ(p1, p2);
}

TEST(Os, OffsetWithinPagePreserved) {
  Os os(table1(), AllocPolicy::kFirstTouch);
  const Addr p = os.touch(0, 0x5123, 0);
  EXPECT_EQ(p & (kPageBytes - 1), 0x123u);
}

TEST(Os, AddressSpacesAreIsolated) {
  Os os(table1(), AllocPolicy::kFirstTouch);
  const Addr a = os.touch(0, 0x9000, 1);
  const Addr b = os.touch(1, 0x9000, 2);
  EXPECT_NE(page_of(a), page_of(b));
  EXPECT_EQ(os.home_of(a), 1);
  EXPECT_EQ(os.home_of(b), 2);
}

TEST(Os, SpillsToNearestNeighbourWhenFull) {
  SystemConfig config = table1();
  Os os(config, AllocPolicy::kFirstTouch);
  os.set_node_capacity(2);
  // Exhaust node 5, then watch the third page spill to a 1-hop neighbour.
  os.touch(0, 0x10000, 5);
  os.touch(0, 0x20000, 5);
  const Addr spilled = os.touch(0, 0x30000, 5);
  const NodeId home = os.home_of(spilled);
  EXPECT_NE(home, 5);
  // Node 5 sits at (1,1): neighbours are 1, 4, 6, 9.
  const std::set<NodeId> one_hop{1, 4, 6, 9};
  EXPECT_TRUE(one_hop.count(home)) << "spilled to node " << home;
  EXPECT_EQ(os.stats().spilled_allocations, 1u);
}

TEST(Os, ThrowsWhenAllMemoryExhausted) {
  SystemConfig config = table1();
  config.mesh_width = 1;
  config.mesh_height = 1;
  config.num_cores = 1;
  Os os(config, AllocPolicy::kFirstTouch);
  os.set_node_capacity(1);
  os.touch(0, 0x1000, 0);
  EXPECT_THROW(os.touch(0, 0x2000, 0), std::runtime_error);
}

TEST(Os, InterleavePolicySpreadsPages) {
  Os os(table1(), AllocPolicy::kInterleave);
  std::set<NodeId> homes;
  for (int i = 0; i < 16; ++i) {
    homes.insert(os.home_of(os.touch(0, 0x100000ull * i, 0)));
  }
  EXPECT_EQ(homes.size(), 16u);  // All from toucher 0, spread everywhere.
}

TEST(Os, TranslateWithoutAllocating) {
  Os os(table1(), AllocPolicy::kFirstTouch);
  EXPECT_FALSE(os.translate(0, 0x7000).has_value());
  const Addr p = os.touch(0, 0x7000, 4);
  ASSERT_TRUE(os.translate(0, 0x7000).has_value());
  EXPECT_EQ(*os.translate(0, 0x7000), p);
}

TEST(Os, NextTouchRehomesPage) {
  Os os(table1(), AllocPolicy::kFirstTouch);
  const Addr before = os.touch(0, 0xA000, 2);
  EXPECT_EQ(os.home_of(before), 2);
  EXPECT_TRUE(os.mark_next_touch(0, 0xA000));
  const Addr after = os.touch(0, 0xA000, 7);  // Next toucher re-homes it.
  EXPECT_EQ(os.home_of(after), 7);
  EXPECT_EQ(os.stats().next_touch_migrations, 1u);
  EXPECT_FALSE(os.mark_next_touch(0, 0xFFFF000));  // Unmapped page.
}

TEST(Os, KernelSpaceIsSharedAcrossAddressSpaces) {
  Os os(table1(), AllocPolicy::kFirstTouch);
  const Addr a = os.touch(0, kKernelSpaceBase + 0x3000, 1);
  const Addr b = os.touch(7, kKernelSpaceBase + 0x3000, 9);
  EXPECT_EQ(a, b);  // One global mapping.
}

TEST(Os, KernelPagesInterleaveByPageIndex) {
  Os os(table1(), AllocPolicy::kFirstTouch);
  // 16 consecutive kernel pages land round-robin on the 16 nodes.
  std::set<NodeId> homes;
  for (int i = 0; i < 16; ++i) {
    homes.insert(os.home_of(os.touch(0, kKernelSpaceBase + i * kPageBytes, 0)));
  }
  EXPECT_EQ(homes.size(), 16u);
}

TEST(Os, ThreadPlacementAndMigration) {
  Os os(table1(), AllocPolicy::kFirstTouch);
  EXPECT_EQ(os.node_of_thread(3), kInvalidNode);
  os.place_thread(3, 11);
  EXPECT_EQ(os.node_of_thread(3), 11);
  os.migrate_thread(3, 2);
  EXPECT_EQ(os.node_of_thread(3), 2);
  EXPECT_EQ(os.stats().migrations, 1u);
}

TEST(RangeRegisters, EmptyMeansAlwaysActive) {
  RangeRegisters rr;
  EXPECT_TRUE(rr.active(0));
  EXPECT_TRUE(rr.active(0xFFFFFFFF));
}

TEST(RangeRegisters, RespectsConfiguredRanges) {
  RangeRegisters rr;
  rr.add_range(0x1000, 0x1000);
  EXPECT_TRUE(rr.active(0x1000));
  EXPECT_TRUE(rr.active(0x1FFF));
  EXPECT_FALSE(rr.active(0x2000));
  EXPECT_FALSE(rr.active(0xFFF));
  rr.add_range(0x8000, 0x100);
  EXPECT_TRUE(rr.active(0x8050));
  EXPECT_EQ(rr.num_ranges(), 2u);
  rr.clear();
  EXPECT_TRUE(rr.active(0xFFF));  // Back to "everywhere".
}

// Property: frame scrambling is a bijection (no frame handed out twice even
// across the whole node range).
TEST(FrameAllocator, PropertyScrambleIsBijective) {
  SystemConfig config = table1();
  const auto frames = config.dram_bytes_per_node() / kPageBytes;
  FrameAllocator fa(1, frames);
  std::set<PageNum> seen;
  for (std::uint64_t i = 0; i < frames; ++i) {
    const auto f = fa.allocate_on(0);
    ASSERT_TRUE(f.has_value());
    ASSERT_TRUE(seen.insert(*f).second) << "frame duplicated";
    ASSERT_LT(*f, frames);
  }
}

// Property: the scramble diffuses high bits into the low bits (consecutive
// allocations must not cycle uniformly through the low-bit groups, which
// would make probe-filter sets artificially uniform).
TEST(FrameAllocator, PropertyScrambleBreaksLowBitUniformity) {
  FrameAllocator fa(1, 32768);
  std::vector<int> group_counts(32, 0);
  for (int i = 0; i < 96; ++i) {
    ++group_counts[*fa.allocate_on(0) % 32];
  }
  // A perfectly uniform cycle would put exactly 3 in each group.
  int deviating = 0;
  for (int c : group_counts) deviating += (c != 3);
  EXPECT_GT(deviating, 4);
}

}  // namespace
}  // namespace allarm::numa
