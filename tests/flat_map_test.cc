// Unit tests for the open-addressing hash containers.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <set>
#include <string>

#include "common/flat_map.hh"

namespace allarm {
namespace {

TEST(FlatMap, StartsEmpty) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(42), nullptr);
  EXPECT_EQ(m.count(42), 0u);
  EXPECT_FALSE(m.erase(42));
}

TEST(FlatMap, InsertFindErase) {
  FlatMap<std::uint64_t, int> m;
  m[7] = 70;
  m[9] = 90;
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), 70);
  EXPECT_EQ(*m.find(9), 90);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.erase(7));
  EXPECT_EQ(m.find(7), nullptr);
  EXPECT_EQ(*m.find(9), 90);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, TryEmplaceReportsExisting) {
  FlatMap<std::uint64_t, int> m;
  auto [first, inserted] = m.try_emplace(5, 50);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*first, 50);
  auto [second, inserted_again] = m.try_emplace(5, 99);
  EXPECT_FALSE(inserted_again);
  EXPECT_EQ(*second, 50);  // Existing value untouched.
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, OperatorBracketDefaultConstructs) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_EQ(m[3], 0);
  m[3] += 7;
  EXPECT_EQ(m[3], 7);
}

TEST(FlatMap, RehashPreservesAllEntries) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  const std::size_t initial_capacity = m.capacity();
  for (std::uint64_t k = 0; k < 1000; ++k) m[k * 0x9E3779B9ull] = k;
  EXPECT_GT(m.capacity(), initial_capacity);
  EXPECT_EQ(m.size(), 1000u);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const std::uint64_t* v = m.find(k * 0x9E3779B9ull);
    ASSERT_NE(v, nullptr) << "key " << k;
    EXPECT_EQ(*v, k);
  }
}

TEST(FlatMap, EraseInsertChurnDoesNotGrowUnbounded) {
  // Tombstones must be reused: erasing and reinserting the same keys in a
  // loop keeps the table at a bounded capacity.
  FlatMap<std::uint64_t, int> m;
  for (int round = 0; round < 1000; ++round) {
    for (std::uint64_t k = 0; k < 8; ++k) m[k] = round;
    for (std::uint64_t k = 0; k < 8; ++k) EXPECT_TRUE(m.erase(k));
  }
  EXPECT_TRUE(m.empty());
  EXPECT_LE(m.capacity(), 64u);
}

// A hash that collides everything: probe chains and tombstones become
// deterministic and maximal.
struct CollidingHash {
  std::size_t operator()(std::uint64_t) const { return 0; }
};

TEST(FlatMap, TombstoneInProbeChainIsSkippedAndReused) {
  FlatMap<std::uint64_t, int, CollidingHash> m;
  m[1] = 10;
  m[2] = 20;
  m[3] = 30;  // All three share one probe chain.
  EXPECT_TRUE(m.erase(2));
  // 3 lives beyond the tombstone; lookup must skip over it.
  ASSERT_NE(m.find(3), nullptr);
  EXPECT_EQ(*m.find(3), 30);
  // Reinserting a chain-end key must not duplicate it via the tombstone.
  m[3] = 31;
  EXPECT_EQ(*m.find(3), 31);
  EXPECT_EQ(m.size(), 2u);
  // A fresh key reuses the hole.
  const std::size_t capacity_before = m.capacity();
  m[4] = 40;
  EXPECT_EQ(m.capacity(), capacity_before);
  EXPECT_EQ(*m.find(1), 10);
  EXPECT_EQ(*m.find(4), 40);
}

TEST(FlatMap, ClearKeepsCapacityAndDropsEntries) {
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 100; ++k) m[k] = 1;
  const std::size_t cap = m.capacity();
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_EQ(m.find(5), nullptr);
  m[5] = 2;
  EXPECT_EQ(*m.find(5), 2);
}

TEST(FlatMap, HoldsNonTrivialValues) {
  FlatMap<std::uint64_t, std::deque<std::string>> m;
  m[1].push_back("hello");
  m[1].push_back("world");
  ASSERT_NE(m.find(1), nullptr);
  EXPECT_EQ(m.find(1)->size(), 2u);
  EXPECT_TRUE(m.erase(1));
  EXPECT_EQ(m.find(1), nullptr);
}

TEST(FlatMap, StructKeyWithCustomHash) {
  struct Key {
    std::uint32_t a = 0;
    std::uint64_t b = 0;
    bool operator==(const Key& o) const { return a == o.a && b == o.b; }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return (static_cast<std::size_t>(k.a) << 40) ^ k.b;
    }
  };
  FlatMap<Key, int, KeyHash> m;
  m[Key{1, 2}] = 12;
  m[Key{2, 1}] = 21;
  EXPECT_EQ(*m.find(Key{1, 2}), 12);
  EXPECT_EQ(*m.find(Key{2, 1}), 21);
  EXPECT_EQ(m.find(Key{1, 3}), nullptr);
}

TEST(FlatSet, InsertEraseCount) {
  FlatSet<std::uint64_t> s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.insert(10));
  EXPECT_FALSE(s.insert(10));  // Duplicate.
  EXPECT_TRUE(s.insert(11));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.count(10), 1u);
  EXPECT_EQ(s.count(12), 0u);
  EXPECT_TRUE(s.erase(10));
  EXPECT_FALSE(s.erase(10));
  EXPECT_EQ(s.count(10), 0u);
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(FlatSet, SurvivesHeavyChurn) {
  FlatSet<std::uint64_t> s;
  std::set<std::uint64_t> reference;
  std::uint64_t x = 1;
  for (int i = 0; i < 10000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;  // LCG.
    const std::uint64_t key = x % 512;
    if ((x >> 32) & 1) {
      EXPECT_EQ(s.insert(key), reference.insert(key).second);
    } else {
      EXPECT_EQ(s.erase(key), reference.erase(key) > 0);
    }
  }
  EXPECT_EQ(s.size(), reference.size());
  for (std::uint64_t k = 0; k < 512; ++k) {
    EXPECT_EQ(s.count(k), reference.count(k)) << "key " << k;
  }
}

}  // namespace
}  // namespace allarm
