// Tests for the parallel single-simulation subsystem (src/parallel/,
// docs/PARALLEL.md): partition geometry, lookahead derivation, the
// byte-exact barrier contract against the serial oracle, lax-mode
// determinism, and the lane-sharded event-queue primitives.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.hh"
#include "core/experiment.hh"
#include "core/system.hh"
#include "noc/mesh.hh"
#include "parallel/engine.hh"
#include "parallel/partition.hh"
#include "runner/report.hh"
#include "runner/sweep.hh"
#include "runner/thread_pool.hh"
#include "sim/event_queue.hh"
#include "workload/profiles.hh"

namespace {

using namespace allarm;

// ---------------------------------------------------------------- fixtures ----

/// A 4-node machine on a 4x1 mesh: the smallest geometry that admits 1, 2
/// AND 4 column-block shards.  Caches shrunk so runs finish in milliseconds.
SystemConfig wide_config() {
  SystemConfig config;
  config.num_cores = 4;
  config.mesh_width = 4;
  config.mesh_height = 1;
  config.l1i = CacheConfig{4 * kLineBytes, 2, ticks_from_ns(1.0)};
  config.l1d = CacheConfig{4 * kLineBytes, 2, ticks_from_ns(1.0)};
  config.l2 = CacheConfig{16 * kLineBytes, 2, ticks_from_ns(1.0)};
  config.probe_filter_coverage_bytes = 32 * kLineBytes;
  return config;
}

workload::WorkloadSpec small_workload(const std::string& name,
                                      const SystemConfig& config,
                                      std::uint64_t accesses) {
  workload::ProfileParams params;
  params.name = name;
  params.hot_bytes = 8 * 1024;
  params.cold_bytes = 8 * 1024;
  params.kernel_bytes = 32 * 1024;
  params.shared_bytes = 16 * 1024;
  params.pattern = name == "alpha" ? workload::SharedPattern::kUniform
                                   : workload::SharedPattern::kZipf;
  return workload::make_from_params(params, config, accesses, 4);
}

core::RunResult run_wide(std::uint32_t shards, parallel::ParMode mode,
                         Tick migration_interval = 0,
                         runner::ThreadPool* par_pool = nullptr) {
  core::System system(wide_config());
  core::RunOptions options;
  options.seed = 42;
  options.par.shards = shards;
  options.par.mode = mode;
  options.par_pool = par_pool;
  options.migration_interval = migration_interval;
  const workload::WorkloadSpec spec =
      small_workload("alpha", wide_config(), 300);
  return system.run(spec, options);
}

// --------------------------------------------------------------- partition ----

TEST(Partition, ContiguousColumnBlocks) {
  SystemConfig config;  // Table I: 4x4 mesh, 16 nodes.
  const parallel::Partition half = parallel::make_partition(config, 2);
  ASSERT_EQ(half.owner.size(), 16u);
  for (std::uint32_t n = 0; n < 16; ++n) {
    EXPECT_EQ(half.owner[n], (n % 4) / 2) << "node " << n;
  }
  EXPECT_EQ(half.nodes_of(0).size(), 8u);
  EXPECT_EQ(half.nodes_of(1).size(), 8u);

  const parallel::Partition quarters = parallel::make_partition(config, 4);
  for (std::uint32_t n = 0; n < 16; ++n) {
    EXPECT_EQ(quarters.owner[n], n % 4) << "node " << n;  // Shard = column.
  }

  const parallel::Partition trivial = parallel::make_partition(config, 1);
  EXPECT_EQ(trivial.shards, 1u);
  EXPECT_EQ(trivial.nodes_of(0).size(), 16u);
}

TEST(Partition, RejectsNonDividingShardCounts) {
  SystemConfig config;  // Width 4.
  EXPECT_THROW(parallel::make_partition(config, 0), std::invalid_argument);
  EXPECT_THROW(parallel::make_partition(config, 3), std::invalid_argument);
  EXPECT_THROW(parallel::make_partition(config, 8), std::invalid_argument);
}

TEST(Partition, LookaheadIsTheMinCrossShardHopPlusDirectoryAccess) {
  SystemConfig config;
  const parallel::Partition part = parallel::make_partition(config, 2);
  const noc::Mesh mesh(config);
  // Adjacent columns across the shard boundary (x=1 -> x=2, same row) are
  // the closest cross-shard pair on a contiguous column partition.
  const Tick hop = mesh.uncontended_latency(NodeId{1}, NodeId{2},
                                            config.control_msg_bytes);
  EXPECT_EQ(parallel::lookahead(config, part),
            hop + config.probe_filter_latency);
  EXPECT_EQ(parallel::lookahead(config, parallel::make_partition(config, 1)),
            kTickNever);
}

TEST(SplitBudget, SplitsJobsAcrossShards) {
  EXPECT_EQ(parallel::split_budget(8, 1), 8u);   // Serial: untouched.
  EXPECT_EQ(parallel::split_budget(8, 4), 2u);
  EXPECT_EQ(parallel::split_budget(8, 2), 4u);
  EXPECT_EQ(parallel::split_budget(4, 8), 1u);   // Never below one job.
  EXPECT_EQ(parallel::split_budget(1, 4), 1u);
}

TEST(ParMode, RoundTripsAndRejectsUnknownNames) {
  EXPECT_EQ(parallel::par_mode_from_string("barrier"),
            parallel::ParMode::kBarrier);
  EXPECT_EQ(parallel::par_mode_from_string("lax"), parallel::ParMode::kLax);
  EXPECT_EQ(parallel::to_string(parallel::ParMode::kBarrier), "barrier");
  EXPECT_EQ(parallel::to_string(parallel::ParMode::kLax), "lax");
  EXPECT_THROW(parallel::par_mode_from_string("optimistic"),
               std::invalid_argument);
}

// ----------------------------------------------------- barrier byte-exact ----

TEST(BarrierMode, ReproducesSerialStatsAtAnyShardCount) {
  const core::RunResult serial = run_wide(1, parallel::ParMode::kBarrier);
  for (const std::uint32_t shards : {2u, 4u}) {
    const core::RunResult sharded =
        run_wide(shards, parallel::ParMode::kBarrier);
    // The FULL statistic set, byte for byte — including sim.events, which
    // pins the executed event count exactly.
    EXPECT_EQ(sharded.stats.to_string(), serial.stats.to_string())
        << shards << " shards";
    EXPECT_EQ(sharded.runtime, serial.runtime) << shards << " shards";
    EXPECT_EQ(sharded.stats.get("sim.events"), serial.stats.get("sim.events"));
    // Execution metadata lives beside the stats, never inside them.
    EXPECT_EQ(sharded.par.shards, shards);
    EXPECT_EQ(sharded.par.mode, parallel::ParMode::kBarrier);
    EXPECT_GT(sharded.par.cross_events, 0u);
  }
}

TEST(BarrierMode, SurvivesThreadMigrationHandoff) {
  const Tick interval = ticks_from_ns(1000.0);
  const core::RunResult serial =
      run_wide(1, parallel::ParMode::kBarrier, interval);
  const core::RunResult sharded =
      run_wide(4, parallel::ParMode::kBarrier, interval);
  EXPECT_EQ(sharded.stats.to_string(), serial.stats.to_string());
  EXPECT_EQ(sharded.runtime, serial.runtime);
}

TEST(BarrierMode, CrossShardDeltasRespectTheMeshBound) {
  const core::RunResult run = run_wide(4, parallel::ParMode::kBarrier);
  const SystemConfig config = wide_config();
  const parallel::Partition part = parallel::make_partition(config, 4);
  ASSERT_GT(run.par.cross_events, 0u);
  // Every cross-shard schedule rides at least one mesh hop; the modelled
  // lookahead additionally charges the directory access the DESTINATION
  // performs before reacting outward, so the raw per-schedule delta is
  // bounded by lookahead minus that access.
  EXPECT_GE(run.par.min_cross_delta,
            parallel::lookahead(config, part) - config.probe_filter_latency);
  EXPECT_EQ(run.par.lookahead, parallel::lookahead(config, part));
}

// Sweep-level contract: the REPORT BYTES (JSON and CSV) of a barrier-mode
// sweep are identical to the serial sweep's, on both a fig3-style grid
// (baseline + allarm) and a region-style grid (three modes, region-size
// config axis).
TEST(BarrierMode, SweepReportsAreByteIdentical_Fig3StyleGrid) {
  runner::SweepSpec spec;
  spec.name = "par-fig3";
  spec.workloads = {"alpha", "beta"};
  spec.configs = {{"wide", wide_config()}};
  spec.modes = {DirectoryMode::kBaseline, DirectoryMode::kAllarm};
  spec.replicates = 2;
  spec.base_seed = 7;
  spec.accesses_per_thread = 200;
  spec.make_workload = small_workload;

  const runner::SweepResult serial = runner::SweepRunner(2).run(spec);
  for (const std::uint32_t shards : {2u, 4u}) {
    runner::SweepSpec sharded = spec;
    sharded.par.shards = shards;
    const runner::SweepResult result = runner::SweepRunner(2).run(sharded);
    EXPECT_EQ(runner::to_json(result), runner::to_json(serial))
        << shards << " shards";
    EXPECT_EQ(runner::to_csv(result), runner::to_csv(serial))
        << shards << " shards";
  }
}

TEST(BarrierMode, SweepReportsAreByteIdentical_RegionStyleGrid) {
  runner::SweepSpec spec;
  spec.name = "par-region";
  spec.workloads = {"alpha"};
  SystemConfig coarse = wide_config();
  coarse.region_size_bytes = 1024;
  SystemConfig fine = wide_config();
  fine.region_size_bytes = 64;  // Degenerates to per-line tracking.
  spec.configs = {{"r1024", coarse}, {"r64", fine}};
  spec.modes = {DirectoryMode::kBaseline, DirectoryMode::kAllarm,
                DirectoryMode::kRegion};
  spec.base_seed = 11;
  spec.accesses_per_thread = 200;
  spec.make_workload = small_workload;

  const runner::SweepResult serial = runner::SweepRunner(2).run(spec);
  runner::SweepSpec sharded = spec;
  sharded.par.shards = 4;
  const runner::SweepResult result = runner::SweepRunner(2).run(sharded);
  EXPECT_EQ(runner::to_json(result), runner::to_json(serial));
  EXPECT_EQ(runner::to_csv(result), runner::to_csv(serial));
}

TEST(BarrierMode, DoesNotPerturbTheSweepSpecHash) {
  runner::SweepSpec spec;
  spec.name = "hash";
  spec.workloads = {"alpha"};
  spec.configs = {{"wide", wide_config()}};
  spec.modes = {DirectoryMode::kBaseline};
  const std::uint64_t serial_hash = runner::spec_hash(spec);

  spec.par.shards = 4;  // Barrier: byte-identical, journals stay resumable.
  EXPECT_EQ(runner::spec_hash(spec), serial_hash);

  spec.par.mode = parallel::ParMode::kLax;  // Lax: different results.
  const std::uint64_t lax_hash = runner::spec_hash(spec);
  EXPECT_NE(lax_hash, serial_hash);
  spec.par.slack = ticks_from_ns(100.0);  // ...and the knobs are identity.
  EXPECT_NE(runner::spec_hash(spec), lax_hash);
}

// ------------------------------------------------------------------- lax ----

TEST(LaxMode, IsDeterministicRunToRun) {
  const core::RunResult first = run_wide(4, parallel::ParMode::kLax);
  const core::RunResult second = run_wide(4, parallel::ParMode::kLax);
  EXPECT_EQ(first.stats.to_string(), second.stats.to_string());
  EXPECT_EQ(first.runtime, second.runtime);
  EXPECT_EQ(first.par.windows, second.par.windows);
  EXPECT_EQ(first.par.mailboxed, second.par.mailboxed);
  EXPECT_EQ(first.par.warped, second.par.warped);

  EXPECT_EQ(first.par.mode, parallel::ParMode::kLax);
  EXPECT_GT(first.par.windows, 0u);
  EXPECT_GT(first.par.slack, 0u);
  EXPECT_GT(first.stats.get("sim.events"), 0.0);
}

TEST(LaxMode, FlushPoolDoesNotChangeResults) {
  // Mailbox flushes into disjoint lanes may run on a pool; the result must
  // not depend on whether (or how wide) one is supplied — this is the
  // sweep-vs-shard contention case: a pool-driven run and an inline run
  // interleave flushes differently but deliver identical event sets.
  const core::RunResult inline_flush = run_wide(4, parallel::ParMode::kLax);
  runner::ThreadPool pool(3);
  const core::RunResult pooled =
      run_wide(4, parallel::ParMode::kLax, 0, &pool);
  EXPECT_EQ(pooled.stats.to_string(), inline_flush.stats.to_string());
  EXPECT_EQ(pooled.runtime, inline_flush.runtime);
  EXPECT_EQ(pooled.par.windows, inline_flush.par.windows);
  pool.wait_idle();
}

TEST(LaxMode, RequiresAShardedQueue) {
  sim::EventQueue queue;
  parallel::ParConfig config;
  config.shards = 2;
  config.mode = parallel::ParMode::kLax;
  EXPECT_THROW(parallel::run_lax(queue, config, 100, nullptr),
               std::logic_error);
}

// ----------------------------------------------------------- event kernel ----

TEST(ShardedEventQueue, MergesLanesInGlobalTickSeqOrder) {
  // Same schedule, one serial queue and one 2-lane queue; execution order
  // (and therefore the order log) must match exactly.  Events also chain
  // follow-ups onto the *other* lane to exercise in-execution cross-lane
  // scheduling.
  auto run_chain = [](sim::EventQueue& q, std::vector<int>& log) {
    for (int i = 0; i < 8; ++i) {
      const NodeId node = static_cast<NodeId>(i % 2);
      const Tick when = 10 * (8 - i);
      q.schedule_at_for(node, when, [&log, &q, i, node] {
        log.push_back(i);
        const NodeId other = static_cast<NodeId>(1 - node);
        q.schedule_at_for(other, q.now() + 5, [&log, i] {
          log.push_back(100 + i);
        });
      });
    }
    q.run();
  };

  sim::EventQueue serial;
  std::vector<int> serial_log;
  run_chain(serial, serial_log);

  sim::EventQueue sharded;
  sharded.set_sharding(2, {0, 1});
  std::vector<int> sharded_log;
  run_chain(sharded, sharded_log);

  EXPECT_EQ(sharded_log, serial_log);
  EXPECT_EQ(sharded.events_executed(), serial.events_executed());
  EXPECT_EQ(sharded.now(), serial.now());
}

TEST(ShardedEventQueue, SetShardingErrorCases) {
  {
    sim::EventQueue q;
    q.schedule_at(5, [] {});
    EXPECT_THROW(q.set_sharding(2, {0, 1}), std::logic_error);  // Pending.
  }
  {
    sim::EventQueue q;
    q.schedule_at(0, [] {});
    q.run_one();
    EXPECT_THROW(q.set_sharding(2, {0, 1}), std::logic_error);  // Executed.
  }
  {
    sim::EventQueue q;
    EXPECT_THROW(q.set_sharding(0, {}), std::logic_error);      // No lanes.
    EXPECT_THROW(q.set_sharding(2, {0, 2}), std::logic_error);  // Bad owner.
  }
}

TEST(ShardedEventQueue, InjectRestoresSeqOrderWithinATick) {
  sim::EventQueue q;
  q.set_sharding(2, {0, 1});

  // Divert one cross-lane schedule into a mailbox (seq 0)...
  struct Box {
    Tick when = 0;
    std::uint64_t seq = 0;
    sim::Event event;
    bool full = false;
  } box;
  q.set_cross_lane_hook(
      [](void* ctx, std::uint32_t, std::uint32_t, Tick when, std::uint64_t seq,
         sim::Event&& e) {
        Box& b = *static_cast<Box*>(ctx);
        b = Box{when, seq, std::move(e), true};
      },
      &box);
  std::vector<char> log;
  q.schedule_at_for(1, 10, [&log] { log.push_back('Y'); });
  ASSERT_TRUE(box.full);
  ASSERT_EQ(box.seq, 0u);

  // ...then insert a later-seq event at the same tick directly, and inject
  // the mailboxed one afterwards.  The ordered insert must put Y before Z.
  q.set_cross_lane_hook(nullptr, nullptr);
  q.schedule_at_for(1, 10, [&log] { log.push_back('Z'); });
  q.inject(1, box.when, box.seq, std::move(box.event));

  q.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], 'Y');
  EXPECT_EQ(log[1], 'Z');
}

TEST(ShardedEventQueue, CountsCrossLaneTrafficOnlyDuringExecution) {
  sim::EventQueue q;
  q.set_sharding(2, {0, 1});
  // Set-up schedules (nothing executing yet) deliver cross-lane but are
  // not counted: no lookahead constrains them.
  q.schedule_at_for(1, 2, [] {});
  EXPECT_EQ(q.cross_lane_stats().events, 0u);
  // In-execution schedules count, with the (when - now) delta recorded.
  q.schedule_at_for(0, 5, [&q] {
    q.schedule_at_for(0, q.now() + 1, [] {});  // Same lane: not counted.
    q.schedule_at_for(1, q.now() + 4, [] {});  // Cross lane: counted.
  });
  q.run();
  EXPECT_EQ(q.cross_lane_stats().events, 1u);
  EXPECT_EQ(q.cross_lane_stats().min_delta, 4u);
}

TEST(ShardedEventQueue, RunLaneUntilDrainsOnlyThatLane) {
  sim::EventQueue q;
  q.set_sharding(2, {0, 1});
  std::vector<int> log;
  q.schedule_at_for(0, 5, [&log] { log.push_back(0); });
  q.schedule_at_for(1, 3, [&log] { log.push_back(1); });
  q.run_lane_until(0, 100);  // Lane 1's earlier event must NOT run.
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 0);
  q.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[1], 1);
}

}  // namespace
