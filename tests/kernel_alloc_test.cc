// Allocation instrumentation for the event kernel.
//
// Overrides global operator new/delete with counting wrappers and asserts
// the tentpole property of the allocation-free kernel: once warmed up,
// scheduling and executing events whose closures fit sim::Event's inline
// buffer performs ZERO heap allocations -- the node arena, the far heap
// and the buckets all recycle their capacity.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/experiment.hh"
#include "core/system.hh"
#include "sim/event_queue.hh"
#include "workload/profiles.hh"

namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

// AddressSanitizer owns the global allocator; forwarding counting wrappers
// to malloc/free trips its alloc-dealloc-mismatch checker.  Under ASan the
// counters stay at zero (the zero-new assertions become vacuous) and the
// suite's value is the sanitizer's own checking of the arena recycling.
#if defined(__SANITIZE_ADDRESS__)
#define ALLARM_COUNTING_NEW 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ALLARM_COUNTING_NEW 0
#else
#define ALLARM_COUNTING_NEW 1
#endif
#else
#define ALLARM_COUNTING_NEW 1
#endif

#if ALLARM_COUNTING_NEW
void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // ALLARM_COUNTING_NEW

namespace allarm::sim {
namespace {

constexpr Tick kFarDelay = 1u << 20;  // Beyond the near horizon.

// A self-rescheduling ticker with a representative capture footprint (the
// coherence closures carry a `this` plus a few words): fits inline.
struct Ticker {
  EventQueue* eq;
  std::uint64_t payload[3];
  std::uint64_t limit;
  void operator()() const {
    if (eq->events_executed() < limit) {
      eq->schedule_in(1 + (payload[0] & 0xFF), *this);
    }
  }
};
static_assert(sizeof(Ticker) <= Event::kInlineBytes,
              "representative closure must fit inline storage");

TEST(KernelAllocations, SteadyStateSchedulesWithoutHeapAllocations) {
  EventQueue eq;

  // Warm-up: reach the arena / heap / bucket high-water mark.  Several
  // concurrent near tickers plus far-horizon tickers so both tiers and the
  // far heap see their peak occupancy before measurement starts.
  for (std::uint64_t i = 0; i < 16; ++i) {
    eq.schedule_in(i + 1, Ticker{&eq, {i * 977, i, ~i}, 20000});
  }
  for (std::uint64_t i = 0; i < 4; ++i) {
    eq.schedule_in(kFarDelay + i, Ticker{&eq, {i * 131, i, ~i}, 20000});
  }
  eq.run(10000);

  const std::uint64_t fallbacks_before = Event::heap_fallbacks();
  const std::uint64_t news_before = g_news.load(std::memory_order_relaxed);

  // Measured steady state: tens of thousands of schedule/execute cycles.
  const std::uint64_t executed = eq.run(10000);

  const std::uint64_t news_after = g_news.load(std::memory_order_relaxed);
  EXPECT_EQ(executed, 10000u);
  EXPECT_EQ(news_after - news_before, 0u)
      << "event kernel allocated on the steady-state path";
  EXPECT_EQ(Event::heap_fallbacks(), fallbacks_before)
      << "an inline-sized closure fell back to the heap";
}

TEST(KernelAllocations, FarHorizonSteadyStateIsAllocationFree) {
  EventQueue eq;

  // Every reschedule crosses the far heap.
  struct FarTicker {
    EventQueue* eq;
    std::uint64_t limit;
    void operator()() const {
      if (eq->events_executed() < limit) eq->schedule_in(kFarDelay, *this);
    }
  };
  for (int i = 0; i < 8; ++i) eq.schedule_in(i + 1, FarTicker{&eq, 5000});
  eq.run(2000);

  const std::uint64_t news_before = g_news.load(std::memory_order_relaxed);
  const std::uint64_t executed = eq.run(2000);
  const std::uint64_t news_after = g_news.load(std::memory_order_relaxed);
  EXPECT_EQ(executed, 2000u);
  EXPECT_EQ(news_after - news_before, 0u)
      << "far-heap traffic allocated in steady state";
}

TEST(KernelAllocations, BatchedGenerationIsAllocationFree) {
  // The batched issue path pre-generates accesses through
  // AccessGenerator::next_batch into a pre-sized ring.  Steady-state
  // generation must allocate nothing: no per-batch vectors, no Mix/Phased
  // scratch growth — construction reserves everything.
  SystemConfig config;
  const workload::WorkloadSpec spec =
      workload::make_benchmark("ocean-cont", config, 1000);
  std::vector<std::unique_ptr<workload::AccessGenerator>> generators;
  std::vector<Rng> rngs;
  for (std::size_t t = 0; t < spec.threads.size(); ++t) {
    generators.push_back(spec.threads[t].make_generator());
    rngs.emplace_back(t + 1);
  }
  // Dedicated Zipf generator: its guide table must be built up front.
  generators.push_back(
      std::make_unique<workload::ZipfPages>(0x1000, 1024, 0.9, 0.2));
  rngs.emplace_back(99);

  // Replay snapshot buffers, reserved once like System::run does.
  std::vector<std::vector<std::uint64_t>> states(generators.size());
  for (std::size_t g = 0; g < generators.size(); ++g) {
    generators[g]->save_state(states[g]);
    states[g].clear();
  }

  constexpr std::size_t kRing = 64;
  workload::Access ring[kRing];
  const workload::Span<workload::Access> span(ring, kRing);

  // Warm-up: cross every Phased stage boundary at least once.
  for (std::size_t g = 0; g < generators.size(); ++g) {
    for (int i = 0; i < 64; ++i) generators[g]->next_batch(rngs[g], 0, span);
  }

  const std::uint64_t news_before = g_news.load(std::memory_order_relaxed);
  Tick now = 0;
  for (int round = 0; round < 200; ++round) {
    for (std::size_t g = 0; g < generators.size(); ++g) {
      // Fill, snapshot (the ring's replay bookkeeping), and replay —
      // the full batched-issue cycle.
      states[g].clear();
      generators[g]->save_state(states[g]);
      generators[g]->next_batch(rngs[g], now, span);
      const std::uint64_t* cursor = states[g].data();
      generators[g]->restore_state(cursor);
      generators[g]->next_batch(rngs[g], now, span);
    }
    now += ticks_from_ns(100.0);
  }
  const std::uint64_t news_after = g_news.load(std::memory_order_relaxed);
  EXPECT_EQ(news_after - news_before, 0u)
      << "batched access generation allocated in steady state";
}

TEST(KernelAllocations, FullSystemRunNeverSpillsEventsToHeap) {
  // End-to-end: every closure the simulator schedules across a whole
  // multithreaded run must fit sim::Event's inline buffer.
  const std::uint64_t fallbacks_before = Event::heap_fallbacks();
  SystemConfig config;
  const workload::WorkloadSpec spec =
      workload::make_benchmark("ocean-cont", config, 500);
  core::System system(config);
  core::RunOptions options;
  options.seed = 42;
  options.migration_interval = ticks_from_ns(5000.0);
  system.run(spec, options);
  EXPECT_GT(system.events().events_executed(), 0u);
  EXPECT_EQ(Event::heap_fallbacks(), fallbacks_before)
      << "a simulator closure no longer fits Event::kInlineBytes";
}

}  // namespace
}  // namespace allarm::sim
