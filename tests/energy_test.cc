// Unit tests for the McPAT-lite energy / area model.
#include <gtest/gtest.h>

#include "energy/model.hh"

namespace allarm::energy {
namespace {

TEST(Energy, PerEventCostsArePositive) {
  EnergyModel m(SystemConfig{});
  EXPECT_GT(m.pf_read_pj(), 0.0);
  EXPECT_GT(m.pf_write_pj(), m.pf_read_pj());  // Writes cost more.
  EXPECT_GT(m.pf_eviction_pj(), m.pf_write_pj());
  EXPECT_GT(m.noc_flit_hop_pj(), 0.0);
  EXPECT_GT(m.dram_access_pj(), 0.0);
}

TEST(Energy, PfAccessCostGrowsWithCoverage) {
  SystemConfig small, big;
  small.probe_filter_coverage_bytes = 32 * 1024;
  big.probe_filter_coverage_bytes = 512 * 1024;
  EXPECT_LT(EnergyModel(small).pf_read_pj(), EnergyModel(big).pf_read_pj());
}

TEST(Energy, NocEnergyScalesWithFlitHops) {
  EnergyModel m(SystemConfig{});
  noc::NocStats a{}, b{};
  a.flit_hops = 1000;
  a.messages = 10;
  b.flit_hops = 2000;
  b.messages = 10;
  EXPECT_LT(m.noc_energy_nj(a), m.noc_energy_nj(b));
  EXPECT_NEAR(m.noc_energy_nj(b) / m.noc_energy_nj(a), 2.0, 0.25);
}

TEST(Energy, PfEnergyAdditive) {
  EnergyModel m(SystemConfig{});
  const double reads_only = m.pf_energy_nj(100, 0, 0);
  const double with_writes = m.pf_energy_nj(100, 50, 0);
  const double with_evictions = m.pf_energy_nj(100, 50, 10);
  EXPECT_LT(reads_only, with_writes);
  EXPECT_LT(with_writes, with_evictions);
  EXPECT_DOUBLE_EQ(m.pf_energy_nj(0, 0, 0), 0.0);
}

TEST(Energy, DramEnergyLinearInAccesses) {
  EnergyModel m(SystemConfig{});
  EXPECT_DOUBLE_EQ(m.dram_energy_nj(200), 2 * m.dram_energy_nj(100));
}

// The area power law was fitted to the paper's McPAT table; the endpoints
// must reproduce closely and the curve must be monotone.
TEST(Area, MatchesPaperEndpoints) {
  EXPECT_NEAR(EnergyModel::probe_filter_area_mm2(512 * 1024, 16), 70.89, 2.0);
  EXPECT_NEAR(EnergyModel::probe_filter_area_mm2(32 * 1024, 16), 5.93, 0.3);
}

TEST(Area, MonotoneInCoverage) {
  double prev = 0.0;
  for (std::uint32_t kb : {32, 64, 128, 256, 512}) {
    const double a = EnergyModel::probe_filter_area_mm2(kb * 1024, 16);
    EXPECT_GT(a, prev);
    prev = a;
  }
}

TEST(Area, ScalesWithDirectoryCount) {
  const double full = EnergyModel::probe_filter_area_mm2(512 * 1024, 16);
  const double half = EnergyModel::probe_filter_area_mm2(512 * 1024, 8);
  EXPECT_DOUBLE_EQ(half * 2, full);
}

}  // namespace
}  // namespace allarm::energy
