// Unit tests for access generators and benchmark profiles.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "workload/generator.hh"
#include "workload/profiles.hh"

namespace allarm::workload {
namespace {

// ------------------------------------------------- guide-table Zipf ----

// The guide table is a pure accelerator: for every uniform draw it must
// return EXACTLY the rank the naive lower_bound over the full CDF returns,
// otherwise access streams (and sweep report bytes) would shift.
TEST(ZipfGuideTable, MatchesLowerBoundReferenceExhaustively) {
  const std::uint64_t sizes[] = {1, 2, 7, 1024, 100000};
  const double alphas[] = {0.0, 0.5, 0.9, 1.2};
  for (const std::uint64_t n : sizes) {
    for (const double alpha : alphas) {
      const ZipfDistribution dist(n, alpha);
      Rng rng(0x5eedu ^ n ^ static_cast<std::uint64_t>(alpha * 16));
      for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_EQ(dist.rank(u), dist.rank_reference(u))
            << "n=" << n << " alpha=" << alpha << " u=" << u;
      }
      // Edge draws: exact bucket boundaries are where a misanchored guide
      // index would diverge.
      for (const double u : {0.0, 0.25, 0.5, 0.75, 0.999999999,
                             1.0 - 1e-16}) {
        ASSERT_EQ(dist.rank(u), dist.rank_reference(u))
            << "n=" << n << " alpha=" << alpha << " edge u=" << u;
      }
    }
  }
}

TEST(ZipfGuideTable, SamplingConsumesOneUniformDraw) {
  // operator() must advance the rng exactly as the pre-guide-table code
  // did: one uniform() per sample.
  const ZipfDistribution dist(64, 0.9);
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t rank = dist(a);
    EXPECT_EQ(rank, dist.rank_reference(b.uniform()));
  }
  EXPECT_EQ(a.next(), b.next());  // Same rng position afterwards.
}

// ------------------------------------------------- next_batch contract ----

/// Pulls `total` accesses through next_batch in `batch` chunks and through
/// repeated next() with independent-but-identically-seeded rngs; the two
/// streams (and the rngs afterwards) must match byte for byte.
void expect_batch_equals_next(AccessGenerator& batched,
                              AccessGenerator& serial, std::uint64_t seed,
                              std::size_t total, std::size_t batch,
                              Tick now = 0) {
  Rng rng_batch(seed), rng_serial(seed);
  std::vector<Access> out(batch);
  std::size_t produced = 0;
  while (produced < total) {
    const std::size_t take = std::min(batch, total - produced);
    batched.next_batch(rng_batch, now, Span<Access>(out.data(), take));
    for (std::size_t i = 0; i < take; ++i) {
      const Access expect = serial.next(rng_serial, now);
      ASSERT_EQ(out[i].vaddr, expect.vaddr) << "access " << produced + i;
      ASSERT_EQ(out[i].type, expect.type) << "access " << produced + i;
    }
    produced += take;
  }
  EXPECT_EQ(rng_batch.next(), rng_serial.next())
      << "batch path consumed a different number of draws";
}

TEST(NextBatch, SequentialSweepMatchesNext) {
  SequentialSweep a(0x1000, 64 * kLineBytes, kLineBytes, 0.3);
  SequentialSweep b(0x1000, 64 * kLineBytes, kLineBytes, 0.3);
  expect_batch_equals_next(a, b, 11, 1000, 17);
}

TEST(NextBatch, UniformRandomMatchesNext) {
  UniformRandom a(0x2000, 256 * kLineBytes, 0.4);
  UniformRandom b(0x2000, 256 * kLineBytes, 0.4);
  expect_batch_equals_next(a, b, 12, 1000, 32);
}

TEST(NextBatch, ZipfPagesMatchesNext) {
  ZipfPages a(0x3000, 128, 0.9, 0.2);
  ZipfPages b(0x3000, 128, 0.9, 0.2);
  expect_batch_equals_next(a, b, 13, 2000, 64);
}

TEST(NextBatch, ChunkCycleMatchesNext) {
  ChunkCycle a(0x4000, 4 * kLineBytes, 5, 2, 0.25);
  ChunkCycle b(0x4000, 4 * kLineBytes, 5, 2, 0.25);
  // Batch size deliberately misaligned with the 4-access chunk period.
  expect_batch_equals_next(a, b, 14, 1000, 7);
}

TEST(NextBatch, CreepingSharedMatchesNext) {
  CreepingShared a(0x5000, 1024 * kLineBytes, 16, ticks_from_ns(10.0), 0.1);
  CreepingShared b(0x5000, 1024 * kLineBytes, 16, ticks_from_ns(10.0), 0.1);
  expect_batch_equals_next(a, b, 15, 1000, 64, ticks_from_ns(12345.0));
}

std::unique_ptr<Phased> make_test_phased() {
  auto phased = std::make_unique<Phased>();
  phased->add_stage(10, std::make_unique<SequentialSweep>(
                            0x1000, 16 * kLineBytes, kLineBytes, 0.0));
  phased->add_stage(7, std::make_unique<UniformRandom>(
                           0x8000, 32 * kLineBytes, 0.5));
  phased->add_stage(5, std::make_unique<ChunkCycle>(0x20000, 2 * kLineBytes,
                                                    3, 1, 0.2));
  auto tail = std::make_unique<Mix>();
  tail->add(0.6, std::make_unique<SequentialSweep>(0x40000, 8 * kLineBytes,
                                                   kLineBytes, 0.3));
  tail->add(0.4, std::make_unique<CreepingShared>(
                     0x80000, 512 * kLineBytes, 8, ticks_from_ns(5.0), 0.0));
  phased->set_tail(std::move(tail));
  return phased;
}

TEST(NextBatch, PhasedMatchesNextAcrossStageBoundaries) {
  // Batch size 8 never divides the 10/7/5 stage lengths, so every stage
  // boundary lands mid-batch — the splitting path under test.
  auto a = make_test_phased();
  auto b = make_test_phased();
  expect_batch_equals_next(*a, *b, 16, 500, 8, ticks_from_ns(99.0));
}

TEST(NextBatch, MixMatchesNext) {
  const auto make = [] {
    auto mix = std::make_unique<Mix>();
    mix->add(0.5, std::make_unique<SequentialSweep>(0x1000, 8 * kLineBytes,
                                                    kLineBytes, 0.2));
    mix->add(0.3, std::make_unique<ZipfPages>(0x100000, 64, 0.9, 0.4));
    mix->add(0.2, std::make_unique<CreepingShared>(
                      0x200000, 256 * kLineBytes, 8, ticks_from_ns(10.0),
                      0.0));
    return mix;
  };
  auto a = make();
  auto b = make();
  expect_batch_equals_next(*a, *b, 17, 2000, 16, ticks_from_ns(77.0));
}

TEST(NextBatch, FullProfileGeneratorMatchesNext) {
  // End to end: the exact generator tree the simulator issues from,
  // including the warm-up Phased prefix and the steady-state mixture.
  SystemConfig config;
  const WorkloadSpec spec = make_benchmark("ocean-cont", config, 200);
  auto a = spec.threads[3].make_generator();
  auto b = spec.threads[3].make_generator();
  expect_batch_equals_next(*a, *b, 18, 3000, 64, ticks_from_ns(500.0));
}

TEST(NextBatch, SaveRestoreReplaysIdentically) {
  // The System issue ring's staleness replay: snapshot rng + generator
  // position, generate, rewind, regenerate — the two passes must agree.
  auto gen = make_test_phased();
  Rng rng(21);
  std::vector<std::uint64_t> state;
  // Consume a prefix so the snapshot is taken mid-stream.
  std::vector<Access> scratch(13);
  gen->next_batch(rng, 0, Span<Access>(scratch.data(), scratch.size()));

  const Rng rng_snapshot = rng;
  gen->save_state(state);

  std::vector<Access> first(64), second(64);
  gen->next_batch(rng, ticks_from_ns(40.0),
                  Span<Access>(first.data(), first.size()));

  rng = rng_snapshot;
  const std::uint64_t* cursor = state.data();
  gen->restore_state(cursor);
  gen->next_batch(rng, ticks_from_ns(40.0),
                  Span<Access>(second.data(), second.size()));

  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].vaddr, second[i].vaddr) << i;
    EXPECT_EQ(first[i].type, second[i].type) << i;
  }
}

TEST(NextBatch, ValidityHorizonReflectsTimeDependence) {
  SequentialSweep sweep(0, 4 * kLineBytes, kLineBytes, 0.0);
  EXPECT_EQ(sweep.validity_horizon(123), kTickNever);

  CreepingShared creep(0, 1024 * kLineBytes, 4, 1000, 0.0);
  EXPECT_EQ(creep.validity_horizon(0), 1000u);
  EXPECT_EQ(creep.validity_horizon(999), 1000u);
  EXPECT_EQ(creep.validity_horizon(1000), 2000u);

  Rng rng(1);
  Access out[4];
  EXPECT_EQ(creep.next_batch(rng, 1500, Span<Access>(out, 4)), 2000u);
  EXPECT_EQ(sweep.next_batch(rng, 1500, Span<Access>(out, 4)), kTickNever);
}

TEST(SequentialSweep, WrapsAndStrides) {
  SequentialSweep gen(0x1000, 4 * kLineBytes, kLineBytes, 0.0);
  Rng rng(1);
  std::vector<Addr> seen;
  for (int i = 0; i < 8; ++i) seen.push_back(gen.next(rng, 0).vaddr);
  EXPECT_EQ(seen[0], 0x1000u);
  EXPECT_EQ(seen[1], 0x1000u + kLineBytes);
  EXPECT_EQ(seen[4], 0x1000u);  // Wrapped.
}

TEST(SequentialSweep, WriteProbability) {
  SequentialSweep gen(0, 64 * kLineBytes, kLineBytes, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(gen.next(rng, 0).type, AccessType::kStore);
  }
  SequentialSweep ro(0, 64 * kLineBytes, kLineBytes, 0.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ro.next(rng, 0).type, AccessType::kLoad);
  }
}

TEST(SequentialSweep, RejectsDegenerate) {
  EXPECT_THROW(SequentialSweep(0, 0, 64, 0.0), std::invalid_argument);
  EXPECT_THROW(SequentialSweep(0, 64, 0, 0.0), std::invalid_argument);
}

TEST(UniformRandom, StaysInRegionAndAligned) {
  UniformRandom gen(0x10000, 16 * kLineBytes, 0.5);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const Addr a = gen.next(rng, 0).vaddr;
    EXPECT_GE(a, 0x10000u);
    EXPECT_LT(a, 0x10000u + 16 * kLineBytes);
    EXPECT_EQ(a % kLineBytes, 0u);
  }
}

TEST(UniformRandom, CoversRegion) {
  UniformRandom gen(0, 8 * kLineBytes, 0.0);
  Rng rng(3);
  std::set<Addr> seen;
  for (int i = 0; i < 500; ++i) seen.insert(gen.next(rng, 0).vaddr);
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ZipfPages, SkewsTowardFirstPages) {
  ZipfPages gen(0, 64, 1.0, 0.0);
  Rng rng(4);
  std::vector<int> page_counts(64, 0);
  for (int i = 0; i < 20000; ++i) {
    ++page_counts[gen.next(rng, 0).vaddr / kPageBytes];
  }
  EXPECT_GT(page_counts[0], page_counts[32] * 4);
}

TEST(ChunkCycle, VisitsChunksInPhaseOrder) {
  // 2 chunks of 2 lines; phase 1 starts in chunk 1.
  ChunkCycle gen(0, 2 * kLineBytes, 2, 1, 0.0);
  Rng rng(5);
  EXPECT_EQ(gen.next(rng, 0).vaddr / (2 * kLineBytes), 1u);
  EXPECT_EQ(gen.next(rng, 0).vaddr / (2 * kLineBytes), 1u);
  EXPECT_EQ(gen.next(rng, 0).vaddr / (2 * kLineBytes), 0u);  // Advanced.
}

TEST(CreepingShared, WindowFollowsSimulatedTime) {
  CreepingShared gen(0, 1024 * kLineBytes, 4, ticks_from_ns(10.0), 0.0);
  Rng rng(6);
  // At t=0 the window is lines [0,4); at t=10us it is [1000, 1004).
  for (int i = 0; i < 20; ++i) {
    const Addr a = gen.next(rng, 0).vaddr;
    EXPECT_LT(a / kLineBytes, 4u);
  }
  for (int i = 0; i < 20; ++i) {
    const Addr a = gen.next(rng, ticks_from_ns(10000.0)).vaddr;
    EXPECT_GE(a / kLineBytes, 1000u);
    EXPECT_LT(a / kLineBytes, 1004u);
  }
}

TEST(CreepingShared, TwoThreadsShareTheWindow) {
  CreepingShared a(0, 1024 * kLineBytes, 8, ticks_from_ns(10.0), 0.0);
  CreepingShared b(0, 1024 * kLineBytes, 8, ticks_from_ns(10.0), 0.0);
  Rng ra(1), rb(2);
  std::set<Addr> sa, sb;
  for (int i = 0; i < 100; ++i) {
    sa.insert(a.next(ra, ticks_from_ns(500.0)).vaddr);
    sb.insert(b.next(rb, ticks_from_ns(500.0)).vaddr);
  }
  EXPECT_EQ(sa, sb);  // Identical windows regardless of generator instance.
}

TEST(CreepingShared, WrapsOverRegion) {
  CreepingShared gen(0, 16 * kLineBytes, 4, 1, 0.0);
  Rng rng(7);
  const Addr a = gen.next(rng, 1000).vaddr;  // Head far beyond the region.
  EXPECT_LT(a, 16 * kLineBytes);
}

TEST(Phased, RunsStagesThenTail) {
  auto phased = std::make_unique<Phased>();
  phased->add_stage(2, std::make_unique<SequentialSweep>(0, 2 * kLineBytes,
                                                         kLineBytes, 0.0));
  phased->add_stage(1, std::make_unique<SequentialSweep>(
                           0x1000, kLineBytes, kLineBytes, 0.0));
  phased->set_tail(std::make_unique<SequentialSweep>(0x2000, kLineBytes,
                                                     kLineBytes, 0.0));
  EXPECT_EQ(phased->prefix_length(), 3u);
  Rng rng(1);
  EXPECT_EQ(phased->next(rng, 0).vaddr, 0x0u);
  EXPECT_EQ(phased->next(rng, 0).vaddr, static_cast<Addr>(kLineBytes));
  EXPECT_EQ(phased->next(rng, 0).vaddr, 0x1000u);
  EXPECT_EQ(phased->next(rng, 0).vaddr, 0x2000u);
  EXPECT_EQ(phased->next(rng, 0).vaddr, 0x2000u);  // Tail repeats.
}

TEST(Phased, ThrowsWithoutTail) {
  Phased phased;
  Rng rng(1);
  EXPECT_THROW(phased.next(rng, 0), std::logic_error);
}

TEST(Mix, RespectsWeights) {
  Mix mix;
  mix.add(0.9, std::make_unique<SequentialSweep>(0, kLineBytes, kLineBytes, 0.0));
  mix.add(0.1, std::make_unique<SequentialSweep>(0x100000, kLineBytes,
                                                 kLineBytes, 0.0));
  Rng rng(8);
  int low = 0;
  for (int i = 0; i < 10000; ++i) {
    low += (mix.next(rng, 0).vaddr < 0x100000);
  }
  EXPECT_NEAR(low / 10000.0, 0.9, 0.03);
}

TEST(Mix, RejectsBadWeight) {
  Mix mix;
  EXPECT_THROW(
      mix.add(0.0, std::make_unique<SequentialSweep>(0, 64, 64, 0.0)),
      std::invalid_argument);
}

// ---------------------------------------------------------------- profiles ----

TEST(Profiles, AllEightBenchmarksExist) {
  const auto& names = benchmark_names();
  ASSERT_EQ(names.size(), 8u);
  EXPECT_EQ(names.front(), "barnes");
  EXPECT_EQ(names.back(), "x264");
  for (const auto& n : names) {
    EXPECT_EQ(benchmark_params(n).name, n);
    EXPECT_GE(benchmark_params(n).p_shared(), -1e-9);
  }
  EXPECT_THROW(benchmark_params("doom"), std::out_of_range);
}

TEST(Profiles, BuildsSixteenThreadWorkload) {
  SystemConfig config;
  const WorkloadSpec spec = make_benchmark("ocean-cont", config, 1000);
  ASSERT_EQ(spec.threads.size(), 16u);
  for (const auto& t : spec.threads) {
    EXPECT_EQ(t.accesses, 1000u);
    EXPECT_GT(t.warmup_accesses, 0u);
    EXPECT_NE(t.make_generator, nullptr);
  }
  EXPECT_NE(spec.setup, nullptr);
}

TEST(Profiles, GeneratorsAreDeterministic) {
  SystemConfig config;
  const WorkloadSpec spec = make_benchmark("dedup", config, 100);
  auto g1 = spec.threads[3].make_generator();
  auto g2 = spec.threads[3].make_generator();
  Rng r1(9), r2(9);
  for (int i = 0; i < 500; ++i) {
    const Access a = g1->next(r1, i);
    const Access b = g2->next(r2, i);
    EXPECT_EQ(a.vaddr, b.vaddr);
    EXPECT_EQ(a.type, b.type);
  }
}

TEST(Profiles, ThreadsHaveDistinctPrivateRegions) {
  SystemConfig config;
  const WorkloadSpec spec = make_benchmark("barnes", config, 100);
  auto g0 = spec.threads[0].make_generator();
  auto g1 = spec.threads[1].make_generator();
  Rng r0(1), r1(1);
  std::set<Addr> a0, a1;
  // Skip the (kernel-shared) warm-up prefix.
  const auto warm = spec.threads[0].warmup_accesses;
  for (std::uint64_t i = 0; i < warm + 200; ++i) {
    const Addr x = g0->next(r0, 0).vaddr;
    const Addr y = g1->next(r1, 0).vaddr;
    if (i >= warm && x < 0x100'0000'0000ull) a0.insert(x);
    if (i >= warm && y < 0x100'0000'0000ull) a1.insert(y);
  }
  for (const Addr a : a0) EXPECT_EQ(a1.count(a), 0u);
}

TEST(Profiles, MultiprocessBuildsTwoProcesses) {
  SystemConfig config;
  const WorkloadSpec spec = make_multiprocess("barnes", config, 500);
  ASSERT_EQ(spec.threads.size(), 2u);
  EXPECT_NE(spec.threads[0].asid, spec.threads[1].asid);
  EXPECT_NE(spec.threads[0].node, spec.threads[1].node);
  EXPECT_EQ(multiprocess_benchmark_names().size(), 4u);
}

TEST(Profiles, RejectsTooManyThreads) {
  SystemConfig config;
  EXPECT_THROW(
      make_from_params(benchmark_params("barnes"), config, 10, 17),
      std::invalid_argument);
}

TEST(Profiles, SetupPlacesPrivatePagesLocally) {
  SystemConfig config;
  const WorkloadSpec spec = make_benchmark("ocean-cont", config, 100);
  numa::Os os(config, numa::AllocPolicy::kFirstTouch);
  spec.setup(os);
  // Thread 5's hot region must be homed at node 5.
  const Addr hot5 = 0x4000'0000ull * 6;
  ASSERT_TRUE(os.translate(0, hot5).has_value());
  EXPECT_EQ(os.home_of(*os.translate(0, hot5)), 5);
}

TEST(Profiles, BlackscholesSharedRegionHomedAtNodeZero) {
  SystemConfig config;
  const WorkloadSpec spec = make_benchmark("blackscholes", config, 100);
  numa::Os os(config, numa::AllocPolicy::kFirstTouch);
  spec.setup(os);
  const Addr shared_base = 0x300'0000'0000ull;
  const auto& params = benchmark_params("blackscholes");
  for (Addr a = shared_base; a < shared_base + params.shared_bytes;
       a += kPageBytes) {
    ASSERT_TRUE(os.translate(0, a).has_value());
    EXPECT_EQ(os.home_of(*os.translate(0, a)), 0);
  }
}

TEST(Profiles, MisplacedFractionSpreadsColdPages) {
  SystemConfig config;
  const WorkloadSpec spec = make_benchmark("ocean-non-cont", config, 100);
  numa::Os os(config, numa::AllocPolicy::kFirstTouch);
  spec.setup(os);
  const auto& params = benchmark_params("ocean-non-cont");
  const Addr cold0 = 0x100'0000'0000ull;
  int misplaced = 0, total = 0;
  for (Addr a = cold0; a < cold0 + params.cold_bytes; a += kPageBytes) {
    ++total;
    misplaced += (os.home_of(*os.translate(0, a)) != 0);
  }
  EXPECT_NEAR(static_cast<double>(misplaced) / total,
              params.misplaced_private_fraction, 0.05);
}

}  // namespace
}  // namespace allarm::workload
