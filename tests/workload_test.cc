// Unit tests for access generators and benchmark profiles.
#include <gtest/gtest.h>

#include <set>

#include "workload/generator.hh"
#include "workload/profiles.hh"

namespace allarm::workload {
namespace {

TEST(SequentialSweep, WrapsAndStrides) {
  SequentialSweep gen(0x1000, 4 * kLineBytes, kLineBytes, 0.0);
  Rng rng(1);
  std::vector<Addr> seen;
  for (int i = 0; i < 8; ++i) seen.push_back(gen.next(rng, 0).vaddr);
  EXPECT_EQ(seen[0], 0x1000u);
  EXPECT_EQ(seen[1], 0x1000u + kLineBytes);
  EXPECT_EQ(seen[4], 0x1000u);  // Wrapped.
}

TEST(SequentialSweep, WriteProbability) {
  SequentialSweep gen(0, 64 * kLineBytes, kLineBytes, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(gen.next(rng, 0).type, AccessType::kStore);
  }
  SequentialSweep ro(0, 64 * kLineBytes, kLineBytes, 0.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ro.next(rng, 0).type, AccessType::kLoad);
  }
}

TEST(SequentialSweep, RejectsDegenerate) {
  EXPECT_THROW(SequentialSweep(0, 0, 64, 0.0), std::invalid_argument);
  EXPECT_THROW(SequentialSweep(0, 64, 0, 0.0), std::invalid_argument);
}

TEST(UniformRandom, StaysInRegionAndAligned) {
  UniformRandom gen(0x10000, 16 * kLineBytes, 0.5);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const Addr a = gen.next(rng, 0).vaddr;
    EXPECT_GE(a, 0x10000u);
    EXPECT_LT(a, 0x10000u + 16 * kLineBytes);
    EXPECT_EQ(a % kLineBytes, 0u);
  }
}

TEST(UniformRandom, CoversRegion) {
  UniformRandom gen(0, 8 * kLineBytes, 0.0);
  Rng rng(3);
  std::set<Addr> seen;
  for (int i = 0; i < 500; ++i) seen.insert(gen.next(rng, 0).vaddr);
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ZipfPages, SkewsTowardFirstPages) {
  ZipfPages gen(0, 64, 1.0, 0.0);
  Rng rng(4);
  std::vector<int> page_counts(64, 0);
  for (int i = 0; i < 20000; ++i) {
    ++page_counts[gen.next(rng, 0).vaddr / kPageBytes];
  }
  EXPECT_GT(page_counts[0], page_counts[32] * 4);
}

TEST(ChunkCycle, VisitsChunksInPhaseOrder) {
  // 2 chunks of 2 lines; phase 1 starts in chunk 1.
  ChunkCycle gen(0, 2 * kLineBytes, 2, 1, 0.0);
  Rng rng(5);
  EXPECT_EQ(gen.next(rng, 0).vaddr / (2 * kLineBytes), 1u);
  EXPECT_EQ(gen.next(rng, 0).vaddr / (2 * kLineBytes), 1u);
  EXPECT_EQ(gen.next(rng, 0).vaddr / (2 * kLineBytes), 0u);  // Advanced.
}

TEST(CreepingShared, WindowFollowsSimulatedTime) {
  CreepingShared gen(0, 1024 * kLineBytes, 4, ticks_from_ns(10.0), 0.0);
  Rng rng(6);
  // At t=0 the window is lines [0,4); at t=10us it is [1000, 1004).
  for (int i = 0; i < 20; ++i) {
    const Addr a = gen.next(rng, 0).vaddr;
    EXPECT_LT(a / kLineBytes, 4u);
  }
  for (int i = 0; i < 20; ++i) {
    const Addr a = gen.next(rng, ticks_from_ns(10000.0)).vaddr;
    EXPECT_GE(a / kLineBytes, 1000u);
    EXPECT_LT(a / kLineBytes, 1004u);
  }
}

TEST(CreepingShared, TwoThreadsShareTheWindow) {
  CreepingShared a(0, 1024 * kLineBytes, 8, ticks_from_ns(10.0), 0.0);
  CreepingShared b(0, 1024 * kLineBytes, 8, ticks_from_ns(10.0), 0.0);
  Rng ra(1), rb(2);
  std::set<Addr> sa, sb;
  for (int i = 0; i < 100; ++i) {
    sa.insert(a.next(ra, ticks_from_ns(500.0)).vaddr);
    sb.insert(b.next(rb, ticks_from_ns(500.0)).vaddr);
  }
  EXPECT_EQ(sa, sb);  // Identical windows regardless of generator instance.
}

TEST(CreepingShared, WrapsOverRegion) {
  CreepingShared gen(0, 16 * kLineBytes, 4, 1, 0.0);
  Rng rng(7);
  const Addr a = gen.next(rng, 1000).vaddr;  // Head far beyond the region.
  EXPECT_LT(a, 16 * kLineBytes);
}

TEST(Phased, RunsStagesThenTail) {
  auto phased = std::make_unique<Phased>();
  phased->add_stage(2, std::make_unique<SequentialSweep>(0, 2 * kLineBytes,
                                                         kLineBytes, 0.0));
  phased->add_stage(1, std::make_unique<SequentialSweep>(
                           0x1000, kLineBytes, kLineBytes, 0.0));
  phased->set_tail(std::make_unique<SequentialSweep>(0x2000, kLineBytes,
                                                     kLineBytes, 0.0));
  EXPECT_EQ(phased->prefix_length(), 3u);
  Rng rng(1);
  EXPECT_EQ(phased->next(rng, 0).vaddr, 0x0u);
  EXPECT_EQ(phased->next(rng, 0).vaddr, static_cast<Addr>(kLineBytes));
  EXPECT_EQ(phased->next(rng, 0).vaddr, 0x1000u);
  EXPECT_EQ(phased->next(rng, 0).vaddr, 0x2000u);
  EXPECT_EQ(phased->next(rng, 0).vaddr, 0x2000u);  // Tail repeats.
}

TEST(Phased, ThrowsWithoutTail) {
  Phased phased;
  Rng rng(1);
  EXPECT_THROW(phased.next(rng, 0), std::logic_error);
}

TEST(Mix, RespectsWeights) {
  Mix mix;
  mix.add(0.9, std::make_unique<SequentialSweep>(0, kLineBytes, kLineBytes, 0.0));
  mix.add(0.1, std::make_unique<SequentialSweep>(0x100000, kLineBytes,
                                                 kLineBytes, 0.0));
  Rng rng(8);
  int low = 0;
  for (int i = 0; i < 10000; ++i) {
    low += (mix.next(rng, 0).vaddr < 0x100000);
  }
  EXPECT_NEAR(low / 10000.0, 0.9, 0.03);
}

TEST(Mix, RejectsBadWeight) {
  Mix mix;
  EXPECT_THROW(
      mix.add(0.0, std::make_unique<SequentialSweep>(0, 64, 64, 0.0)),
      std::invalid_argument);
}

// ---------------------------------------------------------------- profiles ----

TEST(Profiles, AllEightBenchmarksExist) {
  const auto& names = benchmark_names();
  ASSERT_EQ(names.size(), 8u);
  EXPECT_EQ(names.front(), "barnes");
  EXPECT_EQ(names.back(), "x264");
  for (const auto& n : names) {
    EXPECT_EQ(benchmark_params(n).name, n);
    EXPECT_GE(benchmark_params(n).p_shared(), -1e-9);
  }
  EXPECT_THROW(benchmark_params("doom"), std::out_of_range);
}

TEST(Profiles, BuildsSixteenThreadWorkload) {
  SystemConfig config;
  const WorkloadSpec spec = make_benchmark("ocean-cont", config, 1000);
  ASSERT_EQ(spec.threads.size(), 16u);
  for (const auto& t : spec.threads) {
    EXPECT_EQ(t.accesses, 1000u);
    EXPECT_GT(t.warmup_accesses, 0u);
    EXPECT_NE(t.make_generator, nullptr);
  }
  EXPECT_NE(spec.setup, nullptr);
}

TEST(Profiles, GeneratorsAreDeterministic) {
  SystemConfig config;
  const WorkloadSpec spec = make_benchmark("dedup", config, 100);
  auto g1 = spec.threads[3].make_generator();
  auto g2 = spec.threads[3].make_generator();
  Rng r1(9), r2(9);
  for (int i = 0; i < 500; ++i) {
    const Access a = g1->next(r1, i);
    const Access b = g2->next(r2, i);
    EXPECT_EQ(a.vaddr, b.vaddr);
    EXPECT_EQ(a.type, b.type);
  }
}

TEST(Profiles, ThreadsHaveDistinctPrivateRegions) {
  SystemConfig config;
  const WorkloadSpec spec = make_benchmark("barnes", config, 100);
  auto g0 = spec.threads[0].make_generator();
  auto g1 = spec.threads[1].make_generator();
  Rng r0(1), r1(1);
  std::set<Addr> a0, a1;
  // Skip the (kernel-shared) warm-up prefix.
  const auto warm = spec.threads[0].warmup_accesses;
  for (std::uint64_t i = 0; i < warm + 200; ++i) {
    const Addr x = g0->next(r0, 0).vaddr;
    const Addr y = g1->next(r1, 0).vaddr;
    if (i >= warm && x < 0x100'0000'0000ull) a0.insert(x);
    if (i >= warm && y < 0x100'0000'0000ull) a1.insert(y);
  }
  for (const Addr a : a0) EXPECT_EQ(a1.count(a), 0u);
}

TEST(Profiles, MultiprocessBuildsTwoProcesses) {
  SystemConfig config;
  const WorkloadSpec spec = make_multiprocess("barnes", config, 500);
  ASSERT_EQ(spec.threads.size(), 2u);
  EXPECT_NE(spec.threads[0].asid, spec.threads[1].asid);
  EXPECT_NE(spec.threads[0].node, spec.threads[1].node);
  EXPECT_EQ(multiprocess_benchmark_names().size(), 4u);
}

TEST(Profiles, RejectsTooManyThreads) {
  SystemConfig config;
  EXPECT_THROW(
      make_from_params(benchmark_params("barnes"), config, 10, 17),
      std::invalid_argument);
}

TEST(Profiles, SetupPlacesPrivatePagesLocally) {
  SystemConfig config;
  const WorkloadSpec spec = make_benchmark("ocean-cont", config, 100);
  numa::Os os(config, numa::AllocPolicy::kFirstTouch);
  spec.setup(os);
  // Thread 5's hot region must be homed at node 5.
  const Addr hot5 = 0x4000'0000ull * 6;
  ASSERT_TRUE(os.translate(0, hot5).has_value());
  EXPECT_EQ(os.home_of(*os.translate(0, hot5)), 5);
}

TEST(Profiles, BlackscholesSharedRegionHomedAtNodeZero) {
  SystemConfig config;
  const WorkloadSpec spec = make_benchmark("blackscholes", config, 100);
  numa::Os os(config, numa::AllocPolicy::kFirstTouch);
  spec.setup(os);
  const Addr shared_base = 0x300'0000'0000ull;
  const auto& params = benchmark_params("blackscholes");
  for (Addr a = shared_base; a < shared_base + params.shared_bytes;
       a += kPageBytes) {
    ASSERT_TRUE(os.translate(0, a).has_value());
    EXPECT_EQ(os.home_of(*os.translate(0, a)), 0);
  }
}

TEST(Profiles, MisplacedFractionSpreadsColdPages) {
  SystemConfig config;
  const WorkloadSpec spec = make_benchmark("ocean-non-cont", config, 100);
  numa::Os os(config, numa::AllocPolicy::kFirstTouch);
  spec.setup(os);
  const auto& params = benchmark_params("ocean-non-cont");
  const Addr cold0 = 0x100'0000'0000ull;
  int misplaced = 0, total = 0;
  for (Addr a = cold0; a < cold0 + params.cold_bytes; a += kPageBytes) {
    ++total;
    misplaced += (os.home_of(*os.translate(0, a)) != 0);
  }
  EXPECT_NEAR(static_cast<double>(misplaced) / total,
              params.misplaced_private_fraction, 0.05);
}

}  // namespace
}  // namespace allarm::workload
