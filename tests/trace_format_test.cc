// Pins the .altr on-disk trace format and the trace subsystem's
// contracts: golden bytes (any layout/codec drift fails loudly here, not
// in a user's trace archive), writer/reader round trips, CRC corruption
// detection, footer-index random access, and the TraceReplayGenerator's
// AccessGenerator conformance (draw-identical batching, allocation-free
// streaming through the issue ring).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "common/fileio.hh"
#include "common/rng.hh"
#include "trace/convert.hh"
#include "trace/format.hh"
#include "trace/reader.hh"
#include "trace/replay.hh"
#include "trace/writer.hh"

namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

// Same counting-new arrangement as kernel_alloc_test.cc: under ASan the
// global allocator belongs to the sanitizer and the zero-alloc assertions
// become vacuous.
#if defined(__SANITIZE_ADDRESS__)
#define ALLARM_COUNTING_NEW 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ALLARM_COUNTING_NEW 0
#else
#define ALLARM_COUNTING_NEW 1
#endif
#else
#define ALLARM_COUNTING_NEW 1
#endif

#if ALLARM_COUNTING_NEW
void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // ALLARM_COUNTING_NEW

namespace allarm::trace {
namespace {

std::string temp_path(const char* name) {
  return testing::TempDir() + "/allarm_trace_" + name + ".altr";
}

std::string hex_of(const std::string& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string hex;
  hex.reserve(bytes.size() * 2);
  for (const unsigned char c : bytes) {
    hex.push_back(digits[c >> 4]);
    hex.push_back(digits[c & 0xF]);
  }
  return hex;
}

/// The golden trace: two threads, block payloads capped at 16 bytes so
/// thread 0 spans two blocks, one setup touch, every metadata field
/// non-trivial.  Any change to its bytes is a format change.
void write_golden(const std::string& path) {
  TraceWriter writer(path, /*block_payload_bytes=*/16);
  writer.meta().workload = "golden";
  writer.meta().seed = 7;
  writer.meta().directory_mode = 1;
  writer.meta().alloc_policy = 0;
  writer.meta().setup = {SetupTouch{0, 0x40000, 2}, SetupTouch{1, 0x3FFF0, 5}};

  TraceThreadMeta t0;
  t0.id = 0;
  t0.asid = 0;
  t0.node = 0;
  t0.accesses = 5;
  t0.warmup_accesses = 0;
  t0.think = 2000;
  t0.think_jitter = 0.25;
  const std::uint32_t slot0 = writer.add_thread(t0);

  TraceThreadMeta t1;
  t1.id = 9;
  t1.asid = 1;
  t1.node = 3;
  t1.accesses = 1;
  t1.think = 0;
  t1.start_offset = 3000;
  const std::uint32_t slot1 = writer.add_thread(t1);

  using workload::Access;
  writer.record(slot0, Access{0x40000000, AccessType::kLoad}, 0);
  writer.record(slot0, Access{0x40000040, AccessType::kStore}, 2);
  writer.record(slot0, Access{0x3FFFFFC0, AccessType::kLoad}, 1);
  writer.record(slot1, Access{0xdeadbeef, AccessType::kInstFetch}, 0);
  writer.record(slot0, Access{0x40000000, AccessType::kStore}, 3);
  writer.record(slot0, Access{0x40000100, AccessType::kLoad}, 0);
  writer.finish();
}

TEST(TraceFormat, LayoutConstants) {
  EXPECT_EQ(sizeof(FileHeader), 16u);
  EXPECT_EQ(sizeof(BlockHeader), 32u);
  EXPECT_EQ(sizeof(IndexEntry), 24u);
  EXPECT_EQ(sizeof(Footer), 64u);
  // "ALTRHDR1" / "ALTRFTR1" little-endian.
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(&kFileMagic), 8),
            "ALTRHDR1");
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(&kFooterMagic), 8),
            "ALTRFTR1");
}

TEST(TraceFormat, GoldenBytes) {
  const std::string path = temp_path("golden");
  write_golden(path);
  const std::string bytes = read_file(path);
  const std::string kGoldenHex =
      "414c54524844523101000000a16480ce02000000000000000400000013000000"
      "0000000000000000a0680a5da2cc76a1008080808008000180010200ff010101"
      "80010302000000000000000100000007000000040000000000000093cb426dd9"
      "1d11d00080848080080002000000010000000100000007000000000000000000"
      "00005e3064c2e2557be302defbedea1b00010000000000000000000000960000"
      "000000000000000000a6f0170eddd98fa006000000676f6c64656e0700000000"
      "0000000100000000000000020000000000000000000000000000000500000000"
      "0000000000000000000000d007000000000000000000000000d03f0000000000"
      "0000000900000001000000030000000100000000000000000000000000000000"
      "000000000000000000000000000000b80b000000000000020000000000000000"
      "0280802001051f10000000000000000000000000000000000000000400000043"
      "00000000000000040000000000000000000000010000006a0000000000000000"
      "000000000000000100000001000000414c545246545231010000000200000006"
      "0000000000000003000000000000004701000000000000910000000000000000"
      "000000000000009caff1cc6da8795b";
  EXPECT_EQ(hex_of(bytes), kGoldenHex)
      << "the .altr on-disk format changed; if that is intentional, bump "
         "kFormatVersion and re-pin this vector";
  std::remove(path.c_str());
}

TEST(TraceFormat, ZigzagRoundTrips) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1}, std::int64_t{63},
        std::int64_t{-64}, std::int64_t{1} << 40, -(std::int64_t{1} << 40),
        std::numeric_limits<std::int64_t>::max(),
        std::numeric_limits<std::int64_t>::min()}) {
    EXPECT_EQ(unzigzag(zigzag(v)), v);
  }
  EXPECT_EQ(zigzag(0), 0u);
  EXPECT_EQ(zigzag(-1), 1u);
  EXPECT_EQ(zigzag(1), 2u);
}

TEST(TraceFormat, RecordCodecHandlesExtremeDeltas) {
  // Deltas straddling 2^63 (legal: vaddr is a full u64) must round-trip
  // via wrapping arithmetic, not signed overflow.
  const Addr extremes[] = {0x0,
                           0x1,
                           0x8000000000000000ull,
                           0xFFFFFFFFFFFFFFFFull,
                           0x1,
                           0x7FFFFFFFFFFFFFFFull,
                           0x8000000000000001ull};
  std::string payload;
  Addr prev = 0;
  for (const Addr vaddr : extremes) {
    Record r;
    r.access.vaddr = vaddr;
    r.access.type = AccessType::kStore;
    r.rng_draws = 1;
    encode_record(payload, r, prev);
    prev = vaddr;
  }
  Decoder in{reinterpret_cast<const unsigned char*>(payload.data()),
             payload.size(), 0};
  prev = 0;
  for (const Addr vaddr : extremes) {
    const Record r = decode_record(in, prev);
    EXPECT_EQ(r.access.vaddr, vaddr);
  }
  EXPECT_TRUE(in.done());
}

TEST(TraceFormat, MetaEncodeDecodeRoundTrips) {
  TraceMeta meta;
  meta.workload = "round-trip";
  meta.seed = 0xFEEDFACE12345678ull;
  meta.directory_mode = 1;
  meta.alloc_policy = 1;
  TraceThreadMeta t;
  t.id = 42;
  t.asid = 3;
  t.node = 15;
  t.accesses = 1u << 20;
  t.warmup_accesses = 12345;
  t.think = ticks_from_ns(1.5);
  t.think_jitter = 0.3;
  t.start_offset = 9000;
  meta.threads.push_back(t);
  meta.setup = {SetupTouch{0, 1000, 1}, SetupTouch{0, 10, 2},  // Negative delta.
                SetupTouch{0xFFFFFFFFu, 0xFFFFFFFFFFFull, 15}};

  const std::string encoded = encode_meta(meta);
  const TraceMeta decoded = decode_meta(encoded.data(), encoded.size());
  EXPECT_EQ(decoded.workload, meta.workload);
  EXPECT_EQ(decoded.seed, meta.seed);
  EXPECT_EQ(decoded.directory_mode, meta.directory_mode);
  EXPECT_EQ(decoded.alloc_policy, meta.alloc_policy);
  ASSERT_EQ(decoded.threads.size(), 1u);
  EXPECT_EQ(decoded.threads[0].id, t.id);
  EXPECT_EQ(decoded.threads[0].asid, t.asid);
  EXPECT_EQ(decoded.threads[0].node, t.node);
  EXPECT_EQ(decoded.threads[0].accesses, t.accesses);
  EXPECT_EQ(decoded.threads[0].warmup_accesses, t.warmup_accesses);
  EXPECT_EQ(decoded.threads[0].think, t.think);
  EXPECT_DOUBLE_EQ(decoded.threads[0].think_jitter, t.think_jitter);
  EXPECT_EQ(decoded.threads[0].start_offset, t.start_offset);
  ASSERT_EQ(decoded.setup.size(), 3u);
  for (std::size_t i = 0; i < meta.setup.size(); ++i) {
    EXPECT_EQ(decoded.setup[i].asid, meta.setup[i].asid);
    EXPECT_EQ(decoded.setup[i].vpage, meta.setup[i].vpage);
    EXPECT_EQ(decoded.setup[i].node, meta.setup[i].node);
  }
  // Truncations and trailing garbage are loud.
  EXPECT_THROW(decode_meta(encoded.data(), encoded.size() - 1),
               std::runtime_error);
  const std::string padded = encoded + "x";
  EXPECT_THROW(decode_meta(padded.data(), padded.size()), std::runtime_error);
}

/// Deterministic pseudo-random record stream for round-trip tests.
std::vector<Record> make_records(std::uint64_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> records;
  records.reserve(count);
  Addr addr = 0x1000;
  for (std::uint64_t i = 0; i < count; ++i) {
    Record r;
    // Mix small strides, large jumps and backward deltas.
    switch (rng.below(4)) {
      case 0: addr += kLineBytes; break;
      case 1: addr += rng.below(1u << 20); break;
      case 2: addr = addr > (1u << 22) ? addr - (1u << 22) : 0x1000; break;
      case 3: addr = 0x7f00000000ull + rng.below(1u << 24); break;
    }
    r.access.vaddr = addr;
    r.access.type = static_cast<AccessType>(rng.below(3));
    r.rng_draws = static_cast<std::uint32_t>(rng.below(5));
    records.push_back(r);
  }
  return records;
}

TEST(TraceFormat, WriterReaderRoundTripsAcrossBlocks) {
  const std::string path = temp_path("roundtrip");
  const std::vector<Record> t0 = make_records(2000, 1);
  const std::vector<Record> t1 = make_records(371, 2);
  {
    TraceWriter writer(path, /*block_payload_bytes=*/256);
    writer.meta().workload = "rt";
    TraceThreadMeta a;
    a.id = 0;
    a.accesses = t0.size();
    TraceThreadMeta b;
    b.id = 1;
    b.accesses = t1.size();
    const std::uint32_t s0 = writer.add_thread(a);
    const std::uint32_t s1 = writer.add_thread(b);
    // Interleave the streams; per-thread order is what must survive.
    std::size_t i0 = 0, i1 = 0;
    Rng rng(3);
    while (i0 < t0.size() || i1 < t1.size()) {
      if (i1 >= t1.size() || (i0 < t0.size() && rng.chance(0.8))) {
        writer.record(s0, t0[i0].access, t0[i0].rng_draws);
        ++i0;
      } else {
        writer.record(s1, t1[i1].access, t1[i1].rng_draws);
        ++i1;
      }
    }
    EXPECT_EQ(writer.thread_records(s0), t0.size());
    writer.finish();
  }

  auto reader = std::make_shared<TraceReader>(path);
  EXPECT_EQ(reader->meta().workload, "rt");
  ASSERT_EQ(reader->thread_count(), 2u);
  EXPECT_EQ(reader->total_records(), t0.size() + t1.size());
  EXPECT_EQ(reader->thread_records(0), t0.size());
  EXPECT_EQ(reader->thread_records(1), t1.size());
  EXPECT_GT(reader->thread_blocks(0).size(), 10u) << "blocks did not split";

  for (std::uint32_t slot = 0; slot < 2; ++slot) {
    const std::vector<Record>& expected = slot == 0 ? t0 : t1;
    TraceCursor cursor(*reader, slot);
    Record r;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_TRUE(cursor.next(r)) << "stream ended early at " << i;
      ASSERT_EQ(r.access.vaddr, expected[i].access.vaddr) << "record " << i;
      ASSERT_EQ(r.access.type, expected[i].access.type) << "record " << i;
      ASSERT_EQ(r.rng_draws, expected[i].rng_draws) << "record " << i;
    }
    EXPECT_FALSE(cursor.next(r));
  }
  std::remove(path.c_str());
}

TEST(TraceFormat, CursorSeeksToAnyIndex) {
  const std::string path = temp_path("seek");
  const std::vector<Record> expected = make_records(1500, 4);
  {
    TraceWriter writer(path, /*block_payload_bytes=*/128);
    TraceThreadMeta t;
    t.id = 0;
    t.accesses = expected.size();
    const std::uint32_t slot = writer.add_thread(t);
    for (const Record& r : expected) {
      writer.record(slot, r.access, r.rng_draws);
    }
    writer.finish();
  }
  auto reader = std::make_shared<TraceReader>(path);
  TraceCursor cursor(*reader, 0);
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t index = rng.below(expected.size() + 1);
    cursor.seek(index);
    EXPECT_EQ(cursor.position(), index);
    Record r;
    if (index == expected.size()) {
      EXPECT_FALSE(cursor.next(r));
    } else {
      ASSERT_TRUE(cursor.next(r));
      EXPECT_EQ(r.access.vaddr, expected[index].access.vaddr)
          << "seek(" << index << ")";
      EXPECT_EQ(r.rng_draws, expected[index].rng_draws);
    }
  }
  EXPECT_THROW(cursor.seek(expected.size() + 1), std::out_of_range);
  std::remove(path.c_str());
}

TEST(TraceFormat, DetectsCorruption) {
  const std::string path = temp_path("corrupt");
  write_golden(path);
  const std::string pristine = read_file(path);

  const auto rewrite = [&](const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
  };
  const auto with_flipped_byte = [&](std::size_t offset) {
    std::string bytes = pristine;
    bytes[offset] = static_cast<char>(bytes[offset] ^ 0x40);
    rewrite(bytes);
  };

  IndexEntry block0;
  {
    TraceReader probe(path);
    block0 = probe.blocks().at(0);
  }

  // A flipped byte inside a record block's payload: the framing still
  // parses, but loading that block fails its payload CRC — at the block
  // that suffered it, as a loud error, never as garbage records.
  {
    with_flipped_byte(block0.offset + sizeof(BlockHeader));
    TraceReader reader(path);
    std::string payload;
    EXPECT_THROW(reader.load_block(reader.blocks().at(0), payload),
                 std::runtime_error);
    TraceCursor cursor(reader, block0.thread_slot);
    Record r;
    EXPECT_THROW(cursor.next(r), std::runtime_error);
  }

  // A flipped byte in the block header fails the header CRC.
  {
    with_flipped_byte(block0.offset + offsetof(BlockHeader, record_count));
    TraceReader reader(path);
    std::string payload;
    EXPECT_THROW(reader.load_block(reader.blocks().at(0), payload),
                 std::runtime_error);
  }

  // Damage to the footer, the block index, or the file header is caught
  // at open.
  with_flipped_byte(pristine.size() - 6);  // Inside the footer CRC region.
  EXPECT_THROW(TraceReader bad_footer(path), std::runtime_error);
  with_flipped_byte(pristine.size() - sizeof(Footer) - 4);  // Index bytes.
  EXPECT_THROW(TraceReader bad_index(path), std::runtime_error);
  with_flipped_byte(2);  // File header magic.
  EXPECT_THROW(TraceReader bad_header(path), std::runtime_error);

  // A torn capture (writer never reached finish(): no footer) is refused.
  rewrite(pristine.substr(0, pristine.size() - sizeof(Footer)));
  EXPECT_THROW(TraceReader torn(path), std::runtime_error);

  // And the pristine bytes still read fine.
  rewrite(pristine);
  EXPECT_NO_THROW(TraceReader ok(path));
  std::remove(path.c_str());
}

TEST(TraceFormat, VerifyScansEveryBlockWithoutStoppingAtTheFirstBadOne) {
  const std::string path = temp_path("verify");
  write_golden(path);
  const std::string pristine = read_file(path);

  const auto rewrite = [&](const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
  };

  // Pristine: clean bill of health, every record counted.
  const VerifyReport clean = verify_trace(path);
  EXPECT_TRUE(clean.ok());
  EXPECT_TRUE(clean.framing_ok);
  EXPECT_EQ(clean.blocks_total, 3u);  // Thread 0 spans two blocks + one more.
  EXPECT_EQ(clean.blocks_ok, clean.blocks_total);
  EXPECT_EQ(clean.records_ok, 6u);
  EXPECT_TRUE(clean.issues.empty());

  // Rot the payloads of the FIRST TWO blocks: verify must report both
  // (not stop at the first) and still count the intact third block.
  IndexEntry block0, block1;
  {
    TraceReader probe(path);
    block0 = probe.blocks().at(0);
    block1 = probe.blocks().at(1);
  }
  std::string bytes = pristine;
  bytes[block0.offset + sizeof(BlockHeader)] ^= 0x40;
  bytes[block1.offset + sizeof(BlockHeader)] ^= 0x40;
  rewrite(bytes);
  const VerifyReport rotten = verify_trace(path);
  EXPECT_FALSE(rotten.ok());
  EXPECT_TRUE(rotten.framing_ok);  // Framing is intact, payloads are not.
  EXPECT_EQ(rotten.blocks_total, 3u);
  EXPECT_EQ(rotten.blocks_ok, 1u);
  ASSERT_EQ(rotten.issues.size(), 2u);
  EXPECT_EQ(rotten.issues[0].offset, block0.offset);
  EXPECT_EQ(rotten.issues[1].offset, block1.offset);

  // A torn capture (no footer): framing is gone, but the sequential
  // fallback walk still credits the intact leading blocks.
  rewrite(pristine.substr(0, pristine.size() - sizeof(Footer)));
  const VerifyReport torn = verify_trace(path);
  EXPECT_FALSE(torn.ok());
  EXPECT_FALSE(torn.framing_ok);
  EXPECT_GT(torn.blocks_ok, 0u);
  EXPECT_GT(torn.records_ok, 0u);
  EXPECT_FALSE(torn.issues.empty());

  // Only real I/O errors throw; a missing file is one.
  std::remove(path.c_str());
  EXPECT_THROW(verify_trace(path), std::runtime_error);
}

// ----------------------------------------------------- TraceReplayGenerator ----

/// Writes `records` as a single-thread trace and returns a shared reader.
std::shared_ptr<const TraceReader> single_thread_trace(
    const std::string& path, const std::vector<Record>& records,
    std::uint32_t block_payload_bytes) {
  TraceWriter writer(path, block_payload_bytes);
  writer.meta().workload = "replay-test";
  TraceThreadMeta t;
  t.id = 0;
  t.accesses = records.size();
  const std::uint32_t slot = writer.add_thread(t);
  for (const Record& r : records) writer.record(slot, r.access, r.rng_draws);
  writer.finish();
  return std::make_shared<const TraceReader>(path);
}

TEST(TraceReplay, NextBatchIsDrawIdenticalToRepeatedNext) {
  const std::string path = temp_path("batch");
  const std::vector<Record> records = make_records(1024, 6);
  auto reader = single_thread_trace(path, records, 512);

  TraceReplayGenerator serial(reader, 0);
  TraceReplayGenerator batched(reader, 0);
  Rng rng_serial(99);
  Rng rng_batched(99);

  workload::Access batch[17];
  std::size_t produced = 0;
  while (produced < records.size()) {
    const std::size_t want = std::min<std::size_t>(17, records.size() - produced);
    const Tick horizon = batched.next_batch(
        rng_batched, 1000, workload::Span<workload::Access>(batch, want));
    EXPECT_EQ(horizon, kTickNever);
    for (std::size_t i = 0; i < want; ++i) {
      const workload::Access expected = serial.next(rng_serial, 1000);
      ASSERT_EQ(batch[i].vaddr, expected.vaddr) << "access " << produced + i;
      ASSERT_EQ(batch[i].type, expected.type);
    }
    // At every batch boundary the rng streams are in lockstep: both paths
    // burned the same recorded draw counts.
    ASSERT_TRUE(rng_serial == rng_batched) << "rng streams diverged";
    produced += want;
  }
  std::remove(path.c_str());
}

TEST(TraceReplay, SaveStateRestoreStateRewindsExactly) {
  const std::string path = temp_path("rewind");
  const std::vector<Record> records = make_records(600, 7);
  auto reader = single_thread_trace(path, records, 256);

  TraceReplayGenerator gen(reader, 0);
  Rng rng(1);
  workload::Access first_pass[600];
  // Consume 250, snapshot, consume the rest, then rewind and re-consume.
  gen.next_batch(rng, 0, workload::Span<workload::Access>(first_pass, 250));
  std::vector<std::uint64_t> state;
  gen.save_state(state);
  ASSERT_EQ(state.size(), 1u);
  EXPECT_EQ(state[0], 250u);
  const Rng rng_at_snapshot = rng;
  gen.next_batch(rng, 0,
                 workload::Span<workload::Access>(first_pass + 250, 350));

  const std::uint64_t* cursor = state.data();
  gen.restore_state(cursor);
  EXPECT_EQ(cursor, state.data() + 1);
  Rng rng_replay = rng_at_snapshot;
  workload::Access second_pass[350];
  gen.next_batch(rng_replay, 0,
                 workload::Span<workload::Access>(second_pass, 350));
  for (std::size_t i = 0; i < 350; ++i) {
    ASSERT_EQ(second_pass[i].vaddr, first_pass[250 + i].vaddr) << i;
    ASSERT_EQ(second_pass[i].type, first_pass[250 + i].type) << i;
  }
  EXPECT_TRUE(rng_replay == rng);

  // Running past the end of the trace is a loud logic error.
  EXPECT_THROW(gen.next(rng, 0), std::logic_error);
  std::remove(path.c_str());
}

TEST(TraceReplay, SteadyStateStreamingIsAllocationFree) {
  const std::string path = temp_path("alloc");
  const std::vector<Record> records = make_records(4096, 8);
  auto reader = single_thread_trace(path, records, 1024);  // Many blocks.

  TraceReplayGenerator gen(reader, 0);
  Rng rng(2);
  constexpr std::size_t kRing = 64;
  workload::Access ring[kRing];
  const workload::Span<workload::Access> span(ring, kRing);
  std::vector<std::uint64_t> state;
  state.reserve(4);

  // Warm-up: one full pass (every block buffer reaches its high-water
  // capacity), then rewind — the full issue-ring cycle.
  for (std::size_t done = 0; done < records.size(); done += kRing) {
    gen.next_batch(rng, 0, span);
  }
  const std::uint64_t* cursor0 = nullptr;
  state.clear();
  state.push_back(0);
  cursor0 = state.data();
  gen.restore_state(cursor0);

  const std::uint64_t news_before = g_news.load(std::memory_order_relaxed);
  for (int round = 0; round < 3; ++round) {
    for (std::size_t done = 0; done < records.size(); done += kRing) {
      state.clear();
      gen.save_state(state);
      gen.next_batch(rng, 0, span);
      const std::uint64_t* cursor = state.data();
      gen.restore_state(cursor);
      gen.next_batch(rng, 0, span);
    }
    state.clear();
    state.push_back(0);
    const std::uint64_t* rewind = state.data();
    gen.restore_state(rewind);
  }
  const std::uint64_t news_after = g_news.load(std::memory_order_relaxed);
  EXPECT_EQ(news_after - news_before, 0u)
      << "trace replay allocated on the steady-state issue-ring path";
  std::remove(path.c_str());
}

}  // namespace
}  // namespace allarm::trace
