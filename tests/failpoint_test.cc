// Tests for the deterministic fault-injection layer: the failpoint spec
// grammar, hit-window arithmetic, indexed matching, env configuration,
// and the five fileio sites' action semantics (err/short/torn/eintr/
// delay) including the enriched path + context + strerror error strings.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/failpoint.hh"
#include "common/fileio.hh"

namespace allarm {
namespace {

std::string temp_path(const std::string& stem) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + std::string(info->test_suite_name()) + "_" +
         info->name() + "_" + stem;
}

/// Every failpoint test leaves the registry clean, even on failure.
class Failpoint : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::clear(); }
};

// ---------------------------------------------------------------- grammar ----

TEST_F(Failpoint, InactiveByDefaultAndAfterClear) {
  EXPECT_FALSE(failpoint::active());
  EXPECT_FALSE(failpoint::check("anything"));
  failpoint::configure("a=err@1");
  EXPECT_TRUE(failpoint::active());
  failpoint::clear();
  EXPECT_FALSE(failpoint::active());
  EXPECT_FALSE(failpoint::check("a"));
  EXPECT_EQ(failpoint::describe(), "");
}

TEST_F(Failpoint, ParsesEveryActionWithArgsAndDefaults) {
  failpoint::configure(
      "a=err@1;b=short.7@1;c=torn.3@1;d=eintr@1;e=delay.2@1;f=eintr.5@1");
  EXPECT_EQ(failpoint::check("a").action, failpoint::Action::kError);
  const auto b = failpoint::check("b");
  EXPECT_EQ(b.action, failpoint::Action::kShortIo);
  EXPECT_EQ(b.arg, 7u);
  const auto c = failpoint::check("c");
  EXPECT_EQ(c.action, failpoint::Action::kTornWrite);
  EXPECT_EQ(c.arg, 3u);
  const auto d = failpoint::check("d");
  EXPECT_EQ(d.action, failpoint::Action::kEintrStorm);
  EXPECT_EQ(d.arg, 16u);  // Default storm length.
  const auto e = failpoint::check("e");
  EXPECT_EQ(e.action, failpoint::Action::kDelay);
  EXPECT_EQ(e.arg, 2u);
  EXPECT_EQ(failpoint::check("f").arg, 5u);
}

TEST_F(Failpoint, RejectsMalformedSpecs) {
  for (const char* bad :
       {"noequals", "a=@1", "a=err", "a=err@", "a=err@x", "a=bogus@1",
        "a=err.@1", "a=err@1:", "a=err@1:x", "=err@1"}) {
    EXPECT_THROW(failpoint::configure(bad), std::invalid_argument)
        << "accepted: " << bad;
    EXPECT_FALSE(failpoint::active()) << "partially installed: " << bad;
  }
}

TEST_F(Failpoint, DescribeReturnsTheInstalledSpec) {
  const std::string spec = "journal.fsync=err@3;fileio.pwrite=short@11:2";
  failpoint::configure(spec);
  EXPECT_EQ(failpoint::describe(), spec);
}

// ------------------------------------------------------------- hit windows ----

TEST_F(Failpoint, FiresOnlyInsideItsWindow) {
  failpoint::configure("p=err@3:2");  // Polls 3 and 4.
  EXPECT_FALSE(failpoint::check("p"));  // 1
  EXPECT_FALSE(failpoint::check("p"));  // 2
  EXPECT_TRUE(failpoint::check("p"));   // 3
  EXPECT_TRUE(failpoint::check("p"));   // 4
  EXPECT_FALSE(failpoint::check("p"));  // 5
  EXPECT_EQ(failpoint::hits("p"), 5u);
}

TEST_F(Failpoint, CountZeroFiresForever) {
  failpoint::configure("p=err@2:0");
  EXPECT_FALSE(failpoint::check("p"));
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(failpoint::check("p"));
}

TEST_F(Failpoint, CountersAreIndependentPerName) {
  failpoint::configure("p=err@2;q=err@1");
  EXPECT_TRUE(failpoint::check("q"));
  EXPECT_FALSE(failpoint::check("p"));  // q's poll did not advance p.
  EXPECT_TRUE(failpoint::check("p"));
  EXPECT_EQ(failpoint::hits("p"), 2u);
  EXPECT_EQ(failpoint::hits("q"), 1u);
  EXPECT_EQ(failpoint::hits("unconfigured"), 0u);
}

TEST_F(Failpoint, ReconfigureResetsCounters) {
  failpoint::configure("p=err@1");
  EXPECT_TRUE(failpoint::check("p"));
  failpoint::configure("p=err@1");
  EXPECT_TRUE(failpoint::check("p"));  // Counter restarted at 0.
}

TEST_F(Failpoint, IndexedMatchIgnoresArrivalOrder) {
  failpoint::configure("cell=err@5");
  // Rules match the caller-supplied ordinal directly (`cell.job=err@5`
  // means grid job index 5), not the arrival counter.
  EXPECT_FALSE(failpoint::check_indexed("cell", 4));
  EXPECT_TRUE(failpoint::check_indexed("cell", 5));
  EXPECT_FALSE(failpoint::check_indexed("cell", 6));
  // Same ordinal fires again regardless of how many polls happened.
  EXPECT_TRUE(failpoint::check_indexed("cell", 5));
  EXPECT_EQ(failpoint::hits("cell"), 4u);  // Every poll observed.
}

TEST_F(Failpoint, ScopedInstallsAndClears) {
  {
    failpoint::Scoped guard("p=err@1");
    EXPECT_TRUE(failpoint::active());
    EXPECT_TRUE(failpoint::check("p"));
  }
  EXPECT_FALSE(failpoint::active());
}

TEST_F(Failpoint, ConfiguresFromEnvironment) {
  ASSERT_EQ(::setenv("ALLARM_FAILPOINTS", "envpoint=err@1", 1), 0);
  EXPECT_EQ(failpoint::configure_from_env(), "envpoint=err@1");
  EXPECT_TRUE(failpoint::check("envpoint"));
  ::unsetenv("ALLARM_FAILPOINTS");
  EXPECT_EQ(failpoint::configure_from_env(), "");
  EXPECT_TRUE(failpoint::active());  // Unset env leaves the spec alone.
}

// ------------------------------------------------------ fileio integration ----

TEST_F(Failpoint, FileioErrorsCarryPathContextAndInjectionMarker) {
  const std::string path = temp_path("file");
  write_file_durable(path, std::string(64, 'x'));

  failpoint::Scoped guard("fileio.pread=err@1");
  File file(path, File::Mode::kRead);
  char buffer[16];
  try {
    file.read_at(0, buffer, sizeof(buffer));
    FAIL() << "injected pread error did not throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("pread of 16 bytes at offset 0"), std::string::npos)
        << what;
    EXPECT_NE(what.find("injected fault (failpoint fileio.pread)"),
              std::string::npos)
        << what;
  }
}

TEST_F(Failpoint, RealErrorsCarryStrerror) {
  // A genuine (non-injected) failure: opening a missing file must name the
  // path and the kernel's reason.
  const std::string path = temp_path("missing");
  try {
    File file(path, File::Mode::kRead);
    FAIL() << "opening a missing file did not throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("No such file or directory"), std::string::npos)
        << what;
  }
}

TEST_F(Failpoint, ShortReadDeliversFewerBytes) {
  const std::string path = temp_path("file");
  write_file_durable(path, std::string(64, 'x'));
  File file(path, File::Mode::kRead);
  char buffer[32];

  {
    failpoint::Scoped guard("fileio.pread=short.5@1");
    EXPECT_EQ(file.read_at_most(0, buffer, sizeof(buffer)), 5u);
  }
  {
    failpoint::Scoped guard("fileio.pread=short@1");  // Default: half.
    EXPECT_EQ(file.read_at_most(0, buffer, sizeof(buffer)), 16u);
  }
  // read_at turns the short count into its structured short-read error.
  failpoint::Scoped guard("fileio.pread=short.5@1");
  try {
    file.read_at(0, buffer, sizeof(buffer));
    FAIL() << "short read did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("wanted 32 bytes at offset 0, got 5"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(Failpoint, TornWriteLeavesARealPrefixThenFails) {
  const std::string path = temp_path("file");
  {
    File file(path, File::Mode::kCreate);
    const std::string payload(32, 'y');
    failpoint::Scoped guard("fileio.pwrite=torn.10@1");
    try {
      file.write_at(0, payload.data(), payload.size());
      FAIL() << "torn write did not throw";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("wrote only 10 bytes"),
                std::string::npos)
          << e.what();
    }
    file.close();
  }
  // The prefix is really on disk — exactly what a power cut leaves.
  EXPECT_EQ(read_file(path), std::string(10, 'y'));
}

TEST_F(Failpoint, EintrStormIsAbsorbedByTheRetryLoop) {
  const std::string path = temp_path("file");
  const std::string payload = "interrupted but complete";
  {
    failpoint::Scoped guard("fileio.pwrite=eintr.40@1;fileio.pread=eintr@1");
    File file(path, File::Mode::kCreate);
    file.write_at(0, payload.data(), payload.size());
    std::string got(payload.size(), '\0');
    file.read_at(0, got.data(), got.size());
    EXPECT_EQ(got, payload);
  }
  EXPECT_EQ(read_file(path), payload);
}

TEST_F(Failpoint, SyncAndTruncateAndOpenSitesFire) {
  const std::string path = temp_path("file");
  write_file_durable(path, "data");
  {
    failpoint::Scoped guard("fileio.fsync=err@1");
    File file(path, File::Mode::kReadWrite);
    EXPECT_THROW(file.sync(), std::runtime_error);
  }
  {
    failpoint::Scoped guard("fileio.ftruncate=err@1");
    File file(path, File::Mode::kReadWrite);
    EXPECT_THROW(file.truncate(0), std::runtime_error);
  }
  failpoint::Scoped guard("fileio.open=err@2");
  File ok(path, File::Mode::kRead);  // Poll 1: passes.
  EXPECT_THROW(File(path, File::Mode::kRead), std::runtime_error);
}

}  // namespace
}  // namespace allarm
