// Tests for the experiment harness and the remaining protocol edges:
// queued writeback processing, writeback-buffer probe supply, message
// naming, and the harness helpers the benches rely on.
#include <gtest/gtest.h>

#include <cstdlib>

#include "coherence/messages.hh"
#include "core/experiment.hh"
#include "test_util.hh"
#include "workload/profiles.hh"

namespace allarm {
namespace {

using test::load;
using test::make_scripted;
using test::priv;
using test::run_scripted;
using test::small_config;
using test::store;

TEST(Messages, NamesAndSizes) {
  SystemConfig config;
  using coherence::MsgKind;
  EXPECT_EQ(coherence::to_string(MsgKind::kGetS), "GetS");
  EXPECT_EQ(coherence::to_string(MsgKind::kLocalProbe), "LocalProbe");
  EXPECT_TRUE(coherence::carries_data(MsgKind::kData));
  EXPECT_TRUE(coherence::carries_data(MsgKind::kPutM));
  EXPECT_FALSE(coherence::carries_data(MsgKind::kPutE));
  EXPECT_EQ(coherence::size_of(MsgKind::kGetS, config), 8u);
  EXPECT_EQ(coherence::size_of(MsgKind::kAckData, config), 72u);
  EXPECT_EQ(coherence::size_of(MsgKind::kComplete, config), 8u);
}

TEST(Experiment, RunPairIsSelfConsistent) {
  SystemConfig config = small_config();
  std::vector<workload::Access> script;
  for (std::uint32_t i = 0; i < 64; ++i) script.push_back(load(priv(0, i)));
  const auto spec = make_scripted({{0, script}});
  const auto pair = core::run_pair(config, spec, 11);
  EXPECT_GT(pair.baseline.runtime, 0u);
  EXPECT_GT(pair.allarm.runtime, 0u);
  EXPECT_GT(pair.speedup(), 0.0);
  // Purely local workload: ALLARM allocates nothing.
  EXPECT_DOUBLE_EQ(pair.normalized("pf.inserts"), 0.0);
}

TEST(Experiment, BenchAccessesReadsEnvironment) {
  unsetenv("ALLARM_BENCH_ACCESSES");
  EXPECT_EQ(core::bench_accesses(1234), 1234u);
  setenv("ALLARM_BENCH_ACCESSES", "777", 1);
  EXPECT_EQ(core::bench_accesses(1234), 777u);
  setenv("ALLARM_BENCH_ACCESSES", "garbage", 1);
  EXPECT_EQ(core::bench_accesses(1234), 1234u);
  unsetenv("ALLARM_BENCH_ACCESSES");
}

TEST(Protocol, WritebackBufferSuppliesDataToProbe) {
  // Core 0 dirties a big region so early lines sit in the writeback buffer
  // with PutM in flight; core 1 immediately reads one of them.  The probe
  // must be answered from the buffer (dirty data), never from stale DRAM,
  // and the racing PutM must be dropped as stale without corruption.
  std::vector<workload::Access> writer;
  for (std::uint32_t i = 0; i < 48; ++i) writer.push_back(store(priv(27, i)));
  std::vector<workload::Access> reader{load(priv(27, 0))};
  auto spec = make_scripted({
      {0, writer, 0, 0},
      {1, reader, ticks_from_ns(1200.0), 0},
  });
  auto ran = run_scripted(small_config(), DirectoryMode::kBaseline, spec, 3);
  const LineAddr line = line_of(*ran.system->os().translate(0, priv(27, 0)));
  // The reader holds a copy (Shared or better) - data flowed somewhere.
  EXPECT_TRUE(ran.system->cache(1).hierarchy().locate(line).present());
  EXPECT_EQ(ran.result.stats.get("sanity.wbb_collisions"), 0.0);
  EXPECT_EQ(ran.result.stats.get("sanity.upgrade_without_line"), 0.0);
}

TEST(Protocol, QueuedOperationsDrainInOrder) {
  // Many cores request the same line back-to-back; the per-line queue at
  // the home directory must drain them all (the run would hang otherwise)
  // and each request gets exactly one grant.
  std::vector<test::ScriptThread> threads;
  for (NodeId n = 0; n < 8; ++n) {
    threads.push_back({n,
                       {load(priv(28, 0)), store(priv(28, 0)),
                        load(priv(28, 0))},
                       ticks_from_ns(0.5) * n,
                       0});
  }
  auto ran = run_scripted(small_config(), DirectoryMode::kBaseline,
                          make_scripted(std::move(threads)), 3);
  EXPECT_GT(ran.result.stats.get("dir.queued_ops"), 0.0);
  EXPECT_NEAR(ran.result.stats.get("cache.misses"),
              ran.result.stats.get("dir.requests"), 1.0);
}

TEST(Protocol, DirectoryQuiescentAfterRun) {
  auto ran = run_scripted(
      small_config(), DirectoryMode::kAllarm,
      make_scripted({{0, {load(priv(0, 0)), store(priv(0, 1))}}}), 3);
  for (NodeId n = 0; n < 16; ++n) {
    EXPECT_TRUE(ran.system->directory(n).quiescent());
    EXPECT_FALSE(ran.system->cache(n).request_outstanding());
    EXPECT_EQ(ran.system->cache(n).writebacks_in_flight(), 0u);
  }
  EXPECT_TRUE(ran.system->quiescent());
}

TEST(Protocol, FabricRangeHelper) {
  SystemConfig config = small_config();
  core::System system(config);
  // Empty registers: active everywhere; configured: only inside.
  EXPECT_TRUE(system.allarm_ranges().active(0x1000));
  system.allarm_ranges().add_range(0x2000, 0x1000);
  EXPECT_FALSE(system.allarm_ranges().active(0x1000));
  EXPECT_TRUE(system.allarm_ranges().active(0x2800));
}

TEST(Protocol, RuntimeScalesWithAccessCount) {
  SystemConfig config = small_config();
  auto make = [&](std::uint32_t n) {
    std::vector<workload::Access> script;
    for (std::uint32_t i = 0; i < n; ++i) {
      script.push_back(load(priv(0, i % 256)));
    }
    return make_scripted({{0, script}});
  };
  const auto small_run =
      core::run_single(config, DirectoryMode::kBaseline, make(100), 3);
  const auto big_run =
      core::run_single(config, DirectoryMode::kBaseline, make(400), 3);
  EXPECT_GT(big_run.runtime, 2 * small_run.runtime);
}

}  // namespace
}  // namespace allarm
