// Unit and integration tests for trace-file workloads: the legacy text
// format (now streamed through the binary .altr subsystem) and
// capture/replay round trips through core::System.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/experiment.hh"
#include "trace/reader.hh"
#include "workload/profiles.hh"
#include "workload/trace.hh"

namespace allarm::workload {
namespace {

TEST(TraceParse, ParsesWellFormedLines) {
  std::istringstream in(
      "# a comment\n"
      "0 L 40000000\n"
      "1 S 40000040\n"
      "\n"
      "0 I deadbeef  # trailing comment\n");
  const auto records = parse_trace(in);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].thread, 0u);
  EXPECT_EQ(records[0].access.type, AccessType::kLoad);
  EXPECT_EQ(records[0].access.vaddr, 0x40000000u);
  EXPECT_EQ(records[1].access.type, AccessType::kStore);
  EXPECT_EQ(records[2].access.type, AccessType::kInstFetch);
  EXPECT_EQ(records[2].access.vaddr, 0xdeadbeefu);
}

TEST(TraceParse, AcceptsLowercaseTypes) {
  std::istringstream in("0 l 10\n0 s 20\n0 i 30\n");
  EXPECT_EQ(parse_trace(in).size(), 3u);
}

TEST(TraceParse, RejectsMalformedLines) {
  std::istringstream bad_type("0 X 40000000\n");
  EXPECT_THROW(parse_trace(bad_type), std::runtime_error);
  std::istringstream missing("0 L\n");
  EXPECT_THROW(parse_trace(missing), std::runtime_error);
  std::istringstream bad_addr("0 L zzz\n");
  EXPECT_THROW(parse_trace(bad_addr), std::runtime_error);
}

TEST(TraceParse, RoundTripsThroughWriter) {
  std::istringstream in("0 L 1000\n3 S 2fc0\n0 I 3000\n");
  const auto records = parse_trace(in);
  std::ostringstream out;
  write_trace(out, records);
  std::istringstream again(out.str());
  const auto reparsed = parse_trace(again);
  ASSERT_EQ(reparsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(reparsed[i].thread, records[i].thread);
    EXPECT_EQ(reparsed[i].access.vaddr, records[i].access.vaddr);
    EXPECT_EQ(reparsed[i].access.type, records[i].access.type);
  }
}

TEST(TraceWorkload, BuildsOneThreadPerId) {
  std::istringstream in(
      "0 L 40000000\n"
      "2 L 80000000\n"
      "0 S 40000040\n");
  SystemConfig config;
  const auto spec = make_trace_workload(parse_trace(in), config);
  ASSERT_EQ(spec.threads.size(), 2u);
  EXPECT_EQ(spec.threads[0].accesses, 2u);
  EXPECT_EQ(spec.threads[1].accesses, 1u);
  EXPECT_EQ(spec.threads[1].node, 2);
}

TEST(TraceWorkload, RejectsEmptyTrace) {
  SystemConfig config;
  EXPECT_THROW(make_trace_workload({}, config), std::invalid_argument);
}

TEST(TraceWorkload, WrapsThreadIdsOntoCores) {
  std::istringstream in("20 L 1000\n");
  SystemConfig config;
  const auto spec = make_trace_workload(parse_trace(in), config);
  EXPECT_EQ(spec.threads[0].node, 20 % 16);
}

TEST(TraceWorkload, RunsEndToEndUnderBothModes) {
  // A private stream per thread plus one shared line they fight over.
  std::ostringstream trace;
  for (int t = 0; t < 4; ++t) {
    for (int i = 0; i < 50; ++i) {
      trace << t << " " << (i % 3 == 0 ? 'S' : 'L') << " "
            << std::hex << (0x40000000ull * (t + 1) + i * 64) << std::dec
            << "\n";
      trace << t << " S " << std::hex << 0x7000000000ull << std::dec << "\n";
    }
  }
  SystemConfig config;
  std::istringstream in(trace.str());
  const auto spec = make_trace_workload(parse_trace(in), config);
  for (auto mode : {DirectoryMode::kBaseline, DirectoryMode::kAllarm}) {
    const auto r = core::run_single(config, mode, spec, 3);
    EXPECT_GT(r.runtime, 0u);
    EXPECT_EQ(r.stats.get("sanity.upgrade_without_line"), 0.0);
    EXPECT_EQ(r.stats.get("sanity.wbb_collisions"), 0.0);
  }
}

TEST(TraceWorkload, LoadStreamsWithoutMaterializingRecords) {
  // load_trace_workload must behave exactly like parse + make (it shares
  // the same conversion), while reading the file in streaming passes.
  const std::string path = testing::TempDir() + "/allarm_trace_load.txt";
  std::ostringstream text;
  for (int t = 3; t >= 0; --t) {  // Ids out of order: order must not matter.
    for (int i = 0; i < 40; ++i) {
      text << t << " " << (i % 4 == 0 ? 'S' : 'L') << " " << std::hex
           << (0x50000000ull * (t + 1) + i * 64) << std::dec << "\n";
    }
  }
  {
    std::ofstream out(path);
    out << text.str();
  }
  SystemConfig config;
  const auto streamed = workload::load_trace_workload(path, config);
  std::istringstream in(text.str());
  const auto materialized =
      workload::make_trace_workload(workload::parse_trace(in), config);

  ASSERT_EQ(streamed.threads.size(), materialized.threads.size());
  for (std::size_t i = 0; i < streamed.threads.size(); ++i) {
    EXPECT_EQ(streamed.threads[i].id, materialized.threads[i].id);
    EXPECT_EQ(streamed.threads[i].node, materialized.threads[i].node);
    EXPECT_EQ(streamed.threads[i].accesses, materialized.threads[i].accesses);
  }
  const auto a = core::run_single(config, DirectoryMode::kBaseline, streamed, 5);
  const auto b =
      core::run_single(config, DirectoryMode::kBaseline, materialized, 5);
  EXPECT_EQ(a.runtime, b.runtime);
  EXPECT_EQ(a.stats.values(), b.stats.values());
  std::remove(path.c_str());
}

// ------------------------------------------------------- capture / replay ----

namespace {

/// A small fast profile covering the interesting generator shapes (Mix,
/// Phased warm-up, CreepingShared time dependence) without the stock
/// profiles' multi-second warm-ups.
workload::WorkloadSpec tiny_profile(const SystemConfig& config,
                                    double think_jitter) {
  workload::ProfileParams p;
  p.name = "tiny";
  p.hot_bytes = 16 * 1024;
  p.cold_bytes = 32 * 1024;
  p.kernel_bytes = 128 * 1024;
  p.kernel_advance_ns = 40.0;
  p.shared_bytes = 64 * 1024;
  p.think_jitter = think_jitter;
  return workload::make_from_params(p, config, /*accesses_per_thread=*/250,
                                    /*num_threads=*/4);
}

std::string capture_path(const char* name) {
  return testing::TempDir() + "/allarm_capture_" + name + ".altr";
}

void expect_identical(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.runtime, b.runtime);
  EXPECT_EQ(a.thread_finish, b.thread_finish);
  EXPECT_EQ(a.stats.values(), b.stats.values());
}

}  // namespace

TEST(TraceCapture, CaptureIsInvisibleAndReplayIsByteIdentical) {
  SystemConfig config;
  core::RunRequest direct;
  direct.config = config;
  direct.spec = tiny_profile(config, /*think_jitter=*/0.3);
  direct.seed = 11;

  core::RunRequest capturing = direct;
  capturing.capture_trace = capture_path("jitter");

  const core::RunResult a = core::run_request(direct);
  const core::RunResult b = core::run_request(capturing);
  expect_identical(a, b);  // Capture must not perturb the run.

  core::RunRequest replaying = direct;
  replaying.replay_trace = capturing.capture_trace;
  const core::RunResult c = core::run_request(replaying);
  expect_identical(a, c);  // Replay reproduces it byte for byte.

  // The trace records exactly the executed accesses.
  const trace::TraceReader reader(capturing.capture_trace);
  std::uint64_t expected_records = 0;
  for (const auto& ts : direct.spec.threads) {
    expected_records += ts.accesses + ts.warmup_accesses;
  }
  EXPECT_EQ(reader.total_records(), expected_records);
  EXPECT_EQ(reader.meta().workload, "tiny");
  EXPECT_GT(reader.meta().setup.size(), 0u);
  std::remove(capturing.capture_trace.c_str());
}

TEST(TraceCapture, JitterFreeReplayGoesThroughTheIssueRing) {
  // think_jitter = 0: the replay run issues through the batched ring
  // (capture itself is forced serial), and must still reproduce exactly.
  SystemConfig config;
  core::RunRequest direct;
  direct.config = config;
  direct.spec = tiny_profile(config, /*think_jitter=*/0.0);
  direct.seed = 13;

  core::RunRequest capturing = direct;
  capturing.capture_trace = capture_path("ring");
  const core::RunResult a = core::run_request(direct);
  const core::RunResult b = core::run_request(capturing);
  expect_identical(a, b);

  core::RunRequest replaying = direct;
  replaying.replay_trace = capturing.capture_trace;
  expect_identical(a, core::run_request(replaying));
  std::remove(capturing.capture_trace.c_str());
}

TEST(TraceCapture, ReplayReproducesAllarmAndInterleavePolicy) {
  SystemConfig config;
  core::RunRequest direct;
  direct.config = config;
  direct.mode = DirectoryMode::kAllarm;
  direct.policy = numa::AllocPolicy::kInterleave;
  direct.spec = tiny_profile(config, /*think_jitter=*/0.3);
  direct.seed = 17;

  core::RunRequest capturing = direct;
  capturing.capture_trace = capture_path("allarm");
  const core::RunResult a = core::run_request(capturing);

  core::RunRequest replaying = direct;
  replaying.replay_trace = capturing.capture_trace;
  expect_identical(a, core::run_request(replaying));
  std::remove(capturing.capture_trace.c_str());
}

TEST(TraceWorkload, AllarmStillSkipsLocalAllocations) {
  std::ostringstream trace;
  for (int i = 0; i < 100; ++i) {
    trace << "0 L " << std::hex << (0x40000000ull + i * 64) << std::dec
          << "\n";
  }
  SystemConfig config;
  std::istringstream in(trace.str());
  const auto spec = make_trace_workload(parse_trace(in), config);
  const auto r = core::run_single(config, DirectoryMode::kAllarm, spec, 3);
  EXPECT_EQ(r.stats.get("pf.inserts"), 0.0);
  EXPECT_EQ(r.stats.get("dir.local_no_alloc"), 100.0);
}

}  // namespace
}  // namespace allarm::workload
