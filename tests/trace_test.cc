// Unit and integration tests for trace-file workloads.
#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hh"
#include "workload/trace.hh"

namespace allarm::workload {
namespace {

TEST(TraceParse, ParsesWellFormedLines) {
  std::istringstream in(
      "# a comment\n"
      "0 L 40000000\n"
      "1 S 40000040\n"
      "\n"
      "0 I deadbeef  # trailing comment\n");
  const auto records = parse_trace(in);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].thread, 0u);
  EXPECT_EQ(records[0].access.type, AccessType::kLoad);
  EXPECT_EQ(records[0].access.vaddr, 0x40000000u);
  EXPECT_EQ(records[1].access.type, AccessType::kStore);
  EXPECT_EQ(records[2].access.type, AccessType::kInstFetch);
  EXPECT_EQ(records[2].access.vaddr, 0xdeadbeefu);
}

TEST(TraceParse, AcceptsLowercaseTypes) {
  std::istringstream in("0 l 10\n0 s 20\n0 i 30\n");
  EXPECT_EQ(parse_trace(in).size(), 3u);
}

TEST(TraceParse, RejectsMalformedLines) {
  std::istringstream bad_type("0 X 40000000\n");
  EXPECT_THROW(parse_trace(bad_type), std::runtime_error);
  std::istringstream missing("0 L\n");
  EXPECT_THROW(parse_trace(missing), std::runtime_error);
  std::istringstream bad_addr("0 L zzz\n");
  EXPECT_THROW(parse_trace(bad_addr), std::runtime_error);
}

TEST(TraceParse, RoundTripsThroughWriter) {
  std::istringstream in("0 L 1000\n3 S 2fc0\n0 I 3000\n");
  const auto records = parse_trace(in);
  std::ostringstream out;
  write_trace(out, records);
  std::istringstream again(out.str());
  const auto reparsed = parse_trace(again);
  ASSERT_EQ(reparsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(reparsed[i].thread, records[i].thread);
    EXPECT_EQ(reparsed[i].access.vaddr, records[i].access.vaddr);
    EXPECT_EQ(reparsed[i].access.type, records[i].access.type);
  }
}

TEST(TraceWorkload, BuildsOneThreadPerId) {
  std::istringstream in(
      "0 L 40000000\n"
      "2 L 80000000\n"
      "0 S 40000040\n");
  SystemConfig config;
  const auto spec = make_trace_workload(parse_trace(in), config);
  ASSERT_EQ(spec.threads.size(), 2u);
  EXPECT_EQ(spec.threads[0].accesses, 2u);
  EXPECT_EQ(spec.threads[1].accesses, 1u);
  EXPECT_EQ(spec.threads[1].node, 2);
}

TEST(TraceWorkload, RejectsEmptyTrace) {
  SystemConfig config;
  EXPECT_THROW(make_trace_workload({}, config), std::invalid_argument);
}

TEST(TraceWorkload, WrapsThreadIdsOntoCores) {
  std::istringstream in("20 L 1000\n");
  SystemConfig config;
  const auto spec = make_trace_workload(parse_trace(in), config);
  EXPECT_EQ(spec.threads[0].node, 20 % 16);
}

TEST(TraceWorkload, RunsEndToEndUnderBothModes) {
  // A private stream per thread plus one shared line they fight over.
  std::ostringstream trace;
  for (int t = 0; t < 4; ++t) {
    for (int i = 0; i < 50; ++i) {
      trace << t << " " << (i % 3 == 0 ? 'S' : 'L') << " "
            << std::hex << (0x40000000ull * (t + 1) + i * 64) << std::dec
            << "\n";
      trace << t << " S " << std::hex << 0x7000000000ull << std::dec << "\n";
    }
  }
  SystemConfig config;
  std::istringstream in(trace.str());
  const auto spec = make_trace_workload(parse_trace(in), config);
  for (auto mode : {DirectoryMode::kBaseline, DirectoryMode::kAllarm}) {
    const auto r = core::run_single(config, mode, spec, 3);
    EXPECT_GT(r.runtime, 0u);
    EXPECT_EQ(r.stats.get("sanity.upgrade_without_line"), 0.0);
    EXPECT_EQ(r.stats.get("sanity.wbb_collisions"), 0.0);
  }
}

TEST(TraceWorkload, AllarmStillSkipsLocalAllocations) {
  std::ostringstream trace;
  for (int i = 0; i < 100; ++i) {
    trace << "0 L " << std::hex << (0x40000000ull + i * 64) << std::dec
          << "\n";
  }
  SystemConfig config;
  std::istringstream in(trace.str());
  const auto spec = make_trace_workload(parse_trace(in), config);
  const auto r = core::run_single(config, DirectoryMode::kAllarm, spec, 3);
  EXPECT_EQ(r.stats.get("pf.inserts"), 0.0);
  EXPECT_EQ(r.stats.get("dir.local_no_alloc"), 100.0);
}

}  // namespace
}  // namespace allarm::workload
