// Tests for the region-granularity directory (DirectoryMode::kRegion):
// geometry and tracker units, the private -> shared collapse and the
// eviction recollection protocol flows on a full System, the degenerate
// region-size == line-size byte-equivalence oracle against the baseline
// sweep reports, and allocation-freedom of the FlatMap-backed region table
// under the counting-new harness (kernel_alloc_test pattern).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "region/region.hh"
#include "runner/report.hh"
#include "runner/sweep.hh"
#include "test_util.hh"
#include "workload/profiles.hh"

namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

// AddressSanitizer owns the global allocator; forwarding counting wrappers
// to malloc/free trips its alloc-dealloc-mismatch checker.  Under ASan the
// counters stay at zero (the zero-new assertions become vacuous) and the
// suite's value is the sanitizer's own checking of the table recycling.
#if defined(__SANITIZE_ADDRESS__)
#define ALLARM_COUNTING_NEW 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ALLARM_COUNTING_NEW 0
#else
#define ALLARM_COUNTING_NEW 1
#endif
#else
#define ALLARM_COUNTING_NEW 1
#endif

#if ALLARM_COUNTING_NEW
void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // ALLARM_COUNTING_NEW

namespace allarm {
namespace {

using test::load;
using test::priv;
using test::store;

// -------------------------------------------------------- geometry units ----

TEST(RegionGeometry, MapsLinesToRegionsAndSlots) {
  const region::RegionGeometry g(1024);  // 16 lines per region.
  EXPECT_EQ(g.lines_per_region, 16u);
  EXPECT_EQ(g.region_of(0), 0u);
  EXPECT_EQ(g.region_of(15), 0u);
  EXPECT_EQ(g.region_of(16), 1u);
  EXPECT_EQ(g.slot_of(17), 1u);
  EXPECT_EQ(g.base_line(3), 48u);
}

TEST(RegionGeometry, RejectsInvalidSizes) {
  EXPECT_THROW(region::RegionGeometry(96), std::invalid_argument);
  EXPECT_THROW(region::RegionGeometry(0), std::invalid_argument);
  EXPECT_THROW(region::RegionGeometry(32), std::invalid_argument);
}

TEST(RegionGeometry, OneLinePerRegionDisablesTheDirectory) {
  const region::RegionDirectory rd(kLineBytes);
  EXPECT_FALSE(rd.enabled());
  const region::RegionDirectory rd4k(4096);
  EXPECT_TRUE(rd4k.enabled());
  EXPECT_EQ(rd4k.geometry().lines_per_region, 64u);
}

// --------------------------------------------------------- tracker units ----

TEST(RTracker, ClassifiesPrivateThenShared) {
  region::RTracker tracker;
  region::RTracker::Info& info = tracker.touch(5, 1);
  EXPECT_EQ(info.owner, 1u);
  EXPECT_FALSE(info.shared);
  EXPECT_EQ(tracker.shared_count(), 0u);

  tracker.touch(5, 1);  // Same node: still private.
  EXPECT_FALSE(info.shared);

  tracker.touch(5, 2);  // A second node poisons the region.
  EXPECT_TRUE(info.shared);
  EXPECT_EQ(tracker.shared_count(), 1u);
  EXPECT_EQ(tracker.tracked(), 1u);

  tracker.erase(5);
  EXPECT_EQ(tracker.shared_count(), 0u);
  EXPECT_EQ(tracker.tracked(), 0u);
}

TEST(RTracker, ResetPrivateReclassifies) {
  region::RTracker tracker;
  tracker.touch(9, 1);
  tracker.touch(9, 2);
  EXPECT_EQ(tracker.shared_count(), 1u);
  tracker.reset_private(9, 2);
  EXPECT_EQ(tracker.shared_count(), 0u);
  EXPECT_EQ(tracker.find(9)->owner, 2u);
  EXPECT_FALSE(tracker.find(9)->shared);
}

// ------------------------------------------------------- protocol: flows ----

/// One thread streaming a private page under region mode: every miss is
/// served from the region entry, no per-block probe-filter entries.
TEST(RegionProtocol, PrivateRegionServesMissesWithoutBlockEntries) {
  std::vector<workload::Access> script;
  for (std::uint32_t i = 0; i < 8; ++i) script.push_back(load(priv(0, i)));
  const auto spec = test::make_scripted({{0, script}});
  const auto ran = test::run_scripted(test::small_config(),
                                      DirectoryMode::kRegion, spec);
  const auto& s = ran.result.stats;
  EXPECT_EQ(s.get("region.installs"), 1.0);
  EXPECT_EQ(s.get("region.hits"), 8.0);
  EXPECT_EQ(s.get("region.collapses"), 0.0);
  EXPECT_EQ(s.get("region.entries"), 1.0);
  EXPECT_EQ(s.get("region.presence_bits"), 8.0);
  EXPECT_EQ(s.get("region.private_regions"), 1.0);
  EXPECT_EQ(s.get("pf.final_occupancy"), 0.0);
  EXPECT_EQ(s.get("dir.anomalies"), 0.0);
  EXPECT_EQ(s.get("sanity.anomalies"), 0.0);
}

/// A second node touching a privately-owned region collapses it: the
/// owner's lines fall back to per-block entries and the region is shared.
TEST(RegionProtocol, FirstRemoteSharerCollapsesTheRegion) {
  std::vector<workload::Access> owner_script;
  for (std::uint32_t i = 0; i < 4; ++i) {
    owner_script.push_back(store(priv(0, i)));
  }
  const std::vector<workload::Access> sharer_script = {load(priv(0, 0))};
  const auto spec = test::make_scripted(
      {{0, owner_script},
       {1, sharer_script, ticks_from_ns(200000.0)}});
  const auto ran = test::run_scripted(test::small_config(),
                                      DirectoryMode::kRegion, spec);
  const auto& s = ran.result.stats;
  EXPECT_EQ(s.get("region.collapses"), 1.0);
  // The three lines the sharer did not touch fall back to block entries;
  // the contended line itself is probed out of the owner and re-missed.
  EXPECT_EQ(s.get("region.collapse_block_installs"), 3.0);
  EXPECT_EQ(s.get("region.collapse_spills"), 0.0);
  EXPECT_EQ(s.get("region.entries"), 0.0);
  EXPECT_EQ(s.get("region.shared_regions"), 1.0);
  EXPECT_EQ(s.get("pf.final_occupancy"), 4.0);
  EXPECT_EQ(s.get("dir.anomalies"), 0.0);
  EXPECT_EQ(s.get("sanity.anomalies"), 0.0);
}

/// Once every per-block entry of a collapsed region has died with a single
/// exclusive owner, the region recollects into a region entry.
TEST(RegionProtocol, EvictionOfLastBlockEntryRecollects) {
  // Owner dirties one line of the contended region, then streams enough
  // private lines (half the L2 per set, every set) that the contended line
  // is deterministically evicted and written back.
  std::vector<workload::Access> owner_script = {store(priv(0, 0))};
  for (std::uint32_t i = 0; i < 32; ++i) {
    owner_script.push_back(store(priv(2, i)));
  }
  // The sharer touches a different line of the region (collapsing it),
  // then streams its own filler so its block entry dies exclusive too.
  std::vector<workload::Access> sharer_script = {store(priv(0, 1))};
  for (std::uint32_t i = 0; i < 32; ++i) {
    sharer_script.push_back(store(priv(3, i)));
  }
  const auto spec = test::make_scripted(
      {{0, owner_script},
       {1, sharer_script, ticks_from_ns(200000.0)}});
  const auto ran = test::run_scripted(test::small_config(),
                                      DirectoryMode::kRegion, spec);
  const auto& s = ran.result.stats;
  EXPECT_GE(s.get("region.recollects"), 1.0);
  EXPECT_EQ(s.get("dir.anomalies"), 0.0);
  EXPECT_EQ(s.get("sanity.anomalies"), 0.0);
}

// -------------------------------------------- degenerate sweep equivalence ----

SystemConfig tiny_config() {
  SystemConfig config;
  config.num_cores = 4;
  config.mesh_width = 2;
  config.mesh_height = 2;
  config.l1i = CacheConfig{4 * kLineBytes, 2, ticks_from_ns(1.0)};
  config.l1d = CacheConfig{4 * kLineBytes, 2, ticks_from_ns(1.0)};
  config.l2 = CacheConfig{16 * kLineBytes, 2, ticks_from_ns(1.0)};
  config.probe_filter_coverage_bytes = 32 * kLineBytes;
  return config;
}

workload::WorkloadSpec tiny_workload(const std::string& name,
                                     const SystemConfig& config,
                                     std::uint64_t accesses) {
  workload::ProfileParams params;
  params.name = name;
  params.hot_bytes = 8 * 1024;
  params.cold_bytes = 8 * 1024;
  params.kernel_bytes = 32 * 1024;
  params.shared_bytes = 16 * 1024;
  params.pattern = name == "alpha" ? workload::SharedPattern::kUniform
                                   : workload::SharedPattern::kZipf;
  return workload::make_from_params(params, config, accesses, 4);
}

runner::SweepSpec tiny_spec(std::vector<DirectoryMode> modes,
                            std::uint32_t region_size_bytes) {
  SystemConfig config = tiny_config();
  config.region_size_bytes = region_size_bytes;
  runner::SweepSpec spec;
  spec.name = "tiny";
  spec.workloads = {"alpha", "beta"};
  spec.configs = {{"small", config}};
  spec.modes = std::move(modes);
  spec.replicates = 1;
  spec.base_seed = 7;
  spec.accesses_per_thread = 200;
  spec.make_workload = tiny_workload;
  return spec;
}

std::string replaced(std::string text, const std::string& from,
                     const std::string& to) {
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

/// The correctness oracle: at region_size == line size the region machinery
/// is bypassed entirely, so a kRegion sweep must reproduce the kBaseline
/// reports byte for byte (modulo the mode label).
TEST(RegionDegenerate, OneLineRegionsMatchBaselineReportsByteForByte) {
  const auto base =
      runner::SweepRunner(2).run(tiny_spec({DirectoryMode::kBaseline},
                                           kLineBytes));
  const auto region =
      runner::SweepRunner(2).run(tiny_spec({DirectoryMode::kRegion},
                                           kLineBytes));
  EXPECT_EQ(runner::to_json(base),
            replaced(runner::to_json(region), "\"mode\": \"region\"",
                     "\"mode\": \"baseline\""));
  EXPECT_EQ(runner::to_csv(base),
            replaced(runner::to_csv(region), ",region,", ",baseline,"));
}

/// Every mode exports the same statistic key set (region.* and
/// dir.anomalies are unconditional), so reports stay column-stable.
TEST(RegionDegenerate, AllModesExportTheSameKeySet) {
  const auto result = runner::SweepRunner(2).run(
      tiny_spec({DirectoryMode::kBaseline, DirectoryMode::kAllarm,
                 DirectoryMode::kRegion},
                256));
  ASSERT_FALSE(result.cells.empty());
  std::vector<std::string> first_keys;
  for (const auto& [name, summary] : result.cells.front().stats) {
    (void)summary;
    first_keys.push_back(name);
  }
  for (const auto& cell : result.cells) {
    std::vector<std::string> keys;
    for (const auto& [name, summary] : cell.stats) {
      (void)summary;
      keys.push_back(name);
    }
    EXPECT_EQ(keys, first_keys);
  }
}

// ------------------------------------------------------ allocation churn ----

/// Steady-state region churn — privatize, collapse, drain block entries,
/// forget — over a fixed set of regions.  After warm-up the FlatMap-backed
/// table and tracker must recycle their slots with zero heap allocations.
TEST(RegionAllocations, SteadyStateChurnIsAllocationFree) {
  region::RegionDirectory rd(1024);  // 16 lines per region.
  constexpr region::RegionNum kRegions = 32;

  const auto churn = [&rd](region::RegionNum r) {
    rd.note_miss_can_privatize(r, 2);
    region::RegionEntry& entry = rd.install(r, 2);
    const LineAddr base = rd.geometry().base_line(r);
    for (unsigned i = 0; i < 4; ++i) rd.mark_present(entry, base + i);
    const region::RegionEntry victim = rd.collapse(r, 3);
    unsigned blocks = 0;
    for (unsigned i = 0; i < rd.geometry().lines_per_region; ++i) {
      if ((victim.presence >> i) & 1u) {
        rd.note_block_installed(r);
        ++blocks;
      }
    }
    // All blocks die non-exclusive: the last removal forgets the region,
    // leaving both tables empty for the next round.
    for (unsigned i = 0; i < blocks; ++i) rd.note_block_removed(r, false, 2);
  };

  // Warm-up: hold every region live at once so both FlatMaps grow to the
  // working set's high-water capacity (erase-heavy churn alone never
  // raises the live count, leaving the tables at minimum capacity where
  // tombstone pressure forces periodic same-capacity rehashes).
  for (region::RegionNum r = 0; r < kRegions; ++r) {
    rd.note_miss_can_privatize(r, 2);
    region::RegionEntry& entry = rd.install(r, 2);
    for (unsigned i = 0; i < 4; ++i) {
      rd.mark_present(entry, rd.geometry().base_line(r) + i);
    }
  }
  for (region::RegionNum r = 0; r < kRegions; ++r) {
    const region::RegionEntry victim = rd.collapse(r, 3);
    unsigned blocks = 0;
    for (unsigned i = 0; i < rd.geometry().lines_per_region; ++i) {
      if ((victim.presence >> i) & 1u) {
        rd.note_block_installed(r);
        ++blocks;
      }
    }
    for (unsigned i = 0; i < blocks; ++i) rd.note_block_removed(r, false, 2);
  }
  // Then cycle the steady-state pattern so its slot/tombstone layout
  // settles, and cross the recollect path once so its insert is warm too.
  for (int round = 0; round < 4; ++round) {
    for (region::RegionNum r = 0; r < kRegions; ++r) churn(r);
  }
  {
    rd.note_miss_can_privatize(0, 2);
    region::RegionEntry& entry = rd.install(0, 2);
    rd.mark_present(entry, rd.geometry().base_line(0));
    rd.collapse(0, 3);
    rd.note_block_installed(0);
    EXPECT_EQ(rd.note_block_removed(0, true, 3),
              region::RegionDirectory::Removal::kRecollected);
    rd.collapse(0, 2);  // Withdraw the recollected entry again.
  }

  const std::uint64_t news_before = g_news.load(std::memory_order_relaxed);
  for (int round = 0; round < 64; ++round) {
    for (region::RegionNum r = 0; r < kRegions; ++r) churn(r);
  }
  const std::uint64_t news_after = g_news.load(std::memory_order_relaxed);
  EXPECT_EQ(news_after - news_before, 0u)
      << "region table churn allocated in steady state";
  EXPECT_EQ(rd.entries(), 0u);
  EXPECT_EQ(rd.presence_bits(), 0u);
}

}  // namespace
}  // namespace allarm
