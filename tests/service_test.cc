// Tests for the crash-safe sweep service: the strict JSON request parser,
// the file spool (atomic enqueue, admission, durable state machine), the
// admission/scheduling pieces of the runner (plan_shards, retry jitter),
// drain semantics, shared-pool multiplexing, and the Service loop
// end-to-end through the built-in grids.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.hh"
#include "common/fileio.hh"
#include "core/experiment.hh"
#include "runner/journal.hh"
#include "runner/report.hh"
#include "runner/sink.hh"
#include "runner/sweep.hh"
#include "runner/thread_pool.hh"
#include "service/json.hh"
#include "service/service.hh"
#include "service/spool.hh"
#include "workload/profiles.hh"

namespace allarm {
namespace {

std::string temp_path(const std::string& stem) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + std::string(info->test_suite_name()) + "_" +
         info->name() + "_" + stem;
}

void remove_tree(const std::string& path) {
  const std::string cmd = "rm -rf '" + path + "'";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
}

// ------------------------------------------------------------------ JSON ----

TEST(ServiceJson, ParsesScalarsArraysObjects) {
  const service::JsonValue doc = service::parse_json(
      R"({"grid": "quick", "n": 42, "f": 1.5, "neg": -3, "t": true,
          "nil": null, "list": [1, "two", {"three": 3}]})");
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.find("grid"), nullptr);
  EXPECT_EQ(doc.find("grid")->string, "quick");
  EXPECT_EQ(doc.find("n")->as_u64("n"), 42u);
  EXPECT_DOUBLE_EQ(doc.find("f")->number, 1.5);
  EXPECT_DOUBLE_EQ(doc.find("neg")->number, -3.0);
  EXPECT_TRUE(doc.find("t")->boolean);
  EXPECT_EQ(doc.find("nil")->kind, service::JsonValue::Kind::kNull);
  const service::JsonValue& list = *doc.find("list");
  ASSERT_EQ(list.array.size(), 3u);
  EXPECT_EQ(list.array[1].string, "two");
  EXPECT_EQ(list.array[2].find("three")->as_u64("three"), 3u);
  EXPECT_EQ(doc.find("absent"), nullptr);
}

TEST(ServiceJson, DecodesEscapesIncludingSurrogatePairs) {
  const service::JsonValue doc = service::parse_json(
      "{\"s\": \"a\\n\\t\\\"\\\\/\\u0041\\u00e9\\ud83d\\ude00\"}");
  // \u0041 = A, \u00e9 = é (2 bytes), \ud83d\ude00 = 😀 (4 bytes).
  EXPECT_EQ(doc.find("s")->string, "a\n\t\"\\/A\xC3\xA9\xF0\x9F\x98\x80");
}

TEST(ServiceJson, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",                          // empty
      "{",                         // truncated
      "{\"a\": 1,}",               // trailing comma
      "{\"a\": 1} x",              // trailing garbage
      "{\"a\": 1, \"a\": 2}",      // duplicate key
      "{\"a\": 01}",               // leading zero
      "{\"a\": 1.}",               // digit must follow point
      "{\"a\": nan}",              // not a JSON keyword
      "{\"a\": \"\\q\"}",          // bad escape
      "{\"a\": \"\x01\"}",         // raw control character
      "{\"a\": \"\\ud800\"}",      // lone high surrogate
      "{\"a\": \"\\ude00\"}",      // stray low surrogate
  };
  for (const char* text : bad) {
    EXPECT_THROW(service::parse_json(text), std::runtime_error) << text;
  }
  // Hostile nesting must fail cleanly, not blow the stack.
  EXPECT_THROW(service::parse_json(std::string(1000, '[')), std::runtime_error);
}

TEST(ServiceJson, AsU64RejectsNonIntegers) {
  EXPECT_THROW(service::parse_json("-1").as_u64("x"), std::runtime_error);
  EXPECT_THROW(service::parse_json("1.5").as_u64("x"), std::runtime_error);
  EXPECT_THROW(service::parse_json("1e30").as_u64("x"), std::runtime_error);
  EXPECT_THROW(service::parse_json("\"7\"").as_u64("x"), std::runtime_error);
  EXPECT_EQ(service::parse_json("9007199254740992").as_u64("x"),
            9007199254740992ull);  // 2^53: the last exact double integer.
}

// --------------------------------------------------------- parse_request ----

TEST(ServiceRequest, ParsesFullRequest) {
  const service::Request request = service::parse_request(
      R"({"grid": "quick", "seeds": 3, "seed": 99, "accesses": 500,
          "csv": true, "timing": true, "retries": 2})");
  EXPECT_EQ(request.grid, "quick");
  EXPECT_EQ(request.knobs.seeds, 3u);
  EXPECT_EQ(request.knobs.base_seed, 99u);
  EXPECT_EQ(request.knobs.accesses, 500u);
  EXPECT_TRUE(request.csv);
  EXPECT_TRUE(request.timing);
  EXPECT_EQ(request.retries, 2u);
  // The spec it maps to is the CLI's grid with the same knobs.
  const runner::SweepSpec spec = service::spec_of(request);
  EXPECT_EQ(spec.replicates, 3u);
  EXPECT_EQ(spec.base_seed, 99u);
}

TEST(ServiceRequest, RejectsBadRequests) {
  // Strict vocabulary: typos reject instead of silently running the wrong
  // sweep; so do bad types, unknown grids, and non-object documents.
  const char* bad[] = {
      R"({"seeds": 2})",                       // missing grid
      R"({"grid": "no-such-grid"})",           // unknown grid
      R"({"grid": "quick", "seedz": 2})",      // unknown key
      R"({"grid": "quick", "seeds": 0})",      // zero replicates
      R"({"grid": 7})",                        // grid not a string
      R"({"grid": "quick", "csv": 1})",        // csv not a bool
      R"({"grid": "quick", "retries": 100})",  // retry budget cap
      R"(["quick"])",                          // not an object
  };
  for (const char* text : bad) {
    EXPECT_THROW(service::parse_request(text), std::runtime_error) << text;
  }
}

TEST(ServiceRequest, BuiltinGridNamesAllParse) {
  for (const std::string& name : runner::builtin_grid_names()) {
    const service::Request request =
        service::parse_request("{\"grid\": \"" + name + "\"}");
    EXPECT_GT(service::spec_of(request).job_count(), 0u) << name;
  }
}

// ----------------------------------------------------------------- spool ----

TEST(Spool, ValidIdRejectsPathCharacters) {
  EXPECT_TRUE(service::Spool::valid_id("run-1"));
  EXPECT_TRUE(service::Spool::valid_id("fig3.seed42"));
  EXPECT_FALSE(service::Spool::valid_id(""));
  EXPECT_FALSE(service::Spool::valid_id(".hidden"));
  EXPECT_FALSE(service::Spool::valid_id("a/b"));
  EXPECT_FALSE(service::Spool::valid_id(std::string("a\0b", 3)));
  EXPECT_FALSE(service::Spool::valid_id(std::string(201, 'x')));
}

TEST(Spool, EnqueueIsAtomicAndScanSkipsTempFiles) {
  const std::string root = temp_path("spool");
  remove_tree(root);
  service::Spool spool(root);
  EXPECT_TRUE(spool.queued().empty());

  // A half-written producer temp file (hidden name) must never be scanned.
  ASSERT_EQ(::mkdir((root + "/queue").c_str(), 0755) == 0 || errno == EEXIST,
            true);
  write_file_durable(root + "/queue/.tmp-999-partial", "{\"gri");
  write_file_durable(root + "/queue/README", "not a request");
  EXPECT_TRUE(spool.queued().empty());

  service::Spool::enqueue(root, "beta", "{\"grid\": \"quick\"}");
  service::Spool::enqueue(root, "alpha", "{\"grid\": \"quick\"}");
  EXPECT_EQ(spool.queued(), (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_THROW(service::Spool::enqueue(root, "a/b", "{}"),
               std::invalid_argument);
}

TEST(Spool, AdmitMovesRequestAndSurvivesReplay) {
  const std::string root = temp_path("spool");
  remove_tree(root);
  service::Spool spool(root);
  service::Spool::enqueue(root, "job", "{\"grid\": \"quick\"}");

  spool.admit("job");
  EXPECT_TRUE(spool.queued().empty());
  EXPECT_EQ(spool.requests(), std::vector<std::string>{"job"});
  EXPECT_EQ(spool.state("job"), service::RequestState::kPending);
  EXPECT_EQ(read_file(spool.request_json("job")), "{\"grid\": \"quick\"}");

  // The crash window inside admit(): directory created, queue file still
  // in place (SIGKILL between mkdir and rename).  Replaying admit from the
  // next scan must succeed, not trip over the existing directory.
  service::Spool::enqueue(root, "job2", "{\"grid\": \"quick\"}");
  ASSERT_EQ(::mkdir(spool.request_dir("job2").c_str(), 0755), 0);
  spool.admit("job2");
  EXPECT_EQ(spool.state("job2"), service::RequestState::kPending);
}

TEST(Spool, StateMachineIsDurableAndTyped) {
  const std::string root = temp_path("spool");
  remove_tree(root);
  service::Spool spool(root);
  service::Spool::enqueue(root, "job", "{\"grid\": \"quick\"}");
  spool.admit("job");

  // A request directory without a state file reads as pending — that is
  // the admit() crash window after the rename, before the state write.
  ASSERT_EQ(std::remove((spool.request_dir("job") + "/state").c_str()), 0);
  EXPECT_EQ(spool.state("job"), service::RequestState::kPending);

  for (const service::RequestState state :
       {service::RequestState::kPending, service::RequestState::kRunning,
        service::RequestState::kDone, service::RequestState::kFailed,
        service::RequestState::kQuarantined, service::RequestState::kRejected}) {
    spool.set_state("job", state);
    EXPECT_EQ(spool.state("job"), state);
    service::RequestState parsed;
    EXPECT_TRUE(
        service::request_state_from_string(service::to_string(state), &parsed));
    EXPECT_EQ(parsed, state);
  }

  spool.set_state("job", service::RequestState::kFailed, "cell 3 exploded");
  EXPECT_EQ(spool.error("job"), "cell 3 exploded");
  spool.set_state("job", service::RequestState::kDone);  // Clears the error.
  EXPECT_EQ(spool.error("job"), "");

  // A corrupted state word is a loud error, not a silent default.
  write_file_durable(spool.request_dir("job") + "/state", "exploded\n");
  EXPECT_THROW(spool.state("job"), std::runtime_error);
}

TEST(Spool, FailpointsCoverScanStateAndHealth) {
  const std::string root = temp_path("spool");
  remove_tree(root);
  service::Spool spool(root);
  service::Spool::enqueue(root, "job", "{\"grid\": \"quick\"}");
  spool.admit("job");

  failpoint::configure("service.scan=err@1:1");
  EXPECT_THROW(spool.queued(), std::runtime_error);
  EXPECT_EQ(spool.queued().size(), 0u);  // Fault consumed; scan heals.

  failpoint::configure("service.state=err@1:1");
  EXPECT_THROW(spool.set_state("job", service::RequestState::kRunning),
               std::runtime_error);
  EXPECT_EQ(spool.state("job"), service::RequestState::kPending);  // Unchanged.
  spool.set_state("job", service::RequestState::kRunning);

  failpoint::configure("service.health=err@1:1");
  EXPECT_THROW(spool.write_health("{}\n"), std::runtime_error);
  spool.write_health("{\"ok\": true}\n");
  EXPECT_EQ(read_file(spool.health_path()), "{\"ok\": true}\n");
  failpoint::configure("");
}

// ---------------------------------------------------- scheduling helpers ----

TEST(PlanShards, LptBalancesAndIsDeterministic) {
  const std::vector<double> costs = {10.0, 1.0, 1.0, 1.0, 9.0, 1.0, 1.0, 8.0};
  const std::vector<std::uint32_t> plan = runner::plan_shards(costs, 3);
  ASSERT_EQ(plan.size(), costs.size());
  std::vector<double> load(3, 0.0);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    ASSERT_GE(plan[i], 1u);
    ASSERT_LE(plan[i], 3u);
    load[plan[i] - 1] += costs[i];
  }
  // LPT on these costs: the three heavy cells split across shards and the
  // light ones fill in — no shard carries two heavies.
  for (const double l : load) {
    EXPECT_GE(l, 8.0);
    EXPECT_LE(l, 12.0);
  }
  EXPECT_EQ(plan, runner::plan_shards(costs, 3));  // Pure function.
  EXPECT_THROW(runner::plan_shards({}, 3), std::invalid_argument);
  EXPECT_THROW(runner::plan_shards(costs, 0), std::invalid_argument);
  // One shard owns everything.
  for (const std::uint32_t owner : runner::plan_shards(costs, 1)) {
    EXPECT_EQ(owner, 1u);
  }
}

TEST(RetryBackoff, DeterministicJitterWithinRange) {
  EXPECT_EQ(runner::retry_backoff_ms(0, 3, 17), 0u);  // No budget, no wait.
  EXPECT_EQ(runner::retry_backoff_ms(100, 0, 17), 0u);
  for (std::uint32_t attempt = 1; attempt <= 4; ++attempt) {
    for (std::uint64_t job = 0; job < 8; ++job) {
      const std::uint64_t delay = runner::retry_backoff_ms(100, attempt, job);
      const std::uint64_t base = 100ull << (attempt - 1);
      EXPECT_GE(delay, base);
      EXPECT_LE(delay, base + 50);  // Jitter bounded by base_ms / 2.
      EXPECT_EQ(delay, runner::retry_backoff_ms(100, attempt, job));
    }
  }
  // The jitter depends on the job coordinate: simultaneous failures spread.
  std::set<std::uint64_t> delays;
  for (std::uint64_t job = 0; job < 32; ++job) {
    delays.insert(runner::retry_backoff_ms(100, 1, job));
  }
  EXPECT_GT(delays.size(), 1u);
}

// ----------------------------------------------- drain and pool sharing ----

SystemConfig tiny_config() {
  SystemConfig config;
  config.num_cores = 4;
  config.mesh_width = 2;
  config.mesh_height = 2;
  config.l1i = CacheConfig{4 * kLineBytes, 2, ticks_from_ns(1.0)};
  config.l1d = CacheConfig{4 * kLineBytes, 2, ticks_from_ns(1.0)};
  config.l2 = CacheConfig{16 * kLineBytes, 2, ticks_from_ns(1.0)};
  config.probe_filter_coverage_bytes = 32 * kLineBytes;
  return config;
}

workload::WorkloadSpec tiny_workload(const std::string& name,
                                     const SystemConfig& config,
                                     std::uint64_t accesses) {
  workload::ProfileParams params;
  params.name = name;
  params.hot_bytes = 8 * 1024;
  params.cold_bytes = 8 * 1024;
  params.kernel_bytes = 32 * 1024;
  params.shared_bytes = 16 * 1024;
  params.pattern = name == "alpha" ? workload::SharedPattern::kUniform
                                   : workload::SharedPattern::kZipf;
  return workload::make_from_params(params, config, accesses, 4);
}

runner::SweepSpec tiny_spec() {
  runner::SweepSpec spec;
  spec.name = "tiny";
  spec.workloads = {"alpha", "beta"};
  spec.configs = {{"small", tiny_config()}};
  spec.modes = {DirectoryMode::kBaseline, DirectoryMode::kAllarm};
  spec.replicates = 2;
  spec.base_seed = 7;
  spec.accesses_per_thread = 200;
  spec.make_workload = tiny_workload;
  return spec;
}

std::string stream_json(const runner::SweepSpec& spec, std::uint32_t jobs,
                        const runner::StreamOptions& options = {},
                        runner::StreamStats* stats_out = nullptr) {
  std::ostringstream out;
  runner::JsonStreamSink sink(out);
  const runner::StreamStats stats =
      runner::SweepRunner(jobs).run_streaming(spec, sink, options);
  if (stats_out != nullptr) *stats_out = stats;
  return out.str();
}

TEST(ServiceDrain, StopCheckpointsAndResumeIsByteIdentical) {
  const auto spec = tiny_spec();
  const std::string journal = temp_path("journal.bin");
  std::remove(journal.c_str());
  std::remove(runner::journal_data_path(journal).c_str());
  const std::string reference = stream_json(spec, 2);

  // Stop raised before the run starts: the drain path exercises in full —
  // nothing new issues, anything in flight lands in the journal, no
  // report is emitted (the sink never sees end()).
  std::atomic<bool> stop{true};
  runner::StreamOptions options;
  options.journal_path = journal;
  options.resume_cells = true;
  options.stop = &stop;
  runner::StreamStats stats;
  stream_json(spec, 2, options, &stats);
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.jobs_executed + stats.jobs_resumed, 0u);

  // The resumed run completes and matches an uninterrupted run's bytes.
  stop.store(false);
  const std::string resumed = stream_json(spec, 2, options, &stats);
  EXPECT_FALSE(stats.drained);
  EXPECT_EQ(stats.jobs_executed + stats.jobs_resumed, spec.job_count());
  EXPECT_EQ(resumed, reference);
}

TEST(ServicePool, ConcurrentSweepsShareOneThreadPool) {
  // The service's multiplexing contract: several run_streaming calls on
  // one shared pool produce exactly the bytes each produces alone.
  const auto spec_a = tiny_spec();
  auto spec_b = tiny_spec();
  spec_b.base_seed = 1234;
  const std::string ref_a = stream_json(spec_a, 2);
  const std::string ref_b = stream_json(spec_b, 2);

  runner::ThreadPool pool(2);
  runner::StreamOptions options;
  options.pool = &pool;
  std::string got_a;
  std::string got_b;
  std::thread ta([&] { got_a = stream_json(spec_a, 2, options); });
  std::thread tb([&] { got_b = stream_json(spec_b, 2, options); });
  ta.join();
  tb.join();
  EXPECT_EQ(got_a, ref_a);
  EXPECT_EQ(got_b, ref_b);
}

// --------------------------------------------------- service end-to-end ----

TEST(Service, RunsQueuedRequestToDoneWithCliIdenticalReport) {
  const std::string root = temp_path("spool");
  remove_tree(root);
  service::Spool::enqueue(root, "demo",
                          R"({"grid": "quick", "seeds": 1, "csv": true})");

  service::ServiceConfig config;
  config.root = root;
  config.workers = 2;
  config.poll_ms = 20;
  config.exit_when_idle = true;
  std::atomic<bool> stop{false};
  EXPECT_EQ(service::Service(config).run(stop), 0);

  service::Spool spool(root);
  EXPECT_EQ(spool.state("demo"), service::RequestState::kDone);
  EXPECT_TRUE(spool.queued().empty());

  // The committed report is byte-identical to the CLI path: same grid,
  // same knobs, same streaming fold.
  const service::Request request =
      service::parse_request(read_file(spool.request_json("demo")));
  const std::string direct = stream_json(service::spec_of(request), 2);
  EXPECT_EQ(read_file(spool.report_json("demo")), direct);
  EXPECT_FALSE(read_file(spool.report_csv("demo")).empty());
  EXPECT_NE(read_file(spool.health_path()).find("\"done\":1"),
            std::string::npos);
}

TEST(Service, RejectsMalformedRequestAndExitsDegraded) {
  const std::string root = temp_path("spool");
  remove_tree(root);
  service::Spool::enqueue(root, "bad", R"({"grid": "quick", "seedz": 2})");

  service::ServiceConfig config;
  config.root = root;
  config.poll_ms = 20;
  config.exit_when_idle = true;
  std::atomic<bool> stop{false};
  EXPECT_EQ(service::Service(config).run(stop), 3);

  service::Spool spool(root);
  EXPECT_EQ(spool.state("bad"), service::RequestState::kRejected);
  EXPECT_NE(spool.error("bad").find("seedz"), std::string::npos);
}

}  // namespace
}  // namespace allarm
