// Unit tests for the sparse directory (probe filter) structure.
#include <gtest/gtest.h>

#include <set>

#include "coherence/probe_filter.hh"

namespace allarm::coherence {
namespace {

ProbeFilter small_pf() {
  // 8 entries: 2 sets x 4 ways (coverage 512 bytes).
  return ProbeFilter(8 * kLineBytes, 4, ReplacementKind::kLru, 1);
}

auto no_pin() {
  return [](LineAddr) { return false; };
}

TEST(ProbeFilter, GeometryFromCoverage) {
  SystemConfig config;
  ProbeFilter pf(config.probe_filter_coverage_bytes, config.probe_filter_ways,
                 ReplacementKind::kLru, 0);
  EXPECT_EQ(pf.capacity(), 8192u);
  EXPECT_EQ(pf.sets(), 2048u);
  EXPECT_EQ(pf.ways(), 4u);
}

TEST(ProbeFilter, LookupCountsHitsAndMisses) {
  ProbeFilter pf = small_pf();
  EXPECT_EQ(pf.lookup(10), nullptr);
  pf.insert(10, PfState::kEM, 3);
  PfEntry* e = pf.lookup(10);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->owner, 3);
  EXPECT_EQ(pf.stats().reads, 2u);
  EXPECT_EQ(pf.stats().hits, 1u);
  EXPECT_EQ(pf.stats().misses, 1u);
}

TEST(ProbeFilter, PeekHasNoSideEffects) {
  ProbeFilter pf = small_pf();
  pf.insert(10, PfState::kShared, kInvalidNode);
  const auto reads = pf.stats().reads;
  EXPECT_NE(pf.peek(10), nullptr);
  EXPECT_EQ(pf.peek(11), nullptr);
  EXPECT_EQ(pf.stats().reads, reads);
}

TEST(ProbeFilter, InsertRequiresFreeWay) {
  ProbeFilter pf = small_pf();
  // Fill set 0 (even lines map to set 0: sets=2, set = line & 1).
  for (LineAddr l = 0; l < 8; l += 2) pf.insert(l, PfState::kEM, 0);
  EXPECT_FALSE(pf.has_free_way(8));  // Line 8 -> set 0.
  EXPECT_TRUE(pf.has_free_way(1));   // Set 1 empty.
  EXPECT_THROW(pf.insert(8, PfState::kEM, 0), std::logic_error);
}

TEST(ProbeFilter, DisplaceVictimFreesWay) {
  ProbeFilter pf = small_pf();
  for (LineAddr l = 0; l < 8; l += 2) pf.insert(l, PfState::kEM, 0);
  const auto victim = pf.displace_victim(8, no_pin());
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line, 0u);  // LRU.
  EXPECT_TRUE(pf.has_free_way(8));
  pf.insert(8, PfState::kEM, 1);
  EXPECT_EQ(pf.occupancy(), 4u);
}

TEST(ProbeFilter, DisplaceSkipsPinnedLines) {
  ProbeFilter pf = small_pf();
  for (LineAddr l = 0; l < 8; l += 2) pf.insert(l, PfState::kEM, 0);
  const auto victim =
      pf.displace_victim(8, [](LineAddr l) { return l == 0; });
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line, 2u);  // Next LRU after the pinned line.
}

TEST(ProbeFilter, DisplaceReturnsNulloptWhenAllPinned) {
  ProbeFilter pf = small_pf();
  for (LineAddr l = 0; l < 8; l += 2) pf.insert(l, PfState::kEM, 0);
  EXPECT_FALSE(pf.displace_victim(8, [](LineAddr) { return true; }).has_value());
}

TEST(ProbeFilter, PrefersSharedVictims) {
  ProbeFilter pf = small_pf();
  pf.insert(0, PfState::kEM, 0);                 // Oldest.
  pf.insert(2, PfState::kShared, kInvalidNode);  // Newer but Shared.
  pf.insert(4, PfState::kEM, 1);
  pf.insert(6, PfState::kEM, 2);
  const auto victim = pf.displace_victim(8, no_pin());
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line, 2u) << "Shared entry should be preferred over LRU";
}

TEST(ProbeFilter, FallsBackToLruWithoutSharedEntries) {
  ProbeFilter pf = small_pf();
  for (LineAddr l = 0; l < 8; l += 2) pf.insert(l, PfState::kEM, 0);
  pf.touch(0);  // Refresh line 0: line 2 becomes LRU.
  const auto victim = pf.displace_victim(8, no_pin());
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line, 2u);
}

TEST(ProbeFilter, UpdateRewritesStateAndOwner) {
  ProbeFilter pf = small_pf();
  pf.insert(4, PfState::kEM, 2);
  pf.update(4, PfState::kOwned, 5);
  const PfEntry* e = pf.peek(4);
  EXPECT_EQ(e->state, PfState::kOwned);
  EXPECT_EQ(e->owner, 5);
  EXPECT_THROW(pf.update(99, PfState::kShared, 0), std::logic_error);
}

TEST(ProbeFilter, EraseRemoves) {
  ProbeFilter pf = small_pf();
  pf.insert(4, PfState::kEM, 2);
  EXPECT_TRUE(pf.erase(4));
  EXPECT_EQ(pf.peek(4), nullptr);
  EXPECT_FALSE(pf.erase(4));
  EXPECT_EQ(pf.occupancy(), 0u);
}

TEST(ProbeFilter, RejectsInvalidInsert) {
  ProbeFilter pf = small_pf();
  EXPECT_THROW(pf.insert(1, PfState::kInvalid, 0), std::invalid_argument);
  pf.insert(1, PfState::kEM, 0);
  EXPECT_THROW(pf.insert(1, PfState::kEM, 0), std::logic_error);  // Duplicate.
}

TEST(ProbeFilter, ForEachAndClear) {
  ProbeFilter pf = small_pf();
  pf.insert(1, PfState::kEM, 0);
  pf.insert(2, PfState::kShared, kInvalidNode);
  std::set<LineAddr> seen;
  pf.for_each([&](const PfEntry& e) { seen.insert(e.line); });
  EXPECT_EQ(seen, (std::set<LineAddr>{1, 2}));
  pf.clear();
  EXPECT_EQ(pf.occupancy(), 0u);
  EXPECT_EQ(pf.stats().reads, 0u);
}

TEST(ProbeFilter, ResetStatsKeepsEntries) {
  ProbeFilter pf = small_pf();
  pf.insert(1, PfState::kEM, 0);
  pf.lookup(1);
  pf.reset_stats();
  EXPECT_EQ(pf.stats().reads, 0u);
  EXPECT_NE(pf.peek(1), nullptr);
}

TEST(ProbeFilter, StateNames) {
  EXPECT_EQ(to_string(PfState::kEM), "EM");
  EXPECT_EQ(to_string(PfState::kOwned), "O");
  EXPECT_EQ(to_string(PfState::kShared), "S");
}

// Property: occupancy always equals the number of enumerable entries under
// random operation sequences.
TEST(ProbeFilter, PropertyOccupancyConsistency) {
  ProbeFilter pf(64 * kLineBytes, 4, ReplacementKind::kLru, 3);
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const LineAddr line = rng.below(128);
    if (pf.peek(line)) {
      if (rng.chance(0.3)) pf.erase(line);
      else pf.touch(line);
    } else if (pf.has_free_way(line)) {
      pf.insert(line, rng.chance(0.5) ? PfState::kEM : PfState::kShared, 0);
    } else {
      ASSERT_TRUE(pf.displace_victim(line, no_pin()).has_value());
    }
    std::uint32_t counted = 0;
    pf.for_each([&](const PfEntry&) { ++counted; });
    ASSERT_EQ(counted, pf.occupancy());
  }
}

}  // namespace
}  // namespace allarm::coherence
