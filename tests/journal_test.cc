// Tests for the streaming sweep chassis: the on-disk journal (torn-record
// recovery, checksums, spec-hash stamping), resume/shard/merge
// determinism, and the O(jobs) residency guarantee of run_streaming.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/checksum.hh"
#include "common/failpoint.hh"
#include "common/fileio.hh"
#include "core/experiment.hh"
#include "runner/journal.hh"
#include "runner/report.hh"
#include "runner/sink.hh"
#include "runner/sweep.hh"
#include "workload/profiles.hh"

namespace allarm {
namespace {

// ------------------------------------------------------------- utilities ----

/// Fresh path under the gtest temp dir, unique per test.
std::string temp_path(const std::string& stem) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + std::string(info->test_suite_name()) + "_" +
         info->name() + "_" + stem;
}

void remove_journal(const std::string& path) {
  std::remove(path.c_str());
  std::remove(runner::journal_data_path(path).c_str());
}

void truncate_file(const std::string& path, std::uint64_t size) {
  File file(path, File::Mode::kReadWrite);
  file.truncate(size);
}

void append_bytes(const std::string& path, const std::string& bytes) {
  File file(path, File::Mode::kReadWrite);
  file.write_at(file.size(), bytes.data(), bytes.size());
}

void flip_byte(const std::string& path, std::uint64_t offset) {
  File file(path, File::Mode::kReadWrite);
  unsigned char b = 0;
  file.read_at(offset, &b, 1);
  b ^= 0xFF;
  file.write_at(offset, &b, 1);
}

core::RunResult sample_result(int salt) {
  core::RunResult result;
  result.runtime = static_cast<Tick>(1000 + salt);
  result.thread_finish = {static_cast<Tick>(10 + salt),
                          static_cast<Tick>(20 + salt)};
  result.stats.set("cache.misses", 17.0 + salt);
  result.stats.set("noc.bytes", 0.5 * salt);
  result.wall_ns = 123456789ull + static_cast<std::uint64_t>(salt);
  return result;
}

runner::JournalMeta sample_meta() {
  runner::JournalMeta meta;
  meta.spec_hash = 0xDEADBEEFCAFEF00Dull;
  meta.job_count = 64;
  meta.base_seed = 42;
  return meta;
}

/// Same tiny machine/workloads as runner_test: milliseconds per sweep.
SystemConfig tiny_config() {
  SystemConfig config;
  config.num_cores = 4;
  config.mesh_width = 2;
  config.mesh_height = 2;
  config.l1i = CacheConfig{4 * kLineBytes, 2, ticks_from_ns(1.0)};
  config.l1d = CacheConfig{4 * kLineBytes, 2, ticks_from_ns(1.0)};
  config.l2 = CacheConfig{16 * kLineBytes, 2, ticks_from_ns(1.0)};
  config.probe_filter_coverage_bytes = 32 * kLineBytes;
  return config;
}

workload::WorkloadSpec tiny_workload(const std::string& name,
                                     const SystemConfig& config,
                                     std::uint64_t accesses) {
  workload::ProfileParams params;
  params.name = name;
  params.hot_bytes = 8 * 1024;
  params.cold_bytes = 8 * 1024;
  params.kernel_bytes = 32 * 1024;
  params.shared_bytes = 16 * 1024;
  params.pattern = name == "alpha" ? workload::SharedPattern::kUniform
                                   : workload::SharedPattern::kZipf;
  return workload::make_from_params(params, config, accesses, 4);
}

runner::SweepSpec tiny_spec() {
  runner::SweepSpec spec;
  spec.name = "tiny";
  spec.workloads = {"alpha", "beta"};
  spec.configs = {{"small", tiny_config()}};
  spec.modes = {DirectoryMode::kBaseline, DirectoryMode::kAllarm};
  spec.replicates = 2;
  spec.base_seed = 7;
  spec.accesses_per_thread = 200;
  spec.make_workload = tiny_workload;
  return spec;
}

/// Streams `spec` to a JSON string through run_streaming.
std::string stream_json(const runner::SweepSpec& spec, std::uint32_t jobs,
                        const runner::StreamOptions& options = {},
                        runner::StreamStats* stats_out = nullptr) {
  std::ostringstream out;
  runner::JsonStreamSink sink(out);
  const runner::StreamStats stats =
      runner::SweepRunner(jobs).run_streaming(spec, sink, options);
  if (stats_out != nullptr) *stats_out = stats;
  return out.str();
}

// -------------------------------------------------------------- checksums ----

TEST(Checksum, Crc32cKnownAnswers) {
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);  // Canonical CRC32C vector.
  EXPECT_EQ(crc32c(""), 0x00000000u);
  // Incremental == one-shot.
  const std::string text = "streaming sweep journal";
  const std::uint32_t part = crc32c(text.substr(0, 9));
  EXPECT_EQ(crc32c(text.substr(9), part), crc32c(text));
}

TEST(Checksum, Fnv1a64IsOrderAndLengthSensitive) {
  Fnv1a64 a, b, c;
  a.update(std::string("ab"));
  a.update(std::string("c"));
  b.update(std::string("a"));
  b.update(std::string("bc"));
  c.update(std::string("abc"));
  EXPECT_NE(a.digest(), b.digest());  // Length prefix separates the folds.
  EXPECT_NE(a.digest(), c.digest());
  Fnv1a64 d;
  d.update(std::string("abc"));
  EXPECT_EQ(c.digest(), d.digest());
}

// ---------------------------------------------------------- serialization ----

TEST(RunResultSerialization, RoundTrips) {
  const core::RunResult original = sample_result(3);
  const std::string blob = runner::serialize_run_result(original);
  const core::RunResult restored =
      runner::deserialize_run_result(blob.data(), blob.size());
  EXPECT_EQ(restored.runtime, original.runtime);
  EXPECT_EQ(restored.thread_finish, original.thread_finish);
  EXPECT_EQ(restored.stats.values(), original.stats.values());
  EXPECT_EQ(restored.wall_ns, original.wall_ns);
}

TEST(RunResultSerialization, ReadsPreWallNsPayloadsAsUnmeasured) {
  // The trailing optional section grows field by field: journals written
  // before wall_ns end right after the stats, ones written before the
  // cell hash end right after wall_ns.  The reader must accept each
  // vintage and report the missing fields as "not recorded" (zero).
  const std::string blob = runner::serialize_run_result(sample_result(5));
  const std::string pre_hash =
      blob.substr(0, blob.size() - sizeof(std::uint64_t));
  std::uint64_t hash = 42;
  const core::RunResult no_hash = runner::deserialize_run_result(
      pre_hash.data(), pre_hash.size(), &hash);
  EXPECT_EQ(no_hash.wall_ns, sample_result(5).wall_ns);
  EXPECT_EQ(hash, 0u);

  const std::string pre_wall =
      blob.substr(0, blob.size() - 2 * sizeof(std::uint64_t));
  const core::RunResult restored =
      runner::deserialize_run_result(pre_wall.data(), pre_wall.size());
  EXPECT_EQ(restored.wall_ns, 0u);
  EXPECT_EQ(restored.runtime, sample_result(5).runtime);
}

TEST(RunResultSerialization, RejectsTruncatedAndTrailingBytes) {
  const std::string blob = runner::serialize_run_result(sample_result(1));
  EXPECT_THROW(runner::deserialize_run_result(blob.data(), blob.size() - 1),
               std::runtime_error);
  const std::string padded = blob + "x";
  EXPECT_THROW(runner::deserialize_run_result(padded.data(), padded.size()),
               std::runtime_error);
}

TEST(RunResultSerialization, ProfileSectionRoundTrips) {
  core::RunResult original = sample_result(2);
  Histogram latency;
  for (const std::uint64_t v : {0ull, 1ull, 7ull, 900ull, 900ull}) {
    latency.record(v);
  }
  original.profile["access_latency_ns"] = latency;
  Histogram occupancy;
  occupancy.record(3);
  original.profile["dir_occupancy"] = occupancy;

  const std::string blob = runner::serialize_run_result(original, 99);
  std::uint64_t hash = 0;
  const core::RunResult restored =
      runner::deserialize_run_result(blob.data(), blob.size(), &hash);
  EXPECT_EQ(hash, 99u);
  ASSERT_EQ(restored.profile.size(), 2u);
  const Histogram& r = restored.profile.at("access_latency_ns");
  EXPECT_EQ(r.count(), latency.count());
  EXPECT_EQ(r.max(), latency.max());
  EXPECT_EQ(r.buckets(), latency.buckets());
  EXPECT_EQ(restored.profile.at("dir_occupancy").count(), 1u);
}

TEST(RunResultSerialization, ProfileRidesAsATrailingSection) {
  // A profiled payload is the profile-free payload plus a trailing
  // section, and the profile-free bytes still deserialize on their own —
  // so default journals keep the legacy layout and pre-profile journals
  // read back as unprofiled rather than erroring.
  core::RunResult original = sample_result(6);
  Histogram h;
  h.record(5);
  original.profile["m"] = h;
  const std::string profiled = runner::serialize_run_result(original, 11);
  core::RunResult plain = original;
  plain.profile.clear();
  const std::string legacy = runner::serialize_run_result(plain, 11);
  ASSERT_LT(legacy.size(), profiled.size());
  EXPECT_EQ(profiled.substr(0, legacy.size()), legacy);

  std::uint64_t hash = 0;
  const core::RunResult restored =
      runner::deserialize_run_result(legacy.data(), legacy.size(), &hash);
  EXPECT_TRUE(restored.profile.empty());
  EXPECT_EQ(hash, 11u);
}

// ------------------------------------------------------------- journal IO ----

TEST(Journal, RoundTripsRecordsAndPayloads) {
  const std::string path = temp_path("journal");
  remove_journal(path);
  {
    auto journal = runner::Journal::create(path, sample_meta());
    journal.append(0, 111, sample_result(0));
    journal.append(5, 222, sample_result(5));
    journal.append(9, 333, sample_result(9));
    journal.close();
  }
  auto journal = runner::Journal::open_read(path);
  EXPECT_EQ(journal.meta().spec_hash, sample_meta().spec_hash);
  ASSERT_EQ(journal.record_count(), 3u);
  const auto& entries = journal.index().entries;
  EXPECT_EQ(entries[1].job_index, 5u);
  EXPECT_EQ(entries[1].seed, 222u);
  EXPECT_TRUE(entries[1].payload_ok);
  const core::RunResult restored = journal.read_payload(entries[1]);
  EXPECT_EQ(restored.stats.values(), sample_result(5).stats.values());
  EXPECT_EQ(journal.index().dropped_records, 0u);
  remove_journal(path);
}

TEST(Journal, RecoversFromTornFinalRecord) {
  const std::string path = temp_path("journal");
  remove_journal(path);
  {
    auto journal = runner::Journal::create(path, sample_meta());
    for (int i = 0; i < 4; ++i) {
      journal.append(i, 100 + i, sample_result(i));
    }
    journal.close();
  }
  // A kill mid-append leaves a partial trailing record.
  truncate_file(path, runner::Journal::kHeaderSize +
                          2 * runner::Journal::kRecordSize + 13);

  const runner::JournalIndex index = runner::Journal::load_index(path);
  EXPECT_EQ(index.entries.size(), 2u);
  EXPECT_EQ(index.dropped_records, 1u);  // The torn tail.

  // Resume truncates the tail and appends cleanly after it.
  {
    auto journal = runner::Journal::open_resume(path, sample_meta());
    EXPECT_EQ(journal.record_count(), 2u);
    journal.append(2, 102, sample_result(2));
    journal.close();
  }
  const runner::JournalIndex after = runner::Journal::load_index(path);
  EXPECT_EQ(after.entries.size(), 3u);
  EXPECT_TRUE(after.entries.back().payload_ok);
  remove_journal(path);
}

TEST(Journal, DropsRecordsFromFirstCorruptOne) {
  const std::string path = temp_path("journal");
  remove_journal(path);
  {
    auto journal = runner::Journal::create(path, sample_meta());
    for (int i = 0; i < 3; ++i) journal.append(i, i, sample_result(i));
    journal.close();
  }
  // Corrupt record 1: it and everything after is untrusted.
  flip_byte(path, runner::Journal::kHeaderSize + runner::Journal::kRecordSize +
                      4);
  const runner::JournalIndex index = runner::Journal::load_index(path);
  EXPECT_EQ(index.entries.size(), 1u);
  EXPECT_EQ(index.dropped_records, 2u);
  remove_journal(path);
}

TEST(Journal, FlagsCorruptPayloadWithoutLosingLaterRecords) {
  const std::string path = temp_path("journal");
  remove_journal(path);
  std::uint64_t payload0_offset = 0;
  {
    auto journal = runner::Journal::create(path, sample_meta());
    journal.append(0, 0, sample_result(0));
    journal.append(1, 1, sample_result(1));
    payload0_offset = journal.index().entries[0].payload_offset;
    journal.close();
  }
  flip_byte(runner::journal_data_path(path), payload0_offset + 2);
  const runner::JournalIndex index = runner::Journal::load_index(path);
  ASSERT_EQ(index.entries.size(), 2u);
  EXPECT_FALSE(index.entries[0].payload_ok);  // Job 0 must re-run...
  EXPECT_TRUE(index.entries[1].payload_ok);   // ...job 1 is still good.
  remove_journal(path);
}

TEST(Journal, TornPayloadTailInvalidatesItsRecord) {
  const std::string path = temp_path("journal");
  remove_journal(path);
  {
    auto journal = runner::Journal::create(path, sample_meta());
    journal.append(0, 0, sample_result(0));
    journal.append(1, 1, sample_result(1));
    journal.close();
  }
  // Chop the last payload short: its record now points past EOF.
  const std::string data = runner::journal_data_path(path);
  truncate_file(data, File(data, File::Mode::kRead).size() - 5);
  const runner::JournalIndex index = runner::Journal::load_index(path);
  EXPECT_EQ(index.entries.size(), 1u);
  EXPECT_EQ(index.dropped_records, 1u);
  remove_journal(path);
}

TEST(Journal, RecoversFromDoubleTornTail) {
  // Both files torn at once — the crash case journal + data tearing
  // together (power cut mid-batch): record k is torn AND its payload (and
  // earlier ones') bytes are chopped.
  const std::string path = temp_path("journal");
  remove_journal(path);
  {
    auto journal = runner::Journal::create(path, sample_meta());
    for (int i = 0; i < 4; ++i) journal.append(i, 100 + i, sample_result(i));
    journal.close();
  }
  truncate_file(path, runner::Journal::kHeaderSize +
                          3 * runner::Journal::kRecordSize + 7);
  const std::string data = runner::journal_data_path(path);
  const std::uint64_t data_size = File(data, File::Mode::kRead).size();
  truncate_file(data, data_size / 2);  // Tears into record 1's payload.

  const runner::JournalIndex index = runner::Journal::load_index(path);
  // Whatever survives is intact; everything referencing torn bytes is
  // dropped or flagged, never trusted.
  std::uint64_t usable = 0;
  for (const auto& entry : index.entries) {
    if (!entry.payload_ok) continue;
    ++usable;
    runner::Journal journal = runner::Journal::open_read(path);
    EXPECT_NO_THROW(journal.read_payload(entry));
  }
  EXPECT_LT(usable, 4u);
  EXPECT_GT(index.dropped_records, 0u);

  // And resume appends cleanly after the recovered extent.
  {
    auto journal = runner::Journal::open_resume(path, sample_meta());
    journal.append(9, 109, sample_result(9));
    journal.close();
  }
  const runner::JournalIndex after = runner::Journal::load_index(path);
  EXPECT_TRUE(after.entries.back().payload_ok);
  EXPECT_EQ(after.entries.back().job_index, 9u);
  remove_journal(path);
}

TEST(Journal, AppendSurvivesInjectedWriteFailureViaResume) {
  // A pwrite that tears mid-append must leave a journal that load_index
  // recovers (prefix intact) and open_resume continues.
  const std::string path = temp_path("journal");
  remove_journal(path);
  {
    auto journal = runner::Journal::create(path, sample_meta());
    journal.append(0, 100, sample_result(0));
    failpoint::Scoped guard("fileio.pwrite=torn@1");
    EXPECT_THROW(journal.append(1, 101, sample_result(1)),
                 std::runtime_error);
  }
  const runner::JournalIndex index = runner::Journal::load_index(path);
  ASSERT_GE(index.entries.size(), 1u);
  EXPECT_EQ(index.entries[0].job_index, 0u);
  EXPECT_TRUE(index.entries[0].payload_ok);
  {
    auto journal = runner::Journal::open_resume(path, sample_meta());
    journal.append(1, 101, sample_result(1));
    journal.close();
  }
  const runner::JournalIndex after = runner::Journal::load_index(path);
  EXPECT_EQ(after.entries.size(), 2u);
  EXPECT_TRUE(after.entries[1].payload_ok);
  failpoint::clear();
  remove_journal(path);
}

TEST(Journal, SyncFailureSurfacesLoudly) {
  const std::string path = temp_path("journal");
  remove_journal(path);
  auto journal = runner::Journal::create(path, sample_meta());
  journal.append(0, 100, sample_result(0));
  failpoint::Scoped guard("journal.fsync=err@1");
  try {
    journal.sync();
    FAIL() << "injected fsync failure did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("injected fault"), std::string::npos)
        << e.what();
  }
  failpoint::clear();
  remove_journal(path);
}

// ---------------------------------------------------- quarantine records ----

TEST(Journal, FailureRecordsRoundTrip) {
  const runner::FailureRecord failure{3, "job 5: injected fault"};
  const std::string blob = runner::serialize_failure(failure);
  const runner::FailureRecord restored =
      runner::deserialize_failure(blob.data(), blob.size());
  EXPECT_EQ(restored.attempts, 3u);
  EXPECT_EQ(restored.error, failure.error);
  EXPECT_THROW(runner::deserialize_failure(blob.data(), blob.size() - 1),
               std::runtime_error);

  const std::string path = temp_path("journal");
  remove_journal(path);
  {
    auto journal = runner::Journal::create(path, sample_meta());
    journal.append(0, 100, sample_result(0));
    journal.append_failed(1, 101, failure);
    journal.close();
  }
  const runner::JournalIndex index = runner::Journal::load_index(path);
  ASSERT_EQ(index.entries.size(), 2u);
  EXPECT_FALSE(index.entries[0].failed);
  EXPECT_TRUE(index.entries[1].failed);
  EXPECT_TRUE(index.entries[1].payload_ok);
  runner::Journal journal = runner::Journal::open_read(path);
  const runner::FailureRecord read = journal.read_failure(index.entries[1]);
  EXPECT_EQ(read.attempts, 3u);
  EXPECT_EQ(read.error, failure.error);
  remove_journal(path);
}

TEST(Journal, LaterSuccessSupersedesAFailureRecordOnResume) {
  // Quarantine then heal: the journal holds failed(1) followed by a
  // success for the same job.  Resume must treat job 1 as done with the
  // success payload (last record wins in both directions).
  const std::string path = temp_path("journal");
  remove_journal(path);
  {
    auto journal = runner::Journal::create(path, sample_meta());
    journal.append(0, 100, sample_result(0));
    journal.append_failed(1, 101, {2, "transient"});
    journal.append(1, 101, sample_result(1));
    journal.close();
  }
  const runner::JournalIndex index = runner::Journal::load_index(path);
  ASSERT_EQ(index.entries.size(), 3u);
  // Fold the way resume does: failed erases, success (re)inserts.
  bool job1_done = false;
  for (const auto& entry : index.entries) {
    if (entry.job_index != 1 || !entry.payload_ok) continue;
    job1_done = !entry.failed;
  }
  EXPECT_TRUE(job1_done);
  remove_journal(path);
}

TEST(Journal, RejectsMetaMismatchOnResume) {
  const std::string path = temp_path("journal");
  remove_journal(path);
  runner::Journal::create(path, sample_meta()).close();

  runner::JournalMeta other = sample_meta();
  other.spec_hash ^= 1;
  EXPECT_THROW(runner::Journal::open_resume(path, other), std::runtime_error);
  other = sample_meta();
  other.job_count += 1;
  EXPECT_THROW(runner::Journal::open_resume(path, other), std::runtime_error);
  other = sample_meta();
  other.shard_index = 2;
  other.shard_count = 2;
  EXPECT_THROW(runner::Journal::open_resume(path, other), std::runtime_error);
  EXPECT_NO_THROW(runner::Journal::open_resume(path, sample_meta()).close());
  remove_journal(path);
}

TEST(Journal, RejectsGarbageHeader) {
  const std::string path = temp_path("journal");
  remove_journal(path);
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a journal, not even 64 bytes of one";
  }
  { std::ofstream f(runner::journal_data_path(path), std::ios::binary); }
  EXPECT_THROW(runner::Journal::load_index(path), std::runtime_error);
  append_bytes(path, std::string(64, '\0'));
  EXPECT_THROW(runner::Journal::load_index(path), std::runtime_error);
  remove_journal(path);
}

// ------------------------------------------------------------- spec hash ----

TEST(SpecHash, SensitiveToEverythingThatChangesResults) {
  const runner::SweepSpec spec = tiny_spec();
  const std::uint64_t base = runner::spec_hash(spec);

  auto changed = spec;
  changed.base_seed = 8;
  EXPECT_NE(runner::spec_hash(changed), base);
  changed = spec;
  changed.accesses_per_thread = 300;
  EXPECT_NE(runner::spec_hash(changed), base);
  changed = spec;
  changed.replicates = 3;
  EXPECT_NE(runner::spec_hash(changed), base);
  changed = spec;
  changed.workloads.push_back("gamma");
  EXPECT_NE(runner::spec_hash(changed), base);
  changed = spec;
  changed.configs[0].config.probe_filter_coverage_bytes *= 2;
  EXPECT_NE(runner::spec_hash(changed), base);
  changed = spec;
  changed.modes = {DirectoryMode::kBaseline};
  EXPECT_NE(runner::spec_hash(changed), base);

  EXPECT_EQ(runner::spec_hash(spec), base);  // And stable.
}

// ------------------------------------------------------------- sharding ----

TEST(ShardSpec, ValidatesBounds) {
  EXPECT_NO_THROW((runner::ShardSpec{1, 1}).validate());
  EXPECT_NO_THROW((runner::ShardSpec{3, 3}).validate());
  EXPECT_THROW((runner::ShardSpec{0, 2}).validate(), std::invalid_argument);
  EXPECT_THROW((runner::ShardSpec{3, 2}).validate(), std::invalid_argument);
  EXPECT_THROW((runner::ShardSpec{1, 0}).validate(), std::invalid_argument);
}

TEST(ShardSpec, PartitionsEveryCellExactlyOnce) {
  for (const std::uint32_t shards : {1u, 2u, 3u, 5u, 8u}) {
    for (const std::uint64_t cells : {1ull, 4ull, 10ull, 37ull}) {
      for (std::uint64_t cell = 0; cell < cells; ++cell) {
        std::uint32_t owners = 0;
        for (std::uint32_t k = 1; k <= shards; ++k) {
          if (runner::ShardSpec{k, shards}.owns_cell(cell)) ++owners;
        }
        EXPECT_EQ(owners, 1u) << "cell " << cell << " of " << cells << " in "
                              << shards << " shards";
      }
    }
  }
}

TEST(ShardSpec, EveryJobLandsInExactlyOneShard) {
  auto spec = tiny_spec();
  spec.workloads = {"alpha", "beta", "gamma"};  // 6 cells, 12 jobs.
  const auto jobs = runner::expand_jobs(spec);
  for (const std::uint32_t shards : {1u, 2u, 4u, 7u}) {
    std::multiset<std::uint64_t> seen;
    for (std::uint64_t job = 0; job < jobs.size(); ++job) {
      const std::uint64_t cell = job / spec.replicates;
      for (std::uint32_t k = 1; k <= shards; ++k) {
        if (runner::ShardSpec{k, shards}.owns_cell(cell)) seen.insert(job);
      }
    }
    EXPECT_EQ(seen.size(), jobs.size());
    for (std::uint64_t job = 0; job < jobs.size(); ++job) {
      EXPECT_EQ(seen.count(job), 1u);
    }
  }
}

// ------------------------------------------------- streaming determinism ----

TEST(Streaming, MatchesCollectedReportsAtAnyJobCount) {
  const auto spec = tiny_spec();
  const runner::SweepResult collected = runner::SweepRunner(4).run(spec);
  const std::string reference = runner::to_json(collected);
  EXPECT_EQ(stream_json(spec, 1), reference);
  EXPECT_EQ(stream_json(spec, 8), reference);

  std::ostringstream csv_out;
  runner::CsvStreamSink csv_sink(csv_out);
  runner::SweepRunner(3).run_streaming(spec, csv_sink);
  EXPECT_EQ(csv_out.str(), runner::to_csv(collected));
}

TEST(Streaming, TimingModeAddsWallNsAndDefaultStaysCanonical) {
  const auto spec = tiny_spec();

  // Default report: no timing field — byte-identical across runs.
  const std::string canonical = stream_json(spec, 2);
  EXPECT_EQ(canonical.find("wall_ns"), std::string::npos);

  // Timing mode: every cell carries a wall_ns summary with one count per
  // replicate (run_request measures every job).
  std::ostringstream out;
  runner::JsonStreamSink sink(out);
  sink.set_include_timing(true);
  runner::SweepRunner(2).run_streaming(spec, sink);
  const std::string timed = out.str();
  std::size_t cells = 0, pos = 0;
  while ((pos = timed.find("\"wall_ns\"", pos)) != std::string::npos) {
    ++cells;
    pos += 1;
  }
  EXPECT_EQ(cells, spec.cell_count());
  // Stripping the timing lines recovers the canonical bytes.
  std::string stripped;
  std::istringstream lines(timed);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"wall_ns\"") == std::string::npos) {
      stripped += line + "\n";
    }
  }
  EXPECT_EQ(stripped, canonical);
}

TEST(Streaming, ProfileModeAddsHistAndDefaultStaysCanonical) {
  auto spec = tiny_spec();

  // Default report: no hist section — and a profiled spec streamed into a
  // default sink reports the same canonical bytes (the histograms ride the
  // journal side-channel, never the report, unless the sink opts in).
  const std::string canonical = stream_json(spec, 2);
  EXPECT_EQ(canonical.find("\"hist\""), std::string::npos);
  spec.profile = true;
  EXPECT_EQ(stream_json(spec, 2), canonical);

  // Profile sink: every cell carries a hist object, and the bytes are
  // --jobs invariant (the fold merges histograms in grid order).
  const auto profiled_json = [&](std::uint32_t jobs) {
    std::ostringstream out;
    runner::JsonStreamSink sink(out);
    sink.set_include_profile(true);
    runner::SweepRunner(jobs).run_streaming(spec, sink);
    return out.str();
  };
  const std::string profiled = profiled_json(2);
  std::size_t cells = 0, pos = 0;
  while ((pos = profiled.find("\"hist\"", pos)) != std::string::npos) {
    ++cells;
    pos += 1;
  }
  EXPECT_EQ(cells, spec.cell_count());
  EXPECT_NE(profiled.find("\"access_latency_ns\""), std::string::npos);
  EXPECT_NE(profiled.find("\"p99\""), std::string::npos);
  EXPECT_EQ(profiled_json(1), profiled);
  EXPECT_EQ(profiled_json(8), profiled);
}

TEST(Streaming, JournalRecordsPerJobWallClock) {
  const auto spec = tiny_spec();
  const std::string path = temp_path("walltime.journal");
  remove_journal(path);

  std::ostringstream out;
  runner::JsonStreamSink sink(out);
  runner::StreamOptions options;
  options.journal_path = path;
  runner::SweepRunner(2).run_streaming(spec, sink, options);

  const runner::JournalIndex index = runner::Journal::load_index(path);
  ASSERT_EQ(index.entries.size(), spec.job_count());
  runner::Journal journal = runner::Journal::open_read(path);
  for (const runner::JournalEntry& entry : index.entries) {
    const core::RunResult result = journal.read_payload(entry);
    EXPECT_GT(result.wall_ns, 0u)
        << "job " << entry.job_index << " has no measured wall clock";
  }
  remove_journal(path);
}

TEST(Streaming, PeakResidencyIsBoundedByTheWindowNotTheGrid) {
  auto spec = tiny_spec();
  // 16 cells x 1 replicate = 16 jobs; far more than the window.
  spec.workloads = {"w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7"};
  spec.replicates = 1;
  spec.accesses_per_thread = 100;

  runner::StreamOptions options;
  options.max_outstanding = 4;
  runner::StreamStats stats;
  const std::string windowed = stream_json(spec, 2, options, &stats);

  EXPECT_EQ(stats.jobs_total, 16u);
  EXPECT_EQ(stats.cells_emitted, 16u);
  EXPECT_LE(stats.peak_resident_results, 4u);  // O(jobs), not O(grid).
  EXPECT_GT(stats.peak_resident_results, 0u);

  // The throttle must not change a single output byte.
  EXPECT_EQ(windowed, stream_json(spec, 2));
}

TEST(Streaming, ShardsEmitDisjointCellsAndMergeReproducesTheWhole) {
  const auto spec = tiny_spec();
  const std::string reference = stream_json(spec, 2);

  const std::string j1 = temp_path("shard1");
  const std::string j2 = temp_path("shard2");
  remove_journal(j1);
  remove_journal(j2);

  runner::StreamOptions options;
  options.journal_path = j1;
  options.shard = {1, 2};
  runner::StreamStats s1;
  stream_json(spec, 2, options, &s1);
  options.journal_path = j2;
  options.shard = {2, 2};
  runner::StreamStats s2;
  stream_json(spec, 2, options, &s2);
  EXPECT_EQ(s1.jobs_total + s2.jobs_total, spec.job_count());
  EXPECT_EQ(s1.cells_emitted + s2.cells_emitted, spec.cell_count());

  std::ostringstream merged;
  runner::JsonStreamSink sink(merged);
  const runner::StreamStats stats =
      runner::merge_journals(spec, {j2, j1}, sink);  // Order must not matter.
  EXPECT_EQ(stats.jobs_resumed, spec.job_count());
  EXPECT_EQ(merged.str(), reference);

  remove_journal(j1);
  remove_journal(j2);
}

TEST(Streaming, MergeRefusesACorruptShardInsteadOfDroppingItsJobs) {
  const auto spec = tiny_spec();
  const std::string j1 = temp_path("shard1");
  const std::string j2 = temp_path("shard2");
  remove_journal(j1);
  remove_journal(j2);

  runner::StreamOptions options;
  options.journal_path = j1;
  options.shard = {1, 2};
  stream_json(spec, 2, options);
  options.journal_path = j2;
  options.shard = {2, 2};
  stream_json(spec, 2, options);

  // Rot one payload in shard 1: its job is untrusted, so the merge no
  // longer covers the grid and must refuse — never a silently thinner
  // report.
  const runner::JournalIndex index = runner::Journal::load_index(j1);
  flip_byte(runner::journal_data_path(j1),
            index.entries[0].payload_offset + 1);
  std::ostringstream out;
  runner::JsonStreamSink sink(out);
  try {
    runner::merge_journals(spec, {j1, j2}, sink);
    FAIL() << "merge accepted a corrupt shard";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("incomplete"), std::string::npos)
        << e.what();
  }
  remove_journal(j1);
  remove_journal(j2);
}

TEST(Streaming, MergeRejectsOverlapAndIncompleteCoverage) {
  const auto spec = tiny_spec();
  const std::string j1 = temp_path("shard1");
  remove_journal(j1);

  runner::StreamOptions options;
  options.journal_path = j1;
  options.shard = {1, 2};
  stream_json(spec, 2, options);

  std::ostringstream out;
  runner::JsonStreamSink sink(out);
  // Half the grid missing.
  EXPECT_THROW(runner::merge_journals(spec, {j1}, sink), std::runtime_error);
  // Same shard twice: overlapping jobs.
  std::ostringstream out2;
  runner::JsonStreamSink sink2(out2);
  EXPECT_THROW(runner::merge_journals(spec, {j1, j1}, sink2),
               std::runtime_error);
  remove_journal(j1);
}

TEST(Streaming, RefusesToTruncateAnExistingJournalWithoutResume) {
  const auto spec = tiny_spec();
  const std::string path = temp_path("journal");
  remove_journal(path);

  runner::StreamOptions options;
  options.journal_path = path;
  stream_json(spec, 2, options);  // First run journals to completion.

  // Rerunning without resume must refuse, not wipe the journaled work.
  std::ostringstream out;
  runner::JsonStreamSink sink(out);
  EXPECT_THROW(runner::SweepRunner(2).run_streaming(spec, sink, options),
               std::runtime_error);
  EXPECT_EQ(runner::Journal::load_index(path).entries.size(),
            spec.job_count());  // Untouched.
  remove_journal(path);
}

TEST(Streaming, ResumeRejectsSeedDerivationMismatch) {
  const auto spec = tiny_spec();
  const auto jobs = runner::expand_jobs(spec);
  const std::string path = temp_path("journal");
  remove_journal(path);

  runner::JournalMeta meta;
  meta.spec_hash = runner::spec_hash(spec);
  meta.job_count = jobs.size();
  meta.base_seed = spec.base_seed;
  {
    auto journal = runner::Journal::create(path, meta);
    // Journaled under a seed the spec does not derive.
    journal.append(0, jobs[0].request.seed + 1, sample_result(0));
    journal.close();
  }
  runner::StreamOptions options;
  options.journal_path = path;
  options.resume = true;
  std::ostringstream out;
  runner::JsonStreamSink sink(out);
  EXPECT_THROW(runner::SweepRunner(1).run_streaming(spec, sink, options),
               std::runtime_error);
  remove_journal(path);
}

// -------------------------------------------------- crash-resume property ----

TEST(Streaming, ResumeFromAnyKillPointReproducesTheReport) {
  const auto spec = tiny_spec();  // 8 jobs.
  const std::string reference = stream_json(spec, 2);
  const std::string full = temp_path("full");
  remove_journal(full);

  // A completed journal to carve kill points out of.
  runner::StreamOptions options;
  options.journal_path = full;
  ASSERT_EQ(stream_json(spec, 2, options), reference);

  const std::string data_full = runner::journal_data_path(full);
  const std::uint64_t data_size = File(data_full, File::Mode::kRead).size();

  std::mt19937 rng(20260730);
  for (int trial = 0; trial < 8; ++trial) {
    const std::string crash = temp_path("crash" + std::to_string(trial));
    remove_journal(crash);
    write_file_durable(crash, read_file(full));
    write_file_durable(runner::journal_data_path(crash), read_file(data_full));
    // Kill after k completed jobs, optionally mid-append of record k+1
    // (torn record) and/or mid-payload (torn data file).
    const std::uint64_t k = rng() % (spec.job_count() + 1);
    std::uint64_t journal_size =
        runner::Journal::kHeaderSize + k * runner::Journal::kRecordSize;
    if (k < spec.job_count() && rng() % 2 == 0) {
      journal_size += 1 + rng() % (runner::Journal::kRecordSize - 1);
    }
    truncate_file(crash, journal_size);
    if (rng() % 2 == 0) {
      const std::uint64_t chop = rng() % (data_size / 2 + 1);
      truncate_file(runner::journal_data_path(crash), data_size - chop);
    }

    runner::StreamOptions resume;
    resume.journal_path = crash;
    resume.resume = true;
    runner::StreamStats stats;
    EXPECT_EQ(stream_json(spec, 3, resume, &stats), reference)
        << "kill point " << k << ", trial " << trial;
    EXPECT_EQ(stats.jobs_resumed + stats.jobs_executed, spec.job_count());
    remove_journal(crash);
  }
  remove_journal(full);
}

// ------------------------------------- per-cell incremental re-sweep ----

TEST(ResumeCells, CellHashBindsIdentityConfigAndSeeds) {
  const auto spec = tiny_spec();
  // Distinct per cell, stable per call.
  std::set<std::uint64_t> hashes;
  for (std::uint64_t cell = 0; cell < spec.cell_count(); ++cell) {
    const std::uint64_t h = runner::cell_hash(spec, cell);
    EXPECT_EQ(h, runner::cell_hash(spec, cell));
    hashes.insert(h);
  }
  EXPECT_EQ(hashes.size(), spec.cell_count());
  EXPECT_THROW(runner::cell_hash(spec, spec.cell_count()), std::out_of_range);

  // A config edit moves the hash of cells using that config.
  auto edited = spec;
  edited.configs[0].config.l2.size_bytes *= 2;
  EXPECT_NE(runner::cell_hash(edited, 0), runner::cell_hash(spec, 0));
  // A base-seed change moves every cell (replicate seeds are identity).
  auto reseeded = spec;
  reseeded.base_seed += 1;
  for (std::uint64_t cell = 0; cell < spec.cell_count(); ++cell) {
    EXPECT_NE(runner::cell_hash(reseeded, cell), runner::cell_hash(spec, cell));
  }
}

TEST(ResumeCells, EditedConfigRerunsOnlyItsCells) {
  // Two configs: editing one must invalidate exactly its half of the grid.
  auto spec = tiny_spec();
  auto big = tiny_config();
  big.l2 = CacheConfig{64 * kLineBytes, 4, ticks_from_ns(1.0)};
  spec.configs.push_back({"big", big});  // 2 wl x 2 cfg x 2 modes = 8 cells.

  const std::string path = temp_path("journal");
  remove_journal(path);
  runner::StreamOptions options;
  options.journal_path = path;
  options.resume_cells = true;  // Missing journal: created fresh.
  runner::StreamStats stats;
  stream_json(spec, 2, options, &stats);
  EXPECT_EQ(stats.jobs_executed, spec.job_count());

  // Identical resubmission: everything resumes, nothing runs.
  const std::string replay = stream_json(spec, 2, options, &stats);
  EXPECT_EQ(stats.jobs_executed, 0u);
  EXPECT_EQ(stats.jobs_resumed, spec.job_count());

  // Edit the "big" config: its 4 cells (8 jobs) re-run, the "small" 8
  // jobs resume, and the merged bytes equal an uninterrupted run of the
  // edited spec.
  auto edited = spec;
  edited.configs[1].config.l2.ways = 8;
  const std::string reference = stream_json(edited, 2);
  const std::string incremental = stream_json(edited, 2, options, &stats);
  EXPECT_EQ(stats.jobs_executed, spec.job_count() / 2);
  EXPECT_EQ(stats.jobs_resumed, spec.job_count() / 2);
  EXPECT_EQ(incremental, reference);
  remove_journal(path);
}

TEST(ResumeCells, SeedChangeRebindsAndRerunsEverything) {
  const auto spec = tiny_spec();
  const std::string path = temp_path("journal");
  remove_journal(path);
  runner::StreamOptions options;
  options.journal_path = path;
  options.resume_cells = true;
  stream_json(spec, 2, options);

  // resume_cells rebinds instead of refusing: the new base seed
  // invalidates every recorded job, so the whole grid re-runs, and the
  // journal is durably re-stamped for the new identity.
  auto reseeded = spec;
  reseeded.base_seed = 4242;
  runner::StreamStats stats;
  const std::string got = stream_json(reseeded, 2, options, &stats);
  EXPECT_EQ(stats.jobs_executed, spec.job_count());
  EXPECT_EQ(stats.jobs_resumed, 0u);
  EXPECT_EQ(got, stream_json(reseeded, 2));

  // And the rebound journal now resumes under the new identity.
  const std::string replay = stream_json(reseeded, 2, options, &stats);
  EXPECT_EQ(stats.jobs_executed, 0u);
  EXPECT_EQ(stats.jobs_resumed, spec.job_count());
  EXPECT_EQ(replay, got);
  remove_journal(path);
}

TEST(ResumeCells, RequiresUnshardedRunWithJournal) {
  const auto spec = tiny_spec();
  std::ostringstream out;
  runner::JsonStreamSink sink(out);
  runner::StreamOptions options;
  options.resume_cells = true;  // No journal path.
  EXPECT_THROW(runner::SweepRunner(1).run_streaming(spec, sink, options),
               std::invalid_argument);
  options.journal_path = temp_path("journal");
  options.shard = {1, 2, {}};
  EXPECT_THROW(runner::SweepRunner(1).run_streaming(spec, sink, options),
               std::invalid_argument);
}

// ------------------------------------------------------- loud I/O failure ----

TEST(Streaming, ReportWriteFailureThrowsInsteadOfTruncating) {
  std::ofstream dev_full("/dev/full", std::ios::binary);
  if (!dev_full.is_open()) GTEST_SKIP() << "/dev/full not available";
  runner::JsonStreamSink sink(dev_full, "/dev/full");
  const auto spec = tiny_spec();
  EXPECT_THROW(runner::SweepRunner(2).run_streaming(spec, sink),
               std::runtime_error);
}

}  // namespace
}  // namespace allarm
