// The fault-schedule property: under ANY injected fault, a streaming
// sweep either completes with a byte-identical report (the fault was
// absorbed — retried, EINTR'd, delayed, or scheduled past the run) or
// fails loudly and a clean --resume reproduces the reference bytes.
// Plus targeted checks of the self-healing knobs: retry/backoff heals
// transient faults, quarantine converts permanent failures into
// structured `failed` records, and the per-cell watchdog fires without
// perturbing a healthy run's bytes.
#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>

#include "common/failpoint.hh"
#include "common/fileio.hh"
#include "core/experiment.hh"
#include "runner/journal.hh"
#include "runner/report.hh"
#include "runner/sink.hh"
#include "runner/sweep.hh"
#include "workload/profiles.hh"

namespace allarm {
namespace {

std::string temp_path(const std::string& stem) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + std::string(info->test_suite_name()) + "_" +
         info->name() + "_" + stem;
}

void remove_journal(const std::string& path) {
  std::remove(path.c_str());
  std::remove(runner::journal_data_path(path).c_str());
}

SystemConfig tiny_config() {
  SystemConfig config;
  config.num_cores = 4;
  config.mesh_width = 2;
  config.mesh_height = 2;
  config.l1i = CacheConfig{4 * kLineBytes, 2, ticks_from_ns(1.0)};
  config.l1d = CacheConfig{4 * kLineBytes, 2, ticks_from_ns(1.0)};
  config.l2 = CacheConfig{16 * kLineBytes, 2, ticks_from_ns(1.0)};
  config.probe_filter_coverage_bytes = 32 * kLineBytes;
  return config;
}

workload::WorkloadSpec tiny_workload(const std::string& name,
                                     const SystemConfig& config,
                                     std::uint64_t accesses) {
  workload::ProfileParams params;
  params.name = name;
  params.hot_bytes = 8 * 1024;
  params.cold_bytes = 8 * 1024;
  params.kernel_bytes = 32 * 1024;
  params.shared_bytes = 16 * 1024;
  params.pattern = name == "alpha" ? workload::SharedPattern::kUniform
                                   : workload::SharedPattern::kZipf;
  return workload::make_from_params(params, config, accesses, 4);
}

runner::SweepSpec tiny_spec() {
  runner::SweepSpec spec;
  spec.name = "tiny";
  spec.workloads = {"alpha", "beta"};
  spec.configs = {{"small", tiny_config()}};
  spec.modes = {DirectoryMode::kBaseline, DirectoryMode::kAllarm};
  spec.replicates = 2;
  spec.base_seed = 7;
  spec.accesses_per_thread = 200;
  spec.make_workload = tiny_workload;
  return spec;
}

std::string stream_json(const runner::SweepSpec& spec, std::uint32_t jobs,
                        const runner::StreamOptions& options = {},
                        runner::StreamStats* stats_out = nullptr) {
  std::ostringstream out;
  runner::JsonStreamSink sink(out);
  const runner::StreamStats stats =
      runner::SweepRunner(jobs).run_streaming(spec, sink, options);
  if (stats_out != nullptr) *stats_out = stats;
  return out.str();
}

class FaultProperty : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::clear(); }
};

// ----------------------------------------------- the randomized property ----

TEST_F(FaultProperty, EveryScheduleCompletesIdenticalOrResumesToReference) {
  const auto spec = tiny_spec();  // 8 jobs.
  const std::string reference = stream_json(spec, 1);

  // The schedule pool: every fault site the sweep path crosses, with the
  // actions each can express.  Ordinals for fileio.pwrite start past the
  // journal header writes — a fault while creating the journal itself is
  // a start-over, not a resume (the header is the resume anchor).
  struct Site {
    const char* name;
    const char* actions[3];
    std::uint64_t min_at;
  };
  const Site sites[] = {
      {"journal.append", {"err", nullptr, nullptr}, 1},
      {"journal.fsync", {"err", nullptr, nullptr}, 1},
      {"fileio.pwrite", {"err", "torn", "short"}, 4},
      {"fileio.fsync", {"err", "delay", nullptr}, 4},
      {"sink.write", {"err", nullptr, nullptr}, 1},
      {"cell.attempt", {"err", "delay", nullptr}, 1},
  };

  std::mt19937 rng(20260808);
  for (int trial = 0; trial < 14; ++trial) {
    const Site& site = sites[rng() % (sizeof(sites) / sizeof(sites[0]))];
    std::size_t action_count = 0;
    while (action_count < 3 && site.actions[action_count] != nullptr) {
      ++action_count;
    }
    const char* action = site.actions[rng() % action_count];
    const std::uint64_t at = site.min_at + rng() % 24;
    const std::string schedule = std::string(site.name) + "=" + action + "@" +
                                 std::to_string(at);

    const std::string journal = temp_path("trial" + std::to_string(trial));
    remove_journal(journal);
    runner::StreamOptions options;
    options.journal_path = journal;

    std::ostringstream out;
    runner::JsonStreamSink sink(out);
    bool failed = false;
    std::string error;
    {
      failpoint::Scoped guard(schedule);
      try {
        runner::SweepRunner(1).run_streaming(spec, sink, options);
      } catch (const std::exception& e) {
        failed = true;
        error = e.what();
      }
    }
    if (!failed) {
      // The fault was absorbed (or scheduled past the run's polls): not a
      // single output byte may differ.
      EXPECT_EQ(out.str(), reference) << "schedule " << schedule;
    } else {
      // Loud failure: the error names the injection, and a clean resume
      // reproduces the reference exactly.
      EXPECT_NE(error.find("injected fault"), std::string::npos)
          << "schedule " << schedule << " failed with: " << error;
      runner::StreamOptions resume = options;
      resume.resume = true;
      runner::StreamStats stats;
      EXPECT_EQ(stream_json(spec, 1, resume, &stats), reference)
          << "schedule " << schedule << " (failed with: " << error << ")";
      EXPECT_EQ(stats.jobs_resumed + stats.jobs_executed, spec.job_count());
    }
    remove_journal(journal);
  }
}

// -------------------------------------------------------- retry/backoff ----

TEST_F(FaultProperty, RetryHealsTransientFaultsByteIdentically) {
  const auto spec = tiny_spec();
  const std::string reference = stream_json(spec, 1);

  runner::StreamOptions options;
  options.cell_retries = 2;
  options.retry_backoff_ms = 0;  // No need to sleep in tests.

  failpoint::Scoped guard("cell.attempt=err@3");
  runner::StreamStats stats;
  EXPECT_EQ(stream_json(spec, 1, options, &stats), reference);
  EXPECT_EQ(stats.jobs_retried, 1u);
  EXPECT_EQ(stats.jobs_failed, 0u);
  EXPECT_EQ(stats.cells_failed, 0u);
}

TEST_F(FaultProperty, RetriesAreBoundedAndFailFastWithoutQuarantine) {
  const auto spec = tiny_spec();
  runner::StreamOptions options;
  options.cell_retries = 2;
  options.retry_backoff_ms = 0;

  // Job index 1 fails on every attempt: 1 + 2 retries, then abort.
  failpoint::Scoped guard("cell.job=err@1");
  std::ostringstream out;
  runner::JsonStreamSink sink(out);
  try {
    runner::SweepRunner(1).run_streaming(spec, sink, options);
    FAIL() << "permanently failing job did not abort the sweep";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("cell.job"), std::string::npos)
        << e.what();
  }
  // Job 1 polled 3 times (1 attempt + 2 retries); neighbours poll too.
  EXPECT_GE(failpoint::hits("cell.job"), 3u);
}

// ------------------------------------------------------------ quarantine ----

TEST_F(FaultProperty, QuarantineEmitsStructuredFailureAndResumesToClean) {
  const auto spec = tiny_spec();
  const std::string reference = stream_json(spec, 1);
  const std::string journal = temp_path("journal");
  remove_journal(journal);

  runner::StreamOptions options;
  options.journal_path = journal;
  options.quarantine = true;
  options.cell_retries = 1;
  options.retry_backoff_ms = 0;

  runner::StreamStats stats;
  std::string degraded;
  {
    failpoint::Scoped guard("cell.job=err@2");
    degraded = stream_json(spec, 1, options, &stats);
  }
  EXPECT_EQ(stats.jobs_failed, 1u);
  EXPECT_EQ(stats.jobs_retried, 1u);
  EXPECT_EQ(stats.cells_failed, 1u);
  EXPECT_EQ(stats.cells_emitted, spec.cell_count());  // The sweep finished.
  EXPECT_NE(degraded.find("\"failed\""), std::string::npos);
  EXPECT_NE(degraded.find("injected fault (failpoint cell.job)"),
            std::string::npos);
  EXPECT_NE(degraded.find("\"attempts\":2"), std::string::npos);
  EXPECT_NE(degraded, reference);

  // Resume re-runs exactly the quarantined job and recovers the reference.
  runner::StreamOptions resume;
  resume.journal_path = journal;
  resume.resume = true;
  runner::StreamStats resumed;
  EXPECT_EQ(stream_json(spec, 1, resume, &resumed), reference);
  EXPECT_EQ(resumed.jobs_executed, 1u);
  EXPECT_EQ(resumed.jobs_resumed, spec.job_count() - 1);
  EXPECT_EQ(resumed.jobs_failed, 0u);
  remove_journal(journal);
}

TEST_F(FaultProperty, QuarantinedShardsMergeAsDegradedNotMissing) {
  const auto spec = tiny_spec();
  const std::string j1 = temp_path("shard1");
  const std::string j2 = temp_path("shard2");
  remove_journal(j1);
  remove_journal(j2);

  runner::StreamOptions options;
  options.quarantine = true;
  options.journal_path = j1;
  options.shard = {1, 2};
  {
    failpoint::Scoped guard("cell.job=err@0:0");  // Every job this shard owns.
    stream_json(spec, 1, options);
  }
  options.journal_path = j2;
  options.shard = {2, 2};
  stream_json(spec, 1, options);  // Healthy shard.

  std::ostringstream merged;
  runner::JsonStreamSink sink(merged);
  const runner::StreamStats stats =
      runner::merge_journals(spec, {j1, j2}, sink);
  EXPECT_GT(stats.jobs_failed, 0u);
  EXPECT_GT(stats.cells_failed, 0u);
  EXPECT_EQ(stats.cells_emitted, spec.cell_count());
  EXPECT_NE(merged.str().find("\"failed\""), std::string::npos);
  remove_journal(j1);
  remove_journal(j2);
}

// -------------------------------------------------------------- watchdog ----

TEST_F(FaultProperty, TinyCellTimeoutQuarantinesWithWatchdogDiagnostic) {
  const auto spec = tiny_spec();
  runner::StreamOptions options;
  options.quarantine = true;
  options.cell_timeout_ns = 1;  // Every job blows the deadline immediately.

  runner::StreamStats stats;
  const std::string degraded = stream_json(spec, 1, options, &stats);
  EXPECT_EQ(stats.jobs_failed, spec.job_count());
  EXPECT_EQ(stats.cells_emitted, spec.cell_count());
  EXPECT_NE(degraded.find("no-progress watchdog"), std::string::npos);
  EXPECT_NE(degraded.find("deadline"), std::string::npos);
}

TEST_F(FaultProperty, GenerousCellTimeoutDoesNotPerturbAByte) {
  const auto spec = tiny_spec();
  const std::string reference = stream_json(spec, 1);
  runner::StreamOptions options;
  options.cell_timeout_ns = 300ull * 1000 * 1000 * 1000;  // 5 minutes.
  runner::StreamStats stats;
  EXPECT_EQ(stream_json(spec, 2, options, &stats), reference);
  EXPECT_EQ(stats.jobs_failed, 0u);
}

}  // namespace
}  // namespace allarm
