// The service crash property: SIGKILL the whole service process at random
// points, restart it, and every accepted request still completes — with a
// report byte-identical to an uninterrupted in-process run.  The kills are
// real (fork + SIGKILL, no cooperation), so every crash window in the
// spool state machine and the journal append path gets exercised: torn
// admissions replay, `running` requests resume through their journals,
// and no state file is ever left unreadable.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <random>
#include <sstream>
#include <string>

#include "common/fileio.hh"
#include "runner/report.hh"
#include "runner/sink.hh"
#include "runner/sweep.hh"
#include "service/service.hh"
#include "service/spool.hh"

namespace allarm {
namespace {

std::string temp_path(const std::string& stem) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + std::string(info->test_suite_name()) + "_" +
         info->name() + "_" + stem;
}

/// One service pass over the spool in a forked child, SIGKILLed after
/// `kill_after_us` (or run to idle when negative).  Returns the child's
/// exit code, or -1 when it was killed.
int service_pass(const std::string& root, long kill_after_us) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Child: a fresh single-threaded process (fork clones only the calling
    // thread), so the service's own pool threads start clean.
    service::ServiceConfig config;
    config.root = root;
    config.workers = 2;
    config.max_active = 2;
    config.poll_ms = 10;
    config.exit_when_idle = true;
    std::atomic<bool> stop{false};
    int code = 1;
    try {
      code = service::Service(config).run(stop);
    } catch (...) {
      code = 1;
    }
    ::_exit(code);
  }
  EXPECT_GT(pid, 0);
  if (kill_after_us >= 0) {
    ::usleep(static_cast<useconds_t>(kill_after_us));
    ::kill(pid, SIGKILL);
  }
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  if (WIFSIGNALED(status)) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : 1;
}

/// The uninterrupted reference: the same request run in-process through
/// the same streaming fold the service uses.
std::string direct_report(const std::string& request_json) {
  const service::Request request = service::parse_request(request_json);
  std::ostringstream out;
  runner::JsonStreamSink sink(out);
  runner::SweepRunner(2).run_streaming(service::spec_of(request), sink);
  return out.str();
}

TEST(ServiceCrashProperty, RandomSigkillsLoseNoAcceptedWork) {
  const std::string root = temp_path("spool");
  ASSERT_EQ(std::system(("rm -rf '" + root + "'").c_str()), 0);

  const std::string request_a = R"({"grid": "quick", "seeds": 1, "seed": 5})";
  const std::string request_b = R"({"grid": "quick", "seeds": 1, "seed": 6})";
  service::Spool::enqueue(root, "alpha", request_a);
  service::Spool::enqueue(root, "beta", request_b);

  // Kill the service at random points until a pass survives to idle.  The
  // delays sweep the interesting windows: intake (admission renames),
  // activation (state flips to running), and mid-sweep (journal appends).
  std::mt19937 rng(20260808);
  bool completed = false;
  for (int trial = 0; trial < 12 && !completed; ++trial) {
    const long delay_us = 1000 + static_cast<long>(rng() % 900000);
    const int code = service_pass(root, delay_us);
    if (code == 0) completed = true;  // Finished before the kill landed.
  }
  if (!completed) {
    ASSERT_EQ(service_pass(root, -1), 0);  // The clean final pass.
  }

  service::Spool spool(root);
  EXPECT_EQ(spool.state("alpha"), service::RequestState::kDone);
  EXPECT_EQ(spool.state("beta"), service::RequestState::kDone);
  EXPECT_TRUE(spool.queued().empty());
  EXPECT_EQ(read_file(spool.report_json("alpha")), direct_report(request_a));
  EXPECT_EQ(read_file(spool.report_json("beta")), direct_report(request_b));
}

TEST(ServiceCrashProperty, KillDuringEveryEarlyWindowStillRecovers) {
  // Deterministic sweep of the first 20 ms in 2 ms steps: these land in
  // the enqueue-scan/admit/state-flip windows that the random sweep above
  // may jump over.
  const std::string root = temp_path("spool");
  ASSERT_EQ(std::system(("rm -rf '" + root + "'").c_str()), 0);
  const std::string request = R"({"grid": "quick", "seeds": 1, "seed": 9})";
  service::Spool::enqueue(root, "early", request);

  for (long delay_us = 0; delay_us <= 20000; delay_us += 2000) {
    service_pass(root, delay_us);
    // Whatever the kill tore, the spool must still be readable.
    service::Spool spool(root);
    for (const std::string& id : spool.requests()) {
      EXPECT_NO_THROW(spool.state(id));
    }
  }
  ASSERT_EQ(service_pass(root, -1), 0);
  service::Spool spool(root);
  EXPECT_EQ(spool.state("early"), service::RequestState::kDone);
  EXPECT_EQ(read_file(spool.report_json("early")), direct_report(request));
}

}  // namespace
}  // namespace allarm
