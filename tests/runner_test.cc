// Tests for the parallel sweep runner: per-cell seed derivation, the
// work-stealing pool, scheduling-independent sweep output, and the
// ALLARM_JOBS environment handling the ported benches rely on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>

#include "core/experiment.hh"
#include "runner/job.hh"
#include "runner/report.hh"
#include "runner/sweep.hh"
#include "runner/thread_pool.hh"
#include "workload/profiles.hh"

namespace allarm {
namespace {

// ------------------------------------------------------------- job seeds ----

TEST(JobSeed, DeterministicAndCoordinateSensitive) {
  EXPECT_EQ(runner::job_seed(42, 3, 1), runner::job_seed(42, 3, 1));
  EXPECT_NE(runner::job_seed(42, 3, 1), runner::job_seed(42, 4, 1));
  EXPECT_NE(runner::job_seed(42, 3, 1), runner::job_seed(42, 3, 2));
  EXPECT_NE(runner::job_seed(42, 3, 1), runner::job_seed(43, 3, 1));
}

TEST(JobSeed, DistinctAcrossAGrid) {
  std::set<std::uint64_t> seeds;
  for (std::uint32_t w = 0; w < 16; ++w) {
    for (std::uint32_t r = 0; r < 8; ++r) {
      seeds.insert(runner::job_seed(42, w, r));
    }
  }
  EXPECT_EQ(seeds.size(), 16u * 8u);
}

TEST(JobSeed, NeverZero) {
  // xoshiro cannot leave the all-zero state; the derivation guards it.
  for (std::uint64_t base : {0ull, 1ull, 42ull}) {
    EXPECT_NE(runner::job_seed(base, 0, 0), 0u);
  }
}

// ----------------------------------------------------------- thread pool ----

TEST(ThreadPool, RunsEveryTaskAndIsReusable) {
  runner::ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);

  for (int i = 0; i < 50; ++i) pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 150);
}

TEST(ThreadPool, ZeroWorkersClampsToOne) {
  runner::ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  runner::ThreadPool pool(2);
  pool.wait_idle();  // Nothing submitted; must not hang.
}

TEST(ThreadPool, RejectsEmptyTasks) {
  runner::ThreadPool pool(1);
  EXPECT_THROW(pool.submit(runner::ThreadPool::Task{}), std::invalid_argument);
  pool.wait_idle();  // The rejected task must not wedge the pool.
}

TEST(ThreadPool, PropagatesTheFirstWorkerExceptionFromWaitIdle) {
  // A throwing task must surface at wait_idle() — never std::terminate,
  // never silently swallowed.
  runner::ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&count, i] {
      ++count;
      if (i == 7) throw std::runtime_error("task 7 exploded");
    });
  }
  try {
    pool.wait_idle();
    FAIL() << "worker exception was not rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 7 exploded");
  }
  EXPECT_EQ(count.load(), 20);  // The failure did not cancel other tasks.

  // The error slot is consumed: the pool keeps working afterwards.
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 21);
}

TEST(ThreadPool, KeepsOnlyTheFirstOfManyErrors) {
  runner::ThreadPool pool(1);  // One worker: deterministic error order.
  for (int i = 0; i < 3; ++i) {
    pool.submit([i] { throw std::runtime_error("error " + std::to_string(i)); });
  }
  try {
    pool.wait_idle();
    FAIL() << "worker exceptions were not rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "error 0");
  }
}

TEST(ThreadPool, NestedPoolsDrainIndependently) {
  // The shard+sweep contention shape: sweep-pool workers each drive their
  // own flush pool (parallel::run_lax does exactly this with
  // RunOptions::par_pool).  Waiting on the inner pool from an outer worker
  // must not deadlock, and every subtask must run.
  runner::ThreadPool outer(2);
  std::atomic<int> subtasks{0};
  for (int job = 0; job < 4; ++job) {
    outer.submit([&subtasks] {
      runner::ThreadPool inner(2);
      for (int i = 0; i < 3; ++i) inner.submit([&subtasks] { ++subtasks; });
      inner.wait_idle();
    });
  }
  outer.wait_idle();
  EXPECT_EQ(subtasks.load(), 12);
}

TEST(ThreadPool, SharedInnerPoolUnderOuterContention) {
  // Several outer workers submitting to ONE shared inner pool (the budget
  // split makes this jobs x shards <= --jobs): counts must come out exact
  // and wait_idle on the outer pool must observe all inner completions
  // that its own tasks waited for.
  runner::ThreadPool outer(3);
  runner::ThreadPool shared_inner(2);
  std::atomic<int> done{0};
  std::mutex inner_wait;  // wait_idle is pool-global; serialize the waiters.
  for (int job = 0; job < 6; ++job) {
    outer.submit([&shared_inner, &done, &inner_wait] {
      std::lock_guard<std::mutex> lock(inner_wait);
      for (int i = 0; i < 4; ++i) shared_inner.submit([&done] { ++done; });
      shared_inner.wait_idle();
    });
  }
  outer.wait_idle();
  EXPECT_EQ(done.load(), 24);
}

TEST(ThreadPool, NestedExceptionPropagatesThroughBothPools) {
  // An inner-pool failure surfaces at the inner wait_idle (inside the outer
  // task), leaks from that task, and resurfaces at the OUTER wait_idle —
  // the path a lax flush error would take through a sweep job.
  runner::ThreadPool outer(2);
  outer.submit([] {
    runner::ThreadPool inner(2);
    inner.submit([] { throw std::runtime_error("flush failed"); });
    inner.wait_idle();  // Rethrows; escapes this outer task.
  });
  try {
    outer.wait_idle();
    FAIL() << "nested exception was not rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "flush failed");
  }
}

// ------------------------------------------------------------ sweep grid ----

/// A 4-node machine with shrunken caches: big enough to exercise the
/// protocol, small enough that a sweep of tiny workloads runs in
/// milliseconds.
SystemConfig tiny_config() {
  SystemConfig config;
  config.num_cores = 4;
  config.mesh_width = 2;
  config.mesh_height = 2;
  config.l1i = CacheConfig{4 * kLineBytes, 2, ticks_from_ns(1.0)};
  config.l1d = CacheConfig{4 * kLineBytes, 2, ticks_from_ns(1.0)};
  config.l2 = CacheConfig{16 * kLineBytes, 2, ticks_from_ns(1.0)};
  config.probe_filter_coverage_bytes = 32 * kLineBytes;
  return config;
}

/// Two synthetic micro-profiles ("alpha", "beta") on 4 threads.
workload::WorkloadSpec tiny_workload(const std::string& name,
                                     const SystemConfig& config,
                                     std::uint64_t accesses) {
  workload::ProfileParams params;
  params.name = name;
  params.hot_bytes = 8 * 1024;
  params.cold_bytes = 8 * 1024;
  params.kernel_bytes = 32 * 1024;
  params.shared_bytes = 16 * 1024;
  params.pattern = name == "alpha" ? workload::SharedPattern::kUniform
                                   : workload::SharedPattern::kZipf;
  return workload::make_from_params(params, config, accesses, 4);
}

runner::SweepSpec tiny_spec() {
  runner::SweepSpec spec;
  spec.name = "tiny";
  spec.workloads = {"alpha", "beta"};
  spec.configs = {{"small", tiny_config()}};
  spec.modes = {DirectoryMode::kBaseline, DirectoryMode::kAllarm};
  spec.replicates = 2;
  spec.base_seed = 7;
  spec.accesses_per_thread = 200;
  spec.make_workload = tiny_workload;
  return spec;
}

TEST(SweepRunner, ExpandsJobsInGridOrderWithPositionalSeeds) {
  const auto spec = tiny_spec();
  const auto jobs = runner::expand_jobs(spec);
  ASSERT_EQ(jobs.size(), spec.job_count());
  ASSERT_EQ(jobs.size(), 2u * 1u * 2u * 2u);

  std::size_t i = 0;
  for (std::uint32_t w = 0; w < 2; ++w) {
    for (std::uint32_t m = 0; m < 2; ++m) {
      for (std::uint32_t r = 0; r < 2; ++r, ++i) {
        EXPECT_EQ(jobs[i].coord.workload, w);
        EXPECT_EQ(jobs[i].coord.mode, m);
        EXPECT_EQ(jobs[i].coord.replicate, r);
        // Seeds depend only on (workload, replicate): the same workload
        // stream replays on every machine variant being compared.
        EXPECT_EQ(jobs[i].request.seed,
                  runner::job_seed(spec.base_seed, w, r));
      }
    }
  }
}

TEST(SweepRunner, OutputIsIdenticalAtAnyJobCount) {
  const auto spec = tiny_spec();
  const auto serial = runner::SweepRunner(1).run(spec);
  const auto parallel = runner::SweepRunner(8).run(spec);
  EXPECT_EQ(parallel.jobs_used, 8u);
  EXPECT_EQ(runner::to_json(serial), runner::to_json(parallel));
  EXPECT_EQ(runner::to_csv(serial), runner::to_csv(parallel));

  // And across repeated runs at a third worker count.
  const auto again = runner::SweepRunner(3).run(spec);
  EXPECT_EQ(runner::to_json(serial), runner::to_json(again));
}

TEST(SweepRunner, AggregatesReplicatesPerCell) {
  const auto spec = tiny_spec();
  const auto result = runner::SweepRunner(4).run(spec);
  ASSERT_EQ(result.cells.size(), 4u);  // 2 workloads x 1 config x 2 modes.
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.runs.size(), 2u);
    EXPECT_EQ(cell.seeds.size(), 2u);
    EXPECT_EQ(cell.runtime.count, 2u);
    EXPECT_GT(cell.runtime.mean, 0.0);
    EXPECT_GE(cell.runtime.max, cell.runtime.min);
    EXPECT_FALSE(cell.stats.empty());
    for (const auto& [name, summary] : cell.stats) {
      EXPECT_EQ(summary.count, 2u) << name;
    }
  }
  // Baseline and ALLARM cells of one workload ran the same seeds.
  const auto* base = result.find("alpha", "small", DirectoryMode::kBaseline);
  const auto* allarm = result.find("alpha", "small", DirectoryMode::kAllarm);
  ASSERT_NE(base, nullptr);
  ASSERT_NE(allarm, nullptr);
  EXPECT_EQ(base->seeds, allarm->seeds);

  const auto pair = result.pair("alpha", "small");
  EXPECT_GT(pair.speedup(), 0.0);
}

TEST(SweepRunner, RejectsEmptyAxes) {
  auto spec = tiny_spec();
  spec.modes.clear();
  EXPECT_THROW(runner::SweepRunner(1).run(spec), std::invalid_argument);
}

// ---------------------------------------------------------------- report ----

TEST(Report, JsonIsWellFormedEnoughToSpotCheck) {
  const auto result = runner::SweepRunner(2).run(tiny_spec());
  const std::string json = runner::to_json(result);
  EXPECT_NE(json.find("\"sweep\": \"tiny\""), std::string::npos);
  EXPECT_NE(json.find("\"workload\": \"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"allarm\""), std::string::npos);
  EXPECT_NE(json.find("\"runtime\""), std::string::npos);
  // Execution metadata must not leak into the report.
  EXPECT_EQ(json.find("jobs"), std::string::npos);
  EXPECT_EQ(json.find("wall"), std::string::npos);

  const std::string csv = runner::to_csv(result);
  EXPECT_NE(csv.find("sweep,workload,config,mode,metric,count,mean,stddev,"
                     "min,max"),
            std::string::npos);
  EXPECT_NE(csv.find("tiny,alpha,small,baseline,runtime,"), std::string::npos);
}

// ----------------------------------------------------- summary + numbers ----

TEST(Summary, WelfordMatchesClosedForm) {
  const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_NEAR(s.stddev(), 2.138089935, 1e-9);  // Sample stddev.
}

TEST(Summary, FewerThanTwoValues) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  s.add(3.5);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(JsonHelpers, NumbersAndStrings) {
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(-3.0), "-3");
  EXPECT_EQ(json_number(0.5), "0.5");
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
}

// ----------------------------------------------------------- ALLARM_JOBS ----

class BenchJobsEnv : public ::testing::Test {
 protected:
  void SetUp() override { unsetenv("ALLARM_JOBS"); }
  void TearDown() override { unsetenv("ALLARM_JOBS"); }
};

TEST_F(BenchJobsEnv, ReadsEnvironmentVariable) {
  setenv("ALLARM_JOBS", "5", 1);
  EXPECT_EQ(core::bench_jobs(), 5u);
  EXPECT_EQ(core::bench_jobs(3), 5u);  // Env wins over the fallback.
}

TEST_F(BenchJobsEnv, FallsBackWhenUnsetOrInvalid) {
  EXPECT_EQ(core::bench_jobs(3), 3u);
  const unsigned hw = std::thread::hardware_concurrency();
  EXPECT_EQ(core::bench_jobs(), hw > 0 ? hw : 1u);

  setenv("ALLARM_JOBS", "0", 1);
  EXPECT_EQ(core::bench_jobs(3), 3u);
  setenv("ALLARM_JOBS", "not-a-number", 1);
  EXPECT_EQ(core::bench_jobs(3), 3u);
}

TEST_F(BenchJobsEnv, SweepRunnerConsumesIt) {
  setenv("ALLARM_JOBS", "2", 1);
  EXPECT_EQ(runner::SweepRunner().jobs(), 2u);
  EXPECT_EQ(runner::SweepRunner(6).jobs(), 6u);  // Explicit wins.
}

}  // namespace
}  // namespace allarm
