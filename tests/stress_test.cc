// Stress tests: contention storms, writeback-buffer churn, broadcast
// invalidation fan-out, alternate mesh geometries - the protocol paths
// that only misbehave under pressure.
#include <gtest/gtest.h>

#include "coherence/directory.hh"
#include "test_util.hh"

namespace allarm {
namespace {

using test::load;
using test::make_scripted;
using test::priv;
using test::run_scripted;
using test::ScriptThread;
using test::small_config;
using test::store;

TEST(Stress, SixteenWritersOneLine) {
  // Every core hammers the same line with stores: transactions serialize at
  // the home directory, ownership migrates 16 x 40 times, and exactly one
  // M copy may survive.
  std::vector<ScriptThread> threads;
  for (NodeId n = 0; n < 16; ++n) {
    std::vector<workload::Access> script(40, store(priv(20, 0)));
    threads.push_back({n, std::move(script), ticks_from_ns(1.0) * n, 0});
  }
  for (auto mode : {DirectoryMode::kBaseline, DirectoryMode::kAllarm}) {
    auto ran = run_scripted(small_config(), mode,
                            make_scripted(threads), 7);
    const LineAddr line =
        line_of(*ran.system->os().translate(0, priv(20, 0)));
    int holders = 0;
    for (NodeId n = 0; n < 16; ++n) {
      holders += ran.system->cache(n).hierarchy().locate(line).present();
    }
    EXPECT_EQ(holders, 1);
    EXPECT_GT(ran.result.stats.get("dir.queued_ops"), 0.0);
    EXPECT_EQ(ran.result.stats.get("sanity.anomalies"), 0.0);
  }
}

TEST(Stress, ReadersThenWriterBroadcast) {
  // 15 cores read a line (unknown sharer set under Hammer), then one core
  // writes: the broadcast invalidation must reach every copy.
  std::vector<ScriptThread> threads;
  for (NodeId n = 0; n < 15; ++n) {
    threads.push_back({n, {load(priv(21, 0))}, ticks_from_ns(2.0) * n, 0});
  }
  threads.push_back(
      {15, {store(priv(21, 0))}, ticks_from_ns(5000.0), 0});
  auto ran = run_scripted(small_config(), DirectoryMode::kBaseline,
                          make_scripted(threads), 7);
  const LineAddr line = line_of(*ran.system->os().translate(0, priv(21, 0)));
  for (NodeId n = 0; n < 15; ++n) {
    EXPECT_FALSE(ran.system->cache(n).hierarchy().locate(line).present())
        << "sharer " << n << " survived the broadcast";
  }
  EXPECT_EQ(ran.system->cache(15).hierarchy().locate(line).state,
            cache::LineState::kModified);
}

TEST(Stress, WritebackBufferChurn) {
  // A tiny cache and a working set that wraps through it repeatedly:
  // every reuse finds the line recently evicted, exercising the
  // writeback-buffer wait-and-retry path.
  SystemConfig config = small_config();
  std::vector<workload::Access> script;
  for (int rep = 0; rep < 30; ++rep) {
    for (std::uint32_t i = 0; i < 40; ++i) {
      script.push_back(store(priv(0, i)));
    }
  }
  auto ran = run_scripted(config, DirectoryMode::kBaseline,
                          make_scripted({{0, script}}), 7);
  EXPECT_GT(ran.system->cache(0).stats().puts_dirty, 0u);
  EXPECT_EQ(ran.result.stats.get("sanity.wbb_collisions"), 0.0);
  EXPECT_EQ(ran.result.stats.get("sanity.puts_stale"), 0.0);
}

TEST(Stress, PingPongProducerConsumer) {
  // Two cores alternate store/load on the same line: ownership ping-pongs
  // through the Owned state (dirty sharing) without ever writing back
  // stale data paths.
  std::vector<workload::Access> ping, pong;
  for (int i = 0; i < 60; ++i) {
    ping.push_back(store(priv(22, 0)));
    pong.push_back(load(priv(22, 0)));
  }
  auto spec = make_scripted({
      {3, ping, 0, 0},
      {12, pong, ticks_from_ns(40.0), 0},
  });
  for (auto mode : {DirectoryMode::kBaseline, DirectoryMode::kAllarm}) {
    auto ran = run_scripted(small_config(), mode, spec, 7);
    EXPECT_EQ(ran.result.stats.get("sanity.anomalies"), 0.0);
    EXPECT_EQ(ran.result.stats.get("sanity.upgrade_without_line"), 0.0);
  }
}

TEST(Stress, HotspotDirectory) {
  // All 16 cores stream over data homed at node 0 (the blackscholes
  // pattern): node 0's directory serializes per line but handles disjoint
  // lines concurrently, and the mesh links toward node 0 carry the load.
  std::vector<ScriptThread> threads;
  for (NodeId n = 0; n < 16; ++n) {
    std::vector<workload::Access> script;
    for (std::uint32_t i = 0; i < 80; ++i) {
      script.push_back(load(priv(23, (n * 80 + i) % 512)));
    }
    threads.push_back({n, std::move(script), ticks_from_ns(1.0) * n, 0});
  }
  SystemConfig config = small_config();
  config.directory_mode = DirectoryMode::kBaseline;
  core::System system(config);
  // Home every page of region 23 at node 0 up front.
  for (Addr a = priv(23, 0); a < priv(23, 512); a += kPageBytes) {
    system.os().touch(0, a, 0);
  }
  core::RunOptions options;
  options.seed = 7;
  const auto r = system.run(make_scripted(std::move(threads)), options);
  EXPECT_GT(system.directory(0).stats().remote_requests, 0u);
  EXPECT_GT(system.mesh().max_link_busy_time(), 0u);
  EXPECT_EQ(r.stats.get("sanity.anomalies"), 0.0);
}

TEST(Stress, AlternateMeshGeometry) {
  // An 8x2 mesh with 16 cores: routing, homes and the protocol must work
  // for non-square layouts.
  SystemConfig config;
  config.mesh_width = 8;
  config.mesh_height = 2;
  config.directory_mode = DirectoryMode::kAllarm;
  std::vector<ScriptThread> threads;
  for (NodeId n = 0; n < 16; ++n) {
    std::vector<workload::Access> script;
    for (std::uint32_t i = 0; i < 50; ++i) {
      script.push_back(i % 4 == 0 ? store(priv(n, i)) : load(priv(n, i)));
    }
    threads.push_back({n, std::move(script), ticks_from_ns(1.0) * n, 0});
  }
  auto ran = run_scripted(config, DirectoryMode::kAllarm,
                          make_scripted(std::move(threads)), 7);
  EXPECT_GT(ran.result.stats.get("dir.local_no_alloc"), 0.0);
  EXPECT_EQ(ran.result.stats.get("sanity.anomalies"), 0.0);
}

TEST(Stress, FourNodeMesh) {
  SystemConfig config;
  config.mesh_width = 2;
  config.mesh_height = 2;
  config.num_cores = 4;
  config.dram_total_bytes = 512ull * 1024 * 1024;
  std::vector<ScriptThread> threads;
  for (NodeId n = 0; n < 4; ++n) {
    std::vector<workload::Access> script;
    for (std::uint32_t i = 0; i < 100; ++i) {
      script.push_back(load(priv(30, i)));  // Everybody shares region 30.
    }
    threads.push_back({n, std::move(script), ticks_from_ns(1.0) * n, 0});
  }
  auto ran = run_scripted(config, DirectoryMode::kBaseline,
                          make_scripted(std::move(threads)), 7);
  EXPECT_EQ(ran.result.stats.get("sanity.anomalies"), 0.0);
}

TEST(Stress, TinyDirectoryUnderSharingStorm) {
  // A 1-set probe filter with 16 cores sharing 12 colliding lines: the
  // victim-pinning path (all ways busy) and eviction broadcasts fire
  // constantly; the run must stay sound.
  SystemConfig config = small_config();
  config.probe_filter_coverage_bytes = 4 * kLineBytes;  // 1 set x 4 ways.
  std::vector<ScriptThread> threads;
  Rng rng(99);
  for (NodeId n = 0; n < 16; ++n) {
    std::vector<workload::Access> script;
    for (int i = 0; i < 120; ++i) {
      // Twelve lines in ONE page: a single home directory whose one-set
      // filter cannot hold them all.
      const auto line = static_cast<std::uint32_t>(rng.below(12));
      script.push_back(rng.chance(0.3) ? store(priv(24, line))
                                       : load(priv(24, line)));
    }
    threads.push_back({n, std::move(script), ticks_from_ns(1.0) * n, 0});
  }
  for (auto mode : {DirectoryMode::kBaseline, DirectoryMode::kAllarm}) {
    auto ran = run_scripted(config, mode, make_scripted(threads), 7);
    EXPECT_GT(ran.result.stats.get("dir.pf_evictions"), 0.0);
    EXPECT_EQ(ran.result.stats.get("sanity.anomalies"), 0.0);
    EXPECT_EQ(ran.result.stats.get("sanity.upgrade_without_line"), 0.0);
  }
}

TEST(Stress, MixedInstructionAndDataSharing) {
  // Instruction fetches of shared code plus data writes to nearby lines.
  std::vector<ScriptThread> threads;
  for (NodeId n = 0; n < 8; ++n) {
    std::vector<workload::Access> script;
    for (std::uint32_t i = 0; i < 60; ++i) {
      if (i % 3 == 0) {
        script.push_back({priv(25, i % 16), AccessType::kInstFetch});
      } else {
        script.push_back(store(priv(26 + n, i)));
      }
    }
    threads.push_back({n, std::move(script), ticks_from_ns(1.0) * n, 0});
  }
  auto ran = run_scripted(small_config(), DirectoryMode::kAllarm,
                          make_scripted(std::move(threads)), 7);
  EXPECT_GT(ran.result.stats.get("cache.ifetches"), 0.0);
  EXPECT_EQ(ran.result.stats.get("sanity.anomalies"), 0.0);
}

}  // namespace
}  // namespace allarm
