// Unit tests for replacement policies, the cache array, and the exclusive
// L1/L2 hierarchy.
#include <gtest/gtest.h>

#include <set>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "common/config.hh"

namespace allarm::cache {
namespace {

CacheConfig tiny_cache(std::uint32_t lines, std::uint32_t ways) {
  CacheConfig c;
  c.size_bytes = lines * kLineBytes;
  c.ways = ways;
  return c;
}

// ----------------------------------------------------------- replacement ----

TEST(Lru, EvictsLeastRecentlyUsed) {
  LruPolicy lru(1, 4);
  for (std::uint32_t w = 0; w < 4; ++w) lru.touch(0, w);
  lru.touch(0, 0);  // Way 0 becomes MRU; way 1 is now LRU.
  std::vector<bool> all(4, true);
  EXPECT_EQ(lru.victim(0, all), 1u);
}

TEST(Lru, HonoursEligibility) {
  LruPolicy lru(1, 4);
  for (std::uint32_t w = 0; w < 4; ++w) lru.touch(0, w);
  std::vector<bool> eligible{false, false, true, true};
  EXPECT_EQ(lru.victim(0, eligible), 2u);
}

TEST(Lru, ThrowsWhenNothingEligible) {
  LruPolicy lru(1, 2);
  std::vector<bool> none(2, false);
  EXPECT_THROW(lru.victim(0, none), std::logic_error);
}

TEST(Lru, SetsAreIndependent) {
  LruPolicy lru(2, 2);
  lru.touch(0, 0);
  lru.touch(0, 1);
  lru.touch(1, 1);
  lru.touch(1, 0);
  std::vector<bool> all(2, true);
  EXPECT_EQ(lru.victim(0, all), 0u);
  EXPECT_EQ(lru.victim(1, all), 1u);
}

TEST(TreePlru, VictimAvoidsRecentlyTouched) {
  TreePlruPolicy plru(1, 4);
  std::vector<bool> all(4, true);
  for (std::uint32_t w = 0; w < 4; ++w) plru.touch(0, w);
  const std::uint32_t victim = plru.victim(0, all);
  EXPECT_NE(victim, 3u);  // Way 3 was touched last.
}

TEST(TreePlru, RequiresPowerOfTwoWays) {
  EXPECT_THROW(TreePlruPolicy(1, 3), std::invalid_argument);
}

TEST(TreePlru, FallsBackWhenImpliedVictimPinned) {
  TreePlruPolicy plru(1, 4);
  std::vector<bool> all(4, true);
  const std::uint32_t implied = plru.victim(0, all);
  std::vector<bool> eligible(4, true);
  eligible[implied] = false;
  const std::uint32_t fallback = plru.victim(0, eligible);
  EXPECT_NE(fallback, implied);
  EXPECT_TRUE(eligible[fallback]);
}

TEST(Random, DeterministicPerSeed) {
  RandomPolicy a(1, 4, 99), b(1, 4, 99);
  std::vector<bool> all(4, true);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.victim(0, all), b.victim(0, all));
}

TEST(Random, OnlyPicksEligible) {
  RandomPolicy r(1, 4, 5);
  std::vector<bool> eligible{false, true, false, true};
  for (int i = 0; i < 100; ++i) {
    const auto v = r.victim(0, eligible);
    EXPECT_TRUE(v == 1u || v == 3u);
  }
}

TEST(Factory, BuildsAllKinds) {
  EXPECT_NE(make_policy(ReplacementKind::kLru, 2, 2, 0), nullptr);
  EXPECT_NE(make_policy(ReplacementKind::kTreePlru, 2, 2, 0), nullptr);
  EXPECT_NE(make_policy(ReplacementKind::kRandom, 2, 2, 0), nullptr);
}

// ------------------------------------------------------------------ cache ----

TEST(Cache, InsertFindErase) {
  Cache c(tiny_cache(8, 2), ReplacementKind::kLru, 0, "t");
  EXPECT_FALSE(c.contains(100));
  EXPECT_FALSE(c.insert(100, LineState::kExclusive).valid());
  EXPECT_EQ(c.state_of(100), LineState::kExclusive);
  EXPECT_EQ(c.occupancy(), 1u);
  EXPECT_EQ(c.erase(100), LineState::kExclusive);
  EXPECT_EQ(c.occupancy(), 0u);
  EXPECT_EQ(c.erase(100), LineState::kInvalid);
}

TEST(Cache, EvictsWithinSetWhenFull) {
  Cache c(tiny_cache(4, 2), ReplacementKind::kLru, 0, "t");  // 2 sets x 2 ways.
  // Lines 0, 2, 4 all map to set 0.
  c.insert(0, LineState::kModified);
  c.insert(2, LineState::kShared);
  const Victim v = c.insert(4, LineState::kExclusive);
  ASSERT_TRUE(v.valid());
  EXPECT_EQ(v.line, 0u);  // LRU.
  EXPECT_EQ(v.state, LineState::kModified);
  EXPECT_EQ(c.occupancy(), 2u);
}

TEST(Cache, TouchChangesVictim) {
  Cache c(tiny_cache(4, 2), ReplacementKind::kLru, 0, "t");
  c.insert(0, LineState::kShared);
  c.insert(2, LineState::kShared);
  c.touch(0);  // Line 2 becomes LRU.
  const Victim v = c.insert(4, LineState::kShared);
  EXPECT_EQ(v.line, 2u);
}

TEST(Cache, RejectsDoubleInsert) {
  Cache c(tiny_cache(8, 2), ReplacementKind::kLru, 0, "t");
  c.insert(1, LineState::kShared);
  EXPECT_THROW(c.insert(1, LineState::kShared), std::logic_error);
}

TEST(Cache, RejectsInvalidStateOperations) {
  Cache c(tiny_cache(8, 2), ReplacementKind::kLru, 0, "t");
  EXPECT_THROW(c.insert(1, LineState::kInvalid), std::invalid_argument);
  c.insert(1, LineState::kShared);
  EXPECT_THROW(c.set_state(1, LineState::kInvalid), std::invalid_argument);
}

TEST(Cache, SetStateInPlace) {
  Cache c(tiny_cache(8, 2), ReplacementKind::kLru, 0, "t");
  c.insert(1, LineState::kExclusive);
  EXPECT_TRUE(c.set_state(1, LineState::kModified));
  EXPECT_EQ(c.state_of(1), LineState::kModified);
  EXPECT_FALSE(c.set_state(2, LineState::kShared));
}

TEST(Cache, ForEachVisitsAllLines) {
  Cache c(tiny_cache(8, 2), ReplacementKind::kLru, 0, "t");
  c.insert(1, LineState::kShared);
  c.insert(2, LineState::kModified);
  std::set<LineAddr> seen;
  c.for_each([&](LineAddr l, LineState) { seen.insert(l); });
  EXPECT_EQ(seen, (std::set<LineAddr>{1, 2}));
}

TEST(Cache, ClearEmptiesEverything) {
  Cache c(tiny_cache(8, 2), ReplacementKind::kLru, 0, "t");
  c.insert(1, LineState::kShared);
  c.clear();
  EXPECT_EQ(c.occupancy(), 0u);
  EXPECT_FALSE(c.contains(1));
}

TEST(LineStateHelpers, Predicates) {
  EXPECT_TRUE(is_dirty(LineState::kModified));
  EXPECT_TRUE(is_dirty(LineState::kOwned));
  EXPECT_FALSE(is_dirty(LineState::kExclusive));
  EXPECT_TRUE(is_writable(LineState::kExclusive));
  EXPECT_FALSE(is_writable(LineState::kShared));
  EXPECT_FALSE(is_valid(LineState::kInvalid));
  EXPECT_EQ(to_string(LineState::kOwned), "O");
}

// -------------------------------------------------------------- hierarchy ----

SystemConfig small_system() {
  SystemConfig config;  // Shrink caches so eviction paths are easy to hit.
  config.l1i = CacheConfig{4 * kLineBytes, 2, ticks_from_ns(1.0)};
  config.l1d = CacheConfig{4 * kLineBytes, 2, ticks_from_ns(1.0)};
  config.l2 = CacheConfig{16 * kLineBytes, 2, ticks_from_ns(1.0)};
  return config;
}

TEST(Hierarchy, FillGoesToRequestedL1) {
  Hierarchy h(small_system(), 1, "n0");
  h.fill(Array::kL1D, 10, LineState::kExclusive);
  EXPECT_EQ(h.locate(10).array, Array::kL1D);
  h.fill(Array::kL1I, 11, LineState::kShared);
  EXPECT_EQ(h.locate(11).array, Array::kL1I);
}

TEST(Hierarchy, ExclusiveLineLivesInExactlyOneArray) {
  Hierarchy h(small_system(), 1, "n0");
  h.fill(Array::kL1D, 10, LineState::kModified);
  int copies = 0;
  h.for_each([&](LineAddr l, LineState) { copies += (l == 10); });
  EXPECT_EQ(copies, 1);
}

TEST(Hierarchy, L1VictimMovesToL2) {
  Hierarchy h(small_system(), 1, "n0");
  // L1D set 0 holds lines {0, 4}; inserting 8 displaces one into the L2.
  h.fill(Array::kL1D, 0, LineState::kModified);
  h.fill(Array::kL1D, 4, LineState::kExclusive);
  const auto out = h.fill(Array::kL1D, 8, LineState::kShared);
  EXPECT_TRUE(out.empty());  // L2 had room: nothing left the hierarchy.
  EXPECT_EQ(h.locate(0).array, Array::kL2);
  EXPECT_EQ(h.locate(0).state, LineState::kModified);  // State preserved.
}

TEST(Hierarchy, PromoteMovesL2LineBackToL1) {
  Hierarchy h(small_system(), 1, "n0");
  h.fill(Array::kL1D, 0, LineState::kModified);
  h.fill(Array::kL1D, 4, LineState::kShared);
  h.fill(Array::kL1D, 8, LineState::kShared);  // Pushes 0 to L2.
  ASSERT_EQ(h.locate(0).array, Array::kL2);
  h.promote(Array::kL1D, 0);
  EXPECT_EQ(h.locate(0).array, Array::kL1D);
  EXPECT_EQ(h.locate(0).state, LineState::kModified);
}

TEST(Hierarchy, PromoteRequiresLineInL2) {
  Hierarchy h(small_system(), 1, "n0");
  EXPECT_THROW(h.promote(Array::kL1D, 42), std::logic_error);
}

TEST(Hierarchy, EvictionsCascadeOutOfL2) {
  Hierarchy h(small_system(), 1, "n0");
  // Saturate L1D set 0 and L2 set 0 with conflicting lines.
  // L1D: 2 sets; L2: 8 sets. Lines = 0, 8, 16, ... conflict in both.
  std::vector<Victim> all_out;
  for (LineAddr l = 0; l < 8 * 16; l += 16) {
    for (const Victim& v : h.fill(Array::kL1D, l, LineState::kModified)) {
      all_out.push_back(v);
    }
  }
  EXPECT_FALSE(all_out.empty());
  for (const Victim& v : all_out) EXPECT_EQ(v.state, LineState::kModified);
}

TEST(Hierarchy, InvalidateRemovesFromAnyLevel) {
  Hierarchy h(small_system(), 1, "n0");
  h.fill(Array::kL1D, 0, LineState::kModified);
  h.fill(Array::kL1D, 4, LineState::kShared);
  h.fill(Array::kL1D, 8, LineState::kShared);  // 0 now in L2.
  EXPECT_EQ(h.invalidate(0), LineState::kModified);
  EXPECT_FALSE(h.locate(0).present());
  EXPECT_EQ(h.invalidate(0), LineState::kInvalid);
}

TEST(Hierarchy, DowngradeSemantics) {
  Hierarchy h(small_system(), 1, "n0");
  h.fill(Array::kL1D, 1, LineState::kModified);
  EXPECT_EQ(h.downgrade(1), LineState::kModified);
  EXPECT_EQ(h.locate(1).state, LineState::kOwned);
  h.fill(Array::kL1D, 2, LineState::kExclusive);
  EXPECT_EQ(h.downgrade(2), LineState::kExclusive);
  EXPECT_EQ(h.locate(2).state, LineState::kShared);
  EXPECT_EQ(h.downgrade(2), LineState::kShared);  // S stays S.
  EXPECT_EQ(h.locate(2).state, LineState::kShared);
  EXPECT_EQ(h.downgrade(99), LineState::kInvalid);
}

TEST(Hierarchy, FillRejectsDuplicates) {
  Hierarchy h(small_system(), 1, "n0");
  h.fill(Array::kL1D, 5, LineState::kShared);
  EXPECT_THROW(h.fill(Array::kL1D, 5, LineState::kShared), std::logic_error);
  EXPECT_THROW(h.fill(Array::kL2, 6, LineState::kShared),
               std::invalid_argument);
}

TEST(Hierarchy, OccupancyAndClear) {
  Hierarchy h(small_system(), 1, "n0");
  h.fill(Array::kL1D, 1, LineState::kShared);
  h.fill(Array::kL1I, 2, LineState::kShared);
  EXPECT_EQ(h.occupancy(), 2u);
  h.clear();
  EXPECT_EQ(h.occupancy(), 0u);
}

// Property: under heavy random traffic the hierarchy never duplicates a
// line and never loses occupancy accounting.
TEST(Hierarchy, PropertyRandomTrafficKeepsExclusivity) {
  Hierarchy h(small_system(), 1, "n0");
  Rng rng(77);
  for (int i = 0; i < 5000; ++i) {
    const LineAddr line = rng.below(64);
    const Location loc = h.locate(line);
    if (!loc.present()) {
      h.fill(rng.chance(0.2) ? Array::kL1I : Array::kL1D, line,
             rng.chance(0.5) ? LineState::kModified : LineState::kShared);
    } else if (loc.array == Array::kL2 && rng.chance(0.5)) {
      h.promote(Array::kL1D, line);
    } else if (rng.chance(0.2)) {
      h.invalidate(line);
    }
    // Exclusivity scan.
    std::uint32_t counted = 0;
    std::set<LineAddr> seen;
    h.for_each([&](LineAddr l, LineState) {
      ASSERT_TRUE(seen.insert(l).second) << "line duplicated";
      ++counted;
    });
    ASSERT_EQ(counted, h.occupancy());
  }
}

}  // namespace
}  // namespace allarm::cache
