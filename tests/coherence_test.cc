// Protocol-level tests: the Hammer directory + probe filter + cache
// controllers running real transactions on a full (small) system, under
// both the baseline and ALLARM allocation policies.
#include <gtest/gtest.h>

#include "coherence/directory.hh"
#include "coherence/probe_filter.hh"
#include "test_util.hh"

namespace allarm {
namespace {

using test::load;
using test::make_scripted;
using test::priv;
using test::run_scripted;
using test::ScriptThread;
using test::small_config;

using cache::LineState;
using coherence::PfState;

// ------------------------------------------------- allocation policies ----

TEST(Protocol, BaselineAllocatesOnLocalMiss) {
  // Thread on node 0 reads its own (locally homed) line.
  auto ran = run_scripted(small_config(), DirectoryMode::kBaseline,
                          make_scripted({{0, {load(priv(0, 0))}}}));
  const Addr paddr = *ran.system->os().translate(0, priv(0, 0));
  const NodeId home = ran.system->os().home_of(paddr);
  EXPECT_EQ(home, 0);
  const auto* entry = ran.system->directory(home).probe_filter().peek(line_of(paddr));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state, PfState::kEM);
  EXPECT_EQ(entry->owner, 0);
  // The line was granted Exclusive (Hammer grants E on a read with no sharers).
  EXPECT_EQ(ran.system->cache(0).hierarchy().locate(line_of(paddr)).state,
            LineState::kExclusive);
}

TEST(Protocol, AllarmSkipsAllocationOnLocalMiss) {
  auto ran = run_scripted(small_config(), DirectoryMode::kAllarm,
                          make_scripted({{0, {load(priv(0, 0))}}}));
  const Addr paddr = *ran.system->os().translate(0, priv(0, 0));
  EXPECT_EQ(ran.system->directory(0).probe_filter().peek(line_of(paddr)),
            nullptr);
  EXPECT_EQ(ran.system->directory(0).stats().local_no_alloc, 1u);
  // The core still gets its Exclusive copy.
  EXPECT_EQ(ran.system->cache(0).hierarchy().locate(line_of(paddr)).state,
            LineState::kExclusive);
}

TEST(Protocol, AllarmAllocatesOnRemoteMiss) {
  // Thread 0 (node 0) touches the page first (home = node 0); thread 1
  // (node 1) reads the same line - a remote miss at directory 0.
  const Addr shared = priv(8, 0);
  auto spec = make_scripted({
      {0, {load(shared)}, 0},
      {1, {load(shared)}, ticks_from_ns(2000.0)},  // Well after thread 0.
  });
  auto ran = run_scripted(small_config(), DirectoryMode::kAllarm, spec);
  const Addr paddr = *ran.system->os().translate(0, shared);
  ASSERT_EQ(ran.system->os().home_of(paddr), 0);
  const auto* entry =
      ran.system->directory(0).probe_filter().peek(line_of(paddr));
  ASSERT_NE(entry, nullptr) << "remote miss must allocate";
  EXPECT_EQ(ran.system->directory(0).stats().remote_miss_probes, 1u);
}

TEST(Protocol, AllarmLocalProbeFindsUntrackedLine) {
  // Node 0 reads its own line (untracked under ALLARM), then node 1 reads
  // it: the local probe must find it and downgrade it to Shared.
  const Addr shared = priv(8, 0);
  auto spec = make_scripted({
      {0, {load(shared)}, 0},
      {1, {load(shared)}, ticks_from_ns(2000.0)},
  });
  auto ran = run_scripted(small_config(), DirectoryMode::kAllarm, spec);
  const LineAddr line = line_of(*ran.system->os().translate(0, shared));
  EXPECT_EQ(ran.system->directory(0).stats().remote_miss_probe_hit, 1u);
  EXPECT_EQ(ran.system->cache(0).hierarchy().locate(line).state,
            LineState::kShared);
  EXPECT_EQ(ran.system->cache(1).hierarchy().locate(line).state,
            LineState::kShared);
  const auto* entry = ran.system->directory(0).probe_filter().peek(line);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state, PfState::kShared);
}

// --------------------------------------------------------- read sharing ----

TEST(Protocol, RemoteReadDowngradesExclusiveOwner) {
  const Addr shared = priv(8, 0);
  auto spec = make_scripted({
      {2, {load(shared)}, 0},
      {5, {load(shared)}, ticks_from_ns(2000.0)},
  });
  auto ran = run_scripted(small_config(), DirectoryMode::kBaseline, spec);
  const LineAddr line = line_of(*ran.system->os().translate(0, shared));
  EXPECT_EQ(ran.system->cache(2).hierarchy().locate(line).state,
            LineState::kShared);
  EXPECT_EQ(ran.system->cache(5).hierarchy().locate(line).state,
            LineState::kShared);
  const auto* entry = ran.system->directory(2).probe_filter().peek(line);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state, PfState::kShared);
}

TEST(Protocol, RemoteReadOfDirtyLineCreatesOwnedState) {
  const Addr shared = priv(8, 0);
  auto spec = make_scripted({
      {2, {test::store(shared)}, 0},
      {5, {load(shared)}, ticks_from_ns(2000.0)},
  });
  auto ran = run_scripted(small_config(), DirectoryMode::kBaseline, spec);
  const LineAddr line = line_of(*ran.system->os().translate(0, shared));
  // Writer keeps a dirty Owned copy and supplied the data cache-to-cache.
  EXPECT_EQ(ran.system->cache(2).hierarchy().locate(line).state,
            LineState::kOwned);
  EXPECT_EQ(ran.system->cache(5).hierarchy().locate(line).state,
            LineState::kShared);
  const auto* entry = ran.system->directory(2).probe_filter().peek(line);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state, PfState::kOwned);
  EXPECT_EQ(entry->owner, 2);
}

// ------------------------------------------------------ write ownership ----

TEST(Protocol, WriteMigratesOwnership) {
  const Addr shared = priv(8, 0);
  auto spec = make_scripted({
      {2, {test::store(shared)}, 0},
      {5, {test::store(shared)}, ticks_from_ns(2000.0)},
  });
  for (auto mode : {DirectoryMode::kBaseline, DirectoryMode::kAllarm}) {
    auto ran = run_scripted(small_config(), mode, spec);
    const LineAddr line = line_of(*ran.system->os().translate(0, shared));
    EXPECT_FALSE(ran.system->cache(2).hierarchy().locate(line).present())
        << "first writer must be invalidated";
    EXPECT_EQ(ran.system->cache(5).hierarchy().locate(line).state,
              LineState::kModified);
    const auto* entry = ran.system->directory(2).probe_filter().peek(line);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->state, PfState::kEM);
    EXPECT_EQ(entry->owner, 5);
  }
}

TEST(Protocol, SilentUpgradeFromExclusive) {
  // Read then write by the same core: E -> M without a second request.
  auto ran = run_scripted(
      small_config(), DirectoryMode::kBaseline,
      make_scripted({{3, {load(priv(0, 0)), test::store(priv(0, 0))}}}));
  EXPECT_EQ(ran.system->cache(3).stats().misses, 1u);
  const LineAddr line = line_of(*ran.system->os().translate(0, priv(0, 0)));
  EXPECT_EQ(ran.system->cache(3).hierarchy().locate(line).state,
            LineState::kModified);
}

TEST(Protocol, UpgradeFromSharedInvalidatesOtherSharers) {
  const Addr shared = priv(8, 0);
  auto spec = make_scripted({
      {2, {load(shared), load(shared), test::store(shared)},
       ticks_from_ns(500.0)},
      {5, {load(shared)}, 0},
  });
  auto ran = run_scripted(small_config(), DirectoryMode::kBaseline, spec);
  const LineAddr line = line_of(*ran.system->os().translate(0, shared));
  EXPECT_EQ(ran.system->cache(2).hierarchy().locate(line).state,
            LineState::kModified);
  EXPECT_FALSE(ran.system->cache(5).hierarchy().locate(line).present());
  EXPECT_GE(ran.system->cache(2).stats().upgrades, 1u);
  EXPECT_EQ(ran.result.stats.get("sanity.upgrade_without_line"), 0.0);
}

// ------------------------------------------------------------ writebacks ----

TEST(Protocol, CleanEvictionNotificationFreesEntry) {
  // Stream enough local lines through node 0's tiny cache that early lines
  // are evicted; their PutE must free the directory entries (the paper's
  // optimized baseline), keeping occupancy equal to the cached count.
  std::vector<workload::Access> script;
  for (std::uint32_t i = 0; i < 64; ++i) script.push_back(load(priv(0, i)));
  auto ran = run_scripted(small_config(), DirectoryMode::kBaseline,
                          make_scripted({{0, script}}));
  EXPECT_GT(ran.system->cache(0).stats().puts_clean, 0u);
  std::uint32_t cached = ran.system->cache(0).hierarchy().occupancy();
  std::uint32_t tracked = 0;
  for (NodeId n = 0; n < 16; ++n) {
    tracked += ran.system->directory(n).probe_filter().occupancy();
  }
  EXPECT_EQ(tracked, cached);
}

TEST(Protocol, DirtyEvictionWritesBack) {
  std::vector<workload::Access> script;
  for (std::uint32_t i = 0; i < 64; ++i)
    script.push_back(test::store(priv(0, i)));
  auto ran = run_scripted(small_config(), DirectoryMode::kBaseline,
                          make_scripted({{0, script}}));
  EXPECT_GT(ran.system->cache(0).stats().puts_dirty, 0u);
  EXPECT_GT(ran.system->dram(0).stats().writes, 0u);
  EXPECT_EQ(ran.result.stats.get("sanity.wbb_collisions"), 0.0);
}

TEST(Protocol, AllarmUntrackedWritebacksAreNormal) {
  std::vector<workload::Access> script;
  for (std::uint32_t i = 0; i < 64; ++i)
    script.push_back(test::store(priv(0, i)));
  auto ran = run_scripted(small_config(), DirectoryMode::kAllarm,
                          make_scripted({{0, script}}));
  EXPECT_GT(ran.result.stats.get("sanity.puts_local_untracked"), 0.0);
  EXPECT_EQ(ran.result.stats.get("sanity.puts_stale"), 0.0);
}

// ------------------------------------------------------------- evictions ----

TEST(Protocol, ProbeFilterEvictionInvalidatesCachedLine) {
  // Node 1 reads more distinct node-0-homed lines than one PF set can
  // track; line addresses chosen to collide in the 8-set probe filter.
  std::vector<workload::Access> t0_script;
  std::vector<workload::Access> t1_script;
  // Map the pages first from node 0 so every line is homed there.
  for (std::uint32_t i = 0; i < 6; ++i) {
    t0_script.push_back(load(priv(8, i * 64)));  // 64 lines apart: one page.
  }
  for (std::uint32_t i = 0; i < 6; ++i) {
    t1_script.push_back(load(priv(8, i * 64)));
  }
  auto spec = make_scripted({
      {0, t0_script, 0},
      {1, t1_script, ticks_from_ns(3000.0)},
  });
  SystemConfig config = small_config();
  config.probe_filter_coverage_bytes = 4 * kLineBytes;  // 1 set x 4 ways!
  auto ran = run_scripted(config, DirectoryMode::kBaseline, spec);
  EXPECT_GT(ran.system->directory(0).stats().pf_evictions, 0u);
  EXPECT_GT(ran.system->directory(0).stats().eviction_lines_invalidated, 0u);
  EXPECT_GT(ran.system->directory(0).stats().eviction_messages, 0u);
}

TEST(Protocol, AllarmKeepsLocalDataOutOfTinyDirectory) {
  // With a 4-entry probe filter, a local-only streaming workload causes
  // zero ALLARM allocations and therefore zero evictions.
  std::vector<workload::Access> script;
  for (std::uint32_t i = 0; i < 128; ++i) script.push_back(load(priv(0, i)));
  SystemConfig config = small_config();
  config.probe_filter_coverage_bytes = 4 * kLineBytes;
  auto ran = run_scripted(config, DirectoryMode::kAllarm,
                          make_scripted({{0, script}}));
  EXPECT_EQ(ran.system->directory(0).stats().pf_evictions, 0u);
  EXPECT_EQ(ran.system->directory(0).probe_filter().stats().inserts, 0u);
  EXPECT_EQ(ran.system->directory(0).stats().local_no_alloc, 128u);
}

// --------------------------------------------------------------- latency ----

TEST(Protocol, LocalMissLatencyIsDramBound) {
  auto ran = run_scripted(small_config(), DirectoryMode::kBaseline,
                          make_scripted({{0, {load(priv(0, 0))}}}));
  const double avg = ran.result.stats.get("cache.miss_latency_avg_ns");
  EXPECT_GT(avg, 60.0);   // At least the DRAM access.
  EXPECT_LT(avg, 90.0);   // But no mesh crossings.
}

TEST(Protocol, RemoteMissPaysMeshLatency) {
  // Node 15's line homed at node 0 (page touched by thread on node 0 first).
  const Addr shared = priv(8, 0);
  auto spec = make_scripted({
      {0, {load(shared)}, 0},
      {15, {load(shared)}, ticks_from_ns(2000.0)},
  });
  auto ran = run_scripted(small_config(), DirectoryMode::kBaseline, spec);
  // Two misses; the remote one crossed 6 hops each way.
  const double avg = ran.result.stats.get("cache.miss_latency_avg_ns");
  EXPECT_GT(avg, 90.0);
}

TEST(Protocol, AllarmHiddenProbeAccounting) {
  // A remote miss to an uncached line: the local probe misses and DRAM
  // (60 ns) dominates, so the probe must be recorded as hidden.
  const Addr shared = priv(8, 0);
  auto spec = make_scripted({
      {0, {load(priv(9, 9))}, 0},  // Unrelated: places thread 0.
      {1, {load(shared)}, ticks_from_ns(2000.0)},
  });
  // Home the shared page at node 0 explicitly during setup.
  auto base = make_scripted({
      {0, {load(shared)}, 0},
  });
  (void)base;
  SystemConfig config = small_config();
  config.directory_mode = DirectoryMode::kAllarm;
  core::System system(config);
  system.os().touch(0, shared, 0);  // First touch from node 0; never cached.
  core::RunOptions options;
  options.seed = 1;
  auto spec2 = make_scripted({{1, {load(shared)}}});
  system.run(spec2, options);
  EXPECT_EQ(system.directory(0).stats().remote_miss_probes, 1u);
  EXPECT_EQ(system.directory(0).stats().remote_miss_probe_hidden, 1u);
  EXPECT_EQ(system.directory(0).stats().remote_miss_probe_hit, 0u);
}

TEST(Protocol, SerializedProbeIsNeverHidden) {
  const Addr shared = priv(8, 0);
  SystemConfig config = small_config();
  config.directory_mode = DirectoryMode::kAllarm;
  config.allarm_parallel_local_probe = false;  // Latency-hiding ablation.
  core::System system(config);
  system.os().touch(0, shared, 0);
  core::RunOptions options;
  options.seed = 1;
  system.run(make_scripted({{1, {load(shared)}}}), options);
  EXPECT_EQ(system.directory(0).stats().remote_miss_probes, 1u);
  EXPECT_EQ(system.directory(0).stats().remote_miss_probe_hidden, 0u);
}

// --------------------------------------------------------- configuration ----

TEST(Protocol, RangeRegistersDisableAllarm) {
  // ALLARM active only on node 15's physical range: a local miss at node 0
  // falls back to baseline allocation.
  SystemConfig config = small_config();
  config.directory_mode = DirectoryMode::kAllarm;
  core::System system(config);
  system.allarm_ranges().add_range(15ull * config.dram_bytes_per_node(),
                                   config.dram_bytes_per_node());
  core::RunOptions options;
  options.seed = 1;
  system.run(make_scripted({{0, {load(priv(0, 0))}}}), options);
  EXPECT_EQ(system.directory(0).stats().local_no_alloc, 0u);
  EXPECT_EQ(system.directory(0).probe_filter().stats().inserts, 1u);
}

TEST(Protocol, PerDirectoryModeOverride) {
  // Node 0 runs baseline, node 1 runs ALLARM; local misses at each behave
  // accordingly.
  SystemConfig config = small_config();
  config.directory_mode = DirectoryMode::kBaseline;
  core::System system(config);
  system.set_directory_mode(1, DirectoryMode::kAllarm);
  core::RunOptions options;
  options.seed = 1;
  auto spec = make_scripted({
      {0, {load(priv(0, 0))}},
      {1, {load(priv(1, 0))}},
  });
  system.run(spec, options);
  EXPECT_EQ(system.directory(0).stats().local_no_alloc, 0u);
  EXPECT_EQ(system.directory(1).stats().local_no_alloc, 1u);
}

TEST(Protocol, InstructionFetchesUseTheL1I) {
  auto ran = run_scripted(
      small_config(), DirectoryMode::kBaseline,
      make_scripted({{0,
                      {workload::Access{priv(0, 0), AccessType::kInstFetch},
                       workload::Access{priv(0, 0), AccessType::kInstFetch}}}}));
  EXPECT_EQ(ran.system->cache(0).stats().ifetches, 2u);
  EXPECT_EQ(ran.system->cache(0).stats().misses, 1u);
  EXPECT_EQ(ran.system->cache(0).stats().l1_hits, 1u);
  const LineAddr line = line_of(*ran.system->os().translate(0, priv(0, 0)));
  EXPECT_GT(ran.system->cache(0).hierarchy().l1i().occupancy(), 0u);
  EXPECT_TRUE(ran.system->cache(0).hierarchy().l1i().contains(line));
}

}  // namespace
}  // namespace allarm
