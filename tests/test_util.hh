// Shared helpers for protocol-level tests: scripted access sequences and
// small deterministic workloads running on a full System.
#pragma once

#include <memory>
#include <vector>

#include "core/system.hh"
#include "workload/spec.hh"

namespace allarm::test {

/// Plays back a fixed access script (then repeats it if asked for more).
class ScriptedGenerator final : public workload::AccessGenerator {
 public:
  explicit ScriptedGenerator(std::vector<workload::Access> script)
      : script_(std::move(script)) {}

  workload::Access next(Rng&, Tick) override {
    const workload::Access a = script_[index_ % script_.size()];
    ++index_;
    return a;
  }

 private:
  std::vector<workload::Access> script_;
  std::size_t index_ = 0;
};

inline workload::Access load(Addr a) {
  return {a, AccessType::kLoad};
}
inline workload::Access store(Addr a) {
  return {a, AccessType::kStore};
}

/// One scripted thread placed on `node`; executes the whole script once.
struct ScriptThread {
  NodeId node = 0;
  std::vector<workload::Access> script;
  Tick start_offset = 0;
  AddressSpaceId asid = 0;
};

/// Builds a workload from scripted threads.  Threads run their scripts to
/// completion with 1 ns think time and no warm-up.
inline workload::WorkloadSpec make_scripted(std::vector<ScriptThread> threads) {
  workload::WorkloadSpec spec;
  spec.name = "scripted";
  ThreadId id = 0;
  for (auto& t : threads) {
    workload::ThreadSpec ts;
    ts.id = id++;
    ts.asid = t.asid;
    ts.node = t.node;
    ts.accesses = t.script.size();
    ts.think = ticks_from_ns(1.0);
    ts.think_jitter = 0.0;
    ts.start_offset = t.start_offset;
    auto script = t.script;
    ts.make_generator = [script] {
      return std::make_unique<ScriptedGenerator>(script);
    };
    spec.threads.push_back(std::move(ts));
  }
  return spec;
}

/// A Table I system with caches shrunk so small scripts exercise evictions.
inline SystemConfig small_config() {
  SystemConfig config;
  config.l1i = CacheConfig{4 * kLineBytes, 2, ticks_from_ns(1.0)};
  config.l1d = CacheConfig{4 * kLineBytes, 2, ticks_from_ns(1.0)};
  config.l2 = CacheConfig{16 * kLineBytes, 2, ticks_from_ns(1.0)};
  config.probe_filter_coverage_bytes = 32 * kLineBytes;  // 8 sets x 4 ways.
  return config;
}

/// Runs `spec` on a fresh system in `mode` and returns the System (for
/// component inspection) plus the result.
struct RanSystem {
  std::unique_ptr<core::System> system;
  core::RunResult result;
};

inline RanSystem run_scripted(const SystemConfig& base_config,
                              DirectoryMode mode,
                              const workload::WorkloadSpec& spec,
                              std::uint64_t seed = 1) {
  SystemConfig config = base_config;
  config.directory_mode = mode;
  RanSystem ran;
  ran.system = std::make_unique<core::System>(config);
  core::RunOptions options;
  options.seed = seed;
  ran.result = ran.system->run(spec, options);
  return ran;
}

/// Virtual address of line `n` inside thread-private region `region`.
inline Addr priv(std::uint32_t region, std::uint32_t line) {
  return 0x4000'0000ull * (region + 1) + line * kLineBytes;
}

}  // namespace allarm::test
