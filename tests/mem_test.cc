// Unit tests for the DRAM / memory-controller model.
#include <gtest/gtest.h>

#include "common/config.hh"
#include "mem/dram.hh"

namespace allarm::mem {
namespace {

TEST(Dram, FixedLatencyWhenIdle) {
  Dram dram(ticks_from_ns(60.0), ticks_from_ns(10.0));
  EXPECT_EQ(dram.read(0), ticks_from_ns(60.0));
  EXPECT_EQ(dram.access_latency(), ticks_from_ns(60.0));
}

TEST(Dram, BandwidthGapBetweenAccesses) {
  Dram dram(ticks_from_ns(60.0), ticks_from_ns(10.0));
  const Tick first = dram.read(0);
  const Tick second = dram.read(0);  // Issued at the same instant.
  EXPECT_EQ(second - first, ticks_from_ns(10.0));
}

TEST(Dram, NoQueueingWhenSpacedOut) {
  Dram dram(ticks_from_ns(60.0), ticks_from_ns(10.0));
  dram.read(0);
  const Tick t = dram.read(ticks_from_ns(50.0));
  EXPECT_EQ(t, ticks_from_ns(110.0));
  EXPECT_EQ(dram.stats().total_queue_wait, 0u);
}

TEST(Dram, QueueWaitAccumulates) {
  Dram dram(ticks_from_ns(60.0), ticks_from_ns(10.0));
  dram.read(0);
  dram.read(0);
  dram.read(0);
  // Second waited 10ns, third waited 20ns.
  EXPECT_EQ(dram.stats().total_queue_wait, ticks_from_ns(30.0));
}

TEST(Dram, CountsReadsAndWrites) {
  Dram dram(SystemConfig{});
  dram.read(0);
  dram.write(0);
  dram.write(0);
  EXPECT_EQ(dram.stats().reads, 1u);
  EXPECT_EQ(dram.stats().writes, 2u);
}

TEST(Dram, WritesOccupyBandwidthToo) {
  Dram dram(ticks_from_ns(60.0), ticks_from_ns(10.0));
  dram.write(0);
  const Tick t = dram.read(0);
  EXPECT_EQ(t, ticks_from_ns(70.0));
}

TEST(Dram, ConfigConstructorUsesTableI) {
  Dram dram(SystemConfig{});
  EXPECT_EQ(dram.read(0), ticks_from_ns(60.0));
}

TEST(Dram, ResetStats) {
  Dram dram(SystemConfig{});
  dram.read(0);
  dram.reset_stats();
  EXPECT_EQ(dram.stats().reads, 0u);
  EXPECT_EQ(dram.stats().total_queue_wait, 0u);
}

}  // namespace
}  // namespace allarm::mem
