// Integration tests: the full 16-node Table I system running benchmark
// profiles end to end, with protocol invariants verified.
#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/system.hh"
#include "test_util.hh"
#include "workload/profiles.hh"

namespace allarm {
namespace {

using test::load;
using test::make_scripted;
using test::priv;

core::RunResult run_bench(const std::string& name, DirectoryMode mode,
                          std::uint64_t accesses = 1500,
                          std::uint64_t seed = 7) {
  SystemConfig config;
  const workload::WorkloadSpec spec =
      workload::make_benchmark(name, config, accesses);
  return core::run_single(config, mode, spec, seed);
}

TEST(System, RunsOceanToCompletionUnderBothModes) {
  for (auto mode : {DirectoryMode::kBaseline, DirectoryMode::kAllarm}) {
    const core::RunResult r = run_bench("ocean-cont", mode);
    EXPECT_GT(r.runtime, 0u);
    EXPECT_EQ(r.thread_finish.size(), 16u);
    for (Tick t : r.thread_finish) EXPECT_GT(t, 0u);
    // Protocol sanity counters must be silent.
    EXPECT_EQ(r.stats.get("sanity.anomalies"), 0.0);
    EXPECT_EQ(r.stats.get("sanity.upgrade_without_line"), 0.0);
    EXPECT_EQ(r.stats.get("sanity.wbb_collisions"), 0.0);
  }
}

TEST(System, DeterministicAcrossIdenticalRuns) {
  const core::RunResult a = run_bench("cholesky", DirectoryMode::kAllarm);
  const core::RunResult b = run_bench("cholesky", DirectoryMode::kAllarm);
  EXPECT_EQ(a.runtime, b.runtime);
  for (const auto& [name, value] : a.stats.values()) {
    EXPECT_DOUBLE_EQ(value, b.stats.get(name)) << name;
  }
}

TEST(System, SeedChangesOutcomeSlightly) {
  SystemConfig config;
  const auto spec = workload::make_benchmark("dedup", config, 1500);
  const auto a = core::run_single(config, DirectoryMode::kBaseline, spec, 1);
  const auto b = core::run_single(config, DirectoryMode::kBaseline, spec, 2);
  EXPECT_NE(a.runtime, b.runtime);
}

TEST(System, AllarmReducesDirectoryOccupancyOnPrivateData) {
  const auto base = run_bench("ocean-cont", DirectoryMode::kBaseline);
  const auto allarm = run_bench("ocean-cont", DirectoryMode::kAllarm);
  EXPECT_LT(allarm.stats.get("pf.inserts"), base.stats.get("pf.inserts"));
  EXPECT_GT(allarm.stats.get("dir.local_no_alloc"), 0.0);
  EXPECT_EQ(base.stats.get("dir.local_no_alloc"), 0.0);
}

TEST(System, WarmupStatisticsAreExcluded) {
  // The measured access count must equal (roughly) the ROI accesses; the
  // warm-up sweeps must not be counted.
  // Statistics cover the window from the last thread's warm-up crossing to
  // the end of the run: never more than the ROI accesses, and - once the
  // ROI dwarfs the spread between threads' crossing times - most of them.
  const core::RunResult r =
      run_bench("barnes", DirectoryMode::kBaseline, 8000);
  const double counted = r.stats.get("cache.loads") +
                         r.stats.get("cache.stores") +
                         r.stats.get("cache.ifetches");
  EXPECT_LE(counted, 16 * 8000.0);
  EXPECT_GT(counted, 16 * 8000.0 * 0.5);
}

TEST(System, RunIsSingleUse) {
  SystemConfig config;
  core::System system(config);
  core::RunOptions options;
  system.run(make_scripted({{0, {load(priv(0, 0))}}}), options);
  EXPECT_THROW(system.run(make_scripted({{0, {load(priv(0, 0))}}}), options),
               std::logic_error);
}

TEST(System, ThreadMigrationKeepsProtocolSane) {
  SystemConfig config;
  const auto spec = workload::make_benchmark("barnes", config, 1200);
  config.directory_mode = DirectoryMode::kAllarm;
  core::System system(config);
  core::RunOptions options;
  options.seed = 3;
  options.migration_interval = ticks_from_ns(5000.0);
  const core::RunResult r = system.run(spec, options);
  EXPECT_GT(r.stats.get("os.migrations"), 0.0);
  EXPECT_EQ(r.stats.get("sanity.upgrade_without_line"), 0.0);
  EXPECT_EQ(r.stats.get("sanity.wbb_collisions"), 0.0);
}

TEST(System, PeriodicInvariantChecksPass) {
  SystemConfig config;
  const auto spec = workload::make_benchmark("x264", config, 600);
  for (auto mode : {DirectoryMode::kBaseline, DirectoryMode::kAllarm}) {
    config.directory_mode = mode;
    core::System system(config);
    core::RunOptions options;
    options.seed = 11;
    options.invariant_check_period = 1000;  // Mid-flight checks.
    EXPECT_NO_THROW(system.run(spec, options));
  }
}

TEST(System, MultiprocessWorkloadRuns) {
  SystemConfig config;
  const auto spec = workload::make_multiprocess("cholesky", config, 2000);
  for (auto mode : {DirectoryMode::kBaseline, DirectoryMode::kAllarm}) {
    const auto r = core::run_single(config, mode, spec, 5);
    EXPECT_EQ(r.thread_finish.size(), 2u);
    EXPECT_EQ(r.stats.get("sanity.anomalies"), 0.0);
  }
}

TEST(System, InterleavedAllocationDefeatsAllarm) {
  // Under interleaved page placement, "local" data is spread across all
  // nodes, so ALLARM's local-miss fast path rarely triggers.
  SystemConfig config;
  const auto spec = workload::make_benchmark("ocean-cont", config, 1200);
  const auto first_touch =
      core::run_single(config, DirectoryMode::kAllarm, spec, 7,
                       numa::AllocPolicy::kFirstTouch);
  const auto interleaved =
      core::run_single(config, DirectoryMode::kAllarm, spec, 7,
                       numa::AllocPolicy::kInterleave);
  EXPECT_GT(first_touch.stats.get("dir.local_no_alloc"),
            4 * interleaved.stats.get("dir.local_no_alloc"));
  EXPECT_GT(first_touch.stats.get("dir.local_fraction"),
            interleaved.stats.get("dir.local_fraction"));
}

TEST(System, EvictionBufferModeStillCorrect) {
  SystemConfig config;
  config.eviction_gates_reply = false;  // Ablation: async victim flows.
  const auto spec = workload::make_benchmark("ocean-cont", config, 1200);
  for (auto mode : {DirectoryMode::kBaseline, DirectoryMode::kAllarm}) {
    config.directory_mode = mode;
    core::System system(config);
    core::RunOptions options;
    options.seed = 13;
    const auto r = system.run(spec, options);
    EXPECT_EQ(r.stats.get("sanity.upgrade_without_line"), 0.0);
  }
}

TEST(System, SmallerProbeFiltersEvictMore) {
  SystemConfig big, small;
  small.probe_filter_coverage_bytes = 64 * 1024;
  const auto spec = workload::make_benchmark("barnes", big, 1500);
  const auto r_big = core::run_single(big, DirectoryMode::kBaseline, spec, 9);
  const auto r_small =
      core::run_single(small, DirectoryMode::kBaseline, spec, 9);
  EXPECT_GT(r_small.stats.get("dir.pf_evictions"),
            r_big.stats.get("dir.pf_evictions"));
}

TEST(System, EnergyTracksActivity) {
  const auto r = run_bench("dedup", DirectoryMode::kBaseline);
  EXPECT_GT(r.stats.get("energy.noc_nj"), 0.0);
  EXPECT_GT(r.stats.get("energy.pf_nj"), 0.0);
  EXPECT_GT(r.stats.get("energy.dram_nj"), 0.0);
}

TEST(System, LocalFractionMatchesProfileIntent) {
  // ocean is local-heavy; blackscholes is remote-heavy (Figure 2).  The ROI
  // must comfortably exceed the warm-up spread for the composition to be
  // representative.
  const auto ocean = run_bench("ocean-cont", DirectoryMode::kBaseline, 15000);
  const auto blks = run_bench("blackscholes", DirectoryMode::kBaseline, 6000);
  EXPECT_GT(ocean.stats.get("dir.local_fraction"), 0.4);
  EXPECT_LT(blks.stats.get("dir.local_fraction"), 0.3);
}

}  // namespace
}  // namespace allarm
