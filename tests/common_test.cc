// Unit tests for the common library: types, configuration, RNG,
// statistics, checksums and file I/O.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "common/checksum.hh"
#include "common/config.hh"
#include "common/fileio.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace allarm {
namespace {

// ----------------------------------------------------------------- types ----

TEST(Types, TickConversionRoundTrips) {
  EXPECT_EQ(ticks_from_ns(1.0), kTicksPerNs);
  EXPECT_EQ(ticks_from_ns(60.0), 60 * kTicksPerNs);
  EXPECT_DOUBLE_EQ(ns_from_ticks(ticks_from_ns(12.5)), 12.5);
}

TEST(Types, SubNanosecondQuantitiesAreExact) {
  // One 4-byte flit on an 8 GB/s link takes exactly 0.5 ns.
  EXPECT_EQ(ticks_from_ns(0.5), kTicksPerNs / 2);
}

TEST(Types, LineAndPageArithmetic) {
  const Addr a = 0x12345678;
  EXPECT_EQ(line_of(a), a >> 6);
  EXPECT_EQ(addr_of_line(line_of(a)), a & ~Addr{63});
  EXPECT_EQ(page_of(a), a >> 12);
  EXPECT_EQ(addr_of_page(page_of(a)), a & ~Addr{4095});
  EXPECT_EQ(kLinesPerPage, 64u);
}

TEST(Types, AccessTypeNames) {
  EXPECT_EQ(to_string(AccessType::kLoad), "load");
  EXPECT_EQ(to_string(AccessType::kStore), "store");
  EXPECT_EQ(to_string(AccessType::kInstFetch), "ifetch");
}

// ---------------------------------------------------------------- config ----

TEST(Config, TableIDefaultsValidate) {
  SystemConfig config;
  EXPECT_NO_THROW(config.validate());
}

TEST(Config, TableIDerivedQuantities) {
  SystemConfig config;
  EXPECT_EQ(config.num_nodes(), 16u);
  EXPECT_EQ(config.probe_filter_entries(), 512u * 1024 / 64);
  EXPECT_EQ(config.dram_bytes_per_node(), 128ull * 1024 * 1024);
  EXPECT_EQ(config.l2.lines(), 4096u);
  EXPECT_EQ(config.l1d.sets(), 128u);
  EXPECT_EQ(config.flit_serialization(), ticks_from_ns(0.5));
}

TEST(Config, RejectsMismatchedCoreCount) {
  SystemConfig config;
  config.num_cores = 8;  // 4x4 mesh still has 16 nodes.
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(Config, RejectsNonPowerOfTwoSets) {
  SystemConfig config;
  config.l1d.size_bytes = 48 * 1024;  // 192 sets at 4 ways: not a power of 2.
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(Config, RejectsBadProbeFilterGeometry) {
  SystemConfig config;
  config.probe_filter_coverage_bytes = 96 * 1024;  // 384 sets.
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(Config, ModeNames) {
  EXPECT_EQ(to_string(DirectoryMode::kBaseline), "baseline");
  EXPECT_EQ(to_string(DirectoryMode::kAllarm), "allarm");
  EXPECT_EQ(to_string(ReplacementKind::kLru), "lru");
}

// ------------------------------------------------------------------- rng ----

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(42);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (c1.next() == c2.next());
  EXPECT_LT(equal, 3);
}

TEST(Zipf, SkewsTowardLowRanks) {
  ZipfDistribution zipf(100, 1.0);
  Rng rng(1);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 20 * counts[99] / 2);
}

TEST(Zipf, UniformWhenAlphaZero) {
  ZipfDistribution zipf(10, 0.0);
  Rng rng(2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf(rng)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 500);
}

TEST(Zipf, RejectsEmptySupport) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
}

// ----------------------------------------------------------------- stats ----

TEST(StatSet, SetAddGet) {
  StatSet s;
  s.set("a", 2.0);
  s.add("a", 3.0);
  s.add("b", 1.0);
  EXPECT_DOUBLE_EQ(s.get("a"), 5.0);
  EXPECT_DOUBLE_EQ(s.get("b"), 1.0);
  EXPECT_DOUBLE_EQ(s.get("missing", -1.0), -1.0);
  EXPECT_TRUE(s.contains("a"));
  EXPECT_FALSE(s.contains("c"));
}

TEST(StatSet, NormalizedTo) {
  StatSet base, other;
  base.set("x", 10.0);
  other.set("x", 7.0);
  EXPECT_DOUBLE_EQ(other.normalized_to(base, "x"), 0.7);
  EXPECT_DOUBLE_EQ(other.normalized_to(base, "y"), 1.0);  // Fallback.
}

TEST(StatSet, MergeWithPrefix) {
  StatSet a, b;
  b.set("x", 1.0);
  a.merge(b, "sub.");
  EXPECT_DOUBLE_EQ(a.get("sub.x"), 1.0);
}

TEST(StatSet, MergeEmptySetsAreNeutral) {
  StatSet a, empty;
  a.set("x", 3.0);
  a.merge(empty, "sub.");      // Merging an empty set changes nothing.
  EXPECT_EQ(a.values().size(), 1u);
  empty.merge(a);              // Merging into an empty set copies.
  EXPECT_DOUBLE_EQ(empty.get("x"), 3.0);
}

TEST(StatSet, MergePrefixCollisionOverwrites) {
  // merge() overwrites (it does not add): a prefixed name that collides
  // with an existing stat takes the incoming value.
  StatSet a, b;
  a.set("sub.x", 1.0);
  b.set("x", 9.0);
  a.merge(b, "sub.");
  EXPECT_DOUBLE_EQ(a.get("sub.x"), 9.0);
  // A second merge of the same set is idempotent, not additive.
  a.merge(b, "sub.");
  EXPECT_DOUBLE_EQ(a.get("sub.x"), 9.0);
}

TEST(StatSet, NormalizedToZeroDenominator) {
  StatSet base, other;
  base.set("x", 0.0);   // Present but zero: fallback, not inf/NaN.
  other.set("x", 5.0);
  EXPECT_DOUBLE_EQ(other.normalized_to(base, "x"), 1.0);
  EXPECT_DOUBLE_EQ(other.normalized_to(base, "x", -2.0), -2.0);
  // Numerator missing: fallback even when the denominator is fine.
  base.set("y", 4.0);
  EXPECT_DOUBLE_EQ(other.normalized_to(base, "y", 0.5), 0.5);
}

// ------------------------------------------------------------- histogram ----

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 is exact zero; bucket b >= 1 spans [2^(b-1), 2^b - 1].
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(1023), 10);
  EXPECT_EQ(Histogram::bucket_of(1024), 11);
  // The last bucket saturates.
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), Histogram::kBuckets - 1);
  for (int b = 1; b < Histogram::kBuckets - 1; ++b) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_lo(b)), b);
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_hi(b)), b);
  }
}

TEST(Histogram, CountMaxAndZeros) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  h.record(0);
  h.record(0);
  h.record(17);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max(), 17u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // Rank 2 of 3 is a zero.
}

TEST(Histogram, QuantileKnownAnswers) {
  // A single repeated value: every quantile clamps to the observed max.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(8);
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 8.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 8.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.00), 8.0);

  // Bimodal: 50 samples of 1, 50 samples of 1000.  p50 names rank 50 (a 1);
  // p95 names rank 95, the 45th sample in bucket [512, 1023]:
  // 512 + 511 * 45/50 = 971.9, which is below the observed max of 1000.
  Histogram bi;
  for (int i = 0; i < 50; ++i) bi.record(1);
  for (int i = 0; i < 50; ++i) bi.record(1000);
  EXPECT_DOUBLE_EQ(bi.quantile(0.50), 1.0);
  EXPECT_DOUBLE_EQ(bi.quantile(0.95), 512.0 + 511.0 * 45.0 / 50.0);
  EXPECT_DOUBLE_EQ(bi.quantile(1.00), 1000.0);
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  const auto fill = [](Histogram& h, std::uint64_t base, int n) {
    for (int i = 0; i < n; ++i) h.record(base + static_cast<std::uint64_t>(i));
  };
  Histogram a, b, c;
  fill(a, 1, 10);
  fill(b, 100, 20);
  fill(c, 10000, 5);

  Histogram ab_c = a;        // (a + b) + c
  ab_c.merge(b);
  ab_c.merge(c);
  Histogram bc = b;          // a + (b + c)
  bc.merge(c);
  Histogram a_bc = a;
  a_bc.merge(bc);
  Histogram cba = c;         // Reversed order.
  cba.merge(b);
  cba.merge(a);

  EXPECT_EQ(ab_c.buckets(), a_bc.buckets());
  EXPECT_EQ(ab_c.buckets(), cba.buckets());
  EXPECT_EQ(ab_c.count(), 35u);
  EXPECT_EQ(ab_c.max(), 10004u);
  EXPECT_EQ(cba.max(), 10004u);
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(ab_c.quantile(q), a_bc.quantile(q));
    EXPECT_DOUBLE_EQ(ab_c.quantile(q), cba.quantile(q));
  }
}

TEST(Histogram, ExportToStatSet) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.record(64);
  StatSet s;
  h.export_to(s, "hist.lat");
  EXPECT_DOUBLE_EQ(s.get("hist.lat.p50"), 64.0);
  EXPECT_DOUBLE_EQ(s.get("hist.lat.p95"), 64.0);
  EXPECT_DOUBLE_EQ(s.get("hist.lat.p99"), 64.0);
  EXPECT_DOUBLE_EQ(s.get("hist.lat.max"), 64.0);
  EXPECT_DOUBLE_EQ(s.get("hist.lat.count"), 10.0);
}

TEST(Histogram, RoundTripThroughRawBuckets) {
  Histogram h;
  for (std::uint64_t v : {0ull, 1ull, 7ull, 300ull, 300ull, 1ull << 20}) {
    h.record(v);
  }
  Histogram copy;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    if (h.buckets()[static_cast<std::size_t>(b)] != 0) {
      copy.add_bucket(b, h.buckets()[static_cast<std::size_t>(b)]);
    }
  }
  copy.note_max(h.max());
  EXPECT_EQ(copy.buckets(), h.buckets());
  EXPECT_EQ(copy.count(), h.count());
  EXPECT_EQ(copy.max(), h.max());
}

TEST(Stats, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({4.0, 9.0}), 6.0);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({2.0, 0.0}), 0.0);  // Non-positive entries.
  EXPECT_NEAR(geomean({1.1, 1.2, 1.3}), 1.1972, 1e-3);
}

TEST(Stats, Mean) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

// ------------------------------------------------------------------- log ----

TEST(Log, FormatLineIsPinned) {
  // The line format is part of the operational surface: scripts that
  // attribute interleaved worker output key on "[sec.usec] [thread] [lvl]".
  EXPECT_EQ(Log::format_line(LogLevel::kWarn, "msg", 1234567890ull,
                             "allarm-w0"),
            "[1.234567] [allarm-w0] [warn] msg");
  EXPECT_EQ(Log::format_line(LogLevel::kError, "disk on fire", 0ull, "-"),
            "[0.000000] [-] [error] disk on fire");
  // Sub-microsecond parts truncate, they do not round.
  EXPECT_EQ(Log::format_line(LogLevel::kInfo, "x", 999ull, "main"),
            "[0.000000] [main] [info] x");
}

// -------------------------------------------------------------- checksum ----

TEST(Checksum, Crc32cKnownAnswerVectors) {
  // The canonical CRC32C check value plus the RFC 3720 (iSCSI) vectors.
  EXPECT_EQ(crc32c(std::string("123456789")), 0xE3069283u);
  EXPECT_EQ(crc32c(std::string(32, '\0')), 0x8A9136AAu);
  EXPECT_EQ(crc32c(std::string(32, '\xFF')), 0x62A8AB43u);
  std::string ascending(32, '\0');
  std::iota(ascending.begin(), ascending.end(), 0);
  EXPECT_EQ(crc32c(ascending), 0x46DD794Eu);
  EXPECT_EQ(crc32c(std::string()), 0u);
}

TEST(Checksum, Crc32cSeedContinuesAcrossPieces) {
  // Checksumming in pieces through `seed` equals one pass over the whole.
  const std::string whole = "123456789";
  const std::uint32_t piecewise =
      crc32c(whole.data() + 5, 4, crc32c(whole.data(), 5));
  EXPECT_EQ(piecewise, crc32c(whole));
  EXPECT_EQ(piecewise, 0xE3069283u);
}

TEST(Checksum, Fnv1a64KnownAnswerVectors) {
  const auto fnv = [](const std::string& s) {
    Fnv1a64 h;
    h.update(s.data(), s.size());
    return h.digest();
  };
  EXPECT_EQ(fnv(""), 0xcbf29ce484222325ull);  // The offset basis.
  EXPECT_EQ(fnv("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv("foobar"), 0x85944171f73967e8ull);
  EXPECT_EQ(fnv("hello"), 0xa430d84680aabd0bull);
}

TEST(Checksum, Fnv1a64StringFoldIsLengthPrefixed) {
  // update(std::string) folds the length first, so "ab"+"c" and "a"+"bc"
  // hash apart — the property the sweep spec hash relies on.
  Fnv1a64 a, b;
  a.update(std::string("ab"));
  a.update(std::string("c"));
  b.update(std::string("a"));
  b.update(std::string("bc"));
  EXPECT_NE(a.digest(), b.digest());
}

// ---------------------------------------------------------------- fileio ----

namespace {

std::string test_file_path(const char* name) {
  return testing::TempDir() + "/allarm_fileio_" + name;
}

}  // namespace

TEST(FileIo, PositionalWritesAndReadsRoundTrip) {
  const std::string path = test_file_path("positional");
  {
    File file(path, File::Mode::kCreate);
    file.write_at(0, "aaaa", 4);
    file.write_at(8, "bbbb", 4);  // Extends past EOF; bytes 4-7 read as 0.
    file.write_at(2, "XY", 2);    // Overwrite mid-file.
    EXPECT_EQ(file.size(), 12u);

    char buf[12] = {};
    file.read_at(0, buf, sizeof(buf));
    EXPECT_EQ(std::string(buf, 12), std::string("aaXY\0\0\0\0bbbb", 12));
    char mid[4] = {};
    file.read_at(2, mid, sizeof(mid));
    EXPECT_EQ(std::string(mid, 4), std::string("XY\0\0", 4));
    file.sync();
    file.close();
  }
  {
    File file(path, File::Mode::kReadWrite);
    file.truncate(4);
    EXPECT_EQ(file.size(), 4u);
  }
  std::remove(path.c_str());
}

TEST(FileIo, ShortReadsAreDetected) {
  const std::string path = test_file_path("short");
  File file(path, File::Mode::kCreate);
  file.write_at(0, "12345678", 8);

  // read_at demands every byte; past-EOF extents throw.
  char buf[16] = {};
  EXPECT_THROW(file.read_at(0, buf, sizeof(buf)), std::runtime_error);
  EXPECT_THROW(file.read_at(8, buf, 1), std::runtime_error);

  // read_at_most reports the truncated count instead.
  EXPECT_EQ(file.read_at_most(4, buf, sizeof(buf)), 4u);
  EXPECT_EQ(std::string(buf, 4), "5678");
  EXPECT_EQ(file.read_at_most(100, buf, sizeof(buf)), 0u);
  file.close();
  std::remove(path.c_str());
}

TEST(FileIo, ClosedOrInvalidFdPropagatesErrors) {
  const std::string path = test_file_path("closed");
  File file(path, File::Mode::kCreate);
  file.write_at(0, "x", 1);
  file.close();
  EXPECT_FALSE(file.is_open());
  file.close();  // Idempotent.

  char byte = 0;
  EXPECT_THROW(file.read_at(0, &byte, 1), std::runtime_error);
  EXPECT_THROW(file.write_at(0, "y", 1), std::runtime_error);
  EXPECT_THROW(file.size(), std::runtime_error);
  EXPECT_THROW(file.sync(), std::runtime_error);
  EXPECT_THROW(file.truncate(0), std::runtime_error);
  std::remove(path.c_str());

  // Opening a missing file read-only fails loudly, with the path.
  const std::string missing = test_file_path("does_not_exist");
  try {
    File nope(missing, File::Mode::kRead);
    FAIL() << "open of a missing file did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(missing), std::string::npos);
  }
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
}

}  // namespace
}  // namespace allarm
