// Unit tests for the flight recorder (obs/timeline): span recording,
// Chrome trace-event serialization, overflow accounting and the
// obs.timeline failpoint's loud-but-harmless degradation.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.hh"
#include "common/fileio.hh"
#include "obs/timeline.hh"

namespace allarm {
namespace {

using obs::SpanScope;
using obs::Timeline;

class Obs : public ::testing::Test {
 protected:
  void SetUp() override { Timeline::reset(); }
  void TearDown() override {
    Timeline::reset();
    failpoint::clear();
  }

  std::string temp_path(const char* tag) {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + "obs_" + info->name() + "_" + tag + ".json";
  }
};

TEST_F(Obs, DisabledRecorderIsInert) {
  EXPECT_FALSE(Timeline::enabled());
  { OBS_SPAN("noop", "test"); }
  Timeline::record("direct", "test", 0, 1);
  EXPECT_EQ(Timeline::span_count(), 0u);
  EXPECT_EQ(Timeline::dropped(), 0u);
}

TEST_F(Obs, RecordsSpansFromMultipleThreads) {
  Timeline::enable();
  { OBS_SPAN("main.work", "test"); }
  { OBS_SPAN_N("main.indexed", "test", 7); }
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 5; ++i) {
        OBS_SPAN("worker.item", "test");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(Timeline::span_count(), 2u + 3u * 5u);
  EXPECT_EQ(Timeline::dropped(), 0u);
}

TEST_F(Obs, WriteEmitsChromeTraceJson) {
  Timeline::enable();
  { OBS_SPAN("alpha.one", "cat_a"); }
  { OBS_SPAN_N("beta.two", "cat_b", 42); }
  const std::string path = temp_path("trace");
  ASSERT_TRUE(Timeline::write(path));
  const std::string json = read_file(path);
  // Structural pins, not a full parser: the envelope, both spans with
  // their categories, the complete-event phase, and thread metadata.
  EXPECT_NE(json.find("{\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"alpha.one\", \"cat\": \"cat_a\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\": \"beta.two\", \"cat\": \"cat_b\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"n\": 42}"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
  std::remove(path.c_str());
}

TEST_F(Obs, RingOverflowKeepsFirstSpansAndCounts) {
  Timeline::enable();
  const std::uint32_t extra = 5;
  for (std::uint32_t i = 0; i < Timeline::kRingCapacity + extra; ++i) {
    Timeline::record("hot", "test", i, 1);
  }
  EXPECT_EQ(Timeline::span_count(), Timeline::kRingCapacity);
  EXPECT_EQ(Timeline::dropped(), extra);
}

TEST_F(Obs, FailpointDegradesLoudlyWithoutThrowing) {
  Timeline::enable();
  { OBS_SPAN("doomed", "test"); }
  const std::string path = temp_path("failpoint");
  failpoint::Scoped guard("obs.timeline=err@1");
  EXPECT_FALSE(Timeline::write(path));
  // The file must be whole-or-absent: an injected failure leaves nothing.
  EXPECT_THROW(read_file(path), std::exception);
  // A later, unfaulted write of the SAME buffered spans still succeeds —
  // the failure consumed the output path, not the recorder state.
  failpoint::clear();
  EXPECT_TRUE(Timeline::write(path));
  EXPECT_NE(read_file(path).find("doomed"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(Obs, ResetDiscardsBufferedSpans) {
  Timeline::enable();
  { OBS_SPAN("gone", "test"); }
  EXPECT_EQ(Timeline::span_count(), 1u);
  Timeline::reset();
  EXPECT_FALSE(Timeline::enabled());
  EXPECT_EQ(Timeline::span_count(), 0u);
  // Re-enabling after reset records into a fresh ring (epoch bump).
  Timeline::enable();
  { OBS_SPAN("fresh", "test"); }
  EXPECT_EQ(Timeline::span_count(), 1u);
}

}  // namespace
}  // namespace allarm
