// Unit tests for the discrete-event kernel.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.hh"

namespace allarm::sim {
namespace {

TEST(EventQueue, StartsAtTimeZero) {
  EventQueue eq;
  EXPECT_EQ(eq.now(), 0u);
  EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue eq;
  std::vector<int> order;
  eq.schedule_at(30, [&] { order.push_back(3); });
  eq.schedule_at(10, [&] { order.push_back(1); });
  eq.schedule_at(20, [&] { order.push_back(2); });
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo) {
  EventQueue eq;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eq.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  eq.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue eq;
  int fired = 0;
  eq.schedule_at(1, [&] {
    ++fired;
    eq.schedule_in(4, [&] { ++fired; });
  });
  eq.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueue, RejectsSchedulingIntoThePast) {
  EventQueue eq;
  eq.schedule_at(10, [] {});
  eq.run();
  EXPECT_THROW(eq.schedule_at(5, [] {}), std::logic_error);
}

TEST(EventQueue, RunOneReturnsFalseWhenEmpty) {
  EventQueue eq;
  EXPECT_FALSE(eq.run_one());
  eq.schedule_at(1, [] {});
  EXPECT_TRUE(eq.run_one());
  EXPECT_FALSE(eq.run_one());
}

TEST(EventQueue, RunHonoursEventBudget) {
  EventQueue eq;
  int fired = 0;
  for (int i = 0; i < 10; ++i) eq.schedule_at(i, [&] { ++fired; });
  EXPECT_EQ(eq.run(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(eq.pending(), 6u);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive) {
  EventQueue eq;
  std::vector<Tick> fired;
  for (Tick t : {5u, 10u, 15u}) {
    eq.schedule_at(t, [&fired, &eq] { fired.push_back(eq.now()); });
  }
  eq.run_until(10);
  EXPECT_EQ(fired, (std::vector<Tick>{5, 10}));
  EXPECT_EQ(eq.now(), 10u);
  eq.run();
  EXPECT_EQ(fired.back(), 15u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle) {
  EventQueue eq;
  eq.run_until(100);
  EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, ClearDiscardsPending) {
  EventQueue eq;
  int fired = 0;
  eq.schedule_at(1, [&] { ++fired; });
  eq.clear();
  eq.run();
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CountsExecutedEvents) {
  EventQueue eq;
  for (int i = 0; i < 7; ++i) eq.schedule_at(i, [] {});
  eq.run();
  EXPECT_EQ(eq.events_executed(), 7u);
}

TEST(EventQueue, LargeVolumeKeepsOrder) {
  EventQueue eq;
  Tick last = 0;
  bool monotone = true;
  for (int i = 0; i < 20000; ++i) {
    eq.schedule_at(static_cast<Tick>((i * 7919) % 1000), [&, i] {
      monotone = monotone && eq.now() >= last;
      last = eq.now();
    });
  }
  eq.run();
  EXPECT_TRUE(monotone);
}

// The near horizon is 2^17 ticks: anything beyond now() + 131072 overflows
// into the far heap.  These tests pin the near/far split and, crucially,
// that (tick, insertion-order) FIFO survives migration between the two.

constexpr Tick kFar = 1u << 20;  // Safely beyond the near horizon.

TEST(EventQueue, FarEventsAreHeapedThenExecuted) {
  EventQueue eq;
  std::vector<int> order;
  eq.schedule_at(kFar, [&] { order.push_back(2); });
  eq.schedule_at(10, [&] { order.push_back(1); });
  EXPECT_EQ(eq.far_pending(), 1u);
  EXPECT_EQ(eq.pending(), 2u);
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(eq.now(), kFar);
  EXPECT_EQ(eq.far_pending(), 0u);
}

TEST(EventQueue, SameTickFifoSurvivesFarMigration) {
  // a and b overflow into the far heap (scheduled while the window is far
  // below kFar); c is scheduled for the same tick later, after the window
  // has advanced enough that kFar is within the near horizon -- so c is a
  // direct bucket insert after a and b migrated.  FIFO demands a, b, c.
  EventQueue eq;
  std::vector<char> order;
  eq.schedule_at(kFar, [&] { order.push_back('a'); });
  eq.schedule_at(kFar, [&] { order.push_back('b'); });
  EXPECT_EQ(eq.far_pending(), 2u);
  eq.schedule_at(kFar - 1000, [&] {
    eq.schedule_at(kFar, [&] { order.push_back('c'); });
  });
  eq.run();
  EXPECT_EQ(order, (std::vector<char>{'a', 'b', 'c'}));
}

TEST(EventQueue, FarEventsExecuteInTickSeqOrder) {
  EventQueue eq;
  std::vector<int> order;
  const Tick ticks[] = {kFar + 7, kFar + 3, kFar + 7, kFar + 1, kFar + 3};
  for (int i = 0; i < 5; ++i) {
    eq.schedule_at(ticks[i], [&order, i] { order.push_back(i); });
  }
  eq.run();
  // Sorted by (tick, insertion order): 3 (kFar+1), 1, 4 (kFar+3), 0, 2.
  EXPECT_EQ(order, (std::vector<int>{3, 1, 4, 0, 2}));
}

TEST(EventQueue, RunUntilIncludesFarBoundary) {
  EventQueue eq;
  int fired = 0;
  eq.schedule_at(kFar, [&] { ++fired; });
  eq.schedule_at(kFar + 1, [&] { ++fired; });
  eq.run_until(kFar);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eq.now(), kFar);
  EXPECT_EQ(eq.pending(), 1u);
  eq.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SchedulingAfterIdleRunUntilKeepsOrder) {
  // Regression: run_until's peek must not advance the window base past
  // `until`.  If it does, an event scheduled afterwards below the next
  // pending tick lands behind the window base and runs out of order (and
  // now() runs backwards).
  EventQueue eq;
  std::vector<Tick> fired;
  eq.schedule_at(1000, [&] { fired.push_back(eq.now()); });
  eq.run_until(500);
  EXPECT_EQ(eq.now(), 500u);
  eq.schedule_at(600, [&] { fired.push_back(eq.now()); });
  eq.run();
  EXPECT_EQ(fired, (std::vector<Tick>{600, 1000}));
  EXPECT_EQ(eq.now(), 1000u);
}

TEST(EventQueue, SchedulingAfterIdleRunUntilKeepsOrderAcrossHorizon) {
  // Same regression with the pending event in the far heap.
  EventQueue eq;
  std::vector<Tick> fired;
  eq.schedule_at(kFar, [&] { fired.push_back(eq.now()); });
  eq.run_until(500);
  eq.schedule_at(600, [&] { fired.push_back(eq.now()); });
  eq.run();
  EXPECT_EQ(fired, (std::vector<Tick>{600, kFar}));
}

TEST(EventQueue, ClearDiscardsNearAndFarAndQueueStaysUsable) {
  EventQueue eq;
  int fired = 0;
  eq.schedule_at(5, [&] { ++fired; });
  eq.schedule_at(kFar, [&] { ++fired; });
  eq.clear();
  EXPECT_EQ(eq.pending(), 0u);
  eq.run();
  EXPECT_EQ(fired, 0);
  // A cleared queue keeps working (experiment repetitions reuse it).
  eq.schedule_at(7, [&] { ++fired; });
  eq.schedule_at(kFar + 9, [&] { ++fired; });
  eq.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eq.now(), kFar + 9);
}

TEST(EventQueue, LargeVolumeAcrossHorizonKeepsOrder) {
  EventQueue eq;
  Tick last = 0;
  bool monotone = true;
  std::uint64_t fired = 0;
  for (int i = 0; i < 20000; ++i) {
    // Spread ticks across several near-window spans.
    eq.schedule_at(static_cast<Tick>((i * 7919) % 1000000), [&] {
      monotone = monotone && eq.now() >= last;
      last = eq.now();
      ++fired;
    });
  }
  eq.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(fired, 20000u);
}

TEST(Event, HoldsNonTriviallyCopyableCallables) {
  // A std::string capture exercises the non-trivial relocate path.
  std::string payload = "the quick brown fox jumps over the lazy dog";
  Event ev([payload, out = std::string()]() mutable { out = payload; });
  Event moved = std::move(ev);
  EXPECT_FALSE(static_cast<bool>(ev));
  EXPECT_TRUE(static_cast<bool>(moved));
  moved();
}

TEST(Event, OversizedCallablesFallBackToHeapAndAreCounted) {
  const std::uint64_t before = Event::heap_fallbacks();
  struct Big {
    char bytes[128];
  };
  Big big{};
  big.bytes[0] = 42;
  int out = 0;
  Event ev([big, &out] { out = big.bytes[0]; });
  EXPECT_EQ(Event::heap_fallbacks(), before + 1);
  ev();
  EXPECT_EQ(out, 42);
}

}  // namespace
}  // namespace allarm::sim
