// Unit tests for the discrete-event kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace allarm::sim {
namespace {

TEST(EventQueue, StartsAtTimeZero) {
  EventQueue eq;
  EXPECT_EQ(eq.now(), 0u);
  EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue eq;
  std::vector<int> order;
  eq.schedule_at(30, [&] { order.push_back(3); });
  eq.schedule_at(10, [&] { order.push_back(1); });
  eq.schedule_at(20, [&] { order.push_back(2); });
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo) {
  EventQueue eq;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eq.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  eq.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue eq;
  int fired = 0;
  eq.schedule_at(1, [&] {
    ++fired;
    eq.schedule_in(4, [&] { ++fired; });
  });
  eq.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueue, RejectsSchedulingIntoThePast) {
  EventQueue eq;
  eq.schedule_at(10, [] {});
  eq.run();
  EXPECT_THROW(eq.schedule_at(5, [] {}), std::logic_error);
}

TEST(EventQueue, RunOneReturnsFalseWhenEmpty) {
  EventQueue eq;
  EXPECT_FALSE(eq.run_one());
  eq.schedule_at(1, [] {});
  EXPECT_TRUE(eq.run_one());
  EXPECT_FALSE(eq.run_one());
}

TEST(EventQueue, RunHonoursEventBudget) {
  EventQueue eq;
  int fired = 0;
  for (int i = 0; i < 10; ++i) eq.schedule_at(i, [&] { ++fired; });
  EXPECT_EQ(eq.run(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(eq.pending(), 6u);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive) {
  EventQueue eq;
  std::vector<Tick> fired;
  for (Tick t : {5u, 10u, 15u}) {
    eq.schedule_at(t, [&fired, &eq] { fired.push_back(eq.now()); });
  }
  eq.run_until(10);
  EXPECT_EQ(fired, (std::vector<Tick>{5, 10}));
  EXPECT_EQ(eq.now(), 10u);
  eq.run();
  EXPECT_EQ(fired.back(), 15u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle) {
  EventQueue eq;
  eq.run_until(100);
  EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, ClearDiscardsPending) {
  EventQueue eq;
  int fired = 0;
  eq.schedule_at(1, [&] { ++fired; });
  eq.clear();
  eq.run();
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CountsExecutedEvents) {
  EventQueue eq;
  for (int i = 0; i < 7; ++i) eq.schedule_at(i, [] {});
  eq.run();
  EXPECT_EQ(eq.events_executed(), 7u);
}

TEST(EventQueue, LargeVolumeKeepsOrder) {
  EventQueue eq;
  Tick last = 0;
  bool monotone = true;
  for (int i = 0; i < 20000; ++i) {
    eq.schedule_at(static_cast<Tick>((i * 7919) % 1000), [&, i] {
      monotone = monotone && eq.now() >= last;
      last = eq.now();
    });
  }
  eq.run();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace allarm::sim
