// Property-based tests: parameterized sweeps asserting protocol invariants
// across benchmarks, directory modes, probe-filter geometries and seeds.
#include <gtest/gtest.h>

#include <tuple>

#include "core/experiment.hh"
#include "core/system.hh"
#include "test_util.hh"
#include "workload/profiles.hh"

namespace allarm {
namespace {

// ------------------------------------------------ benchmark x mode sweep ----

using BenchMode = std::tuple<std::string, DirectoryMode>;

class BenchModeProperty : public ::testing::TestWithParam<BenchMode> {};

TEST_P(BenchModeProperty, InvariantsHoldThroughoutExecution) {
  const auto& [bench, mode] = GetParam();
  SystemConfig config;
  config.directory_mode = mode;
  // Shrink the probe filter so eviction paths are stressed even in a short
  // run.
  config.probe_filter_coverage_bytes = 64 * 1024;
  const auto spec = workload::make_benchmark(bench, config, 700);
  core::System system(config);
  core::RunOptions options;
  options.seed = 17;
  options.invariant_check_period = 2000;
  core::RunResult r;
  ASSERT_NO_THROW(r = system.run(spec, options)) << bench;
  EXPECT_EQ(r.stats.get("sanity.anomalies"), 0.0);
  EXPECT_EQ(r.stats.get("sanity.upgrade_without_line"), 0.0);
  EXPECT_EQ(r.stats.get("sanity.wbb_collisions"), 0.0);
  EXPECT_TRUE(system.quiescent());
}

TEST_P(BenchModeProperty, EveryRequestIsServed) {
  const auto& [bench, mode] = GetParam();
  SystemConfig config;
  config.directory_mode = mode;
  const auto spec = workload::make_benchmark(bench, config, 500);
  core::System system(config);
  core::RunOptions options;
  options.seed = 23;
  const core::RunResult r = system.run(spec, options);
  // Demand misses equal directory requests (every miss produced exactly one
  // request, and the run completed, so every request was granted).  The
  // statistics window opens between a request's issue and its arrival for
  // at most one in-flight request per core, hence the tolerance.
  EXPECT_NEAR(r.stats.get("cache.misses"), r.stats.get("dir.requests"), 32.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchModeProperty,
    ::testing::Combine(::testing::ValuesIn(workload::benchmark_names()),
                       ::testing::Values(DirectoryMode::kBaseline,
                                         DirectoryMode::kAllarm)),
    [](const ::testing::TestParamInfo<BenchMode>& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ------------------------------------------------------ geometry sweeps ----

class PfGeometryProperty
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(PfGeometryProperty, ProtocolSoundAcrossDirectorySizes) {
  const auto [coverage_kb, ways] = GetParam();
  SystemConfig config;
  config.probe_filter_coverage_bytes = coverage_kb * 1024;
  config.probe_filter_ways = ways;
  config.directory_mode = DirectoryMode::kAllarm;
  const auto spec = workload::make_benchmark("ocean-cont", config, 500);
  core::System system(config);
  core::RunOptions options;
  options.seed = 29;
  options.invariant_check_period = 3000;
  ASSERT_NO_THROW(system.run(spec, options));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PfGeometryProperty,
    ::testing::Values(std::make_tuple(32u, 4u), std::make_tuple(64u, 4u),
                      std::make_tuple(128u, 4u), std::make_tuple(256u, 2u),
                      std::make_tuple(512u, 8u)));

class ReplacementProperty
    : public ::testing::TestWithParam<ReplacementKind> {};

TEST_P(ReplacementProperty, AllPoliciesRunCleanly) {
  SystemConfig config;
  config.cache_replacement = GetParam();
  config.probe_filter_replacement = GetParam();
  config.directory_mode = DirectoryMode::kAllarm;
  const auto spec = workload::make_benchmark("dedup", config, 500);
  core::System system(config);
  core::RunOptions options;
  options.seed = 31;
  core::RunResult r;
  ASSERT_NO_THROW(r = system.run(spec, options));
  EXPECT_EQ(r.stats.get("sanity.upgrade_without_line"), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Policies, ReplacementProperty,
                         ::testing::Values(ReplacementKind::kLru,
                                           ReplacementKind::kTreePlru,
                                           ReplacementKind::kRandom));

// ----------------------------------------------------------- seed sweeps ----

class SeedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedProperty, AllarmNeverAllocatesForPurelyLocalWork) {
  // Pure private streaming: ALLARM must allocate nothing, evict nothing,
  // and send no eviction traffic, at any seed.
  SystemConfig config;
  config.directory_mode = DirectoryMode::kAllarm;
  std::vector<test::ScriptThread> threads;
  Rng rng(GetParam());
  for (NodeId n = 0; n < 16; ++n) {
    std::vector<workload::Access> script;
    for (int i = 0; i < 300; ++i) {
      const auto line = static_cast<std::uint32_t>(rng.below(512));
      script.push_back(rng.chance(0.4) ? test::store(test::priv(n, line))
                                       : test::load(test::priv(n, line)));
    }
    threads.push_back({n, std::move(script), ticks_from_ns(3.0) * n, 0});
  }
  auto ran = test::run_scripted(SystemConfig{config}, DirectoryMode::kAllarm,
                                test::make_scripted(std::move(threads)),
                                GetParam());
  EXPECT_EQ(ran.result.stats.get("pf.inserts"), 0.0);
  EXPECT_EQ(ran.result.stats.get("dir.pf_evictions"), 0.0);
  EXPECT_EQ(ran.result.stats.get("noc.bytes.eviction"), 0.0);
  EXPECT_GT(ran.result.stats.get("dir.local_no_alloc"), 0.0);
}

TEST_P(SeedProperty, BaselineTracksEveryCachedLine) {
  // Baseline inclusivity, verified structurally by check_invariants at run
  // end (strict mode) - here we assert the run completes and the directory
  // tracked at least as many lines as remain cached.
  SystemConfig config;
  const auto spec = workload::make_benchmark("barnes", config, 400);
  core::System system(config);
  core::RunOptions options;
  options.seed = GetParam();
  system.run(spec, options);
  std::uint64_t cached = 0, tracked = 0;
  for (NodeId n = 0; n < 16; ++n) {
    cached += system.cache(n).hierarchy().occupancy();
    tracked += system.directory(n).probe_filter().occupancy();
  }
  EXPECT_GE(tracked, cached);  // Stale Shared entries may exceed.
}

TEST_P(SeedProperty, MixedRandomSharingKeepsSingleWriter) {
  // 4 threads hammer 64 shared lines with mixed loads/stores; the strict
  // invariant check at the end (inside run()) enforces single-writer and
  // directory agreement.
  SystemConfig config;
  config.directory_mode = GetParam() % 2 == 0 ? DirectoryMode::kAllarm
                                              : DirectoryMode::kBaseline;
  Rng rng(GetParam() * 977);
  std::vector<test::ScriptThread> threads;
  for (NodeId n = 0; n < 4; ++n) {
    std::vector<workload::Access> script;
    for (int i = 0; i < 400; ++i) {
      const auto line = static_cast<std::uint32_t>(rng.below(64));
      script.push_back(rng.chance(0.5) ? test::store(test::priv(30, line))
                                       : test::load(test::priv(30, line)));
    }
    threads.push_back(
        {static_cast<NodeId>(n * 5), std::move(script), 0, 0});
  }
  core::System system(config);
  core::RunOptions options;
  options.seed = GetParam();
  options.invariant_check_period = 500;
  ASSERT_NO_THROW(
      system.run(test::make_scripted(std::move(threads)), options));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// ------------------------------------------------- cross-mode comparisons ----

class CrossModeProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(CrossModeProperty, AllarmInsertsOnlyOnRemoteMisses) {
  // The defining ALLARM invariant: a directory entry is only ever allocated
  // by a remote request, so inserts are bounded by remote requests.  Under
  // the baseline, inserts are bounded by all requests.
  SystemConfig config;
  const auto spec = workload::make_benchmark(GetParam(), config, 600);
  const auto pair = core::run_pair(config, spec, 41);
  EXPECT_LE(pair.allarm.stats.get("pf.inserts"),
            pair.allarm.stats.get("dir.remote_requests") + 32.0);
  EXPECT_LE(pair.baseline.stats.get("pf.inserts"),
            pair.baseline.stats.get("dir.requests") + 32.0);
}

TEST_P(CrossModeProperty, HiddenFractionIsAValidProbability) {
  SystemConfig config;
  const auto spec = workload::make_benchmark(GetParam(), config, 600);
  const auto r = core::run_single(config, DirectoryMode::kAllarm, spec, 43);
  const double hidden = r.stats.get("dir.probe_hidden_fraction");
  EXPECT_GE(hidden, 0.0);
  EXPECT_LE(hidden, 1.0);
  EXPECT_LE(r.stats.get("dir.remote_miss_probe_hidden") +
                r.stats.get("dir.remote_miss_probe_hit"),
            r.stats.get("dir.remote_miss_probes"));
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, CrossModeProperty,
                         ::testing::ValuesIn([] {
                           auto names = workload::benchmark_names();
                           return names;
                         }()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace allarm
