// Unit tests for the mesh network model.
#include <gtest/gtest.h>

#include "common/config.hh"
#include "noc/mesh.hh"

namespace allarm::noc {
namespace {

SystemConfig table1() { return SystemConfig{}; }

TEST(Mesh, Geometry) {
  Mesh mesh(table1());
  EXPECT_EQ(mesh.num_nodes(), 16u);
  EXPECT_EQ(mesh.width(), 4u);
  EXPECT_EQ(mesh.height(), 4u);
}

TEST(Mesh, ManhattanHops) {
  Mesh mesh(table1());
  EXPECT_EQ(mesh.hops(0, 0), 0u);
  EXPECT_EQ(mesh.hops(0, 3), 3u);    // Same row.
  EXPECT_EQ(mesh.hops(0, 12), 3u);   // Same column.
  EXPECT_EQ(mesh.hops(0, 15), 6u);   // Opposite corner.
  EXPECT_EQ(mesh.hops(5, 10), 2u);
  EXPECT_EQ(mesh.hops(10, 5), 2u);   // Symmetric.
}

TEST(Mesh, LocalDeliveryBypassesTheMesh) {
  SystemConfig config = table1();
  Mesh mesh(config);
  const Tick arrival = mesh.send(3, 3, 72, 1000, TrafficCause::kResponse);
  EXPECT_EQ(arrival, 1000 + config.local_hop_latency);
  EXPECT_EQ(mesh.stats().messages, 0u);
  EXPECT_EQ(mesh.stats().bytes, 0u);
  EXPECT_EQ(mesh.stats().local_messages, 1u);
}

TEST(Mesh, UncontendedLatencyFormula) {
  SystemConfig config = table1();
  Mesh mesh(config);
  // 8-byte control = 2 flits; 1 hop; router + (serialization + link + router).
  const Tick expected = config.router_latency +
                        (2 * config.flit_serialization() +
                         config.link_latency + config.router_latency);
  EXPECT_EQ(mesh.uncontended_latency(0, 1, 8), expected);
  // Matches the stateful path when idle.
  EXPECT_EQ(mesh.send(0, 1, 8, 0, TrafficCause::kRequest), expected);
}

TEST(Mesh, LatencyScalesWithDistance) {
  Mesh mesh(table1());
  const Tick near = mesh.uncontended_latency(0, 1, 8);
  const Tick far = mesh.uncontended_latency(0, 15, 8);
  EXPECT_GT(far, near);
  // 6 hops vs 1 hop: per-hop cost is identical.
  EXPECT_EQ(far - mesh.uncontended_latency(0, 0, 8),
            6 * (near - mesh.uncontended_latency(0, 0, 8)));
}

TEST(Mesh, DataMessagesSerializeLonger) {
  Mesh mesh(table1());
  EXPECT_GT(mesh.uncontended_latency(0, 1, 72),
            mesh.uncontended_latency(0, 1, 8));
}

TEST(Mesh, ContentionDelaysSecondMessage) {
  SystemConfig config = table1();
  Mesh mesh(config);
  const Tick first = mesh.send(0, 1, 72, 0, TrafficCause::kResponse);
  const Tick second = mesh.send(0, 1, 72, 0, TrafficCause::kResponse);
  EXPECT_GT(second, first);
  // The second message queues behind 18 flits of serialization.
  EXPECT_EQ(second - first, 18 * config.flit_serialization());
}

TEST(Mesh, FifoPerRouteEvenWithMixedSizes) {
  Mesh mesh(table1());
  // A big message sent first arrives before a small one sent just after.
  const Tick big = mesh.send(0, 15, 72, 0, TrafficCause::kResponse);
  const Tick small = mesh.send(0, 15, 8, 1, TrafficCause::kRequest);
  EXPECT_LT(big, small);
}

TEST(Mesh, DisjointRoutesDoNotInterfere) {
  Mesh mesh(table1());
  const Tick a = mesh.send(0, 1, 72, 0, TrafficCause::kResponse);
  const Tick b = mesh.send(4, 5, 72, 0, TrafficCause::kResponse);
  EXPECT_EQ(a, b);  // Same shape, different links.
}

TEST(Mesh, ByteAndMessageAccounting) {
  Mesh mesh(table1());
  mesh.send(0, 1, 8, 0, TrafficCause::kRequest);
  mesh.send(0, 2, 72, 0, TrafficCause::kResponse);
  const NocStats& s = mesh.stats();
  EXPECT_EQ(s.messages, 2u);
  EXPECT_EQ(s.control_messages, 1u);
  EXPECT_EQ(s.data_messages, 1u);
  EXPECT_EQ(s.bytes, 80u);
  EXPECT_EQ(s.bytes_by_cause[static_cast<int>(TrafficCause::kRequest)], 8u);
  EXPECT_EQ(s.bytes_by_cause[static_cast<int>(TrafficCause::kResponse)], 72u);
  // flit-hops: 2 flits x 1 hop + 18 flits x 2 hops.
  EXPECT_EQ(s.flit_hops, 2u + 36u);
}

TEST(Mesh, ResetStatsClears) {
  Mesh mesh(table1());
  mesh.send(0, 5, 72, 0, TrafficCause::kProbe);
  mesh.reset_stats();
  EXPECT_EQ(mesh.stats().messages, 0u);
  EXPECT_EQ(mesh.stats().bytes, 0u);
  EXPECT_EQ(mesh.max_link_busy_time(), 0u);
}

TEST(Mesh, TracksLinkBusyTime) {
  SystemConfig config = table1();
  Mesh mesh(config);
  mesh.send(0, 1, 72, 0, TrafficCause::kResponse);
  EXPECT_EQ(mesh.max_link_busy_time(), 18 * config.flit_serialization());
}

TEST(Mesh, RejectsBadNodeIds) {
  Mesh mesh(table1());
  EXPECT_THROW(mesh.send(0, 99, 8, 0, TrafficCause::kRequest),
               std::out_of_range);
}

TEST(Mesh, CauseNames) {
  EXPECT_EQ(to_string(TrafficCause::kEviction), "eviction");
  EXPECT_EQ(to_string(TrafficCause::kWriteback), "writeback");
}

// XY routing determinism: request and reply take (possibly different) fixed
// routes; latency must be reproducible.
TEST(Mesh, DeterministicTiming) {
  Mesh a(table1()), b(table1());
  for (int i = 0; i < 100; ++i) {
    const NodeId src = static_cast<NodeId>(i % 16);
    const NodeId dst = static_cast<NodeId>((i * 7) % 16);
    EXPECT_EQ(a.send(src, dst, 72, i * 10, TrafficCause::kResponse),
              b.send(src, dst, 72, i * 10, TrafficCause::kResponse));
  }
}

}  // namespace
}  // namespace allarm::noc
