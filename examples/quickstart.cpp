// Quickstart: build the Table I system, run one benchmark profile under the
// baseline and under ALLARM, and print the headline metrics.
//
//   ./quickstart [benchmark] [accesses-per-thread]
//
// Defaults: ocean-cont, 20000 accesses per thread.
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/config.hh"
#include "common/stats.hh"
#include "core/experiment.hh"
#include "workload/profiles.hh"

int main(int argc, char** argv) {
  using namespace allarm;

  const std::string bench = argc > 1 ? argv[1] : "ocean-cont";
  const std::uint64_t accesses = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                          : 20000;

  SystemConfig config;  // Table I defaults: 16 cores, 4x4 mesh, 512kB PF.
  const workload::WorkloadSpec spec =
      workload::make_benchmark(bench, config, accesses);

  std::cout << "Running '" << bench << "' (" << accesses
            << " accesses/thread) on a " << config.mesh_width << "x"
            << config.mesh_height << " mesh, "
            << config.probe_filter_coverage_bytes / 1024
            << " kB probe filter per node...\n\n";

  const core::PairResult pair = core::run_pair(config, spec, /*seed=*/42);

  TextTable table({"metric", "baseline", "ALLARM", "ALLARM/baseline"});
  auto row = [&](const std::string& name, const std::string& stat,
                 int precision = 0) {
    table.add_row({name,
                   TextTable::fmt(pair.baseline.stats.get(stat), precision),
                   TextTable::fmt(pair.allarm.stats.get(stat), precision),
                   TextTable::fmt(pair.normalized(stat), 3)});
  };
  row("runtime (ns)", "runtime_ns");
  row("PF evictions", "dir.pf_evictions");
  row("NoC traffic (bytes)", "noc.bytes");
  row("L2 misses", "cache.misses");
  row("NoC energy (nJ)", "energy.noc_nj", 1);
  row("PF energy (nJ)", "energy.pf_nj", 1);
  std::cout << table.to_string() << '\n';

  std::cout << "speedup:                      "
            << TextTable::fmt(pair.speedup(), 3) << "\n";
  std::cout << "local fraction of requests:   "
            << TextTable::fmt(
                   pair.baseline.stats.get("dir.local_fraction"), 3)
            << "\n";
  std::cout << "local misses w/o allocation:  "
            << pair.allarm.stats.get("dir.local_no_alloc") << "\n";
  std::cout << "local probe hidden fraction:  "
            << TextTable::fmt(
                   pair.allarm.stats.get("dir.probe_hidden_fraction"), 3)
            << "\n";
  return 0;
}
