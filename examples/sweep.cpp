// sweep: parallel grid driver for the paper's figure experiments.
//
//   sweep --grid NAME [options]
//
//   --grid NAME          which grid to run (see --list):
//                          fig3    benchmarks x Table-I machine x {baseline, allarm}
//                          fig3h   benchmarks x {512,256,128} kB probe filter
//                                  x {baseline, allarm}
//                          policy  benchmarks x {first-touch, interleave}
//                                  x {baseline, allarm}
//                          region  benchmarks x {4096,1024,256,64} B regions
//                                  x {baseline, allarm, region}
//                          quick   two benchmarks, shortened runs (smoke test)
//                          trace   .altr trace files (--trace) x replay core
//                                  counts (--cores) x {first-touch,
//                                  interleave} x {baseline, allarm}
//   --jobs N             worker threads (default: ALLARM_JOBS, else all cores)
//   --seeds K            replicates per cell, seeded per grid coordinates
//                        (default 1)
//   --accesses N         ROI accesses per thread (default per grid, or the
//                        ALLARM_BENCH_ACCESSES environment variable)
//   --seed N             base seed (default 42)
//   --out FILE           stream the JSON report here (default: stdout)
//   --csv FILE           also stream a long-format CSV report
//   --journal FILE       journal every finished job to FILE (+ FILE.data)
//                        so the sweep survives interruption
//   --resume             resume from --journal: already-journaled jobs are
//                        not re-run, their results replay from disk
//   --resume-cells       per-cell incremental resume: like --resume, but a
//                        journal from an EDITED spec is rebound instead of
//                        refused — only cells whose config/seed identity
//                        changed re-run; unchanged cells replay from disk.
//                        Creates the journal when missing (one flag serves
//                        first run and re-run).  Unsharded sweeps only
//   --shard K/N          run only shard K of N (1-based; cells partition
//                        round-robin).  Requires --journal so the shards
//                        can be merged later
//   --cost-from FILE     with --shard: plan the cell partition from the
//                        measured per-job wall_ns in journal FILE (a prior
//                        run or --timing pass of the same grid shape)
//                        instead of round-robin, so slow cells spread
//                        across shards.  Every shard of one sweep must use
//                        the same FILE; reports are byte-identical either
//                        way (the plan only moves work, never results)
//   --merge FILE         merge mode: fold the given shard journal instead
//                        of running anything (repeat per shard).  Produces
//                        byte-identical output to a single-machine run
//   --window N           cap on in-flight + unfolded results (default:
//                        4x workers); bounds peak memory at O(jobs)
//   --timing             include per-cell "wall_ns" (host wall-clock per
//                        replicate) in the JSON report.  Off by default:
//                        wall clock varies run to run, and the canonical
//                        report must stay byte-identical for one spec
//   --profile            record latency histograms in every job (access
//                        request->completion, directory occupancy, mesh
//                        queueing) and include per-cell "hist" quantiles
//                        (p50/p95/p99/max) in the JSON report.  Off by
//                        default for the same reason as --timing
//   --timeline FILE      write a Chrome trace-event timeline of the
//                        sweep's wall-clock spans (jobs, journal appends,
//                        fsyncs, sink writes, PDES windows) to FILE; load
//                        it in Perfetto (docs/OBSERVABILITY.md).  Pure
//                        side effect: reports are byte-identical
//   --capture DIR        additionally capture every job's executed access
//                        stream to DIR/job-<index>.altr (.altr binary
//                        traces; see docs/TRACES.md).  Reports unchanged
//   --replay DIR         replay every job from DIR/job-<index>.altr
//                        (captured from the same grid) instead of running
//                        the synthetic generators; the report is
//                        byte-identical to the direct run at any --jobs
//   --trace FILE         (trace grid) an .altr file to sweep; repeatable
//   --cores LIST         (trace grid) comma-separated replay core counts
//                        (default: all 16; a thread's captured placement
//                        node remaps to node mod cores)
//   --cell-retries N     re-run a failed job up to N times with exponential
//                        backoff before giving up (default 0: fail fast).
//                        Retried jobs reproduce their bytes exactly
//   --cell-backoff-ms N  backoff before the first retry (doubles per
//                        attempt; default 100)
//   --cell-timeout SEC   per-job wall-clock watchdog: a job running longer
//                        aborts with a structured no-progress diagnostic
//                        (then retries/quarantines like any failure)
//   --quarantine         report permanently failing jobs as structured
//                        "failed" cells and finish the sweep (exit 3)
//                        instead of aborting at the first one (exit 1)
//   --failpoints SPEC    deterministic fault injection, e.g.
//                        'journal.fsync=err@3;fileio.pwrite=torn@7' (also
//                        via ALLARM_FAILPOINTS; see docs/ROBUSTNESS.md)
//   --par-shards N       split every job's event queue into N lanes
//                        (parallel single-simulation; N must divide the
//                        mesh width; see docs/PARALLEL.md).  Default 1
//   --par-mode MODE      barrier (default): conservative, byte-identical
//                        to the serial kernel at any N; lax: slack-bounded
//                        windows, approximate (changes results and the
//                        journal spec hash)
//   --par-slack-ns X     lax window slack in nanoseconds (default:
//                        4x the partition lookahead)
//   --list               list available grids and exit
//
// Reports are streamed cell by cell — a finished cell is serialized and
// dropped, so report size never bounds grid size.  They contain no
// execution metadata: the same grid, seeds and accesses produce
// byte-identical output at any --jobs setting, across kill/--resume
// cycles, and across --shard/--merge splits.  See docs/SWEEPS.md.
//
// Exit codes: 0 success, 1 error, 2 usage, 3 degraded completion (the
// sweep finished but quarantined at least one job; see docs/ROBUSTNESS.md).
#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/failpoint.hh"
#include "common/fileio.hh"
#include "core/experiment.hh"
#include "obs/timeline.hh"
#include "parallel/partition.hh"
#include "runner/grids.hh"
#include "runner/report.hh"
#include "runner/sink.hh"
#include "runner/sweep.hh"
#include "trace/replay.hh"
#include "workload/profiles.hh"

namespace {

using namespace allarm;

struct Options {
  std::string grid;
  std::uint32_t jobs = 0;  // 0 = ALLARM_JOBS / hardware concurrency.
  std::uint32_t seeds = 1;
  std::uint64_t accesses = 0;  // 0 = grid default.
  std::uint64_t seed = 42;
  std::string out;
  std::string csv;
  std::string journal;
  bool resume = false;
  bool resume_cells = false;
  std::string cost_from;
  runner::ShardSpec shard;
  std::vector<std::string> merge;
  std::size_t window = 0;
  bool timing = false;
  bool profile = false;
  std::string timeline;
  std::string capture_dir;
  std::string replay_dir;
  std::vector<std::string> traces;
  std::vector<std::uint32_t> cores;
  std::uint32_t cell_retries = 0;
  std::uint32_t cell_backoff_ms = 100;
  double cell_timeout_s = 0.0;
  bool quarantine = false;
  std::string failpoints;
  parallel::ParConfig par;
};

[[noreturn]] void usage(int code) {
  std::cout <<
      "usage: sweep --grid fig3|fig3h|policy|region|quick|trace [--jobs N]\n"
      "             [--seeds K] [--accesses N] [--seed N] [--out FILE]\n"
      "             [--csv FILE] [--journal FILE [--resume|--resume-cells]]\n"
      "             [--shard K/N [--cost-from FILE]]\n"
      "             [--merge FILE]... [--window N] [--timing]\n"
      "             [--profile] [--timeline FILE]\n"
      "             [--capture DIR] [--replay DIR]\n"
      "             [--trace FILE]... [--cores LIST] [--list]\n"
      "             [--cell-retries N] [--cell-backoff-ms N]\n"
      "             [--cell-timeout SEC] [--quarantine] [--failpoints SPEC]\n"
      "             [--par-shards N] [--par-mode barrier|lax]\n"
      "             [--par-slack-ns X]\n";
  std::exit(code);
}

void list_grids() {
  std::cout
      << "fig3    all benchmarks x Table-I machine x {baseline, allarm}\n"
      << "fig3h   all benchmarks x {512, 256, 128} kB probe filter x modes\n"
      << "policy  all benchmarks x {first-touch, interleave} x modes\n"
      << "region  all benchmarks x {4096, 1024, 256, 64} B regions x"
         " {baseline, allarm, region}\n"
      << "quick   barnes + ocean-cont, shortened runs (smoke test)\n"
      << "trace   --trace .altr files x --cores x {first-touch, interleave}"
         " x modes\n";
}

/// Workload label of one trace-grid cell, and its inverse.  Encoding the
/// core count into the label keeps the (trace x cores) product on the
/// workload axis, where the label also seeds and names the cell.
std::string trace_label(const std::string& path, std::uint32_t cores) {
  return path + "@" + std::to_string(cores);
}

/// Path -> open reader, shared across the grid: a trace swept at several
/// core counts and configs is opened (and its framing CRC-verified) once,
/// not once per (workload, config) cell.
using TraceReaderCache =
    std::map<std::string, std::shared_ptr<const trace::TraceReader>>;

workload::WorkloadSpec make_trace_workload_for_label(
    const std::string& label, const SystemConfig& config,
    TraceReaderCache& readers) {
  const auto at = label.rfind('@');
  if (at == std::string::npos) {
    throw std::invalid_argument("trace grid label '" + label +
                                "' is missing its @cores suffix");
  }
  const auto cores =
      static_cast<std::uint32_t>(std::strtoul(label.c_str() + at + 1,
                                              nullptr, 10));
  const std::string path = label.substr(0, at);
  auto& reader = readers[path];
  if (reader == nullptr) {
    reader = std::make_shared<const trace::TraceReader>(path);
  }
  return trace::make_replay_workload(reader, config, cores);
}

/// mkdir for --capture; an existing directory is fine (rerun into it).
void ensure_directory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    throw std::runtime_error("cannot create directory " + path + ": " +
                             std::strerror(errno));
  }
}

runner::SweepSpec make_grid(const Options& options) {
  runner::SweepSpec spec;
  if (options.grid == "trace") {
    if (options.traces.empty()) {
      std::cerr << "--grid trace requires at least one --trace FILE\n";
      usage(2);
    }
    SystemConfig config;
    spec.name = options.grid;
    spec.replicates = options.seeds;
    spec.base_seed = options.seed;
    // Trace lengths are fixed by the files; the accesses knob does not
    // apply (and stays out of the report's meaning).
    spec.accesses_per_thread = 0;
    std::vector<std::uint32_t> cores = options.cores;
    if (cores.empty()) cores = {config.num_cores};
    for (const std::string& path : options.traces) {
      for (const std::uint32_t c : cores) {
        spec.workloads.push_back(trace_label(path, c));
      }
    }
    spec.modes = {DirectoryMode::kBaseline, DirectoryMode::kAllarm};
    spec.configs = {{"first-touch", config, numa::AllocPolicy::kFirstTouch},
                    {"interleave", config, numa::AllocPolicy::kInterleave}};
    const auto readers = std::make_shared<TraceReaderCache>();
    spec.make_workload = [readers](const std::string& label,
                                   const SystemConfig& grid_config,
                                   std::uint64_t) {
      return make_trace_workload_for_label(label, grid_config, *readers);
    };
  } else {
    // The built-in grids live in the library (runner/grids.hh) so the
    // sweep service builds the same specs from spool requests.
    runner::GridKnobs knobs;
    knobs.seeds = options.seeds;
    knobs.base_seed = options.seed;
    knobs.accesses = options.accesses;
    try {
      spec = runner::make_builtin_grid(options.grid, knobs);
    } catch (const std::invalid_argument& e) {
      std::cerr << e.what() << "\n";
      usage(2);
    }
  }
  // Fail fast on an impossible partition (shards must divide the mesh
  // width) instead of surfacing it as N identical per-job failures.
  if (options.par.enabled()) {
    for (const runner::ConfigPoint& point : spec.configs) {
      try {
        parallel::make_partition(point.config, options.par.shards);
      } catch (const std::exception& e) {
        std::cerr << "--par-shards " << options.par.shards << " ("
                  << point.label << "): " << e.what() << "\n";
        usage(2);
      }
    }
  }
  spec.capture_dir = options.capture_dir;
  spec.replay_dir = options.replay_dir;
  spec.par = options.par;
  spec.profile = options.profile;
  return spec;
}

runner::ShardSpec parse_shard(const char* text) {
  runner::ShardSpec shard;
  char* end = nullptr;
  shard.index = static_cast<std::uint32_t>(std::strtoul(text, &end, 10));
  if (end == text || *end != '/') {
    std::cerr << "--shard wants K/N, got '" << text << "'\n";
    usage(2);
  }
  const char* count_text = end + 1;
  shard.count = static_cast<std::uint32_t>(std::strtoul(count_text, &end, 10));
  if (end == count_text || *end != '\0') {
    std::cerr << "--shard wants K/N, got '" << text << "'\n";
    usage(2);
  }
  try {
    shard.validate();
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    usage(2);
  }
  return shard;
}

Options parse(int argc, char** argv) {
  Options options;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(2);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--grid") == 0) {
      options.grid = value(i);
    } else if (std::strcmp(arg, "--jobs") == 0) {
      options.jobs = static_cast<std::uint32_t>(std::strtoul(value(i), nullptr, 10));
    } else if (std::strcmp(arg, "--seeds") == 0) {
      options.seeds = static_cast<std::uint32_t>(std::strtoul(value(i), nullptr, 10));
    } else if (std::strcmp(arg, "--accesses") == 0) {
      options.accesses = std::strtoull(value(i), nullptr, 10);
    } else if (std::strcmp(arg, "--seed") == 0) {
      options.seed = std::strtoull(value(i), nullptr, 10);
    } else if (std::strcmp(arg, "--out") == 0) {
      options.out = value(i);
    } else if (std::strcmp(arg, "--csv") == 0) {
      options.csv = value(i);
    } else if (std::strcmp(arg, "--journal") == 0) {
      options.journal = value(i);
    } else if (std::strcmp(arg, "--resume") == 0) {
      options.resume = true;
    } else if (std::strcmp(arg, "--resume-cells") == 0) {
      options.resume_cells = true;
    } else if (std::strcmp(arg, "--cost-from") == 0) {
      options.cost_from = value(i);
    } else if (std::strcmp(arg, "--shard") == 0) {
      options.shard = parse_shard(value(i));
    } else if (std::strcmp(arg, "--merge") == 0) {
      options.merge.push_back(value(i));
    } else if (std::strcmp(arg, "--window") == 0) {
      options.window = std::strtoull(value(i), nullptr, 10);
    } else if (std::strcmp(arg, "--timing") == 0) {
      options.timing = true;
    } else if (std::strcmp(arg, "--profile") == 0) {
      options.profile = true;
    } else if (std::strcmp(arg, "--timeline") == 0) {
      options.timeline = value(i);
    } else if (std::strcmp(arg, "--capture") == 0) {
      options.capture_dir = value(i);
    } else if (std::strcmp(arg, "--replay") == 0) {
      options.replay_dir = value(i);
    } else if (std::strcmp(arg, "--trace") == 0) {
      options.traces.push_back(value(i));
    } else if (std::strcmp(arg, "--cores") == 0) {
      const std::string list = value(i);
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t end = comma == std::string::npos ? list.size() : comma;
        const auto cores = static_cast<std::uint32_t>(
            std::strtoul(list.substr(pos, end - pos).c_str(), nullptr, 10));
        if (cores == 0) {
          std::cerr << "--cores wants a comma-separated list of positive "
                       "counts, got '" << list << "'\n";
          usage(2);
        }
        options.cores.push_back(cores);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (std::strcmp(arg, "--cell-retries") == 0) {
      options.cell_retries =
          static_cast<std::uint32_t>(std::strtoul(value(i), nullptr, 10));
    } else if (std::strcmp(arg, "--cell-backoff-ms") == 0) {
      options.cell_backoff_ms =
          static_cast<std::uint32_t>(std::strtoul(value(i), nullptr, 10));
    } else if (std::strcmp(arg, "--cell-timeout") == 0) {
      options.cell_timeout_s = std::strtod(value(i), nullptr);
      if (options.cell_timeout_s <= 0.0) {
        std::cerr << "--cell-timeout wants a positive number of seconds\n";
        usage(2);
      }
    } else if (std::strcmp(arg, "--quarantine") == 0) {
      options.quarantine = true;
    } else if (std::strcmp(arg, "--failpoints") == 0) {
      options.failpoints = value(i);
    } else if (std::strcmp(arg, "--par-shards") == 0) {
      options.par.shards =
          static_cast<std::uint32_t>(std::strtoul(value(i), nullptr, 10));
      if (options.par.shards == 0) {
        std::cerr << "--par-shards must be positive\n";
        usage(2);
      }
    } else if (std::strcmp(arg, "--par-mode") == 0) {
      try {
        options.par.mode = parallel::par_mode_from_string(value(i));
      } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        usage(2);
      }
    } else if (std::strcmp(arg, "--par-slack-ns") == 0) {
      const double ns = std::strtod(value(i), nullptr);
      if (ns <= 0.0) {
        std::cerr << "--par-slack-ns wants a positive number of ns\n";
        usage(2);
      }
      options.par.slack = ticks_from_ns(ns);
    } else if (std::strcmp(arg, "--list") == 0) {
      list_grids();
      std::exit(0);
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(0);
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      usage(2);
    }
  }
  if (options.grid.empty()) {
    std::cerr << "--grid is required\n";
    usage(2);
  }
  if (options.seeds == 0) {
    std::cerr << "--seeds must be positive\n";
    usage(2);
  }
  if ((options.resume || options.resume_cells) && options.journal.empty()) {
    std::cerr << "--resume/--resume-cells require --journal\n";
    usage(2);
  }
  if (options.resume && options.resume_cells) {
    std::cerr << "--resume and --resume-cells are different recovery modes; "
                 "pick one\n";
    usage(2);
  }
  if (options.resume_cells && options.shard.count > 1) {
    std::cerr << "--resume-cells applies to unsharded sweeps (stale records "
                 "would strand in other shards' journals)\n";
    usage(2);
  }
  if (!options.cost_from.empty() && options.shard.count <= 1) {
    std::cerr << "--cost-from plans a --shard partition; it needs --shard "
                 "K/N with N > 1\n";
    usage(2);
  }
  if (options.shard.count > 1 && options.journal.empty() &&
      options.merge.empty()) {
    std::cerr << "--shard requires --journal (shards merge via journals)\n";
    usage(2);
  }
  if (!options.merge.empty() &&
      (options.resume || !options.journal.empty() || options.shard.count > 1)) {
    std::cerr << "--merge folds existing journals; it cannot be combined "
                 "with --journal/--resume/--shard\n";
    usage(2);
  }
  if (!options.capture_dir.empty() && !options.replay_dir.empty()) {
    std::cerr << "--capture and --replay are mutually exclusive\n";
    usage(2);
  }
  if (!options.capture_dir.empty() &&
      (options.resume || options.resume_cells)) {
    // Jobs replayed from the journal never execute, so their traces would
    // silently be missing (or torn) from the capture directory.
    std::cerr << "--capture needs a full fresh run; it cannot be combined "
                 "with --resume/--resume-cells\n";
    usage(2);
  }
  if ((!options.capture_dir.empty() || !options.replay_dir.empty()) &&
      options.grid == "trace") {
    std::cerr << "--capture/--replay apply to synthetic grids; the trace "
                 "grid already replays its --trace files\n";
    usage(2);
  }
  if ((!options.traces.empty() || !options.cores.empty()) &&
      options.grid != "trace") {
    std::cerr << "--trace/--cores only apply to --grid trace\n";
    usage(2);
  }
  if (options.par.slack > 0 && options.par.mode != parallel::ParMode::kLax) {
    std::cerr << "--par-slack-ns only applies to --par-mode lax\n";
    usage(2);
  }
  return options;
}

/// Publishes the report temp files and narrates where they went.  Only
/// called on success; on failure the target paths keep their previous
/// contents (exit is nonzero either way — never a silently truncated
/// report).  The tmp+fsync+rename pipeline itself is runner::ReportFiles.
void finish_reports(runner::ReportFiles& reports, const Options& options) {
  reports.commit();
  if (!options.out.empty()) std::cerr << "wrote " << options.out << "\n";
  if (!options.csv.empty()) std::cerr << "wrote " << options.csv << "\n";
  // The timeline is observability, not results: a failed write already
  // logged loudly, and the committed reports above stand either way.
  if (!options.timeline.empty() &&
      obs::Timeline::write(options.timeline)) {
    std::cerr << "wrote " << options.timeline << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) try {
  const Options options = parse(argc, argv);
  // Arm the span recorder before any instrumented work (worker threads
  // check the flag once per span; disabled recording is a relaxed load).
  if (!options.timeline.empty()) obs::Timeline::enable();
  std::string failpoints = allarm::failpoint::configure_from_env();
  if (!options.failpoints.empty()) {
    allarm::failpoint::configure(options.failpoints);
    failpoints = options.failpoints;
  }
  if (!failpoints.empty()) {
    std::cerr << "failpoints active: " << failpoints << "\n";
  }
  if (!options.capture_dir.empty()) ensure_directory(options.capture_dir);
  const runner::SweepSpec spec = make_grid(options);

  runner::ReportFiles reports(options.out, options.csv, options.timing,
                              options.profile);

  if (!options.merge.empty()) {
    std::cerr << "merging " << options.merge.size() << " journal(s) of sweep '"
              << spec.name << "'\n";
    const runner::StreamStats stats =
        runner::merge_journals(spec, options.merge, reports.sink());
    finish_reports(reports, options);
    std::cerr << "merged " << stats.jobs_total << " jobs into "
              << stats.cells_emitted << " cells in " << stats.wall_seconds
              << " s";
    if (stats.jobs_failed > 0) {
      std::cerr << " (DEGRADED: " << stats.jobs_failed << " failed jobs in "
                << stats.cells_failed << " cells)";
    }
    std::cerr << "\n";
    return stats.jobs_failed > 0 ? 3 : 0;
  }

  const runner::SweepRunner sweep_runner(options.jobs);
  runner::StreamOptions stream;
  stream.journal_path = options.journal;
  stream.resume = options.resume;
  stream.resume_cells = options.resume_cells;
  stream.shard = options.shard;
  if (!options.cost_from.empty()) {
    // Cost-aware partition: plan_shards is deterministic, so every shard
    // of the sweep derives the identical assignment from the same journal.
    const std::vector<double> costs =
        runner::cell_costs_from_journal(spec, options.cost_from);
    stream.shard.assignment = runner::plan_shards(costs, options.shard.count);
    std::cerr << "planned " << costs.size() << " cells across "
              << options.shard.count << " shards from measured costs in "
              << options.cost_from << "\n";
  }
  stream.max_outstanding = options.window;
  stream.cell_retries = options.cell_retries;
  stream.retry_backoff_ms = options.cell_backoff_ms;
  stream.cell_timeout_ns =
      static_cast<std::uint64_t>(options.cell_timeout_s * 1e9);
  stream.quarantine = options.quarantine;

  // Banner counts the jobs THIS run owns (scripts parse it, e.g. the
  // resume smoke's kill threshold), not the full grid.
  std::uint64_t owned_cells = 0;
  for (std::uint64_t cell = 0; cell < spec.cell_count(); ++cell) {
    if (stream.shard.owns_cell(cell)) ++owned_cells;
  }
  std::cerr << "sweep '" << spec.name << "': "
            << owned_cells * spec.replicates << " jobs";
  if (options.shard.count > 1) {
    std::cerr << " (shard " << options.shard.index << "/"
              << options.shard.count << " of " << spec.job_count()
              << " total)";
  }
  std::cerr << " on " << sweep_runner.jobs() << " workers\n";

  const runner::StreamStats stats =
      sweep_runner.run_streaming(spec, reports.sink(), stream);
  finish_reports(reports, options);

  std::cerr << "done in " << stats.wall_seconds << " s: "
            << stats.jobs_executed << " jobs run";
  if (stats.jobs_resumed > 0) {
    std::cerr << ", " << stats.jobs_resumed << " resumed from journal";
  }
  if (stats.jobs_retried > 0) {
    std::cerr << ", " << stats.jobs_retried << " retries";
  }
  std::cerr << ", " << stats.cells_emitted << " cells, peak "
            << stats.peak_resident_results << " resident results ("
            << stats.tasks_stolen << " tasks stolen)";
  if (stats.jobs_failed > 0) {
    std::cerr << "\nDEGRADED: " << stats.jobs_failed
              << " jobs quarantined as failed across " << stats.cells_failed
              << " cells; see the \"failed\" report sections";
  }
  std::cerr << "\n";
  return stats.jobs_failed > 0 ? 3 : 0;
} catch (const std::exception& e) {
  std::cerr << "sweep: " << e.what() << "\n";
  return 1;
}
