// sweep: parallel grid driver for the paper's figure experiments.
//
//   sweep --grid NAME [options]
//
//   --grid NAME          which grid to run (see --list):
//                          fig3    benchmarks x Table-I machine x {baseline, allarm}
//                          fig3h   benchmarks x {512,256,128} kB probe filter
//                                  x {baseline, allarm}
//                          policy  benchmarks x {first-touch, interleave}
//                                  x {baseline, allarm}
//                          quick   two benchmarks, shortened runs (smoke test)
//   --jobs N             worker threads (default: ALLARM_JOBS, else all cores)
//   --seeds K            replicates per cell, seeded per grid coordinates
//                        (default 1)
//   --accesses N         ROI accesses per thread (default per grid, or the
//                        ALLARM_BENCH_ACCESSES environment variable)
//   --seed N             base seed (default 42)
//   --out FILE           write the JSON report here (default: stdout)
//   --csv FILE           also write a long-format CSV report
//   --list               list available grids and exit
//
// Reports contain no execution metadata: the same grid, seeds and accesses
// produce byte-identical output at any --jobs setting.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/config.hh"
#include "core/experiment.hh"
#include "runner/report.hh"
#include "runner/sweep.hh"
#include "workload/profiles.hh"

namespace {

using namespace allarm;

struct Options {
  std::string grid;
  std::uint32_t jobs = 0;  // 0 = ALLARM_JOBS / hardware concurrency.
  std::uint32_t seeds = 1;
  std::uint64_t accesses = 0;  // 0 = grid default.
  std::uint64_t seed = 42;
  std::string out;
  std::string csv;
};

[[noreturn]] void usage(int code) {
  std::cout <<
      "usage: sweep --grid fig3|fig3h|policy|quick [--jobs N] [--seeds K]\n"
      "             [--accesses N] [--seed N] [--out FILE] [--csv FILE] [--list]\n";
  std::exit(code);
}

void list_grids() {
  std::cout
      << "fig3    all benchmarks x Table-I machine x {baseline, allarm}\n"
      << "fig3h   all benchmarks x {512, 256, 128} kB probe filter x modes\n"
      << "policy  all benchmarks x {first-touch, interleave} x modes\n"
      << "quick   barnes + ocean-cont, shortened runs (smoke test)\n";
}

runner::SweepSpec make_grid(const Options& options) {
  runner::SweepSpec spec;
  spec.name = options.grid;
  spec.workloads = workload::benchmark_names();
  spec.modes = {DirectoryMode::kBaseline, DirectoryMode::kAllarm};
  spec.replicates = options.seeds;
  spec.base_seed = options.seed;

  SystemConfig config;
  if (options.grid == "fig3") {
    spec.accesses_per_thread = core::bench_accesses(30000);
    spec.configs = {{"table1", config}};
  } else if (options.grid == "fig3h") {
    spec.accesses_per_thread = core::bench_accesses(20000);
    for (const std::uint32_t kb : {512u, 256u, 128u}) {
      SystemConfig c = config;
      c.probe_filter_coverage_bytes = kb * 1024;
      spec.configs.push_back({std::to_string(kb) + "kB", c});
    }
  } else if (options.grid == "policy") {
    spec.accesses_per_thread = core::bench_accesses(20000);
    spec.configs = {{"first-touch", config, numa::AllocPolicy::kFirstTouch},
                    {"interleave", config, numa::AllocPolicy::kInterleave}};
  } else if (options.grid == "quick") {
    spec.accesses_per_thread = core::bench_accesses(2000);
    spec.workloads = {"barnes", "ocean-cont"};
    spec.configs = {{"table1", config}};
  } else {
    std::cerr << "unknown grid '" << options.grid << "'\n";
    usage(2);
  }
  if (options.accesses > 0) spec.accesses_per_thread = options.accesses;
  return spec;
}

Options parse(int argc, char** argv) {
  Options options;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(2);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--grid") == 0) {
      options.grid = value(i);
    } else if (std::strcmp(arg, "--jobs") == 0) {
      options.jobs = static_cast<std::uint32_t>(std::strtoul(value(i), nullptr, 10));
    } else if (std::strcmp(arg, "--seeds") == 0) {
      options.seeds = static_cast<std::uint32_t>(std::strtoul(value(i), nullptr, 10));
    } else if (std::strcmp(arg, "--accesses") == 0) {
      options.accesses = std::strtoull(value(i), nullptr, 10);
    } else if (std::strcmp(arg, "--seed") == 0) {
      options.seed = std::strtoull(value(i), nullptr, 10);
    } else if (std::strcmp(arg, "--out") == 0) {
      options.out = value(i);
    } else if (std::strcmp(arg, "--csv") == 0) {
      options.csv = value(i);
    } else if (std::strcmp(arg, "--list") == 0) {
      list_grids();
      std::exit(0);
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(0);
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      usage(2);
    }
  }
  if (options.grid.empty()) {
    std::cerr << "--grid is required\n";
    usage(2);
  }
  if (options.seeds == 0) {
    std::cerr << "--seeds must be positive\n";
    usage(2);
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) try {
  const Options options = parse(argc, argv);
  const runner::SweepSpec spec = make_grid(options);
  const runner::SweepRunner sweep_runner(options.jobs);

  std::cerr << "sweep '" << spec.name << "': " << spec.job_count()
            << " jobs on " << sweep_runner.jobs() << " workers\n";
  const runner::SweepResult result = sweep_runner.run(spec);
  std::cerr << "done in " << result.wall_seconds << " s ("
            << result.tasks_stolen << " tasks stolen)\n";

  const std::string json = runner::to_json(result);
  if (options.out.empty()) {
    std::cout << json;
  } else {
    runner::write_file(options.out, json);
    std::cerr << "wrote " << options.out << "\n";
  }
  if (!options.csv.empty()) {
    runner::write_file(options.csv, runner::to_csv(result));
    std::cerr << "wrote " << options.csv << "\n";
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "sweep: " << e.what() << "\n";
  return 1;
}
