// NUMA placement study: ALLARM's detection heuristic relies on first-touch
// allocation homing thread-private pages at the toucher's node (Section
// II-A of the paper).  This example runs the same workload under
// first-touch and interleaved placement, with and without ALLARM, and
// shows how the no-allocation fast path and the directory load change.
//
//   ./numa_placement [benchmark] [accesses-per-thread]
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/config.hh"
#include "common/stats.hh"
#include "core/experiment.hh"
#include "workload/profiles.hh"

int main(int argc, char** argv) {
  using namespace allarm;

  const std::string bench = argc > 1 ? argv[1] : "ocean-cont";
  const std::uint64_t accesses =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 15000;

  SystemConfig config;
  const auto spec = workload::make_benchmark(bench, config, accesses);

  std::cout << "Placement study on '" << bench << "' (" << accesses
            << " accesses/thread)\n\n";

  TextTable table({"placement", "mode", "local req fraction",
                   "no-alloc fast path", "PF inserts", "PF evictions",
                   "runtime (ms)"});
  for (const auto policy :
       {numa::AllocPolicy::kFirstTouch, numa::AllocPolicy::kInterleave}) {
    for (const auto mode : {DirectoryMode::kBaseline, DirectoryMode::kAllarm}) {
      const core::RunResult r =
          core::run_single(config, mode, spec, /*seed=*/42, policy);
      table.add_row(
          {policy == numa::AllocPolicy::kFirstTouch ? "first-touch"
                                                    : "interleave",
           to_string(mode),
           TextTable::fmt(r.stats.get("dir.local_fraction"), 3),
           TextTable::fmt(r.stats.get("dir.local_no_alloc"), 0),
           TextTable::fmt(r.stats.get("pf.inserts"), 0),
           TextTable::fmt(r.stats.get("dir.pf_evictions"), 0),
           TextTable::fmt(r.stats.get("runtime_ns") / 1e6, 3)});
    }
  }
  std::cout << table.to_string()
            << "\nUnder first-touch, ALLARM turns the (majority) local "
               "requests into allocation-free\nDRAM accesses.  Interleaving "
               "destroys the locality the heuristic depends on:\nthe fast "
               "path starves and the directories fill as in the baseline.\n";

  // Next-touch repair (Section II of the paper): when data is initialized
  // by one thread but used exclusively by another, marking the page
  // next-touch re-homes it at its real consumer - after which ALLARM treats
  // the consumer's accesses as local again.
  {
    numa::Os os(config, numa::AllocPolicy::kFirstTouch);
    const Addr page = 0x1234000;
    os.touch(0, page, /*initializing thread's node=*/0);
    const NodeId before = os.home_of(*os.translate(0, page));
    os.mark_next_touch(0, page);
    os.touch(0, page, /*consuming thread's node=*/9);
    const NodeId after = os.home_of(*os.translate(0, page));
    std::cout << "\nnext-touch demo: page initialized at node " << before
              << ", re-homed at node " << after
              << " when its consumer touched it next.\n";
  }
  return 0;
}
