// Calibration / inspection tool: runs one workload under baseline and
// ALLARM and dumps the full statistic set side by side, with ratios.
//
//   ./calibrate [benchmark|<name>-2p] [accesses] [pf-kb]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>

#include "common/config.hh"
#include "core/experiment.hh"
#include "workload/profiles.hh"

int main(int argc, char** argv) {
  using namespace allarm;

  std::string bench = argc > 1 ? argv[1] : "ocean-cont";
  const std::uint64_t accesses =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 30000;
  const std::uint32_t pf_kb =
      argc > 3 ? static_cast<std::uint32_t>(std::strtoul(argv[3], nullptr, 10))
               : 512;

  SystemConfig config;
  config.probe_filter_coverage_bytes = pf_kb * 1024;

  workload::WorkloadSpec spec;
  if (bench.size() > 3 && bench.substr(bench.size() - 3) == "-2p") {
    spec = workload::make_multiprocess(bench.substr(0, bench.size() - 3),
                                       config, accesses);
  } else {
    spec = workload::make_benchmark(bench, config, accesses);
  }

  const core::PairResult pair = core::run_pair(config, spec, 42);

  std::cout << std::left << std::setw(36) << "stat" << std::setw(16)
            << "baseline" << std::setw(16) << "allarm" << "ratio\n";
  for (const auto& [name, base_value] : pair.baseline.stats.values()) {
    const double a = pair.allarm.stats.get(name);
    std::cout << std::left << std::setw(36) << name << std::setw(16)
              << base_value << std::setw(16) << a << std::fixed
              << std::setprecision(3)
              << (base_value != 0.0 ? a / base_value : 0.0)
              << std::defaultfloat << '\n';
  }
  std::cout << "\nspeedup " << std::fixed << std::setprecision(4)
            << pair.speedup() << '\n';
  return 0;
}
