// trace: capture, inspect and replay .altr binary access traces.
//
//   trace record --workload NAME --out FILE [options]
//       Runs a synthetic benchmark profile once and captures its executed
//       access stream (plus workload metadata and setup page placements)
//       to FILE.  Prints the run's result block to stdout.
//
//   trace info FILE [--json]
//       Prints the trace's metadata: captured workload, seed, mode,
//       policy, per-thread placement and record counts, block/framing
//       geometry.  --json emits the same metadata as one JSON object
//       (stable key order) for scripts.
//
//   trace cat FILE [--limit N]
//       Streams records back out as legacy text ("<tid> <L|S|I> <hex>"),
//       thread by thread.
//
//   trace replay FILE [options]
//       Replays the trace through a fresh simulation and prints the same
//       result block as `record`.  With the defaults (which come from the
//       trace's own metadata: captured mode, policy and seed) the output
//       is byte-identical to the capture run's — the property
//       scripts/ci_trace_smoke.sh checks.
//
//   trace verify FILE [--json]
//       Integrity-scans every structure of the file — framing (header,
//       footer, index, meta) and every record block's CRCs and record
//       decode — and reports ALL damage found, never stopping at the
//       first bad block.  Exit 0 when clean, 1 when anything is damaged.
//
// Options:
//   --workload NAME      benchmark profile to capture (see sweep --list)
//   --mode M             baseline | allarm | region (replay default: as
//                        captured)
//   --policy P           first-touch | interleave (replay default: as
//                        captured)
//   --seed N             run seed (replay default: as captured)
//   --accesses N         ROI accesses per thread for record (default 2000,
//                        or ALLARM_BENCH_ACCESSES)
//   --cores N            replay on N cores (each thread's captured
//                        placement node remaps to node mod N; default:
//                        the captured placement)
//   --out FILE           record: where to write the trace
//   --json               info: machine-readable JSON instead of the table
//
// Result blocks go to stdout; banners and progress to stderr, so
// `trace record ... > a.txt` and `trace replay ... > b.txt` diff cleanly.
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>

#include "common/config.hh"
#include "common/failpoint.hh"
#include "common/stats.hh"
#include "core/experiment.hh"
#include "trace/convert.hh"
#include "trace/reader.hh"
#include "trace/replay.hh"
#include "workload/profiles.hh"

namespace {

using namespace allarm;

[[noreturn]] void usage(int code) {
  std::cout <<
      "usage: trace record --workload NAME --out FILE [--mode M] [--policy P]"
      " [--seed N] [--accesses N]\n"
      "       trace info FILE [--json]\n"
      "       trace cat FILE [--limit N]\n"
      "       trace replay FILE [--mode M] [--policy P] [--seed N]"
      " [--cores N]\n"
      "       trace verify FILE [--json]\n";
  std::exit(code);
}

struct Options {
  std::string command;
  std::string file;      ///< info/cat/replay positional argument.
  std::string workload;
  std::string out;
  std::string mode;      ///< Empty = default (record: baseline; replay: meta).
  std::string policy;
  std::uint64_t seed = 0;
  bool seed_set = false;
  std::uint64_t accesses = 0;
  std::uint32_t cores = 0;
  std::uint64_t limit = 0;
  bool json = false;
};

Options parse(int argc, char** argv) {
  if (argc < 2) usage(2);
  Options o;
  o.command = argv[1];
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(2);
    return argv[++i];
  };
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--workload") == 0) {
      o.workload = value(i);
    } else if (std::strcmp(arg, "--out") == 0) {
      o.out = value(i);
    } else if (std::strcmp(arg, "--mode") == 0) {
      o.mode = value(i);
    } else if (std::strcmp(arg, "--policy") == 0) {
      o.policy = value(i);
    } else if (std::strcmp(arg, "--seed") == 0) {
      o.seed = std::strtoull(value(i), nullptr, 10);
      o.seed_set = true;
    } else if (std::strcmp(arg, "--accesses") == 0) {
      o.accesses = std::strtoull(value(i), nullptr, 10);
    } else if (std::strcmp(arg, "--cores") == 0) {
      o.cores = static_cast<std::uint32_t>(
          std::strtoul(value(i), nullptr, 10));
    } else if (std::strcmp(arg, "--limit") == 0) {
      o.limit = std::strtoull(value(i), nullptr, 10);
    } else if (std::strcmp(arg, "--json") == 0) {
      o.json = true;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(0);
    } else if (arg[0] == '-') {
      std::cerr << "unknown option '" << arg << "'\n";
      usage(2);
    } else if (o.file.empty()) {
      o.file = arg;
    } else {
      std::cerr << "unexpected argument '" << arg << "'\n";
      usage(2);
    }
  }
  return o;
}

DirectoryMode parse_mode(const std::string& text) {
  if (text == "baseline") return DirectoryMode::kBaseline;
  if (text == "allarm") return DirectoryMode::kAllarm;
  if (text == "region") return DirectoryMode::kRegion;
  throw std::invalid_argument("unknown mode '" + text +
                              "' (want baseline|allarm|region)");
}

numa::AllocPolicy parse_policy(const std::string& text) {
  if (text == "first-touch") return numa::AllocPolicy::kFirstTouch;
  if (text == "interleave") return numa::AllocPolicy::kInterleave;
  throw std::invalid_argument("unknown policy '" + text +
                              "' (want first-touch|interleave)");
}

const char* mode_name(std::uint32_t mode) {
  if (mode == static_cast<std::uint32_t>(DirectoryMode::kAllarm)) {
    return "allarm";
  }
  if (mode == static_cast<std::uint32_t>(DirectoryMode::kRegion)) {
    return "region";
  }
  return "baseline";
}

const char* policy_name(std::uint32_t policy) {
  return policy == static_cast<std::uint32_t>(numa::AllocPolicy::kInterleave)
             ? "interleave"
             : "first-touch";
}

/// The canonical result block: deterministic for a deterministic run, so
/// record/replay outputs can be compared byte for byte.  Excludes
/// execution metadata (wall_ns).
void print_result(const std::string& workload, const core::RunResult& r) {
  std::cout << "workload " << workload << "\n";
  std::cout << "runtime_ns " << json_number(ns_from_ticks(r.runtime)) << "\n";
  for (const auto& [name, value] : r.stats.values()) {
    std::cout << name << " " << json_number(value) << "\n";
  }
}

int cmd_record(const Options& o) {
  if (o.workload.empty() || o.out.empty()) {
    std::cerr << "record requires --workload and --out\n";
    usage(2);
  }
  core::RunRequest request;
  request.mode = o.mode.empty() ? DirectoryMode::kBaseline : parse_mode(o.mode);
  request.policy = o.policy.empty() ? numa::AllocPolicy::kFirstTouch
                                    : parse_policy(o.policy);
  request.seed = o.seed_set ? o.seed : 1;
  const std::uint64_t accesses =
      o.accesses > 0 ? o.accesses : core::bench_accesses(2000);
  request.spec =
      workload::make_benchmark(o.workload, request.config, accesses);
  request.capture_trace = o.out;

  std::cerr << "recording " << o.workload << " (mode " << to_string(request.mode)
            << ", seed " << request.seed << ", " << accesses
            << " accesses/thread) -> " << o.out << "\n";
  const core::RunResult result = core::run_request(request);
  print_result(o.workload, result);

  const trace::TraceReader reader(o.out);
  std::cerr << "wrote " << o.out << ": " << reader.total_records()
            << " records, " << reader.blocks().size() << " blocks, "
            << reader.file_bytes() << " bytes\n";
  return 0;
}

/// `trace info --json`: the same metadata as the human block, one JSON
/// object with a fixed key order so scripts can diff it.
void print_info_json(const std::string& file, const trace::TraceReader& reader) {
  const trace::TraceMeta& meta = reader.meta();
  std::cout << "{\n";
  std::cout << "  \"file\": " << json_quote(file) << ",\n";
  std::cout << "  \"workload\": " << json_quote(meta.workload) << ",\n";
  std::cout << "  \"captured_mode\": "
            << json_quote(mode_name(meta.directory_mode)) << ",\n";
  std::cout << "  \"captured_policy\": "
            << json_quote(policy_name(meta.alloc_policy)) << ",\n";
  std::cout << "  \"captured_seed\": "
            << json_number(static_cast<double>(meta.seed)) << ",\n";
  std::cout << "  \"threads\": "
            << json_number(static_cast<double>(reader.thread_count())) << ",\n";
  std::cout << "  \"records\": "
            << json_number(static_cast<double>(reader.total_records()))
            << ",\n";
  std::cout << "  \"blocks\": "
            << json_number(static_cast<double>(reader.blocks().size()))
            << ",\n";
  std::cout << "  \"setup_touches\": "
            << json_number(static_cast<double>(meta.setup.size())) << ",\n";
  std::cout << "  \"file_bytes\": "
            << json_number(static_cast<double>(reader.file_bytes())) << ",\n";
  std::cout << "  \"thread_table\": [\n";
  for (std::uint32_t slot = 0; slot < reader.thread_count(); ++slot) {
    const trace::TraceThreadMeta& t = meta.threads[slot];
    std::cout << "    {\"thread\": " << t.id << ", \"asid\": " << t.asid
              << ", \"node\": " << t.node
              << ", \"warmup\": " << t.warmup_accesses
              << ", \"roi\": " << t.accesses
              << ", \"records\": " << reader.thread_records(slot)
              << ", \"think_ns\": "
              << json_number(ns_from_ticks(t.think))
              << ", \"jitter\": " << json_number(t.think_jitter) << "}"
              << (slot + 1 < reader.thread_count() ? "," : "") << "\n";
  }
  std::cout << "  ]\n";
  std::cout << "}\n";
}

int cmd_info(const Options& o) {
  if (o.file.empty()) usage(2);
  const trace::TraceReader reader(o.file);
  if (o.json) {
    print_info_json(o.file, reader);
    return 0;
  }
  const trace::TraceMeta& meta = reader.meta();
  std::cout << "file            " << o.file << "\n";
  std::cout << "workload        " << meta.workload << "\n";
  std::cout << "captured_mode   " << mode_name(meta.directory_mode) << "\n";
  std::cout << "captured_policy " << policy_name(meta.alloc_policy) << "\n";
  std::cout << "captured_seed   " << meta.seed << "\n";
  std::cout << "threads         " << reader.thread_count() << "\n";
  std::cout << "records         " << reader.total_records() << "\n";
  std::cout << "blocks          " << reader.blocks().size() << "\n";
  std::cout << "setup_touches   " << meta.setup.size() << "\n";
  std::cout << "file_bytes      " << reader.file_bytes() << "\n";
  TextTable table({"thread", "asid", "node", "warmup", "roi", "records",
                   "think_ns", "jitter"});
  for (std::uint32_t slot = 0; slot < reader.thread_count(); ++slot) {
    const trace::TraceThreadMeta& t = meta.threads[slot];
    table.add_row({std::to_string(t.id), std::to_string(t.asid),
                   std::to_string(t.node), std::to_string(t.warmup_accesses),
                   std::to_string(t.accesses),
                   std::to_string(reader.thread_records(slot)),
                   TextTable::fmt(ns_from_ticks(t.think), 2),
                   TextTable::fmt(t.think_jitter, 2)});
  }
  std::cout << table.to_string();
  return 0;
}

int cmd_verify(const Options& o) {
  if (o.file.empty()) usage(2);
  const trace::VerifyReport report = trace::verify_trace(o.file);
  if (o.json) {
    std::cout << "{\n";
    std::cout << "  \"file\": " << json_quote(o.file) << ",\n";
    std::cout << "  \"file_bytes\": " << report.file_bytes << ",\n";
    std::cout << "  \"framing_ok\": " << (report.framing_ok ? "true" : "false")
              << ",\n";
    std::cout << "  \"blocks_total\": " << report.blocks_total << ",\n";
    std::cout << "  \"blocks_ok\": " << report.blocks_ok << ",\n";
    std::cout << "  \"records_ok\": " << report.records_ok << ",\n";
    std::cout << "  \"issues\": [";
    for (std::size_t i = 0; i < report.issues.size(); ++i) {
      if (i > 0) std::cout << ",";
      std::cout << "\n    {\"offset\": " << report.issues[i].offset
                << ", \"what\": " << json_quote(report.issues[i].what) << "}";
    }
    if (!report.issues.empty()) std::cout << "\n  ";
    std::cout << "]\n";
    std::cout << "}\n";
  } else {
    std::cout << "file         " << o.file << "\n";
    std::cout << "file_bytes   " << report.file_bytes << "\n";
    std::cout << "framing      " << (report.framing_ok ? "ok" : "DAMAGED")
              << "\n";
    std::cout << "blocks       " << report.blocks_ok << "/"
              << report.blocks_total << " ok\n";
    std::cout << "records      " << report.records_ok << " decoded\n";
    for (const trace::VerifyIssue& issue : report.issues) {
      std::cout << "issue @" << issue.offset << ": " << issue.what << "\n";
    }
    std::cout << (report.ok() ? "clean\n" : "CORRUPT\n");
  }
  return report.ok() ? 0 : 1;
}

int cmd_cat(const Options& o) {
  if (o.file.empty()) usage(2);
  const trace::TraceReader reader(o.file);
  trace::write_text_trace(reader, std::cout, o.limit);
  return 0;
}

int cmd_replay(const Options& o) {
  if (o.file.empty()) usage(2);
  auto reader = std::make_shared<const trace::TraceReader>(o.file);
  const trace::TraceMeta& meta = reader->meta();

  core::RunRequest request;
  request.mode = o.mode.empty()
                     ? static_cast<DirectoryMode>(meta.directory_mode)
                     : parse_mode(o.mode);
  request.policy = o.policy.empty()
                       ? static_cast<numa::AllocPolicy>(meta.alloc_policy)
                       : parse_policy(o.policy);
  request.seed = o.seed_set ? o.seed : meta.seed;

  std::cerr << "replaying " << o.file << " (" << reader->total_records()
            << " records, mode " << to_string(request.mode) << ", seed "
            << request.seed << ")\n";
  const workload::WorkloadSpec spec =
      trace::make_replay_workload(reader, request.config, o.cores);
  const core::RunResult result = core::run_single(
      request.config, request.mode, spec, request.seed, request.policy);
  print_result(meta.workload, result);
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  // Deterministic fault injection for crash-path testing (the spec
  // grammar is documented in docs/ROBUSTNESS.md).
  const std::string failpoints = allarm::failpoint::configure_from_env();
  if (!failpoints.empty()) {
    std::cerr << "failpoints active: " << failpoints << "\n";
  }
  const Options options = parse(argc, argv);
  if (options.command == "record") return cmd_record(options);
  if (options.command == "info") return cmd_info(options);
  if (options.command == "cat") return cmd_cat(options);
  if (options.command == "replay") return cmd_replay(options);
  if (options.command == "verify") return cmd_verify(options);
  if (options.command == "--help" || options.command == "-h") usage(0);
  std::cerr << "unknown command '" << options.command << "'\n";
  usage(2);
} catch (const std::exception& e) {
  std::cerr << "trace: " << e.what() << "\n";
  return 1;
}
