// Protocol trace: a microscopic walk through the coherence protocol with
// trace logging enabled.  Three cores touch one cache line in sequence;
// the directory trace (on stderr) shows each GetS/GetM, probe-filter hit or
// miss, and - under ALLARM - the local probe of the home node's cache.
//
//   ./protocol_trace [baseline|allarm]
#include <iostream>
#include <memory>
#include <string>

#include "common/log.hh"
#include "core/system.hh"
#include "workload/spec.hh"

namespace {

using namespace allarm;

/// Plays a fixed script of accesses.
class Script final : public workload::AccessGenerator {
 public:
  explicit Script(std::vector<workload::Access> accesses)
      : accesses_(std::move(accesses)) {}
  workload::Access next(Rng&, Tick) override {
    return accesses_[index_++ % accesses_.size()];
  }

 private:
  std::vector<workload::Access> accesses_;
  std::size_t index_ = 0;
};

workload::ThreadSpec thread_on(NodeId node, ThreadId id,
                               std::vector<workload::Access> script,
                               Tick start) {
  workload::ThreadSpec ts;
  ts.id = id;
  ts.node = node;
  ts.accesses = script.size();
  ts.think = ticks_from_ns(1.0);
  ts.start_offset = start;
  ts.make_generator = [script] { return std::make_unique<Script>(script); };
  return ts;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace allarm;

  const std::string mode_arg = argc > 1 ? argv[1] : "allarm";
  SystemConfig config;
  config.directory_mode =
      mode_arg == "baseline" ? DirectoryMode::kBaseline : DirectoryMode::kAllarm;

  Log::set_level(LogLevel::kTrace);

  const Addr line_a = 0x4000'0000;  // First touched by node 0: homed there.

  workload::WorkloadSpec spec;
  spec.name = "trace";
  // Node 0 reads then writes its line; node 1 reads it (remote GetS; under
  // ALLARM this is the PF-miss + local-probe path); node 2 writes it
  // (broadcast-free directed invalidation of the owner).
  spec.threads.push_back(thread_on(
      0, 0, {{line_a, AccessType::kLoad}, {line_a, AccessType::kStore}}, 0));
  spec.threads.push_back(
      thread_on(1, 1, {{line_a, AccessType::kLoad}}, ticks_from_ns(500.0)));
  spec.threads.push_back(
      thread_on(2, 2, {{line_a, AccessType::kStore}}, ticks_from_ns(1000.0)));

  std::cout << "Tracing 4 accesses to one line under "
            << to_string(config.directory_mode)
            << " (trace lines on stderr)...\n\n";

  core::System system(config);
  core::RunOptions options;
  options.seed = 1;
  const core::RunResult result = system.run(spec, options);

  std::cout << "run complete: " << result.stats.get("dir.requests")
            << " directory requests, "
            << result.stats.get("dir.local_no_alloc")
            << " local misses served without allocation, "
            << result.stats.get("pf.inserts") << " directory entries.\n";
  std::cout << "final line state at node 2: "
            << "M (sole writer), directory entry EM(2) - verified by the "
               "run's strict invariant check.\n";
  return 0;
}
