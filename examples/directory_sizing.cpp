// Directory sizing study: how small can the sparse directory get?
//
// The paper's multi-process experiment (Section III-B) shows that with
// ALLARM the probe filter can shrink 4-16x before performance reacts,
// because thread-private data no longer occupies entries.  This example
// sweeps the probe-filter coverage for a multi-process workload and prints
// evictions and runtime for both policies, plus the area handed back at
// each step (the McPAT-style model from the paper's area table).
//
//   ./directory_sizing [benchmark] [accesses-per-thread]
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/config.hh"
#include "common/stats.hh"
#include "core/experiment.hh"
#include "energy/model.hh"
#include "workload/profiles.hh"

int main(int argc, char** argv) {
  using namespace allarm;

  const std::string bench = argc > 1 ? argv[1] : "ocean-cont";
  const std::uint64_t accesses =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 40000;

  std::cout << "Directory sizing study: two single-threaded copies of '"
            << bench << "'\n\n";

  TextTable table({"PF size", "area (mm^2)", "base evictions",
                   "ALLARM evictions", "base runtime (ms)",
                   "ALLARM runtime (ms)"});
  for (const std::uint32_t kb : {512u, 256u, 128u, 64u, 32u}) {
    SystemConfig config;
    config.probe_filter_coverage_bytes = kb * 1024;
    const auto spec = workload::make_multiprocess(bench, config, accesses);
    const core::PairResult pair = core::run_pair(config, spec, 42);
    table.add_row(
        {std::to_string(kb) + "kB",
         TextTable::fmt(
             energy::EnergyModel::probe_filter_area_mm2(kb * 1024, 16), 2),
         TextTable::fmt(pair.baseline.stats.get("dir.pf_evictions"), 0),
         TextTable::fmt(pair.allarm.stats.get("dir.pf_evictions"), 0),
         TextTable::fmt(pair.baseline.stats.get("runtime_ns") / 1e6, 3),
         TextTable::fmt(pair.allarm.stats.get("runtime_ns") / 1e6, 3)});
  }
  std::cout << table.to_string()
            << "\nBaseline eviction counts explode once the directory cannot "
               "cover the cached\nfootprint; ALLARM tracks only the (small) "
               "shared footprint, so the same shrink\nleaves execution "
               "nearly untouched - the SRAM saved (area column) can return "
               "to\nthe last-level cache.\n";
  return 0;
}
