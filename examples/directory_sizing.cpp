// Directory sizing study: how small can the sparse directory get?
//
// The paper's multi-process experiment (Section III-B) shows that with
// ALLARM the probe filter can shrink 4-16x before performance reacts,
// because thread-private data no longer occupies entries.  This example
// sweeps the probe-filter coverage for a multi-process workload and prints
// evictions and runtime for both policies, plus the area handed back at
// each step (the McPAT-style model from the paper's area table).
//
//   ./directory_sizing [benchmark] [accesses-per-thread]
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/config.hh"
#include "common/stats.hh"
#include "core/experiment.hh"
#include "energy/model.hh"
#include "workload/profiles.hh"

int main(int argc, char** argv) {
  using namespace allarm;

  const std::string bench = argc > 1 ? argv[1] : "ocean-cont";
  const std::uint64_t accesses =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 40000;

  std::cout << "Directory sizing study: two single-threaded copies of '"
            << bench << "'\n\n";

  TextTable table({"PF size", "area (mm^2)", "base evictions",
                   "ALLARM evictions", "base runtime (ms)",
                   "ALLARM runtime (ms)"});
  for (const std::uint32_t kb : {512u, 256u, 128u, 64u, 32u}) {
    SystemConfig config;
    config.probe_filter_coverage_bytes = kb * 1024;
    const auto spec = workload::make_multiprocess(bench, config, accesses);
    const core::PairResult pair = core::run_pair(config, spec, 42);
    table.add_row(
        {std::to_string(kb) + "kB",
         TextTable::fmt(
             energy::EnergyModel::probe_filter_area_mm2(kb * 1024, 16), 2),
         TextTable::fmt(pair.baseline.stats.get("dir.pf_evictions"), 0),
         TextTable::fmt(pair.allarm.stats.get("dir.pf_evictions"), 0),
         TextTable::fmt(pair.baseline.stats.get("runtime_ns") / 1e6, 3),
         TextTable::fmt(pair.allarm.stats.get("runtime_ns") / 1e6, 3)});
  }
  std::cout << table.to_string()
            << "\nBaseline eviction counts explode once the directory cannot "
               "cover the cached\nfootprint; ALLARM tracks only the (small) "
               "shared footprint, so the same shrink\nleaves execution "
               "nearly untouched - the SRAM saved (area column) can return "
               "to\nthe last-level cache.\n";

  // Region-granularity alternative: keep the probe filter at a fixed size
  // and coarsen the tracking granularity for private data instead.  The
  // table compares per-block entries spent, the region-table area of the
  // equivalent-SRAM model, and runtime across region sizes (64 B = one
  // line = the per-block degenerate case).
  std::cout << "\nRegion-granularity directory (probe filter fixed at 256kB,"
               " scheme 'region'):\n\n";
  TextTable region_table({"region", "table area (mm^2)", "pf evictions",
                          "region hits", "collapses", "runtime (ms)"});
  for (const std::uint32_t bytes : {64u, 256u, 1024u, 4096u}) {
    SystemConfig config;
    config.probe_filter_coverage_bytes = 256 * 1024;
    config.region_size_bytes = bytes;
    const auto spec = workload::make_multiprocess(bench, config, accesses);
    const core::RunResult run =
        core::run_single(config, DirectoryMode::kRegion, spec, 42);
    region_table.add_row(
        {std::to_string(bytes) + "B",
         TextTable::fmt(energy::EnergyModel::region_directory_area_mm2(
                            256 * 1024, bytes, 16), 2),
         TextTable::fmt(run.stats.get("dir.pf_evictions"), 0),
         TextTable::fmt(run.stats.get("region.hits"), 0),
         TextTable::fmt(run.stats.get("region.collapses"), 0),
         TextTable::fmt(run.stats.get("runtime_ns") / 1e6, 3)});
  }
  std::cout << region_table.to_string()
            << "\nCoarser regions serve private misses from a shrinking "
               "region table instead of\nper-block entries: probe-filter "
               "pressure drops with region size while sharing\nshows up as "
               "collapses.  See docs/DIRECTORY.md.\n";
  return 0;
}
