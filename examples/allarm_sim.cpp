// allarm_sim: the command-line driver for the simulator.
//
//   allarm_sim [options]
//
//   --benchmark NAME     synthetic profile (default ocean-cont); see --list
//   --multiprocess       run the Section III-B two-process variant
//   --trace FILE         replay an access trace instead (see workload/trace.hh)
//   --mode MODE          baseline | allarm | both (default both)
//   --accesses N         ROI accesses per thread (default 30000)
//   --pf-kb N            probe-filter coverage per node in kB (default 512)
//   --pf-ways N          probe-filter associativity (default 4)
//   --policy P           first-touch | interleave (default first-touch)
//   --eviction-buffer    drain directory victims off the critical path
//   --serial-probe       disable ALLARM's speculative-DRAM latency hiding
//   --migrate-us N       migrate a random thread every N microseconds
//   --seed N             RNG seed (default 42)
//   --full-stats         dump the complete statistic set per run
//   --par-shards N       split the event queue into N lanes (must divide
//                        the mesh width; docs/PARALLEL.md)
//   --par-mode MODE      barrier (default, byte-identical to serial) | lax
//   --profile            record latency histograms; prints hist.* rows
//                        (p50/p95/p99/max per metric) after each run
//   --timeline FILE      write a Chrome trace-event JSON timeline of the
//                        run (load in Perfetto / chrome://tracing)
//   --list               list available benchmarks and exit
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "common/config.hh"
#include "common/stats.hh"
#include "core/experiment.hh"
#include "core/system.hh"
#include "obs/timeline.hh"
#include "workload/profiles.hh"
#include "workload/trace.hh"

namespace {

using namespace allarm;

struct Options {
  std::string benchmark = "ocean-cont";
  bool multiprocess = false;
  std::string trace;
  std::string mode = "both";
  std::uint64_t accesses = 30000;
  std::uint32_t pf_kb = 512;
  std::uint32_t pf_ways = 4;
  std::string policy = "first-touch";
  bool eviction_buffer = false;
  bool serial_probe = false;
  std::uint32_t migrate_us = 0;
  std::uint64_t seed = 42;
  bool full_stats = false;
  bool profile = false;
  std::string timeline;
  parallel::ParConfig par;
};

[[noreturn]] void usage(int code) {
  std::cout <<
      "usage: allarm_sim [--benchmark NAME | --multiprocess | --trace FILE]\n"
      "                  [--mode baseline|allarm|both] [--accesses N]\n"
      "                  [--pf-kb N] [--pf-ways N] [--policy first-touch|interleave]\n"
      "                  [--eviction-buffer] [--serial-probe] [--migrate-us N]\n"
      "                  [--seed N] [--full-stats] [--par-shards N]\n"
      "                  [--par-mode barrier|lax] [--profile]\n"
      "                  [--timeline FILE] [--list]\n";
  std::exit(code);
}

Options parse(int argc, char** argv) {
  Options o;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(2);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--benchmark") o.benchmark = value(i);
    else if (a == "--multiprocess") o.multiprocess = true;
    else if (a == "--trace") o.trace = value(i);
    else if (a == "--mode") o.mode = value(i);
    else if (a == "--accesses") o.accesses = std::strtoull(value(i), nullptr, 10);
    else if (a == "--pf-kb") o.pf_kb = std::strtoul(value(i), nullptr, 10);
    else if (a == "--pf-ways") o.pf_ways = std::strtoul(value(i), nullptr, 10);
    else if (a == "--policy") o.policy = value(i);
    else if (a == "--eviction-buffer") o.eviction_buffer = true;
    else if (a == "--serial-probe") o.serial_probe = false, o.serial_probe = true;
    else if (a == "--migrate-us") o.migrate_us = std::strtoul(value(i), nullptr, 10);
    else if (a == "--seed") o.seed = std::strtoull(value(i), nullptr, 10);
    else if (a == "--full-stats") o.full_stats = true;
    else if (a == "--profile") o.profile = true;
    else if (a == "--timeline") o.timeline = value(i);
    else if (a == "--par-shards") {
      o.par.shards = std::strtoul(value(i), nullptr, 10);
      if (o.par.shards == 0) {
        std::cerr << "--par-shards must be positive\n";
        usage(2);
      }
    } else if (a == "--par-mode") {
      try {
        o.par.mode = parallel::par_mode_from_string(value(i));
      } catch (const std::exception& e) {
        std::cerr << e.what() << '\n';
        usage(2);
      }
    }
    else if (a == "--list") {
      for (const auto& n : workload::benchmark_names()) std::cout << n << '\n';
      std::exit(0);
    } else if (a == "--help" || a == "-h") usage(0);
    else {
      std::cerr << "unknown option: " << a << '\n';
      usage(2);
    }
  }
  return o;
}

core::RunResult run_mode(const Options& o, const SystemConfig& config,
                         const workload::WorkloadSpec& spec,
                         DirectoryMode mode) {
  SystemConfig c = config;
  c.directory_mode = mode;
  const auto policy = o.policy == "interleave"
                          ? numa::AllocPolicy::kInterleave
                          : numa::AllocPolicy::kFirstTouch;
  core::System system(c, policy);
  core::RunOptions options;
  options.seed = o.seed;
  options.migration_interval = ticks_from_ns(1000.0) * o.migrate_us;
  options.par = o.par;
  options.profile = o.profile;
  OBS_SPAN("sim.run", "sim");
  return system.run(spec, options);
}

/// ROI latency histograms (--profile), printed as `hist.*` rows through the
/// same export_to() naming the sweep report uses, so both surfaces agree.
void print_profile(const core::RunResult& r) {
  if (r.profile.empty()) return;
  StatSet hist;
  for (const auto& [name, h] : r.profile) h.export_to(hist, "hist." + name);
  std::cout << hist.to_string();
}

void print_run(const std::string& label, const core::RunResult& r,
               bool full) {
  std::cout << "--- " << label << " ---\n";
  if (full) {
    std::cout << r.stats.to_string();
    print_profile(r);
    return;
  }
  TextTable t({"metric", "value"});
  auto row = [&](const char* name, const char* stat, int precision = 0) {
    t.add_row({name, TextTable::fmt(r.stats.get(stat), precision)});
  };
  row("runtime (ns)", "runtime_ns");
  row("directory requests", "dir.requests");
  row("local request fraction", "dir.local_fraction", 3);
  row("PF inserts", "pf.inserts");
  row("PF evictions", "dir.pf_evictions");
  row("local misses w/o allocation", "dir.local_no_alloc");
  row("probe hidden fraction", "dir.probe_hidden_fraction", 3);
  row("NoC bytes", "noc.bytes");
  row("L2 misses", "cache.misses");
  row("NoC energy (nJ)", "energy.noc_nj", 1);
  row("PF energy (nJ)", "energy.pf_nj", 1);
  std::cout << t.to_string();
  print_profile(r);
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (!o.timeline.empty()) obs::Timeline::enable();

  SystemConfig config;
  config.probe_filter_coverage_bytes = o.pf_kb * 1024;
  config.probe_filter_ways = o.pf_ways;
  config.eviction_gates_reply = !o.eviction_buffer;
  config.allarm_parallel_local_probe = !o.serial_probe;
  try {
    config.validate();
  } catch (const std::exception& e) {
    std::cerr << "bad configuration: " << e.what() << '\n';
    return 2;
  }

  workload::WorkloadSpec spec;
  try {
    if (!o.trace.empty()) {
      spec = workload::load_trace_workload(o.trace, config);
    } else if (o.multiprocess) {
      spec = workload::make_multiprocess(o.benchmark, config, o.accesses);
    } else {
      spec = workload::make_benchmark(o.benchmark, config, o.accesses);
    }
  } catch (const std::exception& e) {
    std::cerr << "cannot build workload: " << e.what() << '\n';
    return 2;
  }

  std::cout << "workload '" << spec.name << "', " << spec.threads.size()
            << " threads, PF " << o.pf_kb << "kB x" << o.pf_ways << "-way\n";
  if (o.par.enabled()) {
    std::cout << "parallel: " << o.par.shards << " event-queue shards, "
              << parallel::to_string(o.par.mode) << " mode\n";
  }
  std::cout << '\n';

  std::optional<core::RunResult> base, allarm;
  if (o.mode == "baseline" || o.mode == "both") {
    base = run_mode(o, config, spec, DirectoryMode::kBaseline);
    print_run("baseline", *base, o.full_stats);
  }
  if (o.mode == "allarm" || o.mode == "both") {
    allarm = run_mode(o, config, spec, DirectoryMode::kAllarm);
    print_run("allarm", *allarm, o.full_stats);
  }
  if (base && allarm) {
    std::cout << "\nspeedup:             "
              << TextTable::fmt(
                     static_cast<double>(base->runtime) / allarm->runtime, 3)
              << "\nnormalized evictions: "
              << TextTable::fmt(allarm->stats.normalized_to(
                                    base->stats, "dir.pf_evictions"),
                                3)
              << "\nnormalized traffic:   "
              << TextTable::fmt(
                     allarm->stats.normalized_to(base->stats, "noc.bytes"), 3)
              << '\n';
  }
  // Observability output last: a failed timeline write logs loudly but the
  // simulation results above already stand, so the exit code is unchanged.
  if (!o.timeline.empty() && obs::Timeline::write(o.timeline)) {
    std::cerr << "wrote " << o.timeline << "\n";
  }
  return 0;
}
