// allarm_serve: the crash-safe sweep service (docs/SERVICE.md).
//
// Consumer mode (the default) runs the accept/schedule/health loop over a
// file spool until signalled:
//
//   allarm_serve --root DIR [--workers N] [--max-active N] [--max-cells N]
//                [--poll-ms N] [--drain-ms N] [--exit-when-idle]
//                [--failpoints SPEC] [--timeline FILE]
//
// --timeline records a Chrome trace-event JSON timeline of the service run
// (request lifecycle, scheduling, journal and simulation spans) and writes
// it at exit; load it in Perfetto.  See docs/OBSERVABILITY.md.
//
//   SIGTERM/SIGINT   graceful drain: in-flight jobs finish and are
//                    journaled, states stay `running` (resumed on the next
//                    start), exit 0.  Past --drain-ms the service falls
//                    back to a journal-safe hard abort (exit 1).
//   SIGKILL          loses no accepted work: restart resumes every
//                    `running` request through its journal and the
//                    recovered report is byte-identical.
//
// Producer mode submits one request file and exits — any process that can
// write the spool directory can enqueue; no running service is needed:
//
//   allarm_serve --root DIR --enqueue FILE --as NAME
//
// Exit codes: 0 clean (or drained), 1 error, 2 usage, 3 degraded
// (--exit-when-idle and some request failed/quarantined/rejected).
#include <csignal>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <stdexcept>
#include <string>

#include "common/failpoint.hh"
#include "common/fileio.hh"
#include "obs/timeline.hh"
#include "service/service.hh"
#include "service/spool.hh"

namespace {

// Signal handlers may only touch lock-free atomics; the service loop polls
// this between (never inside) I/O steps.
std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

void usage(std::ostream& out) {
  out << "usage: allarm_serve --root DIR [--workers N] [--max-active N]\n"
         "                    [--max-cells N] [--poll-ms N] [--drain-ms N]\n"
         "                    [--exit-when-idle] [--failpoints SPEC]\n"
         "                    [--timeline FILE]\n"
         "       allarm_serve --root DIR --enqueue FILE --as NAME\n";
}

std::uint64_t parse_u64(const char* flag, const std::string& text) {
  try {
    std::size_t used = 0;
    const unsigned long long parsed = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string(flag) + ": expected a number, got '" +
                                text + "'");
  }
}

}  // namespace

int main(int argc, char** argv) {
  allarm::service::ServiceConfig config;
  std::string enqueue_file;
  std::string enqueue_as;
  std::string failpoint_spec;
  std::string timeline_path;

  const auto value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      throw std::invalid_argument(std::string(argv[i]) + ": missing value");
    }
    return argv[++i];
  };

  try {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--root") == 0) {
        config.root = value(i);
      } else if (std::strcmp(arg, "--workers") == 0) {
        config.workers = static_cast<std::uint32_t>(parse_u64(arg, value(i)));
      } else if (std::strcmp(arg, "--max-active") == 0) {
        config.max_active = static_cast<std::uint32_t>(parse_u64(arg, value(i)));
        if (config.max_active == 0) {
          throw std::invalid_argument("--max-active must be at least 1");
        }
      } else if (std::strcmp(arg, "--max-cells") == 0) {
        config.max_cells = parse_u64(arg, value(i));
      } else if (std::strcmp(arg, "--poll-ms") == 0) {
        config.poll_ms = static_cast<std::uint32_t>(parse_u64(arg, value(i)));
        if (config.poll_ms == 0) config.poll_ms = 1;
      } else if (std::strcmp(arg, "--drain-ms") == 0) {
        config.drain_deadline_ms = parse_u64(arg, value(i));
      } else if (std::strcmp(arg, "--exit-when-idle") == 0) {
        config.exit_when_idle = true;
      } else if (std::strcmp(arg, "--failpoints") == 0) {
        failpoint_spec = value(i);
      } else if (std::strcmp(arg, "--timeline") == 0) {
        timeline_path = value(i);
      } else if (std::strcmp(arg, "--enqueue") == 0) {
        enqueue_file = value(i);
      } else if (std::strcmp(arg, "--as") == 0) {
        enqueue_as = value(i);
      } else if (std::strcmp(arg, "--help") == 0 ||
                 std::strcmp(arg, "-h") == 0) {
        usage(std::cout);
        return 0;
      } else {
        throw std::invalid_argument(std::string("unknown flag ") + arg);
      }
    }
    if (config.root.empty()) {
      throw std::invalid_argument("--root is required");
    }
    if (enqueue_file.empty() != enqueue_as.empty()) {
      throw std::invalid_argument("--enqueue and --as go together");
    }
  } catch (const std::exception& e) {
    std::cerr << "allarm_serve: " << e.what() << "\n";
    usage(std::cerr);
    return 2;
  }

  std::string failpoints = allarm::failpoint::configure_from_env();
  if (!failpoint_spec.empty()) {
    allarm::failpoint::configure(failpoint_spec);
    failpoints = failpoint_spec;
  }
  if (!failpoints.empty()) {
    std::cerr << "failpoints active: " << failpoints << "\n";
  }

  try {
    if (!enqueue_file.empty()) {
      // Producer mode: validate locally so a typo is caught at submit time
      // with the same message the service would record, then enqueue.
      const std::string text = allarm::read_file(enqueue_file);
      allarm::service::parse_request(text);
      const std::string queued =
          allarm::service::Spool::enqueue(config.root, enqueue_as, text);
      std::cout << "enqueued " << queued << "\n";
      return 0;
    }

    struct sigaction action{};
    action.sa_handler = on_signal;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);

    if (!timeline_path.empty()) allarm::obs::Timeline::enable();
    allarm::service::Service service(config);
    const int code = service.run(g_stop);
    // Observability output last: a failed timeline write logs loudly but
    // the service outcome above stands, so the exit code is unchanged.
    if (!timeline_path.empty() &&
        allarm::obs::Timeline::write(timeline_path)) {
      std::cerr << "wrote " << timeline_path << "\n";
    }
    return code;
  } catch (const std::exception& e) {
    std::cerr << "allarm_serve: " << e.what() << "\n";
    return 1;
  }
}
