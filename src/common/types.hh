// Fundamental types shared by every ALLARM library.
//
// The simulator measures time in integer picoseconds so that sub-nanosecond
// quantities (e.g. the 0.5 ns serialization delay of one 4-byte flit on an
// 8 GB/s link) are represented exactly.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace allarm {

/// Simulated time in picoseconds.
using Tick = std::uint64_t;

/// Number of ticks in one nanosecond.
inline constexpr Tick kTicksPerNs = 1000;

/// Converts nanoseconds (possibly fractional) to ticks.
constexpr Tick ticks_from_ns(double nanoseconds) {
  return static_cast<Tick>(nanoseconds * static_cast<double>(kTicksPerNs));
}

/// Converts ticks to (fractional) nanoseconds, for reporting.
constexpr double ns_from_ticks(Tick t) {
  return static_cast<double>(t) / static_cast<double>(kTicksPerNs);
}

/// A sentinel tick meaning "never".
inline constexpr Tick kTickNever = std::numeric_limits<Tick>::max();

/// Physical or virtual byte address.
using Addr = std::uint64_t;

/// Identifier of a node (core + caches + directory + memory controller).
using NodeId = std::uint16_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Identifier of a software thread.
using ThreadId = std::uint32_t;

/// Identifier of an address space (process).
using AddressSpaceId = std::uint32_t;

/// Log2 of the cache-line size in bytes (64-byte lines, Table I).
inline constexpr unsigned kLineBits = 6;

/// Cache-line size in bytes.
inline constexpr unsigned kLineBytes = 1u << kLineBits;

/// A cache-line-aligned address expressed in units of lines
/// (i.e. byte address >> kLineBits).
using LineAddr = std::uint64_t;

/// Extracts the line address from a byte address.
constexpr LineAddr line_of(Addr byte_addr) { return byte_addr >> kLineBits; }

/// First byte address of a line.
constexpr Addr addr_of_line(LineAddr line) {
  return static_cast<Addr>(line) << kLineBits;
}

/// Log2 of the page size (4 KiB pages).
inline constexpr unsigned kPageBits = 12;

/// Page size in bytes.
inline constexpr unsigned kPageBytes = 1u << kPageBits;

/// Number of cache lines per page.
inline constexpr unsigned kLinesPerPage = kPageBytes / kLineBytes;

/// A page number (byte address >> kPageBits).
using PageNum = std::uint64_t;

/// Extracts the page number from a byte address.
constexpr PageNum page_of(Addr byte_addr) { return byte_addr >> kPageBits; }

/// First byte address of a page.
constexpr Addr addr_of_page(PageNum page) {
  return static_cast<Addr>(page) << kPageBits;
}

/// Kind of a memory access issued by a core.
enum class AccessType : std::uint8_t {
  kLoad,        ///< Data read.
  kStore,       ///< Data write.
  kInstFetch,   ///< Instruction fetch (serviced by the L1I).
};

/// Returns a short human-readable name for an access type.
std::string to_string(AccessType type);

}  // namespace allarm
