#include "common/checksum.hh"

#include <array>

namespace allarm {

namespace {

// Reflected CRC32C table, built once at first use.
std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace allarm
