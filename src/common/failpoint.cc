#include "common/failpoint.hh"

#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace allarm::failpoint {

namespace {

struct Rule {
  Action action = Action::kNone;
  std::uint64_t arg = 0;
  std::uint64_t at = 1;
  std::uint64_t count = 1;  ///< 0 = unlimited.

  bool fires(std::uint64_t ordinal) const {
    return ordinal >= at && (count == 0 || ordinal - at < count);
  }
};

/// All rules sharing one failpoint name share one arrival counter, so
/// "fileio.pwrite=eintr@2;fileio.pwrite=err@5" sees one ordinal stream.
struct NameState {
  std::uint64_t polls = 0;
  std::vector<Rule> rules;
};

// One mutex guards the registry.  The fast path never takes it; the slow
// path runs only while a schedule is active, where determinism matters and
// throughput does not.
std::mutex g_mutex;
std::unordered_map<std::string, NameState> g_points;
std::string g_spec;

[[noreturn]] void bad_spec(const std::string& rule, const std::string& why) {
  throw std::invalid_argument("failpoint rule '" + rule + "': " + why);
}

std::uint64_t parse_number(const std::string& rule, const std::string& text,
                           const char* what) {
  if (text.empty()) bad_spec(rule, std::string("empty ") + what);
  std::uint64_t v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      bad_spec(rule, std::string("non-numeric ") + what + " '" + text + "'");
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

/// Parses "name=action[.arg]@at[:count]" into (name, rule).
std::pair<std::string, Rule> parse_rule(const std::string& text) {
  const std::size_t eq = text.find('=');
  if (eq == std::string::npos || eq == 0) {
    bad_spec(text, "want name=action[.arg]@at[:count]");
  }
  const std::string name = text.substr(0, eq);

  const std::size_t at_pos = text.find('@', eq + 1);
  if (at_pos == std::string::npos) bad_spec(text, "missing '@at'");

  std::string action_text = text.substr(eq + 1, at_pos - eq - 1);
  Rule rule;
  bool arg_given = false;
  const std::size_t dot = action_text.find('.');
  if (dot != std::string::npos) {
    rule.arg = parse_number(text, action_text.substr(dot + 1), "arg");
    arg_given = true;
    action_text.resize(dot);
  }
  if (action_text == "err") {
    rule.action = Action::kError;
  } else if (action_text == "short") {
    rule.action = Action::kShortIo;
  } else if (action_text == "torn") {
    rule.action = Action::kTornWrite;
  } else if (action_text == "eintr") {
    rule.action = Action::kEintrStorm;
    if (!arg_given) rule.arg = 16;
  } else if (action_text == "delay") {
    rule.action = Action::kDelay;
    if (!arg_given) rule.arg = 10;
  } else {
    bad_spec(text, "unknown action '" + action_text +
                       "' (want err|short|torn|eintr|delay)");
  }

  std::string at_text = text.substr(at_pos + 1);
  const std::size_t colon = at_text.find(':');
  if (colon != std::string::npos) {
    rule.count = parse_number(text, at_text.substr(colon + 1), "count");
    at_text.resize(colon);
  }
  rule.at = parse_number(text, at_text, "ordinal");
  return {name, rule};
}

}  // namespace

std::atomic<bool> detail::g_active{false};

Hit detail::check_slow(const char* name) {
  std::lock_guard<std::mutex> lock(g_mutex);
  const auto it = g_points.find(name);
  if (it == g_points.end()) return Hit{};
  const std::uint64_t ordinal = ++it->second.polls;
  for (const Rule& rule : it->second.rules) {
    if (rule.fires(ordinal)) return Hit{rule.action, rule.arg};
  }
  return Hit{};
}

Hit detail::check_indexed_slow(const char* name, std::uint64_t ordinal) {
  std::lock_guard<std::mutex> lock(g_mutex);
  const auto it = g_points.find(name);
  if (it == g_points.end()) return Hit{};
  ++it->second.polls;  // hits() counts observations either way.
  for (const Rule& rule : it->second.rules) {
    if (rule.fires(ordinal)) return Hit{rule.action, rule.arg};
  }
  return Hit{};
}

void configure(const std::string& spec) {
  // Parse fully before swapping in, so a bad spec never half-installs.
  std::unordered_map<std::string, NameState> points;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = spec.find(';', pos);
    const std::size_t end = semi == std::string::npos ? spec.size() : semi;
    const std::string rule_text = spec.substr(pos, end - pos);
    if (!rule_text.empty()) {
      auto [name, rule] = parse_rule(rule_text);
      points[name].rules.push_back(rule);
    }
    if (semi == std::string::npos) break;
    pos = semi + 1;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  g_points = std::move(points);
  g_spec = g_points.empty() ? std::string() : spec;
  detail::g_active.store(!g_points.empty(), std::memory_order_relaxed);
}

std::string configure_from_env() {
  const char* env = std::getenv("ALLARM_FAILPOINTS");
  if (env == nullptr || env[0] == '\0') return {};
  configure(env);
  return env;
}

void clear() { configure(""); }

bool active() { return detail::g_active.load(std::memory_order_relaxed); }

std::uint64_t hits(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_mutex);
  const auto it = g_points.find(name);
  return it == g_points.end() ? 0 : it->second.polls;
}

std::string describe() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_spec;
}

}  // namespace allarm::failpoint
