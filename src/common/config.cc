#include "common/config.hh"


namespace allarm {

std::string to_string(DirectoryMode mode) {
  switch (mode) {
    case DirectoryMode::kBaseline: return "baseline";
    case DirectoryMode::kAllarm: return "allarm";
    case DirectoryMode::kRegion: return "region";
  }
  return "unknown";
}

std::string to_string(ReplacementKind kind) {
  switch (kind) {
    case ReplacementKind::kLru: return "lru";
    case ReplacementKind::kTreePlru: return "tree-plru";
    case ReplacementKind::kRandom: return "random";
  }
  return "unknown";
}

namespace {

void check(bool ok, const std::string& what) {
  if (!ok) throw std::invalid_argument("SystemConfig: " + what);
}

void check_cache(const CacheConfig& c, const std::string& name) {
  check(c.size_bytes >= kLineBytes, name + " smaller than one line");
  check(c.size_bytes % kLineBytes == 0, name + " not a multiple of the line size");
  check(c.ways >= 1, name + " has zero ways");
  check(c.lines() % c.ways == 0, name + " lines not divisible by ways");
  const std::uint32_t sets = c.sets();
  check(sets != 0 && (sets & (sets - 1)) == 0,
        name + " set count must be a power of two");
}

}  // namespace

void SystemConfig::validate() const {
  check(num_cores >= 1, "no cores");
  check(mesh_width >= 1 && mesh_height >= 1, "degenerate mesh");
  check(num_cores == num_nodes(),
        "one core per node is assumed (num_cores must equal mesh size)");
  check_cache(l1i, "L1I");
  check_cache(l1d, "L1D");
  check_cache(l2, "L2");
  check(probe_filter_coverage_bytes >= kLineBytes, "probe filter too small");
  check(probe_filter_entries() % probe_filter_ways == 0,
        "probe filter entries not divisible by ways");
  const std::uint32_t pf_sets = probe_filter_entries() / probe_filter_ways;
  check(pf_sets != 0 && (pf_sets & (pf_sets - 1)) == 0,
        "probe filter set count must be a power of two");
  check(region_size_bytes >= kLineBytes &&
            (region_size_bytes & (region_size_bytes - 1)) == 0,
        "region size must be a power of two of at least one line");
  check(region_size_bytes <= kPageBytes,
        "region size must not exceed the page size (one home per region)");
  check(flit_bytes >= 1, "flit size must be positive");
  check(control_msg_bytes >= 1 && data_msg_bytes > control_msg_bytes,
        "message sizes inconsistent");
  check(link_bandwidth_gbps > 0.0, "link bandwidth must be positive");
  check(dram_total_bytes % num_nodes() == 0,
        "DRAM must divide evenly across nodes");
  check(dram_bytes_per_node() % kPageBytes == 0,
        "per-node DRAM must be page aligned");
}

}  // namespace allarm
