// Open-addressing hash containers for the simulator's hot lookup paths.
//
// std::unordered_{map,set} pay a node allocation per insert and a pointer
// chase per lookup; the coherence serialization path (the directory's busy
// set and waiting map) and the OS page table do these lookups per miss and
// per access.  FlatMap/FlatSet store slots contiguously: linear probing,
// power-of-two capacity, tombstoned erase with probe-chain reuse, and a
// 64-bit finalizer mix applied on top of the user hash so that identity
// hashes (std::hash on integers) still spread across the table.
//
// Deliberately minimal: pointer-yielding find (no iterator machinery), no
// iteration order guarantees exposed at all -- callers that need to walk
// entries should not be using these containers, which keeps accidental
// order-dependence (and thus nondeterminism) out of simulation results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace allarm {

namespace detail {

/// splitmix64 finalizer: bijective avalanche over the raw hash value.
inline std::size_t flat_hash_mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<std::size_t>(x);
}

enum class SlotState : std::uint8_t { kEmpty = 0, kFull, kTombstone };

}  // namespace detail

/// Open-addressing hash map.  `Key` and `T` must be movable;
/// `Hash(key)` feeds the mix above.
template <typename Key, typename T, typename Hash = std::hash<Key>>
class FlatMap {
 public:
  FlatMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pointer to the mapped value, or nullptr when absent.
  T* find(const Key& key) {
    if (size_ == 0) return nullptr;
    const std::size_t slot = locate(key);
    return slot == kNotFound ? nullptr : &slots_[slot].value;
  }
  const T* find(const Key& key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }

  std::size_t count(const Key& key) const { return find(key) ? 1 : 0; }

  /// Inserts a value-initialized mapped value when absent.
  T& operator[](const Key& key) { return *try_emplace(key).first; }

  /// Returns (pointer to mapped value, true when newly inserted).
  template <typename... Args>
  std::pair<T*, bool> try_emplace(const Key& key, Args&&... args) {
    reserve_for_insert();
    const std::size_t mask = slots_.size() - 1;
    std::size_t slot = detail::flat_hash_mix(Hash{}(key)) & mask;
    std::size_t insert_at = kNotFound;
    while (true) {
      Slot& s = slots_[slot];
      if (s.state == detail::SlotState::kEmpty) {
        if (insert_at == kNotFound) insert_at = slot;
        break;
      }
      if (s.state == detail::SlotState::kTombstone) {
        // Remember the first reusable hole but keep probing: the key may
        // live further down the chain.
        if (insert_at == kNotFound) insert_at = slot;
      } else if (s.key == key) {
        return {&s.value, false};
      }
      slot = (slot + 1) & mask;
    }
    // Every slot holds a live (default-constructed) value, so insertion is
    // an assignment, not a construction.
    Slot& s = slots_[insert_at];
    if (s.state == detail::SlotState::kTombstone) --tombstones_;
    s.key = key;
    s.value = T(std::forward<Args>(args)...);
    s.state = detail::SlotState::kFull;
    ++size_;
    return {&s.value, true};
  }

  /// Removes `key`; returns false when absent.
  bool erase(const Key& key) {
    if (size_ == 0) return false;
    const std::size_t slot = locate(key);
    if (slot == kNotFound) return false;
    slots_[slot].value = T();  // Release held resources (e.g. deque buffers).
    slots_[slot].state = detail::SlotState::kTombstone;
    --size_;
    ++tombstones_;
    return true;
  }

  /// Drops every entry, keeping the table capacity.
  void clear() {
    for (Slot& s : slots_) {
      if (s.state == detail::SlotState::kFull) {
        s.value = T();
      }
      s.state = detail::SlotState::kEmpty;
    }
    size_ = 0;
    tombstones_ = 0;
  }

  /// Grows the table so `n` entries fit without rehash.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * 7 < n * 8) cap <<= 1;
    if (cap > slots_.size()) rehash(cap);
  }

  /// Current slot count (tests: pins rehash/tombstone behaviour).
  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    Key key{};
    T value{};
    detail::SlotState state = detail::SlotState::kEmpty;
  };

  static constexpr std::size_t kNotFound = ~std::size_t{0};
  static constexpr std::size_t kMinCapacity = 16;

  std::size_t locate(const Key& key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t slot = detail::flat_hash_mix(Hash{}(key)) & mask;
    while (true) {
      const Slot& s = slots_[slot];
      if (s.state == detail::SlotState::kEmpty) return kNotFound;
      if (s.state == detail::SlotState::kFull && s.key == key) return slot;
      slot = (slot + 1) & mask;
    }
  }

  void reserve_for_insert() {
    if (slots_.empty()) {
      rehash(kMinCapacity);
      return;
    }
    // Keep (live + tombstone) occupancy under 7/8 so probe chains stay
    // short.  Rehashing discards tombstones.
    if ((size_ + tombstones_ + 1) * 8 >= slots_.size() * 7) {
      rehash(size_ * 8 >= slots_.size() * 7 ? slots_.size() * 2
                                            : slots_.size());
    }
  }

  void rehash(std::size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_ = std::vector<Slot>(new_capacity);
    size_ = 0;
    tombstones_ = 0;
    const std::size_t mask = new_capacity - 1;
    for (Slot& s : old) {
      if (s.state != detail::SlotState::kFull) continue;
      std::size_t slot = detail::flat_hash_mix(Hash{}(s.key)) & mask;
      while (slots_[slot].state == detail::SlotState::kFull) {
        slot = (slot + 1) & mask;
      }
      slots_[slot].key = std::move(s.key);
      slots_[slot].value = std::move(s.value);
      slots_[slot].state = detail::SlotState::kFull;
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
};

/// Open-addressing hash set over the same table machinery.
template <typename Key, typename Hash = std::hash<Key>>
class FlatSet {
 public:
  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  std::size_t count(const Key& key) const { return map_.count(key); }

  /// Returns true when newly inserted.
  bool insert(const Key& key) { return map_.try_emplace(key).second; }
  bool erase(const Key& key) { return map_.erase(key); }
  void clear() { map_.clear(); }
  void reserve(std::size_t n) { map_.reserve(n); }

 private:
  struct Empty {};
  FlatMap<Key, Empty, Hash> map_;
};

}  // namespace allarm
