#include "common/types.hh"

namespace allarm {

std::string to_string(AccessType type) {
  switch (type) {
    case AccessType::kLoad: return "load";
    case AccessType::kStore: return "store";
    case AccessType::kInstFetch: return "ifetch";
  }
  return "unknown";
}

}  // namespace allarm
