#include "common/fileio.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace allarm {

namespace {

[[noreturn]] void fail(const std::string& path, const char* what) {
  throw std::runtime_error(path + ": " + what + ": " + std::strerror(errno));
}

}  // namespace

File::File(const std::string& path, Mode mode) : path_(path) {
  int flags = 0;
  switch (mode) {
    case Mode::kRead:
      flags = O_RDONLY;
      break;
    case Mode::kCreate:
      flags = O_RDWR | O_CREAT | O_TRUNC;
      break;
    case Mode::kReadWrite:
      flags = O_RDWR;
      break;
  }
  fd_ = ::open(path.c_str(), flags | O_CLOEXEC, 0644);
  if (fd_ < 0) fail(path_, "open");
}

File::~File() {
  if (fd_ >= 0) ::close(fd_);
}

File::File(File&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

std::uint64_t File::size() const {
  struct stat st{};
  if (::fstat(fd_, &st) != 0) fail(path_, "fstat");
  return static_cast<std::uint64_t>(st.st_size);
}

void File::read_at(std::uint64_t offset, void* data, std::size_t size) const {
  if (read_at_most(offset, data, size) != size) {
    throw std::runtime_error(path_ + ": short read at offset " +
                             std::to_string(offset));
  }
}

std::size_t File::read_at_most(std::uint64_t offset, void* data,
                               std::size_t size) const {
  auto* out = static_cast<char*>(data);
  std::size_t total = 0;
  while (total < size) {
    const ssize_t n = ::pread(fd_, out + total, size - total,
                              static_cast<off_t>(offset + total));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(path_, "pread");
    }
    if (n == 0) break;  // EOF.
    total += static_cast<std::size_t>(n);
  }
  return total;
}

void File::write_at(std::uint64_t offset, const void* data, std::size_t size) {
  const auto* in = static_cast<const char*>(data);
  std::size_t total = 0;
  while (total < size) {
    const ssize_t n = ::pwrite(fd_, in + total, size - total,
                               static_cast<off_t>(offset + total));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(path_, "pwrite");
    }
    total += static_cast<std::size_t>(n);
  }
}

void File::truncate(std::uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) fail(path_, "ftruncate");
}

void File::sync() {
  if (::fsync(fd_) != 0) fail(path_, "fsync");
}

void File::close() {
  if (fd_ >= 0) {
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) fail(path_, "close");
  }
}

void write_file_durable(const std::string& path, const std::string& content) {
  File file(path, File::Mode::kCreate);
  file.write_at(0, content.data(), content.size());
  file.sync();
  file.close();
}

std::string read_file(const std::string& path) {
  File file(path, File::Mode::kRead);
  std::string content(file.size(), '\0');
  file.read_at(0, content.data(), content.size());
  return content;
}

}  // namespace allarm
