#include "common/fileio.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/failpoint.hh"

namespace allarm {

namespace {

// Every error message carries the path, the failed operation with its
// size/offset context, and strerror(errno) — a production log line must
// identify the broken file and the kernel's reason without a debugger.

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error(path + ": " + what + ": " + std::strerror(errno));
}

std::string io_context(const char* op, std::size_t size,
                       std::uint64_t offset) {
  return std::string(op) + " of " + std::to_string(size) +
         " bytes at offset " + std::to_string(offset);
}

[[noreturn]] void injected(const std::string& path, const char* site,
                           const std::string& what) {
  throw std::runtime_error(path + ": " + what + ": injected fault (failpoint " +
                           site + ")");
}

/// Applies one failpoint hit at an I/O site.  kError throws; kDelay sleeps
/// and falls through; the caller interprets kShortIo/kTornWrite/
/// kEintrStorm (returned unchanged).  Actions a site cannot express
/// degrade to kError — a schedule never silently misses.
failpoint::Hit apply_common(const failpoint::Hit& hit, const std::string& path,
                            const char* site, const std::string& what) {
  if (!hit) return hit;
  switch (hit.action) {
    case failpoint::Action::kError:
      injected(path, site, what);
    case failpoint::Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(hit.arg));
      return failpoint::Hit{};
    default:
      return hit;
  }
}

}  // namespace

File::File(const std::string& path, Mode mode) : path_(path) {
  if (const auto hit = failpoint::check("fileio.open")) {
    apply_common(hit, path_, "fileio.open", "open");
    injected(path_, "fileio.open", "open");  // short/torn/eintr degrade.
  }
  int flags = 0;
  switch (mode) {
    case Mode::kRead:
      flags = O_RDONLY;
      break;
    case Mode::kCreate:
      flags = O_RDWR | O_CREAT | O_TRUNC;
      break;
    case Mode::kReadWrite:
      flags = O_RDWR;
      break;
  }
  fd_ = ::open(path.c_str(), flags | O_CLOEXEC, 0644);
  if (fd_ < 0) fail(path_, "open");
}

File::~File() {
  if (fd_ >= 0) ::close(fd_);
}

File::File(File&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

std::uint64_t File::size() const {
  struct stat st{};
  if (::fstat(fd_, &st) != 0) fail(path_, "fstat");
  return static_cast<std::uint64_t>(st.st_size);
}

void File::read_at(std::uint64_t offset, void* data, std::size_t size) const {
  const std::size_t got = read_at_most(offset, data, size);
  if (got != size) {
    throw std::runtime_error(path_ + ": short read: wanted " +
                             std::to_string(size) + " bytes at offset " +
                             std::to_string(offset) + ", got " +
                             std::to_string(got) +
                             " (file truncated or corrupt)");
  }
}

std::size_t File::read_at_most(std::uint64_t offset, void* data,
                               std::size_t size) const {
  std::size_t want = size;
  std::uint64_t eintr_storm = 0;
  // The inactive path must stay allocation-free (trace replay's streaming
  // guarantee counts allocations across this very call): build the error
  // context only once a failpoint actually fired.
  auto hit = failpoint::check("fileio.pread");
  if (hit) {
    hit = apply_common(hit, path_, "fileio.pread",
                       io_context("pread", size, offset));
  }
  if (hit.action == failpoint::Action::kShortIo ||
      hit.action == failpoint::Action::kTornWrite) {
    // Deliver fewer bytes than asked (a truncated file, a torn tail):
    // read_at() surfaces it as its short-read error, read_at_most callers
    // see a genuine short count.
    want = hit.arg != 0 && hit.arg < size ? static_cast<std::size_t>(hit.arg)
                                          : size / 2;
  } else if (hit.action == failpoint::Action::kEintrStorm) {
    eintr_storm = hit.arg;
  }

  auto* out = static_cast<char*>(data);
  std::size_t total = 0;
  while (total < want) {
    if (eintr_storm > 0) {
      // Simulated interrupted syscall: exercises this very retry loop.
      --eintr_storm;
      errno = EINTR;
      continue;
    }
    const ssize_t n = ::pread(fd_, out + total, want - total,
                              static_cast<off_t>(offset + total));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(path_, io_context("pread", size, offset));
    }
    if (n == 0) break;  // EOF.
    total += static_cast<std::size_t>(n);
  }
  return total;
}

void File::write_at(std::uint64_t offset, const void* data, std::size_t size) {
  std::size_t want = size;
  bool fail_after_prefix = false;
  const char* site_label = "fileio.pwrite";
  std::uint64_t eintr_storm = 0;
  auto hit = failpoint::check("fileio.pwrite");
  if (hit) {
    hit = apply_common(hit, path_, "fileio.pwrite",
                       io_context("pwrite", size, offset));
  }
  if (hit.action == failpoint::Action::kShortIo ||
      hit.action == failpoint::Action::kTornWrite) {
    // Both write a real prefix then fail — the on-disk state a crashed or
    // ENOSPC'd writer leaves behind.  (short = ran out of space mid-write,
    // torn = power cut; identical from the reader's point of view.)
    want = hit.arg != 0 && hit.arg < size ? static_cast<std::size_t>(hit.arg)
                                          : size / 2;
    fail_after_prefix = true;
  } else if (hit.action == failpoint::Action::kEintrStorm) {
    eintr_storm = hit.arg;
  }

  const auto* in = static_cast<const char*>(data);
  std::size_t total = 0;
  while (total < want) {
    if (eintr_storm > 0) {
      --eintr_storm;
      errno = EINTR;
      continue;
    }
    const ssize_t n = ::pwrite(fd_, in + total, want - total,
                               static_cast<off_t>(offset + total));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(path_, io_context("pwrite", size, offset));
    }
    total += static_cast<std::size_t>(n);
  }
  if (fail_after_prefix) {
    injected(path_, site_label,
             io_context("pwrite", size, offset) + ": wrote only " +
                 std::to_string(total) + " bytes");
  }
}

void File::truncate(std::uint64_t size) {
  if (const auto hit = failpoint::check("fileio.ftruncate")) {
    apply_common(hit, path_, "fileio.ftruncate", "ftruncate");
    injected(path_, "fileio.ftruncate", "ftruncate");
  }
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    fail(path_, "ftruncate to " + std::to_string(size) + " bytes");
  }
}

void File::sync() {
  if (const auto hit = failpoint::check("fileio.fsync")) {
    apply_common(hit, path_, "fileio.fsync", "fsync");
    injected(path_, "fileio.fsync", "fsync");
  }
  if (::fsync(fd_) != 0) fail(path_, "fsync");
}

void File::close() {
  if (fd_ >= 0) {
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) fail(path_, "close");
  }
}

void write_file_durable(const std::string& path, const std::string& content) {
  File file(path, File::Mode::kCreate);
  file.write_at(0, content.data(), content.size());
  file.sync();
  file.close();
}

std::string read_file(const std::string& path) {
  File file(path, File::Mode::kRead);
  std::string content(file.size(), '\0');
  file.read_at(0, content.data(), content.size());
  return content;
}

void sync_directory(const std::string& path) {
  if (const auto hit = failpoint::check("fileio.fsync")) {
    apply_common(hit, path, "fileio.fsync", "fsync");
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) fail(path, "open directory for fsync");
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail(path, "fsync directory");
  }
  ::close(fd);
}

}  // namespace allarm
