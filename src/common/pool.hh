// Free-list arena for per-transaction state blocks.
//
// The directory allocates a small state block per in-flight coherence
// transaction (miss, broadcast, eviction).  std::make_shared costs a heap
// allocation plus atomic refcounting per transaction; Pool hands out slots
// from chunked storage and recycles them through an intrusive free list,
// so steady-state acquire/release touches no allocator at all.
//
// T must be trivially destructible: release() does not run destructors,
// and reclaim_all() (used between experiment repetitions, when pending
// events referencing live blocks have been discarded wholesale) simply
// forgets every outstanding block.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace allarm {

template <typename T>
class Pool {
  static_assert(std::is_trivially_destructible_v<T>,
                "Pool does not run destructors on release/reclaim_all");

 public:
  /// Returns a value-initialized block (default member initializers apply).
  T* acquire() {
    ++live_;
    if (free_head_ != nullptr) {
      Slot* slot = free_head_;
      free_head_ = slot->next;
      return ::new (static_cast<void*>(slot->storage)) T{};
    }
    if (chunks_.empty() || chunk_used_ == kChunkSlots) {
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSlots));
      chunk_used_ = 0;
    }
    Slot* slot = &chunks_.back()[chunk_used_++];
    return ::new (static_cast<void*>(slot->storage)) T{};
  }

  /// Returns `block` (obtained from acquire) to the free list.
  void release(T* block) {
    Slot* slot = reinterpret_cast<Slot*>(block);
    slot->next = free_head_;
    free_head_ = slot;
    --live_;
  }

  /// Blocks currently acquired and not yet released.
  std::size_t live() const { return live_; }

  /// Forgets every outstanding block and recycles all storage.  Only valid
  /// when no acquired pointer will be dereferenced again (between
  /// experiment repetitions, after the event queue has been cleared).
  void reclaim_all() {
    free_head_ = nullptr;
    if (chunks_.size() > 1) chunks_.resize(1);
    chunk_used_ = 0;
    live_ = 0;
  }

 private:
  union Slot {
    Slot* next;
    alignas(T) unsigned char storage[sizeof(T)];
  };
  static constexpr std::size_t kChunkSlots = 64;

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::size_t chunk_used_ = 0;  ///< Slots handed out of the last chunk.
  Slot* free_head_ = nullptr;
  std::size_t live_ = 0;
};

}  // namespace allarm
