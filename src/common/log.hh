// Minimal leveled logging for the simulator.
//
// Logging is off by default (level kWarn) so hot paths pay only a branch.
// Protocol traces (the `protocol_trace` example) raise the level to kTrace.
#pragma once

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>

namespace allarm {

enum class LogLevel : std::uint8_t { kTrace = 0, kDebug, kInfo, kWarn, kError };

/// Global log configuration.
class Log {
 public:
  static LogLevel level() { return level_; }
  static void set_level(LogLevel level) { level_ = level; }
  static bool enabled(LogLevel level) { return level >= level_; }

  /// Emits one formatted line (see format_line) to stderr, stamped with
  /// the monotonic time since process start and the calling thread's name.
  static void write(LogLevel level, const std::string& message);

  /// Pure formatter behind write(), exposed so tests can pin the format:
  /// "[<sec>.<6-digit-us>] [<thread>] [<lvl>] message".  `mono_ns` is
  /// nanoseconds since process start; `thread` is the OS thread name
  /// (the pool names workers "allarm-w<i>", see runner/thread_pool.cc).
  static std::string format_line(LogLevel level, const std::string& message,
                                 std::uint64_t mono_ns,
                                 const std::string& thread);

 private:
  static LogLevel level_;
};

namespace detail {
inline void append(std::ostringstream&) {}
template <typename T, typename... Rest>
void append(std::ostringstream& out, const T& value, const Rest&... rest) {
  out << value;
  append(out, rest...);
}
}  // namespace detail

/// Logs all arguments, stream-style, at the given level.
template <typename... Args>
void log_at(LogLevel level, const Args&... args) {
  if (!Log::enabled(level)) return;
  std::ostringstream out;
  detail::append(out, args...);
  Log::write(level, out.str());
}

template <typename... Args> void log_trace(const Args&... a) { log_at(LogLevel::kTrace, a...); }

/// Hot-path trace logging.  Unlike a plain log_trace(...) call, the
/// argument expressions are NOT evaluated when tracing is disabled -- a
/// `to_string(kind)` argument would otherwise construct a std::string on
/// every event even though the line is dropped.  Use this form in
/// per-event code (directory, cache controller); plain log_* is fine on
/// cold paths.
#define ALLARM_LOG_TRACE(...)                                        \
  do {                                                               \
    if (::allarm::Log::enabled(::allarm::LogLevel::kTrace)) {        \
      ::allarm::log_trace(__VA_ARGS__);                              \
    }                                                                \
  } while (0)
template <typename... Args> void log_debug(const Args&... a) { log_at(LogLevel::kDebug, a...); }
template <typename... Args> void log_info(const Args&... a)  { log_at(LogLevel::kInfo, a...); }
template <typename... Args> void log_warn(const Args&... a)  { log_at(LogLevel::kWarn, a...); }
template <typename... Args> void log_error(const Args&... a) { log_at(LogLevel::kError, a...); }

}  // namespace allarm
