// A lightweight non-owning callable reference (the proposed
// std::function_ref, reduced to what the simulator needs).
//
// Taking `const std::function<...>&` in an API forces every caller passing
// a lambda to materialize a std::function first -- a potential heap
// allocation per call on paths like the per-miss pinned-predicate check in
// ProbeFilter::displace_victim.  FunctionRef is two words (object pointer +
// thunk), never allocates and never owns: the referenced callable must
// outlive the call, which holds trivially for the "pass a lambda down one
// call" uses here.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace allarm {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& fn) noexcept  // NOLINT: implicit by design.
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(fn)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace allarm
