// System configuration, defaulted to Table I of the ALLARM paper
// (Roy & Jones, DATE 2014).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/types.hh"

namespace allarm {

/// Directory allocation policy.
enum class DirectoryMode : std::uint8_t {
  kBaseline,  ///< Allocate a probe-filter entry on every miss (Hammer + PF).
  kAllarm,    ///< ALLocAte on Remote Miss (the paper's contribution).
  kRegion,    ///< Region-granularity entries for private regions (src/region/).
};

std::string to_string(DirectoryMode mode);

/// Cache geometry for one cache level.
struct CacheConfig {
  std::uint32_t size_bytes = 0;   ///< Total capacity.
  std::uint32_t ways = 4;         ///< Associativity.
  Tick latency = ticks_from_ns(1.0);  ///< Lookup latency.

  /// Number of 64-byte lines this cache can hold.
  std::uint32_t lines() const { return size_bytes / kLineBytes; }
  /// Number of sets.
  std::uint32_t sets() const { return lines() / ways; }
};

/// Replacement policy selector for caches and the probe filter.
enum class ReplacementKind : std::uint8_t {
  kLru,        ///< True least-recently-used.
  kTreePlru,   ///< Tree pseudo-LRU.
  kRandom,     ///< Pseudo-random victim.
};

std::string to_string(ReplacementKind kind);

/// Full simulated-system configuration (defaults reproduce Table I).
struct SystemConfig {
  // --- Cores and per-core caches -----------------------------------------
  std::uint32_t num_cores = 16;             ///< 16 cores.
  double core_freq_ghz = 2.0;               ///< 2 GHz.
  CacheConfig l1i{32 * 1024, 4, ticks_from_ns(1.0)};   ///< 32 kB 4-way.
  CacheConfig l1d{32 * 1024, 4, ticks_from_ns(1.0)};   ///< 32 kB 4-way.
  CacheConfig l2{256 * 1024, 4, ticks_from_ns(1.0)};   ///< 256 kB 4-way, exclusive.
  ReplacementKind cache_replacement = ReplacementKind::kLru;

  // --- Directory / probe filter ------------------------------------------
  /// Bytes of cached data each per-node probe filter can track
  /// (512 kB = 2x coverage of one L2, as in deployed AMD Hammer systems).
  std::uint32_t probe_filter_coverage_bytes = 512 * 1024;
  std::uint32_t probe_filter_ways = 4;      ///< Probe-filter associativity.
  Tick probe_filter_latency = ticks_from_ns(1.0);  ///< 1 ns access.
  ReplacementKind probe_filter_replacement = ReplacementKind::kLru;
  DirectoryMode directory_mode = DirectoryMode::kBaseline;
  /// If true the ALLARM local probe is issued in parallel with the
  /// speculative DRAM read (Section II-D).  If false the probe is fully
  /// serialized before the DRAM access; used by the latency-hiding ablation.
  bool allarm_parallel_local_probe = true;
  /// If true (default), the data reply of an allocating miss waits until
  /// the victim entry's invalidation acks have arrived: the directory way
  /// is not reusable until the victim line is known to be invalidated
  /// everywhere.  This synchronous-victim cost model follows the paper's
  /// Section II-B accounting (victim readout, invalidation messages and
  /// acknowledgments per eviction).  Setting it false models an eviction
  /// buffer that drains victim flows in the background; the
  /// bench_ablation_eviction_buffer binary compares both models.
  bool eviction_gates_reply = true;
  /// Region size for DirectoryMode::kRegion: bytes covered by one region
  /// directory entry.  Power of two, in [kLineBytes, kPageBytes] -- a
  /// region never spans a page, so every region has a single home
  /// directory.  At kLineBytes (one line per region) region mode
  /// degenerates to the baseline protocol exactly.  Ignored by the other
  /// modes.
  std::uint32_t region_size_bytes = 4096;

  // --- Memory --------------------------------------------------------------
  std::uint64_t dram_total_bytes = 2ull * 1024 * 1024 * 1024;  ///< 2 GB.
  Tick dram_latency = ticks_from_ns(60.0);  ///< 60 ns access latency.
  /// Minimum gap between successive accesses at one memory controller
  /// (simple bandwidth model; 64 B / 10 ns = 6.4 GB/s per controller).
  Tick dram_cycle = ticks_from_ns(10.0);

  // --- Network --------------------------------------------------------------
  std::uint32_t mesh_width = 4;             ///< 4x4 mesh.
  std::uint32_t mesh_height = 4;
  std::uint32_t flit_bytes = 4;             ///< 4-byte flits.
  std::uint32_t control_msg_bytes = 8;      ///< Control message size.
  std::uint32_t data_msg_bytes = 72;        ///< Data message (64 B + header).
  double link_bandwidth_gbps = 8.0;         ///< 8 GB/s per link.
  Tick link_latency = ticks_from_ns(10.0);  ///< 10 ns per hop.
  Tick router_latency = ticks_from_ns(1.0); ///< Router pipeline delay.

  // --- Same-node (no-NoC) communication ------------------------------------
  /// Latency of a message between co-located components (core <-> directory
  /// in the same node); these never enter the mesh.
  Tick local_hop_latency = ticks_from_ns(1.0);

  // --- Derived quantities ----------------------------------------------------
  /// Probe-filter entry count (one entry tracks one cached line).
  std::uint32_t probe_filter_entries() const {
    return probe_filter_coverage_bytes / kLineBytes;
  }
  /// Total node count.
  std::uint32_t num_nodes() const { return mesh_width * mesh_height; }
  /// DRAM bytes attached to each node's memory controller.
  std::uint64_t dram_bytes_per_node() const {
    return dram_total_bytes / num_nodes();
  }
  /// Time to push one flit onto a link.
  Tick flit_serialization() const {
    const double ns = static_cast<double>(flit_bytes) / link_bandwidth_gbps;
    return ticks_from_ns(ns);
  }

  /// Throws std::invalid_argument when the configuration is inconsistent.
  void validate() const;
};

}  // namespace allarm
