#include "common/stats.hh"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace allarm {

double StatSet::get(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

bool StatSet::contains(const std::string& name) const {
  return values_.count(name) != 0;
}

double StatSet::normalized_to(const StatSet& base, const std::string& name,
                              double fallback) const {
  const double denom = base.get(name, 0.0);
  if (denom == 0.0 || !contains(name)) return fallback;
  return get(name) / denom;
}

void StatSet::merge(const StatSet& other, const std::string& prefix) {
  for (const auto& [name, value] : other.values_) values_[prefix + name] = value;
}

std::string StatSet::to_string() const {
  std::size_t width = 0;
  for (const auto& [name, value] : values_) width = std::max(width, name.size());
  std::ostringstream out;
  for (const auto& [name, value] : values_) {
    out << std::left << std::setw(static_cast<int>(width) + 2) << name
        << value << '\n';
  }
  return out.str();
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) return 0.0;
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace allarm
