#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <sstream>

namespace allarm {

double StatSet::get(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

bool StatSet::contains(const std::string& name) const {
  return values_.count(name) != 0;
}

double StatSet::normalized_to(const StatSet& base, const std::string& name,
                              double fallback) const {
  const double denom = base.get(name, 0.0);
  if (denom == 0.0 || !contains(name)) return fallback;
  return get(name) / denom;
}

void StatSet::merge(const StatSet& other, const std::string& prefix) {
  for (const auto& [name, value] : other.values_) values_[prefix + name] = value;
}

std::string StatSet::to_string() const {
  std::size_t width = 0;
  for (const auto& [name, value] : values_) width = std::max(width, name.size());
  std::ostringstream out;
  for (const auto& [name, value] : values_) {
    out << std::left << std::setw(static_cast<int>(width) + 2) << name
        << value << '\n';
  }
  return out.str();
}

void Summary::add(double value) {
  if (count == 0) {
    min = max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  const double delta = value - mean;
  mean += delta / static_cast<double>(count);
  m2_ += delta * (value - mean);
}

double Summary::stddev() const {
  if (count < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count - 1));
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  for (double v : values) s.add(v);
  return s;
}

int Histogram::bucket_of(std::uint64_t value) {
  if (value == 0) return 0;
  // floor(log2(value)) + 1, saturating into the last bucket.
  int b = 64 - __builtin_clzll(value);
  return b < kBuckets ? b : kBuckets - 1;
}

std::uint64_t Histogram::bucket_lo(int b) {
  if (b <= 0) return 0;
  return std::uint64_t{1} << (b - 1);
}

std::uint64_t Histogram::bucket_hi(int b) {
  if (b <= 0) return 0;
  if (b >= kBuckets - 1) return (std::uint64_t{1} << 63) - 1;
  return (std::uint64_t{1} << b) - 1;
}

void Histogram::record(std::uint64_t value) {
  ++buckets_[static_cast<std::size_t>(bucket_of(value))];
  ++count_;
  if (value > max_) max_ = value;
}

void Histogram::merge(const Histogram& other) {
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[static_cast<std::size_t>(b)] +=
        other.buckets_[static_cast<std::size_t>(b)];
  }
  count_ += other.count_;
  if (other.max_ > max_) max_ = other.max_;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // 1-based rank of the sample the quantile names.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = buckets_[static_cast<std::size_t>(b)];
    if (n == 0) continue;
    if (cumulative + n >= rank) {
      const double lo = static_cast<double>(bucket_lo(b));
      const double hi = static_cast<double>(bucket_hi(b));
      const double within =
          static_cast<double>(rank - cumulative) / static_cast<double>(n);
      const double value = lo + (hi - lo) * within;
      return std::min(value, static_cast<double>(max_));
    }
    cumulative += n;
  }
  return static_cast<double>(max_);  // Unreachable when counts are consistent.
}

void Histogram::export_to(StatSet& out, const std::string& name) const {
  out.set(name + ".p50", quantile(0.50));
  out.set(name + ".p95", quantile(0.95));
  out.set(name + ".p99", quantile(0.99));
  out.set(name + ".max", static_cast<double>(max_));
  out.set(name + ".count", static_cast<double>(count_));
}

void Histogram::add_bucket(int b, std::uint64_t n) {
  if (b < 0 || b >= kBuckets) return;
  buckets_[static_cast<std::size_t>(b)] += n;
  count_ += n;
}

void Histogram::note_max(std::uint64_t value) {
  if (value > max_) max_ = value;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  // Integral values (counters, ticks) print exactly; everything else uses
  // %.17g, which round-trips any double and is locale-independent here.
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) return 0.0;
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace allarm
