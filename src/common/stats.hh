// Lightweight statistics collection.
//
// Components keep plain structs of 64-bit counters on their hot paths and
// export them into a StatSet (a flat name -> value map) at the end of a run.
// StatSet supports arithmetic helpers used by the experiment harness
// (normalization against a baseline, geometric means, table formatting).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace allarm {

/// A flat, ordered collection of named scalar statistics.
class StatSet {
 public:
  /// Sets (or overwrites) a statistic.
  void set(const std::string& name, double value) { values_[name] = value; }

  /// Adds to a statistic, creating it at zero if absent.
  void add(const std::string& name, double value) { values_[name] += value; }

  /// Returns the value of `name`, or `fallback` when absent.
  double get(const std::string& name, double fallback = 0.0) const;

  /// Returns true when `name` is present.
  bool contains(const std::string& name) const;

  /// Returns the ratio this[name] / base[name]; returns `fallback` when the
  /// denominator is zero or either side is missing.
  double normalized_to(const StatSet& base, const std::string& name,
                       double fallback = 1.0) const;

  /// Merges all statistics from `other`, prefixing names with `prefix`.
  void merge(const StatSet& other, const std::string& prefix = "");

  const std::map<std::string, double>& values() const { return values_; }

  /// Renders all statistics as aligned "name value" lines.
  std::string to_string() const;

 private:
  std::map<std::string, double> values_;
};

/// Aggregate of one statistic across sweep replicates.
///
/// Values are folded with Welford's algorithm in the order given, so two
/// aggregations over the same sequence produce bit-identical results — the
/// sweep runner relies on this for reproducible reports at any job count.
struct Summary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;

  /// Folds one value into the aggregate.
  void add(double value);

  /// Sample standard deviation; 0 when fewer than two values were added.
  double stddev() const;

 private:
  double m2_ = 0.0;  ///< Sum of squared deviations from the running mean.
};

/// Summarizes `values` in order.
Summary summarize(const std::vector<double>& values);

/// Fixed-bucket log2 histogram of non-negative integer samples (latencies
/// in ns, queue depths, ...).
///
/// Bucket 0 holds exact zeros; bucket b >= 1 holds [2^(b-1), 2^b - 1],
/// with the last bucket absorbing everything above 2^62.  Merging adds
/// bucket counts, so it is commutative and associative like StatSet::add —
/// per-replicate histograms fold into a cell in any order with identical
/// results.  The exact maximum is tracked on the side so quantiles never
/// report past the largest observed sample.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  /// Bucket index a value lands in (exposed for tests).
  static int bucket_of(std::uint64_t value);

  /// Inclusive [lo, hi] value range of bucket `b` (hi of the last bucket
  /// saturates at 2^63 - 1).
  static std::uint64_t bucket_lo(int b);
  static std::uint64_t bucket_hi(int b);

  /// Folds one sample in.
  void record(std::uint64_t value);

  /// Adds all of `other`'s samples to this histogram.
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t max() const { return max_; }
  bool empty() const { return count_ == 0; }

  /// Value at quantile `q` in [0, 1]: the bucket holding sample rank
  /// ceil(q * count) (1-based), linearly interpolated across the bucket's
  /// range and clamped to the observed maximum.  Returns 0 when empty.
  double quantile(double q) const;

  /// Exports `<name>.p50/.p95/.p99/.max/.count` into `out`.
  void export_to(StatSet& out, const std::string& name) const;

  /// Raw bucket counts (serialization; see runner/journal.cc).
  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

  /// Deserialization primitives: add `n` pre-counted samples to bucket `b`
  /// and restore the observed maximum.  Used by the journal reader only.
  void add_bucket(int b, std::uint64_t n);
  void note_max(std::uint64_t value);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t max_ = 0;
};

/// Serializes a double for JSON: round-trip precision, no locale, stable
/// output for a given bit pattern (integers render without an exponent).
std::string json_number(double value);

/// Quotes and escapes a string as a JSON string literal.
std::string json_quote(const std::string& s);

/// Geometric mean of a list of strictly positive values.
/// Returns 0 when the list is empty or any entry is non-positive.
double geomean(const std::vector<double>& values);

/// Arithmetic mean; returns 0 for an empty list.
double mean(const std::vector<double>& values);

/// A simple fixed-width text table used by the benchmark harness to print
/// paper-style figure/table rows.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` decimal places.
  static std::string fmt(double v, int precision = 3);

  /// Renders the table with aligned columns.
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace allarm
