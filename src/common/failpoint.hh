// Deterministic fault injection: a process-wide registry of named,
// always-compiled failpoints.
//
// Every I/O layer that can fail in production (fileio, the sweep journal,
// the report sinks, trace block I/O, the cell executor) polls a named
// failpoint at its fault-relevant boundary.  With no spec active the poll
// is one relaxed atomic load and a predicted-untaken branch — invisible in
// any profile — so the sites stay compiled into release binaries and every
// recovery path is exercisable exactly as shipped.
//
// A fault schedule is a spec string (the `--failpoints` flag or the
// ALLARM_FAILPOINTS environment variable):
//
//   spec  := rule (';' rule)*
//   rule  := name '=' action ['.' arg] '@' at [':' count]
//
//   name    the failpoint site, e.g. fileio.pwrite (docs/ROBUSTNESS.md
//           lists every site)
//   action  err    fail with an injected error
//           short  truncate the I/O (arg = bytes to deliver; default half)
//           torn   write a prefix, then fail (arg = bytes; default half)
//           eintr  deliver arg simulated EINTRs first (default 16), then
//                  proceed — exercises retry loops, never fails
//           delay  sleep arg milliseconds (default 10), then proceed
//   at      1-based poll ordinal at which the rule starts firing
//   count   how many consecutive ordinals fire (default 1; 0 = every
//           ordinal >= at)
//
// Example: "journal.fsync=err@3;trace.read_block=torn@7;
//           fileio.pwrite=short@11:2".
//
// Determinism: each name keeps one arrival counter, so at --jobs 1 (or at
// any site driven by a single thread) the Nth poll of a name is the same
// operation on every run.  Sites whose poll order is scheduling-dependent
// use check_indexed() with a caller-supplied ordinal (e.g. `cell.job`
// matches on the grid job index), which is reproducible at any --jobs.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace allarm::failpoint {

enum class Action : std::uint8_t {
  kNone = 0,   ///< Not firing.
  kError,      ///< Fail the operation with an injected error.
  kShortIo,    ///< Deliver only `arg` bytes (0 = half of the request).
  kTornWrite,  ///< Write `arg` bytes (0 = half), then fail.
  kEintrStorm, ///< `arg` simulated EINTRs, then proceed normally.
  kDelay,      ///< Sleep `arg` milliseconds, then proceed normally.
};

/// What one poll resolved to.  Evaluates false when no rule fired.
struct Hit {
  Action action = Action::kNone;
  std::uint64_t arg = 0;
  explicit operator bool() const { return action != Action::kNone; }
};

namespace detail {
extern std::atomic<bool> g_active;
Hit check_slow(const char* name);
Hit check_indexed_slow(const char* name, std::uint64_t ordinal);
}  // namespace detail

/// Polls failpoint `name`: increments its arrival counter and returns the
/// first matching rule's action.  One relaxed load + predicted branch when
/// no spec is active.
inline Hit check(const char* name) {
  if (!detail::g_active.load(std::memory_order_relaxed)) return Hit{};
  return detail::check_slow(name);
}

/// Like check(), but rules match against the caller-supplied `ordinal`
/// (e.g. a grid job index) instead of the arrival counter, so the match is
/// independent of thread scheduling.  The arrival counter still advances
/// (hits() observes every poll either way).
inline Hit check_indexed(const char* name, std::uint64_t ordinal) {
  if (!detail::g_active.load(std::memory_order_relaxed)) return Hit{};
  return detail::check_indexed_slow(name, ordinal);
}

/// Installs `spec` (replacing any active schedule).  An empty spec
/// deactivates everything.  Throws std::invalid_argument with the exact
/// offending rule on any grammar error.
void configure(const std::string& spec);

/// configure(getenv("ALLARM_FAILPOINTS")); no-op when unset.  Returns the
/// installed spec (empty when inactive) so CLIs can banner it.
std::string configure_from_env();

/// Deactivates every failpoint and resets all counters.
void clear();

/// True while any rule is installed.
bool active();

/// Polls observed for `name` since configure() (0 when the name is not in
/// the active spec — unconfigured sites never reach the slow path).
std::uint64_t hits(const std::string& name);

/// The active spec string, verbatim ("" when inactive).
std::string describe();

/// RAII spec for tests: installs on construction, clears on destruction.
struct Scoped {
  explicit Scoped(const std::string& spec) { configure(spec); }
  ~Scoped() { clear(); }
  Scoped(const Scoped&) = delete;
  Scoped& operator=(const Scoped&) = delete;
};

}  // namespace allarm::failpoint
