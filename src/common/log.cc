#include "common/log.hh"

#include <chrono>
#include <cinttypes>
#include <cstdio>

#if defined(__linux__)
#include <pthread.h>
#endif

namespace allarm {

namespace {

/// Monotonic nanoseconds since the first log line (cheap proxy for
/// process start; the clock is anchored once, so lines order correctly).
std::uint64_t mono_ns_now() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point t0 = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0)
          .count());
}

std::string current_thread_name() {
#if defined(__linux__)
  char buf[16] = {0};
  if (pthread_getname_np(pthread_self(), buf, sizeof(buf)) == 0 &&
      buf[0] != '\0') {
    return buf;
  }
#endif
  return "-";
}

}  // namespace

LogLevel Log::level_ = LogLevel::kWarn;

std::string Log::format_line(LogLevel level, const std::string& message,
                             std::uint64_t mono_ns,
                             const std::string& thread) {
  static const char* names[] = {"trace", "debug", "info", "warn", "error"};
  char stamp[40];
  std::snprintf(stamp, sizeof(stamp), "[%" PRIu64 ".%06" PRIu64 "]",
                mono_ns / 1000000000u, (mono_ns / 1000u) % 1000000u);
  std::string out = stamp;
  out += " [";
  out += thread;
  out += "] [";
  out += names[static_cast<int>(level)];
  out += "] ";
  out += message;
  return out;
}

void Log::write(LogLevel level, const std::string& message) {
  std::cerr << format_line(level, message, mono_ns_now(),
                           current_thread_name())
            << '\n';
}

}  // namespace allarm
