#include "common/log.hh"

namespace allarm {

LogLevel Log::level_ = LogLevel::kWarn;

void Log::write(LogLevel level, const std::string& message) {
  static const char* names[] = {"trace", "debug", "info", "warn", "error"};
  std::cerr << '[' << names[static_cast<int>(level)] << "] " << message << '\n';
}

}  // namespace allarm
