// Thin RAII wrapper over POSIX file descriptors with positional I/O.
//
// The sweep journal needs operations std::fstream does not expose cleanly:
// fsync for durability batches, ftruncate to discard a torn tail, and
// pread/pwrite so one handle can append records while re-reading earlier
// payloads during a resume.  Every failure throws std::runtime_error with
// the path, the operation's size/offset context and strerror(errno) —
// callers never see silent short writes.
//
// Every operation polls a failpoint (fileio.open / fileio.pread /
// fileio.pwrite / fileio.fsync / fileio.ftruncate; see common/failpoint.hh
// and docs/ROBUSTNESS.md) so crash-recovery paths above this layer are
// exercisable deterministically.  Inactive failpoints cost one predicted
// branch per call.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace allarm {

class File {
 public:
  enum class Mode {
    kRead,       ///< Existing file, read-only.
    kCreate,     ///< Create or truncate, read-write.
    kReadWrite,  ///< Existing file, read-write (resume path).
  };

  File() = default;
  File(const std::string& path, Mode mode);  ///< Throws on failure.
  ~File();

  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Current size in bytes.
  std::uint64_t size() const;

  /// Reads exactly `size` bytes at `offset`; throws on short read or error.
  void read_at(std::uint64_t offset, void* data, std::size_t size) const;

  /// Reads up to `size` bytes at `offset`; returns the count actually read.
  std::size_t read_at_most(std::uint64_t offset, void* data,
                           std::size_t size) const;

  /// Writes exactly `size` bytes at `offset` (extends the file as needed).
  void write_at(std::uint64_t offset, const void* data, std::size_t size);

  /// Truncates (or extends with zeros) to `size` bytes.
  void truncate(std::uint64_t size);

  /// Flushes file content and metadata to stable storage (fsync).
  void sync();

  /// Closes the descriptor; further I/O throws.  Idempotent.
  void close();

 private:
  int fd_ = -1;
  std::string path_;
};

/// Writes `content` to `path` (create/truncate) and fsyncs it.  Throws
/// std::runtime_error on any failure.
void write_file_durable(const std::string& path, const std::string& content);

/// Reads the whole of `path` into a string; throws on failure.
std::string read_file(const std::string& path);

/// fsyncs a DIRECTORY so a just-renamed or just-created entry inside it
/// survives power loss (a file's own fsync does not make its name
/// durable).  The rename-into-place idiom (spool enqueue, state files) is
/// only crash-atomic with this barrier after it.  Throws on failure.
void sync_directory(const std::string& path);

}  // namespace allarm
