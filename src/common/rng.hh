// Deterministic pseudo-random number generation.
//
// Every stochastic choice in the simulator flows from a seeded generator so
// that each experiment is reproducible bit-for-bit.  SplitMix64 is used for
// seeding / stream splitting; xoshiro256** is the workhorse generator.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace allarm {

/// SplitMix64: tiny generator used to expand a single seed into the state of
/// larger generators and to derive independent substreams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator.
/// Satisfies (most of) the UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose full state is derived from `seed` via
  /// SplitMix64, as recommended by the xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedull) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be nonzero.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) {
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability `p` of returning true.
  bool chance(double p) { return uniform() < p; }

  /// Derives an independent generator for a named substream.
  Rng split(std::uint64_t stream_id) {
    SplitMix64 sm(next() ^ (stream_id * 0x9e3779b97f4a7c15ull));
    Rng child(sm.next());
    return child;
  }

  /// State equality: two equal generators produce identical streams.
  /// Trace capture uses this to count the draws an access consumed by
  /// stepping a pre-access snapshot forward until it matches.
  friend bool operator==(const Rng& a, const Rng& b) {
    return a.state_ == b.state_;
  }
  friend bool operator!=(const Rng& a, const Rng& b) { return !(a == b); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Zipf-distributed integers over [0, n): rank r is drawn with probability
/// proportional to 1/(r+1)^alpha.  Used to model skewed page popularity
/// (hash tables, hot shared structures).
///
/// Sampling is a guide-table-accelerated inverse-CDF: a K-entry index maps
/// each uniform-draw interval [k/K, (k+1)/K) to the narrow rank window
/// [guide_[k], guide_[k+1]] that can contain the answer, so each draw does
/// O(1) expected work instead of an O(log n) binary search over the whole
/// CDF.  The guide table is a pure accelerator: rank(u) returns EXACTLY the
/// index std::lower_bound over the full CDF would (rank_reference), so the
/// switch is invisible to every access stream and every sweep report byte.
class ZipfDistribution {
 public:
  ZipfDistribution(std::uint64_t n, double alpha);

  /// Draws one sample in [0, n); consumes exactly one rng.uniform().
  std::uint64_t operator()(Rng& rng) const { return rank(rng.uniform()); }

  /// Rank of a uniform draw `u` in [0, 1), via the guide table.
  std::uint64_t rank(double u) const;

  /// Reference implementation: lower_bound over the full CDF.  rank() must
  /// agree with this for every u (pinned by tests/workload_test.cc).
  std::uint64_t rank_reference(double u) const;

  std::uint64_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // Normalized cumulative weights.
  /// guide_[k] = first rank whose CDF value is >= k/guide_buckets_, for
  /// k in [0, guide_buckets_]; guide_[guide_buckets_] == size().
  std::vector<std::uint32_t> guide_;
  std::uint64_t guide_buckets_ = 0;
  double guide_scale_ = 0.0;  ///< == guide_buckets_ as a double.
};

}  // namespace allarm
