// Checksums and content hashes used by on-disk formats.
//
// CRC32C (Castagnoli) guards the sweep journal's fixed-size records and
// result payloads against torn writes and bit rot; FNV-1a/64 condenses a
// SweepSpec's identity into the spec hash a journal is stamped with.  Both
// are implemented in portable C++ (no SSE4.2 intrinsics) — the journal is
// I/O-bound, not checksum-bound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace allarm {

/// CRC32C (polynomial 0x1EDC6F41, reflected) of `size` bytes starting at
/// `data`, continuing from `seed` (pass the previous return value to
/// checksum a buffer in pieces).  crc32c("123456789") == 0xE3069283.
std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

inline std::uint32_t crc32c(const std::string& s, std::uint32_t seed = 0) {
  return crc32c(s.data(), s.size(), seed);
}

/// Streaming FNV-1a 64-bit hasher.  Deterministic across platforms and
/// process runs (no ASLR-dependent state), which is what lets a journal
/// written on one machine be validated on another.
class Fnv1a64 {
 public:
  static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;

  void update(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state_ = (state_ ^ bytes[i]) * kPrime;
    }
  }

  /// Length-prefixed string fold: "ab" + "c" and "a" + "bc" hash apart.
  void update(const std::string& s) {
    update_u64(s.size());
    update(s.data(), s.size());
  }

  void update_u64(std::uint64_t v) { update(&v, sizeof(v)); }
  void update_u32(std::uint32_t v) { update(&v, sizeof(v)); }

  void update_double(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    update_u64(bits);
  }

  std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = kOffset;
};

}  // namespace allarm
