#include "common/rng.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace allarm {

ZipfDistribution::ZipfDistribution(std::uint64_t n, double alpha) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: empty support");
  cdf_.resize(n);
  double total = 0.0;
  for (std::uint64_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), alpha);
    cdf_[r] = total;
  }
  for (auto& c : cdf_) c /= total;
}

std::uint64_t ZipfDistribution::operator()(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

}  // namespace allarm
