#include "common/rng.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace allarm {

ZipfDistribution::ZipfDistribution(std::uint64_t n, double alpha) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: empty support");
  if (n > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("ZipfDistribution: support too large");
  }
  cdf_.resize(n);
  double total = 0.0;
  for (std::uint64_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), alpha);
    cdf_[r] = total;
  }
  for (auto& c : cdf_) c /= total;

  // Guide table: one bucket per rank (clamped to a sane minimum) makes the
  // total window size n + K, i.e. O(1) expected ranks scanned per draw.
  guide_buckets_ = std::max<std::uint64_t>(n, 16);
  guide_scale_ = static_cast<double>(guide_buckets_);
  guide_.resize(guide_buckets_ + 1);
  std::uint64_t rank = 0;
  for (std::uint64_t k = 0; k <= guide_buckets_; ++k) {
    const double threshold = static_cast<double>(k) / guide_scale_;
    while (rank < n && cdf_[rank] < threshold) ++rank;
    guide_[k] = static_cast<std::uint32_t>(rank);
  }
}

std::uint64_t ZipfDistribution::rank(double u) const {
  // Bucket of u.  floor(u * K) can be off by one when u * K rounds across
  // an integer; the two fixups below re-anchor k against the exact bucket
  // thresholds (computed with the same k/K division the constructor used),
  // so [guide_[k], guide_[k+1]] is guaranteed to bracket the answer.
  std::uint64_t k = static_cast<std::uint64_t>(u * guide_scale_);
  if (k >= guide_buckets_) k = guide_buckets_ - 1;
  while (k > 0 && u < static_cast<double>(k) / guide_scale_) --k;
  while (k + 1 < guide_buckets_ &&
         u >= static_cast<double>(k + 1) / guide_scale_) {
    ++k;
  }
  const std::uint32_t lo = guide_[k];
  const std::uint32_t hi = guide_[k + 1];  // Inclusive upper bound on rank.
  // lower_bound over the narrow window; identical result to the full-CDF
  // search because rank_reference(u) lies in [lo, hi] by construction.
  const auto first = cdf_.begin() + lo;
  const auto last = cdf_.begin() + hi;
  return static_cast<std::uint64_t>(std::lower_bound(first, last, u) -
                                    cdf_.begin());
}

std::uint64_t ZipfDistribution::rank_reference(double u) const {
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

}  // namespace allarm
