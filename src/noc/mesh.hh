// On-chip interconnect: a 2-D mesh with XY (dimension-order) routing and a
// per-link contention model.
//
// The model is message-level with virtual-cut-through-style timing: a
// message occupies each link on its route for its serialization time
// (flits x flit time) and pays per-hop propagation plus router pipeline
// delay.  Queuing behind earlier messages on a link is modelled with a
// per-link next-free time.  Byte counts (the quantity in Figure 3c of the
// paper) are exact; latency under bursty load is approximated.
//
// Messages between co-located components (same node) never enter the mesh:
// they pay only `local_hop_latency` and are accounted separately.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace allarm::noc {

/// Why a message was sent; used for traffic breakdowns.
enum class TrafficCause : std::uint8_t {
  kRequest,       ///< GetS/GetM from a core to a directory.
  kResponse,      ///< Data or completion back to the requesting core.
  kProbe,         ///< Directory-initiated probe (demand flow).
  kProbeAck,      ///< Ack / ack+data answering a demand probe.
  kEviction,      ///< Invalidation probe caused by a probe-filter eviction.
  kEvictionAck,   ///< Ack answering an eviction probe.
  kWriteback,     ///< PutM/PutE from a cache to a directory.
  kOther,
};
inline constexpr std::size_t kNumTrafficCauses = 8;

std::string to_string(TrafficCause cause);

/// Aggregate network statistics.
struct NocStats {
  std::uint64_t messages = 0;        ///< Mesh messages delivered.
  std::uint64_t control_messages = 0;
  std::uint64_t data_messages = 0;
  std::uint64_t bytes = 0;           ///< Total bytes crossing mesh links once.
  std::uint64_t flit_hops = 0;       ///< Sum over messages of flits x hops.
  std::uint64_t router_crossings = 0;
  std::uint64_t local_messages = 0;  ///< Same-node deliveries (not on mesh).
  std::uint64_t bytes_by_cause[kNumTrafficCauses] = {};
  std::uint64_t msgs_by_cause[kNumTrafficCauses] = {};
};

/// A width x height mesh with one network interface per node.
class Mesh {
 public:
  explicit Mesh(const SystemConfig& config);

  std::uint32_t width() const { return width_; }
  std::uint32_t height() const { return height_; }
  std::uint32_t num_nodes() const { return width_ * height_; }

  /// Manhattan hop count between two nodes.
  std::uint32_t hops(NodeId src, NodeId dst) const;

  /// Sends a `bytes`-sized message from `src` to `dst` at time `now`.
  /// Returns the arrival time at `dst` and updates traffic statistics.
  /// A same-node send bypasses the mesh entirely.
  Tick send(NodeId src, NodeId dst, std::uint32_t bytes, Tick now,
            TrafficCause cause);

  /// Latency of an uncontended `bytes`-sized transfer between two nodes.
  /// Does not update any state; used for capacity planning and tests.
  Tick uncontended_latency(NodeId src, NodeId dst, std::uint32_t bytes) const;

  const NocStats& stats() const { return stats_; }
  void reset_stats();

  /// Total busy time accumulated on the most-loaded directed link.
  Tick max_link_busy_time() const;

  /// Installs a histogram that receives each mesh message's total link
  /// queueing delay in nanoseconds (time spent waiting behind earlier
  /// messages, excluding serialization and propagation).  Null disables
  /// recording (the default); the caller owns the histogram and must keep
  /// it alive across send() calls.  See RunOptions::profile.
  void set_queue_histogram(Histogram* hist) { queue_hist_ = hist; }

 private:
  // Directed link ids: node * 4 + direction (0=E,1=W,2=N,3=S).
  enum Direction : std::uint32_t { kEast = 0, kWest, kNorth, kSouth };

  // Coordinate and flit arithmetic runs once or twice per hop on every
  // mesh message; for the power-of-two geometries every real
  // configuration uses (width 4, 4-byte flits) the divides and modulos
  // strength-reduce to shifts and masks precomputed at construction.
  std::uint32_t x_of(NodeId n) const {
    return width_pow2_ ? (n & width_mask_) : (n % width_);
  }
  std::uint32_t y_of(NodeId n) const {
    return width_pow2_ ? (static_cast<std::uint32_t>(n) >> width_shift_)
                       : (n / width_);
  }
  NodeId node_at(std::uint32_t x, std::uint32_t y) const {
    return static_cast<NodeId>(
        (width_pow2_ ? (y << width_shift_) : y * width_) + x);
  }
  std::uint32_t link_id(NodeId from, Direction d) const {
    return (static_cast<std::uint32_t>(from) << 2) + d;
  }

  std::uint32_t flits_for(std::uint32_t bytes) const {
    return flit_pow2_ ? ((bytes + flit_mask_) >> flit_shift_)
                      : ((bytes + flit_bytes_ - 1) / flit_bytes_);
  }

  std::uint32_t width_;
  std::uint32_t height_;
  std::uint32_t flit_bytes_;
  std::uint32_t control_bytes_;
  bool width_pow2_ = false;
  bool flit_pow2_ = false;
  std::uint32_t width_shift_ = 0;
  std::uint32_t width_mask_ = 0;
  std::uint32_t flit_shift_ = 0;
  std::uint32_t flit_mask_ = 0;
  Tick flit_time_;
  Tick link_latency_;
  Tick router_latency_;
  Tick local_hop_latency_;

  std::vector<Tick> link_free_;   ///< Next-free time per directed link.
  std::vector<Tick> link_busy_;   ///< Accumulated busy time per link.

  /// Precomputed XY routes, indexed by src * num_nodes + dst: the directed
  /// link ids a message crosses, materialized once at construction so the
  /// per-message loop walks a flat array instead of re-deriving mesh
  /// coordinates hop by hop.  routes_[p] spans
  /// route_links_[route_offset_[p] .. route_offset_[p+1]).
  std::vector<std::uint32_t> route_links_;
  std::vector<std::uint32_t> route_offset_;

  NocStats stats_;
  Histogram* queue_hist_ = nullptr;  ///< Per-message queueing delay sink.
};

}  // namespace allarm::noc
