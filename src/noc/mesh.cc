#include "noc/mesh.hh"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace allarm::noc {

std::string to_string(TrafficCause cause) {
  switch (cause) {
    case TrafficCause::kRequest: return "request";
    case TrafficCause::kResponse: return "response";
    case TrafficCause::kProbe: return "probe";
    case TrafficCause::kProbeAck: return "probe-ack";
    case TrafficCause::kEviction: return "eviction";
    case TrafficCause::kEvictionAck: return "eviction-ack";
    case TrafficCause::kWriteback: return "writeback";
    case TrafficCause::kOther: return "other";
  }
  return "unknown";
}

Mesh::Mesh(const SystemConfig& config)
    : width_(config.mesh_width),
      height_(config.mesh_height),
      flit_bytes_(config.flit_bytes),
      control_bytes_(config.control_msg_bytes),
      flit_time_(config.flit_serialization()),
      link_latency_(config.link_latency),
      router_latency_(config.router_latency),
      local_hop_latency_(config.local_hop_latency),
      link_free_(static_cast<std::size_t>(width_) * height_ * 4, 0),
      link_busy_(link_free_.size(), 0) {
  if (width_ == 0 || height_ == 0) {
    throw std::invalid_argument("Mesh: degenerate dimensions");
  }
  const auto is_pow2 = [](std::uint32_t v) {
    return v != 0 && (v & (v - 1)) == 0;
  };
  const auto log2_of = [](std::uint32_t v) {
    std::uint32_t shift = 0;
    while ((1u << shift) < v) ++shift;
    return shift;
  };
  if (is_pow2(width_)) {
    width_pow2_ = true;
    width_shift_ = log2_of(width_);
    width_mask_ = width_ - 1;
  }
  if (is_pow2(flit_bytes_)) {
    flit_pow2_ = true;
    flit_shift_ = log2_of(flit_bytes_);
    flit_mask_ = flit_bytes_ - 1;
  }

  // Materialize every XY route once; send() then walks a flat link-id
  // array.  16x16 nodes is ~1.5 k link ids — trivially resident.
  const std::uint32_t n = num_nodes();
  route_offset_.reserve(static_cast<std::size_t>(n) * n + 1);
  route_offset_.push_back(0);
  for (NodeId src = 0; src < n; ++src) {
    for (NodeId dst = 0; dst < n; ++dst) {
      std::uint32_t x = x_of(src);
      std::uint32_t y = y_of(src);
      const std::uint32_t tx = x_of(dst);
      const std::uint32_t ty = y_of(dst);
      while (x != tx) {  // Dimension-order (XY) routing: X first, then Y.
        const Direction d = (x < tx) ? kEast : kWest;
        route_links_.push_back(link_id(node_at(x, y), d));
        x = (x < tx) ? x + 1 : x - 1;
      }
      while (y != ty) {
        const Direction d = (y < ty) ? kSouth : kNorth;
        route_links_.push_back(link_id(node_at(x, y), d));
        y = (y < ty) ? y + 1 : y - 1;
      }
      route_offset_.push_back(static_cast<std::uint32_t>(route_links_.size()));
    }
  }
}

std::uint32_t Mesh::hops(NodeId src, NodeId dst) const {
  const auto dx = static_cast<std::int32_t>(x_of(src)) -
                  static_cast<std::int32_t>(x_of(dst));
  const auto dy = static_cast<std::int32_t>(y_of(src)) -
                  static_cast<std::int32_t>(y_of(dst));
  return static_cast<std::uint32_t>(std::abs(dx) + std::abs(dy));
}

Tick Mesh::send(NodeId src, NodeId dst, std::uint32_t bytes, Tick now,
                TrafficCause cause) {
  if (src >= num_nodes() || dst >= num_nodes()) {
    throw std::out_of_range("Mesh::send: bad node id");
  }
  if (src == dst) {
    ++stats_.local_messages;
    return now + local_hop_latency_;
  }

  const std::uint32_t flits = flits_for(bytes);
  const Tick serialization = static_cast<Tick>(flits) * flit_time_;

  // Head traversal with per-link queueing over the precomputed XY route.
  // Each hop: wait for the link, occupy it for the serialization time,
  // then pay wire + router latency.
  const std::size_t pair = static_cast<std::size_t>(src) * num_nodes() + dst;
  const std::uint32_t begin = route_offset_[pair];
  const std::uint32_t end = route_offset_[pair + 1];
  const Tick per_hop_tail = link_latency_ + router_latency_;
  Tick t = now + router_latency_;  // Injection through the source router.
  Tick queued = 0;  // Summed link-wait, recorded only while profiling.
  for (std::uint32_t i = begin; i < end; ++i) {
    const std::uint32_t link = route_links_[i];
    const Tick start = std::max(t, link_free_[link]);
    if (queue_hist_ != nullptr) queued += start - t;
    link_free_[link] = start + serialization;
    link_busy_[link] += serialization;
    t = start + serialization + per_hop_tail;
  }
  if (queue_hist_ != nullptr) queue_hist_->record(queued / kTicksPerNs);
  const std::uint32_t hop_count = end - begin;

  const auto c = static_cast<std::size_t>(cause);
  ++stats_.messages;
  if (bytes <= control_bytes_) ++stats_.control_messages; else ++stats_.data_messages;
  stats_.bytes += bytes;
  stats_.flit_hops += static_cast<std::uint64_t>(flits) * hop_count;
  stats_.router_crossings += hop_count + 1;
  stats_.bytes_by_cause[c] += bytes;
  ++stats_.msgs_by_cause[c];
  return t;
}

Tick Mesh::uncontended_latency(NodeId src, NodeId dst,
                               std::uint32_t bytes) const {
  if (src == dst) return local_hop_latency_;
  const std::uint32_t h = hops(src, dst);
  const Tick serialization = static_cast<Tick>(flits_for(bytes)) * flit_time_;
  return router_latency_ +
         static_cast<Tick>(h) * (serialization + link_latency_ + router_latency_);
}

void Mesh::reset_stats() {
  stats_ = NocStats{};
  std::fill(link_busy_.begin(), link_busy_.end(), 0);
}

Tick Mesh::max_link_busy_time() const {
  Tick best = 0;
  for (const Tick b : link_busy_) best = std::max(best, b);
  return best;
}

}  // namespace allarm::noc
