#include "sim/event_queue.hh"

namespace allarm::sim {

void EventQueue::schedule_at(Tick when, Action action) {
  if (when < now_) {
    throw std::logic_error("EventQueue: scheduling into the past");
  }
  heap_.push(Entry{when, seq_++, std::move(action)});
}

bool EventQueue::run_one() {
  if (heap_.empty()) return false;
  // priority_queue::top returns const&; the action must be moved out before
  // pop.  const_cast is confined to this one extraction point.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = entry.when;
  ++executed_;
  entry.action();
  return true;
}

std::uint64_t EventQueue::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && run_one()) ++n;
  return n;
}

void EventQueue::run_until(Tick until) {
  while (!heap_.empty() && heap_.top().when <= until) run_one();
  if (now_ < until) now_ = until;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
}

}  // namespace allarm::sim
