#include "sim/event_queue.hh"

#include <algorithm>

namespace allarm::sim {

void EventQueue::drain_far_slow() {
  const Tick horizon = base_ + kNearBuckets;
  while (!far_.empty() && far_.front().when < horizon) {
    // Heap pops come out in exact (tick, seq) order, and a tick is only
    // ever migrated before any in-window insert can target it, so bucket
    // FIFO order remains global (tick, seq) order.  The node itself never
    // moves -- only its reference leaves the heap.
    std::pop_heap(far_.begin(), far_.end(), Later{});
    link_near(far_.back().node);
    far_.pop_back();
  }
}

std::uint64_t EventQueue::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && run_one()) ++n;
  return n;
}

void EventQueue::run_until(Tick until) {
  // Peek WITHOUT next_bucket(): that would advance base_ to the next
  // pending tick even when it lies beyond `until`, and an event scheduled
  // afterwards below that tick would land behind the window base and
  // execute out of order.  A pure read keeps base_ <= every executed tick.
  while (true) {
    Tick next;
    if (near_count_ > 0) {
      // Bucket ticks all lie below base_ + kNearBuckets <= any far tick,
      // so the earliest near event is the global minimum.
      const std::size_t b = scan_from(base_ & kNearMask);
      next = nodes_[buckets_[b].head].when;
    } else if (!far_.empty()) {
      next = far_.front().when;
    } else {
      break;
    }
    if (next > until) break;
    run_one();
  }
  if (now_ < until) now_ = until;
}

void EventQueue::clear() {
  if (near_count_ != 0) {
    for (std::size_t w = 0; w < live0_.size(); ++w) {
      std::uint64_t word = live0_[w];
      while (word != 0) {
        const std::size_t b = (w << 6) + lowest_set_bit(word);
        word &= word - 1;
        Bucket& bucket = buckets_[b];
        for (std::uint32_t i = bucket.head; i != kNil;) {
          const std::uint32_t next = nodes_[i].next;
          release_node(i);
          i = next;
        }
        bucket.head = bucket.tail = kNil;
      }
      live0_[w] = 0;
    }
    std::fill(live1_.begin(), live1_.end(), 0);
    live2_ = 0;
    near_count_ = 0;
  }
  for (const FarRef& ref : far_) release_node(ref.node);
  far_.clear();
}

}  // namespace allarm::sim
