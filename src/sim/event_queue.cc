#include "sim/event_queue.hh"

#include <algorithm>

namespace allarm::sim {

void EventQueue::drain_far_slow(Lane& lane) {
  const Tick horizon = lane.base + kNearBuckets;
  while (!lane.far.empty() && lane.far.front().when < horizon) {
    // Heap pops come out in exact (tick, seq) order, and a tick is only
    // ever migrated before any in-window insert can target it, so bucket
    // FIFO order remains global (tick, seq) order.  The node itself never
    // moves -- only its reference leaves the heap.
    std::pop_heap(lane.far.begin(), lane.far.end(), Later{});
    link_near(lane, lane.far.back().node);
    lane.far.pop_back();
  }
}

std::uint64_t EventQueue::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && run_one()) ++n;
  return n;
}

bool EventQueue::peek_lane(const Lane& lane, Tick& when,
                           std::uint64_t& seq) const {
  // Pure read: never advances `base` (see run_until for why that matters).
  if (lane.near_count > 0) {
    // Bucket ticks all lie below base + kNearBuckets <= any far tick,
    // so the earliest near event is the global minimum.
    const std::size_t b = scan_from(lane, lane.base & kNearMask);
    const std::uint32_t head = lane.buckets[b].head;
    when = lane.nodes[head].when;
    seq = lane.node_seq.empty() ? 0 : lane.node_seq[head];
    return true;
  }
  if (!lane.far.empty()) {
    when = lane.far.front().when;
    seq = lane.far.front().seq;
    return true;
  }
  return false;
}

int EventQueue::peek_next(Tick& when, std::uint64_t& seq) {
  // Serial: read the lane directly.  The head cache is maintained (pop
  // invalidation, insert improvement) only under sharding; trusting it here
  // would read a stale head after a plain schedule_at/pop_lane.
  if (num_lanes_ == 1) {
    return peek_lane(lane0_, when, seq) ? 0 : -1;
  }
  int best = -1;
  for (std::uint32_t i = 0; i < num_lanes_; ++i) {
    Lane& l = lane(i);
    if (!refresh_head(l)) continue;
    if (best < 0 || l.head_when < when ||
        (l.head_when == when && l.head_seq < seq)) {
      best = static_cast<int>(i);
      when = l.head_when;
      seq = l.head_seq;
    }
  }
  return best;
}

void EventQueue::run_until(Tick until) {
  // Peek WITHOUT next_bucket(): that would advance a lane's base to the
  // next pending tick even when it lies beyond `until`, and an event
  // scheduled afterwards below that tick would land behind the window base
  // and execute out of order.  A pure read keeps base <= every executed
  // tick.
  while (true) {
    Tick next;
    std::uint64_t seq;
    if (peek_next(next, seq) < 0 || next > until) break;
    run_one();
  }
  if (now_ < until) now_ = until;
}

void EventQueue::run_lane_until(std::uint32_t lane_idx, Tick until) {
  Lane& l = lane(lane_idx);
  while (true) {
    Tick next;
    std::uint64_t seq;
    if (!peek_lane(l, next, seq) || next > until) break;
    pop_lane(l);
  }
}

void EventQueue::inject(std::uint32_t lane_idx, Tick when, std::uint64_t seq,
                        Event&& e) {
  Lane& l = lane(lane_idx);
  const std::uint32_t index = make_node(l, when);
  l.nodes[index].action = std::move(e);
  l.node_seq[index] = seq;
  if (when < l.base + kNearBuckets) {
    link_near_ordered(l, index, seq);
  } else {
    l.far.push_back(FarRef{when, seq, index});
    std::push_heap(l.far.begin(), l.far.end(), Later{});
  }
  note_insert(l, when, seq);
}

void EventQueue::link_near_ordered(Lane& lane, std::uint32_t index,
                                   std::uint64_t seq) {
  Node& node = lane.nodes[index];
  const std::size_t b = node.when & kNearMask;
  Bucket& bucket = lane.buckets[b];
  if (bucket.head == kNil) {
    node.next = kNil;
    bucket.head = bucket.tail = index;
    mark_live(lane, b);
    ++lane.near_count;
    return;
  }
  // A flushed mailbox event may carry a smaller seq than same-tick events
  // already appended; walk to its seq position.  Mailbox batches are tiny
  // relative to the run, so the walk is off the hot path by construction.
  if (seq < lane.node_seq[bucket.head]) {
    node.next = bucket.head;
    bucket.head = index;
  } else {
    std::uint32_t prev = bucket.head;
    while (lane.nodes[prev].next != kNil &&
           lane.node_seq[lane.nodes[prev].next] < seq) {
      prev = lane.nodes[prev].next;
    }
    node.next = lane.nodes[prev].next;
    lane.nodes[prev].next = index;
    if (node.next == kNil) bucket.tail = index;
  }
  ++lane.near_count;
}

void EventQueue::set_sharding(std::uint32_t lanes,
                              std::vector<std::uint16_t> owner) {
  if (pending() != 0 || executed_ != 0) {
    throw std::logic_error("EventQueue: set_sharding on a live queue");
  }
  if (lanes == 0) {
    throw std::logic_error("EventQueue: zero lanes");
  }
  for (const std::uint16_t o : owner) {
    if (o >= lanes) {
      throw std::logic_error("EventQueue: node owner out of range");
    }
  }
  num_lanes_ = lanes;
  owner_ = std::move(owner);
  extra_.clear();
  if (lanes > 1) {
    extra_.resize(lanes - 1);
    // The merge reads seq through the side array; size it for the lanes
    // that exist so far (grows with the arenas in make_node).
    lane0_.node_seq.resize(lane0_.nodes.size());
  }
  current_ = &lane0_;
}

void EventQueue::clear_lane(Lane& lane) {
  if (lane.near_count != 0) {
    for (std::size_t w = 0; w < lane.live0.size(); ++w) {
      std::uint64_t word = lane.live0[w];
      while (word != 0) {
        const std::size_t b = (w << 6) + lowest_set_bit(word);
        word &= word - 1;
        Bucket& bucket = lane.buckets[b];
        for (std::uint32_t i = bucket.head; i != kNil;) {
          const std::uint32_t next = lane.nodes[i].next;
          release_node(lane, i);
          i = next;
        }
        bucket.head = bucket.tail = kNil;
      }
      lane.live0[w] = 0;
    }
    std::fill(lane.live1.begin(), lane.live1.end(), 0);
    lane.live2 = 0;
    lane.near_count = 0;
  }
  for (const FarRef& ref : lane.far) release_node(lane, ref.node);
  lane.far.clear();
  lane.head_valid = false;
}

void EventQueue::clear() {
  clear_lane(lane0_);
  for (Lane& lane : extra_) clear_lane(lane);
}

}  // namespace allarm::sim
