// Discrete-event simulation kernel.
//
// A single EventQueue drives the whole system.  Events are closures ordered
// by (tick, insertion sequence); same-tick events execute in FIFO order so
// every run is deterministic.
//
// Structure: a two-level calendar queue.  Events within the near horizon
// (kNearBuckets ticks of the queue's window base) land in per-tick FIFO
// buckets -- intrusive lists over a pooled node arena, O(1) to push and
// pop, with a three-level occupancy bitmap locating the next non-empty
// tick in a handful of word scans.  Events beyond the horizon overflow
// into a binary min-heap on (tick, seq) and migrate into the buckets as
// the window advances.  Because the window only moves forward and far
// events migrate the moment the window first covers their tick, bucket
// order is always exact (tick, seq) order: the rewrite is bit-for-bit
// equivalent to the former std::priority_queue kernel.
//
// Steady state performs no heap allocations: events store their callables
// inline (sim::Event), the node arena and heap recycle their capacity, and
// the bitmaps and bucket table are fixed-size.  The schedule/execute path
// is defined inline below so call sites across the simulator compile it
// down without crossing a translation-unit boundary.
//
// --- Lane sharding (parallel single-simulation, src/parallel/) -------------
//
// The calendar above is one LANE.  set_sharding() partitions the queue into
// S independent lanes (each with its own buckets, bitmap, arena and far
// heap) plus a node -> lane ownership map; schedule_at_for(node, ...) files
// an event under the lane owning that node, plain schedule_at() files under
// the lane of the event currently executing.  One GLOBAL insertion-sequence
// counter spans all lanes, and the sharded run_one() always pops the
// globally minimal (tick, seq) across lane heads — so sharded execution
// order is IDENTICAL to the single-lane order at any lane count, which is
// what makes the barrier parallel mode byte-exact against the serial
// oracle (docs/PARALLEL.md has the full argument).  The serial path never
// touches any of this: with sharding off, `current_` is pinned to the
// inline lane and the hot path compiles to the same code as before.
//
// The lax mode hooks: a cross-lane hook diverts cross-lane schedules into
// engine-owned mailboxes, run_lane_until() drains one lane up to a window
// edge, and inject() delivers mailboxed events (seq-ordered insert, since a
// flushed event may carry a smaller seq than same-tick events already in
// the bucket).
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/types.hh"
#include "sim/event.hh"

namespace allarm::sim {

/// Central event queue and simulation clock.
class EventQueue {
 public:
  using Action = Event;

  /// Current simulated time.
  Tick now() const { return now_; }

  /// Number of events executed so far (global across lanes).
  std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending (all lanes).
  std::size_t pending() const {
    std::size_t n = lane0_.near_count + lane0_.far.size();
    for (const Lane& lane : extra_) n += lane.near_count + lane.far.size();
    return n;
  }

  /// Number of pending events currently in the far-horizon overflow heaps
  /// (introspection for tests and the throughput bench).
  std::size_t far_pending() const {
    std::size_t n = lane0_.far.size();
    for (const Lane& lane : extra_) n += lane.far.size();
    return n;
  }

  /// Schedules `action` to run at absolute time `when` (>= now()).  The
  /// callable is constructed directly inside the queue's node arena — a
  /// lambda at the call site reaches its execution slot with zero
  /// intermediate Event moves.  Sharded: files under the lane of the event
  /// currently executing (correct for self-scheduling components; anything
  /// that targets another node's component uses schedule_at_for).
  template <typename F>
  void schedule_at(Tick when, F&& action);

  /// Schedules `action` to run `delay` ticks from now.
  template <typename F>
  void schedule_in(Tick delay, F&& action) {
    schedule_at(now_ + delay, std::forward<F>(action));
  }

  /// Executes the next event; returns false when the queue is empty.
  /// Sharded: pops the globally minimal (tick, seq) across all lane heads.
  bool run_one();

  /// Runs until the queue drains or `max_events` have executed.
  /// Returns the number of events executed by this call.
  std::uint64_t run(std::uint64_t max_events = ~0ull);

  /// Runs until the queue drains or simulated time exceeds `until`.
  /// Events scheduled at exactly `until` are executed.
  void run_until(Tick until);

  /// Discards all pending events (used between experiment repetitions).
  void clear();

  // --- Lane sharding (src/parallel/) ---------------------------------------

  /// Cross-lane schedule observability: every schedule_at_for issued WHILE
  /// AN EVENT IS EXECUTING whose target lane differs from the executing
  /// lane counts here, with the minimum observed (when - now) delta — the
  /// empirical lookahead the partition actually exhibits (see
  /// parallel::lookahead for the modelled bound).  Set-up schedules placed
  /// before the run starts are delivered cross-lane too but are not
  /// counted: nothing has executed yet, so no lookahead constrains them.
  struct CrossLaneStats {
    std::uint64_t events = 0;
    Tick min_delta = kTickNever;
    /// Lax only: schedules whose tick fell behind the lane clock after a
    /// window warp and were clamped to now() instead of rejected.
    std::uint64_t lax_clamps = 0;
  };

  /// Diverts cross-lane schedules into engine-owned mailboxes (lax mode).
  /// Receives (ctx, src_lane, dst_lane, when, seq, event); the engine
  /// re-delivers via inject().  Null restores direct delivery (barrier).
  using CrossLaneHook = void (*)(void*, std::uint32_t, std::uint32_t, Tick,
                                 std::uint64_t, Event&&);

  /// Splits the queue into `lanes` independent calendars with
  /// `owner_of_node[n]` naming the lane that owns node n's events.  Must be
  /// called while the queue is empty and before any event has executed.
  void set_sharding(std::uint32_t lanes, std::vector<std::uint16_t> owner);

  bool sharded() const { return num_lanes_ > 1; }
  std::uint32_t lanes() const { return num_lanes_; }
  std::uint32_t lane_of(NodeId node) const {
    return owner_.empty() ? 0 : owner_[node];
  }

  /// Schedules `action` under the lane owning `target`'s components.
  /// Serial mode: identical to schedule_at (same seq assignment, same
  /// order).  Sharded: a cross-lane schedule either inserts directly into
  /// the target lane (barrier — still exact global (tick, seq) order, see
  /// run_one) or is diverted to the cross-lane hook (lax).
  template <typename F>
  void schedule_at_for(NodeId target, Tick when, F&& action);

  void set_cross_lane_hook(CrossLaneHook hook, void* ctx) {
    hook_ = hook;
    hook_ctx_ = ctx;
  }

  /// Lax mode only: a schedule into the past (possible after a mailboxed
  /// event was warped past its tick) clamps to now() instead of throwing.
  /// Counted in cross_lane_stats().lax_clamps.
  void set_lax_clamp(bool on) { lax_clamp_ = on; }

  const CrossLaneStats& cross_lane_stats() const { return cross_stats_; }

  /// Peeks the globally minimal pending (tick, seq) without advancing any
  /// lane window.  Returns the owning lane, or -1 when every lane is empty.
  int peek_next(Tick& when, std::uint64_t& seq);

  /// Executes events of one lane while their tick is <= `until` (lax
  /// windows).  The global clock tracks each executed event's tick, so it
  /// may move backwards when the caller switches lanes — bounded by the
  /// window width, which is the lax mode's accuracy knob.
  void run_lane_until(std::uint32_t lane, Tick until);

  /// Delivers a mailboxed event into `lane` carrying its original global
  /// seq.  Unlike schedule_*, the insert is seq-ordered within its tick
  /// bucket (a flushed event may predate same-tick events already
  /// present) and skips the past-check (the engine warps ticks to the
  /// window edge before injecting).  Injects into distinct lanes touch
  /// disjoint state and may run concurrently (the engine's flush phase).
  void inject(std::uint32_t lane, Tick when, std::uint64_t seq, Event&& e);

 private:
  /// Near-horizon width in ticks (= bucket count).  128 Ki ticks = 131 ns:
  /// wide enough that cache, mesh and DRAM hops (1-60 ns) AND the 100 ns
  /// core timeshare retry schedule into buckets; long think-time and
  /// migration timers (and deeply queued DRAM bursts) overflow into the
  /// far heap, whose entries are 16-byte references into the same node
  /// arena.  Do not shrink below the 100 ns retry: at 2^16 the
  /// migration profile cycles every retry through the far heap
  /// (drain_far_slow on every ~5th event) and loses ~10% throughput even
  /// though the smaller bucket table helps the other profiles.  Window
  /// width never changes event ORDER — (tick, seq) order is exact at any
  /// size — so this constant is a pure performance knob.
  static constexpr std::size_t kNearBuckets = std::size_t{1} << 17;
  static constexpr std::size_t kNearMask = kNearBuckets - 1;
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};

  /// One pending event plus its FIFO link (near buckets) -- pooled.  Far
  /// events live in the same arena; the heap orders lightweight references
  /// so sifting never moves Event storage.  The insertion seq is NOT held
  /// here (the node is exactly one cache line and bucket FIFO order
  /// already encodes it); sharded lanes keep a parallel side array.
  struct Node {
    Tick when = 0;
    std::uint32_t next = kNil;
    Event action;
  };
  static_assert(sizeof(void*) != 8 || sizeof(Node) == 64,
                "arena node should be exactly one cache line on LP64");
  /// A far-heap reference: ordering key plus the arena slot.
  struct FarRef {
    Tick when;
    std::uint64_t seq;
    std::uint32_t node;
  };
  /// Min-heap comparator: std::push_heap keeps the *largest* on top, so
  /// "later" ordering puts the earliest (tick, seq) at far_[0].
  struct Later {
    bool operator()(const FarRef& a, const FarRef& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  /// Head/tail of one per-tick FIFO (indices into nodes_).
  struct Bucket {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  /// One independent calendar: the entire former queue state.  Serial runs
  /// use the inline lane0_ only; set_sharding adds lanes.
  struct Lane {
    std::vector<Bucket> buckets = std::vector<Bucket>(kNearBuckets);
    // Three-level occupancy bitmap over the bucket table (64-ary tree): bit
    // b of live0 marks bucket b non-empty, bit w of live1 marks word w of
    // live0 non-zero, and so on.  Locating the next non-empty tick is three
    // word scans instead of a walk across (possibly tens of thousands of)
    // empty per-tick buckets.
    std::vector<std::uint64_t> live0 =
        std::vector<std::uint64_t>(kNearBuckets / 64, 0);
    std::vector<std::uint64_t> live1 =
        std::vector<std::uint64_t>(kNearBuckets / (64 * 64), 0);
    std::uint64_t live2 = 0;
    std::vector<Node> nodes;          ///< Arena backing all pending events.
    /// Insertion seq per arena node, maintained only when sharded (the
    /// cross-lane head merge needs the seq of a bucket head; serial lanes
    /// never pay the extra line).
    std::vector<std::uint64_t> node_seq;
    std::uint32_t free_head = kNil;   ///< Recycled-node list head.
    std::vector<FarRef> far;          ///< Beyond-horizon overflow (min-heap).
    std::size_t near_count = 0;       ///< Events currently in buckets.
    Tick base = 0;                    ///< Window start; buckets cover
                                      ///< [base, base + kNearBuckets).
    // Cached head (when, seq) for the sharded merge; recomputed lazily
    // after pops, improved eagerly by inserts.
    Tick head_when = 0;
    std::uint64_t head_seq = 0;
    bool head_valid = false;          ///< Cache reflects current contents.
    bool head_any = false;            ///< Lane non-empty (when head_valid).
  };

  static unsigned lowest_set_bit(std::uint64_t word) {
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<unsigned>(__builtin_ctzll(word));
#else
    unsigned bit = 0;
    while ((word & 1u) == 0) {
      word >>= 1;
      ++bit;
    }
    return bit;
#endif
  }

  Lane& lane(std::uint32_t i) { return i == 0 ? lane0_ : extra_[i - 1]; }
  const Lane& lane(std::uint32_t i) const {
    return i == 0 ? lane0_ : extra_[i - 1];
  }
  std::uint32_t lane_index(const Lane& l) const {
    return &l == &lane0_
               ? 0
               : static_cast<std::uint32_t>(&l - extra_.data()) + 1;
  }

  std::uint32_t make_node(Lane& lane, Tick when);
  void release_node(Lane& lane, std::uint32_t index);
  /// Appends arena node `index` to its tick's bucket FIFO.
  void link_near(Lane& lane, std::uint32_t index);
  /// Seq-ordered insert into the tick bucket (inject path only).
  void link_near_ordered(Lane& lane, std::uint32_t index, std::uint64_t seq);
  void mark_live(Lane& lane, std::size_t bucket);
  void mark_empty(Lane& lane, std::size_t bucket);
  /// Migrates far-heap entries that the window now covers into buckets.
  /// Must run every time `base` advances; the common no-far case is one
  /// inline branch.
  void drain_far(Lane& lane) {
    if (!lane.far.empty() && lane.far.front().when < lane.base + kNearBuckets) {
      drain_far_slow(lane);
    }
  }
  void drain_far_slow(Lane& lane);
  /// Positions `base` at the next pending tick (migrating far events) and
  /// returns its bucket, or nullptr when the lane is empty.
  Bucket* next_bucket(Lane& lane);
  /// Pops and executes the head event of `lane`; returns false when empty.
  bool pop_lane(Lane& lane);
  /// Head (when, seq) of `lane` WITHOUT advancing its window (pure read,
  /// like run_until's peek).  False when the lane is empty.
  bool peek_lane(const Lane& lane, Tick& when, std::uint64_t& seq) const;
  /// Refreshes the lane's cached head if stale; returns head_any.
  bool refresh_head(Lane& lane);
  /// Improves the cached head after inserting (when, seq) into `lane`.
  void note_insert(Lane& lane, Tick when, std::uint64_t seq) {
    if (!lane.head_valid) return;
    if (!lane.head_any || when < lane.head_when ||
        (when == lane.head_when && seq < lane.head_seq)) {
      lane.head_when = when;
      lane.head_seq = seq;
      lane.head_any = true;
    }
  }
  /// Inserts an already-built node into near buckets or the far heap.
  void file_node(Lane& lane, std::uint32_t index, Tick when,
                 std::uint64_t seq);
  /// Index of the first non-empty bucket, in ring order from `start`.
  /// Requires near_count > 0.
  std::size_t scan_from(const Lane& lane, std::size_t start) const;
  /// First non-empty bucket at index >= `start`, or kNearBuckets when the
  /// remainder of the table is empty.
  std::size_t scan_linear(const Lane& lane, std::size_t start) const;
  void clear_lane(Lane& lane);

  Lane lane0_;                       ///< The serial calendar; lane 0.
  std::vector<Lane> extra_;          ///< Lanes 1..S-1 (sharded mode only).
  std::uint32_t num_lanes_ = 1;
  std::vector<std::uint16_t> owner_; ///< Node -> lane (empty when serial).
  Lane* current_ = &lane0_;          ///< Lane of the executing event.
  CrossLaneHook hook_ = nullptr;     ///< Lax-mode mailbox diversion.
  void* hook_ctx_ = nullptr;
  bool lax_clamp_ = false;           ///< Clamp past schedules (lax mode).
  bool executing_ = false;           ///< Inside an event's action (sharded).
  CrossLaneStats cross_stats_;

  Tick now_ = 0;
  std::uint64_t seq_ = 0;            ///< Global across lanes.
  std::uint64_t executed_ = 0;       ///< Global across lanes.
};

// --- Inline hot path ---------------------------------------------------------

inline std::uint32_t EventQueue::make_node(Lane& lane, Tick when) {
  std::uint32_t index;
  if (lane.free_head != kNil) {
    index = lane.free_head;
    lane.free_head = lane.nodes[index].next;
  } else {
    lane.nodes.emplace_back();
    index = static_cast<std::uint32_t>(lane.nodes.size() - 1);
    if (num_lanes_ > 1) lane.node_seq.resize(lane.nodes.size());
  }
  lane.nodes[index].when = when;
  return index;
}

inline void EventQueue::release_node(Lane& lane, std::uint32_t index) {
  lane.nodes[index].action = Event{};
  lane.nodes[index].next = lane.free_head;
  lane.free_head = index;
}

inline void EventQueue::mark_live(Lane& lane, std::size_t bucket) {
  lane.live0[bucket >> 6] |= std::uint64_t{1} << (bucket & 63);
  const std::size_t w0 = bucket >> 6;
  lane.live1[w0 >> 6] |= std::uint64_t{1} << (w0 & 63);
  lane.live2 |= std::uint64_t{1} << (w0 >> 6);
}

inline void EventQueue::mark_empty(Lane& lane, std::size_t bucket) {
  const std::size_t w0 = bucket >> 6;
  lane.live0[w0] &= ~(std::uint64_t{1} << (bucket & 63));
  if (lane.live0[w0] == 0) {
    lane.live1[w0 >> 6] &= ~(std::uint64_t{1} << (w0 & 63));
    if (lane.live1[w0 >> 6] == 0) {
      lane.live2 &= ~(std::uint64_t{1} << (w0 >> 6));
    }
  }
}

inline void EventQueue::link_near(Lane& lane, std::uint32_t index) {
  Node& node = lane.nodes[index];
  node.next = kNil;
  const std::size_t b = node.when & kNearMask;
  Bucket& bucket = lane.buckets[b];
  if (bucket.head == kNil) {
    bucket.head = bucket.tail = index;
    mark_live(lane, b);
  } else {
    lane.nodes[bucket.tail].next = index;
    bucket.tail = index;
  }
  ++lane.near_count;
}

inline void EventQueue::file_node(Lane& lane, std::uint32_t index, Tick when,
                                  std::uint64_t seq) {
  if (num_lanes_ > 1) lane.node_seq[index] = seq;
  if (when < lane.base + kNearBuckets) {
    // FIFO bucket order encodes `seq` implicitly: appends happen in
    // insertion order, and far migration happens before any in-window
    // insert can target the same tick.  This holds per lane even under
    // sharding, because sharded execution is globally (tick, seq) ordered,
    // so inserts still arrive seq-monotonically (inject() is the one
    // exception and uses the ordered variant).
    link_near(lane, index);
  } else {
    lane.far.push_back(FarRef{when, seq, index});
    std::push_heap(lane.far.begin(), lane.far.end(), Later{});
  }
  if (num_lanes_ > 1) note_insert(lane, when, seq);
}

template <typename F>
inline void EventQueue::schedule_at(Tick when, F&& action) {
  if (when < now_) {
    if (!lax_clamp_) {
      throw std::logic_error("EventQueue: scheduling into the past");
    }
    when = now_;
    ++cross_stats_.lax_clamps;
  }
  const std::uint64_t seq = seq_++;
  Lane& lane = *current_;
  const std::uint32_t index = make_node(lane, when);
  if constexpr (std::is_same_v<std::decay_t<F>, Event>) {
    lane.nodes[index].action = std::move(action);
  } else {
    lane.nodes[index].action.emplace(std::forward<F>(action));
  }
  file_node(lane, index, when, seq);
}

template <typename F>
inline void EventQueue::schedule_at_for(NodeId target, Tick when, F&& action) {
  if (num_lanes_ == 1) {
    schedule_at(when, std::forward<F>(action));
    return;
  }
  if (when < now_) {
    if (!lax_clamp_) {
      throw std::logic_error("EventQueue: scheduling into the past");
    }
    when = now_;
    ++cross_stats_.lax_clamps;
  }
  Lane& dst = lane(owner_[target]);
  if (&dst != current_) {
    if (executing_) {
      ++cross_stats_.events;
      const Tick delta = when - now_;
      if (delta < cross_stats_.min_delta) cross_stats_.min_delta = delta;
    }
    if (hook_ != nullptr) {
      const std::uint64_t seq = seq_++;
      hook_(hook_ctx_, lane_index(*current_), owner_[target], when, seq,
            Event(std::forward<F>(action)));
      return;
    }
  }
  const std::uint64_t seq = seq_++;
  const std::uint32_t index = make_node(dst, when);
  if constexpr (std::is_same_v<std::decay_t<F>, Event>) {
    dst.nodes[index].action = std::move(action);
  } else {
    dst.nodes[index].action.emplace(std::forward<F>(action));
  }
  file_node(dst, index, when, seq);
}

inline std::size_t EventQueue::scan_linear(const Lane& lane,
                                           std::size_t start) const {
  // Level 0: the word containing `start`, bits at or above it.
  std::size_t w0 = start >> 6;
  const std::uint64_t head =
      lane.live0[w0] & (~std::uint64_t{0} << (start & 63));
  if (head != 0) return (w0 << 6) + lowest_set_bit(head);
  // Level 1: next non-zero level-0 word strictly above w0.
  std::size_t w1 = w0 >> 6;
  const std::uint64_t mid =
      (w0 & 63) == 63
          ? 0
          : lane.live1[w1] & (~std::uint64_t{0} << ((w0 & 63) + 1));
  if (mid != 0) {
    w0 = (w1 << 6) + lowest_set_bit(mid);
    return (w0 << 6) + lowest_set_bit(lane.live0[w0]);
  }
  // Level 2: next non-zero level-1 word strictly above w1.
  const std::uint64_t top =
      (w1 & 63) == 63 ? 0 : lane.live2 & (~std::uint64_t{0} << (w1 + 1));
  if (top != 0) {
    w1 = lowest_set_bit(top);
    w0 = (w1 << 6) + lowest_set_bit(lane.live1[w1]);
    return (w0 << 6) + lowest_set_bit(lane.live0[w0]);
  }
  return kNearBuckets;
}

inline std::size_t EventQueue::scan_from(const Lane& lane,
                                         std::size_t start) const {
  // Ring order: [start, end) first, wrapping to [0, start).
  const std::size_t above = scan_linear(lane, start);
  if (above != kNearBuckets) return above;
  const std::size_t below = scan_linear(lane, 0);
  if (below != kNearBuckets) return below;
  throw std::logic_error("EventQueue: bitmap empty with near events pending");
}

inline EventQueue::Bucket* EventQueue::next_bucket(Lane& lane) {
  if (lane.near_count == 0) {
    if (lane.far.empty()) return nullptr;
    lane.base = lane.far.front().when;
    drain_far(lane);
  } else {
    const std::size_t b = scan_from(lane, lane.base & kNearMask);
    lane.base = lane.nodes[lane.buckets[b].head].when;
    // The window moved forward: pull in far events it now covers.  They
    // all land strictly after `base` (they were beyond the old horizon),
    // so the minimum just found is unaffected.
    drain_far(lane);
  }
  return &lane.buckets[lane.base & kNearMask];
}

inline bool EventQueue::pop_lane(Lane& lane) {
  Bucket* bucket = next_bucket(lane);
  if (bucket == nullptr) return false;

  // Detach the head node *before* invoking: the action may schedule new
  // events (growing the arena or appending to this very bucket).
  const std::uint32_t index = bucket->head;
  Node& node = lane.nodes[index];
  now_ = node.when;
  Event action = std::move(node.action);
  bucket->head = node.next;
  if (bucket->head == kNil) {
    bucket->tail = kNil;
    mark_empty(lane, lane.base & kNearMask);
  }
  --lane.near_count;
  release_node(lane, index);
  ++executed_;
  if (num_lanes_ > 1) {
    lane.head_valid = false;
    current_ = &lane;
    executing_ = true;
    action();
    executing_ = false;
    return true;
  }

  action();
  return true;
}

inline bool EventQueue::run_one() {
  if (num_lanes_ == 1) return pop_lane(lane0_);
  // Sharded: pop the globally minimal (tick, seq).  Ties cannot happen —
  // seq is globally unique — so the chosen lane is unambiguous and the
  // execution order equals the single-lane order exactly.
  Lane* best = nullptr;
  Tick best_when = 0;
  std::uint64_t best_seq = 0;
  for (std::uint32_t i = 0; i < num_lanes_; ++i) {
    Lane& l = lane(i);
    if (!refresh_head(l)) continue;
    if (best == nullptr || l.head_when < best_when ||
        (l.head_when == best_when && l.head_seq < best_seq)) {
      best = &l;
      best_when = l.head_when;
      best_seq = l.head_seq;
    }
  }
  if (best == nullptr) return false;
  return pop_lane(*best);
}

inline bool EventQueue::refresh_head(Lane& l) {
  if (!l.head_valid) {
    l.head_any = peek_lane(l, l.head_when, l.head_seq);
    l.head_valid = true;
  }
  return l.head_any;
}

}  // namespace allarm::sim
