// Discrete-event simulation kernel.
//
// A single EventQueue drives the whole system.  Events are closures ordered
// by (tick, insertion sequence); same-tick events execute in FIFO order so
// every run is deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

#include "common/types.hh"

namespace allarm::sim {

/// Central event queue and simulation clock.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Current simulated time.
  Tick now() const { return now_; }

  /// Number of events executed so far.
  std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending.
  std::size_t pending() const { return heap_.size(); }

  /// Schedules `action` to run at absolute time `when` (>= now()).
  void schedule_at(Tick when, Action action);

  /// Schedules `action` to run `delay` ticks from now.
  void schedule_in(Tick delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Executes the next event; returns false when the queue is empty.
  bool run_one();

  /// Runs until the queue drains or `max_events` have executed.
  /// Returns the number of events executed by this call.
  std::uint64_t run(std::uint64_t max_events = ~0ull);

  /// Runs until the queue drains or simulated time exceeds `until`.
  /// Events scheduled at exactly `until` are executed.
  void run_until(Tick until);

  /// Discards all pending events (used between experiment repetitions).
  void clear();

 private:
  struct Entry {
    Tick when;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  Tick now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace allarm::sim
