// Discrete-event simulation kernel.
//
// A single EventQueue drives the whole system.  Events are closures ordered
// by (tick, insertion sequence); same-tick events execute in FIFO order so
// every run is deterministic.
//
// Structure: a two-level calendar queue.  Events within the near horizon
// (kNearBuckets ticks of the queue's window base) land in per-tick FIFO
// buckets -- intrusive lists over a pooled node arena, O(1) to push and
// pop, with a three-level occupancy bitmap locating the next non-empty
// tick in a handful of word scans.  Events beyond the horizon overflow
// into a binary min-heap on (tick, seq) and migrate into the buckets as
// the window advances.  Because the window only moves forward and far
// events migrate the moment the window first covers their tick, bucket
// order is always exact (tick, seq) order: the rewrite is bit-for-bit
// equivalent to the former std::priority_queue kernel.
//
// Steady state performs no heap allocations: events store their callables
// inline (sim::Event), the node arena and heap recycle their capacity, and
// the bitmaps and bucket table are fixed-size.  The schedule/execute path
// is defined inline below so call sites across the simulator compile it
// down without crossing a translation-unit boundary.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/types.hh"
#include "sim/event.hh"

namespace allarm::sim {

/// Central event queue and simulation clock.
class EventQueue {
 public:
  using Action = Event;

  /// Current simulated time.
  Tick now() const { return now_; }

  /// Number of events executed so far.
  std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending.
  std::size_t pending() const { return near_count_ + far_.size(); }

  /// Number of pending events currently in the far-horizon overflow heap
  /// (introspection for tests and the throughput bench).
  std::size_t far_pending() const { return far_.size(); }

  /// Schedules `action` to run at absolute time `when` (>= now()).  The
  /// callable is constructed directly inside the queue's node arena — a
  /// lambda at the call site reaches its execution slot with zero
  /// intermediate Event moves.
  template <typename F>
  void schedule_at(Tick when, F&& action);

  /// Schedules `action` to run `delay` ticks from now.
  template <typename F>
  void schedule_in(Tick delay, F&& action) {
    schedule_at(now_ + delay, std::forward<F>(action));
  }

  /// Executes the next event; returns false when the queue is empty.
  bool run_one();

  /// Runs until the queue drains or `max_events` have executed.
  /// Returns the number of events executed by this call.
  std::uint64_t run(std::uint64_t max_events = ~0ull);

  /// Runs until the queue drains or simulated time exceeds `until`.
  /// Events scheduled at exactly `until` are executed.
  void run_until(Tick until);

  /// Discards all pending events (used between experiment repetitions).
  void clear();

 private:
  /// Near-horizon width in ticks (= bucket count).  128 Ki ticks = 131 ns:
  /// wide enough that cache, mesh and DRAM hops (1-60 ns) AND the 100 ns
  /// core timeshare retry schedule into buckets; long think-time and
  /// migration timers (and deeply queued DRAM bursts) overflow into the
  /// far heap, whose entries are 16-byte references into the same node
  /// arena.  Do not shrink below the 100 ns retry: at 2^16 the
  /// migration profile cycles every retry through the far heap
  /// (drain_far_slow on every ~5th event) and loses ~10% throughput even
  /// though the smaller bucket table helps the other profiles.  Window
  /// width never changes event ORDER — (tick, seq) order is exact at any
  /// size — so this constant is a pure performance knob.
  static constexpr std::size_t kNearBuckets = std::size_t{1} << 17;
  static constexpr std::size_t kNearMask = kNearBuckets - 1;
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};

  /// One pending event plus its FIFO link (near buckets) -- pooled.  Far
  /// events live in the same arena; the heap orders lightweight references
  /// so sifting never moves Event storage.
  struct Node {
    Tick when = 0;
    std::uint32_t next = kNil;
    Event action;
  };
  static_assert(sizeof(void*) != 8 || sizeof(Node) == 64,
                "arena node should be exactly one cache line on LP64");
  /// A far-heap reference: ordering key plus the arena slot.
  struct FarRef {
    Tick when;
    std::uint64_t seq;
    std::uint32_t node;
  };
  /// Min-heap comparator: std::push_heap keeps the *largest* on top, so
  /// "later" ordering puts the earliest (tick, seq) at far_[0].
  struct Later {
    bool operator()(const FarRef& a, const FarRef& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  /// Head/tail of one per-tick FIFO (indices into nodes_).
  struct Bucket {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  static unsigned lowest_set_bit(std::uint64_t word) {
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<unsigned>(__builtin_ctzll(word));
#else
    unsigned bit = 0;
    while ((word & 1u) == 0) {
      word >>= 1;
      ++bit;
    }
    return bit;
#endif
  }

  std::uint32_t make_node(Tick when);
  void release_node(std::uint32_t index);
  /// Appends arena node `index` to its tick's bucket FIFO.
  void link_near(std::uint32_t index);
  void mark_live(std::size_t bucket);
  void mark_empty(std::size_t bucket);
  /// Migrates far-heap entries that the window now covers into buckets.
  /// Must run every time `base_` advances; the common no-far case is one
  /// inline branch.
  void drain_far() {
    if (!far_.empty() && far_.front().when < base_ + kNearBuckets) {
      drain_far_slow();
    }
  }
  void drain_far_slow();
  /// Positions `base_` at the next pending tick (migrating far events) and
  /// returns its bucket, or nullptr when the queue is empty.
  Bucket* next_bucket();
  /// Index of the first non-empty bucket, in ring order from `start`.
  /// Requires near_count_ > 0.
  std::size_t scan_from(std::size_t start) const;
  /// First non-empty bucket at index >= `start`, or kNearBuckets when the
  /// remainder of the table is empty.
  std::size_t scan_linear(std::size_t start) const;

  std::vector<Bucket> buckets_ = std::vector<Bucket>(kNearBuckets);
  // Three-level occupancy bitmap over the bucket table (64-ary tree): bit b
  // of live0_ marks bucket b non-empty, bit w of live1_ marks word w of
  // live0_ non-zero, and so on.  Locating the next non-empty tick is three
  // word scans instead of a walk across (possibly tens of thousands of)
  // empty per-tick buckets.
  std::vector<std::uint64_t> live0_ =
      std::vector<std::uint64_t>(kNearBuckets / 64, 0);
  std::vector<std::uint64_t> live1_ =
      std::vector<std::uint64_t>(kNearBuckets / (64 * 64), 0);
  std::uint64_t live2_ = 0;
  std::vector<Node> nodes_;          ///< Arena backing all pending events.
  std::uint32_t free_head_ = kNil;   ///< Recycled-node list head.
  std::vector<FarRef> far_;          ///< Beyond-horizon overflow (min-heap).
  std::size_t near_count_ = 0;       ///< Events currently in buckets.
  Tick base_ = 0;                    ///< Window start; buckets cover
                                     ///< [base_, base_ + kNearBuckets).
  Tick now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
};

// --- Inline hot path ---------------------------------------------------------

inline std::uint32_t EventQueue::make_node(Tick when) {
  std::uint32_t index;
  if (free_head_ != kNil) {
    index = free_head_;
    free_head_ = nodes_[index].next;
  } else {
    nodes_.emplace_back();
    index = static_cast<std::uint32_t>(nodes_.size() - 1);
  }
  nodes_[index].when = when;
  return index;
}

inline void EventQueue::release_node(std::uint32_t index) {
  nodes_[index].action = Event{};
  nodes_[index].next = free_head_;
  free_head_ = index;
}

inline void EventQueue::mark_live(std::size_t bucket) {
  live0_[bucket >> 6] |= std::uint64_t{1} << (bucket & 63);
  const std::size_t w0 = bucket >> 6;
  live1_[w0 >> 6] |= std::uint64_t{1} << (w0 & 63);
  live2_ |= std::uint64_t{1} << (w0 >> 6);
}

inline void EventQueue::mark_empty(std::size_t bucket) {
  const std::size_t w0 = bucket >> 6;
  live0_[w0] &= ~(std::uint64_t{1} << (bucket & 63));
  if (live0_[w0] == 0) {
    live1_[w0 >> 6] &= ~(std::uint64_t{1} << (w0 & 63));
    if (live1_[w0 >> 6] == 0) {
      live2_ &= ~(std::uint64_t{1} << (w0 >> 6));
    }
  }
}

inline void EventQueue::link_near(std::uint32_t index) {
  Node& node = nodes_[index];
  node.next = kNil;
  const std::size_t b = node.when & kNearMask;
  Bucket& bucket = buckets_[b];
  if (bucket.head == kNil) {
    bucket.head = bucket.tail = index;
    mark_live(b);
  } else {
    nodes_[bucket.tail].next = index;
    bucket.tail = index;
  }
  ++near_count_;
}

template <typename F>
inline void EventQueue::schedule_at(Tick when, F&& action) {
  if (when < now_) {
    throw std::logic_error("EventQueue: scheduling into the past");
  }
  const std::uint64_t seq = seq_++;
  const std::uint32_t index = make_node(when);
  if constexpr (std::is_same_v<std::decay_t<F>, Event>) {
    nodes_[index].action = std::move(action);
  } else {
    nodes_[index].action.emplace(std::forward<F>(action));
  }
  if (when < base_ + kNearBuckets) {
    // FIFO bucket order encodes `seq` implicitly: appends happen in
    // insertion order, and far migration (below) happens before any
    // in-window insert can target the same tick.
    link_near(index);
  } else {
    far_.push_back(FarRef{when, seq, index});
    std::push_heap(far_.begin(), far_.end(), Later{});
  }
}

inline std::size_t EventQueue::scan_linear(std::size_t start) const {
  // Level 0: the word containing `start`, bits at or above it.
  std::size_t w0 = start >> 6;
  const std::uint64_t head = live0_[w0] & (~std::uint64_t{0} << (start & 63));
  if (head != 0) return (w0 << 6) + lowest_set_bit(head);
  // Level 1: next non-zero level-0 word strictly above w0.
  std::size_t w1 = w0 >> 6;
  const std::uint64_t mid =
      (w0 & 63) == 63 ? 0
                      : live1_[w1] & (~std::uint64_t{0} << ((w0 & 63) + 1));
  if (mid != 0) {
    w0 = (w1 << 6) + lowest_set_bit(mid);
    return (w0 << 6) + lowest_set_bit(live0_[w0]);
  }
  // Level 2: next non-zero level-1 word strictly above w1.
  const std::uint64_t top =
      (w1 & 63) == 63 ? 0 : live2_ & (~std::uint64_t{0} << (w1 + 1));
  if (top != 0) {
    w1 = lowest_set_bit(top);
    w0 = (w1 << 6) + lowest_set_bit(live1_[w1]);
    return (w0 << 6) + lowest_set_bit(live0_[w0]);
  }
  return kNearBuckets;
}

inline std::size_t EventQueue::scan_from(std::size_t start) const {
  // Ring order: [start, end) first, wrapping to [0, start).
  const std::size_t above = scan_linear(start);
  if (above != kNearBuckets) return above;
  const std::size_t below = scan_linear(0);
  if (below != kNearBuckets) return below;
  throw std::logic_error("EventQueue: bitmap empty with near events pending");
}

inline EventQueue::Bucket* EventQueue::next_bucket() {
  if (near_count_ == 0) {
    if (far_.empty()) return nullptr;
    base_ = far_.front().when;
    drain_far();
  } else {
    const std::size_t b = scan_from(base_ & kNearMask);
    base_ = nodes_[buckets_[b].head].when;
    // The window moved forward: pull in far events it now covers.  They
    // all land strictly after `base_` (they were beyond the old horizon),
    // so the minimum just found is unaffected.
    drain_far();
  }
  return &buckets_[base_ & kNearMask];
}

inline bool EventQueue::run_one() {
  Bucket* bucket = next_bucket();
  if (bucket == nullptr) return false;

  // Detach the head node *before* invoking: the action may schedule new
  // events (growing the arena or appending to this very bucket).
  const std::uint32_t index = bucket->head;
  Node& node = nodes_[index];
  now_ = node.when;
  Event action = std::move(node.action);
  bucket->head = node.next;
  if (bucket->head == kNil) {
    bucket->tail = kNil;
    mark_empty(base_ & kNearMask);
  }
  --near_count_;
  release_node(index);
  ++executed_;

  action();
  return true;
}

}  // namespace allarm::sim
