// Inline-storage event callable for the discrete-event kernel.
//
// Every coherence hop schedules a small closure (a captured `this` plus a
// few words of transaction state).  Wrapping those in std::function costs a
// heap allocation per event on the simulator's hottest path; Event instead
// stores the callable inline in a fixed small buffer and only falls back to
// the heap for oversized callables.  The fallback is counted so tests (and
// the throughput bench) can assert that the closures the simulator actually
// schedules never allocate.
//
// Move-only, like the events it carries: an event executes exactly once.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace allarm::sim {

/// A move-only, small-buffer-optimized `void()` callable.
class Event {
 public:
  /// Inline capture budget.  Sized so the common coherence closures -- a
  /// `this` pointer plus pooled-transaction-state pointer, or `this` plus a
  /// by-value Request and a word of flags -- fit without touching the heap,
  /// while one event-queue arena node (tick + link + Event) is exactly one
  /// 64-byte cache line.
  static constexpr std::size_t kInlineBytes = 40;

  /// Inline storage alignment.  Word alignment keeps sizeof(Event) at 48
  /// (a max_align_t buffer would pad it to 64 and push the arena node
  /// across two cache lines); over-aligned callables take the counted heap
  /// fallback.
  static constexpr std::size_t kInlineAlign = alignof(void*);

  Event() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Event> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Event(F&& fn) {  // NOLINT: implicit by design (mirrors std::function).
    emplace(std::forward<F>(fn));
  }

  /// Replaces the held callable, constructing the new one directly in the
  /// inline buffer.  The event kernel uses this to build callables in
  /// place inside arena nodes — no intermediate Event, no relocation.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Event> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void emplace(F&& fn) {
    reset();
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &heap_ops<Fn>;
      heap_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  Event(Event&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      relocate_from(other);
    }
  }

  Event& operator=(Event&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        relocate_from(other);
      }
    }
    return *this;
  }

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  ~Event() { reset(); }

  /// True when a callable is held.
  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Invokes the callable (which must be present).
  void operator()() { ops_->invoke(storage_); }

  /// Number of Events constructed so far whose callable did not fit the
  /// inline buffer (process-wide; the allocation-free tests pin this).
  static std::uint64_t heap_fallbacks() {
    return heap_fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-constructs the callable into `dst` and destroys it at `src`.
    /// Null when the callable is trivially relocatable: the whole inline
    /// buffer is then moved with a fixed-size memcpy (no indirect call) --
    /// the common case for the {this, state-pointer} captures the
    /// simulator schedules.
    void (*relocate)(void* dst, void* src) noexcept;
    /// Null when destruction is a no-op.
    void (*destroy)(void* self) noexcept;
  };

  template <typename Fn>
  static constexpr bool kTrivialInline =
      std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>;

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* self) { (*std::launder(reinterpret_cast<Fn*>(self)))(); },
      kTrivialInline<Fn>
          ? nullptr
          : +[](void* dst, void* src) noexcept {
              Fn* from = std::launder(reinterpret_cast<Fn*>(src));
              ::new (dst) Fn(std::move(*from));
              from->~Fn();
            },
      kTrivialInline<Fn>
          ? nullptr
          : +[](void* self) noexcept {
              std::launder(reinterpret_cast<Fn*>(self))->~Fn();
            }};

  // The heap pointer relocates by plain copy, so relocate is null too.
  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* self) { (**std::launder(reinterpret_cast<Fn**>(self)))(); },
      nullptr,
      [](void* self) noexcept {
        delete *std::launder(reinterpret_cast<Fn**>(self));
      }};

  void relocate_from(Event& other) noexcept {
    if (ops_->relocate != nullptr) {
      ops_->relocate(storage_, other.storage_);
    } else {
      std::memcpy(storage_, other.storage_, kInlineBytes);
    }
    other.ops_ = nullptr;
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  static inline std::atomic<std::uint64_t> heap_fallbacks_{0};

  const Ops* ops_ = nullptr;
  // Zero-initialized so the fixed-size relocation memcpy never reads
  // indeterminate tail bytes (keeps -Wmaybe-uninitialized quiet; the dead
  // stores vanish under optimization when a callable is installed).
  alignas(kInlineAlign) unsigned char storage_[kInlineBytes] = {};
};

}  // namespace allarm::sim
