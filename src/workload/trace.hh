// Trace-file workloads: run the simulator on externally captured access
// traces instead of the synthetic profiles.
//
// Format: plain text, one access per line,
//
//     <thread-id> <L|S|I> <hex-virtual-address>
//
// '#' starts a comment; blank lines are ignored.  Threads are placed on
// core (thread-id mod cores).  A companion writer serializes accesses in
// the same format so users can capture traces from the synthetic
// generators or produce their own with external tools (e.g. a Pin or
// DynamoRIO client).
//
// Loading is streamed through the binary trace subsystem (src/trace/):
// the text file converts line by line into a temporary .altr and replays
// through TraceReplayGenerator, so memory use is one block per thread —
// never the whole trace.  parse_trace/write_trace keep the in-memory
// record API for small traces and tooling.  See docs/TRACES.md.
#pragma once

#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/config.hh"
#include "workload/spec.hh"

namespace allarm::workload {

/// One parsed trace record.
struct TraceRecord {
  ThreadId thread = 0;
  Access access;
};

/// Parses a trace stream; throws std::runtime_error with a line number on
/// malformed input.
std::vector<TraceRecord> parse_trace(std::istream& in);

/// Serializes records in the canonical format (inverse of parse_trace).
void write_trace(std::ostream& out, const std::vector<TraceRecord>& records);

/// Builds a workload that replays `records`: one thread per distinct
/// thread-id, each replaying its own subsequence in order, placed on core
/// (thread-id mod cores).  `think` is the compute gap between accesses.
WorkloadSpec make_trace_workload(const std::vector<TraceRecord>& records,
                                 const SystemConfig& config,
                                 Tick think = ticks_from_ns(2.0));

/// Convenience: parse + build from a file path.
WorkloadSpec load_trace_workload(const std::string& path,
                                 const SystemConfig& config,
                                 Tick think = ticks_from_ns(2.0));

}  // namespace allarm::workload
