#include "workload/profiles.hh"

#include <algorithm>
#include <stdexcept>

#include "numa/os.hh"

namespace allarm::workload {

namespace {

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * 1024;

// Virtual-address layout (per address space).  The kernel region lives in
// the OS's global kernel range so that every address space shares it.
constexpr Addr kHotBase = 0x4000'0000ull;         // 1 GiB per thread.
constexpr Addr kRegionStride = 0x4000'0000ull;
constexpr Addr kColdBase = 0x100'0000'0000ull;    // 1 TiB + 1 GiB per thread.
constexpr Addr kBoundaryBase = 0x200'0000'0000ull;  // 16 MiB per thread.
constexpr Addr kBoundaryStride = 0x100'0000ull;
constexpr Addr kSharedBase = 0x300'0000'0000ull;
constexpr Addr kKernelBase = numa::kKernelSpaceBase;

/// Span and window of the creeping OS-shared stream (see profiles.hh).
constexpr std::uint64_t kKernelCreepSpanBytes = 48 * kMiB;
constexpr std::uint32_t kKernelCreepWindowLines = 256;

Addr hot_base(ThreadId t) { return kHotBase + t * kRegionStride; }
Addr cold_base(ThreadId t) { return kColdBase + t * kRegionStride; }
Addr boundary_base(ThreadId t) { return kBoundaryBase + t * kBoundaryStride; }

/// The calibrated profile table (see profiles.hh for the meaning of each
/// knob).  Values were tuned against the paper's Figure 2 local/remote
/// mixes and the per-benchmark properties named in Section III.
const std::vector<ProfileParams>& profile_table() {
  static const std::vector<ProfileParams> table = [] {
    std::vector<ProfileParams> t;
    {
      ProfileParams p;  // N-body: tree reused heavily, bodies read-mostly.
      p.name = "barnes";
      p.hot_bytes = 96 * kKiB;  p.p_hot = 0.40;  p.p_write_hot = 0.20;
      p.cold_bytes = 256 * kKiB; p.p_cold = 0.18; p.p_write_cold = 0.20;
      p.p_kernel = 0.16;
      p.kernel_bytes = 4 * kMiB;
      p.kernel_advance_ns = 60.0;
      p.pattern = SharedPattern::kUniform;
      p.shared_bytes = 2 * kMiB;
      p.p_write_shared = 0.05;
      p.think = ticks_from_ns(2.0);
      t.push_back(p);
    }
    {
      ProfileParams p;  // Options priced from a CPU0-initialized array.
      p.name = "blackscholes";
      p.hot_bytes = 64 * kKiB;   p.p_hot = 0.25;  p.p_write_hot = 0.30;
      p.cold_bytes = 32 * kKiB;  p.p_cold = 0.02; p.p_write_cold = 0.20;
      p.p_kernel = 0.10;
      p.kernel_bytes = 4 * kMiB;
      p.kernel_advance_ns = 60.0;
      p.pattern = SharedPattern::kUniform;
      p.shared_bytes = 768 * kKiB;
      p.p_write_shared = 0.02;
      p.shared_home_at_zero = true;
      p.think = ticks_from_ns(2.0);
      t.push_back(p);
    }
    {
      ProfileParams p;  // Panel factorization: migratory blocks.
      p.name = "cholesky";
      p.hot_bytes = 96 * kKiB;  p.p_hot = 0.42;  p.p_write_hot = 0.30;
      p.cold_bytes = 288 * kKiB; p.p_cold = 0.17; p.p_write_cold = 0.30;
      p.p_kernel = 0.15;
      p.kernel_bytes = 4 * kMiB;
      p.kernel_advance_ns = 60.0;
      p.pattern = SharedPattern::kChunk;
      p.shared_bytes = 1 * kMiB;
      p.p_write_shared = 0.30;
      p.chunk_count = 16;
      p.think = ticks_from_ns(2.0);
      t.push_back(p);
    }
    {
      ProfileParams p;  // Pipeline with a hot shared hash table.
      p.name = "dedup";
      p.hot_bytes = 64 * kKiB;   p.p_hot = 0.30;  p.p_write_hot = 0.25;
      p.cold_bytes = 96 * kKiB;  p.p_cold = 0.08; p.p_write_cold = 0.25;
      p.p_kernel = 0.12;
      p.kernel_bytes = 4 * kMiB;
      p.kernel_advance_ns = 80.0;
      p.pattern = SharedPattern::kZipf;
      p.shared_bytes = 1536 * kKiB;
      p.p_write_shared = 0.20;
      p.zipf_alpha = 0.9;
      p.think = ticks_from_ns(2.0);
      t.push_back(p);
    }
    {
      ProfileParams p;  // Huge streaming working set: capacity-dominated.
      p.name = "fluidanimate";
      p.hot_bytes = 64 * kKiB;    p.p_hot = 0.22;  p.p_write_hot = 0.40;
      p.cold_bytes = 1536 * kKiB; p.p_cold = 0.43; p.p_write_cold = 0.50;
      p.p_kernel = 0.22;
      p.kernel_bytes = 4 * kMiB;
      p.kernel_advance_ns = 1500.0;
      p.pattern = SharedPattern::kBoundary;
      p.boundary_bytes = 32 * kKiB;
      // The largest working set in Parsec: first-touch cannot keep all of
      // it local, so a sizeable share of pages spills to neighbour nodes.
      p.misplaced_private_fraction = 0.25;
      p.think = ticks_from_ns(0.5);
      t.push_back(p);
    }
    {
      ProfileParams p;  // Grid solver: NUMA-friendly rows + neighbour halos.
      p.name = "ocean-cont";
      p.hot_bytes = 96 * kKiB;  p.p_hot = 0.48;  p.p_write_hot = 0.50;
      p.cold_bytes = 384 * kKiB; p.p_cold = 0.23; p.p_write_cold = 0.50;
      p.p_kernel = 0.20;
      p.kernel_bytes = 4 * kMiB;
      p.kernel_advance_ns = 30.0;
      p.pattern = SharedPattern::kBoundary;
      p.boundary_bytes = 32 * kKiB;
      p.think = ticks_from_ns(1.0);
      t.push_back(p);
    }
    {
      ProfileParams p;  // Same solver, non-contiguous page layout.
      p.name = "ocean-non-cont";
      p.hot_bytes = 96 * kKiB;  p.p_hot = 0.48;  p.p_write_hot = 0.50;
      p.cold_bytes = 384 * kKiB; p.p_cold = 0.21; p.p_write_cold = 0.50;
      p.p_kernel = 0.20;
      p.kernel_bytes = 4 * kMiB;
      p.kernel_advance_ns = 40.0;
      p.pattern = SharedPattern::kBoundary;
      p.boundary_bytes = 32 * kKiB;
      p.misplaced_private_fraction = 0.10;
      p.think = ticks_from_ns(1.0);
      t.push_back(p);
    }
    {
      ProfileParams p;  // Frame pipeline: producers feed staggered consumers.
      p.name = "x264";
      p.hot_bytes = 64 * kKiB;   p.p_hot = 0.28;  p.p_write_hot = 0.30;
      p.cold_bytes = 128 * kKiB; p.p_cold = 0.07; p.p_write_cold = 0.30;
      p.p_kernel = 0.12;
      p.kernel_bytes = 4 * kMiB;
      p.kernel_advance_ns = 80.0;
      p.pattern = SharedPattern::kChunk;
      p.shared_bytes = 1536 * kKiB;
      p.p_write_shared = 0.25;
      p.chunk_count = 16;
      p.think = ticks_from_ns(2.0);
      t.push_back(p);
    }
    return t;
  }();
  return table;
}

/// Steady-state mixture for one thread.  `t` selects the thread's private
/// regions and its role in shared patterns; multi-process workloads reuse
/// layout 0 in each address space.
std::unique_ptr<AccessGenerator> build_mix(const ProfileParams& p, ThreadId t,
                                           std::uint32_t num_threads) {
  auto mix = std::make_unique<Mix>();
  if (p.p_hot > 0.0) {
    mix->add(p.p_hot, std::make_unique<SequentialSweep>(
                          hot_base(t), p.hot_bytes, kLineBytes, p.p_write_hot));
  }
  if (p.p_cold > 0.0) {
    mix->add(p.p_cold,
             std::make_unique<SequentialSweep>(cold_base(t), p.cold_bytes,
                                               kLineBytes, p.p_write_cold));
  }
  if (p.p_kernel > 0.0) {
    if (p.kernel_advance_ns > 0.0) {
      // Fresh territory starts beyond the warm-up stock and wraps over a
      // large span (per-node DRAM share stays small).
      mix->add(p.p_kernel,
               std::make_unique<CreepingShared>(
                   kKernelBase + p.kernel_bytes, kKernelCreepSpanBytes,
                   kKernelCreepWindowLines,
                   ticks_from_ns(p.kernel_advance_ns), p.p_write_kernel));
    } else if (p.kernel_zipf_alpha > 0.0) {
      mix->add(p.p_kernel,
               std::make_unique<ZipfPages>(kKernelBase,
                                           p.kernel_bytes / kPageBytes,
                                           p.kernel_zipf_alpha,
                                           p.p_write_kernel));
    } else {
      mix->add(p.p_kernel, std::make_unique<UniformRandom>(
                               kKernelBase, p.kernel_bytes, p.p_write_kernel));
    }
  }
  const double p_shared = p.p_shared();
  if (p_shared > 1e-9 && p.pattern != SharedPattern::kNone) {
    std::unique_ptr<AccessGenerator> shared;
    switch (p.pattern) {
      case SharedPattern::kUniform:
        shared = std::make_unique<UniformRandom>(kSharedBase, p.shared_bytes,
                                                 p.p_write_shared);
        break;
      case SharedPattern::kZipf:
        shared = std::make_unique<ZipfPages>(kSharedBase,
                                             p.shared_bytes / kPageBytes,
                                             p.zipf_alpha, p.p_write_shared);
        break;
      case SharedPattern::kChunk:
        shared = std::make_unique<ChunkCycle>(
            kSharedBase, p.shared_bytes / p.chunk_count, p.chunk_count,
            /*phase=*/t, p.p_write_shared);
        break;
      case SharedPattern::kBoundary: {
        // 40% updates of the thread's own halo, 60% reads of neighbours'.
        const ThreadId left = (t + num_threads - 1) % num_threads;
        const ThreadId right = (t + 1) % num_threads;
        auto halo = std::make_unique<Mix>();
        halo->add(0.4,
                  std::make_unique<SequentialSweep>(
                      boundary_base(t), p.boundary_bytes, kLineBytes, 0.5));
        halo->add(0.3, std::make_unique<UniformRandom>(boundary_base(left),
                                                       p.boundary_bytes, 0.0));
        halo->add(0.3, std::make_unique<UniformRandom>(boundary_base(right),
                                                       p.boundary_bytes, 0.0));
        shared = std::move(halo);
        break;
      }
      case SharedPattern::kNone:
        break;
    }
    if (shared) mix->add(p_shared, std::move(shared));
  }
  return mix;
}

/// Kernel warm-up slice.  Physical frames are scrambled, so slice lines map
/// into cache sets as a Poisson process; the slice must be small enough
/// that two slices together keep per-set occupancy comfortably below the
/// associativity, or set conflicts evict lines (freeing their directory
/// entries) before the partner's sweep can convert them to Shared.  32 kB
/// (512 lines over 1024 L2 sets) keeps the conversion near-deterministic.
constexpr std::uint64_t kKernelSliceBytes = 32 * kKiB;

/// Warm-up: the kernel region is covered in rounds of
/// num_threads x kKernelSliceBytes; in each round every thread sweeps its
/// own slice and then its partner's (threads t and t^1 swap).  Both sweeps
/// of a pair run concurrently, so each kernel line is read by two caches
/// while still resident - its directory entry deterministically reaches the
/// Shared state, where silent cache drops leave it stale.  This reproduces
/// the standing population of stale Shared entries a long-running OS
/// creates, which is what keeps sparse directories full in the paper's
/// full-system baseline.  The hot set is swept once afterwards.
std::unique_ptr<Phased> build_phased(const ProfileParams& p, ThreadId t,
                                     std::uint32_t num_threads,
                                     std::uint64_t* warmup_out,
                                     ThreadId kernel_slice) {
  auto phased = std::make_unique<Phased>();
  if (p.p_kernel > 0.0) {
    const std::uint64_t round_bytes = kKernelSliceBytes * num_threads;
    const std::uint64_t rounds = (p.kernel_bytes + round_bytes - 1) / round_bytes;
    const ThreadId partner = num_threads % 2 == 0
                                 ? (kernel_slice ^ 1u)
                                 : (kernel_slice + 1) % num_threads;
    const std::uint64_t slice_accesses = kKernelSliceBytes / kLineBytes;
    for (std::uint64_t r = 0; r < rounds; ++r) {
      const Addr round_base = kKernelBase + r * round_bytes;
      const Addr own = round_base + kernel_slice * kKernelSliceBytes;
      const Addr partners = round_base + partner * kKernelSliceBytes;
      phased->add_stage(slice_accesses,
                        std::make_unique<SequentialSweep>(
                            own, kKernelSliceBytes, kLineBytes, 0.0));
      phased->add_stage(slice_accesses,
                        std::make_unique<SequentialSweep>(
                            partners, kKernelSliceBytes, kLineBytes, 0.0));
    }
  }
  if (p.p_cold > 0.0) {
    phased->add_stage(p.cold_bytes / kLineBytes,
                      std::make_unique<SequentialSweep>(
                          cold_base(t), p.cold_bytes, kLineBytes, 0.0));
  }
  if (p.p_hot > 0.0) {
    phased->add_stage(p.hot_bytes / kLineBytes,
                      std::make_unique<SequentialSweep>(
                          hot_base(t), p.hot_bytes, kLineBytes, 0.0));
  }
  *warmup_out = phased->prefix_length();
  phased->set_tail(build_mix(p, t, num_threads));
  return phased;
}

/// Pre-touches every page of [base, base+length) from `node`.
void touch_region(numa::Os& os, AddressSpaceId asid, Addr base,
                  std::uint64_t length, NodeId node) {
  for (Addr a = base; a < base + length; a += kPageBytes) {
    os.touch(asid, a, node);
  }
}

/// Pre-touches a region, sending every page whose index satisfies the
/// misplacement pattern to `other` instead of `node`.
void touch_region_misplaced(numa::Os& os, AddressSpaceId asid, Addr base,
                            std::uint64_t length, NodeId node, NodeId other,
                            double fraction) {
  const auto period = 100ull;
  const auto misplaced = static_cast<std::uint64_t>(fraction * period + 0.5);
  std::uint64_t index = 0;
  for (Addr a = base; a < base + length; a += kPageBytes, ++index) {
    const NodeId target = (index % period) < misplaced ? other : node;
    os.touch(asid, a, target);
  }
}

void validate(const ProfileParams& p) {
  if (p.p_hot < 0 || p.p_cold < 0 || p.p_kernel < 0 || p.p_shared() < -1e-9) {
    throw std::invalid_argument("ProfileParams: probabilities out of range");
  }
}

}  // namespace

const std::vector<std::string>& benchmark_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> n;
    for (const auto& p : profile_table()) n.push_back(p.name);
    return n;
  }();
  return names;
}

const ProfileParams& benchmark_params(const std::string& name) {
  for (const auto& p : profile_table()) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("unknown benchmark: " + name);
}

WorkloadSpec make_from_params(const ProfileParams& params,
                              const SystemConfig& config,
                              std::uint64_t accesses_per_thread,
                              std::uint32_t num_threads) {
  validate(params);
  if (num_threads > config.num_nodes()) {
    throw std::invalid_argument("more threads than cores");
  }
  WorkloadSpec spec;
  spec.name = params.name;
  for (ThreadId t = 0; t < num_threads; ++t) {
    ThreadSpec ts;
    ts.id = t;
    ts.asid = 0;
    ts.node = static_cast<NodeId>(t);
    std::uint64_t warmup = 0;
    {
      // Probe the warm-up length once; the factory rebuilds per run.
      build_phased(params, t, num_threads, &warmup, t);
    }
    ts.make_generator = [params, t, num_threads] {
      std::uint64_t ignored = 0;
      return build_phased(params, t, num_threads, &ignored, t);
    };
    ts.accesses = accesses_per_thread;
    ts.warmup_accesses = warmup;
    ts.think = params.think;
    ts.think_jitter = params.think_jitter;
    ts.start_offset = ticks_from_ns(3.0) * t;
    spec.threads.push_back(std::move(ts));
  }
  spec.setup = [params, num_threads](numa::Os& os) {
    for (ThreadId t = 0; t < num_threads; ++t) {
      const auto node = static_cast<NodeId>(t);
      const auto neighbour = static_cast<NodeId>((t + 1) % num_threads);
      touch_region(os, 0, hot_base(t), params.hot_bytes, node);
      if (params.misplaced_private_fraction > 0.0) {
        touch_region_misplaced(os, 0, cold_base(t), params.cold_bytes, node,
                               neighbour, params.misplaced_private_fraction);
      } else {
        touch_region(os, 0, cold_base(t), params.cold_bytes, node);
      }
      if (params.pattern == SharedPattern::kBoundary) {
        touch_region(os, 0, boundary_base(t), params.boundary_bytes, node);
      }
    }
    if (params.p_shared() > 1e-9 &&
        params.pattern != SharedPattern::kBoundary &&
        params.pattern != SharedPattern::kNone) {
      if (params.shared_home_at_zero) {
        touch_region(os, 0, kSharedBase, params.shared_bytes, 0);
      } else {
        // Partitioned initialization: pages round-robin across threads.
        std::uint64_t index = 0;
        for (Addr a = kSharedBase; a < kSharedBase + params.shared_bytes;
             a += kPageBytes, ++index) {
          os.touch(0, a, static_cast<NodeId>(index % num_threads));
        }
      }
    }
  };
  return spec;
}

WorkloadSpec make_benchmark(const std::string& name,
                            const SystemConfig& config,
                            std::uint64_t accesses_per_thread) {
  return make_from_params(benchmark_params(name), config, accesses_per_thread,
                          config.num_cores);
}

const std::vector<std::string>& multiprocess_benchmark_names() {
  static const std::vector<std::string> names = {
      "barnes", "cholesky", "ocean-cont", "ocean-non-cont"};
  return names;
}

WorkloadSpec make_multiprocess(const std::string& name,
                               const SystemConfig& config,
                               std::uint64_t accesses_per_thread) {
  const ProfileParams& base = benchmark_params(name);
  ProfileParams p = base;
  // Single-threaded copies share nothing at application level; redistribute
  // the shared probability onto the private sets.
  const double reclaim = p.p_shared();
  p.pattern = SharedPattern::kNone;
  p.p_hot += reclaim * 0.6;
  p.p_cold += reclaim * 0.4;
  // Two processes generate far less OS noise than sixteen threads.
  p.p_kernel = 0.10;
  p.kernel_bytes = 1536 * kKiB;
  // Allocation spill: a single memory controller cannot hold everything the
  // process wants locally (Section III-B).
  p.misplaced_private_fraction =
      std::max(0.08, base.misplaced_private_fraction);

  WorkloadSpec spec;
  spec.name = name + "-2p";
  const NodeId placements[2] = {0, static_cast<NodeId>(config.num_nodes() - 1)};
  for (ThreadId t = 0; t < 2; ++t) {
    ThreadSpec ts;
    ts.id = t;
    ts.asid = t;  // Separate address spaces: separate processes.
    ts.node = placements[t];
    std::uint64_t warmup = 0;
    // Both processes use thread-0's virtual layout (separate address
    // spaces); each sweeps its own half of the kernel during warm-up.
    build_phased(p, 0, 2, &warmup, t);
    ts.make_generator = [p, t] {
      std::uint64_t ignored = 0;
      return build_phased(p, 0, 2, &ignored, t);
    };
    ts.accesses = accesses_per_thread;
    ts.warmup_accesses = warmup;
    ts.think = p.think;
    ts.think_jitter = p.think_jitter;
    ts.start_offset = ticks_from_ns(3.0) * t;
    spec.threads.push_back(std::move(ts));
  }
  spec.setup = [p, placements](numa::Os& os) {
    for (ThreadId t = 0; t < 2; ++t) {
      const NodeId node = placements[t];
      const NodeId neighbour = static_cast<NodeId>(node == 0 ? 1 : node - 1);
      touch_region_misplaced(os, t, hot_base(0), p.hot_bytes, node, neighbour,
                             p.misplaced_private_fraction);
      touch_region_misplaced(os, t, cold_base(0), p.cold_bytes, node,
                             neighbour, p.misplaced_private_fraction);
    }
  };
  return spec;
}

}  // namespace allarm::workload
