// Workload specification: a set of software threads, each with an access
// generator, an initial core placement, and a page-placement setup step
// modelling the application's initialization phase (which is what fixes
// first-touch page homes).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "numa/os.hh"
#include "workload/generator.hh"

namespace allarm::workload {

/// One software thread.
struct ThreadSpec {
  ThreadId id = 0;
  AddressSpaceId asid = 0;
  NodeId node = 0;  ///< Initial placement (the scheduler may migrate later).
  /// Builds a fresh generator; called once per simulation run.
  std::function<std::unique_ptr<AccessGenerator>()> make_generator;
  std::uint64_t accesses = 0;  ///< Region-of-interest length.
  /// Accesses executed before the region of interest (cache / directory
  /// warm-up).  Statistics reset once every thread has crossed its warm-up.
  std::uint64_t warmup_accesses = 0;
  Tick think = 0;              ///< Mean compute time between accesses.
  double think_jitter = 0.0;   ///< Uniform jitter fraction of `think`.
  Tick start_offset = 0;       ///< Stagger between thread starts.
};

/// A complete workload.
struct WorkloadSpec {
  std::string name;
  std::vector<ThreadSpec> threads;
  /// Models the initialization phase: pre-touches pages in the order the
  /// real application would, establishing first-touch page homes.  The
  /// timed region of interest then starts with cold caches but placed pages.
  std::function<void(numa::Os&)> setup;
};

}  // namespace allarm::workload
