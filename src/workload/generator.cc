#include "workload/generator.hh"

#include <stdexcept>

namespace allarm::workload {

namespace {
AccessType pick(Rng& rng, double p_write) {
  return rng.chance(p_write) ? AccessType::kStore : AccessType::kLoad;
}
}  // namespace

// ------------------------------------------------------- SequentialSweep ----

SequentialSweep::SequentialSweep(Addr base, std::uint64_t length,
                                 std::uint32_t stride, double p_write)
    : base_(base), length_(length), stride_(stride), p_write_(p_write) {
  if (length == 0 || stride == 0) {
    throw std::invalid_argument("SequentialSweep: degenerate region");
  }
}

Access SequentialSweep::next(Rng& rng, Tick) {
  const Addr a = base_ + offset_;
  offset_ += stride_;
  if (offset_ >= length_) offset_ = 0;
  return {a, pick(rng, p_write_)};
}

// --------------------------------------------------------- UniformRandom ----

UniformRandom::UniformRandom(Addr base, std::uint64_t length, double p_write)
    : base_(base), lines_(length / kLineBytes), p_write_(p_write) {
  if (lines_ == 0) throw std::invalid_argument("UniformRandom: region too small");
}

Access UniformRandom::next(Rng& rng, Tick) {
  const Addr a = base_ + rng.below(lines_) * kLineBytes;
  return {a, pick(rng, p_write_)};
}

// ------------------------------------------------------------- ZipfPages ----

ZipfPages::ZipfPages(Addr base, std::uint64_t num_pages, double alpha,
                     double p_write)
    : base_(base), pages_(num_pages, alpha), p_write_(p_write) {}

Access ZipfPages::next(Rng& rng, Tick) {
  const std::uint64_t page = pages_(rng);
  const std::uint64_t line = rng.below(kLinesPerPage);
  const Addr a = base_ + page * kPageBytes + line * kLineBytes;
  return {a, pick(rng, p_write_)};
}

// ------------------------------------------------------------- ChunkCycle ----

ChunkCycle::ChunkCycle(Addr base, std::uint64_t chunk_bytes,
                       std::uint32_t num_chunks, std::uint32_t phase,
                       double p_write)
    : base_(base),
      chunk_bytes_(chunk_bytes),
      num_chunks_(num_chunks),
      phase_(phase),
      p_write_(p_write) {
  if (chunk_bytes < kLineBytes || num_chunks == 0) {
    throw std::invalid_argument("ChunkCycle: degenerate chunking");
  }
}

Access ChunkCycle::next(Rng& rng, Tick) {
  const std::uint64_t accesses_per_chunk = chunk_bytes_ / kLineBytes;
  const std::uint64_t chunk =
      (step_ / accesses_per_chunk + phase_) % num_chunks_;
  const std::uint64_t within = (step_ % accesses_per_chunk) * kLineBytes;
  ++step_;
  return {base_ + chunk * chunk_bytes_ + within, pick(rng, p_write_)};
}

// ---------------------------------------------------------- CreepingShared ----

CreepingShared::CreepingShared(Addr base, std::uint64_t region_bytes,
                               std::uint32_t window_lines,
                               Tick advance_period, double p_write)
    : base_(base),
      region_lines_(region_bytes / kLineBytes),
      window_lines_(window_lines),
      advance_period_(advance_period),
      p_write_(p_write) {
  if (region_lines_ < window_lines || window_lines == 0 ||
      advance_period == 0) {
    throw std::invalid_argument("CreepingShared: bad geometry");
  }
}

Access CreepingShared::next(Rng& rng, Tick now) {
  const std::uint64_t head = now / advance_period_;
  const std::uint64_t line =
      (head + rng.below(window_lines_)) % region_lines_;
  return {base_ + line * kLineBytes, pick(rng, p_write_)};
}

// ------------------------------------------------------------------ Phased ----

void Phased::add_stage(std::uint64_t count,
                       std::unique_ptr<AccessGenerator> stage) {
  if (count == 0) return;
  stages_.emplace_back(count, std::move(stage));
}

void Phased::set_tail(std::unique_ptr<AccessGenerator> tail) {
  tail_ = std::move(tail);
}

std::uint64_t Phased::prefix_length() const {
  std::uint64_t total = 0;
  for (const auto& [count, stage] : stages_) total += count;
  return total;
}

Access Phased::next(Rng& rng, Tick now) {
  while (current_ < stages_.size()) {
    auto& [count, stage] = stages_[current_];
    if (consumed_in_stage_ < count) {
      ++consumed_in_stage_;
      return stage->next(rng, now);
    }
    ++current_;
    consumed_in_stage_ = 0;
  }
  if (!tail_) throw std::logic_error("Phased: no tail generator");
  return tail_->next(rng, now);
}

// -------------------------------------------------------------------- Mix ----

void Mix::add(double weight, std::unique_ptr<AccessGenerator> child) {
  if (weight <= 0.0) throw std::invalid_argument("Mix: non-positive weight");
  total_weight_ += weight;
  children_.emplace_back(weight, std::move(child));
}

Access Mix::next(Rng& rng, Tick now) {
  if (children_.empty()) throw std::logic_error("Mix: no children");
  double u = rng.uniform() * total_weight_;
  for (auto& [w, child] : children_) {
    if (u < w) return child->next(rng, now);
    u -= w;
  }
  return children_.back().second->next(rng, now);
}

}  // namespace allarm::workload
