#include "workload/generator.hh"

#include <algorithm>
#include <stdexcept>

namespace allarm::workload {

namespace {
AccessType pick(Rng& rng, double p_write) {
  return rng.chance(p_write) ? AccessType::kStore : AccessType::kLoad;
}
}  // namespace

// ------------------------------------------------------- SequentialSweep ----

SequentialSweep::SequentialSweep(Addr base, std::uint64_t length,
                                 std::uint32_t stride, double p_write)
    : base_(base), length_(length), stride_(stride), p_write_(p_write) {
  if (length == 0 || stride == 0) {
    throw std::invalid_argument("SequentialSweep: degenerate region");
  }
}

Access SequentialSweep::next(Rng& rng, Tick) {
  const Addr a = base_ + offset_;
  offset_ += stride_;
  if (offset_ >= length_) offset_ = 0;
  return {a, pick(rng, p_write_)};
}

Tick SequentialSweep::next_batch(Rng& rng, Tick, Span<Access> out) {
  const Addr base = base_;
  const std::uint64_t length = length_;
  const std::uint64_t stride = stride_;
  const double p_write = p_write_;
  std::uint64_t offset = offset_;
  for (Access& a : out) {
    a.vaddr = base + offset;
    a.type = pick(rng, p_write);
    offset += stride;
    if (offset >= length) offset = 0;
  }
  offset_ = offset;
  return kTickNever;
}

void SequentialSweep::save_state(std::vector<std::uint64_t>& out) const {
  out.push_back(offset_);
}

void SequentialSweep::restore_state(const std::uint64_t*& data) {
  offset_ = *data++;
}

// --------------------------------------------------------- UniformRandom ----

UniformRandom::UniformRandom(Addr base, std::uint64_t length, double p_write)
    : base_(base), lines_(length / kLineBytes), p_write_(p_write) {
  if (lines_ == 0) throw std::invalid_argument("UniformRandom: region too small");
}

Access UniformRandom::next(Rng& rng, Tick) {
  const Addr a = base_ + (rng.below(lines_) << kLineBits);
  return {a, pick(rng, p_write_)};
}

Tick UniformRandom::next_batch(Rng& rng, Tick, Span<Access> out) {
  const Addr base = base_;
  const std::uint64_t lines = lines_;
  const double p_write = p_write_;
  for (Access& a : out) {
    a.vaddr = base + (rng.below(lines) << kLineBits);
    a.type = pick(rng, p_write);
  }
  return kTickNever;
}

// ------------------------------------------------------------- ZipfPages ----

ZipfPages::ZipfPages(Addr base, std::uint64_t num_pages, double alpha,
                     double p_write)
    : base_(base), pages_(num_pages, alpha), p_write_(p_write) {}

Access ZipfPages::next(Rng& rng, Tick) {
  const std::uint64_t page = pages_(rng);
  const std::uint64_t line = rng.below(kLinesPerPage);
  const Addr a = base_ + (page << kPageBits) + (line << kLineBits);
  return {a, pick(rng, p_write_)};
}

Tick ZipfPages::next_batch(Rng& rng, Tick, Span<Access> out) {
  const Addr base = base_;
  const double p_write = p_write_;
  for (Access& a : out) {
    const std::uint64_t page = pages_(rng);
    const std::uint64_t line = rng.below(kLinesPerPage);
    a.vaddr = base + (page << kPageBits) + (line << kLineBits);
    a.type = pick(rng, p_write);
  }
  return kTickNever;
}

// ------------------------------------------------------------- ChunkCycle ----

ChunkCycle::ChunkCycle(Addr base, std::uint64_t chunk_bytes,
                       std::uint32_t num_chunks, std::uint32_t phase,
                       double p_write)
    : base_(base),
      chunk_bytes_(chunk_bytes),
      accesses_per_chunk_(chunk_bytes / kLineBytes),
      num_chunks_(num_chunks),
      p_write_(p_write),
      chunk_(phase % (num_chunks == 0 ? 1 : num_chunks)) {
  if (chunk_bytes < kLineBytes || num_chunks == 0) {
    throw std::invalid_argument("ChunkCycle: degenerate chunking");
  }
}

Access ChunkCycle::next(Rng& rng, Tick) {
  const Addr a =
      base_ + chunk_ * chunk_bytes_ + (within_ << kLineBits);
  if (++within_ == accesses_per_chunk_) {
    within_ = 0;
    if (++chunk_ == num_chunks_) chunk_ = 0;
  }
  return {a, pick(rng, p_write_)};
}

Tick ChunkCycle::next_batch(Rng& rng, Tick, Span<Access> out) {
  const double p_write = p_write_;
  Addr chunk_base = base_ + chunk_ * chunk_bytes_;
  for (Access& a : out) {
    a.vaddr = chunk_base + (within_ << kLineBits);
    a.type = pick(rng, p_write);
    if (++within_ == accesses_per_chunk_) {
      within_ = 0;
      if (++chunk_ == num_chunks_) chunk_ = 0;
      chunk_base = base_ + chunk_ * chunk_bytes_;
    }
  }
  return kTickNever;
}

void ChunkCycle::save_state(std::vector<std::uint64_t>& out) const {
  out.push_back(within_);
  out.push_back(chunk_);
}

void ChunkCycle::restore_state(const std::uint64_t*& data) {
  within_ = *data++;
  chunk_ = static_cast<std::uint32_t>(*data++);
}

// ---------------------------------------------------------- CreepingShared ----

CreepingShared::CreepingShared(Addr base, std::uint64_t region_bytes,
                               std::uint32_t window_lines,
                               Tick advance_period, double p_write)
    : base_(base),
      region_lines_(region_bytes / kLineBytes),
      window_lines_(window_lines),
      advance_period_(advance_period),
      p_write_(p_write) {
  if (region_lines_ < window_lines || window_lines == 0 ||
      advance_period == 0) {
    throw std::invalid_argument("CreepingShared: bad geometry");
  }
}

Access CreepingShared::next(Rng& rng, Tick now) {
  std::uint64_t line = head_mod_region(now) + rng.below(window_lines_);
  if (line >= region_lines_) line -= region_lines_;
  return {base_ + (line << kLineBits), pick(rng, p_write_)};
}

Tick CreepingShared::next_batch(Rng& rng, Tick now, Span<Access> out) {
  // The head is a function of `now` alone: one divide and one modulo for
  // the whole batch instead of per access.
  const std::uint64_t head = head_mod_region(now);
  const std::uint64_t region = region_lines_;
  const std::uint64_t window = window_lines_;
  const Addr base = base_;
  const double p_write = p_write_;
  for (Access& a : out) {
    std::uint64_t line = head + rng.below(window);
    if (line >= region) line -= region;
    a.vaddr = base + (line << kLineBits);
    a.type = pick(rng, p_write);
  }
  return validity_horizon(now);
}

// ------------------------------------------------------------------ Phased ----

void Phased::add_stage(std::uint64_t count,
                       std::unique_ptr<AccessGenerator> stage) {
  if (count == 0) return;
  stages_.emplace_back(count, std::move(stage));
}

void Phased::set_tail(std::unique_ptr<AccessGenerator> tail) {
  tail_ = std::move(tail);
}

std::uint64_t Phased::prefix_length() const {
  std::uint64_t total = 0;
  for (const auto& [count, stage] : stages_) total += count;
  return total;
}

Access Phased::next(Rng& rng, Tick now) {
  while (current_ < stages_.size()) {
    auto& [count, stage] = stages_[current_];
    if (consumed_in_stage_ < count) {
      ++consumed_in_stage_;
      return stage->next(rng, now);
    }
    ++current_;
    consumed_in_stage_ = 0;
  }
  if (!tail_) throw std::logic_error("Phased: no tail generator");
  return tail_->next(rng, now);
}

Tick Phased::next_batch(Rng& rng, Tick now, Span<Access> out) {
  Tick horizon = kTickNever;
  std::size_t filled = 0;
  while (filled < out.size()) {
    if (current_ >= stages_.size()) {
      if (!tail_) throw std::logic_error("Phased: no tail generator");
      const Tick h = tail_->next_batch(
          rng, now, Span<Access>(out.data + filled, out.size() - filled));
      return std::min(horizon, h);
    }
    auto& [count, stage] = stages_[current_];
    const std::uint64_t left = count - consumed_in_stage_;
    if (left == 0) {
      ++current_;
      consumed_in_stage_ = 0;
      continue;
    }
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(left, out.size() - filled));
    const Tick h =
        stage->next_batch(rng, now, Span<Access>(out.data + filled, take));
    horizon = std::min(horizon, h);
    consumed_in_stage_ += take;
    filled += take;
  }
  return horizon;
}

Tick Phased::validity_horizon(Tick now) const {
  // Conservative: the min over every stage that could contribute to a
  // batch starting here (remaining stages and the tail).
  Tick horizon = kTickNever;
  for (std::size_t s = current_; s < stages_.size(); ++s) {
    horizon = std::min(horizon, stages_[s].second->validity_horizon(now));
  }
  if (tail_) horizon = std::min(horizon, tail_->validity_horizon(now));
  return horizon;
}

void Phased::save_state(std::vector<std::uint64_t>& out) const {
  out.push_back(current_);
  out.push_back(consumed_in_stage_);
  for (const auto& [count, stage] : stages_) stage->save_state(out);
  if (tail_) tail_->save_state(out);
}

void Phased::restore_state(const std::uint64_t*& data) {
  current_ = static_cast<std::size_t>(*data++);
  consumed_in_stage_ = *data++;
  for (auto& [count, stage] : stages_) stage->restore_state(data);
  if (tail_) tail_->restore_state(data);
}

// -------------------------------------------------------------------- Mix ----

void Mix::add(double weight, std::unique_ptr<AccessGenerator> child) {
  if (weight <= 0.0) throw std::invalid_argument("Mix: non-positive weight");
  total_weight_ += weight;
  children_.emplace_back(weight, std::move(child));
  child_horizons_.resize(children_.size());
}

std::size_t Mix::pick_child(double u) const {
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (u < children_[i].first) return i;
    u -= children_[i].first;
  }
  return children_.size() - 1;
}

Access Mix::next(Rng& rng, Tick now) {
  if (children_.empty()) throw std::logic_error("Mix: no children");
  const double u = rng.uniform() * total_weight_;
  return children_[pick_child(u)].second->next(rng, now);
}

Tick Mix::next_batch(Rng& rng, Tick now, Span<Access> out) {
  if (children_.empty()) throw std::logic_error("Mix: no children");
  // Child selection is one uniform per access, drawn before the child's
  // own draws — exactly next()'s order, so batching is stream-invisible.
  // Horizons are a per-child function of `now` alone: compute them once
  // per batch, and fold in only the children actually selected, so a
  // batch with no time-dependent picks never forces regeneration.
  for (std::size_t i = 0; i < children_.size(); ++i) {
    child_horizons_[i] = children_[i].second->validity_horizon(now);
  }
  Tick horizon = kTickNever;
  const double total_weight = total_weight_;
  for (Access& a : out) {
    const double u = rng.uniform() * total_weight;
    const std::size_t i = pick_child(u);
    a = children_[i].second->next(rng, now);
    horizon = std::min(horizon, child_horizons_[i]);
  }
  return horizon;
}

Tick Mix::validity_horizon(Tick now) const {
  Tick horizon = kTickNever;
  for (const auto& [w, child] : children_) {
    horizon = std::min(horizon, child->validity_horizon(now));
  }
  return horizon;
}

void Mix::save_state(std::vector<std::uint64_t>& out) const {
  for (const auto& [w, child] : children_) child->save_state(out);
}

void Mix::restore_state(const std::uint64_t*& data) {
  for (auto& [w, child] : children_) child->restore_state(data);
}

}  // namespace allarm::workload
