// Synthetic memory-access generators.
//
// Each generator produces an infinite stream of virtual-address accesses;
// composition (mixtures, phases) builds realistic multi-threaded access
// patterns out of simple primitives.  All randomness flows through the Rng
// passed to next()/next_batch(), so streams are reproducible.
//
// Two ways to pull the stream:
//
//  - next(rng, now): one access, one virtual call.
//  - next_batch(rng, now, span): many accesses in one virtual call, with
//    devirtualized inner loops and loop-invariant arithmetic hoisted out.
//    The batch consumes exactly the rng draws that the same number of
//    next() calls at the same `now` would, in the same order, and produces
//    byte-identical accesses — batch boundaries are invisible to the
//    stream.  It returns a validity horizon: the first simulated tick at
//    which a time-dependent generator (CreepingShared) would have produced
//    different addresses.  Callers that pre-generate ahead of simulated
//    time (core::System's issue ring) must discard and regenerate any
//    prefetched accesses they would issue at or after that horizon;
//    kTickNever means the batch never goes stale.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace allarm::workload {

/// One generated access (virtual address).
struct Access {
  Addr vaddr = 0;
  AccessType type = AccessType::kLoad;
};

/// Minimal contiguous view (C++17 stand-in for std::span<Access>).
template <typename T>
struct Span {
  T* data = nullptr;
  std::size_t count = 0;

  Span() = default;
  Span(T* d, std::size_t n) : data(d), count(n) {}

  T* begin() const { return data; }
  T* end() const { return data + count; }
  std::size_t size() const { return count; }
  T& operator[](std::size_t i) const { return data[i]; }
};

/// Infinite access-stream interface.  `now` is the simulated time at which
/// the access is issued; most generators ignore it, but globally-paced
/// patterns (CreepingShared) use it to stay synchronized across threads.
class AccessGenerator {
 public:
  virtual ~AccessGenerator() = default;
  virtual Access next(Rng& rng, Tick now) = 0;

  /// Fills `out` with the next out.size() accesses, all generated as of
  /// simulated time `now`, and returns the batch's validity horizon (see
  /// file comment).  Byte- and draw-identical to out.size() next() calls
  /// at the same `now`.  The default loops next(); generators override it
  /// with devirtualized bulk loops.
  virtual Tick next_batch(Rng& rng, Tick now, Span<Access> out) {
    for (Access& a : out) a = next(rng, now);
    return validity_horizon(now);
  }

  /// First tick at which this generator's output function (for a fixed rng
  /// state) may differ from its output at `now`.  kTickNever for
  /// time-invariant generators.  The conservative base answers "already
  /// stale" so unknown subclasses are never pre-generated ahead of time.
  virtual Tick validity_horizon(Tick now) const { return now; }

  /// Appends this generator's mutable position state (and, recursively,
  /// its children's) to `out`.  restore_state() consumes the same words in
  /// the same order.  Together they let a caller that pre-generated ahead
  /// of simulated time rewind to a snapshot and replay — the mechanism
  /// core::System uses to keep its issue ring byte-identical to unbatched
  /// issue when a time-dependent generator's output shifts mid-ring.
  /// Stateless generators (the default) save nothing.
  virtual void save_state(std::vector<std::uint64_t>& out) const {
    (void)out;
  }

  /// Inverse of save_state(); advances `data` past the consumed words.
  virtual void restore_state(const std::uint64_t*& data) { (void)data; }
};

/// Sequentially sweeps [base, base+length) with the given stride, wrapping
/// around forever - the canonical "loop over my array" pattern.  Each access
/// is a store with probability `p_write`.
class SequentialSweep final : public AccessGenerator {
 public:
  SequentialSweep(Addr base, std::uint64_t length, std::uint32_t stride,
                  double p_write);
  Access next(Rng& rng, Tick now) override;
  Tick next_batch(Rng& rng, Tick now, Span<Access> out) override;
  Tick validity_horizon(Tick) const override { return kTickNever; }
  void save_state(std::vector<std::uint64_t>& out) const override;
  void restore_state(const std::uint64_t*& data) override;

 private:
  Addr base_;
  std::uint64_t length_;
  std::uint32_t stride_;
  double p_write_;
  std::uint64_t offset_ = 0;
};

/// Uniform random line-granular accesses within [base, base+length).
class UniformRandom final : public AccessGenerator {
 public:
  UniformRandom(Addr base, std::uint64_t length, double p_write);
  Access next(Rng& rng, Tick now) override;
  Tick next_batch(Rng& rng, Tick now, Span<Access> out) override;
  Tick validity_horizon(Tick) const override { return kTickNever; }

 private:
  Addr base_;
  std::uint64_t lines_;
  double p_write_;
};

/// Zipf-skewed page popularity with a uniform line within the page - models
/// hot shared structures such as hash tables.
class ZipfPages final : public AccessGenerator {
 public:
  ZipfPages(Addr base, std::uint64_t num_pages, double alpha, double p_write);
  Access next(Rng& rng, Tick now) override;
  Tick next_batch(Rng& rng, Tick now, Span<Access> out) override;
  Tick validity_horizon(Tick) const override { return kTickNever; }

 private:
  Addr base_;
  ZipfDistribution pages_;
  double p_write_;
};

/// Sweeps chunk ((step / accesses_per_chunk + phase) mod num_chunks) of a
/// shared region - a deterministic stand-in for pipeline / producer-consumer
/// sharing: threads with different `phase` values visit the same chunks at
/// staggered times.
class ChunkCycle final : public AccessGenerator {
 public:
  ChunkCycle(Addr base, std::uint64_t chunk_bytes, std::uint32_t num_chunks,
             std::uint32_t phase, double p_write);
  Access next(Rng& rng, Tick now) override;
  Tick next_batch(Rng& rng, Tick now, Span<Access> out) override;
  Tick validity_horizon(Tick) const override { return kTickNever; }
  void save_state(std::vector<std::uint64_t>& out) const override;
  void restore_state(const std::uint64_t*& data) override;

 private:
  /// Current position, strength-reduced: (chunk_, within_line_) advance by
  /// increment-and-wrap, so the per-access 64-bit divide and modulo of the
  /// original step_-based formula never run on the hot path.
  Addr base_;
  std::uint64_t chunk_bytes_;
  std::uint64_t accesses_per_chunk_;  ///< chunk_bytes_ / kLineBytes.
  std::uint32_t num_chunks_;
  double p_write_;
  std::uint64_t within_ = 0;   ///< Line index within the current chunk.
  std::uint32_t chunk_ = 0;    ///< Current chunk (phase already folded in).
};

/// Reads from a window that slowly advances through a large region -
/// modelling an OS that continuously touches fresh shared pages (page
/// cache fills, copy-on-write, buffer churn).  Threads sharing the same
/// parameters advance in loose lockstep, so each line is read by several
/// caches while the window passes over it and its directory entry settles
/// into the silently-droppable Shared state; abandoned lines behind the
/// window are never read again.  This is the continuous supply of stale
/// directory entries that keeps sparse directories full in long-running
/// systems.
class CreepingShared final : public AccessGenerator {
 public:
  /// The window is `window_lines` wide and advances one line every
  /// `advance_period` ticks of simulated time (so all threads see the same
  /// window regardless of their individual progress), wrapping over
  /// `region_bytes`.
  CreepingShared(Addr base, std::uint64_t region_bytes,
                 std::uint32_t window_lines, Tick advance_period,
                 double p_write);
  Access next(Rng& rng, Tick now) override;
  Tick next_batch(Rng& rng, Tick now, Span<Access> out) override;
  /// Output changes when the window head (now / advance_period) advances:
  /// valid until the next multiple of the advance period.
  Tick validity_horizon(Tick now) const override {
    return (now / advance_period_ + 1) * advance_period_;
  }

 private:
  /// Window base line at `now`, reduced modulo the region once so the
  /// per-access wrap is a compare-and-subtract instead of a 64-bit modulo.
  std::uint64_t head_mod_region(Tick now) const {
    return (now / advance_period_) % region_lines_;
  }

  Addr base_;
  std::uint64_t region_lines_;
  std::uint32_t window_lines_;
  Tick advance_period_;
  double p_write_;
};

/// Runs a sequence of (count, generator) stages, then a tail generator
/// forever.  Used to model warm-up phases (e.g. sweeping the kernel image
/// and the hot working set once before the steady-state mix).
class Phased final : public AccessGenerator {
 public:
  /// Adds a stage executed for exactly `count` accesses.
  void add_stage(std::uint64_t count, std::unique_ptr<AccessGenerator> stage);

  /// Sets the generator used after all stages are exhausted (required).
  void set_tail(std::unique_ptr<AccessGenerator> tail);

  /// Total accesses consumed by the staged prefix.
  std::uint64_t prefix_length() const;

  Access next(Rng& rng, Tick now) override;
  /// Splits the batch at stage boundaries and bulk-fills each piece from
  /// the owning stage, so a batch spanning stages is still byte-identical
  /// to repeated next() calls.
  Tick next_batch(Rng& rng, Tick now, Span<Access> out) override;
  Tick validity_horizon(Tick now) const override;
  void save_state(std::vector<std::uint64_t>& out) const override;
  void restore_state(const std::uint64_t*& data) override;

 private:
  std::vector<std::pair<std::uint64_t, std::unique_ptr<AccessGenerator>>> stages_;
  std::unique_ptr<AccessGenerator> tail_;
  std::size_t current_ = 0;
  std::uint64_t consumed_in_stage_ = 0;
};

/// Weighted mixture of child generators.
class Mix final : public AccessGenerator {
 public:
  void add(double weight, std::unique_ptr<AccessGenerator> child);
  Access next(Rng& rng, Tick now) override;
  /// Per-access child selection draws stay in next() order; the horizon is
  /// the min over children actually selected in this batch.
  Tick next_batch(Rng& rng, Tick now, Span<Access> out) override;
  Tick validity_horizon(Tick now) const override;
  void save_state(std::vector<std::uint64_t>& out) const override;
  void restore_state(const std::uint64_t*& data) override;

 private:
  /// Selects the child for one uniform draw (the draw ordering contract:
  /// one uniform per access, before the child's own draws).
  std::size_t pick_child(double u) const;

  std::vector<std::pair<double, std::unique_ptr<AccessGenerator>>> children_;
  double total_weight_ = 0.0;
  /// Per-batch scratch: each child's validity horizon at the batch's
  /// `now`, computed once per batch instead of once per access.  Sized in
  /// add() so next_batch never allocates.
  std::vector<Tick> child_horizons_;
};

}  // namespace allarm::workload
