// Synthetic memory-access generators.
//
// Each generator produces an infinite stream of virtual-address accesses;
// composition (mixtures, phases) builds realistic multi-threaded access
// patterns out of simple primitives.  All randomness flows through the Rng
// passed to next(), so streams are reproducible.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace allarm::workload {

/// One generated access (virtual address).
struct Access {
  Addr vaddr = 0;
  AccessType type = AccessType::kLoad;
};

/// Infinite access-stream interface.  `now` is the simulated time at which
/// the access is issued; most generators ignore it, but globally-paced
/// patterns (CreepingShared) use it to stay synchronized across threads.
class AccessGenerator {
 public:
  virtual ~AccessGenerator() = default;
  virtual Access next(Rng& rng, Tick now) = 0;
};

/// Sequentially sweeps [base, base+length) with the given stride, wrapping
/// around forever - the canonical "loop over my array" pattern.  Each access
/// is a store with probability `p_write`.
class SequentialSweep final : public AccessGenerator {
 public:
  SequentialSweep(Addr base, std::uint64_t length, std::uint32_t stride,
                  double p_write);
  Access next(Rng& rng, Tick now) override;

 private:
  Addr base_;
  std::uint64_t length_;
  std::uint32_t stride_;
  double p_write_;
  std::uint64_t offset_ = 0;
};

/// Uniform random line-granular accesses within [base, base+length).
class UniformRandom final : public AccessGenerator {
 public:
  UniformRandom(Addr base, std::uint64_t length, double p_write);
  Access next(Rng& rng, Tick now) override;

 private:
  Addr base_;
  std::uint64_t lines_;
  double p_write_;
};

/// Zipf-skewed page popularity with a uniform line within the page - models
/// hot shared structures such as hash tables.
class ZipfPages final : public AccessGenerator {
 public:
  ZipfPages(Addr base, std::uint64_t num_pages, double alpha, double p_write);
  Access next(Rng& rng, Tick now) override;

 private:
  Addr base_;
  ZipfDistribution pages_;
  double p_write_;
};

/// Sweeps chunk ((step / accesses_per_chunk + phase) mod num_chunks) of a
/// shared region - a deterministic stand-in for pipeline / producer-consumer
/// sharing: threads with different `phase` values visit the same chunks at
/// staggered times.
class ChunkCycle final : public AccessGenerator {
 public:
  ChunkCycle(Addr base, std::uint64_t chunk_bytes, std::uint32_t num_chunks,
             std::uint32_t phase, double p_write);
  Access next(Rng& rng, Tick now) override;

 private:
  Addr base_;
  std::uint64_t chunk_bytes_;
  std::uint32_t num_chunks_;
  std::uint32_t phase_;
  double p_write_;
  std::uint64_t step_ = 0;
};

/// Reads from a window that slowly advances through a large region -
/// modelling an OS that continuously touches fresh shared pages (page
/// cache fills, copy-on-write, buffer churn).  Threads sharing the same
/// parameters advance in loose lockstep, so each line is read by several
/// caches while the window passes over it and its directory entry settles
/// into the silently-droppable Shared state; abandoned lines behind the
/// window are never read again.  This is the continuous supply of stale
/// directory entries that keeps sparse directories full in long-running
/// systems.
class CreepingShared final : public AccessGenerator {
 public:
  /// The window is `window_lines` wide and advances one line every
  /// `advance_period` ticks of simulated time (so all threads see the same
  /// window regardless of their individual progress), wrapping over
  /// `region_bytes`.
  CreepingShared(Addr base, std::uint64_t region_bytes,
                 std::uint32_t window_lines, Tick advance_period,
                 double p_write);
  Access next(Rng& rng, Tick now) override;

 private:
  Addr base_;
  std::uint64_t region_lines_;
  std::uint32_t window_lines_;
  Tick advance_period_;
  double p_write_;
};

/// Runs a sequence of (count, generator) stages, then a tail generator
/// forever.  Used to model warm-up phases (e.g. sweeping the kernel image
/// and the hot working set once before the steady-state mix).
class Phased final : public AccessGenerator {
 public:
  /// Adds a stage executed for exactly `count` accesses.
  void add_stage(std::uint64_t count, std::unique_ptr<AccessGenerator> stage);

  /// Sets the generator used after all stages are exhausted (required).
  void set_tail(std::unique_ptr<AccessGenerator> tail);

  /// Total accesses consumed by the staged prefix.
  std::uint64_t prefix_length() const;

  Access next(Rng& rng, Tick now) override;

 private:
  std::vector<std::pair<std::uint64_t, std::unique_ptr<AccessGenerator>>> stages_;
  std::unique_ptr<AccessGenerator> tail_;
  std::size_t current_ = 0;
  std::uint64_t consumed_in_stage_ = 0;
};

/// Weighted mixture of child generators.
class Mix final : public AccessGenerator {
 public:
  void add(double weight, std::unique_ptr<AccessGenerator> child);
  Access next(Rng& rng, Tick now) override;

 private:
  std::vector<std::pair<double, std::unique_ptr<AccessGenerator>>> children_;
  double total_weight_ = 0.0;
};

}  // namespace allarm::workload
