#include "workload/trace.hh"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <stdexcept>

#include "trace/convert.hh"
#include "trace/reader.hh"
#include "trace/replay.hh"
#include "trace/writer.hh"

namespace allarm::workload {

namespace {

/// Creates (and returns the path of) an empty unique temp file for the
/// intermediate .altr a text trace streams through.  The file is unlinked
/// as soon as the reader holds it open, so it never outlives the workload.
std::string temp_trace_path() {
  const char* dir = std::getenv("TMPDIR");
  std::string path = std::string(dir != nullptr && *dir != '\0' ? dir : "/tmp") +
                     "/allarm-trace-XXXXXX";
  const int fd = ::mkstemp(path.data());
  if (fd < 0) {
    throw std::runtime_error("cannot create a temporary trace file in " +
                             path);
  }
  ::close(fd);
  return path;
}

/// Sets the per-thread placement/timing metadata the text format does not
/// carry, then assembles the replay workload.  Writer slots register in
/// input-appearance order (streaming conversion cannot know the id set up
/// front), but thread ORDER in the spec seeds the per-thread rng streams,
/// so the assembled threads are sorted by id — which thread happens to
/// appear first in the input must not change any stream.  Threads are
/// placed on core (id mod cores).
WorkloadSpec finish_text_workload(trace::TraceWriter&& writer,
                                  const std::string& tmp_path,
                                  const SystemConfig& config, Tick think) {
  if (writer.meta().threads.empty()) {
    throw std::invalid_argument("make_trace_workload: empty trace");
  }
  for (std::uint32_t slot = 0; slot < writer.meta().threads.size(); ++slot) {
    trace::TraceThreadMeta& t = writer.meta().threads[slot];
    t.node = static_cast<NodeId>(t.id % config.num_nodes());
    t.accesses = writer.thread_records(slot);
    t.think = think;
  }
  writer.meta().workload = "trace";
  writer.finish();

  auto reader = std::make_shared<trace::TraceReader>(tmp_path);
  std::remove(tmp_path.c_str());  // Reader holds the fd; no file left behind.

  WorkloadSpec spec = trace::make_replay_workload(reader, config);
  std::sort(spec.threads.begin(), spec.threads.end(),
            [](const ThreadSpec& a, const ThreadSpec& b) {
              return a.id < b.id;
            });
  return spec;
}

/// Deletes its path at scope exit unless the file was already unlinked —
/// a failed conversion must not strand temp .altr files in TMPDIR.
/// Removing an already-removed path is a harmless ENOENT, so the success
/// path (which unlinks as soon as the reader holds the fd) needs no
/// disarming.
struct TempFileGuard {
  std::string path;
  ~TempFileGuard() { std::remove(path.c_str()); }
};

}  // namespace

std::vector<TraceRecord> parse_trace(std::istream& in) {
  trace::TextTraceScanner scanner(in);
  std::vector<TraceRecord> records;
  trace::TextRecord scanned;
  while (scanner.next(scanned)) {
    TraceRecord r;
    r.thread = scanned.thread;
    r.access = scanned.access;
    records.push_back(r);
  }
  return records;
}

void write_trace(std::ostream& out, const std::vector<TraceRecord>& records) {
  for (const TraceRecord& r : records) {
    trace::write_text_record(out, r.thread, r.access);
  }
}

WorkloadSpec make_trace_workload(const std::vector<TraceRecord>& records,
                                 const SystemConfig& config, Tick think) {
  if (records.empty()) {
    throw std::invalid_argument("make_trace_workload: empty trace");
  }
  const std::string tmp = temp_trace_path();
  const TempFileGuard guard{tmp};
  trace::TraceWriter writer(tmp, trace::kDefaultBlockPayloadBytes,
                            /*durable=*/false);
  std::map<ThreadId, std::uint32_t> slots;
  for (const TraceRecord& r : records) {
    auto [it, fresh] = slots.emplace(r.thread, 0);
    if (fresh) {
      trace::TraceThreadMeta meta;
      meta.id = r.thread;
      it->second = writer.add_thread(meta);
    }
    writer.record(it->second, r.access, /*rng_draws=*/0);
  }
  return finish_text_workload(std::move(writer), tmp, config, think);
}

WorkloadSpec load_trace_workload(const std::string& path,
                                 const SystemConfig& config, Tick think) {
  const std::string tmp = temp_trace_path();
  const TempFileGuard guard{tmp};
  trace::TraceWriter writer(tmp, trace::kDefaultBlockPayloadBytes,
                            /*durable=*/false);
  // One sequential pass, so single-shot inputs (FIFOs, process
  // substitution) keep working; memory use is one text line plus one open
  // block per thread, never the trace.  finish_text_workload re-sorts the
  // appearance-ordered threads by id.
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  trace::convert_text_trace(in, writer);
  return finish_text_workload(std::move(writer), tmp, config, think);
}

}  // namespace allarm::workload
