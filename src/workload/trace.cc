#include "workload/trace.hh"

#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

namespace allarm::workload {

namespace {

char letter_of(AccessType t) {
  switch (t) {
    case AccessType::kLoad: return 'L';
    case AccessType::kStore: return 'S';
    case AccessType::kInstFetch: return 'I';
  }
  return '?';
}

AccessType type_of(char c, std::size_t line_no) {
  switch (c) {
    case 'L': case 'l': return AccessType::kLoad;
    case 'S': case 's': return AccessType::kStore;
    case 'I': case 'i': return AccessType::kInstFetch;
    default:
      throw std::runtime_error("trace line " + std::to_string(line_no) +
                               ": unknown access type '" + c + "'");
  }
}

/// Replays one thread's slice of a trace.
class TraceReplay final : public AccessGenerator {
 public:
  explicit TraceReplay(std::vector<Access> accesses)
      : accesses_(std::move(accesses)) {}

  Access next(Rng&, Tick) override {
    if (index_ >= accesses_.size()) {
      throw std::logic_error("TraceReplay: ran past the end of the trace");
    }
    return accesses_[index_++];
  }

 private:
  std::vector<Access> accesses_;
  std::size_t index_ = 0;
};

}  // namespace

std::vector<TraceRecord> parse_trace(std::istream& in) {
  std::vector<TraceRecord> records;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::uint64_t thread = 0;
    std::string type;
    std::string addr;
    if (!(fields >> thread)) continue;  // Blank / comment-only line.
    if (!(fields >> type >> addr) || type.empty()) {
      throw std::runtime_error("trace line " + std::to_string(line_no) +
                               ": expected '<tid> <L|S|I> <hex-addr>'");
    }
    TraceRecord r;
    r.thread = static_cast<ThreadId>(thread);
    r.access.type = type_of(type[0], line_no);
    try {
      r.access.vaddr = std::stoull(addr, nullptr, 16);
    } catch (const std::exception&) {
      throw std::runtime_error("trace line " + std::to_string(line_no) +
                               ": bad address '" + addr + "'");
    }
    records.push_back(r);
  }
  return records;
}

void write_trace(std::ostream& out, const std::vector<TraceRecord>& records) {
  for (const TraceRecord& r : records) {
    out << r.thread << ' ' << letter_of(r.access.type) << ' ' << std::hex
        << r.access.vaddr << std::dec << '\n';
  }
}

WorkloadSpec make_trace_workload(const std::vector<TraceRecord>& records,
                                 const SystemConfig& config, Tick think) {
  std::map<ThreadId, std::vector<Access>> per_thread;
  for (const TraceRecord& r : records) {
    per_thread[r.thread].push_back(r.access);
  }
  if (per_thread.empty()) {
    throw std::invalid_argument("make_trace_workload: empty trace");
  }
  WorkloadSpec spec;
  spec.name = "trace";
  for (auto& [tid, accesses] : per_thread) {
    ThreadSpec ts;
    ts.id = tid;
    ts.asid = 0;
    ts.node = static_cast<NodeId>(tid % config.num_nodes());
    ts.accesses = accesses.size();
    ts.think = think;
    ts.think_jitter = 0.0;
    auto copy = accesses;
    ts.make_generator = [copy] {
      return std::make_unique<TraceReplay>(copy);
    };
    spec.threads.push_back(std::move(ts));
  }
  return spec;
}

WorkloadSpec load_trace_workload(const std::string& path,
                                 const SystemConfig& config, Tick think) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return make_trace_workload(parse_trace(in), config, think);
}

}  // namespace allarm::workload
