// Benchmark profiles: synthetic stand-ins for the SPLASH2 / Parsec
// workloads the paper evaluates under gem5 full-system simulation.
//
// Real full-system traces are not reproducible here, so each profile is a
// composition of access-pattern primitives calibrated to the drivers that
// determine every evaluated effect:
//
//   1. A HOT private region (fits in the caches, high reuse).  Its probe
//      filter entries are never touched after allocation (hits stay inside
//      the core), so under the baseline they age out of the directory and
//      the resulting evictions invalidate live, reused lines - the class of
//      misses ALLARM eliminates (Section II-B of the paper).
//   2. A COLD private region (streams through the caches).  Generates the
//      local request stream at each directory; under ALLARM these requests
//      allocate nothing.
//   3. An OS/KERNEL background: a large, globally shared, read-mostly
//      region standing in for the kernel image, page cache and other
//      OS-shared data a full-system simulation exercises.  Its lines are
//      dropped from caches silently (Shared state), so stale entries
//      accumulate and keep the probe filters full - the steady-state
//      eviction pressure visible in the paper's baseline.
//   4. An application SHARED structure per benchmark (read-mostly pool,
//      zipf hash table, migratory chunks, neighbour halos, or a
//      CPU0-initialized array), which sets the local/remote request mix
//      (Figure 2) and the invalidation fan-out (Figure 3d).
//
// Each profile also defines a deterministic warm-up (sweeping two kernel
// slices and the hot set once) after which statistics are reset - every
// figure is measured in steady state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "workload/spec.hh"

namespace allarm::workload {

/// How a profile's application-shared region is accessed.
enum class SharedPattern : std::uint8_t {
  kNone,      ///< No application sharing (multi-process style).
  kUniform,   ///< Uniform random over the shared region (read-mostly pool).
  kZipf,      ///< Zipf-skewed page popularity (hash table / hot metadata).
  kChunk,     ///< Staggered chunk cycling (pipeline / migratory sharing).
  kBoundary,  ///< Per-thread halo regions read by mesh neighbours (grids).
};

/// Tunable description of one benchmark profile.
struct ProfileParams {
  std::string name;

  // Hot private working set (cache-resident, reused).
  std::uint64_t hot_bytes = 128 * 1024;
  double p_hot = 0.3;
  double p_write_hot = 0.3;

  // Cold private working set (streaming).
  std::uint64_t cold_bytes = 256 * 1024;
  double p_cold = 0.2;
  double p_write_cold = 0.3;

  // OS/kernel background (globally shared, read-mostly, round-robin homes).
  double p_kernel = 0.12;
  std::uint64_t kernel_bytes = 6 * 1024 * 1024;
  double p_write_kernel = 0.02;
  /// Zipf exponent over kernel pages (0 = uniform).  A skewed page-cache
  /// popularity keeps hot OS pages' directory entries recently-touched
  /// while the cold tail ages out - the realistic mix of shielded and
  /// stale directory state.
  double kernel_zipf_alpha = 0.0;
  /// When nonzero, the steady-state kernel component creeps through fresh
  /// pages (CreepingShared) instead of re-reading a fixed pool: the OS
  /// touches one new shared line every `kernel_advance_ns` nanoseconds of
  /// simulated time (synchronized across threads).  This continuously
  /// manufactures stale Shared directory entries - the pressure that keeps
  /// sparse directories full in long-running systems.  Smaller = more
  /// pressure; 0 disables the creep (fixed kernel pool).
  double kernel_advance_ns = 0.0;

  // Application shared structure; gets the remaining access probability
  // p_shared() = 1 - p_hot - p_cold - p_kernel.
  SharedPattern pattern = SharedPattern::kUniform;
  std::uint64_t shared_bytes = 1024 * 1024;
  double p_write_shared = 0.1;
  double zipf_alpha = 0.9;
  std::uint32_t chunk_count = 16;
  std::uint64_t boundary_bytes = 32 * 1024;  ///< Per-thread halo size.
  /// All shared pages first-touched by thread 0 (blackscholes-style init).
  bool shared_home_at_zero = false;

  /// Fraction of private pages first-touched from a neighbouring node
  /// (ocean-non-contiguous layout; allocation spill in the multi-process
  /// experiment).
  double misplaced_private_fraction = 0.0;

  // Timing.
  Tick think = ticks_from_ns(2.0);
  double think_jitter = 0.3;

  double p_shared() const { return 1.0 - p_hot - p_cold - p_kernel; }
};

/// Names of the eight evaluated benchmarks, in the paper's order.
const std::vector<std::string>& benchmark_names();

/// Parameters for a named benchmark; throws std::out_of_range when unknown.
const ProfileParams& benchmark_params(const std::string& name);

/// Builds the 16-thread (one per core) workload for a named benchmark.
WorkloadSpec make_benchmark(const std::string& name, const SystemConfig& config,
                            std::uint64_t accesses_per_thread);

/// Builds a workload from explicit parameters (tests and ablations).
WorkloadSpec make_from_params(const ProfileParams& params,
                              const SystemConfig& config,
                              std::uint64_t accesses_per_thread,
                              std::uint32_t num_threads);

/// Names of the benchmarks used in the multi-process experiment (Figure 4).
const std::vector<std::string>& multiprocess_benchmark_names();

/// Builds the Section III-B multi-process workload: two single-threaded
/// copies of `name` in separate address spaces on distant nodes, with a
/// small fraction of pages spilled to neighbouring nodes (memory-capacity
/// pressure at a single controller, as the paper describes).
WorkloadSpec make_multiprocess(const std::string& name,
                               const SystemConfig& config,
                               std::uint64_t accesses_per_thread);

}  // namespace allarm::workload
