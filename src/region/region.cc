#include "region/region.hh"

#include <stdexcept>

namespace allarm::region {

namespace {

std::uint64_t popcount64(std::uint64_t v) {
  std::uint64_t n = 0;
  while (v != 0) {
    v &= v - 1;
    ++n;
  }
  return n;
}

}  // namespace

RegionGeometry::RegionGeometry(std::uint32_t region_size_bytes) {
  if (region_size_bytes < kLineBytes ||
      (region_size_bytes & (region_size_bytes - 1)) != 0 ||
      region_size_bytes > kPageBytes) {
    throw std::invalid_argument(
        "region size must be a power of two in [line, page]");
  }
  lines_per_region = region_size_bytes / kLineBytes;
  shift = 0;
  while ((1u << shift) < lines_per_region) ++shift;
}

// --------------------------------------------------------------- RTracker ----

RTracker::Info& RTracker::touch(RegionNum region, NodeId from) {
  auto [info, inserted] = map_.try_emplace(region);
  if (inserted) {
    info->owner = from;
  } else if (!info->shared && info->owner != from) {
    info->shared = true;
    ++shared_;
  }
  return *info;
}

void RTracker::erase(RegionNum region) {
  if (Info* info = map_.find(region)) {
    if (info->shared) --shared_;
    map_.erase(region);
  }
}

void RTracker::reset_private(RegionNum region, NodeId owner) {
  Info& info = *map_.try_emplace(region).first;
  if (info.shared) --shared_;
  info.owner = owner;
  info.shared = false;
  info.block_entries = 0;
}

void RTracker::clear() {
  map_.clear();
  shared_ = 0;
}

// -------------------------------------------------------- RegionDirectory ----

RegionDirectory::RegionDirectory(std::uint32_t region_size_bytes)
    : geometry_(region_size_bytes) {}

RegionEntry* RegionDirectory::lookup(RegionNum region) {
  ++stats_.reads;
  return table_.find(region);
}

bool RegionDirectory::covers(LineAddr line, NodeId holder) const {
  const RegionEntry* entry = table_.find(geometry_.region_of(line));
  return entry != nullptr && entry->owner == holder &&
         ((entry->presence >> geometry_.slot_of(line)) & 1) != 0;
}

bool RegionDirectory::note_miss_can_privatize(RegionNum region, NodeId from) {
  const RTracker::Info& info = tracker_.touch(region, from);
  return !info.shared && info.owner == from && info.block_entries == 0;
}

RegionEntry& RegionDirectory::install(RegionNum region, NodeId owner) {
  ++stats_.writes;
  ++stats_.installs;
  RegionEntry& entry = *table_.try_emplace(region).first;
  entry.owner = owner;
  entry.presence = 0;
  return entry;
}

bool RegionDirectory::mark_present(RegionEntry& entry, LineAddr line) {
  ++stats_.writes;
  ++stats_.hits;
  const std::uint64_t bit = 1ull << geometry_.slot_of(line);
  if ((entry.presence & bit) != 0) return false;
  entry.presence |= bit;
  ++presence_bits_;
  return true;
}

bool RegionDirectory::clear_present(RegionEntry& entry, LineAddr line) {
  const std::uint64_t bit = 1ull << geometry_.slot_of(line);
  if ((entry.presence & bit) == 0) return false;
  ++stats_.writes;
  ++stats_.puts;
  entry.presence &= ~bit;
  --presence_bits_;
  return true;
}

RegionEntry RegionDirectory::collapse(RegionNum region, NodeId sharer) {
  RegionEntry* entry = table_.find(region);
  if (entry == nullptr) {
    throw std::logic_error("collapse of a region with no entry");
  }
  const RegionEntry victim = *entry;
  ++stats_.writes;
  ++stats_.collapses;
  presence_bits_ -= popcount64(victim.presence);
  table_.erase(region);
  tracker_.touch(region, sharer);  // A second node: poisons the region.
  return victim;
}

void RegionDirectory::note_block_installed(RegionNum region) {
  RTracker::Info* info = tracker_.find(region);
  if (info == nullptr) {
    // Defensive: a block entry for an unclassified region (possible only
    // after a forgotten region raced a victim-stall retry).  Record it as
    // shared so the region cannot privatize over a live block entry.
    RTracker::Info& fresh = tracker_.touch(region, kInvalidNode);
    tracker_.mark_shared(fresh);
    fresh.block_entries = 1;
    return;
  }
  ++info->block_entries;
}

RegionDirectory::Removal RegionDirectory::note_block_removed(RegionNum region,
                                                             bool was_em,
                                                             NodeId owner) {
  RTracker::Info* info = tracker_.find(region);
  if (info == nullptr || info->block_entries == 0) return Removal::kUntracked;
  if (--info->block_entries > 0) return Removal::kNone;
  if (!was_em) {
    // The last tracked block left with unknown sharers: forget the region
    // so the next toucher starts a fresh private classification.
    tracker_.erase(region);
    return Removal::kNone;
  }
  if (table_.find(region) != nullptr) return Removal::kNone;  // Re-covered.
  // Recollection: every block entry of the collapsed region has died and
  // the last one was exclusive/modified at a single node — resume
  // region-granularity coverage for that node.
  ++stats_.recollects;
  ++stats_.writes;
  RegionEntry& entry = *table_.try_emplace(region).first;
  entry.owner = owner;
  entry.presence = 0;
  tracker_.reset_private(region, owner);
  return Removal::kRecollected;
}

void RegionDirectory::clear() {
  table_.clear();
  tracker_.clear();
  presence_bits_ = 0;
}

}  // namespace allarm::region
