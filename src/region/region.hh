// Region-granularity directory state (DirectoryMode::kRegion).
//
// One region entry covers a whole power-of-two region (up to a page) while
// the region is privately owned: the owner's misses are served from home
// memory with NO per-block probe-filter entry, so directory coverage
// multiplies by the region size for private data.  The first access from a
// different node COLLAPSES the region: the entry is withdrawn and every
// line the owner holds falls back to an ordinary per-block probe-filter
// entry (or is invalidated when no way is free — a spill).  When the last
// per-block entry of a collapsed region is removed while exclusive/modified
// at a single node, the region RECOLLECTS into a region entry owned by that
// node.
//
// An RTracker (after the graphite RTracker idea) classifies regions
// private/shared per home directory and drives the granularity decision:
// a region privatizes for its first toucher and is poisoned as shared by
// any second node until its per-block entries die out.
//
// This module holds pure state — tables, the tracker and counters.  The
// protocol actions (probes, grants, spill evictions) stay in
// coherence::DirectoryController, which consults this table on probe-filter
// misses and writebacks.  Both tables are FlatMaps: allocation-free in
// steady state and never iterated, so live counters (presence bits, shared
// regions) stand in for table walks in stats and invariant checks.
#pragma once

#include <cstdint>

#include "common/flat_map.hh"
#include "common/types.hh"

namespace allarm::region {

/// A region number (line address >> log2(lines per region)).
using RegionNum = std::uint64_t;

/// Region size/alignment helpers.  Regions never span a page
/// (SystemConfig::validate enforces region_size_bytes <= kPageBytes), so a
/// region always has a single home directory and at most 64 lines — the
/// presence bitmap below fits one word.
struct RegionGeometry {
  std::uint32_t lines_per_region = 1;
  unsigned shift = 0;  ///< log2(lines_per_region).

  RegionGeometry() = default;
  explicit RegionGeometry(std::uint32_t region_size_bytes);

  RegionNum region_of(LineAddr line) const { return line >> shift; }
  LineAddr base_line(RegionNum region) const {
    return static_cast<LineAddr>(region) << shift;
  }
  unsigned slot_of(LineAddr line) const {
    return static_cast<unsigned>(line) & (lines_per_region - 1);
  }
};

/// One region-granularity directory entry: the region is private to
/// `owner`, which holds exactly the lines whose presence bits are set
/// (always exclusive/modified — region grants are never shared, so every
/// granted line announces its death with a writeback that clears its bit).
struct RegionEntry {
  NodeId owner = kInvalidNode;
  std::uint64_t presence = 0;  ///< Bit per line slot within the region.
};

/// Counters exported per directory (all zero outside region mode).
struct RegionStats {
  std::uint64_t reads = 0;      ///< Region-table lookups (energy model).
  std::uint64_t writes = 0;     ///< Entry installs / bit flips / removals.
  std::uint64_t hits = 0;       ///< Misses served by a region grant.
  std::uint64_t installs = 0;   ///< Fresh region entries (privatizations).
  std::uint64_t collapses = 0;  ///< Region entries withdrawn on sharing.
  std::uint64_t collapse_block_installs = 0;  ///< Blocks re-tracked per-line.
  std::uint64_t collapse_spills = 0;  ///< Blocks invalidated (no free way).
  std::uint64_t recollects = 0;  ///< Regions merged back from block entries.
  std::uint64_t puts = 0;        ///< Owner writebacks clearing presence bits.
};

/// Per-home-directory region ownership tracker.
class RTracker {
 public:
  struct Info {
    NodeId owner = kInvalidNode;  ///< First toucher (private-owner candidate).
    bool shared = false;          ///< A second node has touched the region.
    std::uint32_t block_entries = 0;  ///< Live per-block PF entries.
  };

  /// Records an access by `from`: the first toucher becomes the private
  /// owner candidate; any different toucher marks the region shared.
  Info& touch(RegionNum region, NodeId from);

  Info* find(RegionNum region) { return map_.find(region); }
  const Info* find(RegionNum region) const { return map_.find(region); }

  /// Poisons a record as shared (keeps the live shared count honest).
  void mark_shared(Info& info) {
    if (!info.shared) {
      info.shared = true;
      ++shared_;
    }
  }

  /// Forgets the region entirely (its last block entry left non-exclusive:
  /// the next toucher starts a fresh private classification).
  void erase(RegionNum region);

  /// Re-privatizes the region for `owner` (recollection).
  void reset_private(RegionNum region, NodeId owner);

  std::uint64_t tracked() const { return map_.size(); }
  std::uint64_t shared_count() const { return shared_; }

  void clear();

 private:
  FlatMap<RegionNum, Info> map_;
  std::uint64_t shared_ = 0;  ///< Live count (FlatMap is never iterated).
};

/// The dual-granularity directory state for one node.
class RegionDirectory {
 public:
  RegionDirectory() : RegionDirectory(kLineBytes) {}
  explicit RegionDirectory(std::uint32_t region_size_bytes);

  const RegionGeometry& geometry() const { return geometry_; }

  /// True when regions span more than one line.  At one line per region
  /// the controller bypasses this module entirely and region mode runs the
  /// baseline protocol verbatim (the degenerate-equivalence oracle).
  bool enabled() const { return geometry_.lines_per_region > 1; }

  RegionNum region_of(LineAddr line) const {
    return geometry_.region_of(line);
  }

  /// Looks up the region entry; counts a region-table read.
  RegionEntry* lookup(RegionNum region);

  /// Finds without statistics side effects (for invariant checks).
  const RegionEntry* peek(RegionNum region) const {
    return table_.find(region);
  }

  /// True when a region entry names `holder` as owner and `line`'s
  /// presence bit is set (the invariant checker's coverage test).
  bool covers(LineAddr line, NodeId holder) const;

  /// Tracker touch for a region with no entry.  True when the region may
  /// be privatized for `from`: no other toucher seen and no per-block
  /// entries alive.
  bool note_miss_can_privatize(RegionNum region, NodeId from);

  /// Installs a fresh region entry owned by `owner`.
  RegionEntry& install(RegionNum region, NodeId owner);

  /// Sets `line`'s presence bit and counts the region-served grant;
  /// returns false when the bit was already set (defensive re-grant).
  bool mark_present(RegionEntry& entry, LineAddr line);

  /// Clears `line`'s presence bit on an owner writeback; returns false
  /// when the bit was not set (a stale put).
  bool clear_present(RegionEntry& entry, LineAddr line);

  /// Withdraws the region entry on first remote sharing (`sharer` poisons
  /// the tracker record) and returns it by value so the controller can
  /// walk the presence bits into per-block entries.
  RegionEntry collapse(RegionNum region, NodeId sharer);

  /// A per-block probe-filter entry was installed for a line of `region`.
  void note_block_installed(RegionNum region);

  enum class Removal {
    kNone,         ///< Block entries (or none exclusive) remain.
    kRecollected,  ///< Last block entry left as E/M: region entry restored.
    kUntracked,    ///< Removal for a region with no record (defensive).
  };

  /// A per-block entry for a line of `region` was removed (probe-filter
  /// eviction or owner writeback).  `was_em`/`owner` describe the removed
  /// entry; the last removal either recollects (E/M) or forgets the region.
  Removal note_block_removed(RegionNum region, bool was_em, NodeId owner);

  const RegionStats& stats() const { return stats_; }
  /// Mutable counters for the controller's collapse bookkeeping (block
  /// installs and spills happen at the protocol layer).
  RegionStats& stats_mut() { return stats_; }
  std::uint64_t entries() const { return table_.size(); }
  std::uint64_t presence_bits() const { return presence_bits_; }
  std::uint64_t tracked_regions() const { return tracker_.tracked(); }
  std::uint64_t shared_regions() const { return tracker_.shared_count(); }
  std::uint64_t private_regions() const {
    return tracker_.tracked() - tracker_.shared_count();
  }

  /// Zeroes the counters, keeping table contents (ROI boundary).
  void reset_stats() { stats_ = RegionStats{}; }

  /// Drops all state (between experiment repetitions).
  void clear();

 private:
  RegionGeometry geometry_;
  FlatMap<RegionNum, RegionEntry> table_;
  RTracker tracker_;
  RegionStats stats_;
  std::uint64_t presence_bits_ = 0;  ///< Live popcount over all entries.
};

}  // namespace allarm::region
