#include "coherence/cache_controller.hh"

#include <stdexcept>

#include "coherence/directory.hh"
#include "common/log.hh"

namespace allarm::coherence {

using cache::Array;
using cache::LineState;

CacheController::CacheController(NodeId node, Fabric& fabric,
                                 std::uint64_t seed)
    : node_(node),
      fabric_(fabric),
      hierarchy_(*fabric.config, seed, "node" + std::to_string(node)) {}

Tick CacheController::acquire(Tick now, Tick duration) {
  const Tick start = now > busy_until_ ? now : busy_until_;
  busy_until_ = start + duration;
  return busy_until_;
}

bool CacheController::in_writeback_buffer(LineAddr line) const {
  const WbbEntry* entry = wbb_.find(line);
  return entry != nullptr && !entry->invalidated;
}

void CacheController::emit_writebacks(const std::vector<cache::Victim>& victims,
                                      Tick t) {
  for (const cache::Victim& v : victims) {
    if (v.state == LineState::kShared) {
      // Clean shared lines drop silently; the directory entry (if any) goes
      // stale until the probe filter evicts it - Hammer semantics.
      ++stats_.silent_drops;
      continue;
    }
    const bool dirty = cache::is_dirty(v.state);
    const auto [entry, inserted] = wbb_.try_emplace(v.line);
    if (!inserted) {
      ++stats_.wbb_collisions;  // Should not happen; keep simulating.
    }
    *entry = WbbEntry{v.state, false};
    stats_.wbb_peak = std::max<std::uint64_t>(stats_.wbb_peak, wbb_.size());
    if (dirty) ++stats_.puts_dirty; else ++stats_.puts_clean;

    const MsgKind kind = dirty ? MsgKind::kPutM : MsgKind::kPutE;
    const NodeId home = fabric_.home_of(addr_of_line(v.line));
    const Tick t_arr =
        fabric_.mesh->send(node_, home, size_of(kind, *fabric_.config), t,
                           noc::TrafficCause::kWriteback);
    const Put put{v.line, node_, dirty};
    fabric_.at_node(home, t_arr, [this, home, put] {
      fabric_.directories[home]->handle_put(put);
    });
  }
}

void CacheController::send_request(const PendingRequest& req, Tick t) {
  const MsgKind kind = req.write ? MsgKind::kGetM : MsgKind::kGetS;
  const NodeId home = fabric_.home_of(addr_of_line(req.line));
  ALLARM_LOG_TRACE("cache", node_, " issues ", to_string(kind), " line=",
                   req.line, " home=", home);
  const Request out{req.line, node_, req.write,
                    hierarchy_.locate(req.line).present(), req.issued};
  const Tick t_arr =
      fabric_.mesh->send(node_, home, size_of(kind, *fabric_.config), t,
                         noc::TrafficCause::kRequest);
  fabric_.at_node(home, t_arr, [this, home, out] {
    fabric_.directories[home]->handle_request(out);
  });
}

void CacheController::core_access(AccessType type, Addr paddr, DoneFn done) {
  if (pending_ || wbb_wait_) {
    throw std::logic_error("CacheController: core already has an access in flight");
  }
  const LineAddr line = line_of(paddr);
  const Tick now = fabric_.events->now();
  const bool write = type == AccessType::kStore;
  const bool ifetch = type == AccessType::kInstFetch;
  const Array want = ifetch ? Array::kL1I : Array::kL1D;

  switch (type) {
    case AccessType::kLoad: ++stats_.loads; break;
    case AccessType::kStore: ++stats_.stores; break;
    case AccessType::kInstFetch: ++stats_.ifetches; break;
  }

  Tick t = acquire(now, fabric_.config->l1d.latency);
  const cache::Location loc = hierarchy_.locate(line);

  if (loc.present()) {
    const bool can_read = !write;
    const bool can_write = write && cache::is_writable(loc.state);
    if (can_read || can_write) {
      // Hit somewhere in the hierarchy.
      if (loc.array == Array::kL2) {
        t = acquire(t, fabric_.config->l2.latency);
        emit_writebacks(hierarchy_.promote(want, line), t);
        ++stats_.l2_hits;
        if (write) hierarchy_.set_state(line, LineState::kModified);
      } else if (write && loc.array == Array::kL1I) {
        // Store to a line sitting in the L1I: migrate it to the L1D.
        const LineState had = hierarchy_.invalidate(line);
        emit_writebacks(hierarchy_.fill(Array::kL1D, line, had), t);
        ++stats_.l1_hits;
        hierarchy_.set_state(line, LineState::kModified);
      } else {
        // The common L1 hit: one combined tag-scan/touch, and stores
        // rewrite the state through the returned reference.
        cache::LineState* state_ref = hierarchy_.touch_ref(line);
        ++stats_.l1_hits;
        if (write) *state_ref = LineState::kModified;
      }
      done(t);
      return;
    }
    // Store to a Shared/Owned copy: upgrade (GetM with the line in hand).
    ++stats_.upgrades;
  }

  // Miss (or upgrade): if the line is mid-writeback, wait for the PutAck
  // and retry; otherwise issue a coherence request to the home directory.
  if (in_writeback_buffer(line)) {
    ++stats_.wbb_stalls;
    wbb_wait_ = std::make_pair(type, paddr);
    wbb_wait_done_ = std::move(done);
    wbb_wait_line_ = line;
    return;
  }

  t = acquire(t, fabric_.config->l2.latency);  // L2 tag check on the way out.
  ++stats_.misses;
  pending_ = PendingRequest{line, type, write, now, std::move(done)};
  send_request(*pending_, t);
}

ProbeResult CacheController::probe(LineAddr line, ProbeOp op, Tick now) {
  ++stats_.probes_seen;
  const Tick t = acquire(now, fabric_.config->l2.latency);

  // The writeback buffer still owns recently evicted lines and can supply
  // dirty data until the directory acknowledges the Put.
  if (WbbEntry* entry = wbb_.find(line);
      entry != nullptr && !entry->invalidated) {
    ++stats_.probe_hits;
    const LineState had = entry->state;
    if (op == ProbeOp::kInvalidate) {
      entry->invalidated = true;
    } else if (had == LineState::kModified) {
      entry->state = LineState::kOwned;
    } else if (had == LineState::kExclusive) {
      entry->state = LineState::kShared;
    }
    return ProbeResult{t, had};
  }

  const LineState had = op == ProbeOp::kInvalidate ? hierarchy_.invalidate(line)
                                                   : hierarchy_.downgrade(line);
  if (cache::is_valid(had)) ++stats_.probe_hits;
  return ProbeResult{t, had};
}

void CacheController::grant(LineAddr line, LineState state, bool with_data,
                            Tick now) {
  if (!pending_ || pending_->line != line) {
    throw std::logic_error("CacheController::grant: no matching request");
  }
  const Tick t = acquire(now, fabric_.config->l1d.latency);
  const Array want =
      pending_->type == AccessType::kInstFetch ? Array::kL1I : Array::kL1D;

  if (hierarchy_.locate(line).present()) {
    // Upgrade: the clean copy is still here; only the state changes.
    hierarchy_.set_state(line, state);
    hierarchy_.touch(line);
  } else if (with_data) {
    emit_writebacks(hierarchy_.fill(want, line, state), t);
  } else {
    // A data-less grant for a line we no longer hold: a protocol leak the
    // tests assert never happens.  Fill anyway to keep the run alive.
    ++stats_.upgrade_without_line;
    emit_writebacks(hierarchy_.fill(want, line, state), t);
  }

  ALLARM_LOG_TRACE("cache", node_, " granted line=", line, " state=",
                   cache::to_string(state),
                   with_data ? " with data" : " (upgrade)");
  stats_.total_miss_latency += t - pending_->issued;
  DoneFn done = std::move(pending_->done);
  pending_.reset();
  done(t);
}

void CacheController::put_ack(LineAddr line, Tick now) {
  wbb_.erase(line);
  if (wbb_wait_ && wbb_wait_line_ == line) {
    const auto [type, paddr] = *wbb_wait_;
    wbb_wait_.reset();
    DoneFn done = std::move(wbb_wait_done_);
    wbb_wait_done_ = nullptr;
    core_access(type, paddr, std::move(done));
    (void)now;
  }
}

void CacheController::clear() {
  hierarchy_.clear();
  wbb_.clear();
  busy_until_ = 0;
  pending_.reset();
  wbb_wait_.reset();
  wbb_wait_done_ = nullptr;
}

}  // namespace allarm::coherence
