// Per-node directory controller: Hammer-style protocol with a sparse
// directory (probe filter), plus the ALLARM allocation policy.
//
// Transactions are serialized per line: while a request or probe-filter
// eviction for line L is in flight, later requests and writebacks for L
// queue in FIFO order.  This sidesteps transient-state races while
// preserving every quantity the paper measures (allocations, evictions,
// message counts, latencies).
//
// Baseline policy (Hammer + probe filter, AMD HT-Assist style):
//   * every miss allocates an entry; absence of an entry implies the line
//     is uncached anywhere;
//   * clean-exclusive evictions notify the directory and free the entry
//     (the paper's "already optimized" baseline);
//   * probe-filter evictions invalidate the tracked line in all caches
//     (directed probe for EM entries, broadcast for Owned/Shared since
//     Hammer does not track sharer sets).
//
// ALLARM additions (Section II of the paper):
//   * a miss whose requester is the home node's own core is served straight
//     from DRAM with NO entry allocated;
//   * a miss from a remote core additionally probes the home node's local
//     cache (the line may be cached there untracked), in parallel with the
//     speculative DRAM read; the probe is hidden whenever it misses and
//     DRAM is slower (Figure 3g);
//   * ALLARM can be disabled per directory and per physical range
//     (MTRR-like range registers).
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "cache/cache.hh"
#include "coherence/fabric.hh"
#include "coherence/messages.hh"
#include "coherence/probe_filter.hh"
#include "common/config.hh"
#include "common/flat_map.hh"
#include "common/pool.hh"
#include "common/stats.hh"
#include "region/region.hh"

namespace allarm::coherence {

/// Counters exported per directory.
struct DirectoryStats {
  std::uint64_t requests = 0;
  std::uint64_t local_requests = 0;   ///< Requester co-located with directory.
  std::uint64_t remote_requests = 0;  ///< Requester in another affinity domain.
  std::uint64_t queued_ops = 0;       ///< Operations that waited on a busy line.

  std::uint64_t pf_evictions = 0;          ///< Capacity evictions (Figure 3b).
  std::uint64_t eviction_messages = 0;     ///< Probes+acks of eviction flows (Fig 3d).
  std::uint64_t eviction_lines_invalidated = 0;  ///< Cached lines killed by evictions.
  std::uint64_t eviction_dirty_writebacks = 0;

  // ALLARM-specific (all zero in baseline mode).
  std::uint64_t local_no_alloc = 0;        ///< Local misses served without allocation.
  std::uint64_t remote_miss_probes = 0;    ///< Local probes issued (remote PF misses).
  std::uint64_t remote_miss_probe_hidden = 0;  ///< Probe off the critical path (Fig 3g).
  std::uint64_t remote_miss_probe_hit = 0;     ///< Home cache held the line untracked.

  std::uint64_t puts_local_untracked = 0;  ///< Puts for ALLARM-untracked home lines.
  std::uint64_t puts_stale = 0;            ///< Puts that lost a race (entry moved on).
  std::uint64_t puts_owner = 0;            ///< Puts from the tracked owner.
  std::uint64_t anomalies = 0;             ///< Defensive-path activations (expect 0).
  std::uint64_t victim_stalls = 0;         ///< All PF ways pinned; retried later.
};

/// The directory controller for one node.
class DirectoryController {
 public:
  DirectoryController(NodeId node, Fabric& fabric, DirectoryMode mode,
                      std::uint64_t seed);

  NodeId node() const { return node_; }
  DirectoryMode mode() const { return mode_; }

  /// Handles a GetS/GetM arriving now (called at arrival event time).
  void handle_request(const Request& request);

  /// Handles a PutM/PutE arriving now.
  void handle_put(const Put& put);

  const ProbeFilter& probe_filter() const { return pf_; }
  const DirectoryStats& stats() const { return stats_; }
  const region::RegionDirectory& region_directory() const { return region_; }

  /// True when a region entry covers `line` for `holder` (region mode's
  /// relaxation of the baseline "no entry implies uncached" invariant).
  bool region_covers(LineAddr line, NodeId holder) const {
    return region_on_ && region_.covers(line, holder);
  }

  /// True while a transaction for `line` is in flight.
  bool line_busy(LineAddr line) const { return busy_.count(line) != 0; }

  /// True when no transaction is in flight and nothing is queued.
  bool quiescent() const { return busy_.empty() && waiting_.empty(); }

  /// Zeroes all counters, keeping directory contents (ROI boundary).
  void reset_stats() {
    stats_ = DirectoryStats{};
    pf_.reset_stats();
    region_.reset_stats();
  }

  /// Drops all directory state (between experiment repetitions).
  void clear();

  /// Installs a histogram sampling this directory's occupancy (number of
  /// lines with a transaction in flight) at each request arrival.  Null
  /// disables sampling (the default); the caller owns the histogram and
  /// may share one across directories (requests execute on one thread
  /// even under PDES).  See RunOptions::profile.
  void set_occupancy_histogram(Histogram* hist) { occupancy_hist_ = hist; }

 private:
  using QueuedOp = std::variant<Request, Put>;

  /// FIFO of operations waiting on a busy line.  A vector plus head index
  /// rather than std::deque: default construction is allocation-free, so
  /// FlatMap slots holding queues cost nothing until a line actually
  /// contends, and the buffer is reused across drain cycles.
  struct OpQueue {
    std::vector<QueuedOp> ops;
    std::size_t head = 0;

    bool empty() const { return head == ops.size(); }
    void push(QueuedOp op) { ops.push_back(std::move(op)); }
    QueuedOp pop() {
      QueuedOp op = std::move(ops[head]);
      if (++head == ops.size()) {
        ops.clear();
        head = 0;
      }
      return op;
    }
  };

  // --- In-flight transaction state -----------------------------------------
  // One block per transaction, acquired from a free-list pool and released
  // when the transaction completes.  Scheduled closures capture only
  // {this, block pointer}, so every event fits the kernel's inline storage.

  /// An allocating PF miss (the main request path).
  struct MissState {
    Request r{};
    Tick t_victim_done = 0;
    bool waiting_victim = false;
    bool waiting_main = true;
    bool parallel_probe = false;  ///< ALLARM: speculative DRAM read issued.
    Tick t_mem_spec = 0;          ///< Completion of the speculative read.
    Tick t_serve = 0;             ///< When data can leave its source.
    NodeId data_src = 0;
    MsgKind data_kind = MsgKind::kData;
    noc::TrafficCause data_cause = noc::TrafficCause::kResponse;
    cache::LineState grant_state = cache::LineState::kExclusive;
    PfState final_state = PfState::kEM;
    NodeId final_owner = kInvalidNode;
  };

  /// A Hammer invalidation broadcast (GetM against an Owned/Shared entry).
  struct BcastState {
    Request r{};
    std::uint32_t expected = 0;
    std::uint32_t acks = 0;
    Tick t_acks_done = 0;
    Tick t_data = 0;
    bool data_from_owner = false;
    Tick t_mem = 0;      ///< Speculative DRAM read (requester lacks data).
    bool used_dram = false;
  };

  /// A probe-filter victim invalidation flow.
  struct EvictState {
    LineAddr line = 0;
    std::uint32_t expected = 0;
    std::uint32_t acks = 0;
    Tick t_latest = 0;
    MissState* gated = nullptr;  ///< Miss whose reply waits on this victim.
  };

  // --- Plumbing -------------------------------------------------------------
  Tick send(NodeId src, NodeId dst, MsgKind kind, noc::TrafficCause cause,
            Tick when);
  void grant_at(const Request& r, cache::LineState state, bool with_data,
                Tick when);
  /// Schedules the end of the transaction on `line` at time `when`.
  void finish_at(LineAddr line, Tick when);
  /// Releases `line` and processes queued operations.
  void release_and_drain(LineAddr line);

  // --- Request paths ----------------------------------------------------------
  void start_request(const Request& r, Tick now);
  void hit_gets(const Request& r, PfEntry& entry, Tick t);
  void hit_getm(const Request& r, PfEntry& entry, Tick t);
  void hit_getm_broadcast(const Request& r, PfEntry& entry, Tick t);
  void bcast_on_all_acks(BcastState* st);
  void miss(const Request& r, Tick t);
  void miss_local_probe_done(MissState* st);
  /// Completes the miss once neither the victim flow nor the main data
  /// path is outstanding; releases the state block.
  void miss_try_complete(MissState* st);

  /// Directory-side eviction of `victim`.  When `gated` is non-null, that
  /// miss's reply waits for the last invalidation ack.  Marks the victim
  /// line busy for the duration.
  void run_eviction(const PfEntry& victim, Tick t, MissState* gated);

  void process_put(const Put& p, Tick now);

  bool allarm_active_for(LineAddr line) const;

  // --- Region-granularity paths (DirectoryMode::kRegion, src/region/) -------
  /// PF-miss hook: serves region hits, installs/collapses region entries,
  /// or falls through to the ordinary miss().
  void region_miss(const Request& r, Tick t);
  /// Grants a region-covered miss straight from home memory (no PF entry).
  void region_serve(const Request& r, Tick t);
  /// Walks a withdrawn entry's presence bits into per-block PF entries
  /// (or pending installs / spills), then restarts `r` as a normal miss.
  void region_collapse(const Request& r, region::RegionEntry victim, Tick t);
  /// Installs a per-block entry for a line the region owner holds; when no
  /// way is free, invalidates the copy instead (a collapse spill).
  void region_install_block(LineAddr line, NodeId owner, Tick t);
  /// Owner writeback of a region-granted line: clears its presence bit.
  /// False when the line is not region-covered for this writer.
  bool region_put(const Put& p, Tick t);
  /// PF-entry removal bookkeeping (eviction or owner writeback): the last
  /// block entry of a region may trigger recollection.
  void region_note_entry_removed(const PfEntry& removed);

  NodeId node_;
  Fabric& fabric_;
  DirectoryMode mode_;
  ProbeFilter pf_;
  region::RegionDirectory region_;
  /// Dual-granularity machinery live: region mode with regions wider than
  /// one line.  At region size == line size every hook below is skipped and
  /// the controller runs the baseline protocol verbatim.
  bool region_on_ = false;
  /// Collapse found the line mid-transaction (a region grant in flight):
  /// the per-block entry is installed when the line is released, before any
  /// queued operation can observe the un-tracked window.
  FlatMap<LineAddr, NodeId> pending_installs_;
  DirectoryStats stats_;
  Histogram* occupancy_hist_ = nullptr;  ///< Occupancy-at-arrival sink.
  FlatSet<LineAddr> busy_;
  FlatMap<LineAddr, OpQueue> waiting_;
  Pool<MissState> miss_pool_;
  Pool<BcastState> bcast_pool_;
  Pool<EvictState> evict_pool_;
};

}  // namespace allarm::coherence
