// Wiring context shared by the per-node coherence controllers.
//
// The System (src/core) constructs all components, then fills in one Fabric
// that gives every controller access to the event queue, the mesh, its
// peers, the DRAMs, the physical home mapping and the ALLARM range
// registers.  Controllers never own their peers; lifetime is managed by the
// System.
#pragma once

#include <functional>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "mem/dram.hh"
#include "noc/mesh.hh"
#include "numa/os.hh"
#include "sim/event_queue.hh"

namespace allarm::coherence {

class CacheController;
class DirectoryController;

/// Non-owning wiring between coherence components.
struct Fabric {
  const SystemConfig* config = nullptr;
  sim::EventQueue* events = nullptr;
  noc::Mesh* mesh = nullptr;
  std::vector<CacheController*> caches;       ///< Indexed by NodeId.
  std::vector<DirectoryController*> directories;
  std::vector<mem::Dram*> drams;
  /// OS owning the physical memory map; home_of() runs per coherence
  /// request, so it is a direct inline call (a shift on the Table I
  /// geometry), not a std::function indirection.
  const numa::Os* os = nullptr;
  /// ALLARM enable ranges (Section II-C). Null means "always active".
  const numa::RangeRegisters* allarm_ranges = nullptr;

  /// Physical address -> home node (the node whose DRAM holds it).
  NodeId home_of(Addr paddr) const { return os->home_of(paddr); }

  /// Convenience: schedules `fn` at absolute time `when`.  Forwards the
  /// callable straight into the event kernel's inline storage -- no
  /// std::function indirection on the hot path.  Files under the lane of
  /// the currently executing event when the queue is sharded — use at_node
  /// for anything that acts on another node's components.
  template <typename F>
  void at(Tick when, F&& fn) const {
    events->schedule_at(when, std::forward<F>(fn));
  }

  /// Schedules `fn` under the event-queue lane owning `node` (identical to
  /// at() for serial runs).  Every protocol step that delivers work to a
  /// possibly-remote component routes through this so a sharded queue can
  /// attribute it to the right lane (src/parallel/, docs/PARALLEL.md).
  template <typename F>
  void at_node(NodeId node, Tick when, F&& fn) const {
    events->schedule_at_for(node, when, std::forward<F>(fn));
  }

  /// True when ALLARM is active for this physical line address.
  bool allarm_active(LineAddr line) const {
    return allarm_ranges == nullptr || allarm_ranges->active(addr_of_line(line));
  }
};

}  // namespace allarm::coherence
