// Coherence protocol message vocabulary and sizing.
//
// The simulator is transaction-level: messages are not routed as objects,
// but every protocol hop is charged to the mesh with the correct size and
// cause.  This header centralizes the kinds and their wire sizes
// (control = 8 bytes, data = 72 bytes, Table I).
#pragma once

#include <cstdint>
#include <string>

#include "common/config.hh"
#include "common/types.hh"

namespace allarm::coherence {

/// Protocol message kinds.
enum class MsgKind : std::uint8_t {
  kGetS,        ///< Read request (core -> home directory).
  kGetM,        ///< Write / upgrade request.
  kPutM,        ///< Dirty writeback (carries data).
  kPutE,        ///< Clean-exclusive eviction notification (paper baseline).
  kProbeInv,    ///< Invalidate probe (directory -> cache).
  kProbeDown,   ///< Downgrade probe for a read (directory -> cache).
  kLocalProbe,  ///< ALLARM's new message: directory queries its local cache.
  kAck,         ///< Probe acknowledgment without data.
  kAckData,     ///< Probe acknowledgment carrying the line.
  kData,        ///< Data response to a requester.
  kComplete,    ///< Data-less completion (upgrade grant).
  kPutAck,      ///< Directory acknowledges a Put.
};

std::string to_string(MsgKind kind);

/// True for messages that carry a full cache line.
constexpr bool carries_data(MsgKind kind) {
  return kind == MsgKind::kPutM || kind == MsgKind::kAckData ||
         kind == MsgKind::kData;
}

/// Wire size of a message kind under `config`.
constexpr std::uint32_t size_of(MsgKind kind, const SystemConfig& config) {
  return carries_data(kind) ? config.data_msg_bytes : config.control_msg_bytes;
}

/// A demand request as seen by a directory.
struct Request {
  LineAddr line = 0;
  NodeId from = kInvalidNode;
  bool write = false;      ///< true: GetM, false: GetS.
  bool has_line = false;   ///< Upgrade: requester already holds a clean copy.
  Tick issued = 0;         ///< When the core issued it (for latency stats).
};

/// A writeback / eviction notification as seen by a directory.
struct Put {
  LineAddr line = 0;
  NodeId from = kInvalidNode;
  bool dirty = false;      ///< true: PutM (data), false: PutE (control).
};

}  // namespace allarm::coherence
