#include "coherence/messages.hh"

namespace allarm::coherence {

std::string to_string(MsgKind kind) {
  switch (kind) {
    case MsgKind::kGetS: return "GetS";
    case MsgKind::kGetM: return "GetM";
    case MsgKind::kPutM: return "PutM";
    case MsgKind::kPutE: return "PutE";
    case MsgKind::kProbeInv: return "ProbeInv";
    case MsgKind::kProbeDown: return "ProbeDown";
    case MsgKind::kLocalProbe: return "LocalProbe";
    case MsgKind::kAck: return "Ack";
    case MsgKind::kAckData: return "AckData";
    case MsgKind::kData: return "Data";
    case MsgKind::kComplete: return "Complete";
    case MsgKind::kPutAck: return "PutAck";
  }
  return "?";
}

}  // namespace allarm::coherence
