// The sparse directory ("probe filter", AMD HT-Assist style).
//
// Each node's directory tracks cached lines homed at that node in a
// set-associative structure.  Entries follow the Hammer convention of NOT
// recording sharer sets:
//   kEM     - the line is exclusive/modified in exactly one cache (`owner`).
//   kOwned  - the line is dirty at `owner` with an unknown set of sharers.
//   kShared - the line is clean in an unknown set of caches, no owner.
// Absence of an entry means the line is uncached (baseline invariant), or
// - under ALLARM - possibly cached by the home node's own core only.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "common/config.hh"
#include "common/function_ref.hh"
#include "common/types.hh"

namespace allarm::coherence {

/// Tracking state of a probe-filter entry.
enum class PfState : std::uint8_t { kInvalid, kEM, kOwned, kShared };

std::string to_string(PfState state);

/// One directory entry.
struct PfEntry {
  LineAddr line = 0;
  PfState state = PfState::kInvalid;
  NodeId owner = kInvalidNode;  ///< Meaningful for kEM / kOwned.

  bool valid() const { return state != PfState::kInvalid; }
};

/// Access counters used by the energy model and the evaluation figures.
struct ProbeFilterStats {
  std::uint64_t reads = 0;    ///< Tag lookups.
  std::uint64_t writes = 0;   ///< Entry installs / updates / removals.
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
};

/// The set-associative sparse directory for one node.
class ProbeFilter {
 public:
  /// `coverage_bytes` of cached data tracked, one entry per 64-byte line.
  ProbeFilter(std::uint32_t coverage_bytes, std::uint32_t ways,
              ReplacementKind replacement, std::uint64_t seed);

  std::uint32_t sets() const { return sets_; }
  std::uint32_t ways() const { return ways_; }
  std::uint32_t capacity() const { return sets_ * ways_; }
  std::uint32_t occupancy() const { return occupancy_; }

  /// Looks up `line`, counting a tag read and hit/miss.
  /// The returned pointer stays valid until the entry is displaced.
  PfEntry* lookup(LineAddr line);

  /// Finds without statistics side effects (for invariant checks).
  const PfEntry* peek(LineAddr line) const;

  /// Replacement bookkeeping after a hit.
  void touch(LineAddr line);

  /// touch() via an entry pointer just returned by lookup() — skips the
  /// second tag scan.  Synchronous use only: pointers go stale once the
  /// entry can be displaced (any intervening simulated event).
  void touch_entry(PfEntry* entry);

  /// True when the set of `line` has an invalid way available.
  bool has_free_way(LineAddr line) const;

  /// Picks the replacement victim in `line`'s set, skipping entries for
  /// which `pinned(entry.line)` is true (lines with in-flight transactions),
  /// removes it from the filter and returns it.  Returns std::nullopt when
  /// every way is pinned.  The predicate is borrowed for the call only (it
  /// runs once per miss, so no std::function is materialized).
  std::optional<PfEntry> displace_victim(LineAddr line,
                                         FunctionRef<bool(LineAddr)> pinned);

  /// Installs an entry; the set must have a free way.
  void insert(LineAddr line, PfState state, NodeId owner);

  /// Removes the entry for `line`; returns false when absent.
  bool erase(LineAddr line);

  /// erase() via an entry pointer in hand (same synchronous-use rule as
  /// touch_entry()).
  void erase_entry(PfEntry* entry);

  /// Rewrites state/owner of an existing entry (counts a write).
  void update(LineAddr line, PfState state, NodeId owner);

  /// update() via an entry pointer in hand (same synchronous-use rule).
  void update_entry(PfEntry* entry, PfState state, NodeId owner);

  /// Applies `fn` to every valid entry.
  void for_each(FunctionRef<void(const PfEntry&)> fn) const;

  const ProbeFilterStats& stats() const { return stats_; }

  /// Zeroes the counters, keeping the entries (ROI boundary).
  void reset_stats() { stats_ = ProbeFilterStats{}; }

  /// Drops all entries and statistics.
  void clear();

 private:
  std::uint32_t set_of(LineAddr line) const {
    return static_cast<std::uint32_t>(line & (sets_ - 1));
  }
  PfEntry* find(LineAddr line);

  std::uint32_t sets_;
  std::uint32_t ways_;
  std::vector<PfEntry> entries_;  // sets x ways
  std::unique_ptr<cache::ReplacementPolicy> policy_;
  std::uint32_t occupancy_ = 0;
  ProbeFilterStats stats_;
  mutable std::vector<bool> eligible_scratch_;
};

}  // namespace allarm::coherence
