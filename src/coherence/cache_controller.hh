// Per-node cache-side coherence controller.
//
// Owns the node's cache hierarchy and writeback buffer, services the core's
// (blocking, one-outstanding-miss) memory accesses, answers directory
// probes - including ALLARM's new local probe - and issues
// writebacks/eviction notifications.
//
// Timing model: the controller has a single occupancy window (`busy_until`).
// Core accesses and incoming probes serialize through it; this is what can
// occasionally put the ALLARM local probe on the critical path of a remote
// request (evaluated in Figure 3g of the paper).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "cache/hierarchy.hh"
#include "coherence/fabric.hh"
#include "coherence/messages.hh"
#include "common/flat_map.hh"
#include "common/types.hh"

namespace allarm::coherence {

/// How a probe should transform the target line.
enum class ProbeOp : std::uint8_t {
  kInvalidate,  ///< Remove the line (GetM flows, evictions).
  kDowngrade,   ///< M -> O, E -> S (GetS flows).
};

/// Outcome of a probe delivered to a cache controller.
struct ProbeResult {
  Tick done = 0;                 ///< When the response leaves the controller.
  cache::LineState had = cache::LineState::kInvalid;  ///< State before.

  bool hit() const { return cache::is_valid(had); }
  bool dirty() const { return cache::is_dirty(had); }
};

/// Counters exported per node.
struct CacheControllerStats {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t ifetches = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t misses = 0;          ///< Coherence requests issued ("L2 misses").
  std::uint64_t upgrades = 0;        ///< GetM with the line already held.
  std::uint64_t puts_dirty = 0;      ///< PutM sent.
  std::uint64_t puts_clean = 0;      ///< PutE sent.
  std::uint64_t silent_drops = 0;    ///< S-state evictions (no message).
  std::uint64_t probes_seen = 0;
  std::uint64_t probe_hits = 0;
  std::uint64_t wbb_stalls = 0;      ///< Misses that waited on a writeback.
  std::uint64_t upgrade_without_line = 0;  ///< Protocol sanity counter (should stay 0).
  std::uint64_t wbb_collisions = 0;        ///< Protocol sanity counter (should stay 0).
  Tick total_miss_latency = 0;       ///< Sum of request round-trip times.
  std::uint64_t wbb_peak = 0;        ///< Peak writeback-buffer occupancy.
};

/// The cache-side controller for one node.
class CacheController {
 public:
  /// Completion callback for core_access.  A trivially-copyable
  /// {function, context} pair instead of std::function: one is built,
  /// copied into the pending slot and invoked on every access, and the
  /// only producer (core::System) owns context that outlives the request.
  class DoneFn {
   public:
    using Fn = void (*)(void* ctx, Tick t);

    DoneFn() = default;
    DoneFn(std::nullptr_t) {}  // NOLINT: mirrors std::function.
    DoneFn(Fn fn, void* ctx) : fn_(fn), ctx_(ctx) {}

    /// Wraps a callable owned by the caller; it must stay alive until the
    /// access completes (callbacks can fire arbitrarily later).
    template <typename F>
    static DoneFn of(F& callable) {
      return DoneFn(
          [](void* ctx, Tick t) { (*static_cast<F*>(ctx))(t); }, &callable);
    }

    DoneFn& operator=(std::nullptr_t) {
      fn_ = nullptr;
      return *this;
    }
    explicit operator bool() const { return fn_ != nullptr; }
    void operator()(Tick t) const { fn_(ctx_, t); }

   private:
    Fn fn_ = nullptr;
    void* ctx_ = nullptr;
  };

  CacheController(NodeId node, Fabric& fabric, std::uint64_t seed);

  NodeId node() const { return node_; }

  /// Issues one core access at the current event time.  Exactly one access
  /// may be outstanding; `done` fires (via the event queue) at completion.
  void core_access(AccessType type, Addr paddr, DoneFn done);

  /// Services a probe arriving now; returns the response synchronously with
  /// its completion time (occupancy-adjusted).  Called by directories at
  /// probe-arrival event time.
  ProbeResult probe(LineAddr line, ProbeOp op, Tick now);

  /// Delivers a grant (data or data-less completion) for the outstanding
  /// request.  Called at grant-arrival event time.
  void grant(LineAddr line, cache::LineState state, bool with_data, Tick now);

  /// Directory acknowledged a Put; clears the writeback-buffer entry.
  void put_ack(LineAddr line, Tick now);

  const cache::Hierarchy& hierarchy() const { return hierarchy_; }
  const CacheControllerStats& stats() const { return stats_; }

  /// True when `line` sits in the writeback buffer awaiting a PutAck.
  bool in_writeback_buffer(LineAddr line) const;

  /// Number of writebacks awaiting a PutAck (including invalidated ones).
  std::size_t writebacks_in_flight() const { return wbb_.size(); }

  /// True when a core request is outstanding.
  bool request_outstanding() const { return pending_.has_value(); }

  /// True when the controller cannot accept a new core access (a request is
  /// outstanding or an access is stalled on a writeback).  Relevant when
  /// thread migration timeshares two threads on one core.
  bool busy_with_core_request() const {
    return pending_.has_value() || wbb_wait_.has_value();
  }

  /// Zeroes the counters, keeping cache contents (ROI boundary).
  void reset_stats() { stats_ = CacheControllerStats{}; }

  /// Drops all cached state (between experiment repetitions).
  void clear();

 private:
  struct PendingRequest {
    LineAddr line;
    AccessType type;
    bool write;
    Tick issued;
    DoneFn done;
  };
  struct WbbEntry {
    cache::LineState state;    ///< State when evicted.
    bool invalidated = false;  ///< A probe consumed it while in flight.
  };

  Tick acquire(Tick now, Tick duration);
  /// Sends Put messages for lines leaving the hierarchy.
  void emit_writebacks(const std::vector<cache::Victim>& victims, Tick t);
  void send_request(const PendingRequest& req, Tick t);
  void finish_access(Tick t);

  NodeId node_;
  Fabric& fabric_;
  cache::Hierarchy hierarchy_;
  Tick busy_until_ = 0;
  std::optional<PendingRequest> pending_;
  /// Access stalled on a writeback in flight for the same line.
  std::optional<std::pair<AccessType, Addr>> wbb_wait_;
  DoneFn wbb_wait_done_;
  LineAddr wbb_wait_line_ = 0;
  FlatMap<LineAddr, WbbEntry> wbb_;
  CacheControllerStats stats_;
};

}  // namespace allarm::coherence
