#include "coherence/probe_filter.hh"

#include <stdexcept>

namespace allarm::coherence {

std::string to_string(PfState state) {
  switch (state) {
    case PfState::kInvalid: return "I";
    case PfState::kEM: return "EM";
    case PfState::kOwned: return "O";
    case PfState::kShared: return "S";
  }
  return "?";
}

ProbeFilter::ProbeFilter(std::uint32_t coverage_bytes, std::uint32_t ways,
                         ReplacementKind replacement, std::uint64_t seed)
    : sets_((coverage_bytes / kLineBytes) / ways),
      ways_(ways),
      entries_(static_cast<std::size_t>(sets_) * ways),
      policy_(cache::make_policy(replacement, sets_, ways, seed)),
      eligible_scratch_(ways, false) {
  if (sets_ == 0 || (sets_ & (sets_ - 1)) != 0) {
    throw std::invalid_argument("ProbeFilter: set count must be a power of two");
  }
}

PfEntry* ProbeFilter::find(LineAddr line) {
  PfEntry* base = &entries_[static_cast<std::size_t>(set_of(line)) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (base[w].valid() && base[w].line == line) return &base[w];
  }
  return nullptr;
}

PfEntry* ProbeFilter::lookup(LineAddr line) {
  ++stats_.reads;
  PfEntry* e = find(line);
  if (e) ++stats_.hits; else ++stats_.misses;
  return e;
}

const PfEntry* ProbeFilter::peek(LineAddr line) const {
  return const_cast<ProbeFilter*>(this)->find(line);
}

void ProbeFilter::touch(LineAddr line) {
  PfEntry* e = find(line);
  if (!e) return;
  touch_entry(e);
}

void ProbeFilter::touch_entry(PfEntry* entry) {
  const std::uint32_t set = set_of(entry->line);
  const auto way = static_cast<std::uint32_t>(
      entry - &entries_[static_cast<std::size_t>(set) * ways_]);
  policy_->touch(set, way);
}

bool ProbeFilter::has_free_way(LineAddr line) const {
  const PfEntry* base =
      &entries_[static_cast<std::size_t>(set_of(line)) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (!base[w].valid()) return true;
  }
  return false;
}

std::optional<PfEntry> ProbeFilter::displace_victim(
    LineAddr line, FunctionRef<bool(LineAddr)> pinned) {
  const std::uint32_t set = set_of(line);
  PfEntry* base = &entries_[static_cast<std::size_t>(set) * ways_];
  // Deployed sparse directories prefer clean Shared victims: their
  // invalidation needs no dirty writeback and never pulls a line out from
  // under its (sole) owner.  Fall back to plain LRU when the set holds no
  // Shared entry.
  // One pinned() probe per way: the busy check behind it walks a hash map,
  // so remember the verdicts instead of re-asking in a second pass.
  bool any_shared = false;
  bool any = false;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    const bool ok = base[w].valid() && !pinned(base[w].line);
    eligible_scratch_[w] = ok;
    any = any || ok;
    any_shared = any_shared || (ok && base[w].state == PfState::kShared);
  }
  if (!any) return std::nullopt;
  if (any_shared) {
    for (std::uint32_t w = 0; w < ways_; ++w) {
      eligible_scratch_[w] =
          eligible_scratch_[w] && base[w].state == PfState::kShared;
    }
  }
  const std::uint32_t w = policy_->victim(set, eligible_scratch_);
  const PfEntry victim = base[w];
  base[w] = PfEntry{};
  --occupancy_;
  ++stats_.writes;  // Tag/state readout + invalidation write.
  return victim;
}

void ProbeFilter::insert(LineAddr line, PfState state, NodeId owner) {
  if (state == PfState::kInvalid) {
    throw std::invalid_argument("ProbeFilter::insert: invalid state");
  }
  const std::uint32_t set = set_of(line);
  PfEntry* base = &entries_[static_cast<std::size_t>(set) * ways_];
  // One scan: find the first free way while guarding against duplicates.
  std::uint32_t free_way = ways_;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (!base[w].valid()) {
      if (free_way == ways_) free_way = w;
    } else if (base[w].line == line) {
      throw std::logic_error("ProbeFilter::insert: line already tracked");
    }
  }
  if (free_way == ways_) {
    throw std::logic_error("ProbeFilter::insert: no free way (reserve first)");
  }
  base[free_way] = PfEntry{line, state, owner};
  policy_->touch(set, free_way);
  ++occupancy_;
  ++stats_.writes;
  ++stats_.inserts;
}

bool ProbeFilter::erase(LineAddr line) {
  PfEntry* e = find(line);
  if (!e) return false;
  erase_entry(e);
  return true;
}

void ProbeFilter::erase_entry(PfEntry* entry) {
  *entry = PfEntry{};
  --occupancy_;
  ++stats_.writes;
}

void ProbeFilter::update(LineAddr line, PfState state, NodeId owner) {
  PfEntry* e = find(line);
  if (!e) throw std::logic_error("ProbeFilter::update: line not tracked");
  update_entry(e, state, owner);
}

void ProbeFilter::update_entry(PfEntry* entry, PfState state, NodeId owner) {
  entry->state = state;
  entry->owner = owner;
  ++stats_.writes;
}

void ProbeFilter::for_each(FunctionRef<void(const PfEntry&)> fn) const {
  for (const PfEntry& e : entries_) {
    if (e.valid()) fn(e);
  }
}

void ProbeFilter::clear() {
  for (PfEntry& e : entries_) e = PfEntry{};
  occupancy_ = 0;
  stats_ = ProbeFilterStats{};
}

}  // namespace allarm::coherence
