#include "coherence/directory.hh"

#include <algorithm>

#include "coherence/cache_controller.hh"
#include "common/log.hh"

namespace allarm::coherence {

using cache::LineState;

DirectoryController::DirectoryController(NodeId node, Fabric& fabric,
                                         DirectoryMode mode,
                                         std::uint64_t seed)
    : node_(node),
      fabric_(fabric),
      mode_(mode),
      pf_(fabric.config->probe_filter_coverage_bytes,
          fabric.config->probe_filter_ways,
          fabric.config->probe_filter_replacement, seed),
      region_(mode == DirectoryMode::kRegion ? fabric.config->region_size_bytes
                                             : kLineBytes),
      region_on_(mode == DirectoryMode::kRegion && region_.enabled()) {}

bool DirectoryController::allarm_active_for(LineAddr line) const {
  return mode_ == DirectoryMode::kAllarm && fabric_.allarm_active(line);
}

// ------------------------------------------------------------- plumbing ----

Tick DirectoryController::send(NodeId src, NodeId dst, MsgKind kind,
                               noc::TrafficCause cause, Tick when) {
  return fabric_.mesh->send(src, dst, size_of(kind, *fabric_.config), when,
                            cause);
}

void DirectoryController::grant_at(const Request& r, LineState state,
                                   bool with_data, Tick when) {
  fabric_.at_node(r.from, when, [this, r, state, with_data] {
    fabric_.caches[r.from]->grant(r.line, state, with_data,
                                  fabric_.events->now());
  });
}

void DirectoryController::finish_at(LineAddr line, Tick when) {
  fabric_.at_node(node_, when, [this, line] { release_and_drain(line); });
}

void DirectoryController::release_and_drain(LineAddr line) {
  busy_.erase(line);
  if (region_on_) {
    if (const NodeId* owner = pending_installs_.find(line)) {
      const NodeId o = *owner;
      pending_installs_.erase(line);
      region_install_block(line, o, fabric_.events->now());
      // A spill eviction re-acquired the line; the queue drains when that
      // flow releases it.
      if (busy_.count(line) != 0) return;
    }
  }
  OpQueue* queue = waiting_.find(line);
  if (queue == nullptr) return;
  while (!queue->empty()) {
    QueuedOp op = queue->pop();
    if (std::holds_alternative<Request>(op)) {
      const Request r = std::get<Request>(op);
      if (queue->empty()) waiting_.erase(line);
      busy_.insert(line);
      start_request(r, fabric_.events->now());
      return;
    }
    process_put(std::get<Put>(op), fabric_.events->now());
  }
  waiting_.erase(line);
}

// ----------------------------------------------------------- entry points ----

void DirectoryController::handle_request(const Request& r) {
  ++stats_.requests;
  if (r.from == node_) ++stats_.local_requests; else ++stats_.remote_requests;
  if (occupancy_hist_ != nullptr) occupancy_hist_->record(busy_.size());
  if (!busy_.insert(r.line)) {  // Single probe: inserts unless already busy.
    waiting_[r.line].push(r);
    ++stats_.queued_ops;
    return;
  }
  start_request(r, fabric_.events->now());
}

void DirectoryController::handle_put(const Put& p) {
  if (busy_.count(p.line)) {
    waiting_[p.line].push(p);
    ++stats_.queued_ops;
    return;
  }
  process_put(p, fabric_.events->now());
}

void DirectoryController::start_request(const Request& r, Tick now) {
  const Tick t = now + fabric_.config->probe_filter_latency;
  PfEntry* entry = pf_.lookup(r.line);
  ALLARM_LOG_TRACE("dir", node_, " ", r.write ? "GetM" : "GetS", " line=",
                   r.line, " from=", r.from, entry ? " pf-hit" : " pf-miss");
  if (entry) {
    pf_.touch_entry(entry);
    if (r.write) hit_getm(r, *entry, t); else hit_gets(r, *entry, t);
  } else if (region_on_) {
    region_miss(r, t);
  } else {
    miss(r, t);
  }
}

// --------------------------------------------------------------- PF hits ----

void DirectoryController::hit_gets(const Request& r, PfEntry& entry, Tick t) {
  switch (entry.state) {
    case PfState::kEM:
    case PfState::kOwned: {
      const NodeId owner = entry.owner;
      if (owner == r.from) {
        // The tracked owner claims a miss: it must have lost the line without
        // the directory noticing.  Defensive: refresh from DRAM, keep entry.
        ++stats_.anomalies;
        const Tick t_mem = fabric_.drams[node_]->read(t);
        const Tick t_data =
            send(node_, r.from, MsgKind::kData, noc::TrafficCause::kResponse,
                 t_mem);
        grant_at(r, entry.state == PfState::kEM ? LineState::kExclusive
                                                : LineState::kOwned,
                 /*with_data=*/true, t_data);
        finish_at(r.line, t_data);
        return;
      }
      // Directed downgrade probe to the owner; the owner supplies the line
      // cache-to-cache and acknowledges the directory.
      const Tick t_probe_arr =
          send(node_, owner, MsgKind::kProbeDown, noc::TrafficCause::kProbe, t);
      fabric_.at_node(owner, t_probe_arr, [this, r, owner] {
        const ProbeResult res = fabric_.caches[owner]->probe(
            r.line, ProbeOp::kDowngrade, fabric_.events->now());
        if (!res.hit()) {
          // Owner no longer has it (should not happen under serialization).
          ++stats_.anomalies;
          const Tick t_mem = fabric_.drams[node_]->read(res.done);
          const Tick t_data = send(node_, r.from, MsgKind::kData,
                                   noc::TrafficCause::kResponse, t_mem);
          pf_.update(r.line, PfState::kShared, kInvalidNode);
          grant_at(r, LineState::kShared, true, t_data);
          finish_at(r.line, t_data);
          return;
        }
        const Tick t_data = send(owner, r.from, MsgKind::kAckData,
                                 noc::TrafficCause::kProbeAck, res.done);
        const Tick t_ack = send(owner, node_, MsgKind::kAck,
                                noc::TrafficCause::kProbeAck, res.done);
        // M -> owner keeps a dirty Owned copy; E -> both end up Shared.
        if (res.had == LineState::kModified || res.had == LineState::kOwned) {
          pf_.update(r.line, PfState::kOwned, owner);
        } else {
          pf_.update(r.line, PfState::kShared, kInvalidNode);
        }
        grant_at(r, LineState::kShared, true, t_data);
        finish_at(r.line, std::max(t_ack, t_data));
      });
      return;
    }
    case PfState::kShared: {
      // Clean copies exist somewhere; memory is up to date.
      const Tick t_mem = fabric_.drams[node_]->read(t);
      const Tick t_data = send(node_, r.from, MsgKind::kData,
                               noc::TrafficCause::kResponse, t_mem);
      grant_at(r, LineState::kShared, true, t_data);
      finish_at(r.line, t_data);
      return;
    }
    case PfState::kInvalid: break;
  }
  throw std::logic_error("hit_gets: invalid probe-filter entry state");
}

void DirectoryController::hit_getm(const Request& r, PfEntry& entry, Tick t) {
  switch (entry.state) {
    case PfState::kEM: {
      const NodeId owner = entry.owner;
      if (owner == r.from) {
        // Owner asks for M while tracked as EM: silent-upgrade information
        // was lost somewhere.  Defensive: refresh from DRAM.
        ++stats_.anomalies;
        const Tick t_mem = fabric_.drams[node_]->read(t);
        const Tick t_data = send(node_, r.from, MsgKind::kData,
                                 noc::TrafficCause::kResponse, t_mem);
        grant_at(r, LineState::kModified, true, t_data);
        finish_at(r.line, t_data);
        return;
      }
      const Tick t_probe_arr =
          send(node_, owner, MsgKind::kProbeInv, noc::TrafficCause::kProbe, t);
      fabric_.at_node(owner, t_probe_arr, [this, r, owner] {
        const ProbeResult res = fabric_.caches[owner]->probe(
            r.line, ProbeOp::kInvalidate, fabric_.events->now());
        Tick t_data;
        if (res.hit()) {
          t_data = send(owner, r.from, MsgKind::kAckData,
                        noc::TrafficCause::kProbeAck, res.done);
        } else {
          ++stats_.anomalies;
          const Tick t_mem = fabric_.drams[node_]->read(res.done);
          t_data = send(node_, r.from, MsgKind::kData,
                        noc::TrafficCause::kResponse, t_mem);
        }
        const Tick t_ack = send(owner, node_, MsgKind::kAck,
                                noc::TrafficCause::kProbeAck, res.done);
        pf_.update(r.line, PfState::kEM, r.from);
        grant_at(r, LineState::kModified, true, t_data);
        finish_at(r.line, std::max(t_ack, t_data));
      });
      return;
    }
    case PfState::kOwned:
    case PfState::kShared:
      hit_getm_broadcast(r, entry, t);
      return;
    case PfState::kInvalid: break;
  }
  throw std::logic_error("hit_getm: invalid probe-filter entry state");
}

void DirectoryController::hit_getm_broadcast(const Request& r, PfEntry& entry,
                                             Tick t) {
  // Hammer does not track sharer sets: invalidate everywhere (except the
  // requester).  Acks collect at the home; a dirty owner forwards the line
  // to the requester cache-to-cache.
  BcastState* st = bcast_pool_.acquire();
  st->r = r;
  const bool was_owned = entry.state == PfState::kOwned;

  // Speculative memory read when no dirty owner is guaranteed to supply it.
  if (!r.has_line && !was_owned) {
    st->t_mem = fabric_.drams[node_]->read(t);
    st->used_dram = true;
  }

  const std::uint32_t n_nodes = fabric_.config->num_nodes();
  for (NodeId n = 0; n < n_nodes; ++n) {
    if (n == r.from) continue;
    ++st->expected;
    const Tick t_arr =
        send(node_, n, MsgKind::kProbeInv, noc::TrafficCause::kProbe, t);
    fabric_.at_node(n, t_arr, [this, n, st] {
      const ProbeResult res = fabric_.caches[n]->probe(
          st->r.line, ProbeOp::kInvalidate, fabric_.events->now());
      if (res.dirty()) {
        st->t_data = send(n, st->r.from, MsgKind::kAckData,
                          noc::TrafficCause::kProbeAck, res.done);
        st->data_from_owner = true;
      }
      const Tick t_ack =
          send(n, node_, MsgKind::kAck, noc::TrafficCause::kProbeAck, res.done);
      fabric_.at_node(node_, t_ack, [this, st] {
        st->t_acks_done = std::max(st->t_acks_done, fabric_.events->now());
        if (++st->acks == st->expected) bcast_on_all_acks(st);
      });
    });
  }
}

void DirectoryController::bcast_on_all_acks(BcastState* st) {
  const Request r = st->r;
  pf_.update(r.line, PfState::kEM, r.from);
  Tick t_end;
  if (st->data_from_owner) {
    // Line already flying to the requester; completion still waits for all
    // acks, signalled with a control message.
    const Tick t_cmpl = send(node_, r.from, MsgKind::kComplete,
                             noc::TrafficCause::kResponse, st->t_acks_done);
    t_end = std::max(st->t_data, t_cmpl);
    grant_at(r, LineState::kModified, true, t_end);
  } else if (r.has_line) {
    const Tick t_cmpl = send(node_, r.from, MsgKind::kComplete,
                             noc::TrafficCause::kResponse, st->t_acks_done);
    t_end = t_cmpl;
    grant_at(r, LineState::kModified, false, t_end);
  } else {
    Tick t_mem = st->t_mem;
    if (!st->used_dram) {
      // Tracked owner vanished without supplying data: defensive re-read.
      ++stats_.anomalies;
      t_mem = fabric_.drams[node_]->read(st->t_acks_done);
    }
    const Tick t_data =
        send(node_, r.from, MsgKind::kData, noc::TrafficCause::kResponse,
             std::max(t_mem, st->t_acks_done));
    t_end = t_data;
    grant_at(r, LineState::kModified, true, t_end);
  }
  bcast_pool_.release(st);
  finish_at(r.line, t_end);
}

// --------------------------------------------------------------- PF miss ----

void DirectoryController::miss(const Request& r, Tick t) {
  const bool allarm = allarm_active_for(r.line);

  if (allarm && r.from == node_) {
    // The ALLARM fast path: a local miss allocates nothing and probes nobody.
    ++stats_.local_no_alloc;
    const Tick t_mem = fabric_.drams[node_]->read(t);
    const Tick t_data = send(node_, r.from, MsgKind::kData,
                             noc::TrafficCause::kResponse, t_mem);
    grant_at(r, r.write ? LineState::kModified : LineState::kExclusive, true,
             t_data);
    finish_at(r.line, t_data);
    return;
  }

  // Allocation path: reserve the way up front (the line is busy, so the
  // placeholder entry is invisible until the transaction completes).
  MissState* st = miss_pool_.acquire();
  st->r = r;
  st->t_victim_done = t;
  st->data_src = node_;
  st->final_owner = r.from;

  if (!pf_.has_free_way(r.line)) {
    auto victim = pf_.displace_victim(
        r.line, [this](LineAddr l) { return busy_.count(l) != 0; });
    if (!victim) {
      // Every way pinned by in-flight transactions: retry shortly.  In
      // region mode the retry re-enters through the region hook: the
      // region may have recollected (or been claimed) in the meantime.
      ++stats_.victim_stalls;
      miss_pool_.release(st);
      fabric_.at_node(node_, t + fabric_.config->probe_filter_latency * 8,
                      [this, r] {
                        const Tick now = fabric_.events->now();
                        if (region_on_) region_miss(r, now); else miss(r, now);
                      });
      return;
    }
    if (region_on_) region_note_entry_removed(*victim);
    if (fabric_.config->eviction_gates_reply) {
      st->waiting_victim = true;
      run_eviction(*victim, t, st);
    } else {
      // Eviction-buffer model: the victim invalidation drains in the
      // background; the reply does not wait for it.
      run_eviction(*victim, t, nullptr);
    }
  }
  pf_.insert(r.line, PfState::kEM, r.from);  // Placeholder, fixed on completion.
  if (region_on_) region_.note_block_installed(region_.region_of(r.line));

  if (!allarm) {
    // Baseline: a PF miss implies the line is uncached anywhere.
    st->grant_state = r.write ? LineState::kModified : LineState::kExclusive;
    st->t_serve = fabric_.drams[node_]->read(t);
    st->waiting_main = false;
    miss_try_complete(st);
    return;
  }

  // ALLARM, remote requester: the home core may hold the line untracked.
  // Probe it; the speculative DRAM read proceeds in parallel (Section II-D).
  ALLARM_LOG_TRACE("dir", node_, " ALLARM local probe line=", r.line,
                   " for node ", r.from);
  ++stats_.remote_miss_probes;
  st->parallel_probe = fabric_.config->allarm_parallel_local_probe;
  st->t_mem_spec = st->parallel_probe ? fabric_.drams[node_]->read(t) : 0;
  const Tick t_probe_arr = send(node_, node_, MsgKind::kLocalProbe,
                                noc::TrafficCause::kProbe, t);
  fabric_.at_node(node_, t_probe_arr, [this, st] { miss_local_probe_done(st); });
}

void DirectoryController::miss_local_probe_done(MissState* st) {
  const Request& r = st->r;
  const ProbeResult res = fabric_.caches[node_]->probe(
      r.line, r.write ? ProbeOp::kInvalidate : ProbeOp::kDowngrade,
      fabric_.events->now());
  const Tick t_probe_done = send(node_, node_, MsgKind::kAck,
                                 noc::TrafficCause::kProbeAck, res.done);
  if (!res.hit()) {
    const Tick t_mem = st->parallel_probe
                           ? st->t_mem_spec
                           : fabric_.drams[node_]->read(t_probe_done);
    if (st->parallel_probe && t_probe_done <= t_mem) {
      ++stats_.remote_miss_probe_hidden;
    }
    st->grant_state = r.write ? LineState::kModified : LineState::kExclusive;
    st->t_serve = std::max(t_mem, t_probe_done);
  } else {
    // The home core held the line untracked: it supplies the data
    // cache-to-cache; the speculative DRAM read is discarded.
    ++stats_.remote_miss_probe_hit;
    st->data_kind = MsgKind::kAckData;
    st->data_cause = noc::TrafficCause::kProbeAck;
    st->t_serve = res.done;
    if (!r.write) {
      st->grant_state = LineState::kShared;
      if (res.dirty()) {
        st->final_state = PfState::kOwned;
        st->final_owner = node_;
      } else {
        st->final_state = PfState::kShared;
        st->final_owner = kInvalidNode;
      }
    } else {
      st->grant_state = LineState::kModified;  // Entry stays EM(requester).
    }
  }
  st->waiting_main = false;
  miss_try_complete(st);
}

void DirectoryController::miss_try_complete(MissState* st) {
  if (st->waiting_victim || st->waiting_main) return;
  const LineAddr line = st->r.line;
  if (const PfEntry* e = pf_.peek(line);
      e && (e->state != st->final_state || e->owner != st->final_owner)) {
    pf_.update(line, st->final_state, st->final_owner);
  }
  const Tick t_ready = std::max(st->t_serve, st->t_victim_done);
  const Tick t_data =
      send(st->data_src, st->r.from, st->data_kind, st->data_cause, t_ready);
  grant_at(st->r, st->grant_state, true, t_data);
  miss_pool_.release(st);
  finish_at(line, t_data);
}

// -------------------------------------------------------------- evictions ----

void DirectoryController::run_eviction(const PfEntry& victim, Tick t,
                                       MissState* gated) {
  ALLARM_LOG_TRACE("dir", node_, " evicts entry line=", victim.line,
                   " state=", to_string(victim.state));
  ++stats_.pf_evictions;
  busy_.insert(victim.line);

  EvictState* st = evict_pool_.acquire();
  st->line = victim.line;
  st->gated = gated;

  auto probe_target = [this, t, st](NodeId n) {
    ++st->expected;
    const Tick t_arr =
        send(node_, n, MsgKind::kProbeInv, noc::TrafficCause::kEviction, t);
    ++stats_.eviction_messages;
    fabric_.at_node(n, t_arr, [this, n, st] {
      const ProbeResult res = fabric_.caches[n]->probe(
          st->line, ProbeOp::kInvalidate, fabric_.events->now());
      if (res.hit()) ++stats_.eviction_lines_invalidated;
      const MsgKind ack_kind = res.dirty() ? MsgKind::kAckData : MsgKind::kAck;
      const bool dirty = res.dirty();
      const Tick t_ack = send(n, node_, ack_kind,
                              noc::TrafficCause::kEvictionAck, res.done);
      ++stats_.eviction_messages;
      fabric_.at_node(node_, t_ack, [this, dirty, st] {
        const Tick now = fabric_.events->now();
        if (dirty) {
          fabric_.drams[node_]->write(now);
          ++stats_.eviction_dirty_writebacks;
        }
        st->t_latest = std::max(st->t_latest, now);
        if (++st->acks == st->expected) {
          const LineAddr line = st->line;
          const Tick t_latest = st->t_latest;
          MissState* gated_miss = st->gated;
          evict_pool_.release(st);
          release_and_drain(line);
          if (gated_miss != nullptr) {
            gated_miss->t_victim_done = t_latest;
            gated_miss->waiting_victim = false;
            miss_try_complete(gated_miss);
          }
        }
      });
    });
  };

  // EM entries have a known unique holder; Owned/Shared sharers are unknown
  // under Hammer, so the invalidation broadcasts to every node.
  if (victim.state == PfState::kEM) {
    probe_target(victim.owner);
  } else {
    for (NodeId n = 0; n < fabric_.config->num_nodes(); ++n) {
      probe_target(n);
    }
  }
}

// --------------------------------------------------- region granularity ----

void DirectoryController::region_miss(const Request& r, Tick t) {
  // The region table is part of the directory structure the PF lookup
  // already paid for: the probe_filter_latency charged by start_request
  // covers both, so no extra latency is modeled here.
  const region::RegionNum rn = region_.region_of(r.line);
  if (region::RegionEntry* entry = region_.lookup(rn)) {
    if (entry->owner == r.from) {
      // Region hit: the owner misses inside its private region.  Granted
      // E/M from home memory with no per-block entry.  A set presence bit
      // means a grant we never saw die — defensive, the re-grant is
      // idempotent.
      if (!region_.mark_present(*entry, r.line)) ++stats_.anomalies;
      region_serve(r, t);
      return;
    }
    region_collapse(r, region_.collapse(rn, r.from), t);
    return;
  }
  if (region_.note_miss_can_privatize(rn, r.from)) {
    region::RegionEntry& entry = region_.install(rn, r.from);
    region_.mark_present(entry, r.line);
    ALLARM_LOG_TRACE("dir", node_, " region install rn=", rn, " owner=",
                     r.from);
    region_serve(r, t);
    return;
  }
  miss(r, t);
}

void DirectoryController::region_serve(const Request& r, Tick t) {
  const Tick t_mem = fabric_.drams[node_]->read(t);
  const Tick t_data =
      send(node_, r.from, MsgKind::kData, noc::TrafficCause::kResponse, t_mem);
  grant_at(r, r.write ? LineState::kModified : LineState::kExclusive, true,
           t_data);
  finish_at(r.line, t_data);
}

void DirectoryController::region_collapse(const Request& r,
                                          region::RegionEntry victim, Tick t) {
  ALLARM_LOG_TRACE("dir", node_, " region collapse line=", r.line, " owner=",
                   victim.owner, " sharer=", r.from);
  const region::RegionGeometry& g = region_.geometry();
  const LineAddr base = g.base_line(region_.region_of(r.line));
  const unsigned my_slot = g.slot_of(r.line);
  for (unsigned s = 0; s < g.lines_per_region; ++s) {
    if (s == my_slot || ((victim.presence >> s) & 1) == 0) continue;
    const LineAddr line = base + s;
    if (busy_.count(line) != 0) {
      // The only transaction a region-covered line can carry is a region
      // grant to the owner still in flight; its per-block entry installs
      // when the line is released (see release_and_drain), before any
      // queued operation can run against the un-tracked window.
      pending_installs_[line] = victim.owner;
    } else {
      region_install_block(line, victim.owner, t);
    }
  }
  if (((victim.presence >> my_slot) & 1) == 0) {
    miss(r, t);
    return;
  }
  // The owner holds the requested line under the region grant: invalidate
  // it first (retrieving dirty data), then run the ordinary miss against
  // clean memory state.  Installing an entry and faking a PF hit instead
  // would lose the owner's copy on the no-free-way retry path.
  const NodeId owner = victim.owner;
  const Tick t_probe =
      send(node_, owner, MsgKind::kProbeInv, noc::TrafficCause::kProbe, t);
  fabric_.at_node(owner, t_probe, [this, r, owner] {
    const ProbeResult res = fabric_.caches[owner]->probe(
        r.line, ProbeOp::kInvalidate, fabric_.events->now());
    // Region grants are E/M and never die silently; a clean miss here
    // means a writeback raced ahead of us.
    if (!res.hit()) ++stats_.anomalies;
    const bool dirty = res.dirty();
    const Tick t_ack =
        send(owner, node_, dirty ? MsgKind::kAckData : MsgKind::kAck,
             noc::TrafficCause::kProbeAck, res.done);
    fabric_.at_node(node_, t_ack, [this, r, dirty] {
      const Tick now = fabric_.events->now();
      if (dirty) fabric_.drams[node_]->write(now);
      miss(r, now);
    });
  });
}

void DirectoryController::region_install_block(LineAddr line, NodeId owner,
                                               Tick t) {
  if (pf_.peek(line) != nullptr) {
    ++stats_.anomalies;  // Dual coverage; the PF entry wins (looked up first).
    return;
  }
  if (pf_.has_free_way(line)) {
    pf_.insert(line, PfState::kEM, owner);
    region_.note_block_installed(region_.region_of(line));
    ++region_.stats_mut().collapse_block_installs;
    return;
  }
  // No way free for the displaced block: invalidate the owner's copy
  // instead of tracking it (a collapse spill, reusing the eviction flow).
  ++region_.stats_mut().collapse_spills;
  PfEntry spill;
  spill.line = line;
  spill.state = PfState::kEM;
  spill.owner = owner;
  run_eviction(spill, t, nullptr);
}

bool DirectoryController::region_put(const Put& p, Tick t) {
  region::RegionEntry* entry = region_.lookup(region_.region_of(p.line));
  if (entry == nullptr || entry->owner != p.from) return false;
  if (!region_.clear_present(*entry, p.line)) return false;
  if (p.dirty) fabric_.drams[node_]->write(t);
  return true;
}

void DirectoryController::region_note_entry_removed(const PfEntry& removed) {
  const auto outcome = region_.note_block_removed(
      region_.region_of(removed.line), removed.state == PfState::kEM,
      removed.owner);
  if (outcome == region::RegionDirectory::Removal::kUntracked) {
    ++stats_.anomalies;
  }
}

// ------------------------------------------------------------- writebacks ----

void DirectoryController::process_put(const Put& p, Tick now) {
  const Tick t = now + fabric_.config->probe_filter_latency;
  PfEntry* entry = pf_.lookup(p.line);
  if (entry && entry->owner == p.from && entry->state == PfState::kEM) {
    // Sole owner gave the line up: memory gets the data, the entry is freed
    // (the paper's optimized baseline behaviour).
    if (p.dirty) fabric_.drams[node_]->write(t);
    const PfEntry removed = *entry;
    pf_.erase_entry(entry);
    if (region_on_) region_note_entry_removed(removed);
    ++stats_.puts_owner;
  } else if (entry && entry->owner == p.from &&
             entry->state == PfState::kOwned) {
    // Dirty-shared owner wrote back; unknown sharers may remain.
    if (p.dirty) fabric_.drams[node_]->write(t);
    pf_.update_entry(entry, PfState::kShared, kInvalidNode);
    ++stats_.puts_owner;
  } else if (entry) {
    // Raced with an ownership change; the data (if any) is already stale
    // with respect to the new owner, but writing it back is harmless
    // because memory is stale anyway while an M copy exists.
    ++stats_.puts_stale;
    if (p.dirty) fabric_.drams[node_]->write(t);
  } else if (region_on_ && region_put(p, t)) {
    // Owner writeback of a region-granted line: the presence bit was
    // cleared (and memory updated when dirty) by region_put.
  } else {
    // No entry: an ALLARM-untracked home line, or the entry was already
    // evicted (the eviction probe consumed the cached copy via the
    // writeback buffer).
    if (p.dirty) fabric_.drams[node_]->write(t);
    if (mode_ == DirectoryMode::kAllarm && p.from == node_) {
      ++stats_.puts_local_untracked;
    } else {
      ++stats_.puts_stale;
    }
  }
  const Tick t_ack =
      send(node_, p.from, MsgKind::kPutAck, noc::TrafficCause::kResponse, t);
  fabric_.at_node(p.from, t_ack, [this, p] {
    fabric_.caches[p.from]->put_ack(p.line, fabric_.events->now());
  });
}

void DirectoryController::clear() {
  pf_.clear();
  region_.clear();
  pending_installs_.clear();
  busy_.clear();
  waiting_.clear();
  miss_pool_.reclaim_all();
  bcast_pool_.reclaim_all();
  evict_pool_.reclaim_all();
}

}  // namespace allarm::coherence
