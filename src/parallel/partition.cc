#include "parallel/partition.hh"

#include <stdexcept>
#include <string>

#include "noc/mesh.hh"

namespace allarm::parallel {

std::vector<NodeId> Partition::nodes_of(std::uint32_t shard) const {
  std::vector<NodeId> out;
  for (std::size_t n = 0; n < owner.size(); ++n) {
    if (owner[n] == shard) out.push_back(static_cast<NodeId>(n));
  }
  return out;
}

Partition make_partition(const SystemConfig& config, std::uint32_t shards) {
  const std::uint32_t width = config.mesh_width;
  if (shards == 0 || shards > width || width % shards != 0) {
    throw std::invalid_argument(
        "parallel: shard count " + std::to_string(shards) +
        " must divide mesh width " + std::to_string(width) +
        " (contiguous equal-width column blocks)");
  }
  Partition p;
  p.shards = shards;
  p.owner.resize(config.num_nodes());
  const std::uint32_t cols_per_shard = width / shards;
  for (std::uint32_t n = 0; n < config.num_nodes(); ++n) {
    const std::uint32_t x = n % width;
    p.owner[n] = static_cast<std::uint16_t>(x / cols_per_shard);
  }
  return p;
}

Tick lookahead(const SystemConfig& config, const Partition& partition) {
  if (partition.shards <= 1) return kTickNever;
  const noc::Mesh mesh(config);
  Tick min_latency = kTickNever;
  const std::uint32_t nodes = config.num_nodes();
  for (std::uint32_t a = 0; a < nodes; ++a) {
    for (std::uint32_t b = 0; b < nodes; ++b) {
      if (partition.owner[a] == partition.owner[b]) continue;
      const Tick t = mesh.uncontended_latency(static_cast<NodeId>(a),
                                              static_cast<NodeId>(b),
                                              config.control_msg_bytes);
      if (t < min_latency) min_latency = t;
    }
  }
  // The message is followed by at least a directory (probe-filter) access
  // before the destination shard reacts outward again.
  return min_latency + config.probe_filter_latency;
}

}  // namespace allarm::parallel
