// Parallel single-simulation (PDES) engine: configuration, statistics and
// the lax (slack-bounded) execution loop.  See docs/PARALLEL.md.
//
// Two modes over the lane-sharded EventQueue (sim/event_queue.hh):
//
//  * barrier — the queue's sharded run_one() pops the globally minimal
//    (tick, seq) across lanes, so execution order — and therefore every
//    report byte and the sim.events count — is IDENTICAL to the serial
//    kernel at any shard count.  The serial kernel stays the oracle; this
//    mode is the deterministic parallel decomposition it validates.
//
//  * lax — Graphite-style slack-bounded synchronization: each lane runs a
//    window [W, W + slack) to completion before any barrier, cross-lane
//    events accumulate in per-destination mailboxes and are flushed (in
//    deterministic (tick, seq) order) at the window barrier.  A mailboxed
//    event whose tick falls inside the already-executed window is WARPED
//    to the window edge — that warp is the mode's accuracy loss, counted
//    in ParStats and studied in docs/PARALLEL.md's error-bound table.
//    Still deterministic run-to-run, but NOT byte-identical to serial.
//
// Host-thread strategy: both modes use serialized event execution.  The
// simulated machine's protocol components interact synchronously across
// nodes within a single event (a directory probes a remote cache's state
// in the same call stack; the mesh keeps one global per-link contention
// ledger), so running two lanes' events concurrently would race on
// simulated state and break the byte-exactness contract that every other
// subsystem leans on.  The decomposition work — ownership partitioning,
// cross-lane mailboxes, lookahead windows — is real and is what a future
// concurrent backend needs; today the ThreadPool is used where it is
// provably safe: flushing mailboxes into *disjoint* lanes concurrently,
// and splitting the host thread budget between sweep jobs and shards
// (split_budget).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "parallel/partition.hh"
#include "sim/event_queue.hh"

namespace allarm::runner {
class ThreadPool;
}

namespace allarm::parallel {

/// Synchronization discipline for a sharded run.
enum class ParMode : std::uint8_t {
  kBarrier,  ///< Conservative; byte-identical to the serial oracle.
  kLax,      ///< Slack-bounded; deterministic but approximate.
};

std::string to_string(ParMode mode);
/// Parses "barrier" / "lax"; throws std::invalid_argument otherwise.
ParMode par_mode_from_string(const std::string& name);

/// Parallel-run configuration carried on RunOptions / RunRequest /
/// SweepSpec.  Default (shards <= 1) means the plain serial kernel.
struct ParConfig {
  std::uint32_t shards = 1;
  ParMode mode = ParMode::kBarrier;
  /// Lax window width in ticks; 0 derives 4x the partition lookahead.
  Tick slack = 0;

  bool enabled() const { return shards > 1; }
};

/// Observability for a sharded run (exposed on RunResult::par, NOT in the
/// serialized reports — barrier-mode reports must stay byte-identical to
/// serial, so parallel-only stats ride outside them, like wall_ns).
struct ParStats {
  std::uint32_t shards = 1;
  ParMode mode = ParMode::kBarrier;
  Tick lookahead = 0;            ///< Modelled cross-shard bound (ticks).
  Tick slack = 0;                ///< Lax window width actually used.
  std::uint64_t windows = 0;     ///< Lax windows executed.
  std::uint64_t cross_events = 0;   ///< Cross-lane schedules observed.
  Tick min_cross_delta = kTickNever;  ///< Min observed (when - now) delta.
  std::uint64_t mailboxed = 0;   ///< Lax: events routed via mailboxes.
  std::uint64_t warped = 0;      ///< Lax: ticks warped to a window edge.
  Tick max_warp = 0;             ///< Lax: largest single warp (ticks).
  std::uint64_t clamped = 0;     ///< Lax: past schedules clamped to now().
};

/// Host threads each concurrent sweep job may devote to shard work when
/// `jobs` jobs share one pool: floor division, never below 1.  The sweep
/// runner sizes its pool with this so jobs x shards never oversubscribes
/// the user's --jobs budget.
std::uint32_t split_budget(std::uint32_t jobs, std::uint32_t shards);

/// Runs a sharded queue to completion in lax mode.  The queue must already
/// be sharded (set_sharding) and populated; `pool` (optional) flushes
/// mailboxes into disjoint lanes concurrently.  Returns the run's stats.
ParStats run_lax(sim::EventQueue& events, const ParConfig& config,
                 Tick lookahead_ticks, runner::ThreadPool* pool);

}  // namespace allarm::parallel
