// Node-to-shard partitioning and conservative lookahead for the parallel
// single-simulation engine (docs/PARALLEL.md).
//
// Nodes are split into contiguous mesh-column blocks: shard k owns columns
// [k*W/S, (k+1)*W/S).  Column blocks keep every shard's nodes physically
// adjacent on the mesh, so the minimum cross-shard distance — the quantity
// the conservative lookahead window is derived from — is one mesh hop
// between neighbouring columns, and vertical (intra-column) traffic never
// crosses a shard boundary at all.
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"

namespace allarm::parallel {

/// A node -> shard assignment.
struct Partition {
  std::uint32_t shards = 1;
  std::vector<std::uint16_t> owner;  ///< owner[node] = shard index.

  /// Nodes owned by `shard` (ascending NodeId).
  std::vector<NodeId> nodes_of(std::uint32_t shard) const;
};

/// Splits the mesh into `shards` contiguous column blocks.  Requires
/// 1 <= shards <= mesh_width and shards | mesh_width (equal-width blocks
/// keep the lookahead uniform); throws std::invalid_argument otherwise.
Partition make_partition(const SystemConfig& config, std::uint32_t shards);

/// Conservative lookahead window in ticks: the minimum simulated latency of
/// any cross-shard interaction.  Every cross-shard protocol step travels the
/// mesh (>= 1 hop between adjacent columns: link + router + one
/// control-flit serialization) and then accesses the destination node's
/// directory (probe-filter lookup), so an event executing at time T on one
/// shard cannot schedule work on another shard before T + lookahead.
/// Computed from uncontended mesh latency over all cross-shard node pairs
/// — exact, not an estimate, because contention only ever adds latency.
Tick lookahead(const SystemConfig& config, const Partition& partition);

}  // namespace allarm::parallel
