#include "parallel/engine.hh"

#include <algorithm>
#include <stdexcept>

#include "obs/timeline.hh"
#include "runner/thread_pool.hh"

namespace allarm::parallel {

std::string to_string(ParMode mode) {
  return mode == ParMode::kBarrier ? "barrier" : "lax";
}

ParMode par_mode_from_string(const std::string& name) {
  if (name == "barrier") return ParMode::kBarrier;
  if (name == "lax") return ParMode::kLax;
  throw std::invalid_argument("parallel: unknown --par-mode '" + name +
                              "' (expected barrier or lax)");
}

std::uint32_t split_budget(std::uint32_t jobs, std::uint32_t shards) {
  if (shards <= 1) return jobs;
  return std::max<std::uint32_t>(1, jobs / shards);
}

namespace {

/// One undelivered cross-lane event, parked at a window barrier.
struct Parked {
  Tick when;
  std::uint64_t seq;
  sim::Event event;
};

struct Mailboxes {
  std::vector<std::vector<Parked>> boxes;
  std::uint64_t total = 0;

  static void hook(void* ctx, std::uint32_t /*src*/, std::uint32_t dst,
                   Tick when, std::uint64_t seq, sim::Event&& e) {
    auto* self = static_cast<Mailboxes*>(ctx);
    self->boxes[dst].push_back(Parked{when, seq, std::move(e)});
    ++self->total;
  }
};

}  // namespace

ParStats run_lax(sim::EventQueue& events, const ParConfig& config,
                 Tick lookahead_ticks, runner::ThreadPool* pool) {
  if (!events.sharded()) {
    throw std::logic_error("parallel: run_lax needs a sharded queue");
  }
  ParStats stats;
  stats.shards = events.lanes();
  stats.mode = ParMode::kLax;
  stats.lookahead = lookahead_ticks;
  stats.slack = config.slack != 0 ? config.slack
                                  : (lookahead_ticks == kTickNever
                                         ? Tick{1}
                                         : lookahead_ticks * 4);
  if (stats.slack == 0) stats.slack = 1;

  Mailboxes mail;
  mail.boxes.resize(events.lanes());
  events.set_cross_lane_hook(&Mailboxes::hook, &mail);
  events.set_lax_clamp(true);

  const std::uint32_t lanes = events.lanes();
  // Per-lane warp accumulators: the flush may run on pool workers, and
  // distinct lanes must not share a counter.
  std::vector<std::uint64_t> warped(lanes, 0);
  std::vector<Tick> max_warp(lanes, 0);

  while (true) {
    Tick window;
    std::uint64_t seq;
    if (events.peek_next(window, seq) < 0) break;  // Mailboxes drain below.
    // Window [window, edge]: every lane runs its slice to completion with
    // cross-lane sends parked.  Within the conservative lookahead this
    // reorders nothing; beyond it (slack > lookahead) a parked event may
    // arrive "late" and get warped to the edge.
    const Tick edge = window + stats.slack - 1;
    {
      OBS_SPAN_N("par.window", "par", stats.windows);
      for (std::uint32_t l = 0; l < lanes; ++l) {
        events.run_lane_until(l, edge);
      }
    }
    ++stats.windows;

    // Flush barrier: deliver every mailbox in deterministic (tick, seq)
    // order.  Distinct destination lanes touch disjoint queue state, so
    // with a pool the per-lane flushes run concurrently — the one place
    // serialized-execution mode can already use host parallelism safely.
    const auto flush = [&mail, &warped, &max_warp, &events,
                        edge](std::uint32_t l) {
      auto& box = mail.boxes[l];
      std::sort(box.begin(), box.end(), [](const Parked& a, const Parked& b) {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
      });
      for (Parked& p : box) {
        Tick when = p.when;
        if (when <= edge) {
          // The destination lane already executed past this tick; deliver
          // at the window edge instead of rewinding.  This warp is the lax
          // mode's entire accuracy loss — counted, bounded by slack.
          const Tick warp = edge + 1 - when;
          when = edge + 1;
          ++warped[l];
          if (warp > max_warp[l]) max_warp[l] = warp;
        }
        events.inject(l, when, p.seq, std::move(p.event));
      }
      box.clear();
    };
    OBS_SPAN_N("par.flush", "par", stats.windows - 1);
    if (pool != nullptr && lanes > 1) {
      for (std::uint32_t l = 0; l < lanes; ++l) {
        pool->submit([&flush, l] { flush(l); });
      }
      pool->wait_idle();
    } else {
      for (std::uint32_t l = 0; l < lanes; ++l) flush(l);
    }
  }

  events.set_cross_lane_hook(nullptr, nullptr);
  events.set_lax_clamp(false);
  for (std::uint32_t l = 0; l < lanes; ++l) {
    stats.warped += warped[l];
    stats.max_warp = std::max(stats.max_warp, max_warp[l]);
  }
  stats.mailboxed = mail.total;
  stats.cross_events = events.cross_lane_stats().events;
  stats.min_cross_delta = events.cross_lane_stats().min_delta;
  stats.clamped = events.cross_lane_stats().lax_clamps;
  return stats;
}

}  // namespace allarm::parallel
