#include "numa/os.hh"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace allarm::numa {

// ------------------------------------------------------- FrameAllocator ----

FrameAllocator::FrameAllocator(std::uint32_t num_nodes,
                               std::uint64_t frames_per_node)
    : frames_per_node_(frames_per_node), pools_(num_nodes) {
  for (auto& p : pools_) p.capacity = frames_per_node;
}

void FrameAllocator::set_node_capacity(std::uint64_t frames) {
  if (frames > frames_per_node_) {
    throw std::invalid_argument("FrameAllocator: capacity exceeds node size");
  }
  for (auto& p : pools_) p.capacity = frames;
}

std::optional<PageNum> FrameAllocator::allocate_on(NodeId node) {
  NodePool& p = pools_.at(node);
  if (p.live >= p.capacity) return std::nullopt;
  ++p.live;
  if (!p.recycled.empty()) {
    const PageNum f = p.recycled.back();
    p.recycled.pop_back();
    return f;
  }
  // Frames are handed out in a scrambled (but deterministic, bijective)
  // order within the node, modelling the fragmented free lists of a
  // long-running OS.  Contiguous virtual regions therefore map onto
  // scattered physical frames, which is what exposes realistic
  // set-conflict behaviour in the set-associative probe filter.
  const std::uint64_t index = p.next_fresh++;
  std::uint64_t scrambled = index;
  if ((frames_per_node_ & (frames_per_node_ - 1)) == 0) {
    // Bijective mix on log2(frames_per_node_) bits.  Multiplication alone
    // would keep the low bits cycling uniformly (an odd multiplier is a
    // bijection on every low-bit slice), so xor-shift rounds are
    // interleaved to diffuse high bits downwards; each step is invertible,
    // hence the whole mapping remains a permutation of the frame range.
    const std::uint64_t mask = frames_per_node_ - 1;
    unsigned width = 0;
    while ((1ull << width) < frames_per_node_) ++width;
    const unsigned half = width / 2 == 0 ? 1 : width / 2;
    std::uint64_t x = index & mask;
    x = (x * 0x9E3779B1ull) & mask;
    x ^= x >> half;
    x = (x * 0x85EBCA77ull) & mask;
    x ^= x >> half;
    scrambled = x & mask;
  }
  return static_cast<PageNum>(node) * frames_per_node_ + scrambled;
}

void FrameAllocator::release(PageNum frame) {
  NodePool& p = pools_.at(node_of_frame(frame));
  if (p.live == 0) throw std::logic_error("FrameAllocator: double release");
  --p.live;
  p.recycled.push_back(frame);
}

std::uint64_t FrameAllocator::free_frames(NodeId node) const {
  const NodePool& p = pools_.at(node);
  return p.capacity - p.live;
}

// ------------------------------------------------------------------ Os ----

Os::Os(const SystemConfig& config, AllocPolicy policy)
    : num_nodes_(config.num_nodes()),
      mesh_width_(config.mesh_width),
      dram_bytes_per_node_(config.dram_bytes_per_node()),
      policy_(policy),
      frames_(config.num_nodes(), config.dram_bytes_per_node() / kPageBytes) {
  if (dram_bytes_per_node_ != 0 &&
      (dram_bytes_per_node_ & (dram_bytes_per_node_ - 1)) == 0) {
    unsigned shift = 0;
    while ((std::uint64_t{1} << shift) < dram_bytes_per_node_) ++shift;
    home_shift_ = shift;
  }
  // Precompute per-node spill orders: self, then nearest by mesh distance.
  spill_orders_.resize(num_nodes_);
  for (NodeId n = 0; n < num_nodes_; ++n) {
    auto& order = spill_orders_[n];
    order.resize(num_nodes_);
    for (NodeId m = 0; m < num_nodes_; ++m) order[m] = m;
    auto dist = [this, n](NodeId m) {
      const int dx = static_cast<int>(n % mesh_width_) -
                     static_cast<int>(m % mesh_width_);
      const int dy = static_cast<int>(n / mesh_width_) -
                     static_cast<int>(m / mesh_width_);
      return std::abs(dx) + std::abs(dy);
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](NodeId a, NodeId b) { return dist(a) < dist(b); });
  }
}

const std::vector<NodeId>& Os::spill_order(NodeId node) const {
  return spill_orders_.at(node);
}

PageNum Os::allocate_frame(PageNum vpage, NodeId toucher) {
  NodeId preferred = toucher;
  if (policy_ == AllocPolicy::kInterleave) {
    preferred = static_cast<NodeId>(interleave_next_++ % num_nodes_);
  }
  (void)vpage;
  for (const NodeId candidate : spill_order(preferred)) {
    if (auto frame = frames_.allocate_on(candidate)) {
      ++stats_.pages_mapped;
      if (candidate == toucher) ++stats_.local_allocations;
      else ++stats_.spilled_allocations;
      return *frame;
    }
  }
  throw std::runtime_error("Os: out of physical memory");
}

const PageNum* Os::touch_slow(const PageKey& key, NodeId node) {
  // Kernel pages interleave round-robin by page index; user pages follow
  // the configured policy.
  const NodeId toucher = key.asid == kKernelAsid
                             ? static_cast<NodeId>(key.vpage % num_nodes_)
                             : node;
  if (touch_observer_ != nullptr) {
    // Report the caller's node, not the derived kernel toucher: replaying
    // the touch from that node recomputes the same placement.
    touch_observer_(touch_observer_ctx_, key.asid, key.vpage, node);
  }
  return page_table_.try_emplace(key, allocate_frame(key.vpage, toucher))
      .first;
}

std::optional<Addr> Os::translate(AddressSpaceId asid, Addr vaddr) const {
  if (vaddr >= kKernelSpaceBase) asid = kKernelAsid;
  const PageNum* frame = page_table_.find(PageKey{asid, page_of(vaddr)});
  if (frame == nullptr) return std::nullopt;
  return addr_of_page(*frame) | (vaddr & (kPageBytes - 1));
}

bool Os::mark_next_touch(AddressSpaceId asid, Addr vaddr) {
  if (vaddr >= kKernelSpaceBase) asid = kKernelAsid;
  const PageKey key{asid, page_of(vaddr)};
  const PageNum* frame = page_table_.find(key);
  if (frame == nullptr) return false;
  frames_.release(*frame);
  page_table_.erase(key);
  ++stats_.next_touch_migrations;
  return true;
}

void Os::place_thread(ThreadId thread, NodeId node) {
  thread_node_[thread] = node;
}

NodeId Os::node_of_thread(ThreadId thread) const {
  const NodeId* node = thread_node_.find(thread);
  return node == nullptr ? kInvalidNode : *node;
}

void Os::migrate_thread(ThreadId thread, NodeId node) {
  thread_node_[thread] = node;
  ++stats_.migrations;
}

// ------------------------------------------------------- RangeRegisters ----

void RangeRegisters::add_range(Addr base, std::uint64_t length) {
  ranges_.emplace_back(base, base + length);
}

void RangeRegisters::clear() { ranges_.clear(); }

bool RangeRegisters::active(Addr paddr) const {
  if (ranges_.empty()) return true;  // No registers configured: always on.
  for (const auto& [lo, hi] : ranges_) {
    if (paddr >= lo && paddr < hi) return true;
  }
  return false;
}

}  // namespace allarm::numa
