// Operating-system memory model: affinity domains, page tables and NUMA
// allocation policies.
//
// The ALLARM detection scheme relies only on the OS contract that a
// first-touch allocation homes a page at the toucher's node whenever that
// node has free frames, spilling to the nearest node otherwise.  This
// module implements that contract (plus next-touch re-homing and an
// interleaved policy used as an ablation baseline).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/config.hh"
#include "common/flat_map.hh"
#include "common/types.hh"

namespace allarm::numa {

/// Page-placement policy.
enum class AllocPolicy : std::uint8_t {
  kFirstTouch,  ///< Home the page at the first toucher's node (Linux default).
  kInterleave,  ///< Round-robin pages across nodes (ablation).
};

/// Per-node physical frame allocator.  Node `n` owns the frame range
/// [n * frames_per_node, (n+1) * frames_per_node).
class FrameAllocator {
 public:
  FrameAllocator(std::uint32_t num_nodes, std::uint64_t frames_per_node);

  /// Caps every node at `frames` usable frames (models memory pressure;
  /// must not exceed the physical frames per node).
  void set_node_capacity(std::uint64_t frames);

  /// Allocates one frame on `node`; returns std::nullopt when full.
  std::optional<PageNum> allocate_on(NodeId node);

  /// Returns the frame to its owning node's free pool.
  void release(PageNum frame);

  std::uint64_t free_frames(NodeId node) const;
  std::uint64_t frames_per_node() const { return frames_per_node_; }

  /// Node owning a physical frame.
  NodeId node_of_frame(PageNum frame) const {
    return static_cast<NodeId>(frame / frames_per_node_);
  }

 private:
  struct NodePool {
    std::uint64_t next_fresh = 0;      ///< Bump pointer within the node range.
    std::uint64_t capacity = 0;        ///< Usable frames.
    std::uint64_t live = 0;            ///< Currently allocated frames.
    std::vector<PageNum> recycled;     ///< Freed frames available for reuse.
  };

  std::uint64_t frames_per_node_;
  std::vector<NodePool> pools_;
};

/// OS statistics relevant to the paper's assumptions (Section II-A).
struct OsStats {
  std::uint64_t pages_mapped = 0;
  std::uint64_t local_allocations = 0;   ///< Homed at the toucher's node.
  std::uint64_t spilled_allocations = 0; ///< Homed elsewhere (best-effort miss).
  std::uint64_t next_touch_migrations = 0;
  std::uint64_t migrations = 0;          ///< Thread migrations performed.
};

/// Start of the global kernel virtual range: addresses at or above this are
/// mapped in a single shared namespace regardless of the requesting address
/// space (modelling the kernel image, page cache and other OS-shared data
/// that a full-system simulation would exercise).
inline constexpr Addr kKernelSpaceBase = 0x4000'0000'0000ull;

/// Address-space id used internally for kernel mappings.
inline constexpr AddressSpaceId kKernelAsid = 0xFFFFFFFFu;

/// Page tables + allocator + a minimal thread scheduler.
class Os {
 public:
  Os(const SystemConfig& config, AllocPolicy policy);

  /// Touches the page containing `vaddr` from `node`, allocating a frame by
  /// policy if unmapped.  Returns the physical address.  Addresses in the
  /// kernel range are mapped in the shared kernel namespace, and are placed
  /// round-robin across nodes irrespective of the allocation policy.
  /// Defined inline: this runs once per simulated access, and the hot case
  /// is a pure page-table hit.
  Addr touch(AddressSpaceId asid, Addr vaddr, NodeId node) {
    const bool kernel = vaddr >= kKernelSpaceBase;
    const PageKey key{kernel ? kKernelAsid : asid, page_of(vaddr)};
    const PageNum* frame = page_table_.find(key);
    if (frame == nullptr) frame = touch_slow(key, node);
    return addr_of_page(*frame) | (vaddr & (kPageBytes - 1));
  }

  /// Translates without allocating; std::nullopt when unmapped.
  std::optional<Addr> translate(AddressSpaceId asid, Addr vaddr) const;

  /// Marks a page for next-touch migration: the current mapping is released
  /// and the next toucher re-homes the page at its own node.
  /// Returns false when the page was never mapped.
  bool mark_next_touch(AddressSpaceId asid, Addr vaddr);

  /// Home node of a physical address (which node's DRAM holds it).
  /// Called per coherence request: uses a shift when the per-node DRAM
  /// size is a power of two (the Table I config) instead of a 64-bit
  /// division.
  NodeId home_of(Addr paddr) const {
    return static_cast<NodeId>(home_shift_ != kNoHomeShift
                                   ? paddr >> home_shift_
                                   : paddr / dram_bytes_per_node_);
  }

  /// Caps usable frames per node (memory-pressure experiments).
  void set_node_capacity(std::uint64_t frames) {
    frames_.set_node_capacity(frames);
  }

  /// Observer of first-touch page mappings: called from the unmapped-page
  /// path only (never on the page-table-hit fast path) with the mapped
  /// key's address space (kernel touches report kKernelAsid), the virtual
  /// page and the toucher's node.  Trace capture installs it around the
  /// workload's setup phase to record the placements replay must
  /// reproduce; pass nullptr to clear.
  using TouchObserver = void (*)(void* ctx, AddressSpaceId asid, PageNum vpage,
                                 NodeId node);
  void set_touch_observer(TouchObserver observer, void* ctx) {
    touch_observer_ = observer;
    touch_observer_ctx_ = ctx;
  }

  // --- Thread scheduling ---------------------------------------------------

  /// Binds `thread` to `node` (initial placement or migration).
  void place_thread(ThreadId thread, NodeId node);

  /// Current node of `thread`; kInvalidNode when never placed.
  NodeId node_of_thread(ThreadId thread) const;

  /// Moves `thread` to `node`, counting a migration.
  void migrate_thread(ThreadId thread, NodeId node);

  const OsStats& stats() const { return stats_; }
  AllocPolicy policy() const { return policy_; }

 private:
  /// Nodes in preference order for an allocation from `node`
  /// (self first, then by Manhattan distance on the mesh, ties by id).
  const std::vector<NodeId>& spill_order(NodeId node) const;

  PageNum allocate_frame(PageNum vpage, NodeId toucher);

  struct PageKey;  // Defined below; touch_slow takes it by reference.

  /// Unmapped-page path of touch(): allocates and maps a frame, returning
  /// the stable page-table slot.
  const PageNum* touch_slow(const PageKey& key, NodeId node);

  struct PageKey {
    AddressSpaceId asid = 0;
    PageNum vpage = 0;
    bool operator==(const PageKey& o) const {
      return asid == o.asid && vpage == o.vpage;
    }
  };
  struct PageKeyHash {
    std::size_t operator()(const PageKey& k) const {
      // FlatMap applies a 64-bit finalizer mix on top; folding asid into
      // the high bits here keeps distinct address spaces distinct.
      return static_cast<std::size_t>(
          (static_cast<std::uint64_t>(k.asid) << 40) ^ k.vpage);
    }
  };

  static constexpr unsigned kNoHomeShift = 0xFF;

  std::uint32_t num_nodes_;
  std::uint32_t mesh_width_;
  std::uint64_t dram_bytes_per_node_;
  unsigned home_shift_ = kNoHomeShift;  ///< log2(dram/node) when a power of 2.
  AllocPolicy policy_;
  FrameAllocator frames_;
  FlatMap<PageKey, PageNum, PageKeyHash> page_table_;
  FlatMap<ThreadId, NodeId> thread_node_;
  TouchObserver touch_observer_ = nullptr;
  void* touch_observer_ctx_ = nullptr;
  std::vector<std::vector<NodeId>> spill_orders_;
  std::uint64_t interleave_next_ = 0;
  OsStats stats_;
};

/// MTRR-like range registers selecting the physical ranges on which ALLARM
/// is active (Section II-C).  An empty register file means "ALLARM applies
/// everywhere" so that the common configuration needs no setup.
class RangeRegisters {
 public:
  /// Adds an active range [base, base + length).
  void add_range(Addr base, std::uint64_t length);

  /// Removes all ranges (back to "active everywhere").
  void clear();

  /// True when ALLARM is active for `paddr`.
  bool active(Addr paddr) const;

  std::size_t num_ranges() const { return ranges_.size(); }

 private:
  std::vector<std::pair<Addr, Addr>> ranges_;  // [base, end)
};

}  // namespace allarm::numa
