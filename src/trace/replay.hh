// Trace replay: an AccessGenerator over one thread's .altr stream, plus
// the assembly of a whole replay WorkloadSpec from a trace's metadata.
//
// Replay of a captured synthetic run is byte-identical to the original:
// each record burns the rng draws the original generator consumed (so the
// thread's rng stream — including the think-jitter draws interleaved with
// it — stays in lockstep), the ThreadSpecs are rebuilt from the captured
// metadata, and the setup phase re-touches the captured first-touch page
// placements in order.  The same trace can instead be replayed onto fewer
// cores or a different allocation policy / directory mode — the access
// stream is fixed; the machine under it changes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/config.hh"
#include "trace/reader.hh"
#include "workload/spec.hh"

namespace allarm::trace {

/// Replays one thread slot's records through the full AccessGenerator
/// contract: devirtualized next_batch, kTickNever horizon (addresses are
/// baked into the trace), and save_state/restore_state via cursor seek —
/// so replay flows through core::System's issue ring allocation-free.
class TraceReplayGenerator final : public workload::AccessGenerator {
 public:
  TraceReplayGenerator(std::shared_ptr<const TraceReader> reader,
                       std::uint32_t slot);

  workload::Access next(Rng& rng, Tick now) override;
  Tick next_batch(Rng& rng, Tick now,
                  workload::Span<workload::Access> out) override;
  Tick validity_horizon(Tick) const override { return kTickNever; }
  void save_state(std::vector<std::uint64_t>& out) const override;
  void restore_state(const std::uint64_t*& data) override;

 private:
  workload::Access decode_one(Rng& rng);

  TraceCursor cursor_;
};

/// Builds the workload that replays every thread of `reader`'s trace.
///
/// `cores` caps the replay placement: thread and setup-touch nodes are
/// remapped node % cores (0 = config.num_cores, i.e. the captured
/// placement).  With the captured core count, policy, directory mode and
/// seed, the replayed run is byte-identical to the capture run.
workload::WorkloadSpec make_replay_workload(
    std::shared_ptr<const TraceReader> reader, const SystemConfig& config,
    std::uint32_t cores = 0);

/// Convenience: open `path` and build its replay workload.
workload::WorkloadSpec load_replay_workload(const std::string& path,
                                            const SystemConfig& config,
                                            std::uint32_t cores = 0);

}  // namespace allarm::trace
