// Streaming .altr trace writer.
//
// Appends records thread by thread into per-thread blocks (each flushed to
// disk the moment it reaches the block payload capacity) and defers the
// meta block, footer index and footer to finish().  Peak resident memory
// is one open block per thread plus the index — never the trace.
//
// Usage (capture, core::System drives the first three steps):
//
//   TraceWriter writer(path);
//   writer.meta().workload = ...;          // any time before finish()
//   auto slot = writer.add_thread(meta);   // before that thread's records
//   writer.record(slot, access, draws);    // any interleaving across slots
//   writer.finish();                       // flush + index + footer + fsync
//
// A writer that is destroyed without finish() leaves a torn file (no
// footer); TraceReader refuses it loudly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/fileio.hh"
#include "trace/format.hh"

namespace allarm::trace {

class TraceWriter {
 public:
  /// `durable` = fsync at finish().  Pass false for ephemeral traces
  /// (e.g. the text-conversion temp file, unlinked moments later) where a
  /// forced disk flush buys nothing.
  explicit TraceWriter(const std::string& path,
                       std::uint32_t block_payload_bytes =
                           kDefaultBlockPayloadBytes,
                       bool durable = true);

  /// The trace's self-description; mutable until finish().
  TraceMeta& meta() { return meta_; }

  /// Registers one thread and returns its slot (the thread-table index
  /// records are filed under).  Must precede the slot's first record().
  std::uint32_t add_thread(const TraceThreadMeta& thread);

  /// Appends one record to `slot`'s stream.  Thread streams may interleave
  /// arbitrarily; per-thread order is preserved.
  void record(std::uint32_t slot, const workload::Access& access,
              std::uint32_t rng_draws);

  /// Records appended to `slot` so far.
  std::uint64_t thread_records(std::uint32_t slot) const;

  /// Flushes open blocks, writes the meta block, index and footer, fsyncs
  /// and closes.  Must be called exactly once.
  void finish();

  const std::string& path() const { return file_.path(); }

 private:
  struct OpenBlock {
    std::string payload;
    std::uint32_t record_count = 0;
    std::uint64_t first_index = 0;  ///< Per-thread index of its first record.
    Addr prev_vaddr = 0;            ///< Delta state; resets per block.
  };

  void flush_block(std::uint32_t slot);
  std::uint64_t write_block(std::uint32_t kind, std::uint32_t thread_slot,
                            std::uint32_t record_count,
                            std::uint64_t first_index,
                            const std::string& payload);

  File file_;
  std::uint32_t block_payload_bytes_;
  bool durable_ = true;
  TraceMeta meta_;
  std::vector<OpenBlock> open_;            ///< One per thread slot.
  std::vector<std::uint64_t> next_index_;  ///< Records appended per slot.
  std::vector<IndexEntry> index_;
  std::uint64_t end_ = 0;  ///< Append offset.
  bool finished_ = false;
};

}  // namespace allarm::trace
