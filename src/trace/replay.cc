#include "trace/replay.hh"

#include <stdexcept>

namespace allarm::trace {

TraceReplayGenerator::TraceReplayGenerator(
    std::shared_ptr<const TraceReader> reader, std::uint32_t slot)
    : cursor_(std::move(reader), slot) {}

workload::Access TraceReplayGenerator::decode_one(Rng& rng) {
  Record record;
  if (!cursor_.next(record)) {
    throw std::logic_error("TraceReplayGenerator: ran past the end of the "
                           "trace");
  }
  // Burn the draws the original generator consumed so the thread's rng
  // stream stays in lockstep with the captured run.
  for (std::uint32_t i = 0; i < record.rng_draws; ++i) rng.next();
  return record.access;
}

workload::Access TraceReplayGenerator::next(Rng& rng, Tick) {
  return decode_one(rng);
}

Tick TraceReplayGenerator::next_batch(Rng& rng, Tick,
                                      workload::Span<workload::Access> out) {
  for (workload::Access& a : out) a = decode_one(rng);
  return kTickNever;
}

void TraceReplayGenerator::save_state(std::vector<std::uint64_t>& out) const {
  out.push_back(cursor_.position());
}

void TraceReplayGenerator::restore_state(const std::uint64_t*& data) {
  cursor_.seek(*data++);
}

workload::WorkloadSpec make_replay_workload(
    std::shared_ptr<const TraceReader> reader, const SystemConfig& config,
    std::uint32_t cores) {
  if (cores == 0) cores = config.num_cores;
  if (cores == 0 || cores > config.num_nodes()) {
    throw std::invalid_argument(
        "make_replay_workload: cores must be in [1, " +
        std::to_string(config.num_nodes()) + "]");
  }
  const TraceMeta& meta = reader->meta();
  if (meta.threads.empty()) {
    throw std::invalid_argument("make_replay_workload: trace has no threads");
  }

  workload::WorkloadSpec spec;
  spec.name = meta.workload;
  for (std::uint32_t slot = 0; slot < meta.threads.size(); ++slot) {
    const TraceThreadMeta& t = meta.threads[slot];
    const std::uint64_t records = reader->thread_records(slot);
    if (t.accesses + t.warmup_accesses != records) {
      throw std::runtime_error(
          "trace " + reader->path() + ": thread " + std::to_string(t.id) +
          " metadata claims " + std::to_string(t.accesses + t.warmup_accesses) +
          " accesses but " + std::to_string(records) + " records are stored");
    }
    workload::ThreadSpec ts;
    ts.id = t.id;
    ts.asid = t.asid;
    ts.node = static_cast<NodeId>(t.node % cores);
    ts.accesses = t.accesses;
    ts.warmup_accesses = t.warmup_accesses;
    ts.think = t.think;
    ts.think_jitter = t.think_jitter;
    ts.start_offset = t.start_offset;
    ts.make_generator = [reader, slot] {
      return std::make_unique<TraceReplayGenerator>(reader, slot);
    };
    spec.threads.push_back(std::move(ts));
  }
  if (!meta.setup.empty()) {
    spec.setup = [reader, cores](numa::Os& os) {
      for (const SetupTouch& touch : reader->meta().setup) {
        os.touch(touch.asid, addr_of_page(touch.vpage),
                 static_cast<NodeId>(touch.node % cores));
      }
    };
  }
  return spec;
}

workload::WorkloadSpec load_replay_workload(const std::string& path,
                                            const SystemConfig& config,
                                            std::uint32_t cores) {
  return make_replay_workload(std::make_shared<TraceReader>(path), config,
                              cores);
}

}  // namespace allarm::trace
