// The .altr binary trace format: on-disk layout and record codec.
//
// An .altr file stores the executed access stream of one simulation run
// (or an externally captured workload) compactly enough to hold
// arbitrarily long traces, and framed so that readers never need more
// than one block of it resident:
//
//   [FileHeader 16 B]
//   [Block]*            32 B BlockHeader + varint-coded payload
//   [IndexEntry]*       24 B per record block, written at finish()
//   [Footer 64 B]       at EOF; points back at the index and meta block
//
// Every block carries a CRC32C of its payload (and of its own header), so
// corruption is detected at the block that suffered it, not as garbage
// records.  Record blocks belong to exactly one thread and reset their
// delta state at the block boundary, which makes each block independently
// decodable: the footer index (offset, first per-thread record index,
// count) gives O(log blocks) random access for replay rewind and
// shard-friendly seeking.
//
// Records are delta/varint coded per thread:
//
//   u8      access type (AccessType)
//   varint  zigzag(vaddr - previous vaddr in this block; first: - 0)
//   varint  rng draws the generator consumed producing this access
//
// The draw count is what makes replay byte-identical to the original
// run: burning exactly those draws keeps the thread's rng stream in
// lockstep, so downstream consumers of the same stream (think-jitter)
// see the same values at the same points.  docs/TRACES.md documents the
// full format and its guarantees.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hh"
#include "workload/generator.hh"

namespace allarm::trace {

// ------------------------------------------------------------ constants ----

/// "ALTRHDR1" / "ALTRFTR1", little-endian.
inline constexpr std::uint64_t kFileMagic = 0x31524448'52544C41ull;
inline constexpr std::uint64_t kFooterMagic = 0x31525446'52544C41ull;
inline constexpr std::uint32_t kFormatVersion = 1;

/// Default record-block payload capacity.  Small enough that a reader's
/// per-cursor residency is negligible, large enough that framing overhead
/// (32 B header + 24 B index entry per block) stays under 0.2%.
inline constexpr std::uint32_t kDefaultBlockPayloadBytes = 48 * 1024;

/// Block kinds.
inline constexpr std::uint32_t kBlockMeta = 1;
inline constexpr std::uint32_t kBlockRecords = 2;

// ------------------------------------------------------- on-disk structs ----

// Plain structs of naturally-aligned integers, memcpy'd whole; fixed
// little-endian by fiat, like the sweep journal (runner/journal.cc).

struct FileHeader {
  std::uint64_t magic = kFileMagic;
  std::uint32_t version = kFormatVersion;
  std::uint32_t header_crc = 0;  ///< CRC32C of the preceding 12 bytes.
};
static_assert(sizeof(FileHeader) == 16, "trace file header layout drifted");

struct BlockHeader {
  std::uint32_t kind = 0;         ///< kBlockMeta or kBlockRecords.
  std::uint32_t thread_slot = 0;  ///< Record blocks: index into the thread table.
  std::uint32_t record_count = 0;
  std::uint32_t payload_size = 0;
  std::uint64_t first_index = 0;  ///< Per-thread index of the first record.
  std::uint32_t payload_crc = 0;  ///< CRC32C of the payload bytes.
  std::uint32_t header_crc = 0;   ///< CRC32C of the preceding 28 bytes.
};
static_assert(sizeof(BlockHeader) == 32, "trace block header layout drifted");

struct IndexEntry {
  std::uint64_t offset = 0;       ///< File offset of the BlockHeader.
  std::uint64_t first_index = 0;  ///< == the block's first_index.
  std::uint32_t thread_slot = 0;
  std::uint32_t record_count = 0;
};
static_assert(sizeof(IndexEntry) == 24, "trace index entry layout drifted");

struct Footer {
  std::uint64_t magic = kFooterMagic;
  std::uint32_t version = kFormatVersion;
  std::uint32_t thread_count = 0;
  std::uint64_t total_records = 0;
  std::uint64_t block_count = 0;   ///< Record blocks (the index length).
  std::uint64_t index_offset = 0;
  std::uint64_t meta_offset = 0;   ///< Offset of the meta block's header.
  std::uint64_t reserved = 0;
  std::uint32_t index_crc = 0;     ///< CRC32C of the index entry array.
  std::uint32_t footer_crc = 0;    ///< CRC32C of the preceding 60 bytes.
};
static_assert(sizeof(Footer) == 64, "trace footer layout drifted");

// ------------------------------------------------------------- metadata ----

/// Everything replay needs to rebuild one captured thread's ThreadSpec.
struct TraceThreadMeta {
  ThreadId id = 0;
  AddressSpaceId asid = 0;
  NodeId node = 0;
  std::uint64_t accesses = 0;         ///< Region-of-interest records.
  std::uint64_t warmup_accesses = 0;  ///< Warm-up records (precede the ROI).
  Tick think = 0;
  double think_jitter = 0.0;
  Tick start_offset = 0;
};

/// One first-touch page placement performed by the captured workload's
/// setup phase.  Replaying these touches, in order, from the recorded
/// toucher nodes reproduces the original page homes under any policy.
struct SetupTouch {
  AddressSpaceId asid = 0;
  PageNum vpage = 0;
  NodeId node = 0;
};

/// The trace's self-description, stored in the meta block.
struct TraceMeta {
  std::string workload;               ///< Captured workload's name.
  std::uint64_t seed = 0;             ///< RunOptions seed of the capture run.
  std::uint32_t directory_mode = 0;   ///< DirectoryMode of the capture run.
  std::uint32_t alloc_policy = 0;     ///< numa::AllocPolicy of the capture run.
  std::vector<TraceThreadMeta> threads;
  std::vector<SetupTouch> setup;
};

/// One decoded trace record.
struct Record {
  workload::Access access;
  std::uint32_t rng_draws = 0;
};

// ------------------------------------------------------------ the codec ----

/// LEB128 unsigned varint.
inline void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>(0x80 | (v & 0x7F)));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Zigzag fold: small magnitudes of either sign become small varints.
inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Bounds-checked decode cursor over one block payload.  Overruns throw —
/// a record that reads past its block is corruption the payload CRC
/// somehow missed, never silent garbage.
struct Decoder {
  const unsigned char* data = nullptr;
  std::size_t size = 0;
  std::size_t pos = 0;

  std::uint8_t byte() {
    if (pos >= size) throw std::runtime_error("trace block: truncated record");
    return static_cast<std::uint8_t>(data[pos++]);
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      const std::uint8_t b = byte();
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
    }
    throw std::runtime_error("trace block: varint overflow");
  }

  bool done() const { return pos >= size; }
};

/// Appends one record to a block payload.  `prev_vaddr` is the previous
/// record's address within the same block (0 at a block boundary).  The
/// delta is computed with wrapping unsigned subtraction (signed
/// subtraction would be UB when addresses straddle 2^63) and zigzagged on
/// the resulting bit pattern — byte-identical to a signed delta wherever
/// one is representable.
inline void encode_record(std::string& out, const Record& r, Addr prev_vaddr) {
  out.push_back(static_cast<char>(r.access.type));
  put_varint(out,
             zigzag(static_cast<std::int64_t>(r.access.vaddr - prev_vaddr)));
  put_varint(out, r.rng_draws);
}

/// Inverse of encode_record; advances `in` and updates `prev_vaddr`.
inline Record decode_record(Decoder& in, Addr& prev_vaddr) {
  Record r;
  const std::uint8_t type = in.byte();
  if (type > static_cast<std::uint8_t>(AccessType::kInstFetch)) {
    throw std::runtime_error("trace block: unknown access type " +
                             std::to_string(type));
  }
  r.access.type = static_cast<AccessType>(type);
  r.access.vaddr =
      prev_vaddr + static_cast<Addr>(unzigzag(in.varint()));  // Wraps.
  const std::uint64_t draws = in.varint();
  if (draws > 0xFFFFFFFFull) {
    throw std::runtime_error("trace block: implausible rng draw count");
  }
  r.rng_draws = static_cast<std::uint32_t>(draws);
  prev_vaddr = r.access.vaddr;
  return r;
}

/// Serializes a TraceMeta into a meta-block payload.
std::string encode_meta(const TraceMeta& meta);

/// Inverse of encode_meta; throws std::runtime_error on malformed input.
TraceMeta decode_meta(const void* data, std::size_t size);

}  // namespace allarm::trace
