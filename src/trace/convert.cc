#include "trace/convert.hh"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/flat_map.hh"

namespace allarm::trace {

namespace {

char letter_of(AccessType t) {
  switch (t) {
    case AccessType::kLoad: return 'L';
    case AccessType::kStore: return 'S';
    case AccessType::kInstFetch: return 'I';
  }
  return '?';
}

AccessType type_of(char c, std::size_t line_no) {
  switch (c) {
    case 'L': case 'l': return AccessType::kLoad;
    case 'S': case 's': return AccessType::kStore;
    case 'I': case 'i': return AccessType::kInstFetch;
    default:
      throw std::runtime_error("trace line " + std::to_string(line_no) +
                               ": unknown access type '" + c + "'");
  }
}

}  // namespace

void write_text_record(std::ostream& out, ThreadId thread,
                       const workload::Access& access) {
  out << thread << ' ' << letter_of(access.type) << ' ' << std::hex
      << access.vaddr << std::dec << '\n';
}

bool TextTraceScanner::next(TextRecord& out) {
  while (std::getline(in_, line_)) {
    ++line_no_;
    const auto hash = line_.find('#');
    if (hash != std::string::npos) line_.erase(hash);
    std::istringstream fields(line_);
    std::uint64_t thread = 0;
    std::string type;
    std::string addr;
    if (!(fields >> thread)) continue;  // Blank / comment-only line.
    if (!(fields >> type >> addr) || type.empty()) {
      throw std::runtime_error("trace line " + std::to_string(line_no_) +
                               ": expected '<tid> <L|S|I> <hex-addr>'");
    }
    out.thread = static_cast<ThreadId>(thread);
    out.access.type = type_of(type[0], line_no_);
    try {
      out.access.vaddr = std::stoull(addr, nullptr, 16);
    } catch (const std::exception&) {
      throw std::runtime_error("trace line " + std::to_string(line_no_) +
                               ": bad address '" + addr + "'");
    }
    return true;
  }
  return false;
}

std::uint64_t convert_text_trace(std::istream& in, TraceWriter& writer) {
  TextTraceScanner scanner(in);
  // Threads the caller pre-registered (e.g. to fix the slot order) are
  // reused, matched by id; unknown ids register on first appearance.
  FlatMap<ThreadId, std::uint32_t> slots;
  for (std::uint32_t slot = 0; slot < writer.meta().threads.size(); ++slot) {
    slots.try_emplace(writer.meta().threads[slot].id, slot);
  }
  TextRecord record;
  std::uint64_t converted = 0;
  while (scanner.next(record)) {
    const std::uint32_t* slot = slots.find(record.thread);
    if (slot == nullptr) {
      TraceThreadMeta meta;
      meta.id = record.thread;
      slot = slots.try_emplace(record.thread, writer.add_thread(meta)).first;
    }
    writer.record(*slot, record.access, /*rng_draws=*/0);
    ++converted;
  }
  return converted;
}

std::uint64_t write_text_trace(const TraceReader& reader, std::ostream& out,
                               std::uint64_t max_records) {
  std::uint64_t written = 0;
  for (std::uint32_t slot = 0; slot < reader.thread_count(); ++slot) {
    const ThreadId tid = reader.meta().threads[slot].id;
    TraceCursor cursor(reader, slot);
    Record record;
    while (cursor.next(record)) {
      if (max_records != 0 && written >= max_records) return written;
      write_text_record(out, tid, record.access);
      ++written;
    }
  }
  return written;
}

}  // namespace allarm::trace
