// Text-trace interop: a streaming scanner for the legacy
// "<tid> <L|S|I> <hex-addr>" line format and converters between it and
// the binary .altr format.
//
// The scanner is the one implementation of the text grammar; the legacy
// whole-file parser (workload::parse_trace) and the streaming converter
// both sit on top of it, so the accepted language — comments, blank
// lines, error messages with line numbers — cannot drift apart.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/types.hh"
#include "trace/reader.hh"
#include "trace/writer.hh"
#include "workload/generator.hh"

namespace allarm::trace {

/// One scanned text-trace line.
struct TextRecord {
  ThreadId thread = 0;
  workload::Access access;
};

/// Formats one record as a text-trace line ("<tid> <L|S|I> <hex-addr>\n").
/// The one implementation of the output grammar: workload::write_trace and
/// write_text_trace below both emit through it.
void write_text_record(std::ostream& out, ThreadId thread,
                       const workload::Access& access);

/// Pull scanner over the text format.  Throws std::runtime_error with a
/// line number on malformed input; memory use is one line.
class TextTraceScanner {
 public:
  explicit TextTraceScanner(std::istream& in) : in_(in) {}

  /// Scans the next record; returns false at end of input.
  bool next(TextRecord& out);

  std::size_t line_number() const { return line_no_; }

 private:
  std::istream& in_;
  std::string line_;
  std::size_t line_no_ = 0;
};

/// Streams a whole text trace into `writer` without materializing it:
/// thread slots the caller pre-registered are reused (matched by id),
/// unknown ids register on first appearance (carrying only the thread id;
/// the caller fills placement/timing metadata afterwards via
/// writer.meta()), and every record is appended with zero rng draws.
/// Returns the number of records converted.
std::uint64_t convert_text_trace(std::istream& in, TraceWriter& writer);

/// Streams `reader`'s records back out as text, thread by thread in slot
/// order (the binary format stores per-thread streams; any cross-thread
/// interleaving of the original text input is not preserved).  `max_records`
/// of 0 means all.  Returns the number of lines written.
std::uint64_t write_text_trace(const TraceReader& reader, std::ostream& out,
                               std::uint64_t max_records = 0);

}  // namespace allarm::trace
