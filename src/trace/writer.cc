#include "trace/writer.hh"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "common/checksum.hh"
#include "common/failpoint.hh"
#include "obs/timeline.hh"

namespace allarm::trace {

namespace {

/// Failpoint poll for the writer's two structural sites (trace.write_block
/// and trace.finish): kDelay sleeps, everything else throws — a torn
/// capture is exercised end-to-end via fileio.pwrite instead.
void trace_failpoint(const char* site, const std::string& path) {
  const auto hit = failpoint::check(site);
  if (!hit) return;
  if (hit.action == failpoint::Action::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(hit.arg));
    return;
  }
  throw std::runtime_error("trace " + path + ": injected fault (failpoint " +
                           site + ")");
}

}  // namespace

TraceWriter::TraceWriter(const std::string& path,
                         std::uint32_t block_payload_bytes, bool durable)
    : file_(path, File::Mode::kCreate),
      block_payload_bytes_(block_payload_bytes),
      durable_(durable) {
  if (block_payload_bytes_ == 0) {
    throw std::invalid_argument("TraceWriter: zero block size");
  }
  FileHeader header;
  header.header_crc = crc32c(&header, offsetof(FileHeader, header_crc));
  file_.write_at(0, &header, sizeof(header));
  end_ = sizeof(header);
}

std::uint32_t TraceWriter::add_thread(const TraceThreadMeta& thread) {
  if (finished_) throw std::logic_error("TraceWriter: already finished");
  meta_.threads.push_back(thread);
  open_.emplace_back();
  next_index_.push_back(0);
  return static_cast<std::uint32_t>(meta_.threads.size() - 1);
}

void TraceWriter::record(std::uint32_t slot, const workload::Access& access,
                         std::uint32_t rng_draws) {
  if (finished_) throw std::logic_error("TraceWriter: already finished");
  OpenBlock& block = open_.at(slot);
  Record r;
  r.access = access;
  r.rng_draws = rng_draws;
  encode_record(block.payload, r, block.prev_vaddr);
  block.prev_vaddr = access.vaddr;
  ++block.record_count;
  ++next_index_[slot];
  if (block.payload.size() >= block_payload_bytes_) flush_block(slot);
}

std::uint64_t TraceWriter::thread_records(std::uint32_t slot) const {
  return next_index_.at(slot);
}

std::uint64_t TraceWriter::write_block(std::uint32_t kind,
                                       std::uint32_t thread_slot,
                                       std::uint32_t record_count,
                                       std::uint64_t first_index,
                                       const std::string& payload) {
  trace_failpoint("trace.write_block", file_.path());
  BlockHeader header;
  header.kind = kind;
  header.thread_slot = thread_slot;
  header.record_count = record_count;
  header.payload_size = static_cast<std::uint32_t>(payload.size());
  header.first_index = first_index;
  header.payload_crc = crc32c(payload);
  header.header_crc = crc32c(&header, offsetof(BlockHeader, header_crc));
  const std::uint64_t offset = end_;
  file_.write_at(end_, &header, sizeof(header));
  file_.write_at(end_ + sizeof(header), payload.data(), payload.size());
  end_ += sizeof(header) + payload.size();
  return offset;
}

void TraceWriter::flush_block(std::uint32_t slot) {
  OpenBlock& block = open_[slot];
  if (block.record_count == 0) return;
  OBS_SPAN_N("trace.flush", "trace", block.record_count);
  IndexEntry entry;
  entry.thread_slot = slot;
  entry.record_count = block.record_count;
  entry.first_index = block.first_index;
  entry.offset = write_block(kBlockRecords, slot, block.record_count,
                             block.first_index, block.payload);
  index_.push_back(entry);
  block.payload.clear();  // Keeps capacity: steady-state flushes reuse it.
  block.first_index = next_index_[slot];
  block.record_count = 0;
  block.prev_vaddr = 0;
}

void TraceWriter::finish() {
  if (finished_) throw std::logic_error("TraceWriter: finish() called twice");
  OBS_SPAN("trace.finish", "trace");
  trace_failpoint("trace.finish", file_.path());
  finished_ = true;

  // Flush in slot order so the tail blocks land deterministically.
  for (std::uint32_t slot = 0; slot < open_.size(); ++slot) {
    flush_block(slot);
  }

  const std::string meta_payload = encode_meta(meta_);
  const std::uint64_t meta_offset =
      write_block(kBlockMeta, 0, 0, 0, meta_payload);

  Footer footer;
  footer.thread_count = static_cast<std::uint32_t>(meta_.threads.size());
  for (const std::uint64_t n : next_index_) footer.total_records += n;
  footer.block_count = index_.size();
  footer.index_offset = end_;
  footer.meta_offset = meta_offset;
  footer.index_crc = crc32c(index_.data(), index_.size() * sizeof(IndexEntry));
  footer.footer_crc = crc32c(&footer, offsetof(Footer, footer_crc));

  file_.write_at(end_, index_.data(), index_.size() * sizeof(IndexEntry));
  end_ += index_.size() * sizeof(IndexEntry);
  file_.write_at(end_, &footer, sizeof(footer));
  end_ += sizeof(footer);
  if (durable_) file_.sync();
  file_.close();
}

}  // namespace allarm::trace
