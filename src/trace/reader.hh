// Streaming .altr trace reader.
//
// A TraceReader validates the file framing once (header, footer, block
// index, meta block — all CRC-checked) and is immutable afterwards, so
// any number of cursors — across threads, across concurrently running
// simulations — can share one reader: all per-position state lives in the
// TraceCursor, and block loads go through positional pread.
//
// A cursor keeps exactly one decoded block resident (its payload buffer
// is reused across block loads, so steady-state iteration allocates
// nothing) and can seek to any per-thread record index in O(log blocks)
// via the footer index — the mechanism TraceReplayGenerator's
// save_state/restore_state rewind uses.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/fileio.hh"
#include "trace/format.hh"

namespace allarm::trace {

class TraceReader {
 public:
  /// Opens and validates `path`; throws std::runtime_error on a missing
  /// footer, bad magic/version, or any framing CRC mismatch.
  explicit TraceReader(const std::string& path);

  const TraceMeta& meta() const { return meta_; }
  std::uint32_t thread_count() const {
    return static_cast<std::uint32_t>(meta_.threads.size());
  }
  std::uint64_t total_records() const { return total_records_; }

  /// Records stored for one thread slot (sum of its blocks' counts).
  std::uint64_t thread_records(std::uint32_t slot) const {
    return thread_records_.at(slot);
  }

  /// All record blocks, in file order.
  const std::vector<IndexEntry>& blocks() const { return index_; }

  /// One thread's record blocks, in stream (first_index) order.
  const std::vector<IndexEntry>& thread_blocks(std::uint32_t slot) const {
    return thread_blocks_.at(slot);
  }

  /// Reads one block's payload into `payload` (reusing its capacity) and
  /// verifies the header and payload CRCs; throws on any mismatch.
  void load_block(const IndexEntry& block, std::string& payload) const;

  std::uint64_t file_bytes() const { return file_size_; }
  const std::string& path() const { return file_.path(); }

 private:
  File file_;
  std::uint64_t file_size_ = 0;  ///< Immutable after open (read-only file).
  TraceMeta meta_;
  std::vector<IndexEntry> index_;
  std::vector<std::vector<IndexEntry>> thread_blocks_;
  std::vector<std::uint64_t> thread_records_;
  std::uint64_t total_records_ = 0;
};

/// One problem found by verify_trace: where, and what is wrong.
struct VerifyIssue {
  std::uint64_t offset = 0;  ///< File offset of the damaged structure.
  std::string what;          ///< Human-readable description.
};

/// Result of a full-file integrity scan.
struct VerifyReport {
  std::uint64_t file_bytes = 0;
  bool framing_ok = false;       ///< Header, footer, index and meta intact.
  std::uint64_t blocks_total = 0;  ///< Record blocks visited.
  std::uint64_t blocks_ok = 0;     ///< CRC-clean AND fully decodable.
  std::uint64_t records_ok = 0;    ///< Records decoded from clean blocks.
  std::vector<VerifyIssue> issues;

  bool ok() const { return framing_ok && issues.empty(); }
};

/// Scans every structure of `path` — header, footer, block index, meta
/// block, and every record block's header CRC, payload CRC and record
/// decode — and reports ALL damage found, never stopping at the first bad
/// block.  When the framing itself is broken (torn capture, corrupt
/// footer/index), falls back to a best-effort sequential block walk from
/// the header so intact leading blocks are still counted.  Only I/O errors
/// (open/pread failures) throw; corruption is data, not an exception.
VerifyReport verify_trace(const std::string& path);

/// Sequential/seekable iterator over one thread's records.
class TraceCursor {
 public:
  /// Owning cursor: keeps the reader alive (the generator/replay case).
  TraceCursor(std::shared_ptr<const TraceReader> reader, std::uint32_t slot);

  /// Non-owning cursor: `reader` must outlive it (stack iteration).
  TraceCursor(const TraceReader& reader, std::uint32_t slot);

  /// Per-thread index of the next record next() returns.
  std::uint64_t position() const { return position_; }

  /// Total records in this thread's stream.
  std::uint64_t size() const { return size_; }

  /// Decodes the next record; returns false at end of stream.
  bool next(Record& out);

  /// Repositions to per-thread record `index` (<= size()).  O(log blocks)
  /// plus a decode-skip within the target block; allocation-free once the
  /// payload buffer reached its high-water capacity.
  void seek(std::uint64_t index);

 private:
  void load(std::size_t block_pos);

  std::shared_ptr<const TraceReader> owner_;  ///< Keep-alive; may be empty.
  const TraceReader* reader_ = nullptr;
  const std::vector<IndexEntry>* blocks_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t size_ = 0;
  std::uint64_t position_ = 0;

  // The one resident block.
  std::string payload_;
  Decoder decoder_{};
  Addr prev_vaddr_ = 0;
  std::size_t block_pos_ = 0;       ///< Index into blocks_ of the loaded block.
  std::uint32_t left_in_block_ = 0; ///< Records not yet decoded from it.
  bool loaded_ = false;
};

}  // namespace allarm::trace
