#include "trace/reader.hh"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>

#include "common/checksum.hh"
#include "common/failpoint.hh"
#include "obs/timeline.hh"

namespace allarm::trace {

namespace {

[[noreturn]] void bad_trace(const std::string& path, const std::string& why) {
  throw std::runtime_error("trace " + path + ": " + why);
}

}  // namespace

TraceReader::TraceReader(const std::string& path)
    : file_(path, File::Mode::kRead), file_size_(file_.size()) {
  const std::uint64_t size = file_size_;
  if (size < sizeof(FileHeader) + sizeof(Footer)) {
    bad_trace(path, "file too short for header + footer");
  }

  FileHeader header;
  file_.read_at(0, &header, sizeof(header));
  if (header.magic != kFileMagic) bad_trace(path, "bad magic");
  if (header.version != kFormatVersion) {
    bad_trace(path, "unsupported version " + std::to_string(header.version));
  }
  if (header.header_crc != crc32c(&header, offsetof(FileHeader, header_crc))) {
    bad_trace(path, "file header checksum mismatch");
  }

  Footer footer;
  file_.read_at(size - sizeof(Footer), &footer, sizeof(footer));
  if (footer.magic != kFooterMagic) {
    bad_trace(path, "missing footer (torn capture? the writer never "
                    "reached finish())");
  }
  if (footer.version != kFormatVersion) {
    bad_trace(path,
              "unsupported footer version " + std::to_string(footer.version));
  }
  if (footer.footer_crc != crc32c(&footer, offsetof(Footer, footer_crc))) {
    bad_trace(path, "footer checksum mismatch");
  }
  // Validate the counted sizes BEFORE doing arithmetic or allocation with
  // them: a crafted footer must fail here as a runtime_error, not as an
  // overflow-defeated geometry check, a length_error from resize, or a
  // multi-GiB speculative allocation.
  if (footer.block_count > size / sizeof(IndexEntry)) {
    bad_trace(path, "footer block count exceeds the file size");
  }
  const std::uint64_t index_bytes = footer.block_count * sizeof(IndexEntry);
  if (footer.index_offset + index_bytes + sizeof(Footer) != size ||
      footer.index_offset > size) {
    bad_trace(path, "footer geometry does not match the file size");
  }

  index_.resize(footer.block_count);
  file_.read_at(footer.index_offset, index_.data(), index_bytes);
  if (footer.index_crc != crc32c(index_.data(), index_bytes)) {
    bad_trace(path, "block index checksum mismatch");
  }

  // Meta block.
  if (footer.meta_offset + sizeof(BlockHeader) > size) {
    bad_trace(path, "meta block offset out of range");
  }
  BlockHeader meta_header;
  file_.read_at(footer.meta_offset, &meta_header, sizeof(meta_header));
  if (meta_header.header_crc !=
      crc32c(&meta_header, offsetof(BlockHeader, header_crc))) {
    bad_trace(path, "meta block header checksum mismatch");
  }
  if (meta_header.kind != kBlockMeta) bad_trace(path, "meta block missing");
  if (footer.meta_offset + sizeof(BlockHeader) + meta_header.payload_size >
      size) {
    bad_trace(path, "meta block payload extends past the file");
  }
  std::string meta_payload(meta_header.payload_size, '\0');
  file_.read_at(footer.meta_offset + sizeof(BlockHeader), meta_payload.data(),
                meta_payload.size());
  if (meta_header.payload_crc != crc32c(meta_payload)) {
    bad_trace(path, "meta block payload checksum mismatch");
  }
  meta_ = decode_meta(meta_payload.data(), meta_payload.size());
  if (meta_.threads.size() != footer.thread_count) {
    bad_trace(path, "thread table does not match the footer");
  }

  // Per-thread block lists and record totals.
  thread_blocks_.resize(meta_.threads.size());
  thread_records_.assign(meta_.threads.size(), 0);
  for (const IndexEntry& entry : index_) {
    if (entry.thread_slot >= meta_.threads.size()) {
      bad_trace(path, "index references an unknown thread slot");
    }
    auto& list = thread_blocks_[entry.thread_slot];
    if (entry.first_index != thread_records_[entry.thread_slot]) {
      bad_trace(path, "thread stream has a gap at block index " +
                          std::to_string(entry.first_index));
    }
    list.push_back(entry);
    thread_records_[entry.thread_slot] += entry.record_count;
    total_records_ += entry.record_count;
  }
  if (total_records_ != footer.total_records) {
    bad_trace(path, "index record count does not match the footer");
  }
}

void TraceReader::load_block(const IndexEntry& block,
                             std::string& payload) const {
  OBS_SPAN_N("trace.read", "trace", block.record_count);
  // trace.read_block failpoint: err throws here; short/torn deliver a
  // truncated payload so the CRC check below fires — the exact failure a
  // torn tail or bad sector produces.  Inactive: one predicted branch.
  std::size_t injected_want = 0;
  if (const auto hit = failpoint::check("trace.read_block")) {
    if (hit.action == failpoint::Action::kDelay) {
      std::this_thread::sleep_for(std::chrono::milliseconds(hit.arg));
    } else if (hit.action == failpoint::Action::kShortIo ||
               hit.action == failpoint::Action::kTornWrite) {
      injected_want = hit.arg != 0 ? static_cast<std::size_t>(hit.arg)
                                   : static_cast<std::size_t>(-1);
    } else {
      bad_trace(file_.path(),
                "injected fault (failpoint trace.read_block) at offset " +
                    std::to_string(block.offset));
    }
  }
  BlockHeader header;
  file_.read_at(block.offset, &header, sizeof(header));
  if (header.header_crc !=
      crc32c(&header, offsetof(BlockHeader, header_crc))) {
    bad_trace(file_.path(), "block header checksum mismatch at offset " +
                                std::to_string(block.offset));
  }
  if (header.kind != kBlockRecords || header.thread_slot != block.thread_slot ||
      header.record_count != block.record_count ||
      header.first_index != block.first_index) {
    bad_trace(file_.path(), "block header disagrees with the footer index "
                            "at offset " + std::to_string(block.offset));
  }
  if (block.offset + sizeof(header) + header.payload_size > file_size_) {
    bad_trace(file_.path(), "block payload extends past the file at offset " +
                                std::to_string(block.offset));
  }
  payload.resize(header.payload_size);
  std::size_t want = payload.size();
  if (injected_want != 0) {
    want = injected_want < want ? injected_want : want / 2;
  }
  file_.read_at(block.offset + sizeof(header), payload.data(), want);
  if (want != payload.size() || header.payload_crc != crc32c(payload)) {
    bad_trace(file_.path(), "block payload checksum mismatch at offset " +
                                std::to_string(block.offset));
  }
}

// -------------------------------------------------------------- verify ----

namespace {

/// Decodes all `count` records of a CRC-clean payload; throws on malformed
/// bytes (a CRC collision or an encoder bug — either way worth surfacing).
void decode_all_records(std::uint32_t count, const std::string& payload) {
  Decoder decoder{reinterpret_cast<const unsigned char*>(payload.data()),
                  payload.size(), 0};
  Addr prev_vaddr = 0;
  Record scratch;
  for (std::uint32_t i = 0; i < count; ++i) {
    scratch = decode_record(decoder, prev_vaddr);
  }
  (void)scratch;
}

}  // namespace

VerifyReport verify_trace(const std::string& path) {
  VerifyReport report;
  File file(path, File::Mode::kRead);
  report.file_bytes = file.size();

  // Framing first: a TraceReader open validates the header, footer, block
  // index and meta block in one pass.
  std::unique_ptr<TraceReader> reader;
  std::string framing_error;
  try {
    reader = std::make_unique<TraceReader>(path);
    report.framing_ok = true;
  } catch (const std::exception& e) {
    framing_error = e.what();
  }

  if (reader) {
    // Index-driven scan: every record block the footer knows about, each
    // checked independently so one bad sector reports one issue, not a
    // truncated scan.
    std::string payload;
    for (const IndexEntry& block : reader->blocks()) {
      ++report.blocks_total;
      try {
        reader->load_block(block, payload);
        decode_all_records(block.record_count, payload);
        ++report.blocks_ok;
        report.records_ok += block.record_count;
      } catch (const std::exception& e) {
        report.issues.push_back(VerifyIssue{block.offset, e.what()});
      }
    }
    return report;
  }

  // Broken framing (torn capture, corrupt footer/index): record why, then
  // walk blocks sequentially from the file header — block headers are
  // self-describing, so intact leading blocks are still counted and the
  // walk pinpoints where the file stops making sense.
  report.issues.push_back(VerifyIssue{0, framing_error});
  if (report.file_bytes < sizeof(FileHeader)) return report;
  FileHeader header;
  file.read_at(0, &header, sizeof(header));
  if (header.magic != kFileMagic ||
      header.header_crc != crc32c(&header, offsetof(FileHeader, header_crc))) {
    report.issues.push_back(
        VerifyIssue{0, "file header damaged; cannot walk blocks"});
    return report;
  }
  std::uint64_t offset = sizeof(FileHeader);
  std::string payload;
  while (offset + sizeof(BlockHeader) <= report.file_bytes) {
    BlockHeader bh;
    file.read_at(offset, &bh, sizeof(bh));
    if (bh.header_crc != crc32c(&bh, offsetof(BlockHeader, header_crc))) {
      report.issues.push_back(VerifyIssue{
          offset, "sequential walk stopped: no valid block header here "
                  "(torn tail, or damage spanning a block header)"});
      break;
    }
    const std::uint64_t payload_offset = offset + sizeof(bh);
    if (payload_offset + bh.payload_size > report.file_bytes) {
      report.issues.push_back(
          VerifyIssue{offset, "block payload extends past the file"});
      break;
    }
    payload.resize(bh.payload_size);
    file.read_at(payload_offset, payload.data(), payload.size());
    if (bh.kind == kBlockRecords) {
      ++report.blocks_total;
      if (bh.payload_crc != crc32c(payload)) {
        report.issues.push_back(
            VerifyIssue{offset, "block payload checksum mismatch"});
      } else {
        try {
          decode_all_records(bh.record_count, payload);
          ++report.blocks_ok;
          report.records_ok += bh.record_count;
        } catch (const std::exception& e) {
          report.issues.push_back(VerifyIssue{offset, e.what()});
        }
      }
    } else if (bh.kind == kBlockMeta) {
      if (bh.payload_crc != crc32c(payload)) {
        report.issues.push_back(
            VerifyIssue{offset, "meta block payload checksum mismatch"});
      }
    } else {
      report.issues.push_back(VerifyIssue{
          offset, "unknown block kind " + std::to_string(bh.kind)});
      break;
    }
    offset = payload_offset + bh.payload_size;
  }
  return report;
}

// -------------------------------------------------------------- cursor ----

TraceCursor::TraceCursor(std::shared_ptr<const TraceReader> reader,
                         std::uint32_t slot)
    : owner_(std::move(reader)),
      reader_(owner_.get()),
      blocks_(&reader_->thread_blocks(slot)),
      slot_(slot),
      size_(reader_->thread_records(slot)) {}

TraceCursor::TraceCursor(const TraceReader& reader, std::uint32_t slot)
    : reader_(&reader),
      blocks_(&reader_->thread_blocks(slot)),
      slot_(slot),
      size_(reader_->thread_records(slot)) {}

void TraceCursor::load(std::size_t block_pos) {
  const IndexEntry& block = (*blocks_)[block_pos];
  reader_->load_block(block, payload_);
  decoder_ = Decoder{reinterpret_cast<const unsigned char*>(payload_.data()),
                     payload_.size(), 0};
  prev_vaddr_ = 0;
  block_pos_ = block_pos;
  left_in_block_ = block.record_count;
  loaded_ = true;
}

bool TraceCursor::next(Record& out) {
  if (position_ >= size_) return false;
  if (!loaded_ || left_in_block_ == 0) {
    load(loaded_ ? block_pos_ + 1 : 0);
  }
  out = decode_record(decoder_, prev_vaddr_);
  --left_in_block_;
  ++position_;
  return true;
}

void TraceCursor::seek(std::uint64_t index) {
  if (index > size_) {
    throw std::out_of_range("TraceCursor: seek past end of stream");
  }
  position_ = index;
  loaded_ = false;
  left_in_block_ = 0;
  if (index >= size_) return;  // Next next() returns false.

  // Last block whose first_index <= index.
  const auto it = std::upper_bound(
      blocks_->begin(), blocks_->end(), index,
      [](std::uint64_t i, const IndexEntry& b) { return i < b.first_index; });
  const std::size_t block_pos =
      static_cast<std::size_t>(it - blocks_->begin()) - 1;
  load(block_pos);

  // Decode-skip to the target record.  Skipping burns no rng state — the
  // caller owns rng positioning (System's replay path restores its own
  // snapshot); seek only moves the stream.
  Record scratch;
  for (std::uint64_t i = (*blocks_)[block_pos].first_index; i < index; ++i) {
    scratch = decode_record(decoder_, prev_vaddr_);
    --left_in_block_;
  }
}

}  // namespace allarm::trace
