#include "trace/format.hh"

#include <cstring>

namespace allarm::trace {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t get_u32(Decoder& in) {
  if (in.size - in.pos < 4) throw std::runtime_error("trace meta truncated");
  std::uint32_t v = 0;
  std::memcpy(&v, in.data + in.pos, sizeof(v));
  in.pos += sizeof(v);
  return v;
}

std::uint64_t get_u64(Decoder& in) {
  if (in.size - in.pos < 8) throw std::runtime_error("trace meta truncated");
  std::uint64_t v = 0;
  std::memcpy(&v, in.data + in.pos, sizeof(v));
  in.pos += sizeof(v);
  return v;
}

}  // namespace

std::string encode_meta(const TraceMeta& meta) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(meta.workload.size()));
  out.append(meta.workload);
  put_u64(out, meta.seed);
  put_u32(out, meta.directory_mode);
  put_u32(out, meta.alloc_policy);

  put_u32(out, static_cast<std::uint32_t>(meta.threads.size()));
  for (const TraceThreadMeta& t : meta.threads) {
    put_u32(out, t.id);
    put_u32(out, t.asid);
    put_u32(out, t.node);
    put_u64(out, t.accesses);
    put_u64(out, t.warmup_accesses);
    put_u64(out, static_cast<std::uint64_t>(t.think));
    std::uint64_t jitter_bits = 0;
    std::memcpy(&jitter_bits, &t.think_jitter, sizeof(jitter_bits));
    put_u64(out, jitter_bits);
    put_u64(out, static_cast<std::uint64_t>(t.start_offset));
  }

  put_u64(out, meta.setup.size());
  PageNum prev_vpage = 0;
  for (const SetupTouch& touch : meta.setup) {
    put_varint(out, touch.asid);
    put_varint(out, touch.node);
    // Wrapping unsigned delta, like encode_record (signed subtraction
    // would be UB for vpages straddling 2^63).
    put_varint(out, zigzag(static_cast<std::int64_t>(touch.vpage - prev_vpage)));
    prev_vpage = touch.vpage;
  }
  return out;
}

TraceMeta decode_meta(const void* data, std::size_t size) {
  Decoder in{static_cast<const unsigned char*>(data), size, 0};
  TraceMeta meta;

  const std::uint32_t name_len = get_u32(in);
  if (in.size - in.pos < name_len) {
    throw std::runtime_error("trace meta truncated");
  }
  meta.workload.assign(reinterpret_cast<const char*>(in.data + in.pos),
                       name_len);
  in.pos += name_len;
  meta.seed = get_u64(in);
  meta.directory_mode = get_u32(in);
  meta.alloc_policy = get_u32(in);

  const std::uint32_t thread_count = get_u32(in);
  meta.threads.reserve(thread_count);
  for (std::uint32_t i = 0; i < thread_count; ++i) {
    TraceThreadMeta t;
    t.id = get_u32(in);
    t.asid = get_u32(in);
    t.node = static_cast<NodeId>(get_u32(in));
    t.accesses = get_u64(in);
    t.warmup_accesses = get_u64(in);
    t.think = static_cast<Tick>(get_u64(in));
    const std::uint64_t jitter_bits = get_u64(in);
    std::memcpy(&t.think_jitter, &jitter_bits, sizeof(t.think_jitter));
    t.start_offset = static_cast<Tick>(get_u64(in));
    meta.threads.push_back(t);
  }

  const std::uint64_t setup_count = get_u64(in);
  meta.setup.reserve(setup_count);
  PageNum prev_vpage = 0;
  for (std::uint64_t i = 0; i < setup_count; ++i) {
    SetupTouch touch;
    touch.asid = static_cast<AddressSpaceId>(in.varint());
    touch.node = static_cast<NodeId>(in.varint());
    touch.vpage =
        prev_vpage + static_cast<PageNum>(unzigzag(in.varint()));  // Wraps.
    prev_vpage = touch.vpage;
    meta.setup.push_back(touch);
  }
  if (!in.done()) {
    throw std::runtime_error("trace meta has trailing bytes");
  }
  return meta;
}

}  // namespace allarm::trace
