#include "service/service.hh"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <map>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/fileio.hh"
#include "common/stats.hh"
#include "core/experiment.hh"
#include "obs/timeline.hh"
#include "runner/report.hh"
#include "runner/sweep.hh"
#include "runner/thread_pool.hh"
#include "service/json.hh"

namespace allarm::service {

namespace {

using Clock = std::chrono::steady_clock;

/// What one request's driver thread concluded.  kDrained means the run
/// checkpointed mid-flight (state stays running; a restart resumes it).
enum class Outcome { kDone, kQuarantined, kFailed, kDrained };

/// One running request: the driver thread executes run_streaming against
/// the shared pool; the main loop polls `progress` for health and reaps
/// the thread once `finished` flips.
struct Active {
  std::string id;
  std::uint64_t cells = 0;
  std::uint64_t jobs_total = 0;
  std::atomic<std::uint64_t> progress{0};
  std::atomic<bool> finished{false};
  Outcome outcome = Outcome::kFailed;  ///< Valid once `finished` is true.
  std::string error;                   ///< Same.
  runner::StreamStats stats;           ///< Same.
  std::thread thread;
};

}  // namespace

Request parse_request(const std::string& json_text) {
  const JsonValue doc = parse_json(json_text);
  if (!doc.is_object()) {
    throw std::runtime_error("request must be a JSON object");
  }
  Request request;
  for (const auto& [key, value] : doc.object) {
    if (key == "grid") {
      if (!value.is_string()) {
        throw std::runtime_error("\"grid\" must be a string");
      }
      request.grid = value.string;
    } else if (key == "seeds") {
      const std::uint64_t seeds = value.as_u64("\"seeds\"");
      if (seeds == 0 || seeds > 0xFFFFFFFFull) {
        throw std::runtime_error("\"seeds\" must be a positive 32-bit count");
      }
      request.knobs.seeds = static_cast<std::uint32_t>(seeds);
    } else if (key == "seed") {
      request.knobs.base_seed = value.as_u64("\"seed\"");
    } else if (key == "accesses") {
      request.knobs.accesses = value.as_u64("\"accesses\"");
    } else if (key == "csv") {
      if (!value.is_bool()) {
        throw std::runtime_error("\"csv\" must be a boolean");
      }
      request.csv = value.boolean;
    } else if (key == "timing") {
      if (!value.is_bool()) {
        throw std::runtime_error("\"timing\" must be a boolean");
      }
      request.timing = value.boolean;
    } else if (key == "profile") {
      if (!value.is_bool()) {
        throw std::runtime_error("\"profile\" must be a boolean");
      }
      request.profile = value.boolean;
    } else if (key == "retries") {
      const std::uint64_t retries = value.as_u64("\"retries\"");
      if (retries > 16) {
        throw std::runtime_error("\"retries\" must be at most 16");
      }
      request.retries = static_cast<std::uint32_t>(retries);
    } else {
      throw std::runtime_error("unknown request key \"" + key + "\"");
    }
  }
  if (request.grid.empty()) {
    throw std::runtime_error("request is missing \"grid\"");
  }
  // Validate the grid name now so intake rejects what activation would
  // only discover later (and with the same message).  Rethrown as
  // runtime_error: this function's whole contract is "reject reason".
  try {
    runner::make_builtin_grid(request.grid, request.knobs);
  } catch (const std::exception& e) {
    throw std::runtime_error(e.what());
  }
  return request;
}

runner::SweepSpec spec_of(const Request& request) {
  runner::SweepSpec spec = runner::make_builtin_grid(request.grid, request.knobs);
  // Not folded into spec_hash (see SweepSpec::profile), so toggling it on a
  // resubmission re-uses the kept journal rather than re-running the grid.
  spec.profile = request.profile;
  return spec;
}

namespace {

/// Runs one request to its conclusion on the calling (driver) thread.
/// Everything durable happens here or in the journal underneath; the main
/// loop only reads the atomics and commits the state word afterwards.
void drive_request(const Spool& spool, const runner::SweepRunner& runner,
                   runner::ThreadPool& pool, const std::atomic<bool>& stop,
                   Active& active) {
  // One span per request lifecycle (accept-to-terminal work on this
  // driver thread); arg = total jobs so the timeline shows request size.
  OBS_SPAN_N("service.request", "service", active.jobs_total);
  try {
    const Request request = parse_request(read_file(spool.request_json(active.id)));
    const runner::SweepSpec spec = spec_of(request);
    runner::ReportFiles reports(spool.report_json(active.id),
                                request.csv ? spool.report_csv(active.id) : "",
                                request.timing, request.profile);
    runner::StreamOptions options;
    options.journal_path = spool.journal_path(active.id);
    // Always the incremental path: a fresh journal is created, an
    // interrupted one resumes, and a resubmitted-with-edits one re-runs
    // exactly the invalidated cells.
    options.resume_cells = true;
    options.pool = &pool;
    options.stop = &stop;
    options.progress = &active.progress;
    options.cell_retries = request.retries;
    // Quarantine: one poisoned cell degrades its request (state
    // `quarantined`, failed sections in the report) instead of failing it.
    options.quarantine = true;
    active.stats = runner.run_streaming(spec, reports.sink(), options);
    if (active.stats.drained) {
      reports.discard();  // Torn by design; the journal carries the work.
      active.outcome = Outcome::kDrained;
    } else {
      reports.commit();
      active.outcome = active.stats.jobs_failed > 0 ? Outcome::kQuarantined
                                                    : Outcome::kDone;
    }
  } catch (const std::exception& e) {
    active.error = e.what();
    active.outcome = Outcome::kFailed;
  }
  active.finished.store(true, std::memory_order_release);
}

}  // namespace

Service::Service(ServiceConfig config) : config_(std::move(config)) {}

int Service::run(const std::atomic<bool>& stop) {
  Spool spool(config_.root);
  const std::uint32_t workers =
      config_.workers > 0 ? config_.workers : core::bench_jobs();
  runner::ThreadPool pool(workers);
  const runner::SweepRunner runner(workers);
  const auto started = Clock::now();

  std::vector<std::unique_ptr<Active>> active;
  std::string last_error;
  bool saw_degraded = false;
  Clock::time_point drain_started{};
  bool drain_logged = false;

  // Lifetime totals, accumulated as finished drivers are reaped (plus the
  // in-flight progress of still-active ones when sampled below).  These
  // back the cells/sec gauge and the *_total counters in metrics.prom.
  std::uint64_t jobs_executed_total = 0;
  std::uint64_t jobs_retried_total = 0;
  std::uint64_t jobs_quarantined_total = 0;
  std::uint64_t requests_finished_total = 0;
  std::uint64_t rate_last_jobs = 0;
  Clock::time_point rate_last_at = started;
  double jobs_per_s = 0.0;

  const auto uptime_s = [&] {
    return std::chrono::duration<double>(Clock::now() - started).count();
  };

  const auto activate = [&](const std::string& id) {
    OBS_SPAN("service.admit", "service");
    const Request request = parse_request(read_file(spool.request_json(id)));
    const runner::SweepSpec spec = spec_of(request);
    auto entry = std::make_unique<Active>();
    entry->id = id;
    entry->cells = spec.cell_count();
    entry->jobs_total = spec.job_count();
    spool.set_state(id, RequestState::kRunning);
    Active& ref = *entry;
    entry->thread = std::thread([&spool, &runner, &pool, &stop, &ref] {
      drive_request(spool, runner, pool, stop, ref);
    });
    std::cerr << "[serve] " << id << ": running (" << spec.job_count()
              << " jobs)\n";
    active.push_back(std::move(entry));
  };

  const auto write_health = [&](bool draining) {
    OBS_SPAN("service.health", "service");
    // Throughput gauge: jobs completed (reaped totals + in-flight
    // progress) over the wall time since the last sample.  Poll-cadence
    // sampling, so short bursts between polls average out.
    const std::uint64_t jobs_now = [&] {
      std::uint64_t total = jobs_executed_total;
      for (const auto& entry : active) {
        total += entry->progress.load(std::memory_order_relaxed);
      }
      return total;
    }();
    const double since_s =
        std::chrono::duration<double>(Clock::now() - rate_last_at).count();
    if (since_s >= 0.001) {
      jobs_per_s = static_cast<double>(jobs_now - rate_last_jobs) / since_s;
      rate_last_jobs = jobs_now;
      rate_last_at = Clock::now();
    }
    const std::uint32_t pool_busy = pool.busy_count();

    std::string json = "{\"pid\":" + std::to_string(::getpid()) +
                       ",\"uptime_s\":" + json_number(uptime_s()) +
                       ",\"draining\":" + (draining ? "true" : "false");
    std::map<std::string, std::uint64_t> counts;
    for (const std::string& id : spool.requests()) {
      ++counts[to_string(spool.state(id))];
    }
    const std::size_t queue_depth = spool.queued().size();
    json += ",\"queue_depth\":" + std::to_string(queue_depth);
    json += ",\"requests\":{";
    bool first = true;
    for (const auto& [word, count] : counts) {
      if (!first) json += ",";
      first = false;
      json += json_quote(word) + ":" + std::to_string(count);
    }
    json += "},\"jobs_per_s\":" + json_number(jobs_per_s);
    json += ",\"pool\":{\"busy\":" + std::to_string(pool_busy) +
            ",\"workers\":" + std::to_string(pool.worker_count()) + "}";
    json += ",\"totals\":{\"jobs_executed\":" +
            std::to_string(jobs_executed_total) +
            ",\"jobs_retried\":" + std::to_string(jobs_retried_total) +
            ",\"jobs_quarantined\":" + std::to_string(jobs_quarantined_total) +
            ",\"requests_finished\":" + std::to_string(requests_finished_total) +
            "}";
    json += ",\"active\":[";
    first = true;
    for (const auto& entry : active) {
      if (!first) json += ",";
      first = false;
      json += "{\"id\":" + json_quote(entry->id) +
              ",\"jobs_done\":" +
              std::to_string(entry->progress.load(std::memory_order_relaxed)) +
              ",\"jobs_total\":" + std::to_string(entry->jobs_total) + "}";
    }
    json += "],\"last_error\":" + json_quote(last_error) + "}\n";
    try {
      spool.write_health(json);
    } catch (const std::exception& e) {
      // Health is observability, not state: a failed heartbeat must never
      // take down the requests it reports on.
      std::cerr << "[serve] health write failed: " << e.what() << "\n";
    }

    // Prometheus-textfile mirror, written beside health.json each poll
    // with the same atomicity and the same never-fatal contract.
    std::string prom;
    const auto gauge = [&prom](const std::string& name,
                               const std::string& value) {
      prom += "# TYPE " + name + " gauge\n" + name + " " + value + "\n";
    };
    const auto counter = [&prom](const std::string& name, std::uint64_t value) {
      prom += "# TYPE " + name + " counter\n" + name + " " +
              std::to_string(value) + "\n";
    };
    gauge("allarm_up", "1");
    gauge("allarm_uptime_seconds", json_number(uptime_s()));
    gauge("allarm_draining", draining ? "1" : "0");
    gauge("allarm_queue_depth", std::to_string(queue_depth));
    gauge("allarm_active_requests", std::to_string(active.size()));
    gauge("allarm_jobs_per_second", json_number(jobs_per_s));
    gauge("allarm_pool_workers", std::to_string(pool.worker_count()));
    gauge("allarm_pool_busy_workers", std::to_string(pool_busy));
    prom += "# TYPE allarm_requests gauge\n";
    for (const auto& [word, count] : counts) {
      prom += "allarm_requests{state=\"" + word + "\"} " +
              std::to_string(count) + "\n";
    }
    counter("allarm_jobs_executed_total", jobs_executed_total);
    counter("allarm_jobs_retried_total", jobs_retried_total);
    counter("allarm_jobs_quarantined_total", jobs_quarantined_total);
    counter("allarm_requests_finished_total", requests_finished_total);
    try {
      spool.write_metrics(prom);
    } catch (const std::exception& e) {
      std::cerr << "[serve] metrics write failed: " << e.what() << "\n";
    }
  };

  for (;;) {
    const bool draining = stop.load(std::memory_order_relaxed);
    if (draining && !drain_logged) {
      drain_logged = true;
      drain_started = Clock::now();
      std::cerr << "[serve] drain requested; checkpointing "
                << active.size() << " running request(s)\n";
    }

    // Reap finished drivers and commit their terminal states.
    for (std::size_t i = 0; i < active.size();) {
      Active& entry = *active[i];
      if (!entry.finished.load(std::memory_order_acquire)) {
        ++i;
        continue;
      }
      entry.thread.join();
      // Fold the finished run into the lifetime totals (kFailed from the
      // exception path carries default-zero stats, which is correct).
      jobs_executed_total += entry.stats.jobs_executed;
      jobs_retried_total += entry.stats.jobs_retried;
      jobs_quarantined_total += entry.stats.jobs_failed;
      if (entry.outcome != Outcome::kDrained) ++requests_finished_total;
      switch (entry.outcome) {
        case Outcome::kDone:
          spool.set_state(entry.id, RequestState::kDone);
          std::cerr << "[serve] " << entry.id << ": done ("
                    << entry.stats.jobs_executed << " run, "
                    << entry.stats.jobs_resumed << " resumed)\n";
          break;
        case Outcome::kQuarantined:
          saw_degraded = true;
          spool.set_state(entry.id, RequestState::kQuarantined,
                          std::to_string(entry.stats.jobs_failed) +
                              " jobs quarantined");
          std::cerr << "[serve] " << entry.id << ": quarantined ("
                    << entry.stats.jobs_failed << " failed jobs)\n";
          break;
        case Outcome::kFailed:
          saw_degraded = true;
          last_error = entry.id + ": " + entry.error;
          spool.set_state(entry.id, RequestState::kFailed, entry.error);
          std::cerr << "[serve] " << entry.id << ": failed: " << entry.error
                    << "\n";
          break;
        case Outcome::kDrained:
          // State stays `running`: the journal holds every finished job
          // and the next start resumes it.
          std::cerr << "[serve] " << entry.id << ": drained at "
                    << entry.progress.load(std::memory_order_relaxed) << "/"
                    << entry.jobs_total << " jobs\n";
          break;
      }
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(i));
    }

    if (draining) {
      if (active.empty()) {
        write_health(true);
        std::cerr << "[serve] drained cleanly after " << json_number(uptime_s())
                  << " s\n";
        return 0;
      }
      // Bounded drain: past the deadline, abandon the graceful path.  The
      // hard abort is journal-safe — appends are crash-atomic — so the
      // only loss is the jobs currently executing, which re-run on resume.
      if (Clock::now() - drain_started >
          std::chrono::milliseconds(config_.drain_deadline_ms)) {
        std::cerr << "[serve] drain deadline exceeded; aborting "
                     "(journals are crash-safe)\n";
        std::_Exit(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }

    // Intake: accept queued requests.  A malformed one is rejected with
    // its reason; an id that is currently running defers (its resubmission
    // stays queued until the active run finishes).
    try {
      OBS_SPAN("service.scan", "service");
      for (const std::string& id : spool.queued()) {
        bool busy = false;
        for (const auto& entry : active) busy = busy || entry->id == id;
        if (busy) continue;
        spool.admit(id);
        try {
          parse_request(read_file(spool.request_json(id)));
        } catch (const std::exception& e) {
          saw_degraded = true;
          spool.set_state(id, RequestState::kRejected, e.what());
          last_error = id + ": " + e.what();
          std::cerr << "[serve] " << id << ": rejected: " << e.what() << "\n";
        }
      }
    } catch (const std::exception& e) {
      // A failed scan (transient I/O) is retried next poll, not fatal.
      last_error = std::string("queue scan: ") + e.what();
      std::cerr << "[serve] queue scan failed: " << e.what() << "\n";
    }

    // Schedule: activate pending (and recovered running) requests within
    // the admission bounds.  `running` non-active ids are interrupted work
    // from a previous process — they resume first, before new pending
    // work, so accepted jobs finish ahead of new admissions.
    std::uint64_t active_cells = 0;
    for (const auto& entry : active) active_cells += entry->cells;
    for (const RequestState wanted :
         {RequestState::kRunning, RequestState::kPending}) {
      for (const std::string& id : spool.requests()) {
        if (active.size() >= config_.max_active) break;
        bool busy = false;
        for (const auto& entry : active) busy = busy || entry->id == id;
        if (busy) continue;
        RequestState state;
        try {
          state = spool.state(id);
        } catch (const std::exception& e) {
          last_error = id + ": " + e.what();
          continue;  // Unreadable state file: skip, surface via health.
        }
        if (state != wanted) continue;
        try {
          const Request request =
              parse_request(read_file(spool.request_json(id)));
          const std::uint64_t cells = spec_of(request).cell_count();
          if (config_.max_cells > 0 && !active.empty() &&
              active_cells + cells > config_.max_cells) {
            continue;  // Backpressure: stays pending/running for later.
          }
          activate(id);
          active_cells += cells;
        } catch (const std::exception& e) {
          // A request that parsed at intake but fails now (corrupted file,
          // failpoint) fails terminally rather than looping forever.
          saw_degraded = true;
          last_error = id + ": " + e.what();
          try {
            spool.set_state(id, RequestState::kFailed, e.what());
          } catch (const std::exception& state_error) {
            std::cerr << "[serve] " << id
                      << ": state write failed: " << state_error.what()
                      << "\n";
          }
          std::cerr << "[serve] " << id << ": failed: " << e.what() << "\n";
        }
      }
    }

    write_health(false);

    if (config_.exit_when_idle && active.empty()) {
      bool idle = spool.queued().empty();
      if (idle) {
        for (const std::string& id : spool.requests()) {
          const RequestState state = spool.state(id);
          if (state == RequestState::kPending ||
              state == RequestState::kRunning) {
            idle = false;
            break;
          }
        }
      }
      if (idle) {
        write_health(false);
        return saw_degraded ? 3 : 0;
      }
    }

    // Poll cadence, chopped fine so SIGTERM reaction is prompt.
    const auto wake = Clock::now() + std::chrono::milliseconds(config_.poll_ms);
    while (Clock::now() < wake && !stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

}  // namespace allarm::service
