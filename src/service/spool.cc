#include "service/spool.hh"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "common/failpoint.hh"
#include "common/fileio.hh"

namespace allarm::service {

namespace {

constexpr const char* kQueueDir = "queue";
constexpr const char* kRequestsDir = "requests";
constexpr const char* kJsonSuffix = ".json";

[[noreturn]] void fail_errno(const std::string& path, const char* what) {
  throw std::runtime_error(path + ": " + what + ": " + std::strerror(errno));
}

void ensure_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    fail_errno(path, "mkdir");
  }
}

bool exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

void rename_or_throw(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    fail_errno(from, ("rename to " + to).c_str());
  }
}

/// Names in `dir`, filtered by `keep`, sorted (directory order is
/// filesystem-dependent; the service's scheduling must not be).
std::vector<std::string> list_dir(const std::string& dir,
                                  bool (*keep)(const struct dirent&)) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) fail_errno(dir, "opendir");
  std::vector<std::string> names;
  errno = 0;
  while (struct dirent* entry = ::readdir(handle)) {
    if (entry->d_name[0] == '.') continue;  // ., .., hidden temp files.
    if (keep(*entry)) names.emplace_back(entry->d_name);
    errno = 0;
  }
  const int saved = errno;
  ::closedir(handle);
  if (saved != 0) {
    errno = saved;
    fail_errno(dir, "readdir");
  }
  std::sort(names.begin(), names.end());
  return names;
}

/// Polls a service failpoint.  kError throws, kDelay sleeps and proceeds;
/// actions these whole-file sites cannot express degrade to an error so a
/// schedule never silently misses (same contract as the fileio sites).
void poll_failpoint(const char* site, const std::string& path) {
  const failpoint::Hit hit = failpoint::check(site);
  if (!hit) return;
  if (hit.action == failpoint::Action::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(hit.arg));
    return;
  }
  throw std::runtime_error(path + ": injected fault (failpoint " +
                           std::string(site) + ")");
}

/// Durable write-then-rename: `content` lands at `path` either whole or
/// not at all, and survives power loss once this returns.
void replace_file_durable(const std::string& path, const std::string& content,
                          const std::string& dir) {
  const std::string tmp = dir + "/.tmp-" + path.substr(dir.size() + 1);
  write_file_durable(tmp, content);
  rename_or_throw(tmp, path);
  sync_directory(dir);
}

}  // namespace

const char* to_string(RequestState state) {
  switch (state) {
    case RequestState::kPending: return "pending";
    case RequestState::kRunning: return "running";
    case RequestState::kDone: return "done";
    case RequestState::kFailed: return "failed";
    case RequestState::kQuarantined: return "quarantined";
    case RequestState::kRejected: return "rejected";
  }
  return "unknown";
}

bool request_state_from_string(const std::string& text, RequestState* state) {
  for (const RequestState candidate :
       {RequestState::kPending, RequestState::kRunning, RequestState::kDone,
        RequestState::kFailed, RequestState::kQuarantined,
        RequestState::kRejected}) {
    if (text == to_string(candidate)) {
      *state = candidate;
      return true;
    }
  }
  return false;
}

bool Spool::valid_id(const std::string& id) {
  if (id.empty() || id.size() > 200) return false;
  if (id[0] == '.') return false;
  for (const char c : id) {
    if (c == '/' || c == '\0') return false;
  }
  return true;
}

Spool::Spool(std::string root) : root_(std::move(root)) {
  ensure_dir(root_);
  ensure_dir(root_ + "/" + kQueueDir);
  ensure_dir(root_ + "/" + kRequestsDir);
}

std::string Spool::queue_path(const std::string& id) const {
  return root_ + "/" + kQueueDir + "/" + id + kJsonSuffix;
}

std::string Spool::request_dir(const std::string& id) const {
  return root_ + "/" + kRequestsDir + "/" + id;
}

std::string Spool::request_json(const std::string& id) const {
  return request_dir(id) + "/request.json";
}

std::string Spool::journal_path(const std::string& id) const {
  return request_dir(id) + "/journal.bin";
}

std::string Spool::report_json(const std::string& id) const {
  return request_dir(id) + "/report.json";
}

std::string Spool::report_csv(const std::string& id) const {
  return request_dir(id) + "/report.csv";
}

std::string Spool::health_path() const { return root_ + "/health.json"; }

std::string Spool::metrics_path() const { return root_ + "/metrics.prom"; }

std::string Spool::enqueue(const std::string& root, const std::string& id,
                           const std::string& json_text) {
  if (!valid_id(id)) {
    throw std::invalid_argument("spool id '" + id +
                                "' is not a plain file name");
  }
  const std::string queue = root + "/" + kQueueDir;
  ensure_dir(root);
  ensure_dir(queue);
  // Hidden temp name (scan skips dotfiles), unique per producer process so
  // concurrent enqueues of different ids never collide mid-write.
  const std::string tmp =
      queue + "/.tmp-" + std::to_string(::getpid()) + "-" + id;
  write_file_durable(tmp, json_text);
  const std::string target = queue + "/" + id + kJsonSuffix;
  rename_or_throw(tmp, target);
  sync_directory(queue);
  return target;
}

std::vector<std::string> Spool::queued() const {
  poll_failpoint("service.scan", root_ + "/" + kQueueDir);
  std::vector<std::string> ids = list_dir(
      root_ + "/" + kQueueDir, [](const struct dirent& entry) {
        const std::size_t len = std::strlen(entry.d_name);
        return len > std::strlen(kJsonSuffix) &&
               std::strcmp(entry.d_name + len - std::strlen(kJsonSuffix),
                           kJsonSuffix) == 0;
      });
  for (std::string& id : ids) {
    id.resize(id.size() - std::strlen(kJsonSuffix));
  }
  return ids;
}

void Spool::admit(const std::string& id) {
  if (!valid_id(id)) {
    throw std::invalid_argument("spool id '" + id +
                                "' is not a plain file name");
  }
  const std::string dir = request_dir(id);
  ensure_dir(dir);
  // Crash windows: after the mkdir the queue file is still in place (the
  // next scan retries); after the rename the request is accepted even if
  // the state write never happened (state() reads a missing file as
  // pending).  The rename is the commit point.
  rename_or_throw(queue_path(id), request_json(id));
  sync_directory(dir);
  sync_directory(root_ + "/" + kQueueDir);
  set_state(id, RequestState::kPending);
}

std::vector<std::string> Spool::requests() const {
  return list_dir(root_ + "/" + kRequestsDir,
                  [](const struct dirent&) { return true; });
}

RequestState Spool::state(const std::string& id) const {
  const std::string path = request_dir(id) + "/state";
  if (!exists(path)) return RequestState::kPending;
  std::string word = read_file(path);
  while (!word.empty() && (word.back() == '\n' || word.back() == ' ')) {
    word.pop_back();
  }
  RequestState state;
  if (!request_state_from_string(word, &state)) {
    throw std::runtime_error(path + ": unrecognized state '" + word + "'");
  }
  return state;
}

void Spool::set_state(const std::string& id, RequestState state,
                      const std::string& error) {
  poll_failpoint("service.state", request_dir(id) + "/state");
  const std::string dir = request_dir(id);
  // The error file first: once the state word commits, everything it
  // points at must already be durable.
  const std::string error_path = dir + "/error";
  if (!error.empty()) {
    replace_file_durable(error_path, error + "\n", dir);
  } else if (exists(error_path)) {
    ::unlink(error_path.c_str());
  }
  replace_file_durable(dir + "/state", std::string(to_string(state)) + "\n",
                       dir);
}

std::string Spool::error(const std::string& id) const {
  const std::string path = request_dir(id) + "/error";
  if (!exists(path)) return "";
  std::string text = read_file(path);
  while (!text.empty() && text.back() == '\n') text.pop_back();
  return text;
}

void Spool::write_health(const std::string& json) const {
  poll_failpoint("service.health", health_path());
  replace_file_durable(health_path(), json, root_);
}

void Spool::write_metrics(const std::string& text) const {
  poll_failpoint("service.metrics", metrics_path());
  replace_file_durable(metrics_path(), text, root_);
}

}  // namespace allarm::service
