// The sweep service's file spool: crash-safe request queue and per-request
// lifecycle state, all expressed as atomic renames (docs/SERVICE.md).
//
// Layout under one root directory:
//
//   queue/<id>.json          incoming requests.  Producers write a hidden
//                            temp file and rename it in — enqueue is atomic
//                            with no locking, and a half-written request is
//                            never visible.
//   requests/<id>/           one directory per accepted request:
//     request.json           the request, moved (renamed) from the queue
//     state                  lifecycle word: pending | running | done |
//                            failed | quarantined | rejected
//     error                  reason, for failed/rejected
//     journal.bin(+.data)    the sweep journal — the crash-safety spine
//     report.json/.csv       committed reports (tmp+fsync+rename)
//   health.json              heartbeat (uptime, depths, progress)
//   metrics.prom             Prometheus-textfile mirror of the heartbeat
//
// Every transition is a durable rename of the state file (write temp,
// fsync, rename, fsync directory), so a SIGKILL at any instant leaves
// either the old word or the new word — never a torn one — and a restart
// reconstructs exactly what was accepted and what was mid-flight.
// Four failpoints cover the new I/O boundaries: `service.scan` (queue
// intake), `service.state` (state rename), `service.health` (heartbeat
// write), `service.metrics` (Prometheus export); see docs/ROBUSTNESS.md.
#pragma once

#include <string>
#include <vector>

namespace allarm::service {

/// Request lifecycle.  pending -> running -> done | failed | quarantined;
/// rejected is terminal straight from intake (malformed spec).  A
/// `running` request on startup is recovered work, resumed through its
/// journal.  Resubmitting an id (a new queue file with the same name)
/// restarts the lifecycle at pending; the kept journal turns the re-run
/// into a per-cell incremental re-sweep.
enum class RequestState {
  kPending,
  kRunning,
  kDone,
  kFailed,       ///< The sweep errored (state carries the reason).
  kQuarantined,  ///< Completed degraded: some jobs quarantined (exit-3 analogue).
  kRejected,     ///< Never accepted: malformed request (reason recorded).
};

const char* to_string(RequestState state);

/// Inverse of to_string; returns false on an unknown word.
bool request_state_from_string(const std::string& text, RequestState* state);

class Spool {
 public:
  /// Opens (creating as needed) the spool at `root`.  Throws on I/O error.
  explicit Spool(std::string root);

  const std::string& root() const { return root_; }

  /// Producer side: atomically enqueues `json_text` as request `id`
  /// (temp write + fsync + rename into queue/).  Static so producers need
  /// no Spool instance — any process that can write the directory can
  /// submit.  Returns the queued path.  Throws std::invalid_argument on a
  /// malformed id (path characters) and std::runtime_error on I/O error.
  static std::string enqueue(const std::string& root, const std::string& id,
                             const std::string& json_text);

  /// Ids currently waiting in queue/, sorted.  Polls failpoint
  /// `service.scan` (the spool-scan I/O boundary).
  std::vector<std::string> queued() const;

  /// Accepts queued request `id`: creates requests/<id>/, renames the
  /// queue file to request.json, durably marks the state pending.  Every
  /// step is idempotent, so a crash mid-admission re-runs cleanly.
  void admit(const std::string& id);

  /// Ids with a request directory, sorted.
  std::vector<std::string> requests() const;

  /// Current state of request `id`.  A directory with request.json but no
  /// state file is `pending` (the crash window inside admit()).
  RequestState state(const std::string& id) const;

  /// Durable state transition (temp + fsync + rename + directory fsync).
  /// `error` is recorded for failed/rejected (empty clears it).  Polls
  /// failpoint `service.state`.
  void set_state(const std::string& id, RequestState state,
                 const std::string& error = "");

  /// Recorded error of `id`, or "" when none.
  std::string error(const std::string& id) const;

  /// Atomically replaces health.json (temp + fsync + rename).  Polls
  /// failpoint `service.health`.
  void write_health(const std::string& json) const;

  /// Atomically replaces metrics.prom (temp + fsync + rename) — the
  /// Prometheus-textfile mirror of the heartbeat, written beside
  /// health.json every poll.  Polls failpoint `service.metrics`.
  void write_metrics(const std::string& text) const;

  // Paths inside one request's directory.
  std::string queue_path(const std::string& id) const;
  std::string request_dir(const std::string& id) const;
  std::string request_json(const std::string& id) const;
  std::string journal_path(const std::string& id) const;
  std::string report_json(const std::string& id) const;
  std::string report_csv(const std::string& id) const;
  std::string health_path() const;
  std::string metrics_path() const;

  /// True when `id` is usable as a spool id (also enforced by enqueue):
  /// nonempty, no path separators or leading dots, <= 200 bytes.
  static bool valid_id(const std::string& id);

 private:
  std::string root_;
};

}  // namespace allarm::service
