// The long-running sweep service (docs/SERVICE.md).
//
// One Service owns a Spool (the crash-safe request queue) and one shared
// worker pool, and multiplexes every accepted request's jobs onto that
// pool through runner::run_streaming.  The contract it keeps is the
// repo's standing one, extended to a process that can die at any instant:
//
//  - SIGKILL anywhere loses no accepted work.  Requests advance by durable
//    state renames; results advance by journal appends; on restart every
//    `running` request resumes through its journal and the recovered
//    report is byte-identical to an uninterrupted run.
//  - SIGTERM drains gracefully: in-flight jobs finish and are journaled,
//    states stay `running` (resumed next start), health is current, exit
//    is 0 — all inside a bounded deadline, past which the service falls
//    back to a journal-safe hard abort.
//  - Admission control bounds concurrent requests and their summed grid
//    cells; excess work waits as `pending` (backpressure, not loss), and
//    malformed requests become `rejected` with a recorded reason.
//  - Resubmitting an id re-runs it as a per-cell incremental re-sweep:
//    the kept journal is rebound and only cells the edit invalidated run.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "runner/grids.hh"
#include "service/spool.hh"

namespace allarm::service {

/// One parsed request file.  The vocabulary is the sweep CLI's: a built-in
/// grid name plus the knobs that parameterize it.  Strict — an unknown key
/// is a reject, not a silent ignore (a typo'd "seedz" must not quietly run
/// the wrong sweep).
struct Request {
  std::string grid;          ///< Required: a runner::builtin_grid_names() name.
  runner::GridKnobs knobs;   ///< "seeds", "seed", "accesses" keys.
  bool csv = false;          ///< "csv": also write report.csv.
  bool timing = false;       ///< "timing": wall_ns section in report.json.
  bool profile = false;      ///< "profile": hist section in report.json.
  std::uint32_t retries = 0; ///< "retries": per-job retry budget.
};

/// Parses and validates one request document.  Throws std::runtime_error
/// (with the reject reason) on malformed JSON, unknown keys, or an unknown
/// grid.
Request parse_request(const std::string& json_text);

/// The spec a request runs — shared with the CLI grids, so a service
/// report is byte-identical to `sweep --grid ...` with the same knobs.
runner::SweepSpec spec_of(const Request& request);

struct ServiceConfig {
  std::string root;               ///< Spool root directory.
  std::uint32_t workers = 0;      ///< Shared pool size; 0 = core::bench_jobs().
  std::uint32_t max_active = 2;   ///< Concurrently running requests.
  /// Bound on the summed grid cells of running requests (0 = unbounded).
  /// A request larger than the whole budget still runs — alone — so an
  /// oversized grid queues instead of starving forever.
  std::uint64_t max_cells = 0;
  std::uint32_t poll_ms = 200;    ///< Queue/health poll cadence.
  /// Graceful-drain budget after SIGTERM; past it the service hard-aborts
  /// (journal-safe: appends are crash-atomic at any byte).
  std::uint64_t drain_deadline_ms = 30000;
  /// Exit once the queue is empty and every request reached a terminal
  /// state (smoke tests and batch use; a daemon runs forever).
  bool exit_when_idle = false;
};

class Service {
 public:
  explicit Service(ServiceConfig config);

  /// Runs the accept/schedule/health loop until `stop` becomes true
  /// (graceful drain) or, with exit_when_idle, until all work is done.
  /// Returns the process exit code: 0 clean or drained, 1 internal error,
  /// 3 degraded (exit_when_idle and some request failed/quarantined/
  /// rejected).
  int run(const std::atomic<bool>& stop);

 private:
  ServiceConfig config_;
};

}  // namespace allarm::service
