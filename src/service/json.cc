#include "service/json.hh"

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>

namespace allarm::service {

namespace {

/// Deep-enough for any sane request, shallow enough that a hostile
/// [[[[... file cannot blow the stack.
constexpr int kMaxDepth = 32;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool consume_keyword(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    JsonValue value;
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        value.kind = JsonValue::Kind::kString;
        value.string = parse_string();
        return value;
      case 't':
        if (!consume_keyword("true")) fail("bad keyword");
        value.kind = JsonValue::Kind::kBool;
        value.boolean = true;
        return value;
      case 'f':
        if (!consume_keyword("false")) fail("bad keyword");
        value.kind = JsonValue::Kind::kBool;
        value.boolean = false;
        return value;
      case 'n':
        if (!consume_keyword("null")) fail("bad keyword");
        return value;
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      for (const auto& [existing, ignored] : value.object) {
        if (existing == key) fail("duplicate key \"" + key + "\"");
      }
      skip_ws();
      expect(':');
      value.object.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    for (;;) {
      value.array.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("bad escape character");
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<std::uint32_t>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return code;
  }

  void append_unicode_escape(std::string& out) {
    std::uint32_t code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: a low surrogate must follow.
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        fail("high surrogate without a low surrogate");
      }
      pos_ += 2;
      const std::uint32_t low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("stray low surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      pos_ = start;
      fail("expected a value");
    }
    // Grammar check (strtod is laxer than JSON: it takes hex, inf, nan).
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("digit must follow decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("digit must follow exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = std::strtod(text_.c_str() + start, nullptr);
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::uint64_t JsonValue::as_u64(const std::string& what) const {
  if (kind != Kind::kNumber) {
    throw std::runtime_error(what + " must be a number");
  }
  if (number < 0 || std::floor(number) != number ||
      number > 9007199254740992.0 /* 2^53: exact double integers end */) {
    throw std::runtime_error(what + " must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(number);
}

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace allarm::service
