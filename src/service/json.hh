// Minimal JSON parsing for the sweep service's request spool.
//
// The service accepts untrusted request files, so the parser is strict:
// full escape handling, a recursion-depth bound, no trailing garbage, and
// every error carries the byte offset it was detected at (the reject
// reason recorded in the request's state).  It parses into a plain value
// tree — no reflection, no allocator games — because a request is a few
// dozen keys, not a data plane.
//
// Writing JSON stays where it always was: the report writers and the
// health file build their documents by hand against json_number/json_quote
// (common/stats.hh), which is how the byte-exactness guarantees are kept.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace allarm::service {

/// One parsed JSON value.  A tagged struct instead of std::variant: the
/// tree is tiny and the flat layout keeps call sites readable.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Object members in document order (duplicate keys are a parse error).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const;

  /// The number as a non-negative integer; throws std::runtime_error when
  /// the value is not a number, is negative, fractional, or does not fit —
  /// the request fields (seeds, base seed, accesses) are all u64 counts.
  std::uint64_t as_u64(const std::string& what) const;
};

/// Parses one JSON document; the entire input must be consumed.  Throws
/// std::runtime_error with a byte offset on malformed input.
JsonValue parse_json(const std::string& text);

}  // namespace allarm::service
