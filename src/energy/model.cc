#include "energy/model.hh"

#include <cmath>

namespace allarm::energy {

namespace {
// Nominal 32nm event costs.  The sqrt term models bitline/wordline growth
// with array capacity (CACTI-like).
constexpr double kPfReadBasePj = 0.35;
constexpr double kPfReadSlopePj = 0.06;    // x sqrt(coverage in kB)
constexpr double kPfWriteFactor = 1.3;     // Writes cost ~30% more than reads.
constexpr double kRouterFlitPj = 0.65;
constexpr double kLinkFlitPj = 0.45;
constexpr double kDramBitPj = 10.0;        // pJ per bit, off-chip access.

// Area power-law fitted (least squares in log space) to the paper's table:
//   {512 kB: 70.89, 256: 26.95, 128: 19.90, 64: 8.20, 32: 5.93} mm^2
// for the 16-directory system.  area = c * (kB)^p.
constexpr double kAreaCoeff = 0.2666;
constexpr double kAreaExp = 0.895;

// A region entry (owner + presence bitmap) is roughly twice the width of a
// probe-filter entry (state + owner); the equivalent-SRAM scaling below
// feeds the same CACTI-shaped cost curves.
constexpr double kRegionEntryWidthFactor = 2.0;

double region_equivalent_kb(std::uint32_t coverage_bytes,
                            std::uint32_t region_size_bytes) {
  const double entries = static_cast<double>(coverage_bytes) /
                         static_cast<double>(region_size_bytes);
  return entries * kRegionEntryWidthFactor * kLineBytes / 1024.0;
}
}  // namespace

EnergyModel::EnergyModel(const SystemConfig& config) {
  const double coverage_kb =
      static_cast<double>(config.probe_filter_coverage_bytes) / 1024.0;
  pf_read_pj_ = kPfReadBasePj + kPfReadSlopePj * std::sqrt(coverage_kb);
  pf_write_pj_ = pf_read_pj_ * kPfWriteFactor;
  const double region_kb = region_equivalent_kb(
      config.probe_filter_coverage_bytes, config.region_size_bytes);
  region_read_pj_ = kPfReadBasePj + kPfReadSlopePj * std::sqrt(region_kb);
  region_write_pj_ = region_read_pj_ * kPfWriteFactor;
  router_flit_pj_ = kRouterFlitPj;
  link_flit_pj_ = kLinkFlitPj;
  dram_access_pj_ = kDramBitPj * kLineBytes * 8;
}

double EnergyModel::noc_energy_nj(const noc::NocStats& stats) const {
  // flit_hops already aggregates flits x links; routers are crossed once
  // more than links, approximated by the same count plus per-message
  // injection.
  const double pj = static_cast<double>(stats.flit_hops) * noc_flit_hop_pj() +
                    static_cast<double>(stats.messages) * router_flit_pj_;
  return pj / 1000.0;
}

double EnergyModel::pf_energy_nj(std::uint64_t reads, std::uint64_t writes,
                                 std::uint64_t evictions) const {
  const double pj = static_cast<double>(reads) * pf_read_pj_ +
                    static_cast<double>(writes) * pf_write_pj_ +
                    static_cast<double>(evictions) * pf_eviction_pj();
  return pj / 1000.0;
}

double EnergyModel::dram_energy_nj(std::uint64_t accesses) const {
  return static_cast<double>(accesses) * dram_access_pj_ / 1000.0;
}

double EnergyModel::region_energy_nj(std::uint64_t reads, std::uint64_t writes,
                                     std::uint64_t collapses) const {
  const double pj = static_cast<double>(reads) * region_read_pj_ +
                    static_cast<double>(writes) * region_write_pj_ +
                    static_cast<double>(collapses) * region_collapse_pj();
  return pj / 1000.0;
}

double EnergyModel::probe_filter_area_mm2(std::uint32_t coverage_bytes,
                                          std::uint32_t num_directories) {
  const double kb = static_cast<double>(coverage_bytes) / 1024.0;
  const double total_16 = kAreaCoeff * std::pow(kb, kAreaExp);
  return total_16 * static_cast<double>(num_directories) / 16.0;
}

double EnergyModel::region_directory_area_mm2(std::uint32_t coverage_bytes,
                                              std::uint32_t region_size_bytes,
                                              std::uint32_t num_directories) {
  const double kb = region_equivalent_kb(coverage_bytes, region_size_bytes);
  const double total_16 = kAreaCoeff * std::pow(kb, kAreaExp);
  return total_16 * static_cast<double>(num_directories) / 16.0;
}

}  // namespace allarm::energy
