// McPAT-lite: dynamic-energy and area models for the structures the paper
// evaluates (Figure 3f and the probe-filter area table), at a nominal 32nm
// process.
//
// Energy is events x per-event cost.  Per-event costs follow the usual
// CACTI shape: a fixed peripheral term plus a term growing with the square
// root of the array size.  The area model is a power law fitted to the five
// McPAT data points published in the paper (Section III-B); the fit and its
// residuals are documented in EXPERIMENTS.md.  Absolute joules are nominal;
// every figure reports energy *normalized* to the baseline, which only
// requires the event weights to be mutually consistent.
#pragma once

#include <cstdint>

#include "coherence/probe_filter.hh"
#include "common/config.hh"
#include "noc/mesh.hh"

namespace allarm::energy {

/// Aggregate dynamic energy of one run, in nanojoules.
struct EnergyBreakdown {
  double noc_nj = 0.0;    ///< Routers + links.
  double pf_nj = 0.0;     ///< Probe filters (all directories).
  double region_nj = 0.0; ///< Region tables (zero outside region mode).
  double dram_nj = 0.0;   ///< DRAM accesses.
  double total_nj() const { return noc_nj + pf_nj + region_nj + dram_nj; }
};

/// Dynamic energy / area model.
class EnergyModel {
 public:
  explicit EnergyModel(const SystemConfig& config);

  // --- Per-event energies (picojoules) -------------------------------------
  /// One probe-filter tag+state read.
  double pf_read_pj() const { return pf_read_pj_; }
  /// One probe-filter entry write (install / update / invalidate).
  double pf_write_pj() const { return pf_write_pj_; }
  /// Extra energy of one eviction: victim readout plus invalidation write.
  double pf_eviction_pj() const { return pf_read_pj_ + pf_write_pj_; }
  /// Energy of moving one flit across one router plus one link.
  double noc_flit_hop_pj() const { return router_flit_pj_ + link_flit_pj_; }
  /// One DRAM line access.
  double dram_access_pj() const { return dram_access_pj_; }
  /// One region-table tag+presence read.  The region table covering the
  /// same cached bytes as the probe filter holds coverage/region_size
  /// entries of roughly twice the width (owner + presence bitmap), so its
  /// per-event cost is that of an equivalently sized SRAM array.
  double region_read_pj() const { return region_read_pj_; }
  /// One region-entry write (install / presence flip / removal).
  double region_write_pj() const { return region_write_pj_; }
  /// One collapse: victim readout plus the withdrawal write (the per-block
  /// installs it triggers are billed as probe-filter writes).
  double region_collapse_pj() const { return region_read_pj_ + region_write_pj_; }

  // --- Aggregation -----------------------------------------------------------
  /// Network energy from mesh statistics.
  double noc_energy_nj(const noc::NocStats& stats) const;

  /// Probe-filter energy from access counts.
  double pf_energy_nj(std::uint64_t reads, std::uint64_t writes,
                      std::uint64_t evictions) const;

  /// DRAM energy from access counts.
  double dram_energy_nj(std::uint64_t accesses) const;

  /// Region-table energy from access counts (zero outside region mode).
  double region_energy_nj(std::uint64_t reads, std::uint64_t writes,
                          std::uint64_t collapses) const;

  // --- Area -------------------------------------------------------------------
  /// Total die area of all `num_directories` probe filters, each covering
  /// `coverage_bytes` of cached data.  Power-law fit to the paper's McPAT
  /// table (512kB -> 70.89 mm^2 ... 32kB -> 5.93 mm^2 for 16 directories).
  static double probe_filter_area_mm2(std::uint32_t coverage_bytes,
                                      std::uint32_t num_directories);

  /// Die area of `num_directories` region tables that track the same
  /// cached bytes as a probe filter of `coverage_bytes`: the entry count
  /// shrinks by lines-per-region while the entry roughly doubles in width,
  /// so the equivalent SRAM is fed through the same power-law fit.
  static double region_directory_area_mm2(std::uint32_t coverage_bytes,
                                          std::uint32_t region_size_bytes,
                                          std::uint32_t num_directories);

 private:
  double pf_read_pj_;
  double pf_write_pj_;
  double region_read_pj_;
  double region_write_pj_;
  double router_flit_pj_;
  double link_flit_pj_;
  double dram_access_pj_;
};

}  // namespace allarm::energy
