// DRAM / memory-controller model.
//
// Each node owns one memory controller fronting its share of DRAM
// (128 MB per node in the Table I configuration).  The model is a fixed
// access latency (60 ns) plus a simple bandwidth constraint: successive
// accesses at one controller are separated by at least `dram_cycle`
// (64 B / 10 ns = 6.4 GB/s per controller by default).
#pragma once

#include <cstdint>

#include "common/config.hh"
#include "common/types.hh"

namespace allarm::mem {

/// Statistics for one memory controller.
struct DramStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  Tick total_queue_wait = 0;  ///< Accumulated time requests waited for the channel.
};

/// One per-node DRAM channel.
class Dram {
 public:
  Dram(Tick access_latency, Tick cycle_time)
      : latency_(access_latency), cycle_(cycle_time) {}

  explicit Dram(const SystemConfig& config)
      : Dram(config.dram_latency, config.dram_cycle) {}

  /// Issues a read at time `now`; returns the time data is available.
  Tick read(Tick now) { return access(now, /*write=*/false); }

  /// Issues a write at time `now`; returns the time the write completes.
  /// Writes are not on any request's critical path in this model, but they
  /// do occupy channel bandwidth.
  Tick write(Tick now) { return access(now, /*write=*/true); }

  const DramStats& stats() const { return stats_; }
  void reset_stats() { stats_ = DramStats{}; }

  Tick access_latency() const { return latency_; }

 private:
  Tick access(Tick now, bool write) {
    // Branch-free accounting on the per-access path: both counters and the
    // queue-wait accumulator update with straight-line arithmetic.
    const Tick start = now > channel_free_ ? now : channel_free_;
    stats_.total_queue_wait += start - now;
    channel_free_ = start + cycle_;
    stats_.writes += write;
    stats_.reads += !write;
    return start + latency_;
  }

  Tick latency_;
  Tick cycle_;
  Tick channel_free_ = 0;
  DramStats stats_;
};

}  // namespace allarm::mem
