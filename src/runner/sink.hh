// Result sinks: where a streaming sweep's finished cells go.
//
// SweepRunner::run_streaming() emits every CellResult exactly once, in
// grid order, then destroys it — the sink decides what survives.  The
// streaming report writers (runner/report.hh) serialize cells straight to
// an ostream so a terabyte-grid sweep never holds more than O(jobs)
// results; CollectSink rebuilds the in-memory SweepResult the figure
// benches' random-access lookups need; TeeSink fans one stream into many
// (JSON file + CSV file + collection in one pass).
//
// Sink methods are always invoked from the thread that called
// run_streaming(), so implementations need no locking.
#pragma once

#include <vector>

#include "runner/sweep.hh"

namespace allarm::runner {

/// Consumer of a streamed sweep.  Lifecycle: begin, cell xN (grid order),
/// end.  Implementations may throw; the runner lets exceptions propagate
/// (a sweep whose output cannot be written must fail loudly, not truncate).
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Called once before any cell, with the sweep's identity header.
  virtual void begin(const SweepMeta& meta) { (void)meta; }

  /// Called once per finished cell, in grid order.  The cell is dead after
  /// this call returns — take what you need (or take the whole thing by
  /// move).
  virtual void cell(CellResult&& cell) = 0;

  /// Called once after the last cell.  Flush and surface any I/O error
  /// here at the latest.
  virtual void end() {}
};

/// Rebuilds an in-memory SweepResult from the stream.
class CollectSink : public ResultSink {
 public:
  /// What to keep of each cell's raw per-replicate RunResults.  Summaries
  /// (runtime, stats) always survive; the raw runs dominate memory.
  enum class Retain {
    kAllRuns,         ///< Keep every replicate (SweepRunner::run()).
    kFirstRunOnly,    ///< Keep runs[0] (enough for PairResult lookups).
  };

  explicit CollectSink(SweepResult& out, Retain retain = Retain::kAllRuns)
      : out_(out), retain_(retain) {}

  void begin(const SweepMeta& meta) override;
  void cell(CellResult&& cell) override;

 private:
  SweepResult& out_;
  Retain retain_;
};

/// Forwards every call to each of `sinks`, in order.  Only the LAST sink
/// receives the cell's raw per-replicate `runs` (they dominate the cell's
/// footprint and the stream writers never read them) — put a CollectSink
/// that needs raw runs at the end of the fan-out.
class TeeSink : public ResultSink {
 public:
  explicit TeeSink(std::vector<ResultSink*> sinks)
      : sinks_(std::move(sinks)) {}

  void begin(const SweepMeta& meta) override;
  void cell(CellResult&& cell) override;
  void end() override;

 private:
  std::vector<ResultSink*> sinks_;
};

}  // namespace allarm::runner
