// The built-in sweep grids — the paper's figure experiments as named,
// parameterized SweepSpecs.
//
// Shared by the `sweep` CLI (--grid NAME) and the sweep service (a spool
// request names a grid the same way), so "what does grid X mean" has one
// definition.  The trace grid is NOT here: it is built from CLI-only
// inputs (--trace files, --cores) and lives with the sweep driver.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runner/sweep.hh"

namespace allarm::runner {

/// The caller-tunable axes every built-in grid accepts.
struct GridKnobs {
  std::uint32_t seeds = 1;       ///< Replicates per cell.
  std::uint64_t base_seed = 42;
  /// ROI accesses per thread; 0 = the grid's own default (which respects
  /// ALLARM_BENCH_ACCESSES, see core::bench_accesses).
  std::uint64_t accesses = 0;
};

/// Names accepted by make_builtin_grid, in listing order.
const std::vector<std::string>& builtin_grid_names();

/// Builds the named grid.  Throws std::invalid_argument for an unknown
/// name or zero `seeds` — the service's reject path and the CLI's usage
/// error both hang off this.
SweepSpec make_builtin_grid(const std::string& name, const GridKnobs& knobs);

}  // namespace allarm::runner
