#include "runner/journal.hh"

#include <cstring>
#include <stdexcept>

#include "common/checksum.hh"
#include "common/failpoint.hh"
#include "obs/timeline.hh"

namespace allarm::runner {

namespace {

// On-disk layouts.  Plain structs of naturally-aligned integers, memcpy'd
// whole; fixed little-endian by fiat (every target this simulator runs on
// is little-endian, and the static_asserts keep the sizes honest).

struct RawHeader {
  std::uint64_t magic = Journal::kMagic;
  std::uint32_t version = Journal::kVersion;
  std::uint32_t reserved0 = 0;
  std::uint64_t spec_hash = 0;
  std::uint64_t job_count = 0;
  std::uint64_t base_seed = 0;
  std::uint32_t shard_index = 1;
  std::uint32_t shard_count = 1;
  std::uint64_t reserved1 = 0;
  std::uint32_t reserved2 = 0;
  std::uint32_t header_crc = 0;  ///< CRC32C of the preceding 60 bytes.
};
static_assert(sizeof(RawHeader) == Journal::kHeaderSize,
              "journal header layout drifted");

/// RawRecord flags bits.  Pre-quarantine journals wrote this field as a
/// reserved zero, so "no flags" and "result record" coincide and the
/// format needs no version bump.
constexpr std::uint32_t kFlagFailed = 1u << 0;

struct RawRecord {
  std::uint64_t job_index = 0;
  std::uint64_t seed = 0;
  std::uint64_t payload_offset = 0;
  std::uint32_t payload_size = 0;
  std::uint32_t payload_crc = 0;
  std::uint32_t flags = 0;       ///< kFlag* bits; zero = plain result.
  std::uint32_t record_crc = 0;  ///< CRC32C of the preceding 36 bytes.
};
static_assert(sizeof(RawRecord) == Journal::kRecordSize,
              "journal record layout drifted");

std::uint32_t header_crc(const RawHeader& h) {
  return crc32c(&h, offsetof(RawHeader, header_crc));
}

std::uint32_t record_crc(const RawRecord& r) {
  return crc32c(&r, offsetof(RawRecord, record_crc));
}

[[noreturn]] void bad_journal(const std::string& path, const std::string& why) {
  throw std::runtime_error("journal " + path + ": " + why);
}

/// Reads and validates the fixed header; throws on any mismatch.
RawHeader read_header(const File& file) {
  if (file.size() < Journal::kHeaderSize) {
    bad_journal(file.path(), "file shorter than the header");
  }
  RawHeader h;
  file.read_at(0, &h, sizeof(h));
  if (h.magic != Journal::kMagic) bad_journal(file.path(), "bad magic");
  if (h.version != Journal::kVersion) {
    bad_journal(file.path(),
                "unsupported version " + std::to_string(h.version));
  }
  if (h.header_crc != header_crc(h)) {
    bad_journal(file.path(), "header checksum mismatch");
  }
  return h;
}

JournalMeta meta_from(const RawHeader& h) {
  JournalMeta meta;
  meta.spec_hash = h.spec_hash;
  meta.job_count = h.job_count;
  meta.base_seed = h.base_seed;
  meta.shard_index = h.shard_index;
  meta.shard_count = h.shard_count;
  return meta;
}

/// Scans records against the data file, stopping at the first record that
/// fails its own CRC or points past the end of the data file (an
/// append-only log is trustworthy only up to its first damaged record).
JournalIndex scan(const File& journal, const File& data) {
  const RawHeader header = read_header(journal);

  JournalIndex index;
  index.meta = meta_from(header);
  index.valid_journal_bytes = Journal::kHeaderSize;

  const std::uint64_t journal_size = journal.size();
  const std::uint64_t data_size = data.is_open() ? data.size() : 0;
  const std::uint64_t record_bytes = journal_size - Journal::kHeaderSize;
  const std::uint64_t record_count = record_bytes / Journal::kRecordSize;
  // `size % kRecordSize` stray bytes at the tail are a torn final append.
  if (record_bytes % Journal::kRecordSize != 0) ++index.dropped_records;

  std::string payload;
  for (std::uint64_t i = 0; i < record_count; ++i) {
    RawRecord record;
    journal.read_at(Journal::kHeaderSize + i * Journal::kRecordSize, &record,
                    sizeof(record));
    const bool intact =
        record.record_crc == record_crc(record) &&
        record.job_index < header.job_count &&
        record.payload_offset + record.payload_size <= data_size;
    if (!intact) {
      index.dropped_records += record_count - i;
      break;
    }

    JournalEntry entry;
    entry.job_index = record.job_index;
    entry.seed = record.seed;
    entry.payload_offset = record.payload_offset;
    entry.payload_size = record.payload_size;
    entry.payload_crc = record.payload_crc;
    entry.failed = (record.flags & kFlagFailed) != 0;

    // Eager payload verification: one sequential pass over the sidecar at
    // open, so resume knows its exact re-run set up front and merge can
    // report coverage holes before emitting a byte.  read_payload()
    // re-verifies on use (defense in depth); both passes together are
    // seconds of I/O against hours of simulation for the grids that
    // matter.
    payload.resize(record.payload_size);
    data.read_at(record.payload_offset, payload.data(), payload.size());
    entry.payload_ok = crc32c(payload) == record.payload_crc;

    index.entries.push_back(entry);
    index.valid_journal_bytes += Journal::kRecordSize;
    if (entry.payload_offset + entry.payload_size > index.valid_data_bytes) {
      index.valid_data_bytes = entry.payload_offset + entry.payload_size;
    }
  }
  return index;
}

void require_field(const std::string& path, const char* field,
                   std::uint64_t got, std::uint64_t want) {
  if (got != want) {
    bad_journal(path, std::string("was written for a different sweep (") +
                          field + " " + std::to_string(got) + ", expected " +
                          std::to_string(want) + ")");
  }
}

}  // namespace

std::string journal_data_path(const std::string& path) {
  return path + ".data";
}

// -------------------------------------------------- payload serialization ----

std::string serialize_run_result(const core::RunResult& result,
                                 std::uint64_t cell_hash) {
  std::string out;
  const auto put_u32 = [&out](std::uint32_t v) {
    out.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  const auto put_u64 = [&out](std::uint64_t v) {
    out.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };

  put_u64(static_cast<std::uint64_t>(result.runtime));
  put_u32(static_cast<std::uint32_t>(result.thread_finish.size()));
  for (const Tick t : result.thread_finish) {
    put_u64(static_cast<std::uint64_t>(t));
  }
  const auto& stats = result.stats.values();
  put_u32(static_cast<std::uint32_t>(stats.size()));
  for (const auto& [name, value] : stats) {
    put_u32(static_cast<std::uint32_t>(name.size()));
    out.append(name);
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    put_u64(bits);
  }
  // Trailing optional section (backward compatible: absent in journals
  // written before it existed, and the reader treats end-of-payload here
  // as "not recorded").  Extend only by appending.
  put_u64(result.wall_ns);
  put_u64(cell_hash);
  // Profile histograms (RunOptions::profile), sparse-encoded.  Emitted
  // only when profiling ran, so default journals end at the cell hash and
  // stay byte-identical across the flag — and resume-compatible with
  // readers that predate this section.
  if (!result.profile.empty()) {
    put_u32(static_cast<std::uint32_t>(result.profile.size()));
    for (const auto& [name, hist] : result.profile) {
      put_u32(static_cast<std::uint32_t>(name.size()));
      out.append(name);
      put_u64(hist.max());
      std::uint32_t nonzero = 0;
      for (int b = 0; b < Histogram::kBuckets; ++b) {
        if (hist.buckets()[static_cast<std::size_t>(b)] != 0) ++nonzero;
      }
      put_u32(nonzero);
      for (int b = 0; b < Histogram::kBuckets; ++b) {
        const std::uint64_t n = hist.buckets()[static_cast<std::size_t>(b)];
        if (n == 0) continue;
        put_u32(static_cast<std::uint32_t>(b));
        put_u64(n);
      }
    }
  }
  return out;
}

core::RunResult deserialize_run_result(const void* data, std::size_t size,
                                       std::uint64_t* cell_hash) {
  const auto* bytes = static_cast<const char*>(data);
  std::size_t pos = 0;
  const auto need = [&](std::size_t n) {
    if (size - pos < n) {
      throw std::runtime_error("journal payload truncated");
    }
  };
  const auto get_u32 = [&]() {
    need(4);
    std::uint32_t v = 0;
    std::memcpy(&v, bytes + pos, sizeof(v));
    pos += sizeof(v);
    return v;
  };
  const auto get_u64 = [&]() {
    need(8);
    std::uint64_t v = 0;
    std::memcpy(&v, bytes + pos, sizeof(v));
    pos += sizeof(v);
    return v;
  };

  core::RunResult result;
  result.runtime = static_cast<Tick>(get_u64());
  const std::uint32_t finish_count = get_u32();
  result.thread_finish.reserve(finish_count);
  for (std::uint32_t i = 0; i < finish_count; ++i) {
    result.thread_finish.push_back(static_cast<Tick>(get_u64()));
  }
  const std::uint32_t stat_count = get_u32();
  for (std::uint32_t i = 0; i < stat_count; ++i) {
    const std::uint32_t len = get_u32();
    need(len);
    std::string name(bytes + pos, len);
    pos += len;
    const std::uint64_t value_bits = get_u64();
    double value = 0.0;
    std::memcpy(&value, &value_bits, sizeof(value));
    result.stats.set(name, value);
  }
  // Optional trailing sections, in append order (pre-wall_ns journals end
  // before the first; pre-cell-hash journals before the second; journals
  // without profiling before the third).
  if (pos < size) result.wall_ns = get_u64();
  std::uint64_t stored_cell_hash = 0;
  if (pos < size) stored_cell_hash = get_u64();
  if (cell_hash != nullptr) *cell_hash = stored_cell_hash;
  if (pos < size) {
    const std::uint32_t hist_count = get_u32();
    for (std::uint32_t h = 0; h < hist_count; ++h) {
      const std::uint32_t len = get_u32();
      need(len);
      std::string name(bytes + pos, len);
      pos += len;
      Histogram& hist = result.profile[name];
      const std::uint64_t max_value = get_u64();
      const std::uint32_t nonzero = get_u32();
      for (std::uint32_t i = 0; i < nonzero; ++i) {
        const std::uint32_t bucket = get_u32();
        if (bucket >= static_cast<std::uint32_t>(Histogram::kBuckets)) {
          throw std::runtime_error("journal payload has a bad histogram");
        }
        hist.add_bucket(static_cast<int>(bucket), get_u64());
      }
      hist.note_max(max_value);
    }
  }
  if (pos != size) {
    throw std::runtime_error("journal payload has trailing bytes");
  }
  return result;
}

std::string serialize_failure(const FailureRecord& failure) {
  std::string out;
  const auto put_u32 = [&out](std::uint32_t v) {
    out.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put_u32(failure.attempts);
  put_u32(static_cast<std::uint32_t>(failure.error.size()));
  out.append(failure.error);
  return out;
}

FailureRecord deserialize_failure(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const char*>(data);
  if (size < 8) throw std::runtime_error("journal failure payload truncated");
  FailureRecord failure;
  std::uint32_t len = 0;
  std::memcpy(&failure.attempts, bytes, 4);
  std::memcpy(&len, bytes + 4, 4);
  if (size != 8 + static_cast<std::size_t>(len)) {
    throw std::runtime_error("journal failure payload has a bad length");
  }
  failure.error.assign(bytes + 8, len);
  return failure;
}

// ----------------------------------------------------------------- Journal ----

Journal Journal::create(const std::string& path, const JournalMeta& meta) {
  Journal j;
  j.journal_ = File(path, File::Mode::kCreate);
  j.data_ = File(journal_data_path(path), File::Mode::kCreate);

  RawHeader header;
  header.spec_hash = meta.spec_hash;
  header.job_count = meta.job_count;
  header.base_seed = meta.base_seed;
  header.shard_index = meta.shard_index;
  header.shard_count = meta.shard_count;
  header.header_crc = header_crc(header);
  j.journal_.write_at(0, &header, sizeof(header));
  j.journal_.sync();

  j.index_.meta = meta;
  j.index_.valid_journal_bytes = kHeaderSize;
  j.journal_end_ = kHeaderSize;
  j.data_end_ = 0;
  j.writable_ = true;
  return j;
}

Journal Journal::open_resume(const std::string& path,
                             const JournalMeta& expected) {
  Journal j;
  j.journal_ = File(path, File::Mode::kReadWrite);
  j.data_ = File(journal_data_path(path), File::Mode::kReadWrite);
  j.index_ = scan(j.journal_, j.data_);

  const JournalMeta& meta = j.index_.meta;
  require_field(path, "spec hash", meta.spec_hash, expected.spec_hash);
  require_field(path, "job count", meta.job_count, expected.job_count);
  require_field(path, "base seed", meta.base_seed, expected.base_seed);
  require_field(path, "shard index", meta.shard_index, expected.shard_index);
  require_field(path, "shard count", meta.shard_count, expected.shard_count);

  // Drop the torn tail (stray bytes and CRC-failed records) so appends
  // start from a clean boundary.
  j.journal_.truncate(j.index_.valid_journal_bytes);
  j.data_.truncate(j.index_.valid_data_bytes);
  j.journal_end_ = j.index_.valid_journal_bytes;
  j.data_end_ = j.index_.valid_data_bytes;
  j.writable_ = true;
  return j;
}

Journal Journal::open_rebind(const std::string& path,
                             const JournalMeta& expected) {
  Journal j;
  j.journal_ = File(path, File::Mode::kReadWrite);
  j.data_ = File(journal_data_path(path), File::Mode::kReadWrite);
  j.index_ = scan(j.journal_, j.data_);

  // Shape and shard are structural — a journal whose job indices mean a
  // different grid cannot be reinterpreted, only replaced.
  const JournalMeta& meta = j.index_.meta;
  require_field(path, "job count", meta.job_count, expected.job_count);
  require_field(path, "shard index", meta.shard_index, expected.shard_index);
  require_field(path, "shard count", meta.shard_count, expected.shard_count);

  j.journal_.truncate(j.index_.valid_journal_bytes);
  j.data_.truncate(j.index_.valid_data_bytes);
  j.journal_end_ = j.index_.valid_journal_bytes;
  j.data_end_ = j.index_.valid_data_bytes;
  j.writable_ = true;

  // Rebind the header to the new identity, durably, before any append:
  // from here on the journal IS the new sweep's journal (a crash between
  // the rewrite and the first append leaves a valid rebound journal whose
  // stale records the next incremental open filters again).
  if (meta.spec_hash != expected.spec_hash ||
      meta.base_seed != expected.base_seed) {
    RawHeader header;
    header.spec_hash = expected.spec_hash;
    header.job_count = expected.job_count;
    header.base_seed = expected.base_seed;
    header.shard_index = expected.shard_index;
    header.shard_count = expected.shard_count;
    header.header_crc = header_crc(header);
    j.journal_.write_at(0, &header, sizeof(header));
    j.journal_.sync();
    j.index_.meta = expected;
  }
  return j;
}

Journal Journal::open_read(const std::string& path) {
  Journal j;
  j.journal_ = File(path, File::Mode::kRead);
  j.data_ = File(journal_data_path(path), File::Mode::kRead);
  j.index_ = scan(j.journal_, j.data_);
  j.journal_end_ = j.index_.valid_journal_bytes;
  j.data_end_ = j.index_.valid_data_bytes;
  return j;
}

JournalIndex Journal::load_index(const std::string& path) {
  return open_read(path).index_;
}

void Journal::append_record(std::uint64_t job_index, std::uint64_t seed,
                            const std::string& payload, std::uint32_t flags) {
  OBS_SPAN_N("journal.append", "journal", job_index);
  if (!writable_) {
    throw std::logic_error("journal " + journal_.path() + " is read-only");
  }
  if (failpoint::check("journal.append")) {
    throw std::runtime_error("journal " + journal_.path() +
                             ": append of job " + std::to_string(job_index) +
                             ": injected fault (failpoint journal.append)");
  }

  RawRecord record;
  record.job_index = job_index;
  record.seed = seed;
  record.payload_offset = data_end_;
  record.payload_size = static_cast<std::uint32_t>(payload.size());
  record.payload_crc = crc32c(payload);
  record.flags = flags;
  record.record_crc = record_crc(record);

  // Payload first, record second: a record that exists always points at
  // bytes that were at least written (the CRC catches the not-yet-durable
  // window after a crash).
  data_.write_at(data_end_, payload.data(), payload.size());
  journal_.write_at(journal_end_, &record, sizeof(record));
  data_end_ += payload.size();
  journal_end_ += kRecordSize;

  JournalEntry entry;
  entry.job_index = job_index;
  entry.seed = seed;
  entry.payload_offset = record.payload_offset;
  entry.payload_size = record.payload_size;
  entry.payload_crc = record.payload_crc;
  entry.payload_ok = true;
  entry.failed = (flags & kFlagFailed) != 0;
  index_.entries.push_back(entry);
  index_.valid_journal_bytes = journal_end_;
  index_.valid_data_bytes = data_end_;

  if (++unsynced_appends_ >= kSyncBatch) sync();
}

void Journal::append(std::uint64_t job_index, std::uint64_t seed,
                     const core::RunResult& result, std::uint64_t cell_hash) {
  append_record(job_index, seed, serialize_run_result(result, cell_hash), 0);
}

void Journal::append_failed(std::uint64_t job_index, std::uint64_t seed,
                            const FailureRecord& failure) {
  append_record(job_index, seed, serialize_failure(failure), kFlagFailed);
}

std::string Journal::verified_payload(const JournalEntry& entry) const {
  if (failpoint::check("journal.read_payload")) {
    bad_journal(journal_.path(),
                "payload read for job " + std::to_string(entry.job_index) +
                    ": injected fault (failpoint journal.read_payload)");
  }
  std::string payload(entry.payload_size, '\0');
  data_.read_at(entry.payload_offset, payload.data(), payload.size());
  if (crc32c(payload) != entry.payload_crc) {
    bad_journal(journal_.path(),
                "payload checksum mismatch for job " +
                    std::to_string(entry.job_index));
  }
  return payload;
}

core::RunResult Journal::read_payload(const JournalEntry& entry,
                                      std::uint64_t* cell_hash) const {
  if (entry.failed) {
    throw std::logic_error("journal " + journal_.path() + ": job " +
                           std::to_string(entry.job_index) +
                           " is a quarantine record (use read_failure)");
  }
  const std::string payload = verified_payload(entry);
  return deserialize_run_result(payload.data(), payload.size(), cell_hash);
}

FailureRecord Journal::read_failure(const JournalEntry& entry) const {
  if (!entry.failed) {
    throw std::logic_error("journal " + journal_.path() + ": job " +
                           std::to_string(entry.job_index) +
                           " is a result record (use read_payload)");
  }
  const std::string payload = verified_payload(entry);
  return deserialize_failure(payload.data(), payload.size());
}

void Journal::sync() {
  if (!writable_ || unsynced_appends_ == 0) return;
  OBS_SPAN("journal.fsync", "journal");
  if (failpoint::check("journal.fsync")) {
    throw std::runtime_error("journal " + journal_.path() +
                             ": sync: injected fault (failpoint "
                             "journal.fsync)");
  }
  data_.sync();     // Payloads reach the disk before the records that
  journal_.sync();  // reference them.
  unsynced_appends_ = 0;
}

void Journal::close() {
  if (journal_.is_open()) {
    sync();
    journal_.close();
  }
  if (data_.is_open()) data_.close();
}

}  // namespace allarm::runner
