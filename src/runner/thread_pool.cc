#include "runner/thread_pool.hh"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#endif

namespace allarm::runner {

ThreadPool::ThreadPool(std::uint32_t workers)
    : queues_(std::max<std::uint32_t>(workers, 1)) {
  threads_.reserve(queues_.size());
  for (std::uint32_t i = 0; i < queues_.size(); ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
#if defined(__linux__)
    // Name the workers so `top -H`, perf and core dumps attribute sweep
    // time to the pool instead of anonymous threads (15-char limit).
    const std::string name = "allarm-w" + std::to_string(i);
    pthread_setname_np(threads_.back().native_handle(), name.c_str());
#endif
  }
}

ThreadPool::~ThreadPool() {
  wait_idle_no_rethrow();  // A destructor must not throw; the error (if
                           // any) was either seen by a wait_idle() or lost.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(Task task) {
  // An empty task would be indistinguishable from the stop sentinel the
  // workers use and would wedge wait_idle(); reject it up front.
  if (!task) throw std::invalid_argument("ThreadPool: empty task");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queues_[next_queue_].push_back(std::move(task));
    next_queue_ = (next_queue_ + 1) % static_cast<std::uint32_t>(queues_.size());
    ++unfinished_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return unfinished_ == 0; });
    std::swap(error, first_error_);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::wait_idle_no_rethrow() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return unfinished_ == 0; });
}

std::uint64_t ThreadPool::steal_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return steals_;
}

std::uint32_t ThreadPool::busy_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return busy_;
}

bool ThreadPool::try_pop(std::uint32_t self, Task& task) {
  if (!queues_[self].empty()) {
    task = std::move(queues_[self].front());
    queues_[self].pop_front();
    return true;
  }
  const auto n = static_cast<std::uint32_t>(queues_.size());
  for (std::uint32_t i = 1; i < n; ++i) {
    auto& victim = queues_[(self + i) % n];
    if (!victim.empty()) {
      task = std::move(victim.back());
      victim.pop_back();
      ++steals_;
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::uint32_t self) {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return try_pop(self, task) || stopping_; });
      if (!task) return;  // Stopping and no work left.
      ++busy_;
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      // Leaked exception: capture the first for wait_idle() to rethrow.
      // Letting it escape this thread would std::terminate the process.
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = std::move(error);
      --busy_;
      --unfinished_;
      if (unfinished_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace allarm::runner
